//! Facade crate re-exporting the entire Drift reproduction workspace.
//!
//! See the individual crates for details: [`drift_tensor`],
//! [`drift_quant`], [`drift_accel`], [`drift_core`], [`drift_nn`].

pub use drift_accel as accel;
pub use drift_core as core;
pub use drift_nn as nn;
pub use drift_quant as quant;
pub use drift_tensor as tensor;
