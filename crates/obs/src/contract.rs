//! The stable metrics contract.
//!
//! Every metric the Drift workspace exports is declared here — name,
//! kind, unit, labels, and help text — and documented prose-side in
//! `docs/OBSERVABILITY.md`. A test in this crate asserts the two stay
//! in sync, so adding a metric without documenting it fails CI.
//!
//! Naming follows Prometheus conventions: `drift_` prefix, snake case,
//! base unit in the name (`_cycles`, `_nanoseconds`, `_picojoules`),
//! `_total` suffix on counters.

/// How a metric behaves over time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotonically increasing.
    Counter,
    /// Point-in-time value, may go down.
    Gauge,
    /// Fixed-bucket distribution.
    Histogram,
}

impl MetricKind {
    /// The Prometheus `# TYPE` keyword.
    pub fn prometheus_type(self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
            MetricKind::Histogram => "histogram",
        }
    }
}

/// One metric's contract entry.
#[derive(Debug, Clone, Copy)]
pub struct MetricSpec {
    /// The exported name.
    pub name: &'static str,
    /// Counter, gauge, or histogram.
    pub kind: MetricKind,
    /// The unit of the value (or of histogram observations).
    pub unit: &'static str,
    /// Label keys this metric carries (empty = unlabelled).
    pub labels: &'static [&'static str],
    /// One-line help text (exported as Prometheus `# HELP`).
    pub help: &'static str,
}

/// Buckets for per-job serve latency, microseconds.
pub const LATENCY_US_BUCKETS: &[u64] = &[
    50, 100, 250, 500, 1_000, 2_500, 5_000, 10_000, 25_000, 50_000, 100_000, 250_000,
];

/// Buckets for Eq. 8 solve wall time, nanoseconds.
pub const SOLVE_NS_BUCKETS: &[u64] = &[1_000, 10_000, 100_000, 1_000_000, 10_000_000, 100_000_000];

/// Buckets for sampled queue depth, jobs.
pub const QUEUE_DEPTH_BUCKETS: &[u64] = &[0, 1, 2, 4, 8, 16, 32, 64, 128, 256];

/// Buckets for admitted batch-request size, jobs per batch.
pub const BATCH_SIZE_BUCKETS: &[u64] = &[1, 2, 4, 8, 16, 32, 64, 128, 256, 512];

/// Every metric the workspace exports, sorted by name.
pub const METRICS: &[MetricSpec] = &[
    MetricSpec {
        name: "drift_array_busy_cycles_total",
        kind: MetricKind::Counter,
        unit: "cycles",
        labels: &["array"],
        help: "BitGroup-cycles each systolic sub-array (hh/hl/lh/ll) spent computing",
    },
    MetricSpec {
        name: "drift_array_idle_cycles_total",
        kind: MetricKind::Counter,
        unit: "cycles",
        labels: &["array"],
        help: "BitGroup-cycles each sub-array sat idle inside the layer's compute span",
    },
    MetricSpec {
        name: "drift_compute_cycles_total",
        kind: MetricKind::Counter,
        unit: "cycles",
        labels: &[],
        help: "Compute-side cycles across executed layers (Eq. 7 makespans plus reconfiguration)",
    },
    MetricSpec {
        name: "drift_dram_bytes_total",
        kind: MetricKind::Counter,
        unit: "bytes",
        labels: &["dir"],
        help: "Bytes moved to (dir=write) and from (dir=read) DRAM",
    },
    MetricSpec {
        name: "drift_dram_cycles_total",
        kind: MetricKind::Counter,
        unit: "cycles",
        labels: &[],
        help: "DRAM-side cycles across executed layers",
    },
    MetricSpec {
        name: "drift_dram_row_conflicts_total",
        kind: MetricKind::Counter,
        unit: "bursts",
        labels: &[],
        help: "DRAM bursts that required a row precharge and/or activate",
    },
    MetricSpec {
        name: "drift_dram_row_hits_total",
        kind: MetricKind::Counter,
        unit: "bursts",
        labels: &[],
        help: "DRAM bursts served from an already-open row",
    },
    MetricSpec {
        name: "drift_energy_picojoules_total",
        kind: MetricKind::Counter,
        unit: "picojoules",
        labels: &["stage"],
        help: "Energy by stage: core, static, dram, buffer",
    },
    MetricSpec {
        name: "drift_gateway_batch_size",
        kind: MetricKind::Histogram,
        unit: "jobs",
        labels: &[],
        help: "Jobs per admitted batch request (singleton requests are not observed)",
    },
    MetricSpec {
        name: "drift_gateway_connections",
        kind: MetricKind::Gauge,
        unit: "connections",
        labels: &[],
        help: "Client connections currently open on the gateway",
    },
    MetricSpec {
        name: "drift_gateway_deadline_outcomes_total",
        kind: MetricKind::Counter,
        unit: "requests",
        labels: &["outcome"],
        help: "Deadlined requests by fate: met, missed (expired), or unmeetable (shed at admission)",
    },
    MetricSpec {
        name: "drift_gateway_inflight_requests",
        kind: MetricKind::Gauge,
        unit: "requests",
        labels: &[],
        help: "Requests admitted into the gateway queue and not yet answered",
    },
    MetricSpec {
        name: "drift_gateway_prewarm_entries_total",
        kind: MetricKind::Counter,
        unit: "schedules",
        labels: &[],
        help: "Solved schedules accepted from prewarm control messages into the cache",
    },
    MetricSpec {
        name: "drift_gateway_queue_wait_microseconds",
        kind: MetricKind::Histogram,
        unit: "microseconds",
        labels: &["outcome"],
        help: "Admission-to-dequeue wait, labelled ok or expired at dequeue",
    },
    MetricSpec {
        name: "drift_gateway_request_latency_microseconds",
        kind: MetricKind::Histogram,
        unit: "microseconds",
        labels: &[],
        help: "End-to-end request latency from admission to response enqueue",
    },
    MetricSpec {
        name: "drift_gateway_requests_accepted_total",
        kind: MetricKind::Counter,
        unit: "requests",
        labels: &[],
        help: "Requests admitted into the gateway's bounded queue",
    },
    MetricSpec {
        name: "drift_gateway_requests_expired_total",
        kind: MetricKind::Counter,
        unit: "requests",
        labels: &[],
        help: "Requests answered deadline_exceeded (expired at dequeue or at response time)",
    },
    MetricSpec {
        name: "drift_gateway_requests_shed_total",
        kind: MetricKind::Counter,
        unit: "requests",
        labels: &[],
        help: "Requests refused with overloaded because the queue was full",
    },
    MetricSpec {
        name: "drift_gateway_responses_dropped_total",
        kind: MetricKind::Counter,
        unit: "responses",
        labels: &[],
        help:
            "Responses discarded because the client disconnected or stalled past the write timeout",
    },
    MetricSpec {
        name: "drift_layers_executed_total",
        kind: MetricKind::Counter,
        unit: "layers",
        labels: &[],
        help: "GEMM layers executed on the Drift accelerator model",
    },
    MetricSpec {
        name: "drift_reconfigurations_total",
        kind: MetricKind::Counter,
        unit: "events",
        labels: &[],
        help: "Fabric repartitions actually charged (elided repeats are not counted)",
    },
    MetricSpec {
        name: "drift_router_batch_splits_total",
        kind: MetricKind::Counter,
        unit: "batches",
        labels: &[],
        help: "Batch requests the router split into more than one per-shard sub-batch",
    },
    MetricSpec {
        name: "drift_router_connections",
        kind: MetricKind::Gauge,
        unit: "connections",
        labels: &[],
        help: "Client connections currently open on the router front tier",
    },
    MetricSpec {
        name: "drift_router_failovers_total",
        kind: MetricKind::Counter,
        unit: "requests",
        labels: &[],
        help:
            "Jobs re-dispatched to a ring successor after a shed, a dead shard, or a failed write",
    },
    MetricSpec {
        name: "drift_router_hop_latency_microseconds",
        kind: MetricKind::Histogram,
        unit: "microseconds",
        labels: &[],
        help: "Forward-to-response latency of individual backend hops",
    },
    MetricSpec {
        name: "drift_router_inflight_requests",
        kind: MetricKind::Gauge,
        unit: "requests",
        labels: &[],
        help: "Jobs admitted by the router and not yet answered",
    },
    MetricSpec {
        name: "drift_router_prewarm_keys_total",
        kind: MetricKind::Counter,
        unit: "keys",
        labels: &[],
        help: "Moved schedule keys solved and pushed to their new owner during reshard",
    },
    MetricSpec {
        name: "drift_router_requests_routed_total",
        kind: MetricKind::Counter,
        unit: "requests",
        labels: &["shard"],
        help: "Successful dispatches to each backend shard (failover hops count separately)",
    },
    MetricSpec {
        name: "drift_router_reshard_moved_keys_total",
        kind: MetricKind::Counter,
        unit: "keys",
        labels: &[],
        help: "Tracked schedule keys whose owning shard changed across reshard operations",
    },
    MetricSpec {
        name: "drift_router_shard_ejections_total",
        kind: MetricKind::Counter,
        unit: "events",
        labels: &["shard"],
        help: "Times each shard was marked unhealthy (dead connection or failed probe)",
    },
    MetricSpec {
        name: "drift_router_shard_readmissions_total",
        kind: MetricKind::Counter,
        unit: "events",
        labels: &["shard"],
        help: "Times each shard was re-admitted after answering health probes again",
    },
    MetricSpec {
        name: "drift_router_shards_by_queue",
        kind: MetricKind::Gauge,
        unit: "shards",
        labels: &["queue"],
        help: "Healthy shards by advertised queue discipline: fifo, edf, or unknown before the first probe",
    },
    MetricSpec {
        name: "drift_router_shards_healthy",
        kind: MetricKind::Gauge,
        unit: "shards",
        labels: &[],
        help: "Backend shards currently healthy in the routing table",
    },
    MetricSpec {
        name: "drift_schedule_cache_entries",
        kind: MetricKind::Gauge,
        unit: "schedules",
        labels: &[],
        help: "Schedules resident in the shared schedule cache",
    },
    MetricSpec {
        name: "drift_schedule_cache_hits_total",
        kind: MetricKind::Counter,
        unit: "lookups",
        labels: &[],
        help: "Schedule-cache lookups answered without solving Eq. 8",
    },
    MetricSpec {
        name: "drift_schedule_cache_misses_total",
        kind: MetricKind::Counter,
        unit: "lookups",
        labels: &[],
        help: "Schedule-cache lookups that ran the Eq. 8 sweep",
    },
    MetricSpec {
        name: "drift_schedule_solve_nanoseconds",
        kind: MetricKind::Histogram,
        unit: "nanoseconds",
        labels: &[],
        help: "Wall time of individual Eq. 8 balanced-schedule sweeps",
    },
    MetricSpec {
        name: "drift_schedule_solves_total",
        kind: MetricKind::Counter,
        unit: "solves",
        labels: &[],
        help: "Eq. 8 balanced-schedule sweeps executed",
    },
    MetricSpec {
        name: "drift_selector_convert_hc_total",
        kind: MetricKind::Counter,
        unit: "subtensors",
        labels: &["hc"],
        help: "Converted sub-tensors by high-clip choice hc (Eq. 5 outcome)",
    },
    MetricSpec {
        name: "drift_selector_decisions_total",
        kind: MetricKind::Counter,
        unit: "subtensors",
        labels: &["decision"],
        help: "Precision-selector decisions (decision=keep|convert)",
    },
    MetricSpec {
        name: "drift_serve_backpressure_stalls_total",
        kind: MetricKind::Counter,
        unit: "submissions",
        labels: &[],
        help: "Job submissions that blocked because the queue was full",
    },
    MetricSpec {
        name: "drift_serve_cache_evictions_total",
        kind: MetricKind::Counter,
        unit: "schedules",
        labels: &[],
        help: "Schedule-cache entries evicted (LRU within a full shard) to admit new ones",
    },
    MetricSpec {
        name: "drift_serve_job_latency_microseconds",
        kind: MetricKind::Histogram,
        unit: "microseconds",
        labels: &["worker"],
        help: "Per-job wall latency, one histogram per worker",
    },
    MetricSpec {
        name: "drift_serve_jobs_rejected_total",
        kind: MetricKind::Counter,
        unit: "lines",
        labels: &[],
        help:
            "Ingest lines rejected as malformed (lenient file ingest and gateway bad_request lines)",
    },
    MetricSpec {
        name: "drift_serve_jobs_total",
        kind: MetricKind::Counter,
        unit: "jobs",
        labels: &["kind", "outcome"],
        help: "Jobs completed, by kind (select|schedule|simulate) and outcome (ok|error)",
    },
    MetricSpec {
        name: "drift_serve_queue_depth",
        kind: MetricKind::Gauge,
        unit: "jobs",
        labels: &[],
        help: "Jobs waiting in the bounded queue right now",
    },
    MetricSpec {
        name: "drift_serve_queue_depth_sampled",
        kind: MetricKind::Histogram,
        unit: "jobs",
        labels: &[],
        help: "Queue depth sampled at each submission (drives the queue-depth percentiles)",
    },
    MetricSpec {
        name: "drift_serve_workers",
        kind: MetricKind::Gauge,
        unit: "threads",
        labels: &[],
        help: "Worker threads in the serving pool",
    },
    MetricSpec {
        name: "drift_stage_calls_total",
        kind: MetricKind::Counter,
        unit: "spans",
        labels: &["stage"],
        help: "Completed spans per hierarchical stage path",
    },
    MetricSpec {
        name: "drift_stage_sim_cycles_total",
        kind: MetricKind::Counter,
        unit: "cycles",
        labels: &["stage"],
        help: "Simulated cycles attributed to each stage path",
    },
    MetricSpec {
        name: "drift_stage_wall_nanoseconds_total",
        kind: MetricKind::Counter,
        unit: "nanoseconds",
        labels: &["stage"],
        help: "Wall time spent inside each stage path",
    },
    MetricSpec {
        name: "drift_store_bytes_written_total",
        kind: MetricKind::Counter,
        unit: "bytes",
        labels: &[],
        help: "Bytes appended to the schedule store log (frames plus payloads)",
    },
    MetricSpec {
        name: "drift_store_compactions_total",
        kind: MetricKind::Counter,
        unit: "events",
        labels: &[],
        help: "Store logs rewritten to their live set (at drain, or via `drift store compact`)",
    },
    MetricSpec {
        name: "drift_store_records_appended_total",
        kind: MetricKind::Counter,
        unit: "records",
        labels: &[],
        help: "Newly solved schedules appended to the store log by the background flusher",
    },
    MetricSpec {
        name: "drift_store_records_loaded_total",
        kind: MetricKind::Counter,
        unit: "records",
        labels: &[],
        help: "Sound records loaded from the store log at warm start",
    },
    MetricSpec {
        name: "drift_store_records_skipped_total",
        kind: MetricKind::Counter,
        unit: "records",
        labels: &[],
        help: "Store records skipped at load: torn tail, checksum mismatch, or failed decode",
    },
    MetricSpec {
        name: "drift_trace_requests_sampled_total",
        kind: MetricKind::Counter,
        unit: "requests",
        labels: &[],
        help: "Requests head-sampled for tracing at this ingress edge",
    },
    MetricSpec {
        name: "drift_trace_requests_unsampled_total",
        kind: MetricKind::Counter,
        unit: "requests",
        labels: &[],
        help: "Requests the ingress edge decided not to trace",
    },
    MetricSpec {
        name: "drift_trace_spans_dropped_total",
        kind: MetricKind::Counter,
        unit: "spans",
        labels: &[],
        help: "Completed spans lost because the trace sink write failed",
    },
    MetricSpec {
        name: "drift_trace_spans_orphaned_total",
        kind: MetricKind::Counter,
        unit: "spans",
        labels: &[],
        help: "Completed spans discarded because the trace sink was already closed",
    },
    MetricSpec {
        name: "drift_trace_spans_written_total",
        kind: MetricKind::Counter,
        unit: "spans",
        labels: &["service"],
        help: "Spans appended to the JSONL trace sink",
    },
    MetricSpec {
        name: "drift_trace_stage_duration_microseconds",
        kind: MetricKind::Histogram,
        unit: "microseconds",
        labels: &["service", "stage"],
        help: "Duration of recorded trace spans per service and stage",
    },
];

/// Looks up the contract entry for `name`.
pub fn spec_for(name: &str) -> Option<&'static MetricSpec> {
    METRICS.iter().find(|m| m.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contract_is_sorted_and_unique() {
        let names: Vec<&str> = METRICS.iter().map(|m| m.name).collect();
        let mut sorted = names.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(names, sorted, "contract entries must be sorted and unique");
    }

    #[test]
    fn counters_end_in_total() {
        for m in METRICS {
            if m.kind == MetricKind::Counter {
                assert!(m.name.ends_with("_total"), "{} missing _total", m.name);
            } else {
                assert!(!m.name.ends_with("_total"), "{} is not a counter", m.name);
            }
        }
    }

    #[test]
    fn bucket_sets_are_strictly_increasing() {
        for bounds in [LATENCY_US_BUCKETS, SOLVE_NS_BUCKETS, QUEUE_DEPTH_BUCKETS] {
            assert!(bounds.windows(2).all(|w| w[0] < w[1]));
        }
    }
}
