//! Distributed request tracing: the [`Tracer`] handle, trace/span
//! identifiers, head-based sampling, and the JSONL span sink.
//!
//! Tracing follows the same on/off philosophy as the [`Recorder`]: a
//! [`Tracer`] is either **enabled** (wrapping an `Arc` over the sink
//! and sampling state) or **disabled** (a `None`, the default), and a
//! disabled tracer makes every operation an early-returning no-op — no
//! clock reads, no atomics, no allocation — so serving results stay
//! bit-identical whether or not tracing is compiled into the call
//! path.
//!
//! The model is classic head-based sampling: the **ingress edge** (the
//! first traced tier a request enters) calls [`Tracer::decide`] with
//! the request's arrival sequence number. One in every
//! `sample_every` requests is sampled and assigned a 128-bit
//! [`TraceId`] derived *deterministically* from `(seed, seq)`, so two
//! runs with the same seed and arrival order sample the same trace
//! ids. The decision — sampled with a context, or decided-not-sampled
//! — travels downstream as optional wire fields and is never
//! re-decided (see `docs/OBSERVABILITY.md` for the wire encoding).
//!
//! Each tier records completed [`SpanRecord`]s after the fact: callers
//! hold the `Instant`s at which a stage started and ended, and the
//! tracer converts them to wall-clock microseconds via an anchor pair
//! captured at construction, which keeps timestamps monotonic within a
//! process and comparable across same-host processes. Records are
//! appended as one JSON object per line to the sink file
//! (`--trace-out`), and the `drift trace` CLI merges per-tier files by
//! trace id into end-to-end waterfalls.

use crate::contract::LATENCY_US_BUCKETS;
use crate::export::json_str;
use crate::span::Recorder;
use std::fmt;
use std::io::{self, BufWriter, Write};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Instant, SystemTime, UNIX_EPOCH};

/// A 128-bit trace identifier, rendered as 32 lowercase hex digits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TraceId(pub u128);

impl TraceId {
    /// Parses a 32-digit lowercase/uppercase hex string.
    pub fn parse(s: &str) -> Option<TraceId> {
        if s.len() != 32 {
            return None;
        }
        u128::from_str_radix(s, 16).ok().map(TraceId)
    }
}

impl fmt::Display for TraceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:032x}", self.0)
    }
}

/// Renders a span id as the 16 hex digits used on the wire and in
/// trace files.
pub fn span_id_hex(id: u64) -> String {
    format!("{id:016x}")
}

/// Parses a 16-digit hex span id (the inverse of [`span_id_hex`]).
pub fn parse_span_id(s: &str) -> Option<u64> {
    if s.len() != 16 {
        return None;
    }
    u64::from_str_radix(s, 16).ok()
}

/// The context a sampled request carries between tiers: which trace it
/// belongs to and which upstream span is the parent of work done here.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceContext {
    /// The 128-bit trace id assigned at the ingress edge.
    pub trace_id: TraceId,
    /// The sender's span id, which becomes the parent of the
    /// receiver's root span. `None` at the ingress edge itself.
    pub parent_span: Option<u64>,
}

/// The three-valued head-sampling state of a request.
///
/// `Undecided` means no upstream tier has made a sampling decision
/// yet (the receiver may be the ingress edge). `Unsampled` means an
/// upstream edge decided *not* to sample — downstream tiers must
/// honor that and not re-decide. `Sampled` carries the context.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TraceDecision {
    /// No sampling decision has been made for this request yet.
    #[default]
    Undecided,
    /// An upstream edge decided not to sample this request.
    Unsampled,
    /// This request is sampled; spans should be recorded under the
    /// carried context.
    Sampled(TraceContext),
}

impl TraceDecision {
    /// The sampled context, if any.
    pub fn context(&self) -> Option<&TraceContext> {
        match self {
            TraceDecision::Sampled(ctx) => Some(ctx),
            _ => None,
        }
    }

    /// Whether this request is sampled.
    pub fn is_sampled(&self) -> bool {
        matches!(self, TraceDecision::Sampled(_))
    }
}

/// One completed span, ready to be appended to the trace sink.
///
/// Spans are recorded after the fact: the caller held the start/end
/// `Instant`s and calls [`Tracer::record`] once the stage finished.
#[derive(Debug)]
pub struct SpanRecord<'a> {
    /// Overrides the tracer's service name for this span. The serve
    /// tier records through its host process's tracer (e.g. a
    /// gateway's), but its spans still belong to service `serve`.
    pub service: Option<&'a str>,
    /// The trace this span belongs to.
    pub trace: TraceId,
    /// This span's id (from [`Tracer::new_span_id`]).
    pub span: u64,
    /// The parent span id, or `None` for a root span.
    pub parent: Option<u64>,
    /// The stage name (e.g. `queue_wait`); combined with the tracer's
    /// service name it forms the `svc.stage` key reported by
    /// `drift trace`.
    pub stage: &'a str,
    /// When the stage started.
    pub start: Instant,
    /// When the stage ended (must not precede `start`).
    pub end: Instant,
    /// The wire-visible job id, when one applies.
    pub job: Option<u64>,
    /// Free-form string attributes (e.g. `outcome`, `shard`).
    pub attrs: &'a [(&'a str, &'a str)],
}

enum Sink {
    Open(Box<dyn Write + Send>),
    Closed,
}

struct TracerInner {
    service: String,
    sample_every: u64,
    seed: u64,
    span_salt: u64,
    next_span: AtomicU64,
    anchor_wall_us: u64,
    anchor: Instant,
    sink: Mutex<Sink>,
    recorder: Recorder,
}

/// A cheap, cloneable on/off handle to a JSONL trace sink.
///
/// Mirrors [`Recorder`]: the default/disabled tracer early-returns
/// from every method without touching the clock or allocating.
#[derive(Clone, Default)]
pub struct Tracer(Option<Arc<TracerInner>>);

impl fmt::Debug for Tracer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.0 {
            None => write!(f, "Tracer(disabled)"),
            Some(inner) => write!(
                f,
                "Tracer(service={}, sample_every={})",
                inner.service, inner.sample_every
            ),
        }
    }
}

impl Tracer {
    /// The no-op tracer: every operation returns immediately.
    pub fn disabled() -> Self {
        Tracer(None)
    }

    /// A tracer appending spans to the file at `path` (created or
    /// truncated). `service` names this tier in every span,
    /// `sample_every` is the N of "sample 1 in N" at the ingress edge,
    /// and `seed` makes the sampled trace-id set reproducible. Trace
    /// metrics (sampled/dropped/orphaned counters, stage histograms)
    /// are emitted through `recorder`.
    pub fn to_file(
        path: &Path,
        service: &str,
        sample_every: u64,
        seed: u64,
        recorder: Recorder,
    ) -> io::Result<Tracer> {
        let file = std::fs::File::create(path)?;
        Ok(Self::to_writer(
            Box::new(BufWriter::new(file)),
            service,
            sample_every,
            seed,
            recorder,
        ))
    }

    /// A tracer over an arbitrary writer (used by tests; `to_file` is
    /// the production constructor).
    pub fn to_writer(
        writer: Box<dyn Write + Send>,
        service: &str,
        sample_every: u64,
        seed: u64,
        recorder: Recorder,
    ) -> Tracer {
        let anchor_wall_us = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_micros().min(u128::from(u64::MAX)) as u64)
            .unwrap_or(0);
        let anchor = Instant::now();
        let span_salt = splitmix64(seed ^ u64::from(std::process::id()) ^ anchor_wall_us);
        Tracer(Some(Arc::new(TracerInner {
            service: service.to_string(),
            sample_every: sample_every.max(1),
            seed,
            span_salt,
            next_span: AtomicU64::new(0),
            anchor_wall_us,
            anchor,
            sink: Mutex::new(Sink::Open(writer)),
            recorder,
        })))
    }

    /// Whether this handle records anything.
    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }

    /// The service name spans are recorded under, when enabled.
    pub fn service(&self) -> Option<&str> {
        self.0.as_ref().map(|i| i.service.as_str())
    }

    /// Makes the head-sampling decision for the request with arrival
    /// sequence number `seq` at this (ingress-edge) tier.
    ///
    /// Pure in `(seed, seq)`: request `seq` is sampled iff
    /// `seq % sample_every == 0`, and its trace id is
    /// [`Tracer::trace_id_for`]`(seed, seq)`. Increments the
    /// sampled/unsampled request counters. Disabled tracers return
    /// [`TraceDecision::Undecided`] (a later tier may still be an
    /// edge).
    pub fn decide(&self, seq: u64) -> TraceDecision {
        let Some(inner) = &self.0 else {
            return TraceDecision::Undecided;
        };
        if seq.is_multiple_of(inner.sample_every) {
            inner
                .recorder
                .counter_add("drift_trace_requests_sampled_total", &[], 1);
            TraceDecision::Sampled(TraceContext {
                trace_id: Self::trace_id_for(inner.seed, seq),
                parent_span: None,
            })
        } else {
            inner
                .recorder
                .counter_add("drift_trace_requests_unsampled_total", &[], 1);
            TraceDecision::Unsampled
        }
    }

    /// The deterministic trace id assigned to arrival `seq` under
    /// `seed` — the pure function behind [`Tracer::decide`], exposed
    /// so tests (and operators) can predict sampled ids.
    pub fn trace_id_for(seed: u64, seq: u64) -> TraceId {
        let hi = splitmix64(seed ^ splitmix64(seq));
        let lo = splitmix64(hi ^ seq.wrapping_add(0x9E37_79B9_7F4A_7C15));
        let id = (u128::from(hi) << 64) | u128::from(lo);
        TraceId(if id == 0 { 1 } else { id })
    }

    /// A fresh process-unique span id (0 is never returned; a
    /// disabled tracer returns 0, which callers never use because
    /// they only mint ids for sampled requests).
    pub fn new_span_id(&self) -> u64 {
        let Some(inner) = &self.0 else {
            return 0;
        };
        let n = inner.next_span.fetch_add(1, Ordering::Relaxed);
        let id = splitmix64(inner.span_salt ^ n);
        if id == 0 {
            0xD41F7
        } else {
            id
        }
    }

    /// Converts a process `Instant` to anchored wall-clock
    /// microseconds (0 when disabled).
    pub fn wall_us(&self, at: Instant) -> u64 {
        let Some(inner) = &self.0 else {
            return 0;
        };
        let offset = at
            .checked_duration_since(inner.anchor)
            .map(|d| d.as_micros().min(u128::from(u64::MAX)) as u64)
            .unwrap_or(0);
        inner.anchor_wall_us.saturating_add(offset)
    }

    /// Appends one completed span to the sink and updates the trace
    /// metrics: `spans_written` + the per-stage duration histogram on
    /// success, `spans_dropped` when the sink write fails, and
    /// `spans_orphaned` when the sink was already closed.
    pub fn record(&self, rec: &SpanRecord<'_>) {
        let Some(inner) = &self.0 else {
            return;
        };
        let start_us = self.wall_us(rec.start);
        let dur_us = rec
            .end
            .checked_duration_since(rec.start)
            .map(|d| d.as_micros().min(u128::from(u64::MAX)) as u64)
            .unwrap_or(0);
        let service = rec.service.unwrap_or(&inner.service);
        let line = render_span(service, rec, start_us, dur_us);
        let mut sink = inner.sink.lock().unwrap();
        match &mut *sink {
            Sink::Open(w) => {
                let ok = w
                    .write_all(line.as_bytes())
                    .and_then(|()| w.write_all(b"\n"))
                    .is_ok();
                drop(sink);
                if ok {
                    inner.recorder.counter_add(
                        "drift_trace_spans_written_total",
                        &[("service", service)],
                        1,
                    );
                    inner.recorder.observe(
                        "drift_trace_stage_duration_microseconds",
                        &[("service", service), ("stage", rec.stage)],
                        LATENCY_US_BUCKETS,
                        dur_us,
                    );
                } else {
                    inner
                        .recorder
                        .counter_add("drift_trace_spans_dropped_total", &[], 1);
                }
            }
            Sink::Closed => {
                drop(sink);
                inner
                    .recorder
                    .counter_add("drift_trace_spans_orphaned_total", &[], 1);
            }
        }
    }

    /// Flushes buffered spans to the sink.
    pub fn flush(&self) {
        if let Some(inner) = &self.0 {
            if let Sink::Open(w) = &mut *inner.sink.lock().unwrap() {
                let _ = w.flush();
            }
        }
    }

    /// Flushes and closes the sink; spans recorded afterwards count as
    /// orphaned instead of being written.
    pub fn close(&self) {
        if let Some(inner) = &self.0 {
            let mut sink = inner.sink.lock().unwrap();
            if let Sink::Open(w) = &mut *sink {
                let _ = w.flush();
                *sink = Sink::Closed;
            }
        }
    }
}

/// `splitmix64` — the finalizer used to derive trace ids and span ids
/// from seeds and sequence numbers.
fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn render_span(service: &str, rec: &SpanRecord<'_>, start_us: u64, dur_us: u64) -> String {
    let mut out = String::with_capacity(160);
    out.push_str("{\"trace\":\"");
    out.push_str(&rec.trace.to_string());
    out.push_str("\",\"span\":\"");
    out.push_str(&span_id_hex(rec.span));
    out.push('"');
    if let Some(parent) = rec.parent {
        out.push_str(",\"parent\":\"");
        out.push_str(&span_id_hex(parent));
        out.push('"');
    }
    out.push_str(",\"svc\":");
    out.push_str(&json_str(service));
    out.push_str(",\"stage\":");
    out.push_str(&json_str(rec.stage));
    out.push_str(&format!(",\"start_us\":{start_us},\"dur_us\":{dur_us}"));
    if let Some(job) = rec.job {
        out.push_str(&format!(",\"job\":{job}"));
    }
    if !rec.attrs.is_empty() {
        out.push_str(",\"attrs\":{");
        for (i, (k, v)) in rec.attrs.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&json_str(k));
            out.push(':');
            out.push_str(&json_str(v));
        }
        out.push('}');
    }
    out.push('}');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Clone, Default)]
    struct SharedBuf(Arc<Mutex<Vec<u8>>>);

    impl SharedBuf {
        fn contents(&self) -> String {
            String::from_utf8(self.0.lock().unwrap().clone()).unwrap()
        }
    }

    impl Write for SharedBuf {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    fn counter(rec: &Recorder, name: &str) -> u64 {
        rec.registry()
            .unwrap()
            .snapshot()
            .counters
            .iter()
            .filter(|s| s.id.name == name)
            .map(|s| s.value)
            .sum()
    }

    #[test]
    fn disabled_tracer_is_inert() {
        let t = Tracer::disabled();
        assert!(!t.is_enabled());
        assert_eq!(t.decide(0), TraceDecision::Undecided);
        assert_eq!(t.new_span_id(), 0);
        assert_eq!(t.wall_us(Instant::now()), 0);
        let now = Instant::now();
        t.record(&SpanRecord {
            service: None,
            trace: TraceId(1),
            span: 1,
            parent: None,
            stage: "noop",
            start: now,
            end: now,
            job: None,
            attrs: &[],
        });
        t.flush();
        t.close();
        assert_eq!(t.service(), None);
    }

    #[test]
    fn sampling_is_periodic_and_deterministic() {
        let buf = SharedBuf::default();
        let rec = Recorder::enabled();
        let t = Tracer::to_writer(Box::new(buf.clone()), "edge", 3, 42, rec.clone());
        let decisions: Vec<TraceDecision> = (0..9).map(|seq| t.decide(seq)).collect();
        for (seq, d) in decisions.iter().enumerate() {
            assert_eq!(d.is_sampled(), seq % 3 == 0, "seq {seq}");
        }
        // Same (seed, seq) → same id; sampled contexts carry no parent.
        let ctx = decisions[0].context().unwrap();
        assert_eq!(ctx.parent_span, None);
        assert_eq!(ctx.trace_id, Tracer::trace_id_for(42, 0));
        assert_ne!(Tracer::trace_id_for(42, 0), Tracer::trace_id_for(42, 3));
        assert_ne!(Tracer::trace_id_for(42, 0), Tracer::trace_id_for(43, 0));
        assert_eq!(counter(&rec, "drift_trace_requests_sampled_total"), 3);
        assert_eq!(counter(&rec, "drift_trace_requests_unsampled_total"), 6);
    }

    #[test]
    fn trace_and_span_ids_round_trip_hex() {
        let id = Tracer::trace_id_for(7, 11);
        assert_eq!(TraceId::parse(&id.to_string()), Some(id));
        assert_eq!(id.to_string().len(), 32);
        assert_eq!(parse_span_id(&span_id_hex(0xdead_beef)), Some(0xdead_beef));
        assert_eq!(TraceId::parse("xyz"), None);
        assert_eq!(parse_span_id("123"), None);
    }

    #[test]
    fn records_render_jsonl_spans() {
        let buf = SharedBuf::default();
        let rec = Recorder::enabled();
        let t = Tracer::to_writer(Box::new(buf.clone()), "gateway", 1, 0, rec.clone());
        let trace = Tracer::trace_id_for(0, 0);
        let root = t.new_span_id();
        let child = t.new_span_id();
        assert_ne!(root, 0);
        assert_ne!(child, 0);
        assert_ne!(root, child);
        let start = Instant::now();
        t.record(&SpanRecord {
            service: None,
            trace,
            span: root,
            parent: None,
            stage: "request",
            start,
            end: start + std::time::Duration::from_micros(250),
            job: Some(7),
            attrs: &[("outcome", "ok")],
        });
        t.record(&SpanRecord {
            service: None,
            trace,
            span: child,
            parent: Some(root),
            stage: "queue_wait",
            start,
            end: start,
            job: None,
            attrs: &[],
        });
        t.flush();
        let text = buf.contents();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains(&format!("\"trace\":\"{trace}\"")));
        assert!(lines[0].contains(&format!("\"span\":\"{}\"", span_id_hex(root))));
        assert!(lines[0].contains("\"svc\":\"gateway\""));
        assert!(lines[0].contains("\"stage\":\"request\""));
        assert!(lines[0].contains("\"dur_us\":250"));
        assert!(lines[0].contains("\"job\":7"));
        assert!(lines[0].contains("\"attrs\":{\"outcome\":\"ok\"}"));
        assert!(!lines[0].contains("\"parent\""));
        assert!(lines[1].contains(&format!("\"parent\":\"{}\"", span_id_hex(root))));
        assert!(!lines[1].contains("\"attrs\""));
        assert_eq!(counter(&rec, "drift_trace_spans_written_total"), 2);
        assert_eq!(counter(&rec, "drift_trace_spans_dropped_total"), 0);
    }

    #[test]
    fn close_orphans_later_spans() {
        let buf = SharedBuf::default();
        let rec = Recorder::enabled();
        let t = Tracer::to_writer(Box::new(buf.clone()), "serve", 1, 0, rec.clone());
        let now = Instant::now();
        let span = SpanRecord {
            service: None,
            trace: TraceId(9),
            span: 1,
            parent: None,
            stage: "late",
            start: now,
            end: now,
            job: None,
            attrs: &[],
        };
        t.record(&span);
        t.close();
        t.record(&span);
        assert_eq!(counter(&rec, "drift_trace_spans_written_total"), 1);
        assert_eq!(counter(&rec, "drift_trace_spans_orphaned_total"), 1);
        assert_eq!(buf.contents().lines().count(), 1);
    }

    #[test]
    fn timestamps_are_anchored_and_monotonic() {
        let buf = SharedBuf::default();
        let t = Tracer::to_writer(Box::new(buf), "svc", 1, 0, Recorder::disabled());
        let a = Instant::now();
        let b = a + std::time::Duration::from_millis(5);
        assert!(t.wall_us(a) > 1_600_000_000_000_000); // after 2020 in µs
        assert_eq!(t.wall_us(b) - t.wall_us(a), 5_000);
    }
}
