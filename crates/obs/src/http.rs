//! A minimal metrics HTTP endpoint over `std::net` — enough for a
//! Prometheus scrape of `/metrics` (plus the same snapshot as JSON at
//! `/metrics.json`), with no dependency on an async runtime or HTTP
//! stack.
//!
//! ```rust,no_run
//! use drift_obs::{http::MetricsServer, Recorder};
//! use std::sync::Arc;
//!
//! let rec = Recorder::enabled();
//! let server = MetricsServer::start(
//!     "127.0.0.1:9109",
//!     Arc::clone(rec.registry().unwrap()),
//! ).unwrap();
//! println!("scrape http://{}/metrics", server.local_addr());
//! // ... run the workload ...
//! server.stop();
//! ```

use crate::registry::MetricsRegistry;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// A background thread serving Prometheus text on `GET /metrics` and
/// the snapshot JSON (same schema as `--metrics-out`) on
/// `GET /metrics.json`; unknown paths get a 404 listing both.
#[derive(Debug)]
pub struct MetricsServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    thread: Option<JoinHandle<()>>,
}

impl MetricsServer {
    /// Binds `addr` (e.g. `127.0.0.1:9109`; port 0 picks a free port)
    /// and starts the serving thread.
    ///
    /// # Errors
    ///
    /// Propagates the bind failure.
    pub fn start(addr: &str, registry: Arc<MetricsRegistry>) -> io::Result<MetricsServer> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = Arc::clone(&stop);
        let thread = std::thread::Builder::new()
            .name("drift-metrics".to_string())
            .spawn(move || {
                while !stop_flag.load(Ordering::Relaxed) {
                    match listener.accept() {
                        Ok((stream, _)) => {
                            // Serve inline: scrapes are rare and tiny, a
                            // slow client should not pin the simulator.
                            let _ = handle_connection(stream, &registry);
                        }
                        Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                            std::thread::sleep(Duration::from_millis(20));
                        }
                        Err(_) => std::thread::sleep(Duration::from_millis(20)),
                    }
                }
            })?;
        Ok(MetricsServer {
            addr,
            stop,
            thread: Some(thread),
        })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the serving thread and waits for it to exit.
    pub fn stop(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }
}

impl Drop for MetricsServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn handle_connection(mut stream: TcpStream, registry: &MetricsRegistry) -> io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_millis(500)))?;
    stream.set_write_timeout(Some(Duration::from_millis(500)))?;
    // Read up to the end of the request head (or 8 KiB); only the
    // request line matters.
    let mut buf = Vec::with_capacity(1024);
    let mut chunk = [0u8; 1024];
    loop {
        match stream.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => {
                buf.extend_from_slice(&chunk[..n]);
                if buf.windows(4).any(|w| w == b"\r\n\r\n") || buf.len() > 8192 {
                    break;
                }
            }
            Err(_) => break,
        }
    }
    let request_line = String::from_utf8_lossy(&buf);
    let path = request_line
        .lines()
        .next()
        .and_then(|l| l.split_whitespace().nth(1))
        .unwrap_or("/");
    const PROM_TYPE: &str = "text/plain; version=0.0.4; charset=utf-8";
    let (status, content_type, body) = match path {
        "/metrics" | "/" => ("200 OK", PROM_TYPE, registry.snapshot().to_prometheus()),
        "/metrics.json" => {
            let mut body = registry.snapshot().to_json();
            body.push('\n');
            ("200 OK", "application/json", body)
        }
        _ => (
            "404 Not Found",
            PROM_TYPE,
            format!(
                "no handler for {path}; endpoints: /metrics (Prometheus text), /metrics.json (snapshot JSON)\n"
            ),
        ),
    };
    let response = format!(
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(response.as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scrape(addr: SocketAddr, path: &str) -> String {
        let mut conn = TcpStream::connect(addr).unwrap();
        conn.write_all(format!("GET {path} HTTP/1.1\r\nHost: test\r\n\r\n").as_bytes())
            .unwrap();
        let mut response = String::new();
        conn.read_to_string(&mut response).unwrap();
        response
    }

    #[test]
    fn serves_prometheus_text() {
        let registry = Arc::new(MetricsRegistry::new());
        registry.counter_add(
            "drift_serve_jobs_total",
            &[("kind", "simulate"), ("outcome", "ok")],
            3,
        );
        let server = MetricsServer::start("127.0.0.1:0", Arc::clone(&registry)).unwrap();
        let response = scrape(server.local_addr(), "/metrics");
        assert!(response.starts_with("HTTP/1.1 200 OK"));
        assert!(response.contains("text/plain; version=0.0.4"));
        assert!(response.contains("drift_serve_jobs_total{kind=\"simulate\",outcome=\"ok\"} 3"));
        // Scrapes see live updates.
        registry.counter_add(
            "drift_serve_jobs_total",
            &[("kind", "simulate"), ("outcome", "ok")],
            2,
        );
        assert!(scrape(server.local_addr(), "/").contains("} 5"));
        let not_found = scrape(server.local_addr(), "/nope");
        assert!(not_found.starts_with("HTTP/1.1 404"));
        assert!(not_found.contains("/metrics.json"));
        server.stop();
    }

    #[test]
    fn serves_snapshot_json() {
        let registry = Arc::new(MetricsRegistry::new());
        registry.counter_add(
            "drift_serve_jobs_total",
            &[("kind", "schedule"), ("outcome", "ok")],
            7,
        );
        let server = MetricsServer::start("127.0.0.1:0", Arc::clone(&registry)).unwrap();
        let response = scrape(server.local_addr(), "/metrics.json");
        assert!(response.starts_with("HTTP/1.1 200 OK"));
        assert!(response.contains("Content-Type: application/json"));
        let body = response.split("\r\n\r\n").nth(1).unwrap();
        // Same schema as `--metrics-out`: the registry snapshot JSON.
        assert_eq!(body.trim_end(), registry.snapshot().to_json().trim_end());
        assert!(body.contains("\"name\": \"drift_serve_jobs_total\""));
        server.stop();
    }
}
