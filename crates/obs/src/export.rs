//! Snapshots and the three exporters: Prometheus text, JSON, and the
//! human `drift report` table.
//!
//! A [`Snapshot`] is a plain-data copy of a registry at one instant.
//! All exporters render snapshots, never live registries, so a scrape
//! is internally consistent and the formats can be golden-file tested
//! from hand-built snapshots.

use crate::contract::{spec_for, MetricKind};
use crate::registry::{MetricId, MetricsRegistry};

/// One counter or gauge sample.
#[derive(Debug, Clone, PartialEq)]
pub struct Sample<T> {
    /// Metric name + labels.
    pub id: MetricId,
    /// The sampled value.
    pub value: T,
}

/// One histogram sample: bounds, per-bucket counts (with the trailing
/// overflow bucket), and the observation sum.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSample {
    /// Metric name + labels.
    pub id: MetricId,
    /// Upper bounds, strictly increasing, excluding `+Inf`.
    pub bounds: Vec<u64>,
    /// Per-bucket counts; `counts.len() == bounds.len() + 1`.
    pub counts: Vec<u64>,
    /// Sum of all observations.
    pub sum: u64,
}

impl HistogramSample {
    /// Total observations.
    pub fn count(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Nearest-rank quantile, reported as the upper bound of the bucket
    /// holding that rank. `None` when empty or when the rank lands in
    /// the overflow bucket (the true value exceeds every bound).
    pub fn quantile(&self, q: f64) -> Option<u64> {
        let total = self.count();
        if total == 0 {
            return None;
        }
        let rank = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return self.bounds.get(i).copied();
            }
        }
        None
    }

    /// Mean observation (0 when empty).
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum as f64 / n as f64
        }
    }
}

/// One hierarchical stage-timing row.
#[derive(Debug, Clone, PartialEq)]
pub struct StageSample {
    /// Slash-separated span path (e.g. `serve_job/schedule_solve`).
    pub stage: String,
    /// Completed spans.
    pub calls: u64,
    /// Total wall nanoseconds.
    pub wall_ns: u64,
    /// Total simulated cycles attributed to the stage.
    pub sim_cycles: u64,
}

/// A point-in-time copy of every metric in a registry.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Snapshot {
    /// Integer counters.
    pub counters: Vec<Sample<u64>>,
    /// Float counters (energy totals).
    pub fcounters: Vec<Sample<f64>>,
    /// Gauges.
    pub gauges: Vec<Sample<i64>>,
    /// Histograms.
    pub histograms: Vec<HistogramSample>,
    /// Stage timings, sorted by path.
    pub stages: Vec<StageSample>,
}

impl Snapshot {
    /// Copies `registry` into a snapshot.
    pub fn of(registry: &MetricsRegistry) -> Self {
        Snapshot {
            counters: registry
                .counters_snapshot()
                .into_iter()
                .map(|(id, value)| Sample { id, value })
                .collect(),
            fcounters: registry
                .fcounters_snapshot()
                .into_iter()
                .map(|(id, value)| Sample { id, value })
                .collect(),
            gauges: registry
                .gauges_snapshot()
                .into_iter()
                .map(|(id, value)| Sample { id, value })
                .collect(),
            histograms: registry
                .histograms_snapshot()
                .into_iter()
                .map(|(id, bounds, counts, sum)| HistogramSample {
                    id,
                    bounds,
                    counts,
                    sum,
                })
                .collect(),
            stages: registry
                .stages()
                .into_iter()
                .map(|(stage, t)| StageSample {
                    stage,
                    calls: t.calls,
                    wall_ns: t.wall_ns,
                    sim_cycles: t.sim_cycles,
                })
                .collect(),
        }
    }

    /// The first counter sample matching `name` (any labels).
    pub fn counter(&self, name: &str) -> Option<&Sample<u64>> {
        self.counters.iter().find(|s| s.id.name == name)
    }

    /// Sum of every sample of counter `name` across label sets.
    pub fn counter_sum(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .filter(|s| s.id.name == name)
            .map(|s| s.value)
            .sum()
    }

    /// The first histogram sample matching `name` (any labels).
    pub fn histogram(&self, name: &str) -> Option<&HistogramSample> {
        self.histograms.iter().find(|h| h.id.name == name)
    }

    /// Merges every histogram named `name` (e.g. per-worker latency
    /// series) into one combined sample, or `None` when absent.
    pub fn histogram_merged(&self, name: &str) -> Option<HistogramSample> {
        let mut merged: Option<HistogramSample> = None;
        for h in self.histograms.iter().filter(|h| h.id.name == name) {
            match &mut merged {
                None => {
                    let mut m = h.clone();
                    m.id = MetricId::new(name, &[]);
                    merged = Some(m);
                }
                Some(m) if m.bounds == h.bounds => {
                    for (a, b) in m.counts.iter_mut().zip(&h.counts) {
                        *a += b;
                    }
                    m.sum += h.sum;
                }
                Some(_) => {}
            }
        }
        merged
    }

    /// Renders the snapshot in the Prometheus text exposition format
    /// (version 0.0.4): `# HELP`/`# TYPE` headers from the
    /// [contract](crate::contract), escaped labels, cumulative
    /// histogram buckets with `+Inf`, `_sum`, and `_count`.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        let mut last_header: Option<String> = None;
        let mut header = |out: &mut String, name: &str, fallback: MetricKind| {
            if last_header.as_deref() == Some(name) {
                return;
            }
            let (kind, help) = match spec_for(name) {
                Some(spec) => (spec.kind, spec.help),
                None => (fallback, "(undocumented metric)"),
            };
            out.push_str(&format!(
                "# HELP {name} {}\n# TYPE {name} {}\n",
                escape_help(help),
                kind.prometheus_type()
            ));
            last_header = Some(name.to_string());
        };

        for s in &self.counters {
            header(&mut out, &s.id.name, MetricKind::Counter);
            out.push_str(&format!(
                "{}{} {}\n",
                s.id.name,
                render_labels(&s.id.labels, None),
                s.value
            ));
        }
        for s in &self.fcounters {
            header(&mut out, &s.id.name, MetricKind::Counter);
            out.push_str(&format!(
                "{}{} {}\n",
                s.id.name,
                render_labels(&s.id.labels, None),
                s.value
            ));
        }
        for s in &self.gauges {
            header(&mut out, &s.id.name, MetricKind::Gauge);
            out.push_str(&format!(
                "{}{} {}\n",
                s.id.name,
                render_labels(&s.id.labels, None),
                s.value
            ));
        }
        for h in &self.histograms {
            header(&mut out, &h.id.name, MetricKind::Histogram);
            let mut cumulative = 0u64;
            for (i, &c) in h.counts.iter().enumerate() {
                cumulative += c;
                let le = match h.bounds.get(i) {
                    Some(b) => b.to_string(),
                    None => "+Inf".to_string(),
                };
                out.push_str(&format!(
                    "{}_bucket{} {}\n",
                    h.id.name,
                    render_labels(&h.id.labels, Some(&le)),
                    cumulative
                ));
            }
            out.push_str(&format!(
                "{}_sum{} {}\n{}_count{} {}\n",
                h.id.name,
                render_labels(&h.id.labels, None),
                h.sum,
                h.id.name,
                render_labels(&h.id.labels, None),
                h.count()
            ));
        }
        // Stage timings surface as three derived counter families.
        if !self.stages.is_empty() {
            for (name, get) in [
                (
                    "drift_stage_calls_total",
                    (|s: &StageSample| s.calls) as fn(&StageSample) -> u64,
                ),
                ("drift_stage_sim_cycles_total", |s: &StageSample| {
                    s.sim_cycles
                }),
                ("drift_stage_wall_nanoseconds_total", |s: &StageSample| {
                    s.wall_ns
                }),
            ] {
                header(&mut out, name, MetricKind::Counter);
                for s in &self.stages {
                    out.push_str(&format!(
                        "{name}{{stage=\"{}\"}} {}\n",
                        escape_label(&s.stage),
                        get(s)
                    ));
                }
            }
        }
        out
    }

    /// Renders the snapshot as a single JSON object (hand-rolled — this
    /// crate is dependency-free). The schema is stable and documented
    /// in `docs/OBSERVABILITY.md`; `drift report` consumes it.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"counters\": [");
        push_json_samples(&mut out, &self.counters, |v| v.to_string());
        out.push_str("],\n  \"fcounters\": [");
        push_json_samples(&mut out, &self.fcounters, |v| json_f64(*v));
        out.push_str("],\n  \"gauges\": [");
        push_json_samples(&mut out, &self.gauges, |v| v.to_string());
        out.push_str("],\n  \"histograms\": [");
        for (i, h) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {{\"name\": {}, \"labels\": {}, \"bounds\": {:?}, \"counts\": {:?}, \"sum\": {}}}",
                json_str(&h.id.name),
                json_labels(&h.id.labels),
                h.bounds,
                h.counts,
                h.sum
            ));
        }
        out.push_str("],\n  \"stages\": [");
        for (i, s) in self.stages.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {{\"stage\": {}, \"calls\": {}, \"wall_ns\": {}, \"sim_cycles\": {}}}",
                json_str(&s.stage),
                s.calls,
                s.wall_ns,
                s.sim_cycles
            ));
        }
        out.push_str("]\n}\n");
        out
    }

    /// Renders the human `drift report` table: counters and gauges with
    /// their contract units, histogram quantiles, and the stage tree.
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        let unit = |name: &str| spec_for(name).map_or("", |s| s.unit);

        if !(self.counters.is_empty() && self.fcounters.is_empty() && self.gauges.is_empty()) {
            out.push_str(&format!("{:<58} {:>16} {}\n", "metric", "value", "unit"));
            for s in &self.counters {
                out.push_str(&format!(
                    "{:<58} {:>16} {}\n",
                    display_id(&s.id),
                    s.value,
                    unit(&s.id.name)
                ));
            }
            for s in &self.fcounters {
                out.push_str(&format!(
                    "{:<58} {:>16.1} {}\n",
                    display_id(&s.id),
                    s.value,
                    unit(&s.id.name)
                ));
            }
            for s in &self.gauges {
                out.push_str(&format!(
                    "{:<58} {:>16} {}\n",
                    display_id(&s.id),
                    s.value,
                    unit(&s.id.name)
                ));
            }
        }
        if !self.histograms.is_empty() {
            out.push_str(&format!(
                "\n{:<58} {:>9} {:>12} {:>9} {:>9}\n",
                "histogram", "count", "mean", "p50", "p99"
            ));
            for h in &self.histograms {
                out.push_str(&format!(
                    "{:<58} {:>9} {:>12.1} {:>9} {:>9}\n",
                    display_id(&h.id),
                    h.count(),
                    h.mean(),
                    display_quantile(h, 0.50),
                    display_quantile(h, 0.99),
                ));
            }
        }
        if !self.stages.is_empty() {
            out.push_str(&format!(
                "\n{:<40} {:>9} {:>12} {:>16}\n",
                "stage", "calls", "wall(ms)", "sim-cycles"
            ));
            for s in &self.stages {
                out.push_str(&format!(
                    "{:<40} {:>9} {:>12.2} {:>16}\n",
                    s.stage,
                    s.calls,
                    s.wall_ns as f64 / 1e6,
                    s.sim_cycles
                ));
            }
        }
        out
    }
}

fn display_id(id: &MetricId) -> String {
    if id.labels.is_empty() {
        id.name.clone()
    } else {
        format!(
            "{}{{{}}}",
            id.name,
            id.labels
                .iter()
                .map(|(k, v)| format!("{k}={v}"))
                .collect::<Vec<_>>()
                .join(",")
        )
    }
}

fn display_quantile(h: &HistogramSample, q: f64) -> String {
    match (h.count(), h.quantile(q)) {
        (0, _) => "-".to_string(),
        (_, Some(v)) => format!("<={v}"),
        (_, None) => match h.bounds.last() {
            Some(b) => format!(">{b}"),
            None => "-".to_string(),
        },
    }
}

/// Escapes a label value per the Prometheus text format: backslash,
/// double quote, and newline.
pub fn escape_label(v: &str) -> String {
    v.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

/// Escapes help text: backslash and newline (quotes are legal there).
pub fn escape_help(v: &str) -> String {
    v.replace('\\', "\\\\").replace('\n', "\\n")
}

fn render_labels(labels: &[(String, String)], le: Option<&str>) -> String {
    if labels.is_empty() && le.is_none() {
        return String::new();
    }
    let mut parts: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", escape_label(v)))
        .collect();
    if let Some(le) = le {
        parts.push(format!("le=\"{le}\""));
    }
    format!("{{{}}}", parts.join(","))
}

pub(crate) fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn json_f64(v: f64) -> String {
    if v.is_finite() {
        // Rust's Display for f64 is shortest-round-trip, which JSON
        // parsers read back exactly.
        let s = v.to_string();
        if s.contains('.') || s.contains('e') || s.contains("inf") {
            s
        } else {
            format!("{s}.0")
        }
    } else {
        // JSON has no Inf/NaN; clamp to null-ish zero (never produced
        // by our instrumentation, but the exporter must stay valid).
        "0.0".to_string()
    }
}

fn json_labels(labels: &[(String, String)]) -> String {
    format!(
        "{{{}}}",
        labels
            .iter()
            .map(|(k, v)| format!("{}: {}", json_str(k), json_str(v)))
            .collect::<Vec<_>>()
            .join(", ")
    )
}

fn push_json_samples<T, F: Fn(&T) -> String>(out: &mut String, samples: &[Sample<T>], fmt: F) {
    for (i, s) in samples.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{\"name\": {}, \"labels\": {}, \"value\": {}}}",
            json_str(&s.id.name),
            json_labels(&s.id.labels),
            fmt(&s.value)
        ));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_snapshot() -> Snapshot {
        Snapshot {
            counters: vec![Sample {
                id: MetricId::new(
                    "drift_serve_jobs_total",
                    &[("kind", "simulate"), ("outcome", "ok")],
                ),
                value: 7,
            }],
            fcounters: vec![Sample {
                id: MetricId::new("drift_energy_picojoules_total", &[("stage", "dram")]),
                value: 1234.5,
            }],
            gauges: vec![Sample {
                id: MetricId::new("drift_serve_queue_depth", &[]),
                value: 3,
            }],
            histograms: vec![HistogramSample {
                id: MetricId::new("drift_serve_job_latency_microseconds", &[("worker", "0")]),
                bounds: vec![50, 100, 250],
                counts: vec![1, 2, 0, 1],
                sum: 460,
            }],
            stages: vec![StageSample {
                stage: "serve_job/schedule_solve".to_string(),
                calls: 4,
                wall_ns: 8_000_000,
                sim_cycles: 100,
            }],
        }
    }

    #[test]
    fn prometheus_format_is_well_formed() {
        let text = sample_snapshot().to_prometheus();
        assert!(text.contains("# TYPE drift_serve_jobs_total counter"));
        assert!(text.contains("drift_serve_jobs_total{kind=\"simulate\",outcome=\"ok\"} 7"));
        assert!(text.contains("drift_energy_picojoules_total{stage=\"dram\"} 1234.5"));
        assert!(text.contains("# TYPE drift_serve_queue_depth gauge"));
        // Cumulative buckets: 1, 3, 3, +Inf=4.
        assert!(text.contains("_bucket{worker=\"0\",le=\"50\"} 1"));
        assert!(text.contains("_bucket{worker=\"0\",le=\"100\"} 3"));
        assert!(text.contains("_bucket{worker=\"0\",le=\"+Inf\"} 4"));
        assert!(text.contains("drift_serve_job_latency_microseconds_sum{worker=\"0\"} 460"));
        assert!(text.contains("drift_serve_job_latency_microseconds_count{worker=\"0\"} 4"));
        assert!(text.contains("drift_stage_calls_total{stage=\"serve_job/schedule_solve\"} 4"));
    }

    #[test]
    fn label_escaping() {
        assert_eq!(escape_label("a\\b\"c\nd"), "a\\\\b\\\"c\\nd");
        let mut snap = sample_snapshot();
        snap.counters[0].id.labels[0].1 = "we\"ird\\profile\n".to_string();
        let text = snap.to_prometheus();
        assert!(text.contains("kind=\"we\\\"ird\\\\profile\\n\""));
    }

    #[test]
    fn quantiles_use_bucket_upper_bounds() {
        let h = &sample_snapshot().histograms[0];
        assert_eq!(h.count(), 4);
        assert_eq!(h.quantile(0.25), Some(50));
        assert_eq!(h.quantile(0.50), Some(100));
        // p99 rank lands in the overflow bucket.
        assert_eq!(h.quantile(0.99), None);
        assert!((h.mean() - 115.0).abs() < 1e-9);
    }

    #[test]
    fn json_is_stable_and_escaped() {
        let json = sample_snapshot().to_json();
        assert!(json.contains("\"name\": \"drift_serve_jobs_total\""));
        assert!(json.contains("\"bounds\": [50, 100, 250]"));
        assert!(json.contains("\"counts\": [1, 2, 0, 1]"));
        assert!(json.contains("\"value\": 1234.5"));
        assert_eq!(json_str("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(json_f64(2.0), "2.0");
        assert_eq!(json_f64(2.5), "2.5");
    }

    #[test]
    fn merged_histograms_sum_counts() {
        let mut snap = sample_snapshot();
        let mut second = snap.histograms[0].clone();
        second.id = MetricId::new("drift_serve_job_latency_microseconds", &[("worker", "1")]);
        snap.histograms.push(second);
        let merged = snap
            .histogram_merged("drift_serve_job_latency_microseconds")
            .unwrap();
        assert_eq!(merged.counts, vec![2, 4, 0, 2]);
        assert_eq!(merged.sum, 920);
    }
}
