//! The [`Recorder`] handle and the span API.
//!
//! Every instrumented crate takes a `Recorder` — a cheap, cloneable
//! handle that is either **enabled** (wrapping an
//! [`Arc<MetricsRegistry>`]) or **disabled** (a `None`, the default).
//! Disabled recorders make every operation an early-returning no-op:
//! no clock reads, no atomics, no allocation, which is what keeps
//! single-run simulation results bit-identical whether or not
//! observability is compiled in the call path.
//!
//! Spans measure stages. A [`SpanGuard`] starts timing at creation and
//! folds its wall time (and any simulated cycles attributed with
//! [`SpanGuard::add_cycles`]) into the registry's stage table when
//! dropped. Nested spans build slash-separated hierarchical paths via a
//! thread-local stack, so `serve_job` → `schedule_solve` is recorded as
//! `serve_job/schedule_solve`:
//!
//! ```rust
//! use drift_obs::{span, Recorder};
//!
//! let rec = Recorder::enabled();
//! {
//!     let _job = span!(rec, "serve_job");
//!     {
//!         let solve = span!(rec, "schedule_solve");
//!         solve.add_cycles(1234);
//!     }
//! }
//! let stages = rec.registry().unwrap().stages();
//! assert_eq!(stages["serve_job"].calls, 1);
//! assert_eq!(stages["serve_job/schedule_solve"].sim_cycles, 1234);
//! ```

use crate::registry::MetricsRegistry;
use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

thread_local! {
    /// The active span names on this thread, outermost first.
    static SPAN_STACK: RefCell<Vec<&'static str>> = const { RefCell::new(Vec::new()) };
}

/// A cloneable on/off handle to a [`MetricsRegistry`].
#[derive(Debug, Clone, Default)]
pub struct Recorder(Option<Arc<MetricsRegistry>>);

impl Recorder {
    /// The no-op recorder: every operation returns immediately.
    pub fn disabled() -> Self {
        Recorder(None)
    }

    /// A recorder over a fresh registry.
    pub fn enabled() -> Self {
        Recorder(Some(Arc::new(MetricsRegistry::new())))
    }

    /// A recorder over an existing (possibly shared) registry.
    pub fn from_registry(registry: Arc<MetricsRegistry>) -> Self {
        Recorder(Some(registry))
    }

    /// Whether this handle records anything.
    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }

    /// The underlying registry, when enabled.
    pub fn registry(&self) -> Option<&Arc<MetricsRegistry>> {
        self.0.as_ref()
    }

    /// Adds `v` to a counter (no-op when disabled).
    pub fn counter_add(&self, name: &str, labels: &[(&str, &str)], v: u64) {
        if let Some(reg) = &self.0 {
            reg.counter_add(name, labels, v);
        }
    }

    /// Adds `v` to a float counter (no-op when disabled).
    pub fn fcounter_add(&self, name: &str, labels: &[(&str, &str)], v: f64) {
        if let Some(reg) = &self.0 {
            reg.fcounter_add(name, labels, v);
        }
    }

    /// Sets a gauge (no-op when disabled).
    pub fn gauge_set(&self, name: &str, labels: &[(&str, &str)], v: i64) {
        if let Some(reg) = &self.0 {
            reg.gauge_set(name, labels, v);
        }
    }

    /// Adds `v` (possibly negative) to a gauge (no-op when disabled).
    pub fn gauge_add(&self, name: &str, labels: &[(&str, &str)], v: i64) {
        if let Some(reg) = &self.0 {
            reg.gauge_add(name, labels, v);
        }
    }

    /// Observes `v` into a fixed-bucket histogram (no-op when
    /// disabled). The first observation of `(name, labels)` fixes the
    /// bounds.
    pub fn observe(&self, name: &str, labels: &[(&str, &str)], bounds: &[u64], v: u64) {
        if let Some(reg) = &self.0 {
            reg.observe(name, labels, bounds, v);
        }
    }

    /// Opens a span named `name`. Prefer the [`span!`](crate::span!)
    /// macro, which reads more like a statement.
    ///
    /// The returned guard records wall time between now and its drop
    /// under the hierarchical path of every span open on this thread.
    /// On a disabled recorder the guard is inert (the clock is never
    /// read).
    pub fn span(&self, name: &'static str) -> SpanGuard {
        match &self.0 {
            None => SpanGuard {
                registry: None,
                start: None,
                cycles: AtomicU64::new(0),
            },
            Some(reg) => {
                SPAN_STACK.with(|stack| stack.borrow_mut().push(name));
                SpanGuard {
                    registry: Some(Arc::clone(reg)),
                    start: Some(Instant::now()),
                    cycles: AtomicU64::new(0),
                }
            }
        }
    }
}

/// The RAII guard produced by [`Recorder::span`].
#[derive(Debug)]
pub struct SpanGuard {
    registry: Option<Arc<MetricsRegistry>>,
    start: Option<Instant>,
    cycles: AtomicU64,
}

impl SpanGuard {
    /// Attributes `cycles` simulated cycles to this span, so stage
    /// timings carry both wall time (how long the simulator took) and
    /// simulated time (how long the modelled hardware took).
    pub fn add_cycles(&self, cycles: u64) {
        if self.registry.is_some() {
            self.cycles.fetch_add(cycles, Ordering::Relaxed);
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let (Some(reg), Some(start)) = (&self.registry, self.start) else {
            return;
        };
        let wall_ns = start.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64;
        let path = SPAN_STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            let path = stack.join("/");
            stack.pop();
            path
        });
        reg.record_stage(&path, wall_ns, self.cycles.load(Ordering::Relaxed));
    }
}

/// Opens a span on a [`Recorder`]: `let _g = span!(rec, "stage");`.
///
/// Expands to [`Recorder::span`]; exists so call sites read as
/// annotations rather than method plumbing.
#[macro_export]
macro_rules! span {
    ($recorder:expr, $name:literal) => {
        $crate::Recorder::span(&$recorder, $name)
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_recorder_is_inert() {
        let rec = Recorder::disabled();
        assert!(!rec.is_enabled());
        rec.counter_add("c", &[], 1);
        rec.gauge_set("g", &[], 1);
        rec.observe("h", &[], &[1, 2], 1);
        let g = rec.span("nothing");
        g.add_cycles(99);
        drop(g);
        assert!(rec.registry().is_none());
    }

    #[test]
    fn nested_spans_build_paths() {
        let rec = Recorder::enabled();
        {
            let _outer = rec.span("outer");
            let _inner = rec.span("inner");
        }
        {
            let _outer = rec.span("outer");
        }
        let stages = rec.registry().unwrap().stages();
        assert_eq!(stages["outer"].calls, 2);
        assert_eq!(stages["outer/inner"].calls, 1);
        assert!(stages["outer"].wall_ns >= stages["outer/inner"].wall_ns);
    }

    #[test]
    fn sibling_threads_do_not_share_stacks() {
        let rec = Recorder::enabled();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    let _a = rec.span("worker");
                    let _b = rec.span("job");
                });
            }
        });
        let stages = rec.registry().unwrap().stages();
        assert_eq!(stages["worker"].calls, 4);
        assert_eq!(stages["worker/job"].calls, 4);
        assert!(!stages.contains_key("worker/worker/job"));
    }

    #[test]
    fn cycles_attribute_to_the_span() {
        let rec = Recorder::enabled();
        {
            let g = rec.span("sim");
            g.add_cycles(40);
            g.add_cycles(2);
        }
        assert_eq!(rec.registry().unwrap().stages()["sim"].sim_cycles, 42);
    }
}
