//! `drift-obs` — the observability core of the Drift workspace.
//!
//! A dependency-free metrics and tracing layer the simulator crates
//! (`drift-accel`, `drift-core`) and the serving runtime
//! (`drift-serve`) record into, behind a [`Recorder`] handle that costs
//! nothing when disabled:
//!
//! * [`registry`] — [`MetricsRegistry`]: atomic counters, float
//!   counters, gauges, and fixed-bucket histograms, keyed by
//!   `(name, labels)`;
//! * [`mod@span`] — [`Recorder`] and the [`span!`] guard macro: wall-time
//!   and simulated-cycle durations folded into hierarchical stage
//!   timings (`serve_job/schedule_solve`);
//! * [`contract`] — the declared list of every exported metric (name,
//!   kind, unit, labels, help), kept in sync with
//!   `docs/OBSERVABILITY.md` by test;
//! * [`export`] — [`Snapshot`] plus the three renderers: Prometheus
//!   text format, JSON, and the human `drift report` table;
//! * [`http`] — a std-only `GET /metrics` (Prometheus text) and
//!   `GET /metrics.json` (snapshot JSON) endpoint for scrapes
//!   (`drift serve --metrics-addr`);
//! * [`trace`] — [`Tracer`]: distributed request tracing with
//!   deterministic head sampling and a JSONL span sink, threaded
//!   router → gateway → serve (`--trace-out`, `drift trace`).
//!
//! # Example
//!
//! ```rust
//! use drift_obs::{span, Recorder};
//!
//! let rec = Recorder::enabled();
//! rec.counter_add("drift_serve_jobs_total", &[("kind", "simulate"), ("outcome", "ok")], 1);
//! {
//!     let solve = span!(rec, "schedule_solve");
//!     solve.add_cycles(512);
//! }
//! let snapshot = rec.registry().unwrap().snapshot();
//! assert!(snapshot.to_prometheus().contains("drift_serve_jobs_total"));
//! assert_eq!(snapshot.stages[0].sim_cycles, 512);
//!
//! // The disabled recorder accepts the same calls and does nothing:
//! let off = Recorder::disabled();
//! off.counter_add("drift_serve_jobs_total", &[], 1);
//! assert!(off.registry().is_none());
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod contract;
pub mod export;
pub mod http;
pub mod registry;
pub mod span;
pub mod trace;

pub use export::Snapshot;
pub use registry::{Histogram, MetricsRegistry, StageTiming};
pub use span::{Recorder, SpanGuard};
pub use trace::{SpanRecord, TraceContext, TraceDecision, TraceId, Tracer};
