//! The metrics registry: named counters, gauges, and fixed-bucket
//! histograms, all lock-free on the hot path.
//!
//! A metric is identified by its name plus a sorted label set; the
//! registry hands out `Arc` handles so instrumentation sites can cache
//! them and update with a single atomic operation. Registration itself
//! takes a lock, but only on the first touch of each `(name, labels)`
//! pair. Maps are ordered ([`std::collections::BTreeMap`]) so every
//! export walks metrics in a deterministic order — golden-file tests
//! and diffs depend on that.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};

/// A metric identity: name plus sorted `(key, value)` labels.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct MetricId {
    /// The metric name (Prometheus conventions: `snake_case`, unit
    /// suffix, `_total` for counters).
    pub name: String,
    /// Label pairs, sorted by key.
    pub labels: Vec<(String, String)>,
}

impl MetricId {
    /// Builds an id, sorting the labels.
    pub fn new(name: &str, labels: &[(&str, &str)]) -> Self {
        let mut labels: Vec<(String, String)> = labels
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect();
        labels.sort();
        MetricId {
            name: name.to_string(),
            labels,
        }
    }
}

/// A monotonically increasing `f64` accumulator built on `AtomicU64`
/// bit transmutation — used for energy (pJ) and other fractional
/// totals that Prometheus still models as counters.
#[derive(Debug, Default)]
pub struct AtomicF64(AtomicU64);

impl AtomicF64 {
    /// A new accumulator at zero.
    pub fn new(v: f64) -> Self {
        AtomicF64(AtomicU64::new(v.to_bits()))
    }

    /// Adds `v` with a compare-and-swap loop.
    pub fn add(&self, v: f64) {
        let mut current = self.0.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(current) + v).to_bits();
            match self
                .0
                .compare_exchange_weak(current, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return,
                Err(actual) => current = actual,
            }
        }
    }

    /// The current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

/// A fixed-bucket histogram of `u64` observations.
///
/// Bucket `i` counts observations `<= bounds[i]` and `> bounds[i-1]`;
/// one implicit overflow bucket (`+Inf`) catches the rest. Bounds are
/// fixed at registration — the Prometheus exposition format requires
/// stable, cumulative `le` buckets.
#[derive(Debug)]
pub struct Histogram {
    bounds: Vec<u64>,
    counts: Vec<AtomicU64>,
    sum: AtomicU64,
}

impl Histogram {
    /// A histogram with the given strictly increasing upper bounds.
    ///
    /// # Panics
    ///
    /// Panics when `bounds` is empty or not strictly increasing — a
    /// mis-registered histogram is a programming error at the
    /// instrumentation site, not a runtime condition.
    pub fn new(bounds: &[u64]) -> Self {
        assert!(!bounds.is_empty(), "histogram needs at least one bound");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly increasing"
        );
        Histogram {
            bounds: bounds.to_vec(),
            counts: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
            sum: AtomicU64::new(0),
        }
    }

    /// Records one observation.
    pub fn observe(&self, v: u64) {
        let idx = self.bounds.partition_point(|&b| b < v);
        self.counts[idx].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// The bucket upper bounds (without the implicit `+Inf`).
    pub fn bounds(&self) -> &[u64] {
        &self.bounds
    }

    /// Per-bucket counts, including the final overflow bucket
    /// (`counts().len() == bounds().len() + 1`).
    pub fn counts(&self) -> Vec<u64> {
        self.counts
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .collect()
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.counts().iter().sum()
    }

    /// Sum of all observations.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }
}

/// Wall/simulated-time totals for one span path.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StageTiming {
    /// Completed spans on this path.
    pub calls: u64,
    /// Total wall time, nanoseconds.
    pub wall_ns: u64,
    /// Total simulated cycles attributed via
    /// [`SpanGuard::add_cycles`](crate::span::SpanGuard::add_cycles).
    pub sim_cycles: u64,
}

/// The registry of every live metric.
///
/// Cheap to create, intended to be shared behind an `Arc` (see
/// [`Recorder`](crate::span::Recorder)).
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    counters: RwLock<BTreeMap<MetricId, Arc<AtomicU64>>>,
    fcounters: RwLock<BTreeMap<MetricId, Arc<AtomicF64>>>,
    gauges: RwLock<BTreeMap<MetricId, Arc<AtomicI64>>>,
    histograms: RwLock<BTreeMap<MetricId, Arc<Histogram>>>,
    stages: Mutex<BTreeMap<String, StageTiming>>,
}

/// Get-or-register boilerplate shared by the four metric maps.
fn intern<T, F: FnOnce() -> T>(
    map: &RwLock<BTreeMap<MetricId, Arc<T>>>,
    id: MetricId,
    make: F,
) -> Arc<T> {
    if let Some(found) = map.read().expect("metrics lock").get(&id) {
        return Arc::clone(found);
    }
    let mut map = map.write().expect("metrics lock");
    Arc::clone(map.entry(id).or_insert_with(|| Arc::new(make())))
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// The counter handle for `(name, labels)`, registering on first
    /// use. Cache the handle in hot loops.
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> Arc<AtomicU64> {
        intern(&self.counters, MetricId::new(name, labels), || {
            AtomicU64::new(0)
        })
    }

    /// Adds `v` to a counter.
    pub fn counter_add(&self, name: &str, labels: &[(&str, &str)], v: u64) {
        self.counter(name, labels).fetch_add(v, Ordering::Relaxed);
    }

    /// The float-counter handle for `(name, labels)`.
    pub fn fcounter(&self, name: &str, labels: &[(&str, &str)]) -> Arc<AtomicF64> {
        intern(&self.fcounters, MetricId::new(name, labels), || {
            AtomicF64::new(0.0)
        })
    }

    /// Adds `v` to a float counter.
    pub fn fcounter_add(&self, name: &str, labels: &[(&str, &str)], v: f64) {
        self.fcounter(name, labels).add(v);
    }

    /// The gauge handle for `(name, labels)`.
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Arc<AtomicI64> {
        intern(&self.gauges, MetricId::new(name, labels), || {
            AtomicI64::new(0)
        })
    }

    /// Sets a gauge.
    pub fn gauge_set(&self, name: &str, labels: &[(&str, &str)], v: i64) {
        self.gauge(name, labels).store(v, Ordering::Relaxed);
    }

    /// Adds `v` (possibly negative) to a gauge.
    pub fn gauge_add(&self, name: &str, labels: &[(&str, &str)], v: i64) {
        self.gauge(name, labels).fetch_add(v, Ordering::Relaxed);
    }

    /// The histogram handle for `(name, labels)`. The first
    /// registration fixes the bounds; later calls ignore `bounds`.
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)], bounds: &[u64]) -> Arc<Histogram> {
        intern(&self.histograms, MetricId::new(name, labels), || {
            Histogram::new(bounds)
        })
    }

    /// Observes `v` into a histogram.
    pub fn observe(&self, name: &str, labels: &[(&str, &str)], bounds: &[u64], v: u64) {
        self.histogram(name, labels, bounds).observe(v);
    }

    /// Folds one completed span into its path's stage totals.
    pub fn record_stage(&self, path: &str, wall_ns: u64, sim_cycles: u64) {
        let mut stages = self.stages.lock().expect("stage lock");
        let t = stages.entry(path.to_string()).or_default();
        t.calls += 1;
        t.wall_ns += wall_ns;
        t.sim_cycles += sim_cycles;
    }

    /// A copy of the stage totals, keyed by span path.
    pub fn stages(&self) -> BTreeMap<String, StageTiming> {
        self.stages.lock().expect("stage lock").clone()
    }

    /// A point-in-time copy of every metric (see
    /// [`Snapshot`](crate::export::Snapshot)).
    pub fn snapshot(&self) -> crate::export::Snapshot {
        crate::export::Snapshot::of(self)
    }

    pub(crate) fn counters_snapshot(&self) -> Vec<(MetricId, u64)> {
        self.counters
            .read()
            .expect("metrics lock")
            .iter()
            .map(|(id, v)| (id.clone(), v.load(Ordering::Relaxed)))
            .collect()
    }

    pub(crate) fn fcounters_snapshot(&self) -> Vec<(MetricId, f64)> {
        self.fcounters
            .read()
            .expect("metrics lock")
            .iter()
            .map(|(id, v)| (id.clone(), v.get()))
            .collect()
    }

    pub(crate) fn gauges_snapshot(&self) -> Vec<(MetricId, i64)> {
        self.gauges
            .read()
            .expect("metrics lock")
            .iter()
            .map(|(id, v)| (id.clone(), v.load(Ordering::Relaxed)))
            .collect()
    }

    pub(crate) fn histograms_snapshot(&self) -> Vec<(MetricId, Vec<u64>, Vec<u64>, u64)> {
        self.histograms
            .read()
            .expect("metrics lock")
            .iter()
            .map(|(id, h)| (id.clone(), h.bounds().to_vec(), h.counts(), h.sum()))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_register_once_and_accumulate() {
        let reg = MetricsRegistry::new();
        reg.counter_add("jobs_total", &[("kind", "simulate")], 2);
        reg.counter_add("jobs_total", &[("kind", "simulate")], 3);
        reg.counter_add("jobs_total", &[("kind", "select")], 1);
        let snap = reg.counters_snapshot();
        assert_eq!(snap.len(), 2);
        assert_eq!(
            snap.iter()
                .find(|(id, _)| id.labels[0].1 == "simulate")
                .unwrap()
                .1,
            5
        );
    }

    #[test]
    fn label_order_does_not_split_metrics() {
        let reg = MetricsRegistry::new();
        reg.counter_add("m", &[("a", "1"), ("b", "2")], 1);
        reg.counter_add("m", &[("b", "2"), ("a", "1")], 1);
        assert_eq!(reg.counters_snapshot().len(), 1);
        assert_eq!(reg.counters_snapshot()[0].1, 2);
    }

    #[test]
    fn gauges_set_and_add() {
        let reg = MetricsRegistry::new();
        reg.gauge_set("depth", &[], 10);
        reg.gauge_add("depth", &[], -3);
        assert_eq!(reg.gauges_snapshot()[0].1, 7);
    }

    #[test]
    fn float_counters_accumulate() {
        let f = AtomicF64::new(0.0);
        f.add(1.5);
        f.add(2.25);
        assert!((f.get() - 3.75).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn histogram_rejects_unsorted_bounds() {
        Histogram::new(&[10, 5]);
    }
}
