//! Metrics-layer integration tests: bucket boundary semantics,
//! Prometheus escaping, concurrent-update exactness, the golden
//! `drift report` table, and the contract/docs sync check.

use drift_obs::export::{HistogramSample, Sample, StageSample};
use drift_obs::registry::MetricId;
use drift_obs::{contract, MetricsRegistry, Recorder, Snapshot};

#[test]
fn histogram_bucket_boundaries_are_le_semantics() {
    // Prometheus `le` buckets are inclusive upper bounds: an
    // observation exactly on a bound lands in that bound's bucket.
    let reg = MetricsRegistry::new();
    let bounds = &[10, 100, 1000];
    for v in [9, 10, 11, 100, 101, 1000, 1001, u64::MAX] {
        reg.observe("m", &[], bounds, v);
    }
    let snap = reg.snapshot();
    let h = snap.histogram("m").unwrap();
    assert_eq!(h.bounds, vec![10, 100, 1000]);
    //                    <=10   <=100  <=1000  +Inf
    assert_eq!(h.counts, vec![2, 2, 2, 2]);
    assert_eq!(h.count(), 8);

    // The cumulative rendering the text format requires.
    let text = snap.to_prometheus();
    assert!(text.contains("m_bucket{le=\"10\"} 2"));
    assert!(text.contains("m_bucket{le=\"100\"} 4"));
    assert!(text.contains("m_bucket{le=\"1000\"} 6"));
    assert!(text.contains("m_bucket{le=\"+Inf\"} 8"));
    assert!(text.contains("m_count 8"));
}

#[test]
fn prometheus_escapes_label_values() {
    let reg = MetricsRegistry::new();
    reg.counter_add("m_total", &[("path", "a\\b\"c\nd")], 1);
    let text = reg.snapshot().to_prometheus();
    assert!(
        text.contains(r#"m_total{path="a\\b\"c\nd"} 1"#),
        "backslash, quote, and newline must be escaped, got:\n{text}"
    );
}

#[test]
fn concurrent_counter_increments_sum_exactly() {
    let recorder = Recorder::enabled();
    let threads = 8;
    let per_thread = 10_000u64;
    std::thread::scope(|scope| {
        for t in 0..threads {
            let recorder = recorder.clone();
            scope.spawn(move || {
                let label = if t % 2 == 0 { "even" } else { "odd" };
                for _ in 0..per_thread {
                    recorder.counter_add("race_total", &[("half", label)], 1);
                    recorder.fcounter_add("race_pj_total", &[], 0.5);
                    recorder.observe("race_hist", &[], &[1, 2, 4], t);
                }
            });
        }
    });
    let snap = recorder.registry().unwrap().snapshot();
    assert_eq!(snap.counter_sum("race_total"), threads * per_thread);
    let h = snap.histogram("race_hist").unwrap();
    assert_eq!(h.count(), threads * per_thread);
    let pj = snap
        .fcounters
        .iter()
        .find(|s| s.id.name == "race_pj_total")
        .unwrap();
    // 80_000 halves: exactly representable, so CAS accumulation is exact.
    assert_eq!(pj.value, threads as f64 * per_thread as f64 * 0.5);
}

/// A fixed snapshot with every section populated, for format goldens.
fn golden_snapshot() -> Snapshot {
    Snapshot {
        counters: vec![
            Sample {
                id: MetricId::new("drift_schedule_cache_hits_total", &[]),
                value: 39,
            },
            Sample {
                id: MetricId::new(
                    "drift_serve_jobs_total",
                    &[("kind", "simulate"), ("outcome", "ok")],
                ),
                value: 40,
            },
        ],
        fcounters: vec![Sample {
            id: MetricId::new("drift_energy_picojoules_total", &[("stage", "dram")]),
            value: 1234.5,
        }],
        gauges: vec![Sample {
            id: MetricId::new("drift_serve_workers", &[]),
            value: 2,
        }],
        histograms: vec![HistogramSample {
            id: MetricId::new("drift_serve_job_latency_microseconds", &[("worker", "0")]),
            bounds: contract::LATENCY_US_BUCKETS.to_vec(),
            counts: vec![0, 3, 10, 17, 6, 3, 1, 0, 0, 0, 0, 0, 0],
            sum: 24_000,
        }],
        stages: vec![
            StageSample {
                stage: "serve_job".to_string(),
                calls: 40,
                wall_ns: 120_000_000,
                sim_cycles: 700_000,
            },
            StageSample {
                stage: "serve_job/schedule_solve".to_string(),
                calls: 7,
                wall_ns: 2_500_000,
                sim_cycles: 0,
            },
        ],
    }
}

#[test]
fn report_table_matches_golden_file() {
    let rendered = golden_snapshot().render_table();
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/report.txt");
    if std::env::var_os("BLESS").is_some() {
        std::fs::write(path, &rendered).unwrap();
    }
    let golden = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("cannot read {path}: {e} (run with BLESS=1 to create)"));
    assert_eq!(
        rendered, golden,
        "drift report layout changed; if intentional, re-bless with \
         BLESS=1 cargo test -p drift-obs --test metrics"
    );
}

#[test]
fn json_round_trips_through_prometheus_names() {
    // Every name in the JSON export shows up in the Prometheus export
    // of the same snapshot (histograms via their _bucket series).
    let snap = golden_snapshot();
    let prom = snap.to_prometheus();
    for s in snap.counters.iter().map(|s| &s.id.name) {
        assert!(prom.contains(s.as_str()));
    }
    for h in &snap.histograms {
        assert!(prom.contains(&format!("{}_bucket", h.id.name)));
    }
}

#[test]
fn docs_cover_every_contract_metric() {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../docs/OBSERVABILITY.md");
    let docs = std::fs::read_to_string(path).unwrap_or_else(|e| panic!("cannot read {path}: {e}"));
    let mut missing: Vec<&str> = contract::METRICS
        .iter()
        .map(|m| m.name)
        .filter(|name| !docs.contains(&format!("`{name}`")))
        .collect();
    missing.sort_unstable();
    assert!(
        missing.is_empty(),
        "metrics exported but not documented in docs/OBSERVABILITY.md: {missing:?}"
    );
}

#[test]
fn contract_label_sets_match_instrumented_ids() {
    // Spot-check that the label keys the contract declares are the
    // ones the exporters will see, via a representative recording.
    let recorder = Recorder::enabled();
    recorder.counter_add(
        "drift_serve_jobs_total",
        &[("kind", "simulate"), ("outcome", "ok")],
        1,
    );
    let snap = recorder.registry().unwrap().snapshot();
    let sample = snap.counter("drift_serve_jobs_total").unwrap();
    let keys: Vec<&str> = sample.id.labels.iter().map(|(k, _)| k.as_str()).collect();
    let spec = contract::spec_for("drift_serve_jobs_total").unwrap();
    assert_eq!(keys, spec.labels, "label keys must match the contract");
}
