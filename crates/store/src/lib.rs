//! Persistent schedule store: an append-only, checksummed on-disk log
//! of solved `(ScheduleKey, Schedule)` pairs.
//!
//! Drift's serving advantage hangs on reusing solved Eq. 8 schedules —
//! a cache hit costs ~1.6 µs against ~103 µs for a cold solve — yet the
//! sharded LRU cache lives only in RAM, so every restart replays the
//! solve storm at peak load. This crate makes the solved set durable:
//!
//! * [`load`] reads a log **tolerantly**: a truncated or corrupt tail
//!   (the expected residue of a crash mid-append) is skipped and
//!   counted, never fatal. Only a wrong magic or a future format
//!   version refuses cleanly.
//! * [`StoreWriter`] appends new entries, each framed with a length and
//!   an FNV-1a checksum so torn writes are detectable on the next load.
//! * [`write_snapshot`] / [`compact`] rewrite a log to its live set via
//!   the atomic temp-file+rename pattern (same idiom as `--port-file`).
//! * [`verify`] is the **strict** reader for tooling: any framing or
//!   checksum defect is an error, and deep mode re-solves every key to
//!   prove the stored schedules still match the solver byte for byte.
//!
//! # On-disk format (version 1)
//!
//! ```text
//! header:  8-byte magic "DRIFTSTO" | u32 LE version | u32 LE reserved
//! record:  u32 LE payload_len | u64 LE fnv1a(payload) | payload
//! payload: the 124-byte canonical entry encoding
//!          (drift_core::schedule::encode_entry)
//! ```
//!
//! The full specification, including the crash-tolerance contract,
//! lives in `docs/PERSISTENCE.md`.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![deny(rustdoc::broken_intra_doc_links)]

use drift_core::schedule::{decode_entry, encode_entry, Schedule, ScheduleKey, ENTRY_BYTES};
use std::fmt;
use std::fs::{self, File, OpenOptions};
use std::io::{self, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// The 8-byte file magic.
pub const MAGIC: [u8; 8] = *b"DRIFTSTO";
/// The current (and only) format version.
pub const VERSION: u32 = 1;
/// Header size: magic + version + reserved.
pub const HEADER_BYTES: usize = 16;
/// Record frame overhead: u32 length + u64 checksum.
pub const FRAME_BYTES: usize = 12;
/// Upper bound on a record payload. Today every payload is exactly
/// [`ENTRY_BYTES`]; the bound keeps a corrupt length field from asking
/// the loader to allocate gigabytes before the checksum can reject it.
pub const MAX_RECORD_LEN: u32 = 4096;

/// FNV-1a over `bytes` — the same hash the router's ring uses, kept as
/// a local copy so the store sits below the serving tiers in the
/// dependency graph.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Errors the store can produce.
#[derive(Debug)]
pub enum StoreError {
    /// An underlying filesystem failure.
    Io(io::Error),
    /// The file does not start with the store magic.
    Magic {
        /// The path that was read.
        path: PathBuf,
    },
    /// The file's format version is newer than this build understands.
    Version {
        /// The path that was read.
        path: PathBuf,
        /// The version found in the header.
        found: u32,
    },
    /// Strict verification found a defect ([`verify`] only — [`load`]
    /// skips instead).
    Corrupt {
        /// Byte offset of the defective record's frame.
        offset: u64,
        /// What was wrong.
        detail: String,
    },
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "store io error: {e}"),
            StoreError::Magic { path } => {
                write!(f, "{} is not a drift store (bad magic)", path.display())
            }
            StoreError::Version { path, found } => write!(
                f,
                "{} is store format v{found}, this build reads v{VERSION}",
                path.display()
            ),
            StoreError::Corrupt { offset, detail } => {
                write!(f, "corrupt record at byte {offset}: {detail}")
            }
        }
    }
}

impl std::error::Error for StoreError {}

impl From<io::Error> for StoreError {
    fn from(e: io::Error) -> Self {
        StoreError::Io(e)
    }
}

/// Convenience result alias.
pub type Result<T> = std::result::Result<T, StoreError>;

/// What a tolerant [`load`] found.
#[derive(Debug)]
pub struct LoadReport {
    /// Entries that decoded and validated, in log order (later
    /// duplicates of a key are later in the vec — last write wins).
    pub entries: Vec<(ScheduleKey, Schedule)>,
    /// Records read successfully.
    pub records: u64,
    /// Records skipped: torn tail, bad checksum, or failed decode.
    pub skipped: u64,
    /// Total file length in bytes.
    pub bytes: u64,
    /// Length of the longest well-framed prefix. Appends resume here;
    /// anything past it is an unframeable tail.
    pub valid_len: u64,
    /// Whether the file ended in an unframeable (torn) tail.
    pub truncated_tail: bool,
}

fn read_header(path: &Path, bytes: &[u8]) -> Result<()> {
    if bytes.len() < HEADER_BYTES || bytes[..8] != MAGIC {
        return Err(StoreError::Magic {
            path: path.to_path_buf(),
        });
    }
    let version = u32::from_le_bytes(bytes[8..12].try_into().expect("4-byte slice"));
    if version != VERSION {
        return Err(StoreError::Version {
            path: path.to_path_buf(),
            found: version,
        });
    }
    Ok(())
}

/// One scan step: the record at `pos`, or why it could not be framed.
enum Scan {
    /// A well-framed record: payload range and whether it is sound.
    Record {
        /// End of this record's frame (the next scan position).
        end: usize,
        /// Decoded entry; `None` if the checksum or decode failed.
        entry: Option<(ScheduleKey, Schedule)>,
    },
    /// Fewer bytes remain than a frame (or its declared payload) needs,
    /// or the length field is implausible: the torn-tail case.
    Tail,
}

fn scan_record(bytes: &[u8], pos: usize) -> Scan {
    let Some(frame) = bytes.get(pos..pos + FRAME_BYTES) else {
        return Scan::Tail;
    };
    let len = u32::from_le_bytes(frame[..4].try_into().expect("4-byte slice"));
    if len > MAX_RECORD_LEN {
        return Scan::Tail;
    }
    let sum = u64::from_le_bytes(frame[4..12].try_into().expect("8-byte slice"));
    let start = pos + FRAME_BYTES;
    let Some(payload) = bytes.get(start..start + len as usize) else {
        return Scan::Tail;
    };
    let entry = if fnv1a(payload) == sum {
        decode_entry(payload).ok()
    } else {
        None
    };
    Scan::Record {
        end: start + len as usize,
        entry,
    }
}

/// Reads the log at `path` tolerantly: well-framed records that fail
/// their checksum or decode are skipped (counted), and a torn tail ends
/// the scan as one more skip. Never fails on content — only on I/O, a
/// bad magic, or a future version.
///
/// # Errors
///
/// [`StoreError::Io`], [`StoreError::Magic`], [`StoreError::Version`].
pub fn load(path: &Path) -> Result<LoadReport> {
    let bytes = fs::read(path)?;
    read_header(path, &bytes)?;
    let mut report = LoadReport {
        entries: Vec::new(),
        records: 0,
        skipped: 0,
        bytes: bytes.len() as u64,
        valid_len: HEADER_BYTES as u64,
        truncated_tail: false,
    };
    let mut pos = HEADER_BYTES;
    while pos < bytes.len() {
        match scan_record(&bytes, pos) {
            Scan::Record { end, entry } => {
                match entry {
                    Some(e) => {
                        report.records += 1;
                        report.entries.push(e);
                    }
                    None => report.skipped += 1,
                }
                pos = end;
                report.valid_len = pos as u64;
            }
            Scan::Tail => {
                report.skipped += 1;
                report.truncated_tail = true;
                break;
            }
        }
    }
    Ok(report)
}

/// Appends framed records to a store log.
///
/// Opened via [`StoreWriter::open`], which loads the existing contents
/// (tolerantly), truncates any torn tail so new appends are framed
/// against a sound prefix, and positions at the end.
#[derive(Debug)]
pub struct StoreWriter {
    file: File,
    path: PathBuf,
    /// Records currently framed in the log (sound or skipped), used by
    /// callers deciding when compaction pays.
    records_on_disk: u64,
    /// Bytes appended through this writer.
    bytes_written: u64,
}

impl StoreWriter {
    /// Opens (or creates) the log at `path` for appending. Returns the
    /// tolerant [`LoadReport`] of what was already there alongside the
    /// writer; a torn tail is truncated away so the next record starts
    /// on a frame boundary.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`], [`StoreError::Magic`], [`StoreError::Version`].
    pub fn open(path: &Path) -> Result<(LoadReport, StoreWriter)> {
        if !path.exists() {
            let mut header = Vec::with_capacity(HEADER_BYTES);
            header.extend_from_slice(&MAGIC);
            header.extend_from_slice(&VERSION.to_le_bytes());
            header.extend_from_slice(&0u32.to_le_bytes());
            atomic_write(path, &header)?;
        }
        let report = load(path)?;
        let mut file = OpenOptions::new().read(true).write(true).open(path)?;
        file.set_len(report.valid_len)?;
        file.seek(SeekFrom::Start(report.valid_len))?;
        let records_on_disk = report.records + report.skipped - u64::from(report.truncated_tail);
        Ok((
            report,
            StoreWriter {
                file,
                path: path.to_path_buf(),
                records_on_disk,
                bytes_written: 0,
            },
        ))
    }

    /// Appends one entry. Returns the bytes written (frame + payload).
    ///
    /// # Errors
    ///
    /// Propagates the write failure.
    pub fn append(&mut self, key: &ScheduleKey, schedule: &Schedule) -> Result<u64> {
        self.append_batch(std::slice::from_ref(&(*key, *schedule)))
    }

    /// Appends a batch of entries with one write call. Returns the
    /// bytes written.
    ///
    /// # Errors
    ///
    /// Propagates the write failure.
    pub fn append_batch(&mut self, entries: &[(ScheduleKey, Schedule)]) -> Result<u64> {
        if entries.is_empty() {
            return Ok(0);
        }
        let mut buf = Vec::with_capacity(entries.len() * (FRAME_BYTES + ENTRY_BYTES));
        let mut payload = Vec::with_capacity(ENTRY_BYTES);
        for (key, schedule) in entries {
            payload.clear();
            encode_entry(key, schedule, &mut payload);
            buf.extend_from_slice(&(payload.len() as u32).to_le_bytes());
            buf.extend_from_slice(&fnv1a(&payload).to_le_bytes());
            buf.extend_from_slice(&payload);
        }
        self.file.write_all(&buf)?;
        self.records_on_disk += entries.len() as u64;
        self.bytes_written += buf.len() as u64;
        Ok(buf.len() as u64)
    }

    /// Records framed in the log so far (including skipped ones).
    pub fn records_on_disk(&self) -> u64 {
        self.records_on_disk
    }

    /// Bytes appended through this writer.
    pub fn bytes_written(&self) -> u64 {
        self.bytes_written
    }

    /// The path this writer appends to.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Flushes appended records to stable storage.
    ///
    /// # Errors
    ///
    /// Propagates the sync failure.
    pub fn sync(&mut self) -> Result<()> {
        self.file.sync_all()?;
        Ok(())
    }
}

/// Writes `data` to `path` atomically: temp file in the same directory,
/// sync, rename. Readers see either the old file or the new one, never
/// a torn intermediate (the `--port-file` idiom).
fn atomic_write(path: &Path, data: &[u8]) -> Result<()> {
    let dir = path.parent().filter(|p| !p.as_os_str().is_empty());
    let name = path
        .file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_else(|| "store".to_string());
    let tmp = dir
        .unwrap_or_else(|| Path::new("."))
        .join(format!(".{name}.tmp-{}", std::process::id()));
    let result = (|| -> Result<()> {
        let mut file = File::create(&tmp)?;
        file.write_all(data)?;
        file.sync_all()?;
        fs::rename(&tmp, path)?;
        Ok(())
    })();
    if result.is_err() {
        let _ = fs::remove_file(&tmp);
    }
    result
}

/// Serializes `entries` into a fresh single-generation log image
/// (header + one sound record per entry).
fn snapshot_bytes(entries: &[(ScheduleKey, Schedule)]) -> Vec<u8> {
    let mut buf = Vec::with_capacity(HEADER_BYTES + entries.len() * (FRAME_BYTES + ENTRY_BYTES));
    buf.extend_from_slice(&MAGIC);
    buf.extend_from_slice(&VERSION.to_le_bytes());
    buf.extend_from_slice(&0u32.to_le_bytes());
    let mut payload = Vec::with_capacity(ENTRY_BYTES);
    for (key, schedule) in entries {
        payload.clear();
        encode_entry(key, schedule, &mut payload);
        buf.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        buf.extend_from_slice(&fnv1a(&payload).to_le_bytes());
        buf.extend_from_slice(&payload);
    }
    buf
}

/// Atomically replaces the log at `path` with exactly `entries` — the
/// snapshot half of compaction, also used to persist a live cache's
/// contents at drain time.
///
/// # Errors
///
/// Propagates the write/rename failure.
pub fn write_snapshot(path: &Path, entries: &[(ScheduleKey, Schedule)]) -> Result<()> {
    atomic_write(path, &snapshot_bytes(entries))
}

/// Deduplicates `entries` by key, keeping the **last** occurrence of
/// each (log order is append order, so later wins) while preserving the
/// relative order of the survivors.
pub fn dedup_last_wins(entries: Vec<(ScheduleKey, Schedule)>) -> Vec<(ScheduleKey, Schedule)> {
    use std::collections::HashMap;
    let mut last: HashMap<ScheduleKey, usize> = HashMap::with_capacity(entries.len());
    for (i, (key, _)) in entries.iter().enumerate() {
        last.insert(*key, i);
    }
    entries
        .into_iter()
        .enumerate()
        .filter(|(i, (key, _))| last[key] == *i)
        .map(|(_, e)| e)
        .collect()
}

/// Rewrites the log at `path` to its live set: tolerant load, dedup
/// (last write wins), skip corrupt records, atomic snapshot. Returns
/// `(records_before, records_after)` where "before" counts sound and
/// skipped records alike.
///
/// # Errors
///
/// [`StoreError::Io`], [`StoreError::Magic`], [`StoreError::Version`].
pub fn compact(path: &Path) -> Result<(u64, u64)> {
    let report = load(path)?;
    let before = report.records + report.skipped;
    let live = dedup_last_wins(report.entries);
    let after = live.len() as u64;
    write_snapshot(path, &live)?;
    Ok((before, after))
}

/// Merges several logs into `out`: inputs are loaded tolerantly in
/// order, concatenated, deduplicated last-wins (a later input overrides
/// an earlier one on key conflicts), and snapshot atomically. Returns
/// the merged entry count.
///
/// # Errors
///
/// Fails on the first unreadable input or on the output write.
pub fn merge(inputs: &[PathBuf], out: &Path) -> Result<u64> {
    let mut all = Vec::new();
    for input in inputs {
        all.extend(load(input)?.entries);
    }
    let live = dedup_last_wins(all);
    let count = live.len() as u64;
    write_snapshot(out, &live)?;
    Ok(count)
}

/// What strict [`verify`] found in a sound log.
#[derive(Debug)]
pub struct VerifyReport {
    /// Sound records in the log.
    pub records: u64,
    /// Distinct keys after last-wins dedup.
    pub unique_keys: u64,
    /// Total file length in bytes.
    pub bytes: u64,
    /// In deep mode, entries whose stored schedule exactly matched a
    /// fresh [`ScheduleKey::solve`] (always equals `records` on
    /// success; `None` in shallow mode).
    pub resolved: Option<u64>,
}

/// Strictly verifies the log at `path`: unlike [`load`], **any** torn
/// tail, checksum mismatch, or decode failure is an error. With `deep`,
/// every key is additionally re-solved and the stored schedule must
/// match the solver's answer exactly — the byte-identity invariant,
/// checked offline.
///
/// # Errors
///
/// [`StoreError::Corrupt`] pinpointing the first defect (byte offset of
/// its frame), plus the [`load`]-level errors.
pub fn verify(path: &Path, deep: bool) -> Result<VerifyReport> {
    let bytes = fs::read(path)?;
    read_header(path, &bytes)?;
    let mut entries = Vec::new();
    let mut pos = HEADER_BYTES;
    while pos < bytes.len() {
        let corrupt = |detail: String| StoreError::Corrupt {
            offset: pos as u64,
            detail,
        };
        let frame = bytes
            .get(pos..pos + FRAME_BYTES)
            .ok_or_else(|| corrupt("truncated frame header".to_string()))?;
        let len = u32::from_le_bytes(frame[..4].try_into().expect("4-byte slice"));
        if len > MAX_RECORD_LEN {
            return Err(corrupt(format!("implausible payload length {len}")));
        }
        let sum = u64::from_le_bytes(frame[4..12].try_into().expect("8-byte slice"));
        let start = pos + FRAME_BYTES;
        let payload = bytes
            .get(start..start + len as usize)
            .ok_or_else(|| corrupt(format!("truncated payload ({len} bytes declared)")))?;
        if fnv1a(payload) != sum {
            return Err(corrupt("checksum mismatch".to_string()));
        }
        let entry = decode_entry(payload).map_err(|e| corrupt(format!("bad entry: {e}")))?;
        entries.push(entry);
        pos = start + len as usize;
    }
    let records = entries.len() as u64;
    let unique_keys = dedup_last_wins(entries.clone()).len() as u64;
    let resolved = if deep {
        let mut ok = 0u64;
        for (i, (key, stored)) in entries.iter().enumerate() {
            let solved = key.solve().map_err(|e| StoreError::Corrupt {
                offset: 0,
                detail: format!("record {i}: key no longer solvable: {e}"),
            })?;
            if solved != *stored {
                return Err(StoreError::Corrupt {
                    offset: 0,
                    detail: format!("record {i}: stored schedule diverges from a fresh solve"),
                });
            }
            ok += 1;
        }
        Some(ok)
    } else {
        None
    };
    Ok(VerifyReport {
        records,
        unique_keys,
        bytes: bytes.len() as u64,
        resolved,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use drift_accel::gemm::GemmShape;
    use drift_accel::systolic::ArrayGeometry;
    use drift_quant::precision::Precision;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn key(m: usize, n: usize, act_high: usize, weight_high: usize) -> ScheduleKey {
        ScheduleKey {
            shape: GemmShape::new(m, 256, n).unwrap(),
            act_high,
            weight_high,
            act_precisions: (Precision::INT8, Precision::INT4),
            weight_precisions: (Precision::INT8, Precision::INT4),
            fabric: ArrayGeometry::new(8, 9).unwrap(),
        }
    }

    fn entry(m: usize) -> (ScheduleKey, Schedule) {
        let k = key(m, 64, m / 2, 32);
        (k, k.solve().unwrap())
    }

    fn temp_path(tag: &str) -> PathBuf {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let n = SEQ.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!(
            "drift-store-test-{}-{tag}-{n}.log",
            std::process::id()
        ))
    }

    #[test]
    fn append_then_load_round_trips() {
        let path = temp_path("roundtrip");
        let (report, mut writer) = StoreWriter::open(&path).unwrap();
        assert_eq!(report.records, 0);
        let entries: Vec<_> = (1..=5).map(|i| entry(i * 32)).collect();
        writer.append_batch(&entries).unwrap();
        writer.sync().unwrap();
        drop(writer);
        let loaded = load(&path).unwrap();
        assert_eq!(loaded.records, 5);
        assert_eq!(loaded.skipped, 0);
        assert!(!loaded.truncated_tail);
        assert_eq!(loaded.entries, entries);
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn compact_dedups_last_wins() {
        let path = temp_path("compact");
        let (_, mut writer) = StoreWriter::open(&path).unwrap();
        let (k, s) = entry(64);
        let newer = Schedule {
            makespan: s.makespan + 1,
            ..s
        };
        writer.append(&k, &s).unwrap();
        writer.append_batch(&[entry(96), (k, newer)]).unwrap();
        drop(writer);
        let (before, after) = compact(&path).unwrap();
        assert_eq!((before, after), (3, 2));
        let loaded = load(&path).unwrap();
        assert_eq!(loaded.records, 2);
        // Last write for the duplicated key survived.
        let kept = loaded.entries.iter().find(|(ek, _)| *ek == k).unwrap();
        assert_eq!(kept.1, newer);
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn merge_combines_and_later_inputs_win() {
        let a = temp_path("merge-a");
        let b = temp_path("merge-b");
        let out = temp_path("merge-out");
        let (k, s) = entry(64);
        let newer = Schedule {
            makespan: s.makespan + 7,
            ..s
        };
        write_snapshot(&a, &[(k, s), entry(128)]).unwrap();
        write_snapshot(&b, &[(k, newer), entry(192)]).unwrap();
        let count = merge(&[a.clone(), b.clone()], &out).unwrap();
        assert_eq!(count, 3);
        let loaded = load(&out).unwrap();
        let kept = loaded.entries.iter().find(|(ek, _)| *ek == k).unwrap();
        assert_eq!(kept.1, newer);
        for p in [a, b, out] {
            fs::remove_file(&p).unwrap();
        }
    }

    #[test]
    fn verify_passes_sound_logs_shallow_and_deep() {
        let path = temp_path("verify");
        write_snapshot(&path, &[entry(64), entry(128)]).unwrap();
        let shallow = verify(&path, false).unwrap();
        assert_eq!(shallow.records, 2);
        assert_eq!(shallow.unique_keys, 2);
        assert_eq!(shallow.resolved, None);
        let deep = verify(&path, true).unwrap();
        assert_eq!(deep.resolved, Some(2));
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn verify_deep_catches_a_diverged_schedule() {
        let path = temp_path("verify-diverge");
        let (k, s) = entry(64);
        let lying = Schedule {
            makespan: s.makespan + 1,
            ..s
        };
        write_snapshot(&path, &[(k, lying)]).unwrap();
        assert!(verify(&path, false).is_ok());
        assert!(matches!(
            verify(&path, true),
            Err(StoreError::Corrupt { .. })
        ));
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn open_resumes_after_torn_tail_and_new_appends_are_sound() {
        let path = temp_path("torn");
        let (_, mut writer) = StoreWriter::open(&path).unwrap();
        writer.append_batch(&[entry(32), entry(64)]).unwrap();
        drop(writer);
        // Simulate a crash mid-append: half a frame of garbage.
        let mut bytes = fs::read(&path).unwrap();
        bytes.extend_from_slice(&[0xde, 0xad, 0xbe]);
        fs::write(&path, &bytes).unwrap();
        let (report, mut writer) = StoreWriter::open(&path).unwrap();
        assert_eq!(report.records, 2);
        assert_eq!(report.skipped, 1);
        assert!(report.truncated_tail);
        writer.append_batch(&[entry(96)]).unwrap();
        drop(writer);
        // The torn bytes are gone; the log is strictly sound again.
        let v = verify(&path, false).unwrap();
        assert_eq!(v.records, 3);
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn fnv1a_matches_reference_vectors() {
        // Standard FNV-1a 64-bit test vectors.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x85944171f73967e8);
    }
}
