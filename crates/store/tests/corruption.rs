//! Corruption-path coverage for the store log (ISSUE 9 satellite):
//! a truncated tail, a flipped checksum byte, and a future-version
//! header must each load the valid prefix (or refuse cleanly) with the
//! skip counter incremented — and a kill -9 mid-append must never
//! prevent the next start from loading the valid prefix.

use drift_core::schedule::{Schedule, ScheduleKey};
use drift_quant::precision::Precision;
use drift_store::{
    compact, load, verify, StoreError, StoreWriter, FRAME_BYTES, HEADER_BYTES, MAGIC,
};
use std::fs;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

fn key(m: usize, n: usize, act_high: usize, weight_high: usize) -> ScheduleKey {
    ScheduleKey {
        shape: drift_accel::gemm::GemmShape::new(m, 256, n).unwrap(),
        act_high,
        weight_high,
        act_precisions: (Precision::INT8, Precision::INT4),
        weight_precisions: (Precision::INT8, Precision::INT4),
        fabric: drift_accel::systolic::ArrayGeometry::new(8, 9).unwrap(),
    }
}

fn entries(count: usize) -> Vec<(ScheduleKey, Schedule)> {
    (1..=count)
        .map(|i| {
            let k = key(i * 32, 64, i * 16, 32);
            (k, k.solve().unwrap())
        })
        .collect()
}

fn temp_path(tag: &str) -> PathBuf {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let n = SEQ.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!(
        "drift-store-corrupt-{}-{tag}-{n}.log",
        std::process::id()
    ))
}

fn fresh_log(tag: &str, count: usize) -> (PathBuf, Vec<(ScheduleKey, Schedule)>) {
    let path = temp_path(tag);
    let set = entries(count);
    let (_, mut writer) = StoreWriter::open(&path).unwrap();
    writer.append_batch(&set).unwrap();
    writer.sync().unwrap();
    (path, set)
}

#[test]
fn truncated_tail_loads_valid_prefix_and_counts_one_skip() {
    let (path, set) = fresh_log("trunc", 4);
    let full = fs::read(&path).unwrap();
    // Cut the file mid-way through the last record's payload.
    let cut = full.len() - 40;
    fs::write(&path, &full[..cut]).unwrap();
    let report = load(&path).unwrap();
    assert_eq!(report.records, 3);
    assert_eq!(report.skipped, 1);
    assert!(report.truncated_tail);
    assert_eq!(report.entries, set[..3]);
    // Strict verification refuses the same file.
    assert!(matches!(
        verify(&path, false),
        Err(StoreError::Corrupt { .. })
    ));
    fs::remove_file(&path).unwrap();
}

#[test]
fn flipped_payload_byte_skips_that_record_and_keeps_the_rest() {
    let (path, set) = fresh_log("flip", 4);
    let mut bytes = fs::read(&path).unwrap();
    // Flip one byte inside the second record's payload: its checksum
    // no longer matches, but the framing is intact, so records 1, 3,
    // and 4 all survive.
    let record_len = (bytes.len() - HEADER_BYTES) / 4;
    let target = HEADER_BYTES + record_len + FRAME_BYTES + 5;
    bytes[target] ^= 0xff;
    fs::write(&path, &bytes).unwrap();
    let report = load(&path).unwrap();
    assert_eq!(report.records, 3);
    assert_eq!(report.skipped, 1);
    assert!(!report.truncated_tail);
    assert_eq!(report.entries, [set[0], set[2], set[3]]);
    // Compaction heals the log: the corrupt record is dropped and the
    // rewritten file verifies strictly.
    let (before, after) = compact(&path).unwrap();
    assert_eq!((before, after), (4, 3));
    assert_eq!(verify(&path, true).unwrap().records, 3);
    fs::remove_file(&path).unwrap();
}

#[test]
fn flipped_checksum_byte_skips_only_that_record() {
    let (path, _) = fresh_log("sumflip", 3);
    let mut bytes = fs::read(&path).unwrap();
    // Corrupt the checksum field itself (byte 4 of the first frame).
    bytes[HEADER_BYTES + 4] ^= 0x01;
    fs::write(&path, &bytes).unwrap();
    let report = load(&path).unwrap();
    assert_eq!(report.records, 2);
    assert_eq!(report.skipped, 1);
    fs::remove_file(&path).unwrap();
}

#[test]
fn future_version_header_refuses_cleanly() {
    let (path, _) = fresh_log("future", 2);
    let mut bytes = fs::read(&path).unwrap();
    bytes[8..12].copy_from_slice(&99u32.to_le_bytes());
    fs::write(&path, &bytes).unwrap();
    match load(&path) {
        Err(StoreError::Version { found, .. }) => assert_eq!(found, 99),
        other => panic!("expected a version refusal, got {other:?}"),
    }
    // The writer refuses too — it must never append v1 frames to a
    // file claiming a future format.
    assert!(matches!(
        StoreWriter::open(&path),
        Err(StoreError::Version { .. })
    ));
    fs::remove_file(&path).unwrap();
}

#[test]
fn bad_magic_refuses_cleanly() {
    let path = temp_path("magic");
    fs::write(&path, b"not a drift store at all").unwrap();
    assert!(matches!(load(&path), Err(StoreError::Magic { .. })));
    fs::remove_file(&path).unwrap();
}

#[test]
fn header_only_and_empty_payload_edge_cases() {
    let path = temp_path("header-only");
    let mut header = Vec::new();
    header.extend_from_slice(&MAGIC);
    header.extend_from_slice(&1u32.to_le_bytes());
    header.extend_from_slice(&0u32.to_le_bytes());
    fs::write(&path, &header).unwrap();
    let report = load(&path).unwrap();
    assert_eq!(report.records, 0);
    assert_eq!(report.skipped, 0);
    assert!(!report.truncated_tail);
    fs::remove_file(&path).unwrap();
}

#[test]
fn implausible_length_field_is_a_torn_tail_not_an_allocation() {
    let (path, set) = fresh_log("hugelen", 2);
    let mut bytes = fs::read(&path).unwrap();
    // Append a frame declaring a multi-gigabyte payload: the loader
    // must treat it as a torn tail, not try to read it.
    bytes.extend_from_slice(&u32::MAX.to_le_bytes());
    bytes.extend_from_slice(&0u64.to_le_bytes());
    fs::write(&path, &bytes).unwrap();
    let report = load(&path).unwrap();
    assert_eq!(report.records, 2);
    assert_eq!(report.skipped, 1);
    assert!(report.truncated_tail);
    assert_eq!(report.entries, set);
    fs::remove_file(&path).unwrap();
}

/// The kill -9 contract: whatever byte length a crash leaves the file
/// at, the next start loads the longest valid prefix and appending
/// resumes soundly. Sweeping every possible cut length of a small log
/// covers mid-header-frame, mid-checksum, and mid-payload tears.
#[test]
fn every_possible_crash_cut_leaves_a_loadable_store() {
    let (path, set) = fresh_log("cutsweep", 3);
    let full = fs::read(&path).unwrap();
    let record_len = (full.len() - HEADER_BYTES) / 3;
    for cut in HEADER_BYTES..full.len() {
        fs::write(&path, &full[..cut]).unwrap();
        let report = load(&path).expect("a torn tail must never be fatal");
        let whole_records = (cut - HEADER_BYTES) / record_len;
        assert_eq!(
            report.records as usize, whole_records,
            "cut at {cut}: wrong prefix length"
        );
        assert_eq!(report.entries, set[..whole_records]);
        assert_eq!(
            report.skipped,
            u64::from(cut > HEADER_BYTES + whole_records * record_len)
        );
        // And the writer can always resume from the same file.
        let (resumed, mut writer) = StoreWriter::open(&path).unwrap();
        assert_eq!(resumed.records as usize, whole_records);
        writer.append_batch(&set[whole_records..]).unwrap();
        drop(writer);
        assert_eq!(load(&path).unwrap().entries, set);
    }
    fs::remove_file(&path).unwrap();
}
