//! Job execution: one simulator per worker, one RNG per job.
//!
//! Each pool thread owns a [`DriftAccelerator`] for its whole lifetime
//! (building one per job would rebuild the memory subsystem
//! constantly), and calls [`DriftAccelerator::reset`] before every job
//! so no cross-layer state — reconfiguration elision, DRAM row/
//! allocator state, the index buffer — leaks between jobs. Randomness
//! comes from a per-job ChaCha stream seeded by [`JobSpec::seed`].
//! Together these make every result a pure function of its spec: the
//! same job stream yields the same result set at any worker count and
//! any assignment of jobs to workers.

use crate::cache::ScheduleCache;
use crate::job::{JobKind, JobOutcome, JobResult, JobSpec};
use crate::queue::WorkerHandle;
use crate::stats::WorkerStats;
use crossbeam::channel::Sender;
use drift_accel::gemm::{GemmShape, GemmWorkload};
use drift_accel::systolic::ArrayGeometry;
use drift_core::accelerator::DriftAccelerator;
use drift_core::schedule::ScheduleKey;
use drift_core::selector::{record_policy_run, DriftPolicy};
use drift_nn::datagen::TokenProfile;
use drift_obs::{span, Recorder, SpanRecord, TraceId, Tracer};
use drift_quant::policy::run_policy;
use drift_quant::Precision;
use drift_tensor::rng::{derive_seed, seeded};
use drift_tensor::subtensor::SubTensorScheme;
use rand::Rng;
use std::time::Instant;

/// Executes one job on `accel`, using `cache` for schedules. Returns
/// the outcome and whether the schedule came from the cache.
///
/// Failures of any stage land in [`JobOutcome::Error`] rather than
/// tearing down the worker: one malformed job must not poison the
/// stream.
pub fn execute_job(
    spec: &JobSpec,
    accel: &mut DriftAccelerator,
    cache: &ScheduleCache,
) -> (JobOutcome, bool) {
    execute_job_recorded(spec, accel, cache, &Recorder::disabled())
}

/// [`execute_job`] with selector metrics: a Select job's per-sub-tensor
/// decisions are folded into `recorder` (the accelerator and cache
/// carry their own recorders). Outcomes are identical to
/// [`execute_job`] for any recorder state.
pub fn execute_job_recorded(
    spec: &JobSpec,
    accel: &mut DriftAccelerator,
    cache: &ScheduleCache,
    recorder: &Recorder,
) -> (JobOutcome, bool) {
    execute_job_traced(spec, accel, cache, recorder, &Tracer::disabled(), None)
}

/// [`execute_job_recorded`], additionally recording serve-tier trace
/// spans (`cache_lookup`/`solve` around the schedule cache, `execute`
/// around the simulator or selector) through `tracer`, parented under
/// `ctx` = (trace id, parent span id). With a disabled tracer or no
/// context the outcome and every metric are identical to
/// [`execute_job_recorded`].
pub fn execute_job_traced(
    spec: &JobSpec,
    accel: &mut DriftAccelerator,
    cache: &ScheduleCache,
    recorder: &Recorder,
    tracer: &Tracer,
    ctx: Option<(TraceId, u64)>,
) -> (JobOutcome, bool) {
    accel.reset();
    let ctx = if tracer.is_enabled() { ctx } else { None };
    match run_job(spec, accel, cache, recorder, tracer, ctx) {
        Ok(pair) => pair,
        Err(message) => (JobOutcome::Error { message }, false),
    }
}

/// Executes a batch group of jobs that all share one schedule key,
/// resolving that key against `cache` exactly once.
///
/// This is the serve-side half of batched submission: the gateway
/// groups a batch's items by [`schedule_key_for`] and hands each group
/// here, so `len - 1` redundant cache probes (and their shard-lock
/// acquisitions) per group collapse into a single
/// [`ScheduleCache::get_or_solve`]. Outcomes are byte-identical to
/// executing every spec individually through [`execute_job`]: each job
/// still gets its own accelerator reset and per-job seeded RNG, and
/// the shared schedule is the same pure function of the key either
/// path would resolve.
///
/// `key` must be the [`schedule_key_for`] value shared by every spec
/// in the group (`None` for the keyless group: Select jobs and invalid
/// shapes, which are executed individually). Returns one
/// `(outcome, cache_hit)` pair per spec, in order; only the first
/// keyed job reports the real probe outcome — the rest would have hit
/// by construction.
pub fn execute_group(
    key: Option<&ScheduleKey>,
    specs: &[JobSpec],
    accel: &mut DriftAccelerator,
    cache: &ScheduleCache,
    recorder: &Recorder,
) -> Vec<(JobOutcome, bool)> {
    let Some(key) = key else {
        // Keyless jobs share nothing worth amortising.
        return specs
            .iter()
            .map(|spec| execute_job_recorded(spec, accel, cache, recorder))
            .collect();
    };
    debug_assert!(specs
        .iter()
        .all(|s| schedule_key_for(s, accel.fabric()).as_ref() == Some(key)));
    let resolved = cache.get_or_solve(*key);
    specs
        .iter()
        .enumerate()
        .map(|(i, spec)| match &resolved {
            Ok((schedule, hit)) => {
                accel.reset();
                match run_with_schedule(spec, accel, schedule) {
                    Ok(outcome) => (outcome, if i == 0 { *hit } else { true }),
                    Err(message) => (JobOutcome::Error { message }, false),
                }
            }
            // A solve failure reads exactly as it would per job.
            Err(e) => (
                JobOutcome::Error {
                    message: e.to_string(),
                },
                false,
            ),
        })
        .collect()
}

/// Runs one keyed job against an already-resolved schedule — the
/// per-item tail of [`execute_group`], with the cache probe hoisted
/// out. Must mirror the corresponding [`run_job`] arms byte for byte.
fn run_with_schedule(
    spec: &JobSpec,
    accel: &mut DriftAccelerator,
    schedule: &drift_core::schedule::Schedule,
) -> Result<JobOutcome, String> {
    match &spec.kind {
        JobKind::Select { .. } => Err("select jobs carry no schedule key".to_string()),
        JobKind::Schedule { .. } => Ok(JobOutcome::Schedule {
            makespan: schedule.makespan,
            latencies: schedule.latencies,
        }),
        JobKind::Simulate { m, k, n, fa, fw } => {
            let shape = GemmShape::new(*m, *k, *n).map_err(|e| e.to_string())?;
            let (act_high, weight_high) = simulate_precision_maps(spec.seed, *m, *n, *fa, *fw);
            let workload =
                GemmWorkload::new(format!("job-{}", spec.id), shape, act_high, weight_high)
                    .map_err(|e| e.to_string())?;
            let report = accel
                .execute_with_schedule(&workload, *schedule)
                .map_err(|e| e.to_string())?;
            Ok(JobOutcome::Simulate {
                cycles: report.cycles,
                compute_cycles: report.compute_cycles,
                dram_cycles: report.dram_cycles,
                energy_pj: report.energy.total_pj(),
            })
        }
    }
}

/// Records a serve-tier `execute` span covering `start`..now.
fn record_execute_span(tracer: &Tracer, ctx: (TraceId, u64), start: Instant, kind: &str) {
    tracer.record(&SpanRecord {
        service: Some("serve"),
        trace: ctx.0,
        span: tracer.new_span_id(),
        parent: Some(ctx.1),
        stage: "execute",
        start,
        end: Instant::now(),
        job: None,
        attrs: &[("kind", kind)],
    });
}

/// The Bernoulli precision maps a Simulate job draws from its private
/// ChaCha stream — shared between execution ([`execute_job`]) and
/// routing ([`schedule_key_for`]) so both always agree on the counts.
fn simulate_precision_maps(
    seed: u64,
    m: usize,
    n: usize,
    fa: f64,
    fw: f64,
) -> (Vec<bool>, Vec<bool>) {
    let mut rng = seeded(derive_seed(seed, "serve-simulate"));
    let fa = fa.clamp(0.0, 1.0);
    let fw = fw.clamp(0.0, 1.0);
    let act_high: Vec<bool> = (0..m).map(|_| rng.gen_bool(fa)).collect();
    let weight_high: Vec<bool> = (0..n).map(|_| rng.gen_bool(fw)).collect();
    (act_high, weight_high)
}

/// The exact [`ScheduleKey`] executing `spec` on `fabric` will look up,
/// or `None` for jobs without a schedule (Select) and for invalid
/// shapes (which execution reports as a job-level error anyway).
///
/// This is the single source of truth the router tier shards by: a
/// front tier that routes every job by this key sends each distinct
/// schedule-cache entry to exactly one backend, so per-shard key sets
/// are disjoint and each shard's LRU holds only its own slice. For
/// Simulate jobs the key re-derives the seeded Bernoulli precision
/// maps, so it costs `O(m + n)` RNG draws — microseconds against a
/// millisecond-scale simulation.
pub fn schedule_key_for(spec: &JobSpec, fabric: ArrayGeometry) -> Option<ScheduleKey> {
    match &spec.kind {
        JobKind::Select { .. } => None,
        JobKind::Schedule { m, k, n, fa, fw } => {
            let shape = GemmShape::new(*m, *k, *n).ok()?;
            Some(ScheduleKey {
                shape,
                act_high: (*m as f64 * fa.clamp(0.0, 1.0)) as usize,
                weight_high: (*n as f64 * fw.clamp(0.0, 1.0)) as usize,
                act_precisions: (Precision::INT8, Precision::INT4),
                weight_precisions: (Precision::INT8, Precision::INT4),
                fabric,
            })
        }
        JobKind::Simulate { m, k, n, fa, fw } => {
            let shape = GemmShape::new(*m, *k, *n).ok()?;
            let (act_high, weight_high) = simulate_precision_maps(spec.seed, *m, *n, *fa, *fw);
            let workload =
                GemmWorkload::new(format!("job-{}", spec.id), shape, act_high, weight_high).ok()?;
            Some(ScheduleKey::for_workload(&workload, fabric))
        }
    }
}

fn run_job(
    spec: &JobSpec,
    accel: &mut DriftAccelerator,
    cache: &ScheduleCache,
    recorder: &Recorder,
    tracer: &Tracer,
    ctx: Option<(TraceId, u64)>,
) -> Result<(JobOutcome, bool), String> {
    match &spec.kind {
        JobKind::Select {
            tokens,
            hidden,
            delta,
            profile,
        } => {
            let exec_start = ctx.map(|_| Instant::now());
            let profile = match profile.as_str() {
                "cnn" => TokenProfile::cnn(),
                "vit" => TokenProfile::vit(),
                "bert" => TokenProfile::bert(),
                "llm" => TokenProfile::llm(),
                other => return Err(format!("unknown profile '{other}'")),
            };
            let data = profile
                .generate(*tokens, *hidden, spec.seed)
                .map_err(|e| e.to_string())?;
            let policy = DriftPolicy::new(*delta).map_err(|e| e.to_string())?;
            let run = run_policy(
                &data,
                &SubTensorScheme::token(*hidden),
                Precision::INT8,
                &policy,
            )
            .map_err(|e| e.to_string())?;
            record_policy_run(recorder, &run);
            if let (Some(ctx), Some(start)) = (ctx, exec_start) {
                record_execute_span(tracer, ctx, start, "select");
            }
            Ok((
                JobOutcome::Select {
                    low_subtensors: run.low_subtensors(),
                    subtensors: run.decisions.len(),
                    low_fraction: run.low_fraction(),
                },
                false,
            ))
        }
        JobKind::Schedule { m, k, n, .. } => {
            GemmShape::new(*m, *k, *n).map_err(|e| e.to_string())?;
            // Same truncation as `drift schedule`: fractions become
            // prefix counts (built inside `schedule_key_for`, the one
            // place the spec → key mapping lives).
            let key = schedule_key_for(spec, accel.fabric())
                .ok_or_else(|| "schedule job has no schedule key".to_string())?;
            let (schedule, hit) = cache
                .get_or_solve_traced(key, tracer, ctx)
                .map_err(|e| e.to_string())?;
            Ok((
                JobOutcome::Schedule {
                    makespan: schedule.makespan,
                    latencies: schedule.latencies,
                },
                hit,
            ))
        }
        JobKind::Simulate { m, k, n, fa, fw } => {
            let shape = GemmShape::new(*m, *k, *n).map_err(|e| e.to_string())?;
            // Precision maps are Bernoulli draws from the job's private
            // ChaCha stream — scattered like real selector output, yet
            // reproducible from the spec alone.
            let (act_high, weight_high) = simulate_precision_maps(spec.seed, *m, *n, *fa, *fw);
            let workload =
                GemmWorkload::new(format!("job-{}", spec.id), shape, act_high, weight_high)
                    .map_err(|e| e.to_string())?;
            let key = ScheduleKey::for_workload(&workload, accel.fabric());
            let (schedule, hit) = cache
                .get_or_solve_traced(key, tracer, ctx)
                .map_err(|e| e.to_string())?;
            let exec_start = ctx.map(|_| Instant::now());
            let report = accel
                .execute_with_schedule(&workload, schedule)
                .map_err(|e| e.to_string())?;
            if let (Some(ctx), Some(start)) = (ctx, exec_start) {
                record_execute_span(tracer, ctx, start, "simulate");
            }
            Ok((
                JobOutcome::Simulate {
                    cycles: report.cycles,
                    compute_cycles: report.compute_cycles,
                    dram_cycles: report.dram_cycles,
                    energy_pj: report.energy.total_pj(),
                },
                hit,
            ))
        }
    }
}

/// One pool thread: pulls jobs until the queue closes, sending one
/// result per job, and returns its counters.
///
/// Jobs arrive tagged with their submission sequence number, which is
/// echoed alongside the result so the runtime can keep duplicate job
/// ids sequence-stable (see the [`crate::job`] module docs).
///
/// The result channel only disconnects when the collector is gone —
/// at that point nobody can observe further results, so the worker
/// simply stops.
pub(crate) fn worker_loop(
    worker: usize,
    jobs: WorkerHandle<(u64, JobSpec)>,
    results: Sender<(u64, JobResult)>,
    cache: &ScheduleCache,
    recorder: Recorder,
    tracer: Tracer,
) -> WorkerStats {
    let mut accel =
        DriftAccelerator::paper_config().expect("the paper configuration always builds");
    accel.set_recorder(recorder.clone());
    let worker_label = worker.to_string();
    let mut stats = WorkerStats::new(worker);
    while let Some((seq, spec)) = jobs.next_job() {
        // Offline serve is its own ingress edge: the submission
        // sequence number is the sampling input, and each sampled job
        // gets a root `job` span with cache/solve/execute children.
        let job_trace = tracer
            .decide(seq)
            .context()
            .map(|c| (c.trace_id, tracer.new_span_id()));
        let start = Instant::now();
        let (outcome, cache_hit) = {
            let job_span = span!(recorder, "serve_job");
            let (outcome, cache_hit) =
                execute_job_traced(&spec, &mut accel, cache, &recorder, &tracer, job_trace);
            if let JobOutcome::Simulate { cycles, .. } = &outcome {
                job_span.add_cycles(*cycles);
            }
            (outcome, cache_hit)
        };
        let latency = start.elapsed();
        let is_error = matches!(outcome, JobOutcome::Error { .. });
        if let Some((trace, span_id)) = job_trace {
            tracer.record(&SpanRecord {
                service: None,
                trace,
                span: span_id,
                parent: None,
                stage: "job",
                start,
                end: Instant::now(),
                job: Some(spec.id),
                attrs: &[
                    ("kind", spec.kind.label()),
                    ("outcome", if is_error { "error" } else { "ok" }),
                ],
            });
        }
        if recorder.is_enabled() {
            recorder.counter_add(
                "drift_serve_jobs_total",
                &[
                    ("kind", spec.kind.label()),
                    ("outcome", if is_error { "error" } else { "ok" }),
                ],
                1,
            );
            recorder.observe(
                "drift_serve_job_latency_microseconds",
                &[("worker", &worker_label)],
                drift_obs::contract::LATENCY_US_BUCKETS,
                latency.as_micros().min(u128::from(u64::MAX)) as u64,
            );
        }
        stats.record(latency, cache_hit, is_error);
        if results
            .send((
                seq,
                JobResult {
                    id: spec.id,
                    outcome,
                },
            ))
            .is_err()
        {
            break;
        }
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;

    fn accel() -> DriftAccelerator {
        DriftAccelerator::paper_config().unwrap()
    }

    #[test]
    fn simulate_jobs_are_reproducible_across_simulators() {
        let cache = ScheduleCache::new(16, 2);
        let spec = JobSpec {
            id: 4,
            seed: 99,
            kind: JobKind::Simulate {
                m: 96,
                k: 256,
                n: 128,
                fa: 0.3,
                fw: 0.4,
            },
        };
        let (a, _) = execute_job(&spec, &mut accel(), &cache);
        // A different simulator instance with prior history must agree.
        let mut used = accel();
        let warmup = JobSpec {
            id: 0,
            seed: 1,
            kind: JobKind::Simulate {
                m: 64,
                k: 128,
                n: 64,
                fa: 0.9,
                fw: 0.1,
            },
        };
        execute_job(&warmup, &mut used, &cache);
        let (b, _) = execute_job(&spec, &mut used, &cache);
        assert_eq!(a, b);
        assert!(matches!(a, JobOutcome::Simulate { cycles, .. } if cycles > 0));
    }

    #[test]
    fn schedule_jobs_hit_the_cache_on_repeats() {
        let cache = ScheduleCache::new(16, 2);
        let spec = JobSpec {
            id: 0,
            seed: 0,
            kind: JobKind::Schedule {
                m: 128,
                k: 256,
                n: 128,
                fa: 0.25,
                fw: 0.5,
            },
        };
        let (_, hit1) = execute_job(&spec, &mut accel(), &cache);
        let (out2, hit2) = execute_job(&spec, &mut accel(), &cache);
        assert!(!hit1);
        assert!(hit2);
        assert!(matches!(out2, JobOutcome::Schedule { makespan, .. } if makespan > 0));
    }

    #[test]
    fn select_jobs_report_conversion_statistics() {
        let cache = ScheduleCache::new(4, 1);
        let spec = JobSpec {
            id: 1,
            seed: 7,
            kind: JobKind::Select {
                tokens: 64,
                hidden: 128,
                delta: 0.05,
                profile: "bert".to_string(),
            },
        };
        let (out, hit) = execute_job(&spec, &mut accel(), &cache);
        assert!(!hit);
        match out {
            JobOutcome::Select {
                low_subtensors,
                subtensors,
                low_fraction,
            } => {
                assert_eq!(subtensors, 64);
                assert!(low_subtensors <= subtensors);
                assert!((0.0..=1.0).contains(&low_fraction));
            }
            other => panic!("unexpected outcome {other:?}"),
        }
    }

    #[test]
    fn schedule_key_for_matches_execution() {
        // Pre-seeding the cache at `schedule_key_for`'s key must turn
        // the job's own lookup into a hit, for both kinds that
        // schedule. This is the property the router's key-sharding
        // relies on: the routing key IS the execution key.
        for kind in [
            JobKind::Schedule {
                m: 96,
                k: 192,
                n: 80,
                fa: 0.31,
                fw: 0.47,
            },
            JobKind::Simulate {
                m: 72,
                k: 128,
                n: 64,
                fa: 0.4,
                fw: 0.2,
            },
        ] {
            let spec = JobSpec {
                id: 9,
                seed: 13,
                kind,
            };
            let cache = ScheduleCache::new(16, 2);
            let mut accel = accel();
            let key = schedule_key_for(&spec, accel.fabric()).expect("both kinds schedule");
            cache.get_or_solve(key).unwrap();
            let (_, hit) = execute_job(&spec, &mut accel, &cache);
            assert!(hit, "execution missed the pre-seeded routing key");
        }
        let select = JobSpec {
            id: 0,
            seed: 0,
            kind: JobKind::Select {
                tokens: 8,
                hidden: 16,
                delta: 0.1,
                profile: "bert".to_string(),
            },
        };
        assert!(schedule_key_for(&select, accel().fabric()).is_none());
    }

    #[test]
    fn bad_jobs_become_error_outcomes() {
        let cache = ScheduleCache::new(4, 1);
        let bad = JobSpec {
            id: 2,
            seed: 0,
            kind: JobKind::Simulate {
                m: 0,
                k: 16,
                n: 16,
                fa: 0.5,
                fw: 0.5,
            },
        };
        let (out, _) = execute_job(&bad, &mut accel(), &cache);
        assert!(matches!(out, JobOutcome::Error { .. }));
        let bad_profile = JobSpec {
            id: 3,
            seed: 0,
            kind: JobKind::Select {
                tokens: 4,
                hidden: 8,
                delta: 0.1,
                profile: "gpt".to_string(),
            },
        };
        let (out, _) = execute_job(&bad_profile, &mut accel(), &cache);
        assert!(matches!(out, JobOutcome::Error { message } if message.contains("gpt")));
    }
}
