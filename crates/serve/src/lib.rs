//! Multi-threaded batch-simulation serving for the Drift model.
//!
//! The simulator crates answer one question at a time; this crate
//! answers streams of them. A [`runtime::serve`] call owns:
//!
//! * a **bounded job queue** ([`queue`]) — submission blocks when the
//!   queue is full, so producers can never outrun memory, and closing
//!   the queue drains then stops the pool;
//! * a **worker pool** ([`worker`]) — each thread holds its own
//!   [`drift_core::DriftAccelerator`] (reset before every job) and each
//!   job gets a private ChaCha RNG seeded from its spec, so results are
//!   a pure function of the job, not of worker assignment or timing;
//! * a **sharded LRU schedule cache** ([`cache`]) — the Eq. 8 sweep is
//!   memoised on [`drift_core::schedule::ScheduleKey`], turning
//!   repeated shapes (the common case in serving) into lookups;
//! * **statistics** ([`stats`]) — per-worker job counts, cache hits,
//!   and p50/p99 latencies, aggregated into a [`stats::ServeReport`].
//!
//! With [`runtime::serve_with_recorder`], every stage additionally
//! records into a [`drift_obs::Recorder`] — queue depth, cache
//! hits/misses, per-worker latency histograms, per-array cycle counters
//! — without changing any result (`docs/OBSERVABILITY.md` documents the
//! full metric contract).
//!
//! Jobs and results travel as JSONL ([`job`]), one JSON object per
//! line, so streams pipe through the `drift serve` CLI:
//!
//! ```text
//! $ drift serve --jobs jobs.jsonl --workers 8 > results.jsonl
//! ```
//!
//! # Example
//!
//! ```rust
//! use drift_serve::job::{JobKind, JobSpec};
//! use drift_serve::runtime::{serve, ServeConfig};
//!
//! let jobs = vec![
//!     JobSpec {
//!         id: 0,
//!         seed: 7,
//!         kind: JobKind::Schedule { m: 128, k: 256, n: 128, fa: 0.25, fw: 0.5 },
//!     },
//!     JobSpec {
//!         id: 1,
//!         seed: 8,
//!         kind: JobKind::Simulate { m: 64, k: 256, n: 64, fa: 0.5, fw: 0.5 },
//!     },
//! ];
//! let outcome = serve(jobs, &ServeConfig::with_workers(2));
//! assert_eq!(outcome.results.len(), 2);
//! assert_eq!(outcome.report.jobs, 2);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod cache;
pub mod job;
pub mod persist;
pub mod queue;
pub mod runtime;
pub mod stats;
pub mod worker;

pub use cache::{CacheStats, ScheduleCache};
pub use job::{
    read_jobs, read_jobs_lenient, synthetic_jobs, synthetic_schedule_jobs, JobKind, JobOutcome,
    JobResult, JobSpec, LenientIngest,
};
pub use persist::{open_and_preload, StoreBinding};
pub use queue::{Deadlined, QueuePolicy};
pub use runtime::{
    serve, serve_on_cache, serve_traced, serve_with_recorder, ServeConfig, ServeOutcome,
};
pub use stats::ServeReport;
