//! The sharded LRU schedule cache.
//!
//! The Eq. 8 sweep is the expensive part of a schedule/simulate job —
//! `O(C·R)` latency-model evaluations per layer — yet its answer
//! depends only on the [`ScheduleKey`] (shape, high-precision counts,
//! precisions, fabric). Serving workloads repeat shapes constantly
//! (every layer of every request of the same model), so one shared
//! cache turns almost all of those sweeps into lookups.
//!
//! The map is split into shards, each behind its own `parking_lot`
//! mutex, so workers contend only when their keys land in the same
//! shard. Within a shard, entries are stamped on use and the
//! least-recently-used one is evicted when the shard outgrows its
//! capacity slice.

use crossbeam::channel::Sender;
use drift_core::schedule::{Schedule, ScheduleKey};
use drift_obs::{span, Recorder, SpanRecord, TraceId, Tracer};
use parking_lot::Mutex;
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};

/// Aggregate cache counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that had to run the scheduler.
    pub misses: u64,
    /// Entries currently resident.
    pub entries: usize,
    /// Entries evicted to make room (LRU within a full shard).
    pub evictions: u64,
}

impl CacheStats {
    /// Hits over total lookups (0 when nothing was looked up).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

struct Entry {
    schedule: Schedule,
    last_used: u64,
}

struct Shard {
    entries: HashMap<ScheduleKey, Entry>,
    /// Monotonic use counter; larger = more recently used.
    tick: u64,
}

/// A thread-safe schedule cache shared by all workers.
pub struct ScheduleCache {
    shards: Box<[Mutex<Shard>]>,
    per_shard_capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    /// When set, every *newly solved* schedule is also sent here — the
    /// persistence spill feeding `drift-store`'s background appender.
    /// Preloaded and prewarmed entries never spill (they came from a
    /// store already). Touched only on the miss path, which already
    /// costs a ~100 µs solve, so the channel send is noise.
    spill: Mutex<Option<Sender<(ScheduleKey, Schedule)>>>,
    recorder: Recorder,
}

impl std::fmt::Debug for ScheduleCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let stats = self.stats();
        f.debug_struct("ScheduleCache")
            .field("shards", &self.shards.len())
            .field("per_shard_capacity", &self.per_shard_capacity)
            .field("stats", &stats)
            .finish()
    }
}

impl ScheduleCache {
    /// Creates a cache holding at most `capacity` schedules across
    /// `shards` shards (both clamped to at least 1).
    pub fn new(capacity: usize, shards: usize) -> Self {
        ScheduleCache::with_recorder(capacity, shards, Recorder::disabled())
    }

    /// Like [`ScheduleCache::new`], but mirroring hit/miss/residency
    /// counters and Eq. 8 solve timings into `recorder`.
    pub fn with_recorder(capacity: usize, shards: usize, recorder: Recorder) -> Self {
        let shards = shards.clamp(1, capacity.max(1));
        ScheduleCache {
            shards: (0..shards)
                .map(|_| {
                    Mutex::new(Shard {
                        entries: HashMap::new(),
                        tick: 0,
                    })
                })
                .collect(),
            per_shard_capacity: capacity.max(1).div_ceil(shards),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            spill: Mutex::new(None),
            recorder,
        }
    }

    /// Routes newly solved schedules into `tx` as well as the cache
    /// (see the `spill` field). Replaces any previous spill.
    pub fn set_spill(&self, tx: Sender<(ScheduleKey, Schedule)>) {
        *self.spill.lock() = Some(tx);
    }

    /// Detaches the spill channel, dropping the cache's sender so a
    /// receiver loop draining it sees disconnection and can exit.
    pub fn take_spill(&self) -> Option<Sender<(ScheduleKey, Schedule)>> {
        self.spill.lock().take()
    }

    fn shard_for(&self, key: &ScheduleKey) -> &Mutex<Shard> {
        let mut hasher = DefaultHasher::new();
        key.hash(&mut hasher);
        &self.shards[(hasher.finish() % self.shards.len() as u64) as usize]
    }

    /// Looks up `key`, counting a hit or miss.
    pub fn get(&self, key: &ScheduleKey) -> Option<Schedule> {
        let mut shard = self.shard_for(key).lock();
        shard.tick += 1;
        let tick = shard.tick;
        match shard.entries.get_mut(key) {
            Some(entry) => {
                entry.last_used = tick;
                self.hits.fetch_add(1, Ordering::Relaxed);
                self.recorder
                    .counter_add("drift_schedule_cache_hits_total", &[], 1);
                Some(entry.schedule)
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                self.recorder
                    .counter_add("drift_schedule_cache_misses_total", &[], 1);
                None
            }
        }
    }

    /// Inserts a schedule, evicting the shard's least-recently-used
    /// entry when the shard is full.
    pub fn insert(&self, key: ScheduleKey, schedule: Schedule) {
        let grew;
        {
            let mut shard = self.shard_for(&key).lock();
            shard.tick += 1;
            let tick = shard.tick;
            if shard.entries.len() >= self.per_shard_capacity && !shard.entries.contains_key(&key) {
                // O(shard) scan: shards are small (capacity / shard count),
                // and eviction only runs when a full shard takes a new key.
                if let Some(evict) = shard
                    .entries
                    .iter()
                    .min_by_key(|(_, e)| e.last_used)
                    .map(|(k, _)| *k)
                {
                    shard.entries.remove(&evict);
                    self.evictions.fetch_add(1, Ordering::Relaxed);
                    self.recorder
                        .counter_add("drift_serve_cache_evictions_total", &[], 1);
                }
            }
            let before = shard.entries.len();
            shard.entries.insert(
                key,
                Entry {
                    schedule,
                    last_used: tick,
                },
            );
            grew = shard.entries.len() > before;
        }
        if grew {
            // Only net growth moves the residency gauge; an insert that
            // evicted (or replaced an existing key) is a wash. Tracking
            // the delta here keeps `snapshot` from locking every shard.
            self.recorder
                .gauge_add("drift_schedule_cache_entries", &[], 1);
        }
    }

    /// Warm-starts the cache from already-solved entries (a store load
    /// or a reshard prewarm): inserts without touching the hit/miss
    /// counters and without spilling — these schedules are already
    /// durable somewhere. Normal LRU eviction applies, so preloading
    /// more than the capacity keeps only the most recent entries.
    /// Returns how many entries were inserted.
    pub fn preload(&self, entries: &[(ScheduleKey, Schedule)]) -> usize {
        for (key, schedule) in entries {
            self.insert(*key, *schedule);
        }
        entries.len()
    }

    /// Snapshots the resident entries for persistence. Within each
    /// shard, entries come out least-recently-used first, so a
    /// [`ScheduleCache::preload`] of the result into a same-shaped
    /// cache reproduces each shard's eviction order.
    pub fn export(&self) -> Vec<(ScheduleKey, Schedule)> {
        let mut out = Vec::new();
        for shard in self.shards.iter() {
            let shard = shard.lock();
            let mut entries: Vec<_> = shard
                .entries
                .iter()
                .map(|(k, e)| (e.last_used, *k, e.schedule))
                .collect();
            entries.sort_unstable_by_key(|(used, ..)| *used);
            out.extend(entries.into_iter().map(|(_, k, s)| (k, s)));
        }
        out
    }

    /// Returns `key`'s schedule, running the Eq. 8 sweep on a miss.
    /// The `bool` is true on a hit. Because [`ScheduleKey::solve`] is
    /// pure, concurrent misses on one key may both compute — they
    /// insert identical schedules, trading that rare duplicated sweep
    /// for never holding a shard lock across the sweep.
    ///
    /// # Errors
    ///
    /// Propagates [`ScheduleKey::solve`] errors (nothing is cached).
    pub fn get_or_solve(&self, key: ScheduleKey) -> drift_core::Result<(Schedule, bool)> {
        self.get_or_solve_traced(key, &Tracer::disabled(), None)
    }

    /// [`ScheduleCache::get_or_solve`], additionally recording
    /// serve-tier `cache_lookup` (and, on a miss, `solve`) trace spans
    /// parented under `ctx` = (trace id, parent span id). With a
    /// disabled tracer or no context the behaviour — including every
    /// recorder metric — is identical to [`ScheduleCache::get_or_solve`].
    ///
    /// # Errors
    ///
    /// Propagates [`ScheduleKey::solve`] errors (nothing is cached).
    pub fn get_or_solve_traced(
        &self,
        key: ScheduleKey,
        tracer: &Tracer,
        ctx: Option<(TraceId, u64)>,
    ) -> drift_core::Result<(Schedule, bool)> {
        use std::time::Instant;
        let trace = if tracer.is_enabled() { ctx } else { None };
        let lookup_start = trace.map(|_| Instant::now());
        let got = self.get(&key);
        if let (Some((trace_id, parent)), Some(lookup_start)) = (trace, lookup_start) {
            tracer.record(&SpanRecord {
                service: Some("serve"),
                trace: trace_id,
                span: tracer.new_span_id(),
                parent: Some(parent),
                stage: "cache_lookup",
                start: lookup_start,
                end: Instant::now(),
                job: None,
                attrs: &[("hit", if got.is_some() { "true" } else { "false" })],
            });
        }
        if let Some(schedule) = got {
            return Ok((schedule, true));
        }
        let trace_solve_start = trace.map(|_| Instant::now());
        let solve_start = self.recorder.is_enabled().then(Instant::now);
        let schedule = {
            let _solve = span!(self.recorder, "schedule_solve");
            key.solve()?
        };
        if let Some(start) = solve_start {
            self.recorder
                .counter_add("drift_schedule_solves_total", &[], 1);
            self.recorder.observe(
                "drift_schedule_solve_nanoseconds",
                &[],
                drift_obs::contract::SOLVE_NS_BUCKETS,
                start.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64,
            );
        }
        if let (Some((trace_id, parent)), Some(start)) = (trace, trace_solve_start) {
            tracer.record(&SpanRecord {
                service: Some("serve"),
                trace: trace_id,
                span: tracer.new_span_id(),
                parent: Some(parent),
                stage: "solve",
                start,
                end: Instant::now(),
                job: None,
                attrs: &[],
            });
        }
        self.insert(key, schedule);
        if let Some(tx) = self.spill.lock().as_ref() {
            // A disconnected receiver (persistence already shut down)
            // must never fail a solve; the entry is simply not spilled.
            let _ = tx.send((key, schedule));
        }
        Ok((schedule, false))
    }

    /// Current counters and residency.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            entries: self.shards.iter().map(|s| s.lock().entries.len()).sum(),
            evictions: self.evictions.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use drift_accel::gemm::GemmShape;
    use drift_accel::systolic::ArrayGeometry;
    use drift_quant::Precision;

    fn key(m: usize, n: usize, ah: usize, wh: usize) -> ScheduleKey {
        ScheduleKey {
            shape: GemmShape::new(m, 256, n).unwrap(),
            act_high: ah,
            weight_high: wh,
            act_precisions: (Precision::INT8, Precision::INT4),
            weight_precisions: (Precision::INT8, Precision::INT4),
            fabric: ArrayGeometry::new(8, 9).unwrap(),
        }
    }

    #[test]
    fn second_lookup_hits_and_matches_solve() {
        let cache = ScheduleCache::new(64, 4);
        let k = key(64, 64, 16, 8);
        let (first, hit1) = cache.get_or_solve(k).unwrap();
        let (second, hit2) = cache.get_or_solve(k).unwrap();
        assert!(!hit1);
        assert!(hit2);
        assert_eq!(first, second);
        assert_eq!(first, k.solve().unwrap());
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (1, 1, 1));
        assert!((stats.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn lru_evicts_the_coldest_entry() {
        // One shard of capacity 2 makes the eviction order observable.
        let cache = ScheduleCache::new(2, 1);
        let (a, b, c) = (key(32, 32, 8, 8), key(48, 32, 8, 8), key(64, 32, 8, 8));
        cache.get_or_solve(a).unwrap();
        cache.get_or_solve(b).unwrap();
        cache.get(&a); // refresh a: b is now the LRU entry
        cache.get_or_solve(c).unwrap(); // evicts b
        assert!(cache.get(&a).is_some());
        assert!(cache.get(&b).is_none());
        assert!(cache.get(&c).is_some());
        assert_eq!(cache.stats().entries, 2);
    }

    #[test]
    fn concurrent_workers_agree_on_schedules() {
        let cache = ScheduleCache::new(128, 8);
        let baseline: Vec<_> = (0..8)
            .map(|i| key(64 + i * 8, 64, 16, 8).solve().unwrap())
            .collect();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for round in 0..3 {
                        for (i, expected) in baseline.iter().enumerate() {
                            let k = key(64 + i * 8, 64, 16, 8);
                            let (got, _) = cache.get_or_solve(k).unwrap();
                            assert_eq!(&got, expected, "round {round}");
                        }
                    }
                });
            }
        });
        let stats = cache.stats();
        assert_eq!(stats.hits + stats.misses, 4 * 3 * 8);
        assert!(stats.hits > 0);
        assert_eq!(stats.entries, 8);
    }
}
