//! The batch-serving runtime: queue + worker pool + cache + report.

use crate::cache::ScheduleCache;
use crate::job::{JobResult, JobSpec};
use crate::queue::job_queue;
use crate::stats::ServeReport;
use crate::worker::worker_loop;
use crossbeam::channel::unbounded;
use std::time::Instant;

/// Tunables for one serve run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeConfig {
    /// Worker threads (at least 1).
    pub workers: usize,
    /// Maximum jobs buffered in the queue before `submit` blocks.
    pub queue_depth: usize,
    /// Total schedules the cache may hold.
    pub cache_capacity: usize,
    /// Cache shard count (more shards, less lock contention).
    pub cache_shards: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: 4,
            queue_depth: 256,
            cache_capacity: 4096,
            cache_shards: 16,
        }
    }
}

impl ServeConfig {
    /// The default configuration with `workers` threads.
    pub fn with_workers(workers: usize) -> Self {
        ServeConfig {
            workers,
            ..ServeConfig::default()
        }
    }
}

/// Everything a serve run produces.
#[derive(Debug, Clone)]
pub struct ServeOutcome {
    /// One result per submitted job, sorted by job id.
    pub results: Vec<JobResult>,
    /// Throughput, latency, and cache statistics.
    pub report: ServeReport,
}

/// Runs `jobs` on a worker pool and collects every result.
///
/// Jobs are fed through a bounded queue (backpressure keeps at most
/// `queue_depth` in flight beyond what workers hold), workers pull
/// until the queue drains, and the pool shuts down gracefully: exactly
/// one result per job, regardless of worker count. Results are sorted
/// by id before returning so equal job streams compare equal across
/// configurations.
pub fn serve(jobs: Vec<JobSpec>, config: &ServeConfig) -> ServeOutcome {
    let cache = ScheduleCache::new(config.cache_capacity.max(1), config.cache_shards.max(1));
    let workers = config.workers.max(1);
    let (queue, worker_handle) = job_queue(config.queue_depth);
    let (result_tx, result_rx) = unbounded();

    let start = Instant::now();
    let (mut results, worker_stats) = std::thread::scope(|scope| {
        let threads: Vec<_> = (0..workers)
            .map(|i| {
                let handle = worker_handle.clone();
                let tx = result_tx.clone();
                let cache = &cache;
                scope.spawn(move || worker_loop(i, handle, tx, cache))
            })
            .collect();
        // The scope keeps only the workers' clones alive: when the last
        // worker exits, the result channel disconnects and collection
        // below terminates.
        drop(worker_handle);
        drop(result_tx);

        for job in jobs {
            if queue.submit(job).is_err() {
                // Every worker died (only possible via a panic, which
                // the scope will re-raise on join); stop feeding.
                break;
            }
        }
        queue.close();

        let results: Vec<JobResult> = result_rx.iter().collect();
        let stats = threads
            .into_iter()
            .map(|t| t.join().expect("worker panicked"))
            .collect::<Vec<_>>();
        (results, stats)
    });
    let wall = start.elapsed();

    results.sort_by_key(|r| r.id);
    ServeOutcome {
        results,
        report: ServeReport::aggregate(&worker_stats, cache.stats(), wall),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::synthetic_jobs;
    use std::collections::HashSet;

    #[test]
    fn every_job_gets_exactly_one_result() {
        let jobs = synthetic_jobs(120, 6, 11);
        let outcome = serve(jobs.clone(), &ServeConfig::with_workers(4));
        assert_eq!(outcome.results.len(), jobs.len());
        let ids: HashSet<u64> = outcome.results.iter().map(|r| r.id).collect();
        assert_eq!(ids.len(), jobs.len(), "duplicated or lost ids");
        assert_eq!(outcome.report.jobs, jobs.len() as u64);
        assert_eq!(outcome.report.errors, 0);
        assert_eq!(outcome.report.workers.len(), 4);
    }

    #[test]
    fn worker_count_does_not_change_results() {
        let jobs = synthetic_jobs(60, 4, 23);
        let solo = serve(jobs.clone(), &ServeConfig::with_workers(1));
        let pool = serve(jobs, &ServeConfig::with_workers(4));
        assert_eq!(solo.results, pool.results);
    }

    #[test]
    fn repeated_shapes_hit_the_cache() {
        let jobs = synthetic_jobs(100, 2, 5);
        let outcome = serve(jobs, &ServeConfig::with_workers(2));
        assert!(
            outcome.report.cache.hit_rate() > 0.0,
            "expected cache hits on a 2-shape stream: {:?}",
            outcome.report.cache
        );
    }

    #[test]
    fn zero_workers_is_clamped_to_one() {
        let jobs = synthetic_jobs(5, 2, 1);
        let outcome = serve(
            jobs,
            &ServeConfig {
                workers: 0,
                ..ServeConfig::default()
            },
        );
        assert_eq!(outcome.results.len(), 5);
        assert_eq!(outcome.report.workers.len(), 1);
    }
}
