//! The batch-serving runtime: queue + worker pool + cache + report.

use crate::cache::ScheduleCache;
use crate::job::{JobResult, JobSpec};
use crate::queue::{job_queue_with_policy, QueuePolicy};
use crate::stats::ServeReport;
use crate::worker::worker_loop;
use crossbeam::channel::unbounded;
use drift_obs::{Recorder, Tracer};
use std::time::Instant;

/// Tunables for one serve run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeConfig {
    /// Worker threads (at least 1).
    pub workers: usize,
    /// Maximum jobs buffered in the queue before `submit` blocks.
    pub queue_depth: usize,
    /// Total schedules the cache may hold.
    pub cache_capacity: usize,
    /// Cache shard count (more shards, less lock contention).
    pub cache_shards: usize,
    /// Queue discipline. Offline serve jobs carry no deadlines, so
    /// [`QueuePolicy::Edf`] degenerates to FIFO here; the field exists
    /// so `drift serve --queue edf` exercises the same heap the
    /// gateway runs (see `docs/SCHEDULING.md`).
    pub queue: QueuePolicy,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: 4,
            queue_depth: 256,
            cache_capacity: 4096,
            cache_shards: 16,
            queue: QueuePolicy::Fifo,
        }
    }
}

impl ServeConfig {
    /// The default configuration with `workers` threads.
    pub fn with_workers(workers: usize) -> Self {
        ServeConfig {
            workers,
            ..ServeConfig::default()
        }
    }
}

/// Everything a serve run produces.
#[derive(Debug, Clone)]
pub struct ServeOutcome {
    /// One result per submitted job, sorted by job id.
    pub results: Vec<JobResult>,
    /// Throughput, latency, and cache statistics.
    pub report: ServeReport,
}

/// Runs `jobs` on a worker pool and collects every result.
///
/// Jobs are fed through a bounded queue (backpressure keeps at most
/// `queue_depth` in flight beyond what workers hold), workers pull
/// until the queue drains, and the pool shuts down gracefully: exactly
/// one result per job, regardless of worker count. Results are sorted
/// by id before returning so equal job streams compare equal across
/// configurations.
pub fn serve(jobs: Vec<JobSpec>, config: &ServeConfig) -> ServeOutcome {
    serve_with_recorder(jobs, config, Recorder::disabled())
}

/// [`serve`] with observability: every stage of the pipeline — queue,
/// cache, workers, and each worker's simulator — records into
/// `recorder` (see `docs/OBSERVABILITY.md` for the metric contract).
///
/// Results and the report are identical to [`serve`] for the same job
/// stream: recording is strictly write-only.
pub fn serve_with_recorder(
    jobs: Vec<JobSpec>,
    config: &ServeConfig,
    recorder: Recorder,
) -> ServeOutcome {
    serve_traced(jobs, config, recorder, Tracer::disabled())
}

/// [`serve_with_recorder`] with distributed tracing: the runtime acts
/// as its own ingress edge, head-sampling jobs by submission sequence
/// number and recording serve-tier spans through `tracer`. With a
/// disabled tracer results are identical to [`serve_with_recorder`].
pub fn serve_traced(
    jobs: Vec<JobSpec>,
    config: &ServeConfig,
    recorder: Recorder,
    tracer: Tracer,
) -> ServeOutcome {
    let cache = ScheduleCache::with_recorder(
        config.cache_capacity.max(1),
        config.cache_shards.max(1),
        recorder.clone(),
    );
    serve_on_cache(jobs, config, recorder, tracer, &cache)
}

/// [`serve_traced`] over a caller-owned cache. The caller may have
/// warm-started the cache from a `drift-store` log and attached a
/// persistence spill before the run; the runtime itself neither knows
/// nor cares — results are a pure function of the job stream either
/// way (warm-vs-cold byte-identity is tested).
pub fn serve_on_cache(
    jobs: Vec<JobSpec>,
    config: &ServeConfig,
    recorder: Recorder,
    tracer: Tracer,
    cache: &ScheduleCache,
) -> ServeOutcome {
    let workers = config.workers.max(1);
    recorder.gauge_set("drift_serve_workers", &[], workers as i64);
    let (queue, worker_handle) = job_queue_with_policy(config.queue, config.queue_depth);
    let (result_tx, result_rx) = unbounded();

    let start = Instant::now();
    let (mut results, worker_stats) = std::thread::scope(|scope| {
        let threads: Vec<_> = (0..workers)
            .map(|i| {
                let handle = worker_handle.clone();
                let tx = result_tx.clone();
                let recorder = recorder.clone();
                let tracer = tracer.clone();
                scope.spawn(move || worker_loop(i, handle, tx, cache, recorder, tracer))
            })
            .collect();
        // The scope keeps only the workers' clones alive: when the last
        // worker exits, the result channel disconnects and collection
        // below terminates.
        drop(worker_handle);
        drop(result_tx);

        // Tag each job with its submission sequence number so results
        // for duplicate ids stay in submission order (see the
        // `crate::job` module docs on duplicate-id semantics).
        for job in jobs.into_iter().enumerate().map(|(seq, j)| (seq as u64, j)) {
            let job = if recorder.is_enabled() {
                // Probe without blocking first so a full queue is
                // visible as a backpressure stall before we commit to
                // the blocking submit.
                match queue.try_submit(job) {
                    Ok(()) => {
                        record_queue_depth(&recorder, &queue);
                        continue;
                    }
                    Err(job) => {
                        recorder.counter_add("drift_serve_backpressure_stalls_total", &[], 1);
                        job
                    }
                }
            } else {
                job
            };
            if queue.submit(job).is_err() {
                // Every worker died (only possible via a panic, which
                // the scope will re-raise on join); stop feeding.
                break;
            }
            record_queue_depth(&recorder, &queue);
        }
        queue.close();

        let results: Vec<(u64, JobResult)> = result_rx.iter().collect();
        let stats = threads
            .into_iter()
            .map(|t| t.join().expect("worker panicked"))
            .collect::<Vec<_>>();
        (results, stats)
    });
    let wall = start.elapsed();
    // Every job has drained by now.
    recorder.gauge_set("drift_serve_queue_depth", &[], 0);

    // Sequence-stable order: by id, then by submission order, so
    // duplicate ids come back deterministically at any worker count.
    results.sort_by_key(|(seq, r)| (r.id, *seq));
    ServeOutcome {
        results: results.into_iter().map(|(_, r)| r).collect(),
        report: ServeReport::aggregate(&worker_stats, cache.stats(), wall),
    }
}

/// Samples the queue backlog after a submit: the live gauge plus a
/// histogram of observed depths (for the p99 in `EXPERIMENTS.md`).
fn record_queue_depth(recorder: &Recorder, queue: &crate::queue::JobQueue<(u64, JobSpec)>) {
    if recorder.is_enabled() {
        let depth = queue.backlog() as u64;
        recorder.gauge_set("drift_serve_queue_depth", &[], depth as i64);
        recorder.observe(
            "drift_serve_queue_depth_sampled",
            &[],
            drift_obs::contract::QUEUE_DEPTH_BUCKETS,
            depth,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::synthetic_jobs;
    use std::collections::HashSet;

    #[test]
    fn every_job_gets_exactly_one_result() {
        let jobs = synthetic_jobs(120, 6, 11);
        let outcome = serve(jobs.clone(), &ServeConfig::with_workers(4));
        assert_eq!(outcome.results.len(), jobs.len());
        let ids: HashSet<u64> = outcome.results.iter().map(|r| r.id).collect();
        assert_eq!(ids.len(), jobs.len(), "duplicated or lost ids");
        assert_eq!(outcome.report.jobs, jobs.len() as u64);
        assert_eq!(outcome.report.errors, 0);
        assert_eq!(outcome.report.workers.len(), 4);
    }

    #[test]
    fn worker_count_does_not_change_results() {
        let jobs = synthetic_jobs(60, 4, 23);
        let solo = serve(jobs.clone(), &ServeConfig::with_workers(1));
        let pool = serve(jobs, &ServeConfig::with_workers(4));
        assert_eq!(solo.results, pool.results);
    }

    #[test]
    fn duplicate_ids_are_echoed_both_and_sequence_stable() {
        use crate::job::{JobKind, JobOutcome};
        // Two distinct jobs sharing id 7, interleaved with normal jobs.
        let jobs = vec![
            JobSpec {
                id: 7,
                seed: 1,
                kind: JobKind::Schedule {
                    m: 64,
                    k: 128,
                    n: 64,
                    fa: 0.25,
                    fw: 0.5,
                },
            },
            JobSpec {
                id: 3,
                seed: 2,
                kind: JobKind::Schedule {
                    m: 128,
                    k: 128,
                    n: 128,
                    fa: 0.5,
                    fw: 0.5,
                },
            },
            JobSpec {
                id: 7,
                seed: 9,
                kind: JobKind::Select {
                    tokens: 16,
                    hidden: 32,
                    delta: 0.05,
                    profile: "bert".to_string(),
                },
            },
        ];
        let solo = serve(jobs.clone(), &ServeConfig::with_workers(1));
        let pool = serve(jobs, &ServeConfig::with_workers(4));
        // Both id-7 jobs come back, in submission order: the Schedule
        // outcome (submitted first) before the Select outcome.
        for outcome in [&solo, &pool] {
            let ids: Vec<u64> = outcome.results.iter().map(|r| r.id).collect();
            assert_eq!(ids, vec![3, 7, 7]);
            assert!(matches!(
                outcome.results[1].outcome,
                JobOutcome::Schedule { .. }
            ));
            assert!(matches!(
                outcome.results[2].outcome,
                JobOutcome::Select { .. }
            ));
        }
        assert_eq!(solo.results, pool.results);
    }

    #[test]
    fn repeated_shapes_hit_the_cache() {
        let jobs = synthetic_jobs(100, 2, 5);
        let outcome = serve(jobs, &ServeConfig::with_workers(2));
        assert!(
            outcome.report.cache.hit_rate() > 0.0,
            "expected cache hits on a 2-shape stream: {:?}",
            outcome.report.cache
        );
    }

    #[test]
    fn recorder_does_not_change_serve_results() {
        // The acceptance bar: observability on vs. off is invisible in
        // the result stream.
        let jobs = synthetic_jobs(80, 5, 31);
        let config = ServeConfig::with_workers(3);
        let plain = serve(jobs.clone(), &config);
        let rec = Recorder::enabled();
        let observed = serve_with_recorder(jobs, &config, rec.clone());
        assert_eq!(plain.results, observed.results);
        assert_eq!(plain.report.jobs, observed.report.jobs);
        assert_eq!(plain.report.cache.hits, observed.report.cache.hits);
        assert_eq!(plain.report.cache.misses, observed.report.cache.misses);

        // The recorder saw the run end to end.
        let snap = rec.registry().unwrap().snapshot();
        assert_eq!(snap.counter_sum("drift_serve_jobs_total"), 80);
        assert_eq!(
            snap.counter_sum("drift_schedule_cache_hits_total"),
            observed.report.cache.hits
        );
        assert_eq!(
            snap.counter_sum("drift_schedule_cache_misses_total"),
            observed.report.cache.misses
        );
        let latency = snap
            .histogram_merged("drift_serve_job_latency_microseconds")
            .expect("latency histogram present");
        assert_eq!(latency.count(), 80);
        let stages = rec.registry().unwrap().stages();
        assert_eq!(stages["serve_job"].calls, 80);
        assert!(stages.contains_key("serve_job/schedule_solve"));
    }

    #[test]
    fn prometheus_export_covers_the_serve_pipeline() {
        let jobs = synthetic_jobs(60, 4, 17);
        let rec = Recorder::enabled();
        serve_with_recorder(jobs, &ServeConfig::with_workers(2), rec.clone());
        let text = rec.registry().unwrap().snapshot().to_prometheus();
        // The acceptance criteria's minimum exported set.
        for needle in [
            "drift_serve_queue_depth",
            "drift_schedule_cache_hits_total",
            "drift_schedule_cache_misses_total",
            "drift_array_busy_cycles_total{array=\"",
            "drift_serve_job_latency_microseconds_bucket{",
            "drift_serve_workers 2",
            "drift_selector_decisions_total{decision=\"",
        ] {
            assert!(text.contains(needle), "missing {needle} in:\n{text}");
        }
    }

    #[test]
    fn zero_workers_is_clamped_to_one() {
        let jobs = synthetic_jobs(5, 2, 1);
        let outcome = serve(
            jobs,
            &ServeConfig {
                workers: 0,
                ..ServeConfig::default()
            },
        );
        assert_eq!(outcome.results.len(), 5);
        assert_eq!(outcome.report.workers.len(), 1);
    }
}
