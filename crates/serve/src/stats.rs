//! Per-worker statistics and the final serve report.

use crate::cache::CacheStats;
use std::time::Duration;

/// Counters one worker accumulates while it runs. Latencies are kept
/// raw (nanoseconds per job) and reduced to percentiles at summary
/// time.
#[derive(Debug, Clone)]
pub struct WorkerStats {
    /// Worker index within the pool.
    pub worker: usize,
    /// Jobs completed (including ones that returned an error outcome).
    pub jobs: u64,
    /// Jobs whose outcome was an error.
    pub errors: u64,
    /// Jobs whose schedule came from the cache.
    pub cache_hits: u64,
    latencies_ns: Vec<u64>,
}

impl WorkerStats {
    /// Fresh counters for worker `worker`.
    pub fn new(worker: usize) -> Self {
        WorkerStats {
            worker,
            jobs: 0,
            errors: 0,
            cache_hits: 0,
            latencies_ns: Vec::new(),
        }
    }

    /// Records one finished job.
    pub fn record(&mut self, latency: Duration, cache_hit: bool, is_error: bool) {
        self.jobs += 1;
        self.cache_hits += u64::from(cache_hit);
        self.errors += u64::from(is_error);
        self.latencies_ns
            .push(latency.as_nanos().min(u128::from(u64::MAX)) as u64);
    }

    /// Reduces the raw latencies to a report line.
    pub fn summarize(&self) -> WorkerSummary {
        let mut sorted = self.latencies_ns.clone();
        sorted.sort_unstable();
        WorkerSummary {
            worker: self.worker,
            jobs: self.jobs,
            errors: self.errors,
            cache_hits: self.cache_hits,
            p50_us: percentile_ns(&sorted, 50.0) as f64 / 1_000.0,
            p99_us: percentile_ns(&sorted, 99.0) as f64 / 1_000.0,
        }
    }
}

/// Nearest-rank percentile of an already-sorted sample (0 when empty).
pub fn percentile_ns(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = (p.clamp(0.0, 100.0) / 100.0 * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// One worker's line in the final report.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkerSummary {
    /// Worker index within the pool.
    pub worker: usize,
    /// Jobs completed.
    pub jobs: u64,
    /// Jobs whose outcome was an error.
    pub errors: u64,
    /// Jobs whose schedule came from the cache.
    pub cache_hits: u64,
    /// Median per-job latency, µs.
    pub p50_us: f64,
    /// 99th-percentile per-job latency, µs.
    pub p99_us: f64,
}

/// The aggregated outcome of one serve run.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeReport {
    /// Total jobs completed across all workers.
    pub jobs: u64,
    /// Jobs that returned an error outcome.
    pub errors: u64,
    /// Wall-clock time for the whole batch.
    pub wall: Duration,
    /// Completed jobs per wall-clock second.
    pub jobs_per_sec: f64,
    /// Schedule-cache counters at the end of the run.
    pub cache: CacheStats,
    /// Per-worker summaries, in worker order.
    pub workers: Vec<WorkerSummary>,
}

impl ServeReport {
    /// Builds the report from worker stats and the cache's counters.
    pub fn aggregate(workers: &[WorkerStats], cache: CacheStats, wall: Duration) -> Self {
        let jobs: u64 = workers.iter().map(|w| w.jobs).sum();
        let secs = wall.as_secs_f64();
        ServeReport {
            jobs,
            errors: workers.iter().map(|w| w.errors).sum(),
            wall,
            jobs_per_sec: if secs > 0.0 { jobs as f64 / secs } else { 0.0 },
            cache,
            workers: workers.iter().map(WorkerStats::summarize).collect(),
        }
    }

    /// A human-readable multi-line rendering.
    pub fn render(&self) -> String {
        let mut out = format!(
            "served {} jobs ({} errors) in {:.1} ms — {:.0} jobs/s, cache hit rate {:.1}% ({} entries)\n",
            self.jobs,
            self.errors,
            self.wall.as_secs_f64() * 1e3,
            self.jobs_per_sec,
            self.cache.hit_rate() * 100.0,
            self.cache.entries,
        );
        out.push_str("worker   jobs  cache-hits   p50(us)   p99(us)\n");
        for w in &self.workers {
            out.push_str(&format!(
                "{:>6} {:>6} {:>11} {:>9.1} {:>9.1}\n",
                w.worker, w.jobs, w.cache_hits, w.p50_us, w.p99_us
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_use_nearest_rank() {
        let sorted: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile_ns(&sorted, 50.0), 50);
        assert_eq!(percentile_ns(&sorted, 99.0), 99);
        assert_eq!(percentile_ns(&sorted, 100.0), 100);
        assert_eq!(percentile_ns(&[], 50.0), 0);
        assert_eq!(percentile_ns(&[7], 99.0), 7);
    }

    #[test]
    fn worker_stats_reduce_to_summary() {
        let mut stats = WorkerStats::new(3);
        for i in 0..10 {
            stats.record(Duration::from_micros(100 + i * 10), i % 2 == 0, false);
        }
        stats.record(Duration::from_micros(5_000), false, true);
        let s = stats.summarize();
        assert_eq!(s.worker, 3);
        assert_eq!(s.jobs, 11);
        assert_eq!(s.errors, 1);
        assert_eq!(s.cache_hits, 5);
        assert!(s.p50_us >= 100.0 && s.p50_us <= 200.0);
        assert!((s.p99_us - 5_000.0).abs() < 1.0);
    }

    #[test]
    fn report_aggregates_and_renders() {
        let mut a = WorkerStats::new(0);
        let mut b = WorkerStats::new(1);
        a.record(Duration::from_micros(50), true, false);
        b.record(Duration::from_micros(150), false, false);
        let cache = CacheStats {
            hits: 1,
            misses: 1,
            entries: 1,
            evictions: 0,
        };
        let report = ServeReport::aggregate(&[a, b], cache, Duration::from_millis(10));
        assert_eq!(report.jobs, 2);
        assert_eq!(report.errors, 0);
        assert!((report.jobs_per_sec - 200.0).abs() < 1e-9);
        let text = report.render();
        assert!(text.contains("2 jobs"));
        assert!(text.contains("hit rate 50.0%"));
    }
}
