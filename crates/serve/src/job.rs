//! Job specifications and results, with their JSONL wire format.
//!
//! One job is one line of JSON on the way in and one line on the way
//! out, so job streams pipe naturally between processes:
//!
//! ```text
//! {"id":0,"seed":7,"kind":{"Schedule":{"m":512,"k":768,"n":768,"fa":0.2,"fw":0.1}}}
//! {"id":1,"seed":9,"kind":{"Simulate":{"m":256,"k":1024,"n":1024,"fa":0.5,"fw":0.25}}}
//! {"id":2,"seed":3,"kind":{"Select":{"tokens":128,"hidden":768,"delta":0.027,"profile":"bert"}}}
//! ```
//!
//! A result carries only data derived from the job's own fields and its
//! seeded RNG — never from scheduling accidents like which worker ran
//! it or whether the schedule cache happened to hit — so a job stream
//! produces the same result set at any worker count.
//!
//! # Duplicate job ids
//!
//! Ids are caller-chosen correlation tokens, not keys: the runtime
//! never deduplicates on them. A stream that submits the same id twice
//! gets **two** results, each echoing that id, and the result order is
//! **sequence-stable** — results sort by `(id, submission order)`, so
//! duplicates come back in the order their jobs were submitted,
//! identically at any worker count. Callers that need to tell
//! duplicates apart should simply use distinct ids ([`synthetic_jobs`]
//! issues the `0..count` sequence); the networked gateway inherits the
//! same echo-both semantics, but responses there are correlated per
//! connection, so pipelined duplicates within one connection are
//! indistinguishable to that client.
//!
//! # Strict vs. lenient ingest
//!
//! [`read_jobs`] is strict — the first malformed line aborts the read
//! with its line number, which is what an offline batch wants (fail
//! fast, fix the file). [`read_jobs_lenient`] instead skips malformed
//! lines, reporting each with its line number and counting them into
//! the `drift_serve_jobs_rejected_total` metric — what a long-lived
//! ingest wants (one bad producer must not poison the stream). Both
//! skip blank lines.

use drift_obs::Recorder;
use serde::{Deserialize, Serialize};
use std::io::BufRead;

/// One unit of work for the serve runtime.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobSpec {
    /// Caller-chosen identifier echoed into the matching [`JobResult`].
    pub id: u64,
    /// Seed for the job's private RNG; equal specs give equal results.
    pub seed: u64,
    /// What to compute.
    pub kind: JobKind,
}

/// The job kinds, mirroring the `drift` CLI's offline subcommands.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum JobKind {
    /// Run the precision selector on a synthetic activation tensor.
    Select {
        /// Streamed tokens (sub-tensors).
        tokens: usize,
        /// Hidden dimension (elements per sub-tensor).
        hidden: usize,
        /// Density threshold δ of Eq. 6.
        delta: f64,
        /// Data profile: `cnn`, `vit`, `bert`, or `llm`.
        profile: String,
    },
    /// Solve Eq. 8 for a precision mix on the paper fabric.
    Schedule {
        /// Streamed dimension.
        m: usize,
        /// Reduction dimension.
        k: usize,
        /// Output dimension.
        n: usize,
        /// Fraction of high-precision activation rows.
        fa: f64,
        /// Fraction of high-precision weight columns.
        fw: f64,
    },
    /// Execute a full GEMM on the Drift accelerator model, with
    /// precision maps drawn row-by-row from the job's RNG.
    Simulate {
        /// Streamed dimension.
        m: usize,
        /// Reduction dimension.
        k: usize,
        /// Output dimension.
        n: usize,
        /// Probability that an activation row is high precision.
        fa: f64,
        /// Probability that a weight column is high precision.
        fw: f64,
    },
}

impl JobKind {
    /// A short label for reports.
    pub fn label(&self) -> &'static str {
        match self {
            JobKind::Select { .. } => "select",
            JobKind::Schedule { .. } => "schedule",
            JobKind::Simulate { .. } => "simulate",
        }
    }
}

/// The outcome of one job, echoing its id.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobResult {
    /// The [`JobSpec::id`] this result answers.
    pub id: u64,
    /// The payload (or error).
    pub outcome: JobOutcome,
}

/// Per-kind result payloads.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum JobOutcome {
    /// Selector statistics.
    Select {
        /// Sub-tensors converted to the low precision.
        low_subtensors: usize,
        /// Total sub-tensors examined.
        subtensors: usize,
        /// Fraction of elements at the low precision.
        low_fraction: f64,
    },
    /// The balanced schedule's quality.
    Schedule {
        /// The layer's compute time in cycles.
        makespan: u64,
        /// Per-quadrant latencies in `(hh, hl, lh, ll)` order.
        latencies: [u64; 4],
    },
    /// The execution report of the simulated GEMM.
    Simulate {
        /// End-to-end cycles.
        cycles: u64,
        /// Compute-side cycles.
        compute_cycles: u64,
        /// DRAM-side cycles.
        dram_cycles: u64,
        /// Total energy, pJ.
        energy_pj: f64,
    },
    /// The job failed; the message says why.
    Error {
        /// Human-readable failure description.
        message: String,
    },
}

/// Parses one JSONL line into a job.
///
/// # Errors
///
/// Returns the JSON parser's message on malformed input.
pub fn parse_job(line: &str) -> Result<JobSpec, String> {
    serde_json::from_str(line).map_err(|e| e.to_string())
}

/// Reads a whole JSONL job stream, skipping blank lines.
///
/// # Errors
///
/// Reports I/O and parse failures with their 1-based line number.
pub fn read_jobs(reader: impl BufRead) -> Result<Vec<JobSpec>, String> {
    let mut jobs = Vec::new();
    for (idx, line) in reader.lines().enumerate() {
        let line = line.map_err(|e| format!("line {}: {e}", idx + 1))?;
        if line.trim().is_empty() {
            continue;
        }
        jobs.push(parse_job(&line).map_err(|e| format!("line {}: {e}", idx + 1))?);
    }
    Ok(jobs)
}

/// What a lenient JSONL read produced: the good jobs plus a record of
/// every line that was skipped.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct LenientIngest {
    /// The jobs that parsed, in stream order.
    pub jobs: Vec<JobSpec>,
    /// `(1-based line number, parse error)` for each skipped line.
    pub skipped: Vec<(usize, String)>,
}

/// Reads a JSONL job stream, skipping malformed lines instead of
/// aborting. Each skipped line is recorded with its 1-based line number
/// and counted into `drift_serve_jobs_rejected_total` on `recorder`.
///
/// # Errors
///
/// Only I/O failures abort the read; parse failures never do.
pub fn read_jobs_lenient(
    reader: impl BufRead,
    recorder: &Recorder,
) -> Result<LenientIngest, String> {
    let mut ingest = LenientIngest::default();
    for (idx, line) in reader.lines().enumerate() {
        let line = line.map_err(|e| format!("line {}: {e}", idx + 1))?;
        if line.trim().is_empty() {
            continue;
        }
        match parse_job(&line) {
            Ok(job) => ingest.jobs.push(job),
            Err(e) => {
                recorder.counter_add("drift_serve_jobs_rejected_total", &[], 1);
                ingest.skipped.push((idx + 1, e));
            }
        }
    }
    Ok(ingest)
}

/// Renders a result as one JSONL line (no trailing newline).
pub fn result_line(result: &JobResult) -> String {
    serde_json::to_string(result).expect("job results contain only finite numbers")
}

/// The GEMM shape pool the synthetic streams cycle through.
const SHAPES: [(usize, usize, usize); 8] = [
    (256, 768, 768),
    (512, 768, 3072),
    (128, 1024, 1024),
    (64, 512, 512),
    (384, 768, 768),
    (256, 2048, 2048),
    (512, 512, 2048),
    (96, 4096, 1024),
];
/// The `(fa, fw)` fraction pairs the synthetic streams cycle through.
const FRACTIONS: [(f64, f64); 4] = [(0.1, 0.1), (0.2, 0.1), (0.5, 0.25), (0.8, 0.5)];

/// A deterministic all-`Schedule` job stream — the "small job" load:
/// each distinct (shape, fraction) pair is solved once and every
/// repeat is a schedule-cache hit executing in microseconds, so a
/// stream like this measures per-request wire and admission overhead
/// rather than execution (the batching sweep in `EXPERIMENTS.md`).
/// Cycles the same shape/fraction tables as [`synthetic_jobs`]; equal
/// arguments always produce the identical job list.
pub fn synthetic_schedule_jobs(
    count: usize,
    distinct_shapes: usize,
    master_seed: u64,
) -> Vec<JobSpec> {
    let shapes = &SHAPES[..distinct_shapes.clamp(1, SHAPES.len())];
    (0..count)
        .map(|i| {
            let (m, k, n) = shapes[i % shapes.len()];
            let (fa, fw) = FRACTIONS[(i / shapes.len()) % FRACTIONS.len()];
            JobSpec {
                id: i as u64,
                seed: master_seed.wrapping_add((i % 8) as u64),
                kind: JobKind::Schedule { m, k, n, fa, fw },
            }
        })
        .collect()
}

/// A deterministic synthetic job mix for benchmarks and load tests.
///
/// Jobs cycle through `distinct_shapes` GEMM shapes (capped at the
/// built-in pool) and a small seed pool, so a long stream revisits the
/// same schedule keys and exercises the cache; the mix is roughly 20%
/// select, 40% schedule, 40% simulate. Equal arguments always produce
/// the identical job list.
pub fn synthetic_jobs(count: usize, distinct_shapes: usize, master_seed: u64) -> Vec<JobSpec> {
    const PROFILES: [&str; 4] = ["cnn", "vit", "bert", "llm"];
    let shapes = &SHAPES[..distinct_shapes.clamp(1, SHAPES.len())];
    (0..count)
        .map(|i| {
            let (m, k, n) = shapes[i % shapes.len()];
            let (fa, fw) = FRACTIONS[(i / shapes.len()) % FRACTIONS.len()];
            // A small seed pool: repeated (shape, seed) pairs give the
            // simulate jobs repeated schedule keys too.
            let seed = master_seed.wrapping_add((i % 8) as u64);
            let kind = match i % 5 {
                0 => JobKind::Select {
                    tokens: m.min(256),
                    hidden: k.min(1024),
                    delta: 0.03,
                    profile: PROFILES[i % PROFILES.len()].to_string(),
                },
                1 | 2 => JobKind::Schedule { m, k, n, fa, fw },
                _ => JobKind::Simulate { m, k, n, fa, fw },
            };
            JobSpec {
                id: i as u64,
                seed,
                kind,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn specs_round_trip_through_jsonl() {
        let jobs = synthetic_jobs(25, 8, 42);
        let text: String = jobs
            .iter()
            .map(|j| serde_json::to_string(j).unwrap() + "\n")
            .collect();
        let back = read_jobs(Cursor::new(text)).unwrap();
        assert_eq!(back, jobs);
    }

    #[test]
    fn blank_lines_are_skipped_and_errors_carry_line_numbers() {
        let text = "\n{\"id\":0,\"seed\":1,\"kind\":{\"Schedule\":{\"m\":8,\"k\":8,\"n\":8,\"fa\":0.5,\"fw\":0.5}}}\n\nnot json\n";
        let err = read_jobs(Cursor::new(text)).unwrap_err();
        assert!(err.starts_with("line 4:"), "{err}");
        let ok = read_jobs(Cursor::new(
            "{\"id\":3,\"seed\":1,\"kind\":{\"Select\":{\"tokens\":4,\"hidden\":8,\"delta\":0.1,\"profile\":\"bert\"}}}\n",
        ))
        .unwrap();
        assert_eq!(ok.len(), 1);
        assert_eq!(ok[0].kind.label(), "select");
    }

    #[test]
    fn lenient_read_skips_bad_lines_and_counts_them() {
        let text = "\n{\"id\":0,\"seed\":1,\"kind\":{\"Schedule\":{\"m\":8,\"k\":8,\"n\":8,\"fa\":0.5,\"fw\":0.5}}}\nnot json\n{\"id\":7}\n{\"id\":1,\"seed\":2,\"kind\":{\"Select\":{\"tokens\":4,\"hidden\":8,\"delta\":0.1,\"profile\":\"bert\"}}}\n";
        let recorder = Recorder::enabled();
        let ingest = read_jobs_lenient(Cursor::new(text), &recorder).unwrap();
        assert_eq!(
            ingest.jobs.iter().map(|j| j.id).collect::<Vec<_>>(),
            vec![0, 1]
        );
        let skipped_lines: Vec<usize> = ingest.skipped.iter().map(|(n, _)| *n).collect();
        assert_eq!(skipped_lines, vec![3, 4]);
        let snap = recorder.registry().unwrap().snapshot();
        assert_eq!(snap.counter_sum("drift_serve_jobs_rejected_total"), 2);
        // Strict and lenient agree on a clean stream.
        let clean = "{\"id\":3,\"seed\":1,\"kind\":{\"Select\":{\"tokens\":4,\"hidden\":8,\"delta\":0.1,\"profile\":\"bert\"}}}\n";
        let strict = read_jobs(Cursor::new(clean)).unwrap();
        let lenient = read_jobs_lenient(Cursor::new(clean), &Recorder::disabled()).unwrap();
        assert_eq!(strict, lenient.jobs);
        assert!(lenient.skipped.is_empty());
    }

    #[test]
    fn results_round_trip() {
        let r = JobResult {
            id: 9,
            outcome: JobOutcome::Simulate {
                cycles: 123,
                compute_cycles: 120,
                dram_cycles: 88,
                energy_pj: 1.25e6,
            },
        };
        let line = result_line(&r);
        assert_eq!(serde_json::from_str::<JobResult>(&line).unwrap(), r);
    }

    #[test]
    fn synthetic_mix_is_deterministic_and_varied() {
        let a = synthetic_jobs(100, 4, 7);
        let b = synthetic_jobs(100, 4, 7);
        assert_eq!(a, b);
        assert!(a.iter().any(|j| j.kind.label() == "select"));
        assert!(a.iter().any(|j| j.kind.label() == "schedule"));
        assert!(a.iter().any(|j| j.kind.label() == "simulate"));
        // Ids are the 0..count sequence.
        assert!(a.iter().enumerate().all(|(i, j)| j.id == i as u64));
    }
}
