//! Wiring between the in-RAM [`ScheduleCache`] and the on-disk
//! `drift-store` log.
//!
//! A [`StoreBinding`] owns the background flusher: newly solved
//! schedules spill out of the cache over a channel (miss path only —
//! already ~100 µs of solve, so the send is noise), a dedicated thread
//! batches them and appends to the log, and [`StoreBinding::finish`]
//! drains everything at shutdown, syncs, and compacts the log when it
//! has outgrown the live set. Preloaded entries never spill — they came
//! from a store already (see [`ScheduleCache::preload`]).
//!
//! The warm-start contract (what survives a restart, when compaction
//! runs, why warm results are byte-identical to cold) is documented in
//! `docs/PERSISTENCE.md`.

use crate::cache::ScheduleCache;
use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError};
use drift_core::schedule::{Schedule, ScheduleKey};
use drift_obs::Recorder;
use drift_store::{write_snapshot, StoreWriter};
use std::path::Path;
use std::thread::JoinHandle;
use std::time::Duration;

/// How long the flusher waits for more spilled entries before writing
/// the batch it has.
const FLUSH_INTERVAL: Duration = Duration::from_millis(250);
/// Entries per append batch.
const FLUSH_BATCH: usize = 64;
/// Compact at shutdown when the log holds more than this many records
/// per live cache entry (append-only logs accumulate duplicates and
/// evicted entries; 2× is the point where a rewrite halves the file).
const COMPACT_FACTOR: u64 = 2;

/// A live connection from a [`ScheduleCache`] to a store log.
#[derive(Debug)]
pub struct StoreBinding {
    flusher: JoinHandle<StoreWriter>,
    recorder: Recorder,
}

/// Opens (or creates) the store at `path`, preloads its entries into
/// `cache`, and attaches a background flusher so newly solved schedules
/// are appended. Records `drift_store_records_loaded_total` /
/// `drift_store_records_skipped_total` for the load. Call
/// [`StoreBinding::finish`] before dropping the cache.
///
/// # Errors
///
/// Propagates store open failures (I/O, bad magic, future version) —
/// corrupt *content* is skipped, not fatal.
pub fn open_and_preload(
    path: &Path,
    cache: &ScheduleCache,
    recorder: Recorder,
) -> drift_store::Result<(drift_store::LoadReport, StoreBinding)> {
    let (report, writer) = StoreWriter::open(path)?;
    recorder.counter_add("drift_store_records_loaded_total", &[], report.records);
    recorder.counter_add("drift_store_records_skipped_total", &[], report.skipped);
    cache.preload(&report.entries);
    let binding = StoreBinding::attach(writer, cache, recorder);
    Ok((report, binding))
}

impl StoreBinding {
    /// Attaches `writer` to `cache`: sets the cache's spill channel and
    /// spawns the flusher thread. The binding must be [`finish`]ed (not
    /// just dropped) to guarantee the tail of the spill reaches disk.
    ///
    /// [`finish`]: StoreBinding::finish
    pub fn attach(writer: StoreWriter, cache: &ScheduleCache, recorder: Recorder) -> StoreBinding {
        let (tx, rx) = unbounded();
        cache.set_spill(tx);
        let flush_recorder = recorder.clone();
        let flusher = std::thread::spawn(move || flusher_loop(writer, rx, flush_recorder));
        StoreBinding { flusher, recorder }
    }

    /// Drains and detaches: drops the cache's spill sender so the
    /// flusher sees disconnection after writing every spilled entry,
    /// joins it, syncs the log, and — when the log has grown to at
    /// least `COMPACT_FACTOR` (2×) the live set — rewrites it to the cache's
    /// resident entries (`drift_store_compactions_total`). Returns the
    /// records now in the log.
    pub fn finish(self, cache: &ScheduleCache) -> drift_store::Result<u64> {
        drop(cache.take_spill());
        let mut writer = self.flusher.join().expect("store flusher panicked");
        writer.sync()?;
        let live = cache.export();
        let (records, live_n) = (writer.records_on_disk(), live.len() as u64);
        if records > live_n && records >= COMPACT_FACTOR * live_n {
            let path = writer.path().to_path_buf();
            drop(writer);
            write_snapshot(&path, &live)?;
            self.recorder
                .counter_add("drift_store_compactions_total", &[], 1);
            return Ok(live.len() as u64);
        }
        Ok(writer.records_on_disk())
    }
}

fn flusher_loop(
    mut writer: StoreWriter,
    rx: Receiver<(ScheduleKey, Schedule)>,
    recorder: Recorder,
) -> StoreWriter {
    let mut batch: Vec<(ScheduleKey, Schedule)> = Vec::with_capacity(FLUSH_BATCH);
    let mut flush = |batch: &mut Vec<(ScheduleKey, Schedule)>| {
        if batch.is_empty() {
            return;
        }
        match writer.append_batch(batch) {
            Ok(bytes) => {
                recorder.counter_add(
                    "drift_store_records_appended_total",
                    &[],
                    batch.len() as u64,
                );
                recorder.counter_add("drift_store_bytes_written_total", &[], bytes);
            }
            Err(e) => {
                // Persistence is best-effort from the serving path's
                // point of view: losing an append batch costs a future
                // warm start some entries, never a live result.
                eprintln!("drift-store append failed: {e}");
            }
        }
        batch.clear();
    };
    loop {
        match rx.recv_timeout(FLUSH_INTERVAL) {
            Ok(entry) => {
                batch.push(entry);
                if batch.len() >= FLUSH_BATCH {
                    flush(&mut batch);
                }
            }
            Err(RecvTimeoutError::Timeout) => flush(&mut batch),
            Err(RecvTimeoutError::Disconnected) => {
                flush(&mut batch);
                break;
            }
        }
    }
    writer
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::synthetic_jobs;
    use crate::runtime::{serve_on_cache, ServeConfig};
    use drift_obs::Tracer;
    use std::path::PathBuf;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn temp_path(tag: &str) -> PathBuf {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let n = SEQ.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!(
            "drift-persist-test-{}-{tag}-{n}.log",
            std::process::id()
        ))
    }

    #[test]
    fn solved_schedules_reach_the_log_and_warm_start_skips_solving() {
        let path = temp_path("spill");
        let config = ServeConfig::with_workers(2);
        let jobs = synthetic_jobs(40, 4, 9);

        let cache = ScheduleCache::new(config.cache_capacity, config.cache_shards);
        let (report, binding) = open_and_preload(&path, &cache, Recorder::disabled()).unwrap();
        assert_eq!(report.records, 0);
        let cold = serve_on_cache(
            jobs.clone(),
            &config,
            Recorder::disabled(),
            Tracer::disabled(),
            &cache,
        );
        let cold_misses = cache.stats().misses;
        assert!(cold_misses > 0);
        binding.finish(&cache).unwrap();

        // Second start: every schedule the first run solved loads from
        // disk, so the same stream misses zero times and the results
        // are byte-identical.
        let warm_cache = ScheduleCache::new(config.cache_capacity, config.cache_shards);
        let (report, binding) = open_and_preload(&path, &warm_cache, Recorder::disabled()).unwrap();
        assert_eq!(report.records, cold_misses);
        let warm = serve_on_cache(
            jobs,
            &config,
            Recorder::disabled(),
            Tracer::disabled(),
            &warm_cache,
        );
        assert_eq!(warm_cache.stats().misses, 0, "warm run should never solve");
        assert_eq!(cold.results, warm.results);
        binding.finish(&warm_cache).unwrap();
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn finish_compacts_a_log_that_outgrew_the_live_set() {
        let path = temp_path("compacting");
        let recorder = Recorder::enabled();
        // A 4-entry cache serving 8 distinct shapes: the log gets all 8
        // solves but only 4 stay live, crossing the 2× threshold.
        let cache = ScheduleCache::with_recorder(4, 1, recorder.clone());
        let (_, binding) = open_and_preload(&path, &cache, recorder.clone()).unwrap();
        for i in 0..8 {
            let k = drift_core::schedule::ScheduleKey {
                shape: drift_accel::gemm::GemmShape::new(32 + i * 16, 64, 32).unwrap(),
                act_high: 16,
                weight_high: 16,
                act_precisions: (drift_quant::Precision::INT8, drift_quant::Precision::INT4),
                weight_precisions: (drift_quant::Precision::INT8, drift_quant::Precision::INT4),
                fabric: drift_accel::systolic::ArrayGeometry::new(8, 9).unwrap(),
            };
            cache.get_or_solve(k).unwrap();
        }
        assert_eq!(cache.stats().entries, 4);
        assert_eq!(cache.stats().evictions, 4);
        let records = binding.finish(&cache).unwrap();
        assert_eq!(records, 4, "finish should have compacted to the live set");
        let verified = drift_store::verify(&path, true).unwrap();
        assert_eq!(verified.records, 4);
        let snap = recorder.registry().unwrap().snapshot();
        assert_eq!(snap.counter_sum("drift_store_records_appended_total"), 8);
        assert_eq!(snap.counter_sum("drift_store_compactions_total"), 1);
        assert_eq!(snap.counter_sum("drift_serve_cache_evictions_total"), 4);
        std::fs::remove_file(&path).unwrap();
    }
}
