//! The bounded job queue feeding the worker pool.
//!
//! Two interchangeable disciplines behind one facade (see
//! `docs/SCHEDULING.md` for the full contract):
//!
//! * [`QueuePolicy::Fifo`] — a `VecDeque` ring; jobs are delivered in
//!   submission order.
//! * [`QueuePolicy::Edf`] — earliest-deadline-first: a binary heap
//!   keyed by each job's absolute deadline (via the [`Deadlined`]
//!   trait). Jobs without deadlines sort behind every deadlined job
//!   and drain FIFO among themselves; ties on deadline break by
//!   submission order.
//!
//! Both disciplines share one mutex-and-condvar core, which is what
//! lets [`JobQueue::try_submit_batch`] admit a whole batch atomically:
//! one lock acquisition, one capacity check, all-or-shed — no
//! interleaving singleton submit can steal capacity mid-batch.
//!
//! Both disciplines fix the three behaviours the runtime relies on:
//!
//! * **backpressure** — [`JobQueue::submit`] blocks while the queue is
//!   at capacity, so a fast producer cannot buffer an unbounded job
//!   backlog in memory;
//! * **work sharing** — every [`WorkerHandle`] pulls from the same
//!   queue; a job is delivered to exactly one worker;
//! * **graceful shutdown** — dropping (or [`JobQueue::close`]-ing) the
//!   queue ends the stream: workers first drain every job already
//!   queued, then [`WorkerHandle::next_job`] returns `None` and the
//!   worker exits. No job is lost or cut short.

use parking_lot::{Condvar, Mutex};
use std::cmp::{Ordering, Reverse};
use std::collections::{BinaryHeap, VecDeque};
use std::str::FromStr;
use std::sync::Arc;
use std::time::Instant;

/// Which discipline orders jobs waiting in the queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum QueuePolicy {
    /// Submission order — the default, and the only order that existed
    /// before deadlines did.
    #[default]
    Fifo,
    /// Earliest absolute deadline first; deadline-less jobs drain FIFO
    /// behind every deadlined job (they can starve under sustained
    /// deadlined load — see `docs/SCHEDULING.md`).
    Edf,
}

impl QueuePolicy {
    /// The lowercase wire/CLI spelling (`"fifo"` / `"edf"`), also used
    /// as a metrics label value.
    pub fn as_str(self) -> &'static str {
        match self {
            QueuePolicy::Fifo => "fifo",
            QueuePolicy::Edf => "edf",
        }
    }
}

impl std::fmt::Display for QueuePolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

impl FromStr for QueuePolicy {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "fifo" => Ok(QueuePolicy::Fifo),
            "edf" => Ok(QueuePolicy::Edf),
            other => Err(format!("unknown queue policy '{other}' (fifo|edf)")),
        }
    }
}

/// Exposes a job's absolute deadline to the EDF discipline.
///
/// The default implementation reports no deadline, which under EDF
/// means "after every deadlined job, FIFO among peers" — so a type
/// only needs a real implementation when its jobs can carry deadlines.
pub trait Deadlined {
    /// The absolute instant this job must complete by, if any.
    fn deadline(&self) -> Option<Instant> {
        None
    }
}

// Offline serve jobs and the queue tests' integer payloads never carry
// deadlines; under EDF they degenerate to FIFO by construction.
impl Deadlined for usize {}
impl Deadlined for i32 {}
impl Deadlined for u32 {}
impl Deadlined for (u64, crate::job::JobSpec) {}

/// The producer side of the queue. Owning it keeps the job stream open.
#[derive(Debug)]
pub struct JobQueue<T> {
    shared: Arc<Shared<T>>,
}

/// A worker's pull handle on the queue. Cloning shares the same queue;
/// when every handle is gone, [`JobQueue::submit`] fails.
#[derive(Debug)]
pub struct WorkerHandle<T> {
    shared: Arc<Shared<T>>,
}

/// Creates a FIFO queue holding at most `depth` pending jobs
/// (`depth >= 1` enforced), returning the producer side and the first
/// worker handle. Shorthand for [`job_queue_with_policy`] with
/// [`QueuePolicy::Fifo`].
pub fn job_queue<T>(depth: usize) -> (JobQueue<T>, WorkerHandle<T>) {
    job_queue_with_policy(QueuePolicy::Fifo, depth)
}

/// [`job_queue`] with a selectable discipline: `Fifo` delivers in
/// submission order, `Edf` delivers earliest-absolute-deadline first
/// (deadline-less jobs FIFO behind deadlined ones). Capacity,
/// backpressure, and shutdown semantics are identical across policies.
pub fn job_queue_with_policy<T>(
    policy: QueuePolicy,
    depth: usize,
) -> (JobQueue<T>, WorkerHandle<T>) {
    let buf = match policy {
        QueuePolicy::Fifo => Buffer::Fifo(VecDeque::new()),
        QueuePolicy::Edf => Buffer::Edf(BinaryHeap::new()),
    };
    let shared = Arc::new(Shared {
        depth: depth.max(1),
        state: Mutex::new(State {
            buf,
            seq: 0,
            closed: false,
            handles: 1,
        }),
        not_empty: Condvar::new(),
        not_full: Condvar::new(),
    });
    (
        JobQueue {
            shared: Arc::clone(&shared),
        },
        WorkerHandle { shared },
    )
}

impl<T> JobQueue<T> {
    /// Enqueues a job, blocking while the queue is full (backpressure).
    ///
    /// # Errors
    ///
    /// Returns the job back when every [`WorkerHandle`] has been
    /// dropped — there is no one left to run it.
    pub fn submit(&self, job: T) -> Result<(), T>
    where
        T: Deadlined,
    {
        self.shared.submit(job, true)
    }

    /// Enqueues a job without blocking: the producer's way of detecting
    /// a backpressure stall before committing to a blocking
    /// [`JobQueue::submit`].
    ///
    /// # Errors
    ///
    /// Returns the job back when the queue is full right now, or when
    /// every [`WorkerHandle`] has been dropped (a follow-up blocking
    /// `submit` distinguishes the two: it fails only in the latter
    /// case).
    pub fn try_submit(&self, job: T) -> Result<(), T>
    where
        T: Deadlined,
    {
        self.shared.submit(job, false)
    }

    /// Enqueues a whole batch atomically without blocking: either every
    /// job is admitted under a single lock acquisition and capacity
    /// check, or none is (all-or-shed). A batch larger than the queue's
    /// total depth can therefore never be admitted. An empty batch is
    /// trivially admitted.
    ///
    /// # Errors
    ///
    /// Returns the batch back untouched when the queue lacks capacity
    /// for all of it right now, or when every [`WorkerHandle`] has been
    /// dropped.
    pub fn try_submit_batch(&self, jobs: Vec<T>) -> Result<(), Vec<T>>
    where
        T: Deadlined,
    {
        self.shared.submit_batch(jobs)
    }

    /// Jobs currently waiting in the queue.
    pub fn backlog(&self) -> usize {
        self.shared.state.lock().buf.len()
    }

    /// Closes the queue. Queued jobs are still delivered; afterwards
    /// every worker's [`WorkerHandle::next_job`] returns `None`.
    /// Dropping the queue is equivalent.
    pub fn close(self) {}
}

impl<T> Drop for JobQueue<T> {
    fn drop(&mut self) {
        self.shared.state.lock().closed = true;
        self.shared.not_empty.notify_all();
    }
}

impl<T> WorkerHandle<T> {
    /// Blocks for the next job; `None` once the queue is closed *and*
    /// drained.
    pub fn next_job(&self) -> Option<T> {
        self.shared.next_job()
    }
}

impl<T> Clone for WorkerHandle<T> {
    fn clone(&self) -> Self {
        self.shared.state.lock().handles += 1;
        WorkerHandle {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T> Drop for WorkerHandle<T> {
    fn drop(&mut self) {
        let mut state = self.shared.state.lock();
        state.handles -= 1;
        if state.handles == 0 {
            // Blocked submitters must fail now, exactly as a
            // disconnected channel send would.
            drop(state);
            self.shared.not_full.notify_all();
        }
    }
}

/// The shared queue core: a `depth`-bounded buffer (ring or deadline
/// heap by policy) behind a mutex, with condvars standing in for a
/// channel's blocking send/recv. Holding both disciplines behind the
/// same lock is what makes batch admission atomic against concurrent
/// singleton submits.
#[derive(Debug)]
struct Shared<T> {
    depth: usize,
    state: Mutex<State<T>>,
    not_empty: Condvar,
    not_full: Condvar,
}

#[derive(Debug)]
struct State<T> {
    buf: Buffer<T>,
    seq: u64,
    closed: bool,
    handles: usize,
}

/// The policy-specific pending-job store.
#[derive(Debug)]
enum Buffer<T> {
    Fifo(VecDeque<T>),
    Edf(BinaryHeap<Reverse<EdfItem<T>>>),
}

impl<T> Buffer<T> {
    fn len(&self) -> usize {
        match self {
            Buffer::Fifo(q) => q.len(),
            Buffer::Edf(h) => h.len(),
        }
    }

    fn push(&mut self, job: T, deadline: Option<Instant>, seq: u64) {
        match self {
            Buffer::Fifo(q) => q.push_back(job),
            Buffer::Edf(h) => h.push(Reverse(EdfItem { deadline, seq, job })),
        }
    }

    fn pop(&mut self) -> Option<T> {
        match self {
            Buffer::Fifo(q) => q.pop_front(),
            Buffer::Edf(h) => h.pop().map(|Reverse(item)| item.job),
        }
    }
}

#[derive(Debug)]
struct EdfItem<T> {
    deadline: Option<Instant>,
    seq: u64,
    job: T,
}

impl<T> EdfItem<T> {
    /// `None` deadlines sort *after* every `Some`: a deadline-less job
    /// never preempts one with a real deadline, and among themselves
    /// deadline-less jobs keep submission order. Equal deadlines also
    /// break by submission order, so EDF is a stable refinement of
    /// FIFO.
    fn rank(&self) -> (bool, Option<Instant>, u64) {
        (self.deadline.is_none(), self.deadline, self.seq)
    }
}

impl<T> Ord for EdfItem<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        self.rank().cmp(&other.rank())
    }
}

impl<T> PartialOrd for EdfItem<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<T> PartialEq for EdfItem<T> {
    fn eq(&self, other: &Self) -> bool {
        self.rank() == other.rank()
    }
}

impl<T> Eq for EdfItem<T> {}

impl<T: Deadlined> Shared<T> {
    fn submit(&self, job: T, block: bool) -> Result<(), T> {
        let mut state = self.state.lock();
        loop {
            if state.handles == 0 {
                return Err(job);
            }
            if state.buf.len() < self.depth {
                let seq = state.seq;
                state.seq += 1;
                let deadline = job.deadline();
                state.buf.push(job, deadline, seq);
                drop(state);
                self.not_empty.notify_one();
                return Ok(());
            }
            if !block {
                return Err(job);
            }
            self.not_full.wait(&mut state);
        }
    }

    fn submit_batch(&self, jobs: Vec<T>) -> Result<(), Vec<T>> {
        if jobs.is_empty() {
            return Ok(());
        }
        let mut state = self.state.lock();
        if state.handles == 0 || state.buf.len() + jobs.len() > self.depth {
            return Err(jobs);
        }
        let n = jobs.len();
        for job in jobs {
            let seq = state.seq;
            state.seq += 1;
            let deadline = job.deadline();
            state.buf.push(job, deadline, seq);
        }
        drop(state);
        if n == 1 {
            self.not_empty.notify_one();
        } else {
            self.not_empty.notify_all();
        }
        Ok(())
    }
}

impl<T> Shared<T> {
    fn next_job(&self) -> Option<T> {
        let mut state = self.state.lock();
        loop {
            if let Some(job) = state.buf.pop() {
                drop(state);
                self.not_full.notify_one();
                return Some(job);
            }
            if state.closed {
                return None;
            }
            self.not_empty.wait(&mut state);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn every_job_is_delivered_exactly_once() {
        for policy in [QueuePolicy::Fifo, QueuePolicy::Edf] {
            let (queue, handle) = job_queue_with_policy(policy, 4);
            let delivered = Arc::new(AtomicUsize::new(0));
            let workers: Vec<_> = (0..3)
                .map(|_| {
                    let handle = handle.clone();
                    let delivered = Arc::clone(&delivered);
                    std::thread::spawn(move || {
                        while let Some(v) = handle.next_job() {
                            let _: usize = v;
                            delivered.fetch_add(1, Ordering::Relaxed);
                        }
                    })
                })
                .collect();
            drop(handle);
            for i in 0..100 {
                queue.submit(i).unwrap();
            }
            queue.close();
            for w in workers {
                w.join().unwrap();
            }
            assert_eq!(delivered.load(Ordering::Relaxed), 100, "{policy}");
        }
    }

    #[test]
    fn submit_applies_backpressure() {
        for policy in [QueuePolicy::Fifo, QueuePolicy::Edf] {
            let (queue, handle) = job_queue_with_policy(policy, 2);
            queue.submit(1).unwrap();
            queue.submit(2).unwrap();
            // The queue is full: a third submit blocks until a worker
            // takes a job. Prove it by unblocking from another thread.
            let consumer = std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis(30));
                // Return the handle too: dropping it here would close
                // the queue before the blocked submit gets its slot.
                (handle.next_job(), handle)
            });
            let start = std::time::Instant::now();
            queue.submit(3).unwrap();
            assert!(
                start.elapsed() >= Duration::from_millis(20),
                "{policy}: submit did not block"
            );
            assert_eq!(consumer.join().unwrap().0, Some(1));
        }
    }

    #[test]
    fn close_drains_queued_jobs_first() {
        for policy in [QueuePolicy::Fifo, QueuePolicy::Edf] {
            let (queue, handle) = job_queue_with_policy(policy, 8);
            for i in 0..5 {
                queue.submit(i).unwrap();
            }
            assert_eq!(queue.backlog(), 5);
            queue.close();
            let drained: Vec<i32> = std::iter::from_fn(|| handle.next_job()).collect();
            // Deadline-less jobs keep submission order under both
            // disciplines.
            assert_eq!(drained, vec![0, 1, 2, 3, 4], "{policy}");
            assert_eq!(handle.next_job(), None);
        }
    }

    #[test]
    fn try_submit_reports_a_full_queue_without_blocking() {
        for policy in [QueuePolicy::Fifo, QueuePolicy::Edf] {
            let (queue, handle) = job_queue_with_policy(policy, 1);
            assert_eq!(queue.try_submit(1), Ok(()), "{policy}");
            assert_eq!(queue.try_submit(2), Err(2), "{policy}");
            assert_eq!(handle.next_job(), Some(1));
            assert_eq!(queue.try_submit(2), Ok(()), "{policy}");
        }
    }

    #[test]
    fn submit_fails_once_all_workers_quit() {
        for policy in [QueuePolicy::Fifo, QueuePolicy::Edf] {
            let (queue, handle) = job_queue_with_policy(policy, 2);
            drop(handle);
            assert_eq!(queue.submit(7), Err(7), "{policy}");
        }
    }

    /// A payload whose deadline is set per item, for ordering tests.
    #[derive(Debug, PartialEq, Eq)]
    struct Timed(u64, Option<Instant>);

    impl Deadlined for Timed {
        fn deadline(&self) -> Option<Instant> {
            self.1
        }
    }

    #[test]
    fn edf_delivers_earliest_deadline_first() {
        let (queue, handle) = job_queue_with_policy(QueuePolicy::Edf, 8);
        let base = Instant::now() + Duration::from_secs(10);
        queue
            .submit(Timed(0, Some(base + Duration::from_millis(300))))
            .unwrap();
        queue
            .submit(Timed(1, Some(base + Duration::from_millis(100))))
            .unwrap();
        queue
            .submit(Timed(2, Some(base + Duration::from_millis(200))))
            .unwrap();
        queue.close();
        let order: Vec<u64> = std::iter::from_fn(|| handle.next_job())
            .map(|t| t.0)
            .collect();
        assert_eq!(order, vec![1, 2, 0]);
    }

    #[test]
    fn edf_orders_deadline_less_jobs_fifo_behind_deadlined_ones() {
        let (queue, handle) = job_queue_with_policy(QueuePolicy::Edf, 8);
        let soon = Instant::now() + Duration::from_secs(5);
        queue.submit(Timed(0, None)).unwrap();
        queue
            .submit(Timed(1, Some(soon + Duration::from_secs(1))))
            .unwrap();
        queue.submit(Timed(2, None)).unwrap();
        queue.submit(Timed(3, Some(soon))).unwrap();
        queue.close();
        let order: Vec<u64> = std::iter::from_fn(|| handle.next_job())
            .map(|t| t.0)
            .collect();
        // Deadlined jobs first (earliest first), then the deadline-less
        // ones in submission order.
        assert_eq!(order, vec![3, 1, 0, 2]);
    }

    #[test]
    fn edf_breaks_deadline_ties_by_submission_order() {
        let (queue, handle) = job_queue_with_policy(QueuePolicy::Edf, 8);
        let tie = Instant::now() + Duration::from_secs(3);
        for id in 0..4 {
            queue.submit(Timed(id, Some(tie))).unwrap();
        }
        queue.close();
        let order: Vec<u64> = std::iter::from_fn(|| handle.next_job())
            .map(|t| t.0)
            .collect();
        assert_eq!(order, vec![0, 1, 2, 3]);
    }

    #[test]
    fn queue_policy_parses_and_prints_its_wire_spelling() {
        assert_eq!("fifo".parse::<QueuePolicy>(), Ok(QueuePolicy::Fifo));
        assert_eq!("edf".parse::<QueuePolicy>(), Ok(QueuePolicy::Edf));
        assert!("lifo".parse::<QueuePolicy>().is_err());
        assert_eq!(QueuePolicy::Edf.to_string(), "edf");
        assert_eq!(QueuePolicy::default(), QueuePolicy::Fifo);
    }
}
