//! The bounded job queue feeding the worker pool.
//!
//! A thin typed facade over a crossbeam bounded MPMC channel that fixes
//! the three behaviours the runtime relies on:
//!
//! * **backpressure** — [`JobQueue::submit`] blocks while the queue is
//!   at capacity, so a fast producer cannot buffer an unbounded job
//!   backlog in memory;
//! * **work sharing** — every [`WorkerHandle`] pulls from the same
//!   queue; a job is delivered to exactly one worker;
//! * **graceful shutdown** — dropping (or [`JobQueue::close`]-ing) the
//!   queue ends the stream: workers first drain every job already
//!   queued, then [`WorkerHandle::next_job`] returns `None` and the
//!   worker exits. No job is lost or cut short.

use crossbeam::channel::{bounded, Receiver, Sender, TrySendError};

/// The producer side of the queue. Owning it keeps the job stream open.
#[derive(Debug)]
pub struct JobQueue<T> {
    tx: Sender<T>,
}

/// A worker's pull handle on the queue. Cloning shares the same queue;
/// when every handle is gone, [`JobQueue::submit`] fails.
#[derive(Debug, Clone)]
pub struct WorkerHandle<T> {
    rx: Receiver<T>,
}

/// Creates a queue holding at most `depth` pending jobs (`depth >= 1`
/// enforced), returning the producer side and the first worker handle.
pub fn job_queue<T>(depth: usize) -> (JobQueue<T>, WorkerHandle<T>) {
    let (tx, rx) = bounded(depth.max(1));
    (JobQueue { tx }, WorkerHandle { rx })
}

impl<T> JobQueue<T> {
    /// Enqueues a job, blocking while the queue is full (backpressure).
    ///
    /// # Errors
    ///
    /// Returns the job back when every [`WorkerHandle`] has been
    /// dropped — there is no one left to run it.
    pub fn submit(&self, job: T) -> Result<(), T> {
        self.tx.send(job).map_err(|e| e.into_inner())
    }

    /// Enqueues a job without blocking: the producer's way of detecting
    /// a backpressure stall before committing to a blocking
    /// [`JobQueue::submit`].
    ///
    /// # Errors
    ///
    /// Returns the job back when the queue is full right now, or when
    /// every [`WorkerHandle`] has been dropped (a follow-up blocking
    /// `submit` distinguishes the two: it fails only in the latter
    /// case).
    pub fn try_submit(&self, job: T) -> Result<(), T> {
        self.tx.try_send(job).map_err(|e| match e {
            TrySendError::Full(job) | TrySendError::Disconnected(job) => job,
        })
    }

    /// Jobs currently waiting in the queue.
    pub fn backlog(&self) -> usize {
        self.tx.len()
    }

    /// Closes the queue. Queued jobs are still delivered; afterwards
    /// every worker's [`WorkerHandle::next_job`] returns `None`.
    /// Dropping the queue is equivalent.
    pub fn close(self) {}
}

impl<T> WorkerHandle<T> {
    /// Blocks for the next job; `None` once the queue is closed *and*
    /// drained.
    pub fn next_job(&self) -> Option<T> {
        self.rx.recv().ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn every_job_is_delivered_exactly_once() {
        let (queue, handle) = job_queue(4);
        let delivered = Arc::new(AtomicUsize::new(0));
        let workers: Vec<_> = (0..3)
            .map(|_| {
                let handle = handle.clone();
                let delivered = Arc::clone(&delivered);
                std::thread::spawn(move || {
                    while let Some(v) = handle.next_job() {
                        let _: usize = v;
                        delivered.fetch_add(1, Ordering::Relaxed);
                    }
                })
            })
            .collect();
        drop(handle);
        for i in 0..100 {
            queue.submit(i).unwrap();
        }
        queue.close();
        for w in workers {
            w.join().unwrap();
        }
        assert_eq!(delivered.load(Ordering::Relaxed), 100);
    }

    #[test]
    fn submit_applies_backpressure() {
        let (queue, handle) = job_queue(2);
        queue.submit(1).unwrap();
        queue.submit(2).unwrap();
        // The queue is full: a third submit blocks until a worker takes
        // a job. Prove it by unblocking from another thread.
        let consumer = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(30));
            // Return the handle too: dropping it here would close the
            // queue before the blocked submit gets its freed slot.
            (handle.next_job(), handle)
        });
        let start = std::time::Instant::now();
        queue.submit(3).unwrap();
        assert!(
            start.elapsed() >= Duration::from_millis(20),
            "submit did not block"
        );
        assert_eq!(consumer.join().unwrap().0, Some(1));
    }

    #[test]
    fn close_drains_queued_jobs_first() {
        let (queue, handle) = job_queue(8);
        for i in 0..5 {
            queue.submit(i).unwrap();
        }
        assert_eq!(queue.backlog(), 5);
        queue.close();
        let drained: Vec<i32> = std::iter::from_fn(|| handle.next_job()).collect();
        assert_eq!(drained, vec![0, 1, 2, 3, 4]);
        assert_eq!(handle.next_job(), None);
    }

    #[test]
    fn try_submit_reports_a_full_queue_without_blocking() {
        let (queue, handle) = job_queue(1);
        assert_eq!(queue.try_submit(1), Ok(()));
        assert_eq!(queue.try_submit(2), Err(2));
        assert_eq!(handle.next_job(), Some(1));
        assert_eq!(queue.try_submit(2), Ok(()));
    }

    #[test]
    fn submit_fails_once_all_workers_quit() {
        let (queue, handle) = job_queue(2);
        drop(handle);
        assert_eq!(queue.submit(7), Err(7));
    }
}
