//! End-to-end determinism: one JSONL job stream must produce the
//! identical result set at any worker count, byte-for-byte, including
//! through the JSONL encode/decode round trip the CLI performs.

use drift_serve::job::{read_jobs, result_line};
use drift_serve::{serve, synthetic_jobs, ServeConfig};
use std::io::Cursor;

#[test]
fn one_and_eight_workers_produce_identical_result_sets() {
    // The stream leaves and re-enters through JSONL, exactly like
    // `drift serve --jobs - < jobs.jsonl`.
    let jsonl: String = synthetic_jobs(160, 8, 2024)
        .iter()
        .map(|j| serde_json::to_string(j).unwrap() + "\n")
        .collect();

    let run = |workers: usize| -> Vec<String> {
        let jobs = read_jobs(Cursor::new(jsonl.clone())).unwrap();
        let outcome = serve(jobs, &ServeConfig::with_workers(workers));
        assert_eq!(outcome.results.len(), 160, "lost or duplicated results");
        assert_eq!(outcome.report.errors, 0);
        outcome.results.iter().map(result_line).collect()
    };

    let mut solo = run(1);
    let mut pool = run(8);
    // Order-insensitive comparison of the rendered JSONL lines.
    solo.sort();
    pool.sort();
    assert_eq!(solo, pool);
}
