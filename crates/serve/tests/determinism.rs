//! End-to-end determinism: one JSONL job stream must produce the
//! identical result set at any worker count, byte-for-byte, including
//! through the JSONL encode/decode round trip the CLI performs.

use drift_serve::job::{read_jobs, result_line};
use drift_serve::{serve, synthetic_jobs, QueuePolicy, ServeConfig};
use std::io::Cursor;

#[test]
fn one_and_eight_workers_produce_identical_result_sets() {
    // The stream leaves and re-enters through JSONL, exactly like
    // `drift serve --jobs - < jobs.jsonl`.
    let jsonl: String = synthetic_jobs(160, 8, 2024)
        .iter()
        .map(|j| serde_json::to_string(j).unwrap() + "\n")
        .collect();

    let run = |workers: usize| -> Vec<String> {
        let jobs = read_jobs(Cursor::new(jsonl.clone())).unwrap();
        let outcome = serve(jobs, &ServeConfig::with_workers(workers));
        assert_eq!(outcome.results.len(), 160, "lost or duplicated results");
        assert_eq!(outcome.report.errors, 0);
        outcome.results.iter().map(result_line).collect()
    };

    let mut solo = run(1);
    let mut pool = run(8);
    // Order-insensitive comparison of the rendered JSONL lines.
    solo.sort();
    pool.sort();
    assert_eq!(solo, pool);
}

#[test]
fn queue_policy_does_not_change_the_result_set() {
    // EDF reorders *when* jobs run, never *what* they compute: for any
    // worker count, both disciplines must deliver the identical result
    // set. Offline serve jobs carry no deadlines, so EDF degenerates to
    // its FIFO tie-break here — this pins down that the heap path is a
    // pure reordering layer with no effect on results.
    let jobs = synthetic_jobs(120, 6, 77);

    let run = |workers: usize, queue: QueuePolicy| -> Vec<String> {
        let outcome = serve(
            jobs.clone(),
            &ServeConfig {
                workers,
                queue,
                ..ServeConfig::default()
            },
        );
        assert_eq!(
            outcome.results.len(),
            jobs.len(),
            "[{queue} x{workers}] lost or duplicated results"
        );
        assert_eq!(outcome.report.errors, 0);
        let mut lines: Vec<String> = outcome.results.iter().map(result_line).collect();
        lines.sort();
        lines
    };

    let baseline = run(1, QueuePolicy::Fifo);
    for workers in [1, 8] {
        for queue in [QueuePolicy::Fifo, QueuePolicy::Edf] {
            assert_eq!(run(workers, queue), baseline, "[{queue} x{workers}]");
        }
    }
}
