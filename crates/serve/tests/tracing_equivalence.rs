//! Tracing is observation, not transformation: `serve_traced` with a
//! live tracer must produce byte-identical results to the plain path,
//! and the head-sampling decision must be a pure function of
//! `(seed, arrival sequence)` so reruns sample the same trace ids.

use drift_obs::{Recorder, Tracer};
use drift_serve::job::result_line;
use drift_serve::{serve, serve_traced, synthetic_jobs, ServeConfig};
use std::collections::BTreeSet;
use std::io::Write;
use std::sync::{Arc, Mutex};

/// A cloneable in-memory span sink for [`Tracer::to_writer`].
#[derive(Clone, Default)]
struct SharedBuf(Arc<Mutex<Vec<u8>>>);

impl SharedBuf {
    fn text(&self) -> String {
        String::from_utf8(self.0.lock().unwrap().clone()).unwrap()
    }
}

impl Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().unwrap().extend_from_slice(buf);
        Ok(buf.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

/// Pulls every `"<field>":"<value>"` string field off one JSONL span
/// line (the fields this test reads are plain hex/identifier strings,
/// so no unescaping is needed).
fn field(line: &str, name: &str) -> Option<String> {
    let needle = format!("\"{name}\":\"");
    let start = line.find(&needle)? + needle.len();
    let end = start + line[start..].find('"')?;
    Some(line[start..end].to_string())
}

#[test]
fn tracing_does_not_change_serve_results() {
    let jobs = synthetic_jobs(90, 5, 7);
    let config = ServeConfig::with_workers(3);

    let plain = serve(jobs.clone(), &config);
    let sink = SharedBuf::default();
    let tracer = Tracer::to_writer(Box::new(sink.clone()), "serve", 2, 9, Recorder::disabled());
    let traced = serve_traced(jobs, &config, Recorder::disabled(), tracer.clone());
    tracer.flush();

    let plain_lines: Vec<String> = plain.results.iter().map(result_line).collect();
    let traced_lines: Vec<String> = traced.results.iter().map(result_line).collect();
    assert_eq!(plain_lines, traced_lines, "tracing changed the results");
    assert_eq!(plain.report.jobs, traced.report.jobs);
    assert_eq!(plain.report.errors, traced.report.errors);

    // Sampling 1 in 2 of 90 submissions roots exactly 45 `job` spans.
    let text = sink.text();
    let roots = text
        .lines()
        .filter(|l| l.contains("\"stage\":\"job\""))
        .count();
    assert_eq!(roots, 45, "unexpected root span count:\n{text}");
    // Every span belongs to service `serve` and joins a sampled trace.
    for line in text.lines() {
        assert_eq!(field(line, "svc").as_deref(), Some("serve"), "{line}");
        assert!(field(line, "trace").is_some(), "{line}");
    }
}

#[test]
fn same_trace_sample_seed_samples_the_same_trace_ids() {
    let jobs = synthetic_jobs(60, 4, 11);
    let config = ServeConfig::with_workers(4);

    let run = || -> BTreeSet<String> {
        let sink = SharedBuf::default();
        let tracer =
            Tracer::to_writer(Box::new(sink.clone()), "serve", 3, 99, Recorder::disabled());
        serve_traced(jobs.clone(), &config, Recorder::disabled(), tracer.clone());
        tracer.flush();
        sink.text()
            .lines()
            .filter_map(|l| field(l, "trace"))
            .collect()
    };

    let first = run();
    let second = run();
    assert_eq!(first, second, "rerun sampled a different trace-id set");

    // The sampled set is exactly the predicted pure function of
    // (seed, submission sequence): every third submission, ids from
    // `Tracer::trace_id_for`.
    let expected: BTreeSet<String> = (0u64..60)
        .filter(|seq| seq % 3 == 0)
        .map(|seq| Tracer::trace_id_for(99, seq).to_string())
        .collect();
    assert_eq!(first, expected);
}
