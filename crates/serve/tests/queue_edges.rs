//! Shutdown and backpressure edge cases of the job queue — the
//! behaviours the gateway's admission control leans on.

use drift_serve::queue::job_queue;
use drift_serve::runtime::{serve, ServeConfig};
use drift_serve::synthetic_jobs;
use std::collections::HashSet;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Barrier};

#[test]
fn try_submit_racing_shutdown_never_panics_and_never_loses_delivered_jobs() {
    // Producers hammer try_submit while the consumer side shuts down at
    // an arbitrary moment. Every Ok(()) must correspond to a delivered
    // job until the close; afterwards try_submit must keep returning
    // Err instead of panicking.
    const PRODUCERS: usize = 4;
    const CONSUMED: usize = 64;

    let (queue, handle) = job_queue::<usize>(2);
    let queue = Arc::new(queue);
    let submitted = Arc::new(AtomicUsize::new(0));
    let delivered = Arc::new(AtomicUsize::new(0));
    // Producers run until the consumer has quit; a fixed attempt count
    // could end before the consumer's quota and deadlock it in
    // next_job() (the queue sender stays alive for the whole test).
    let done = Arc::new(AtomicBool::new(false));
    let start = Arc::new(Barrier::new(PRODUCERS + 2));

    std::thread::scope(|scope| {
        for p in 0..PRODUCERS {
            let queue = Arc::clone(&queue);
            let submitted = Arc::clone(&submitted);
            let done = Arc::clone(&done);
            let start = Arc::clone(&start);
            scope.spawn(move || {
                start.wait();
                for i in 0.. {
                    if done.load(Ordering::SeqCst) {
                        break;
                    }
                    if queue.try_submit(p * 1_000_000 + i).is_ok() {
                        submitted.fetch_add(1, Ordering::SeqCst);
                    }
                }
            });
        }
        let consumer = {
            let delivered = Arc::clone(&delivered);
            let done = Arc::clone(&done);
            let start = Arc::clone(&start);
            scope.spawn(move || {
                start.wait();
                // Take a handful of jobs, then quit mid-stream: from the
                // producers' side this is an abrupt shutdown.
                for _ in 0..CONSUMED {
                    if handle.next_job().is_none() {
                        break;
                    }
                    delivered.fetch_add(1, Ordering::SeqCst);
                }
                drop(handle);
                done.store(true, Ordering::SeqCst);
            })
        };
        start.wait();
        consumer.join().unwrap();
    });

    // The consumer stopped early, so some accepted jobs may still sit
    // in the (now closed) queue's buffer — but never more than its
    // depth, and nothing was double-counted.
    let submitted = submitted.load(Ordering::SeqCst);
    let delivered = delivered.load(Ordering::SeqCst);
    assert!(delivered <= submitted);
    assert!(
        submitted - delivered <= 2,
        "at most queue_depth accepted jobs may be stranded by an abrupt \
         consumer shutdown: submitted {submitted}, delivered {delivered}"
    );

    // The queue is closed: submission fails cleanly from here on.
    assert_eq!(queue.try_submit(99), Err(99));
    assert_eq!(queue.try_submit(99), Err(99));
}

#[test]
fn submit_after_shutdown_returns_the_job_instead_of_panicking() {
    let (queue, handle) = job_queue::<u32>(4);
    queue.try_submit(1).unwrap();
    drop(handle);
    // Both the blocking and non-blocking paths must hand the job back.
    assert_eq!(queue.submit(2), Err(2));
    assert_eq!(queue.try_submit(3), Err(3));
    // And stay in that state on repeated calls.
    assert_eq!(queue.submit(2), Err(2));
}

#[test]
fn draining_through_a_depth_one_queue_loses_zero_results() {
    // The tightest possible queue forces a backpressure stall on nearly
    // every submit; the run must still produce exactly one result per
    // job.
    let jobs = synthetic_jobs(64, 4, 13);
    let outcome = serve(
        jobs.clone(),
        &ServeConfig {
            workers: 3,
            queue_depth: 1,
            ..ServeConfig::default()
        },
    );
    assert_eq!(outcome.results.len(), jobs.len());
    let ids: HashSet<u64> = outcome.results.iter().map(|r| r.id).collect();
    assert_eq!(ids.len(), jobs.len(), "duplicated or lost ids");
    assert_eq!(outcome.report.jobs, jobs.len() as u64);
}
