//! Shutdown and backpressure edge cases of the job queue — the
//! behaviours the gateway's admission control leans on. Every scenario
//! runs under both queue disciplines (FIFO and EDF), since the
//! shutdown/backpressure contract is policy-independent
//! (docs/SCHEDULING.md).

use drift_serve::queue::{job_queue_with_policy, Deadlined, QueuePolicy};
use drift_serve::runtime::{serve, ServeConfig};
use drift_serve::synthetic_jobs;
use std::collections::HashSet;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Barrier, Mutex};
use std::time::{Duration, Instant};

const POLICIES: [QueuePolicy; 2] = [QueuePolicy::Fifo, QueuePolicy::Edf];

fn try_submit_racing_shutdown(policy: QueuePolicy) {
    // Producers hammer try_submit while the consumer side shuts down at
    // an arbitrary moment. Every Ok(()) must correspond to a delivered
    // job until the close; afterwards try_submit must keep returning
    // Err instead of panicking.
    const PRODUCERS: usize = 4;
    const CONSUMED: usize = 64;

    let (queue, handle) = job_queue_with_policy::<usize>(policy, 2);
    let queue = Arc::new(queue);
    let submitted = Arc::new(AtomicUsize::new(0));
    let delivered = Arc::new(AtomicUsize::new(0));
    // Producers run until the consumer has quit; a fixed attempt count
    // could end before the consumer's quota and deadlock it in
    // next_job() (the queue sender stays alive for the whole test).
    let done = Arc::new(AtomicBool::new(false));
    let start = Arc::new(Barrier::new(PRODUCERS + 2));

    std::thread::scope(|scope| {
        for p in 0..PRODUCERS {
            let queue = Arc::clone(&queue);
            let submitted = Arc::clone(&submitted);
            let done = Arc::clone(&done);
            let start = Arc::clone(&start);
            scope.spawn(move || {
                start.wait();
                for i in 0.. {
                    if done.load(Ordering::SeqCst) {
                        break;
                    }
                    if queue.try_submit(p * 1_000_000 + i).is_ok() {
                        submitted.fetch_add(1, Ordering::SeqCst);
                    }
                }
            });
        }
        let consumer = {
            let delivered = Arc::clone(&delivered);
            let done = Arc::clone(&done);
            let start = Arc::clone(&start);
            scope.spawn(move || {
                start.wait();
                // Take a handful of jobs, then quit mid-stream: from the
                // producers' side this is an abrupt shutdown.
                for _ in 0..CONSUMED {
                    if handle.next_job().is_none() {
                        break;
                    }
                    delivered.fetch_add(1, Ordering::SeqCst);
                }
                drop(handle);
                done.store(true, Ordering::SeqCst);
            })
        };
        start.wait();
        consumer.join().unwrap();
    });

    // The consumer stopped early, so some accepted jobs may still sit
    // in the (now closed) queue's buffer — but never more than its
    // depth, and nothing was double-counted.
    let submitted = submitted.load(Ordering::SeqCst);
    let delivered = delivered.load(Ordering::SeqCst);
    assert!(delivered <= submitted);
    assert!(
        submitted - delivered <= 2,
        "[{policy}] at most queue_depth accepted jobs may be stranded by an \
         abrupt consumer shutdown: submitted {submitted}, delivered {delivered}"
    );

    // The queue is closed: submission fails cleanly from here on.
    assert_eq!(queue.try_submit(99), Err(99));
    assert_eq!(queue.try_submit(99), Err(99));
}

#[test]
fn try_submit_racing_shutdown_never_panics_and_never_loses_delivered_jobs() {
    for policy in POLICIES {
        try_submit_racing_shutdown(policy);
    }
}

fn try_submit_batch_racing_shutdown(policy: QueuePolicy) {
    // The batch analogue of try_submit_racing_shutdown: producers
    // hammer try_submit_batch while the consumer quits mid-stream.
    // Admission stays all-or-shed under the race — every accepted
    // batch is accounted whole, and after the close try_submit_batch
    // hands the batch back untouched instead of panicking.
    const PRODUCERS: usize = 4;
    const BATCH: usize = 3;
    const CONSUMED: usize = 60;
    const DEPTH: usize = 2 * BATCH;

    let (queue, handle) = job_queue_with_policy::<usize>(policy, DEPTH);
    let queue = Arc::new(queue);
    let submitted = Arc::new(AtomicUsize::new(0));
    let delivered = Arc::new(AtomicUsize::new(0));
    let done = Arc::new(AtomicBool::new(false));
    let start = Arc::new(Barrier::new(PRODUCERS + 2));

    std::thread::scope(|scope| {
        for p in 0..PRODUCERS {
            let queue = Arc::clone(&queue);
            let submitted = Arc::clone(&submitted);
            let done = Arc::clone(&done);
            let start = Arc::clone(&start);
            scope.spawn(move || {
                start.wait();
                for i in 0.. {
                    if done.load(Ordering::SeqCst) {
                        break;
                    }
                    let batch: Vec<usize> =
                        (0..BATCH).map(|j| p * 1_000_000 + i * BATCH + j).collect();
                    match queue.try_submit_batch(batch) {
                        Ok(()) => {
                            submitted.fetch_add(BATCH, Ordering::SeqCst);
                        }
                        Err(returned) => assert_eq!(
                            returned.len(),
                            BATCH,
                            "[{policy}] a shed batch must come back whole"
                        ),
                    }
                }
            });
        }
        let consumer = {
            let delivered = Arc::clone(&delivered);
            let done = Arc::clone(&done);
            let start = Arc::clone(&start);
            scope.spawn(move || {
                start.wait();
                for _ in 0..CONSUMED {
                    if handle.next_job().is_none() {
                        break;
                    }
                    delivered.fetch_add(1, Ordering::SeqCst);
                }
                drop(handle);
                done.store(true, Ordering::SeqCst);
            })
        };
        start.wait();
        consumer.join().unwrap();
    });

    // Atomic admission: accepted-but-undelivered jobs are bounded by
    // the queue depth, exactly as in the singleton race.
    let submitted = submitted.load(Ordering::SeqCst);
    let delivered = delivered.load(Ordering::SeqCst);
    assert!(delivered <= submitted);
    assert!(
        submitted - delivered <= DEPTH,
        "[{policy}] at most queue_depth accepted jobs may be stranded: \
         submitted {submitted}, delivered {delivered}"
    );

    // The queue is closed: the whole batch comes back, in order.
    assert_eq!(queue.try_submit_batch(vec![7, 8, 9]), Err(vec![7, 8, 9]));
    assert_eq!(queue.try_submit_batch(vec![7, 8, 9]), Err(vec![7, 8, 9]));
}

#[test]
fn try_submit_batch_racing_shutdown_stays_atomic_and_never_panics() {
    for policy in POLICIES {
        try_submit_batch_racing_shutdown(policy);
    }
}

#[test]
fn batch_larger_than_capacity_sheds_whole_and_consumes_nothing() {
    for policy in POLICIES {
        let (queue, handle) = job_queue_with_policy::<u32>(policy, 4);
        // Oversized relative to total depth: can never be admitted,
        // even against an empty queue.
        assert_eq!(
            queue.try_submit_batch(vec![1, 2, 3, 4, 5]),
            Err(vec![1, 2, 3, 4, 5]),
            "[{policy}]"
        );
        assert_eq!(queue.backlog(), 0, "[{policy}] shed must consume no slots");
        // Exactly-at-depth still fits — the shed above charged nothing.
        queue
            .try_submit_batch(vec![10, 11, 12, 13])
            .unwrap_or_else(|_| panic!("[{policy}] a depth-sized batch must fit an empty queue"));
        // Now full: even a minimal batch sheds whole.
        assert_eq!(
            queue.try_submit_batch(vec![99]),
            Err(vec![99]),
            "[{policy}]"
        );
        let drained: Vec<u32> = (0..4)
            .map(|_| handle.next_job().expect("four jobs are buffered"))
            .collect();
        let expect: HashSet<u32> = [10, 11, 12, 13].into();
        assert_eq!(drained.iter().copied().collect::<HashSet<u32>>(), expect);
    }
}

#[test]
fn depth_one_queue_drains_batches_of_one_and_sheds_anything_larger() {
    // The tightest queue: batch admission degenerates to singleton
    // behaviour at size 1 and must shed any larger batch whole, under
    // either discipline — nothing lost, nothing duplicated.
    const JOBS: usize = 64;
    for policy in POLICIES {
        let (queue, handle) = job_queue_with_policy::<usize>(policy, 1);
        let queue = Arc::new(queue);
        let delivered: Mutex<Vec<usize>> = Mutex::new(Vec::new());
        std::thread::scope(|scope| {
            let consumer = scope.spawn(|| {
                while let Some(job) = handle.next_job() {
                    delivered.lock().unwrap().push(job);
                }
            });
            // A batch of two can never fit depth 1, no matter how
            // drained the queue is at the instant of the check.
            assert_eq!(queue.try_submit_batch(vec![900, 901]), Err(vec![900, 901]));
            for job in 0..JOBS {
                // Spin until the size-1 batch is admitted; every shed
                // hands the job back for the retry.
                let mut batch = vec![job];
                loop {
                    match queue.try_submit_batch(batch) {
                        Ok(()) => break,
                        Err(returned) => {
                            assert_eq!(returned, vec![job], "[{policy}]");
                            batch = returned;
                            std::thread::yield_now();
                        }
                    }
                }
            }
            drop(queue);
            consumer.join().unwrap();
        });
        let drained = delivered.into_inner().unwrap();
        assert_eq!(drained.len(), JOBS, "[{policy}] lost or duplicated jobs");
        let unique: HashSet<usize> = drained.iter().copied().collect();
        assert_eq!(unique.len(), JOBS, "[{policy}] duplicated jobs");
    }
}

#[test]
fn submit_after_shutdown_returns_the_job_instead_of_panicking() {
    for policy in POLICIES {
        let (queue, handle) = job_queue_with_policy::<u32>(policy, 4);
        queue.try_submit(1).unwrap();
        drop(handle);
        // Both the blocking and non-blocking paths must hand the job back.
        assert_eq!(queue.submit(2), Err(2), "[{policy}]");
        assert_eq!(queue.try_submit(3), Err(3), "[{policy}]");
        // And stay in that state on repeated calls.
        assert_eq!(queue.submit(2), Err(2), "[{policy}]");
    }
}

/// A queue payload carrying an absolute deadline.
#[derive(Debug, Clone)]
struct Timed {
    budget_ticks: u64,
    deadline: Instant,
}

impl Deadlined for Timed {
    fn deadline(&self) -> Option<Instant> {
        Some(self.deadline)
    }
}

#[test]
fn edf_meets_strictly_more_deadlines_than_fifo_on_a_backlogged_burst() {
    // The deterministic core of the EXPERIMENTS.md overload sweep: an
    // overload burst lands a backlog of jobs with uniform random
    // deadline budgets on the queue all at once, and a single worker
    // then drains it at one job per tick. A job dequeued at position p
    // completes at tick p + 1 and meets its deadline iff
    // p + 1 <= budget. FIFO drains in arrival order, so tight-budget
    // jobs deep in the backlog expire while loose ones ahead of them
    // waste their slack; EDF drains in deadline order and must meet
    // strictly more (docs/SCHEDULING.md). Virtual time only — nothing
    // sleeps, so the assertion is exact and single-core-safe.
    const BURST: u64 = 64;

    let base = Instant::now() + Duration::from_secs(3600);
    let mut state = 0x9E37_79B9_7F4A_7C15u64;
    let budgets: Vec<u64> = (0..BURST)
        .map(|_| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            state % BURST + 1
        })
        .collect();

    let met = |policy: QueuePolicy| -> u64 {
        let (queue, handle) = job_queue_with_policy::<Timed>(policy, BURST as usize);
        for budget_ticks in budgets.iter().copied() {
            queue
                .try_submit(Timed {
                    budget_ticks,
                    deadline: base + Duration::from_millis(budget_ticks),
                })
                .expect("the queue is deep enough for the whole burst");
        }
        drop(queue);
        let mut met = 0;
        let mut tick = 0;
        while let Some(job) = handle.next_job() {
            tick += 1;
            if job.budget_ticks >= tick {
                met += 1;
            }
        }
        assert_eq!(tick, BURST, "the drain must deliver the whole burst");
        met
    };

    let fifo = met(QueuePolicy::Fifo);
    let edf = met(QueuePolicy::Edf);
    assert!(
        edf > fifo,
        "EDF must meet strictly more deadlines than FIFO on a random \
         backlog: edf {edf}, fifo {fifo}"
    );
}

#[test]
fn draining_through_a_depth_one_queue_loses_zero_results() {
    // The tightest possible queue forces a backpressure stall on nearly
    // every submit; the run must still produce exactly one result per
    // job, under either discipline.
    let jobs = synthetic_jobs(64, 4, 13);
    for policy in POLICIES {
        let outcome = serve(
            jobs.clone(),
            &ServeConfig {
                workers: 3,
                queue_depth: 1,
                queue: policy,
                ..ServeConfig::default()
            },
        );
        assert_eq!(outcome.results.len(), jobs.len(), "[{policy}]");
        let ids: HashSet<u64> = outcome.results.iter().map(|r| r.id).collect();
        assert_eq!(ids.len(), jobs.len(), "[{policy}] duplicated or lost ids");
        assert_eq!(outcome.report.jobs, jobs.len() as u64, "[{policy}]");
    }
}
