//! Property: a schedule served from the cache is byte-identical to one
//! computed fresh, for arbitrary shapes and precision mixes.

use drift_accel::gemm::GemmShape;
use drift_accel::systolic::ArrayGeometry;
use drift_core::schedule::ScheduleKey;
use drift_quant::Precision;
use drift_serve::ScheduleCache;
use proptest::prelude::*;

proptest! {
    #[test]
    fn cached_schedule_is_byte_identical_to_fresh(
        m in 1usize..512,
        k in 1usize..2048,
        n in 1usize..512,
        fa in 0.0f64..1.0,
        fw in 0.0f64..1.0,
    ) {
        let key = ScheduleKey {
            shape: GemmShape::new(m, k, n).unwrap(),
            act_high: (m as f64 * fa) as usize,
            weight_high: (n as f64 * fw) as usize,
            act_precisions: (Precision::INT8, Precision::INT4),
            weight_precisions: (Precision::INT8, Precision::INT4),
            fabric: ArrayGeometry::new(24, 33).unwrap(),
        };
        let fresh = key.solve().unwrap();

        let cache = ScheduleCache::new(8, 2);
        let (miss, hit1) = cache.get_or_solve(key).unwrap();
        let (cached, hit2) = cache.get_or_solve(key).unwrap();
        prop_assert!(!hit1);
        prop_assert!(hit2);

        // Structurally equal...
        prop_assert_eq!(miss, fresh);
        prop_assert_eq!(cached, fresh);
        // ...and byte-identical on the wire.
        let fresh_bytes = serde_json::to_string(&fresh).unwrap();
        prop_assert_eq!(serde_json::to_string(&miss).unwrap(), fresh_bytes.clone());
        prop_assert_eq!(serde_json::to_string(&cached).unwrap(), fresh_bytes);
    }
}
