//! Properties of the schedule cache: a cached schedule is byte-identical
//! to one computed fresh (for arbitrary shapes and precision mixes),
//! eviction is least-recently-*used* — not insertion — order, and every
//! shard respects its slice of the configured capacity.

use drift_accel::gemm::GemmShape;
use drift_accel::systolic::ArrayGeometry;
use drift_core::schedule::ScheduleKey;
use drift_quant::Precision;
use drift_serve::ScheduleCache;
use proptest::prelude::*;
use std::collections::HashSet;

proptest! {
    #[test]
    fn cached_schedule_is_byte_identical_to_fresh(
        m in 1usize..512,
        k in 1usize..2048,
        n in 1usize..512,
        fa in 0.0f64..1.0,
        fw in 0.0f64..1.0,
    ) {
        let key = ScheduleKey {
            shape: GemmShape::new(m, k, n).unwrap(),
            act_high: (m as f64 * fa) as usize,
            weight_high: (n as f64 * fw) as usize,
            act_precisions: (Precision::INT8, Precision::INT4),
            weight_precisions: (Precision::INT8, Precision::INT4),
            fabric: ArrayGeometry::new(24, 33).unwrap(),
        };
        let fresh = key.solve().unwrap();

        let cache = ScheduleCache::new(8, 2);
        let (miss, hit1) = cache.get_or_solve(key).unwrap();
        let (cached, hit2) = cache.get_or_solve(key).unwrap();
        prop_assert!(!hit1);
        prop_assert!(hit2);

        // Structurally equal...
        prop_assert_eq!(miss, fresh);
        prop_assert_eq!(cached, fresh);
        // ...and byte-identical on the wire.
        let fresh_bytes = serde_json::to_string(&fresh).unwrap();
        prop_assert_eq!(serde_json::to_string(&miss).unwrap(), fresh_bytes.clone());
        prop_assert_eq!(serde_json::to_string(&cached).unwrap(), fresh_bytes);
    }
}

/// The `i`-th of a family of distinct, valid schedule keys.
fn distinct_key(i: usize) -> ScheduleKey {
    ScheduleKey {
        shape: GemmShape::new(16 + 8 * i, 128, 64).unwrap(),
        act_high: 8,
        weight_high: 16,
        act_precisions: (Precision::INT8, Precision::INT4),
        weight_precisions: (Precision::INT8, Precision::INT4),
        fabric: ArrayGeometry::new(8, 9).unwrap(),
    }
}

/// The set of keys currently resident (via the persistence export).
fn resident(cache: &ScheduleCache) -> HashSet<ScheduleKey> {
    cache.export().into_iter().map(|(k, _)| k).collect()
}

#[test]
fn eviction_is_least_recently_used_not_insertion_order() {
    // One shard, capacity 3, so eviction order is fully deterministic.
    let cache = ScheduleCache::new(3, 1);
    let (a, b, c, d) = (
        distinct_key(0),
        distinct_key(1),
        distinct_key(2),
        distinct_key(3),
    );
    for k in [a, b, c] {
        cache.get_or_solve(k).unwrap();
    }
    // Touch `a`: the oldest-inserted key becomes the most recently
    // used, so the LRU entry is now `b`.
    assert!(cache.get(&a).is_some());
    cache.get_or_solve(d).unwrap();

    let live = resident(&cache);
    assert!(
        live.contains(&a),
        "FIFO would evict `a` here; LRU must keep it"
    );
    assert!(!live.contains(&b), "`b` is the least recently used entry");
    assert!(live.contains(&c));
    assert!(live.contains(&d));
    assert_eq!(cache.stats().evictions, 1);
}

#[test]
fn every_shard_respects_its_capacity_slice() {
    // Capacity 8 over 4 shards: each shard holds at most 2 entries, so
    // 40 distinct keys can leave at most 8 resident no matter how the
    // shard hash spreads them.
    let cache = ScheduleCache::new(8, 4);
    let keys: Vec<ScheduleKey> = (0..40).map(distinct_key).collect();
    for k in &keys {
        cache.get_or_solve(*k).unwrap();
    }
    let stats = cache.stats();
    assert!(
        stats.entries <= 8,
        "shards exceeded their capacity slices: {} resident",
        stats.entries
    );
    assert_eq!(
        stats.evictions,
        40 - stats.entries as u64,
        "every insert beyond a shard's slice must evict exactly one entry"
    );
    // The residents are a subset of what was inserted, and the LRU tail
    // of each shard: re-getting every key must hit exactly the
    // residents and miss the rest.
    let live = resident(&cache);
    assert!(live.iter().all(|k| keys.contains(k)));
    let (hits_before, misses_before) = (stats.hits, stats.misses);
    let mut hits = 0;
    for k in &keys {
        if cache.get(k).is_some() {
            hits += 1;
        }
    }
    assert_eq!(hits, live.len());
    assert_eq!(cache.stats().hits - hits_before, hits as u64);
    assert_eq!(cache.stats().misses - misses_before, (40 - hits) as u64);
}

#[test]
fn preload_overflow_keeps_only_each_shards_most_recent_slice() {
    // Preloading 12 entries into a 4-entry single-shard cache must
    // leave the 4 most recently preloaded entries resident — normal
    // LRU applies to warm-start data too.
    let cache = ScheduleCache::new(4, 1);
    let entries: Vec<_> = (0..12)
        .map(|i| {
            let k = distinct_key(i);
            (k, k.solve().unwrap())
        })
        .collect();
    assert_eq!(cache.preload(&entries), 12);
    let live = resident(&cache);
    assert_eq!(live.len(), 4);
    for (k, _) in &entries[8..] {
        assert!(live.contains(k), "the newest preloads must survive");
    }
    // Preload populates without touching the serving counters.
    assert_eq!(cache.stats().hits, 0);
    assert_eq!(cache.stats().misses, 0);
}
