//! Batch/singleton byte-identity at the serve layer: grouping jobs by
//! schedule key and running them through [`execute_group`] must yield
//! outcomes byte-identical to executing every spec individually — the
//! property the gateway's per-batch schedule amortization rests on
//! (docs/SERVING.md).

use drift_core::accelerator::DriftAccelerator;
use drift_core::schedule::ScheduleKey;
use drift_obs::Recorder;
use drift_serve::job::{result_line, JobResult, JobSpec};
use drift_serve::worker::{execute_group, execute_job, schedule_key_for};
use drift_serve::{synthetic_jobs, ScheduleCache};

fn accel() -> DriftAccelerator {
    DriftAccelerator::paper_config().unwrap()
}

/// Renders the result line each spec would produce when executed
/// one at a time — the reference the grouped path must reproduce.
fn singleton_lines(specs: &[JobSpec]) -> Vec<String> {
    let mut accel = accel();
    let cache = ScheduleCache::new(64, 4);
    specs
        .iter()
        .map(|spec| {
            let (outcome, _) = execute_job(spec, &mut accel, &cache);
            result_line(&JobResult {
                id: spec.id,
                outcome,
            })
        })
        .collect()
}

/// Groups the same specs by schedule key (preserving submission order
/// inside each group, like the gateway batch path) and renders each
/// group's [`execute_group`] outcomes back in submission order.
fn grouped_lines(specs: &[JobSpec]) -> Vec<String> {
    let mut accel = accel();
    let cache = ScheduleCache::new(64, 4);
    let recorder = Recorder::disabled();
    let fabric = accel.fabric();

    let mut groups: Vec<(Option<ScheduleKey>, Vec<usize>)> = Vec::new();
    for (pos, spec) in specs.iter().enumerate() {
        let key = schedule_key_for(spec, fabric);
        match groups.iter_mut().find(|(k, _)| *k == key) {
            Some((_, positions)) => positions.push(pos),
            None => groups.push((key, vec![pos])),
        }
    }

    let mut lines: Vec<Option<String>> = vec![None; specs.len()];
    for (key, positions) in groups {
        let members: Vec<JobSpec> = positions.iter().map(|&p| specs[p].clone()).collect();
        let outcomes = execute_group(key.as_ref(), &members, &mut accel, &cache, &recorder);
        assert_eq!(outcomes.len(), members.len(), "one outcome per member");
        for ((pos, spec), (outcome, _hit)) in positions.iter().zip(&members).zip(outcomes) {
            lines[*pos] = Some(result_line(&JobResult {
                id: spec.id,
                outcome,
            }));
        }
    }
    lines
        .into_iter()
        .map(|line| line.expect("every position settled exactly once"))
        .collect()
}

#[test]
fn grouped_execution_is_byte_identical_to_singleton_execution() {
    // A mixed synthetic stream: several GEMM shapes plus the keyless
    // Select jobs, across enough jobs that every group has repeats
    // (the amortized schedule actually gets shared).
    for (jobs, shapes, seed) in [(60usize, 4usize, 42u64), (48, 6, 7), (32, 1, 2024)] {
        let specs = synthetic_jobs(jobs, shapes, seed);
        let singleton = singleton_lines(&specs);
        let grouped = grouped_lines(&specs);
        assert_eq!(
            singleton, grouped,
            "[jobs={jobs} shapes={shapes} seed={seed}] grouped execution \
             must be byte-identical to singleton execution"
        );
    }
}

#[test]
fn group_cache_hits_report_shared_schedule_reuse() {
    // Within one keyed group only the first job pays the solve — the
    // rest must report cache hits (the amortization itself). Schedule
    // jobs key purely on (shape, fractions, fabric), so same-shape
    // specs with distinct ids and seeds form one group by
    // construction (Simulate keys also hash the seeded precision
    // maps, so they rarely coincide).
    let specs: Vec<JobSpec> = (0..8)
        .map(|i| JobSpec {
            id: i,
            seed: 100 + i,
            kind: drift_serve::job::JobKind::Schedule {
                m: 96,
                k: 256,
                n: 128,
                fa: 0.3,
                fw: 0.4,
            },
        })
        .collect();
    let key = schedule_key_for(&specs[0], accel().fabric());
    assert!(key.is_some(), "Schedule jobs are keyed");
    assert!(specs
        .iter()
        .all(|s| schedule_key_for(s, accel().fabric()) == key));

    let mut accel = accel();
    let cache = ScheduleCache::new(16, 2);
    let recorder = Recorder::disabled();
    let outcomes = execute_group(key.as_ref(), &specs, &mut accel, &cache, &recorder);
    let (first_hit, rest) = (outcomes[0].1, &outcomes[1..]);
    assert!(!first_hit, "a cold cache makes the first job the solver");
    assert!(
        rest.iter().all(|(_, hit)| *hit),
        "every later member of a keyed group must reuse the schedule"
    );
}
