//! A consistent-hash sharding tier over multiple Drift gateways.
//!
//! One gateway's schedule cache thrashes once the working set of
//! distinct schedule keys outgrows its LRU. This crate adds a front
//! tier that speaks the same newline-delimited-JSON wire protocol as
//! the gateway (`docs/SERVING.md`) and routes every job to one of N
//! backend gateways by consistent hash of the job's **schedule key** —
//! the exact [`drift_core::schedule::ScheduleKey`] its execution will
//! look up. Per-shard key sets are therefore disjoint: each backend's
//! cache holds only its own `1/N` slice of the keyspace, which is what
//! makes the aggregate hit rate scale with shard count instead of
//! degrading under key-diverse load.
//!
//! The [`server::Router`] owns the unhappy paths — shard health checks
//! with ejection and re-admission, bounded retry-with-failover along
//! the ring's successor chain for shed and orphaned jobs (exactly one
//! response per accepted id, deadline budgets decremented across hops),
//! live resharding via `{"control":"reshard",...}`, and a graceful
//! drain that answers everything in flight. [`ring::HashRing`] is the
//! placement function; [`ring::route_key`] maps specs to keys.
//!
//! # Example
//!
//! ```rust
//! use drift_gateway::client::Client;
//! use drift_gateway::server::{Gateway, GatewayConfig};
//! use drift_gateway::protocol::Response;
//! use drift_router::server::{Router, RouterConfig};
//! use drift_serve::job::{JobKind, JobSpec};
//!
//! let gw = Gateway::start(
//!     "127.0.0.1:0",
//!     GatewayConfig::with_workers(2),
//!     drift_obs::Recorder::disabled(),
//! )
//! .unwrap();
//! let router = Router::start(
//!     "127.0.0.1:0",
//!     &[gw.local_addr().to_string()],
//!     RouterConfig::default(),
//!     drift_obs::Recorder::disabled(),
//! )
//! .unwrap();
//! let mut client = Client::connect(&router.local_addr().to_string()).unwrap();
//! let spec = JobSpec {
//!     id: 7,
//!     seed: 1,
//!     kind: JobKind::Schedule { m: 128, k: 256, n: 128, fa: 0.25, fw: 0.5 },
//! };
//! match client.submit(&spec, None).unwrap() {
//!     Response::Result(result) => assert_eq!(result.id, 7),
//!     other => panic!("unexpected response {other:?}"),
//! }
//! let summary = router.shutdown();
//! assert_eq!(summary.accepted, 1);
//! gw.shutdown();
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod ring;
pub mod server;

pub use ring::{route_key, HashRing};
pub use server::{Router, RouterConfig, RouterSummary};
