//! The router server: a consistent-hash sharding tier over gateways.
//!
//! ```text
//!  clients ──▶ acceptor ──▶ conn reader ──route by schedule key──┐
//!                │                │ rewrite id, forward          │
//!                │                ▼                              ▼
//!                │        pending table ◀─────────── shard links (one
//!                │                │  settle / fail over  persistent,
//!                │                ▼                      pipelined conn
//!                └──────▶ conn writer ◀── response      per gateway)
//! ```
//!
//! The router speaks the gateway wire protocol on both sides: clients
//! talk to it exactly as they would to one gateway, and it holds one
//! persistent pipelined [`drift_gateway::client::Client`] connection to
//! each backend. Each job is routed by [`crate::ring::route_key`] —
//! the hash of the exact schedule-cache key its execution will look up
//! — so every distinct cache entry lives on exactly one shard.
//!
//! Client job ids are only unique per client connection, so the router
//! rewrites each forwarded job to a router-unique internal id and maps
//! the response back. Responses are byte-identical to a direct gateway
//! because both sides serialise the same [`drift_serve::job::JobResult`]
//! the same way.
//!
//! The unhappy paths are first-class:
//!
//! * **shed failover** — a backend `overloaded` answer re-dispatches
//!   the job to the next distinct shard on its ring walk, up to
//!   [`RouterConfig::max_hops`] distinct shards; only when the walk is
//!   exhausted does the client see `overloaded`.
//! * **ejection and re-admission** — a dead connection (or failed
//!   probe) marks the shard unhealthy, force-closes its socket, and
//!   re-dispatches every job that was in flight on it (orphan
//!   failover); a background probe re-connects and re-admits the shard
//!   once it answers pings again. Re-execution is safe because results
//!   are pure functions of the spec, and the client still sees exactly
//!   one response per request: whichever copy settles the pending entry
//!   first wins, and both carry identical bytes.
//! * **deadlines across hops** — the budget is pinned to an absolute
//!   deadline at admission and each hop forwards only the remainder.
//! * **live reshard** — `{"control":"reshard","shards":[...]}`
//!   quiesces admissions, waits for in-flight work to drain, swaps the
//!   ring (reusing connections to retained shards), and acks with how
//!   many tracked schedule keys changed owner.
//! * **graceful drain** — like the gateway: stop accepting, answer
//!   everything in flight, then tear down.

use crate::ring::{route_key, HashRing};
use crossbeam::channel::{unbounded, Receiver, Sender};
use drift_accel::systolic::ArrayGeometry;
use drift_core::arch::paper_fabric;
use drift_core::schedule::{Schedule, ScheduleKey};
use drift_gateway::client::{Client, ClientReader, ClientWriter};
use drift_gateway::framing::{LineEvent, LineReader};
use drift_gateway::protocol::{
    self, ControlOp, Request, ERR_BAD_REQUEST, ERR_DEADLINE, ERR_OVERLOADED,
};
use drift_gateway::Response;
use drift_obs::{Recorder, SpanRecord, TraceContext, TraceDecision, TraceId, Tracer};
use drift_serve::job::{result_line, JobSpec};
use drift_serve::worker::schedule_key_for;
use serde::Value;
use std::collections::HashMap;
use std::io::{self, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// How often blocked reads wake up to check shutdown and idle expiry.
const READ_TICK: Duration = Duration::from_millis(100);
/// A connection writer gives a slow client this long per response
/// before treating the connection as stalled and discarding the rest.
const WRITE_TIMEOUT: Duration = Duration::from_secs(5);
/// Bounded wait for in-flight jobs to drain during a reshard quiesce.
const QUIESCE_TIMEOUT: Duration = Duration::from_secs(30);
/// Cap on the distinct-key set tracked for reshard moved-key counts.
/// Past the cap the count is over the tracked sample only.
const SEEN_KEYS_CAP: usize = 65_536;
/// Cap on the moved keys the router solves and pushes to their new
/// owners during one reshard. Past the cap the remaining moved keys
/// warm up lazily: the new owner re-solves them on first miss.
const PREWARM_KEYS_CAP: usize = 2048;

/// Tunables for one router instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RouterConfig {
    /// Virtual nodes per shard on the consistent-hash ring.
    pub vnodes: usize,
    /// Maximum distinct shards one job may be dispatched to (first
    /// attempt included) before the client sees `overloaded`.
    pub max_hops: u32,
    /// Health-probe period in milliseconds.
    pub probe_interval_ms: u64,
    /// Bound on any single backend connect attempt, milliseconds.
    pub connect_timeout_ms: u64,
    /// Close a client connection after this long without a complete
    /// request line. `0` disables idle expiry.
    pub idle_timeout_ms: u64,
}

impl Default for RouterConfig {
    fn default() -> Self {
        RouterConfig {
            vnodes: 64,
            max_hops: 3,
            probe_interval_ms: 500,
            connect_timeout_ms: 500,
            idle_timeout_ms: 30_000,
        }
    }
}

/// Request totals over a router's lifetime, returned by
/// [`Router::shutdown`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RouterSummary {
    /// Client connections accepted over the lifetime.
    pub connections: u64,
    /// Job requests admitted (routable or not).
    pub accepted: u64,
    /// Dispatches to backends (counts each failover hop).
    pub routed: u64,
    /// Re-dispatches after a shed or a dead shard.
    pub failovers: u64,
    /// Shards marked unhealthy.
    pub ejections: u64,
    /// Shards marked healthy again after an ejection.
    pub readmissions: u64,
    /// Jobs answered `overloaded` because every permitted hop was
    /// shed, dead, or there was no healthy shard at all.
    pub unrouted: u64,
    /// Jobs answered `deadline_exceeded` by the router itself (budget
    /// exhausted between hops).
    pub expired: u64,
    /// Lines that parsed as neither a job nor a control request.
    pub rejected: u64,
    /// Completed reshard operations.
    pub reshards: u64,
    /// Responses dropped because the client was gone or stalled.
    pub dropped: u64,
}

impl RouterSummary {
    /// One-line human rendering for the CLI's exit report.
    pub fn render(&self) -> String {
        format!(
            "router: {} connections, {} accepted, {} routed, {} failovers, {} ejections, \
             {} readmissions, {} unrouted, {} expired, {} rejected, {} reshards, {} dropped",
            self.connections,
            self.accepted,
            self.routed,
            self.failovers,
            self.ejections,
            self.readmissions,
            self.unrouted,
            self.expired,
            self.rejected,
            self.reshards,
            self.dropped,
        )
    }
}

/// Lifetime counters as plain atomics so the exit summary works even
/// with the recorder disabled.
#[derive(Debug, Default)]
struct Tally {
    connections: AtomicU64,
    accepted: AtomicU64,
    routed: AtomicU64,
    failovers: AtomicU64,
    ejections: AtomicU64,
    readmissions: AtomicU64,
    unrouted: AtomicU64,
    expired: AtomicU64,
    rejected: AtomicU64,
    reshards: AtomicU64,
    dropped: AtomicU64,
}

impl Tally {
    fn summary(&self) -> RouterSummary {
        RouterSummary {
            connections: self.connections.load(Ordering::Relaxed),
            accepted: self.accepted.load(Ordering::Relaxed),
            routed: self.routed.load(Ordering::Relaxed),
            failovers: self.failovers.load(Ordering::Relaxed),
            ejections: self.ejections.load(Ordering::Relaxed),
            readmissions: self.readmissions.load(Ordering::Relaxed),
            unrouted: self.unrouted.load(Ordering::Relaxed),
            expired: self.expired.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            reshards: self.reshards.load(Ordering::Relaxed),
            dropped: self.dropped.load(Ordering::Relaxed),
        }
    }
}

/// One backend gateway: address, health, and the write half plus raw
/// handle of its persistent connection (the read half lives in a
/// dedicated reader thread). Identity is the `Arc` itself — pending
/// entries reference their shard by pointer, which stays valid across
/// reshards because retained shards keep their link (and connection).
#[derive(Debug)]
struct ShardLink {
    addr: String,
    healthy: AtomicBool,
    /// Set when a reshard removes the shard: its reader exits without
    /// ejection accounting and the probe stops touching it.
    retired: AtomicBool,
    /// The queue discipline the shard advertised on its last health
    /// probe ping (`None` until the first successful probe).
    queue: Mutex<Option<String>>,
    writer: Mutex<Option<ClientWriter>>,
    raw: Mutex<Option<TcpStream>>,
}

impl ShardLink {
    fn unconnected(addr: &str) -> Arc<ShardLink> {
        Arc::new(ShardLink {
            addr: addr.to_string(),
            healthy: AtomicBool::new(false),
            retired: AtomicBool::new(false),
            queue: Mutex::new(None),
            writer: Mutex::new(None),
            raw: Mutex::new(None),
        })
    }
}

/// The per-entry distributed-trace state, fixed at admission.
#[derive(Debug, Clone, Copy)]
enum EntryTrace {
    /// No upstream decision and tracing is off here: forward nothing,
    /// keeping the wire bytes identical to a tracing-free build.
    Off,
    /// The router's own tracer is disabled but an upstream tier made a
    /// decision: pass it through verbatim without recording spans.
    Forward(TraceDecision),
    /// Sampled with the router tracing: record a root `request` span
    /// plus one `hop` span per dispatch attempt.
    Sampled {
        /// The trace this request belongs to.
        trace: TraceId,
        /// The upstream parent span carried on the wire, if any.
        parent: Option<u64>,
        /// The router's root `request` span id (settles with the job).
        root_span: u64,
        /// The current dispatch attempt's span id (re-minted per hop);
        /// forwarded downstream as the gateway's parent span.
        hop_span: u64,
    },
}

/// One admitted job waiting for a backend response.
#[derive(Debug)]
struct PendingEntry {
    /// The id the client used (what the response must carry back).
    orig_id: u64,
    /// The spec with its id rewritten to the router-unique internal id.
    spec: JobSpec,
    /// Routing key (cached so failover re-walks the same ring chain).
    key: u64,
    deadline: Option<Instant>,
    /// When the job was admitted (root request-span basis).
    admitted: Instant,
    /// When the current hop was forwarded (hop latency basis).
    sent: Instant,
    /// Dispatch attempts so far.
    hops: u32,
    /// Addresses already tried, so failover never revisits a shard.
    tried: Vec<String>,
    /// The shard currently executing this job.
    shard: Option<Arc<ShardLink>>,
    /// Sampling state decided at admission.
    trace: EntryTrace,
    reply: Sender<String>,
}

/// The client-visible state of one batch request: response slots
/// indexed by submission position, filled as per-shard sub-batches
/// settle. The filler of the last slot assembles the single batch
/// response line, so the client sees its items in submission order no
/// matter how the batch was split or which shard answered first.
#[derive(Debug)]
struct ClientBatch {
    /// The batch id the client used (what the response carries back).
    orig_id: u64,
    total: usize,
    slots: Mutex<Vec<Option<String>>>,
    remaining: AtomicUsize,
    /// When the batch was admitted (root request-span basis).
    admitted: Instant,
    /// Sampling state decided once at admission for the whole batch.
    trace: EntryTrace,
    reply: Sender<String>,
}

impl ClientBatch {
    /// Fills one item's rendered payload; the filler of the last empty
    /// slot assembles and sends the batch response.
    fn settle_slot(&self, shared: &Shared, pos: usize, line: String) {
        {
            let mut slots = self.slots.lock().expect("batch slots");
            debug_assert!(slots[pos].is_none(), "batch slot settled twice");
            slots[pos] = Some(line);
        }
        if self.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
            self.finish(shared);
        }
    }

    fn finish(&self, shared: &Shared) {
        let items: Vec<String> = {
            let mut slots = self.slots.lock().expect("batch slots");
            slots
                .iter_mut()
                .map(|slot| slot.take().expect("all batch slots settled"))
                .collect()
        };
        let line = protocol::batch_response_line(self.orig_id, &items);
        if let EntryTrace::Sampled {
            trace,
            parent,
            root_span,
            ..
        } = self.trace
        {
            shared.tracer.record(&SpanRecord {
                service: None,
                trace,
                span: root_span,
                parent,
                stage: "request",
                start: self.admitted,
                end: Instant::now(),
                job: Some(self.orig_id),
                attrs: &[("outcome", "ok")],
            });
        }
        shared
            .recorder
            .gauge_add("drift_router_inflight_requests", &[], -(self.total as i64));
        if self.reply.send(line).is_err() {
            shared.tally.dropped.fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// One per-shard sub-batch of a client batch, in flight to one
/// gateway as a single batch request line under a router-unique
/// internal batch id. Item ids inside are *not* rewritten: the gateway
/// answers items in submission order, so the positional mapping in
/// `positions` is authoritative and the item payloads come back
/// already carrying the client's ids.
#[derive(Debug)]
struct PendingBatch {
    batch: Arc<ClientBatch>,
    /// Submission positions within the client batch, parallel to
    /// `specs`.
    positions: Vec<usize>,
    specs: Vec<JobSpec>,
    /// The batch-wide absolute deadline: the budget is shared, so each
    /// hop forwards one remainder for the whole sub-batch — never a
    /// per-item decrement.
    deadline: Option<Instant>,
    /// When the current hop was forwarded (hop latency basis).
    sent: Instant,
    /// Dispatch attempts of this sub-batch's items so far.
    hops: u32,
    /// Addresses this sub-batch's items have been sent to: failover
    /// never revisits one, keeping dispatch exactly-once per item per
    /// shard.
    tried: Vec<String>,
    /// The shard currently executing this sub-batch.
    shard: Option<Arc<ShardLink>>,
    /// Hop-span state (re-minted per dispatch attempt); the parent is
    /// the batch's root span.
    trace: EntryTrace,
}

/// What an internal id in the pending table maps to: one rewritten
/// singleton job, or one per-shard sub-batch of a client batch.
#[derive(Debug)]
enum Pending {
    Job(PendingEntry),
    Batch(PendingBatch),
}

impl Pending {
    fn shard(&self) -> Option<&Arc<ShardLink>> {
        match self {
            Pending::Job(entry) => entry.shard.as_ref(),
            Pending::Batch(batch) => batch.shard.as_ref(),
        }
    }
}

/// The routing table: the ring and the index-aligned shard links.
#[derive(Debug)]
struct Table {
    ring: HashRing,
    links: Vec<Arc<ShardLink>>,
}

#[derive(Debug)]
struct Shared {
    config: RouterConfig,
    recorder: Recorder,
    tracer: Tracer,
    /// Arrival counter feeding the ingress-edge sampling decision.
    trace_seq: AtomicU64,
    fabric: ArrayGeometry,
    stop: AtomicBool,
    drain: AtomicBool,
    /// Blocks new admissions while a reshard quiesces.
    resharding: AtomicBool,
    /// Serialises reshard operations across client connections.
    reshard_gate: Mutex<()>,
    table: RwLock<Table>,
    pending: Mutex<HashMap<u64, Pending>>,
    next_internal_id: AtomicU64,
    /// Sample of distinct routing keys seen, for moved-key accounting.
    /// Each routing hash carries the exact [`ScheduleKey`] it was
    /// derived from (`None` for jobs without a schedule), so a reshard
    /// can re-solve moved keys and push the schedules to their new
    /// owner before traffic resumes (`docs/PERSISTENCE.md`).
    seen_keys: Mutex<HashMap<u64, Option<ScheduleKey>>>,
    tally: Tally,
    /// Reader threads of shard connections (every generation).
    shard_threads: Mutex<Vec<JoinHandle<()>>>,
}

impl Shared {
    fn should_stop(&self) -> bool {
        self.stop.load(Ordering::Relaxed) || self.drain.load(Ordering::Relaxed)
    }

    fn healthy_count(&self) -> i64 {
        let table = self.table.read().expect("routing table");
        table
            .links
            .iter()
            .filter(|l| l.healthy.load(Ordering::Relaxed))
            .count() as i64
    }

    fn refresh_healthy_gauge(&self) {
        self.recorder
            .gauge_set("drift_router_shards_healthy", &[], self.healthy_count());
        // Per-policy breakdown of the healthy shards: "unknown" covers
        // shards whose first health probe has not answered yet.
        let (mut fifo, mut edf, mut unknown) = (0i64, 0i64, 0i64);
        {
            let table = self.table.read().expect("routing table");
            for link in &table.links {
                if !link.healthy.load(Ordering::Relaxed) {
                    continue;
                }
                match link.queue.lock().expect("shard queue policy").as_deref() {
                    Some("fifo") => fifo += 1,
                    Some("edf") => edf += 1,
                    _ => unknown += 1,
                }
            }
        }
        for (policy, count) in [("fifo", fifo), ("edf", edf), ("unknown", unknown)] {
            self.recorder
                .gauge_set("drift_router_shards_by_queue", &[("queue", policy)], count);
        }
    }
}

/// A running router: acceptor, client connection threads, one reader
/// thread per backend connection, and a health-probe thread.
///
/// Dropping the router performs the same graceful drain as
/// [`Router::shutdown`].
#[derive(Debug)]
pub struct Router {
    addr: SocketAddr,
    shared: Arc<Shared>,
    acceptor: Option<JoinHandle<()>>,
    conns: Arc<Mutex<Vec<JoinHandle<()>>>>,
    probe: Option<JoinHandle<()>>,
}

impl Router {
    /// Binds `addr` (port 0 picks a free port), connects to every
    /// shard, and starts the acceptor and probe threads. Shards that
    /// refuse the initial connection start unhealthy and are picked up
    /// by the probe once they come up.
    ///
    /// # Errors
    ///
    /// Fails on an empty shard list or a bind failure.
    pub fn start(
        addr: &str,
        shards: &[String],
        config: RouterConfig,
        recorder: Recorder,
    ) -> io::Result<Router> {
        Router::start_traced(addr, shards, config, recorder, Tracer::disabled())
    }

    /// [`Router::start`], additionally recording distributed-trace
    /// spans into `tracer`: a root `request` span per admitted job and
    /// one `hop` span per dispatch attempt (first try, shed failover,
    /// dead-shard failover). When the router is the ingress edge (no
    /// upstream decision on the wire) it makes the head-sampling
    /// decision; downstream tiers honor it. With a disabled tracer the
    /// router's behaviour — including every forwarded byte — is
    /// identical to [`Router::start`].
    ///
    /// # Errors
    ///
    /// Fails on an empty shard list or a bind failure.
    pub fn start_traced(
        addr: &str,
        shards: &[String],
        config: RouterConfig,
        recorder: Recorder,
        tracer: Tracer,
    ) -> io::Result<Router> {
        let mut unique: Vec<String> = Vec::new();
        for shard in shards {
            if !shard.is_empty() && !unique.contains(shard) {
                unique.push(shard.clone());
            }
        }
        if unique.is_empty() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "router needs at least one shard address",
            ));
        }
        let config = RouterConfig {
            vnodes: config.vnodes.max(1),
            max_hops: config.max_hops.max(1),
            probe_interval_ms: config.probe_interval_ms.max(10),
            connect_timeout_ms: config.connect_timeout_ms.max(10),
            ..config
        };
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;

        let links: Vec<Arc<ShardLink>> = unique.iter().map(|a| ShardLink::unconnected(a)).collect();
        let shared = Arc::new(Shared {
            config,
            recorder,
            tracer,
            trace_seq: AtomicU64::new(0),
            fabric: paper_fabric(),
            stop: AtomicBool::new(false),
            drain: AtomicBool::new(false),
            resharding: AtomicBool::new(false),
            reshard_gate: Mutex::new(()),
            table: RwLock::new(Table {
                ring: HashRing::new(&unique, config.vnodes),
                links,
            }),
            pending: Mutex::new(HashMap::new()),
            next_internal_id: AtomicU64::new(1),
            seen_keys: Mutex::new(HashMap::new()),
            tally: Tally::default(),
            shard_threads: Mutex::new(Vec::new()),
        });
        {
            let links = shared.table.read().expect("routing table").links.clone();
            for link in links {
                let _ = connect_shard(&shared, &link);
            }
        }
        shared.refresh_healthy_gauge();

        let conns = Arc::new(Mutex::new(Vec::new()));
        let acceptor = {
            let shared = Arc::clone(&shared);
            let conns = Arc::clone(&conns);
            std::thread::Builder::new()
                .name("router-acceptor".to_string())
                .spawn(move || acceptor_loop(&listener, &shared, &conns))?
        };
        let probe = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("router-probe".to_string())
                .spawn(move || probe_loop(&shared))?
        };

        Ok(Router {
            addr,
            shared,
            acceptor: Some(acceptor),
            conns,
            probe: Some(probe),
        })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// True once a client has requested a drain via
    /// `{"control":"shutdown"}`. The owner should then call
    /// [`Router::shutdown`].
    pub fn draining(&self) -> bool {
        self.shared.drain.load(Ordering::Relaxed)
    }

    /// Lifetime request totals so far.
    pub fn summary(&self) -> RouterSummary {
        self.shared.tally.summary()
    }

    /// Gracefully drains the router: stop accepting, answer every
    /// in-flight job, then join all threads. Returns lifetime totals.
    pub fn shutdown(mut self) -> RouterSummary {
        self.shutdown_in_place()
    }

    fn shutdown_in_place(&mut self) -> RouterSummary {
        self.shared.stop.store(true, Ordering::SeqCst);
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        // Client readers exit at their next tick; each then joins its
        // writer, which only finishes after every pending entry from
        // that connection has been settled by the shard readers (the
        // entries hold the writer's senders). So after this loop the
        // pending table is empty: accepted work has been answered.
        let conns = std::mem::take(&mut *self.conns.lock().expect("connection registry"));
        for conn in conns {
            let _ = conn.join();
        }
        // Now the backend connections can go: close the sockets so the
        // shard readers unblock and exit (the stop flag suppresses
        // their ejection/failover accounting).
        {
            let table = self.shared.table.read().expect("routing table");
            for link in &table.links {
                *link.writer.lock().expect("shard writer") = None;
                if let Some(stream) = link.raw.lock().expect("shard stream").take() {
                    let _ = stream.shutdown(Shutdown::Both);
                }
            }
        }
        let readers =
            std::mem::take(&mut *self.shared.shard_threads.lock().expect("shard threads"));
        for reader in readers {
            let _ = reader.join();
        }
        if let Some(probe) = self.probe.take() {
            let _ = probe.join();
        }
        self.shared.tally.summary()
    }
}

impl Drop for Router {
    fn drop(&mut self) {
        if self.acceptor.is_some() || self.probe.is_some() {
            self.shutdown_in_place();
        }
    }
}

/// Connects the persistent data connection for `link`, installs the
/// write half, and spawns the reader thread. On success the shard is
/// healthy.
fn connect_shard(shared: &Arc<Shared>, link: &Arc<ShardLink>) -> Result<(), String> {
    let timeout = Duration::from_millis(shared.config.connect_timeout_ms);
    let client = Client::connect_with_timeout(&link.addr, timeout)
        .map_err(|e| format!("connect {}: {e}", link.addr))?;
    let raw = client
        .try_clone_stream()
        .map_err(|e| format!("clone stream for {}: {e}", link.addr))?;
    let (reader, writer) = client.split();
    *link.raw.lock().expect("shard stream") = Some(raw);
    *link.writer.lock().expect("shard writer") = Some(writer);
    link.healthy.store(true, Ordering::SeqCst);
    let handle = {
        let shared = Arc::clone(shared);
        let reader_link = Arc::clone(link);
        std::thread::Builder::new()
            .name("router-shard-reader".to_string())
            .spawn(move || shard_reader(&shared, &reader_link, reader))
            .map_err(|e| format!("spawn reader for {}: {e}", link.addr))?
    };
    let mut threads = shared.shard_threads.lock().expect("shard threads");
    threads.retain(|h| !h.is_finished());
    threads.push(handle);
    Ok(())
}

/// Marks `link` unhealthy and force-closes its connection. Exactly one
/// caller wins the transition and does the accounting; the closed
/// socket wakes the shard's reader, whose exit path re-dispatches the
/// orphaned jobs.
fn eject(shared: &Shared, link: &ShardLink) {
    if link.healthy.swap(false, Ordering::SeqCst) {
        shared.tally.ejections.fetch_add(1, Ordering::Relaxed);
        shared.recorder.counter_add(
            "drift_router_shard_ejections_total",
            &[("shard", &link.addr)],
            1,
        );
        shared.refresh_healthy_gauge();
    }
    *link.writer.lock().expect("shard writer") = None;
    if let Some(stream) = link.raw.lock().expect("shard stream").take() {
        let _ = stream.shutdown(Shutdown::Both);
    }
}

/// The reader thread of one backend connection: settles responses until
/// the connection dies, then (unless the router is stopping or the
/// shard was retired by a reshard) ejects the shard and fails over
/// everything that was in flight on it.
fn shard_reader(shared: &Arc<Shared>, link: &Arc<ShardLink>, mut reader: ClientReader) {
    while let Ok(response) = reader.recv() {
        on_backend_response(shared, link, response);
    }
    if !shared.stop.load(Ordering::Relaxed) && !link.retired.load(Ordering::Relaxed) {
        eject(shared, link);
        orphan_failover(shared, link);
    }
}

/// Re-dispatches every pending entry assigned to `link` (which just
/// died). At-least-once execution is safe — results are pure functions
/// of the spec — and the pending table still guarantees exactly one
/// response per accepted id.
fn orphan_failover(shared: &Arc<Shared>, link: &Arc<ShardLink>) {
    let orphans: Vec<(u64, Pending)> = {
        let mut pending = shared.pending.lock().expect("pending table");
        let ids: Vec<u64> = pending
            .iter()
            .filter(|(_, e)| e.shard().is_some_and(|s| Arc::ptr_eq(s, link)))
            .map(|(&id, _)| id)
            .collect();
        ids.into_iter()
            .filter_map(|id| pending.remove(&id).map(|e| (id, e)))
            .collect()
    };
    for (internal_id, orphan) in orphans {
        match orphan {
            Pending::Job(entry) => {
                record_hop_span(shared, &entry, "shard_dead");
                count_failover(shared);
                dispatch(shared, internal_id, entry);
            }
            Pending::Batch(batch) => {
                record_batch_hop_span(shared, &batch, "shard_dead");
                count_failover(shared);
                route_batch(
                    shared,
                    &batch.batch,
                    batch.positions,
                    batch.specs,
                    batch.deadline,
                    batch.tried,
                    batch.hops,
                );
            }
        }
    }
}

/// Records the span of `entry`'s current dispatch attempt (started at
/// `entry.sent`, against the shard in `entry.shard`). A no-op unless
/// the entry is sampled with the router tracing.
fn record_hop_span(shared: &Shared, entry: &PendingEntry, outcome: &str) {
    let EntryTrace::Sampled {
        trace,
        root_span,
        hop_span,
        ..
    } = entry.trace
    else {
        return;
    };
    let addr = entry.shard.as_ref().map_or("", |s| s.addr.as_str());
    shared.tracer.record(&SpanRecord {
        service: None,
        trace,
        span: hop_span,
        parent: Some(root_span),
        stage: "hop",
        start: entry.sent,
        end: Instant::now(),
        job: Some(entry.orig_id),
        attrs: &[("outcome", outcome), ("shard", addr)],
    });
}

fn count_failover(shared: &Shared) {
    shared.tally.failovers.fetch_add(1, Ordering::Relaxed);
    shared
        .recorder
        .counter_add("drift_router_failovers_total", &[], 1);
}

/// Handles one response line from a backend.
fn on_backend_response(shared: &Arc<Shared>, link: &Arc<ShardLink>, response: Response) {
    match response {
        Response::Result(mut result) => {
            let Some(pending) = shared
                .pending
                .lock()
                .expect("pending table")
                .remove(&result.id)
            else {
                // Already settled by a failover copy; identical bytes
                // either way, so dropping the duplicate is safe.
                return;
            };
            match pending {
                Pending::Job(entry) => {
                    observe_hop(shared, entry.sent);
                    record_hop_span(shared, &entry, "ok");
                    result.id = entry.orig_id;
                    settle(shared, &entry, result_line(&result), "ok");
                }
                // Protocol violation — a singleton result correlated to
                // a batch id. Settle the slots so the client's batch
                // never hangs.
                Pending::Batch(batch) => {
                    record_batch_hop_span(shared, &batch, "error");
                    settle_batch_error(shared, &batch, ERR_BAD_REQUEST);
                }
            }
        }
        Response::Batch { id, items } => {
            let Some(pending) = shared.pending.lock().expect("pending table").remove(&id) else {
                return;
            };
            match pending {
                Pending::Batch(batch) => {
                    observe_hop(shared, batch.sent);
                    record_batch_hop_span(shared, &batch, "ok");
                    // Splice each item back into its client-batch slot.
                    // Re-rendering the parsed payload goes through the
                    // same serialisers the gateway used, so the bytes
                    // match a singleton submission exactly.
                    for (i, (pos, spec)) in batch.positions.iter().zip(&batch.specs).enumerate() {
                        let line = match items.get(i) {
                            Some(Response::Result(result)) => result_line(result),
                            Some(Response::Error { id, error }) => protocol::error_line(*id, error),
                            // Short or malformed item list: answer the
                            // leftovers instead of stranding the batch.
                            _ => protocol::error_line(Some(spec.id), ERR_BAD_REQUEST),
                        };
                        batch.batch.settle_slot(shared, *pos, line);
                    }
                }
                Pending::Job(entry) => {
                    record_hop_span(shared, &entry, "error");
                    settle(
                        shared,
                        &entry,
                        protocol::error_line(Some(entry.orig_id), ERR_BAD_REQUEST),
                        ERR_BAD_REQUEST,
                    );
                }
            }
        }
        Response::Error {
            id: Some(id),
            error,
        } => {
            let Some(pending) = shared.pending.lock().expect("pending table").remove(&id) else {
                return;
            };
            match pending {
                Pending::Job(entry) => {
                    observe_hop(shared, entry.sent);
                    if error == ERR_OVERLOADED {
                        // The shard shed the job: walk on to the next
                        // shard.
                        record_hop_span(shared, &entry, "overloaded");
                        count_failover(shared);
                        dispatch(shared, id, entry);
                    } else {
                        record_hop_span(shared, &entry, "error");
                        settle(
                            shared,
                            &entry,
                            protocol::error_line(Some(entry.orig_id), &error),
                            &error,
                        );
                    }
                }
                Pending::Batch(batch) => {
                    observe_hop(shared, batch.sent);
                    if error == ERR_OVERLOADED {
                        // The gateway shed the whole sub-batch (batch
                        // admission is all-or-shed): walk its items on
                        // to their next untried shards.
                        record_batch_hop_span(shared, &batch, "overloaded");
                        count_failover(shared);
                        route_batch(
                            shared,
                            &batch.batch,
                            batch.positions,
                            batch.specs,
                            batch.deadline,
                            batch.tried,
                            batch.hops,
                        );
                    } else {
                        record_batch_hop_span(shared, &batch, "error");
                        settle_batch_error(shared, &batch, &error);
                    }
                }
            }
        }
        // Un-correlatable: a control ack or an id-less error. The
        // router never sends controls on data connections, so there is
        // nothing to settle.
        _ => {
            let _ = link;
        }
    }
}

/// Settles every item of a failed sub-batch with the same wire error,
/// each in its own slot so the rest of the client batch is unaffected.
fn settle_batch_error(shared: &Shared, batch: &PendingBatch, error: &str) {
    for (pos, spec) in batch.positions.iter().zip(&batch.specs) {
        batch
            .batch
            .settle_slot(shared, *pos, protocol::error_line(Some(spec.id), error));
    }
}

/// Records the span of a sub-batch's current dispatch attempt. A no-op
/// unless the batch is sampled with the router tracing.
fn record_batch_hop_span(shared: &Shared, batch: &PendingBatch, outcome: &str) {
    let EntryTrace::Sampled {
        trace,
        root_span,
        hop_span,
        ..
    } = batch.trace
    else {
        return;
    };
    let addr = batch.shard.as_ref().map_or("", |s| s.addr.as_str());
    shared.tracer.record(&SpanRecord {
        service: None,
        trace,
        span: hop_span,
        parent: Some(root_span),
        stage: "hop",
        start: batch.sent,
        end: Instant::now(),
        job: Some(batch.batch.orig_id),
        attrs: &[("outcome", outcome), ("shard", addr)],
    });
}

fn observe_hop(shared: &Shared, sent: Instant) {
    if shared.recorder.is_enabled() {
        shared.recorder.observe(
            "drift_router_hop_latency_microseconds",
            &[],
            drift_obs::contract::LATENCY_US_BUCKETS,
            sent.elapsed().as_micros().min(u128::from(u64::MAX)) as u64,
        );
    }
}

/// Sends the final response line for `entry` back to its client and
/// settles the request's accounting. `outcome` labels the root
/// `request` trace span (`ok`, a wire error name, or `unrouted`).
fn settle(shared: &Shared, entry: &PendingEntry, line: String, outcome: &str) {
    if let EntryTrace::Sampled {
        trace,
        parent,
        root_span,
        ..
    } = entry.trace
    {
        shared.tracer.record(&SpanRecord {
            service: None,
            trace,
            span: root_span,
            parent,
            stage: "request",
            start: entry.admitted,
            end: Instant::now(),
            job: Some(entry.orig_id),
            attrs: &[("outcome", outcome)],
        });
    }
    shared
        .recorder
        .gauge_add("drift_router_inflight_requests", &[], -1);
    if entry.reply.send(line).is_err() {
        shared.tally.dropped.fetch_add(1, Ordering::Relaxed);
    }
}

/// The budget until `deadline` in whole milliseconds, rounded *up* and
/// at least 1.
///
/// Rounding down here (the old `as_millis()` behaviour) silently
/// donated up to 1 ms of the client's budget to the floor on every
/// hop: a job with 2.5 ms remaining was forwarded as `deadline_ms:2`,
/// so the backend's re-derived deadline could expire while the
/// client's original one still had slack. Ceil keeps the forwarded
/// budget a (tight) upper bound that the dispatch-time expiry check —
/// which compares exact `Instant`s — already enforces.
fn remaining_budget_ms(deadline: Instant, now: Instant) -> u64 {
    let nanos = deadline.saturating_duration_since(now).as_nanos();
    (nanos.div_ceil(1_000_000).max(1)).min(u128::from(u64::MAX)) as u64
}

/// Routes and forwards one job (`entry` must not be in the pending
/// table). Tries ring successors until a healthy untried shard accepts
/// the write; exhausting the deadline, the hop budget, or the shard set
/// answers the client directly.
fn dispatch(shared: &Arc<Shared>, internal_id: u64, mut entry: PendingEntry) {
    loop {
        let now = Instant::now();
        if entry.deadline.is_some_and(|d| now >= d) {
            shared.tally.expired.fetch_add(1, Ordering::Relaxed);
            settle(
                shared,
                &entry,
                protocol::error_line(Some(entry.orig_id), ERR_DEADLINE),
                ERR_DEADLINE,
            );
            return;
        }
        if entry.hops >= shared.config.max_hops {
            shared.tally.unrouted.fetch_add(1, Ordering::Relaxed);
            settle(
                shared,
                &entry,
                protocol::error_line(Some(entry.orig_id), ERR_OVERLOADED),
                "unrouted",
            );
            return;
        }
        let choice: Option<Arc<ShardLink>> = {
            let table = shared.table.read().expect("routing table");
            table
                .ring
                .owners(entry.key)
                .into_iter()
                .map(|i| &table.links[i])
                .find(|l| l.healthy.load(Ordering::SeqCst) && !entry.tried.contains(&l.addr))
                .cloned()
        };
        let Some(link) = choice else {
            shared.tally.unrouted.fetch_add(1, Ordering::Relaxed);
            settle(
                shared,
                &entry,
                protocol::error_line(Some(entry.orig_id), ERR_OVERLOADED),
                "unrouted",
            );
            return;
        };
        entry.hops += 1;
        entry.tried.push(link.addr.clone());
        entry.sent = now;
        entry.shard = Some(Arc::clone(&link));
        // Each dispatch attempt is its own hop span; the fresh id is
        // forwarded so the gateway's request span parents under it.
        if let EntryTrace::Sampled { hop_span, .. } = &mut entry.trace {
            *hop_span = shared.tracer.new_span_id();
        }
        let decision = match entry.trace {
            EntryTrace::Off => TraceDecision::Undecided,
            EntryTrace::Forward(decision) => decision,
            EntryTrace::Sampled {
                trace, hop_span, ..
            } => TraceDecision::Sampled(TraceContext {
                trace_id: trace,
                parent_span: Some(hop_span),
            }),
        };
        // Forward only the remaining budget so hops and failover waits
        // are charged against the client's original deadline.
        let remaining_ms = entry.deadline.map(|d| remaining_budget_ms(d, now));
        let line = protocol::request_line_traced(&entry.spec, remaining_ms, &decision);
        let addr = link.addr.clone();
        // Insert before sending: the response must never race an
        // absent entry.
        shared
            .pending
            .lock()
            .expect("pending table")
            .insert(internal_id, Pending::Job(entry));
        let sent = {
            let mut writer = link.writer.lock().expect("shard writer");
            match writer.as_mut() {
                Some(w) => w.send_raw(&line).is_ok(),
                None => false,
            }
        };
        if sent {
            shared.tally.routed.fetch_add(1, Ordering::Relaxed);
            shared.recorder.counter_add(
                "drift_router_requests_routed_total",
                &[("shard", &addr)],
                1,
            );
            return;
        }
        // The write failed before a complete line reached the shard
        // (write_all only errors short), so no response is coming:
        // take the entry back, kill the connection, walk on.
        let Some(Pending::Job(reclaimed)) = shared
            .pending
            .lock()
            .expect("pending table")
            .remove(&internal_id)
        else {
            return;
        };
        entry = reclaimed;
        record_hop_span(shared, &entry, "write_failed");
        eject(shared, &link);
        count_failover(shared);
    }
}

/// Routes a set of batch items (all belonging to `batch`): each item
/// walks its own ring chain to the first healthy shard not in `tried`,
/// items sharing a target travel together as one sub-batch under one
/// internal batch id, and items with no reachable shard settle
/// `overloaded` in their slots. Failover re-enters this function with
/// the grown `tried` set, so no item is ever dispatched to the same
/// shard twice — exactly-once per item per shard, exactly as the
/// singleton walk guarantees.
///
/// The deadline budget is decremented once per hop for the whole
/// sub-batch — every sub-batch of a split forwards the same remaining
/// budget (`batch_remaining_budget_ms`), never a per-item remainder.
fn route_batch(
    shared: &Arc<Shared>,
    batch: &Arc<ClientBatch>,
    positions: Vec<usize>,
    specs: Vec<JobSpec>,
    deadline: Option<Instant>,
    tried: Vec<String>,
    hops: u32,
) {
    // One routing work unit: (slot positions, specs, shards tried, hops).
    type BatchWork = (Vec<usize>, Vec<JobSpec>, Vec<String>, u32);
    let mut work: Vec<BatchWork> = vec![(positions, specs, tried, hops)];
    while let Some((positions, specs, tried, hops)) = work.pop() {
        let now = Instant::now();
        if deadline.is_some_and(|d| now >= d) {
            shared
                .tally
                .expired
                .fetch_add(positions.len() as u64, Ordering::Relaxed);
            for (pos, spec) in positions.iter().zip(&specs) {
                batch.settle_slot(
                    shared,
                    *pos,
                    protocol::error_line(Some(spec.id), ERR_DEADLINE),
                );
            }
            continue;
        }
        if hops >= shared.config.max_hops {
            shared
                .tally
                .unrouted
                .fetch_add(positions.len() as u64, Ordering::Relaxed);
            for (pos, spec) in positions.iter().zip(&specs) {
                batch.settle_slot(
                    shared,
                    *pos,
                    protocol::error_line(Some(spec.id), ERR_OVERLOADED),
                );
            }
            continue;
        }
        let mut groups: Vec<(Arc<ShardLink>, Vec<usize>, Vec<JobSpec>)> = Vec::new();
        let mut unroutable: Vec<(usize, JobSpec)> = Vec::new();
        {
            let table = shared.table.read().expect("routing table");
            for (pos, spec) in positions.into_iter().zip(specs) {
                let key = route_key(&spec, shared.fabric);
                let choice = table
                    .ring
                    .owners(key)
                    .into_iter()
                    .map(|i| &table.links[i])
                    .find(|l| l.healthy.load(Ordering::SeqCst) && !tried.contains(&l.addr))
                    .cloned();
                match choice {
                    Some(link) => match groups.iter_mut().find(|(g, ..)| Arc::ptr_eq(g, &link)) {
                        Some((_, ps, ss)) => {
                            ps.push(pos);
                            ss.push(spec);
                        }
                        None => groups.push((link, vec![pos], vec![spec])),
                    },
                    None => unroutable.push((pos, spec)),
                }
            }
        }
        for (pos, spec) in unroutable {
            shared.tally.unrouted.fetch_add(1, Ordering::Relaxed);
            batch.settle_slot(
                shared,
                pos,
                protocol::error_line(Some(spec.id), ERR_OVERLOADED),
            );
        }
        if groups.len() > 1 {
            shared
                .recorder
                .counter_add("drift_router_batch_splits_total", &[], 1);
        }
        // One budget computation for this hop: every sub-batch of the
        // split forwards the same remainder.
        let remaining_ms = batch_remaining_budget_ms(deadline, now);
        for (link, positions, specs) in groups {
            let internal_id = shared.next_internal_id.fetch_add(1, Ordering::Relaxed);
            let mut tried = tried.clone();
            tried.push(link.addr.clone());
            // Each sub-batch dispatch is its own hop span under the
            // batch's root span.
            let mut trace = batch.trace;
            if let EntryTrace::Sampled { hop_span, .. } = &mut trace {
                *hop_span = shared.tracer.new_span_id();
            }
            let decision = match trace {
                EntryTrace::Off => TraceDecision::Undecided,
                EntryTrace::Forward(decision) => decision,
                EntryTrace::Sampled {
                    trace, hop_span, ..
                } => TraceDecision::Sampled(TraceContext {
                    trace_id: trace,
                    parent_span: Some(hop_span),
                }),
            };
            let line =
                protocol::batch_request_line_traced(internal_id, &specs, remaining_ms, &decision);
            let addr = link.addr.clone();
            let entry = PendingBatch {
                batch: Arc::clone(batch),
                positions,
                specs,
                deadline,
                sent: now,
                hops: hops + 1,
                tried,
                shard: Some(Arc::clone(&link)),
                trace,
            };
            shared
                .pending
                .lock()
                .expect("pending table")
                .insert(internal_id, Pending::Batch(entry));
            let sent = {
                let mut writer = link.writer.lock().expect("shard writer");
                match writer.as_mut() {
                    Some(w) => w.send_raw(&line).is_ok(),
                    None => false,
                }
            };
            if sent {
                shared.tally.routed.fetch_add(1, Ordering::Relaxed);
                shared.recorder.counter_add(
                    "drift_router_requests_routed_total",
                    &[("shard", &addr)],
                    1,
                );
                continue;
            }
            // Write failed: reclaim the sub-batch, kill the connection,
            // and re-route its items past this shard.
            let Some(Pending::Batch(reclaimed)) = shared
                .pending
                .lock()
                .expect("pending table")
                .remove(&internal_id)
            else {
                continue;
            };
            record_batch_hop_span(shared, &reclaimed, "write_failed");
            eject(shared, &link);
            count_failover(shared);
            work.push((
                reclaimed.positions,
                reclaimed.specs,
                reclaimed.tried,
                reclaimed.hops,
            ));
        }
    }
}

/// The single forwarded budget for one batch hop, shared by every item
/// of every sub-batch dispatched in that hop. The batch deadline is
/// decremented once per hop — never once per item — so splitting a
/// batch across shards cannot shrink (or multiply) its budget.
fn batch_remaining_budget_ms(deadline: Option<Instant>, now: Instant) -> Option<u64> {
    deadline.map(|d| remaining_budget_ms(d, now))
}

fn acceptor_loop(listener: &TcpListener, shared: &Arc<Shared>, conns: &Mutex<Vec<JoinHandle<()>>>) {
    while !shared.should_stop() {
        match listener.accept() {
            Ok((stream, _peer)) => {
                let shared = Arc::clone(shared);
                let handle = std::thread::Builder::new()
                    .name("router-conn".to_string())
                    .spawn(move || connection(stream, &shared));
                if let Ok(handle) = handle {
                    let mut conns = conns.lock().expect("connection registry");
                    conns.retain(|h| !h.is_finished());
                    conns.push(handle);
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => std::thread::sleep(READ_TICK),
            Err(_) => std::thread::sleep(READ_TICK),
        }
    }
}

/// One client connection's reader: parses request lines, admits and
/// dispatches jobs, and owns the paired writer thread's lifetime.
fn connection(stream: TcpStream, shared: &Arc<Shared>) {
    let _ = stream.set_nodelay(true);
    if stream.set_read_timeout(Some(READ_TICK)).is_err() {
        return;
    }
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    shared.tally.connections.fetch_add(1, Ordering::Relaxed);
    shared
        .recorder
        .gauge_add("drift_router_connections", &[], 1);

    let (reply_tx, reply_rx) = unbounded::<String>();
    let writer = {
        let shared = Arc::clone(shared);
        std::thread::Builder::new()
            .name("router-writer".to_string())
            .spawn(move || writer_loop(write_half, &reply_rx, &shared))
    };

    let mut lines = LineReader::new(stream);
    let mut last_activity = Instant::now();
    let idle = shared.config.idle_timeout_ms;
    while !shared.should_stop() {
        match lines.next_line() {
            LineEvent::Line(line) => {
                last_activity = Instant::now();
                if !handle_client_line(&line, shared, &reply_tx) {
                    break;
                }
            }
            LineEvent::TimedOut => {
                if idle > 0 && last_activity.elapsed() >= Duration::from_millis(idle) {
                    break;
                }
            }
            LineEvent::Eof | LineEvent::Failed => break,
        }
    }
    // Dropping our sender lets the writer exit once every in-flight
    // job's clone is gone — i.e. after all accepted work is answered.
    drop(reply_tx);
    if let Ok(writer) = writer {
        let _ = writer.join();
    }
    shared
        .recorder
        .gauge_add("drift_router_connections", &[], -1);
}

/// Handles one request line from a client. Returns `false` when the
/// connection should stop reading (a shutdown control).
fn handle_client_line(line: &str, shared: &Arc<Shared>, reply: &Sender<String>) -> bool {
    if line.trim().is_empty() {
        return true;
    }
    // The router understands one control the gateway protocol does
    // not — reshard — so controls are intercepted before parse_request
    // (which would reject the unknown op).
    if let Ok(value) = serde_json::from_str::<Value>(line) {
        if let Some(Value::Str(op)) = value.get("control") {
            let op = op.as_str();
            return match op {
                "ping" => {
                    let _ = reply.send(protocol::control_ack_line(ControlOp::Ping, true));
                    true
                }
                "shutdown" => {
                    let _ = reply.send(protocol::control_ack_line(ControlOp::Shutdown, true));
                    shared.drain.store(true, Ordering::SeqCst);
                    false
                }
                "reshard" => {
                    let ack = reshard(shared, &value);
                    let _ = reply.send(ack);
                    true
                }
                _ => {
                    shared.tally.rejected.fetch_add(1, Ordering::Relaxed);
                    let _ = reply.send(protocol::error_line(None, ERR_BAD_REQUEST));
                    true
                }
            };
        }
    }
    match protocol::parse_request(line) {
        Err(_) => {
            shared.tally.rejected.fetch_add(1, Ordering::Relaxed);
            let _ = reply.send(protocol::error_line(None, ERR_BAD_REQUEST));
            true
        }
        // Controls were handled above; this arm is unreachable but
        // keeps the match total if the protocol grows.
        Ok(Request::Control(op)) => {
            let _ = reply.send(protocol::control_ack_line(op, true));
            !matches!(op, ControlOp::Shutdown)
        }
        // Also intercepted above (prewarm is a control): the router
        // holds no schedule cache — prewarm targets gateways directly.
        Ok(Request::Prewarm(_)) => {
            let _ = reply.send(protocol::prewarm_ack_line(false, 0));
            true
        }
        Ok(Request::Job {
            spec,
            deadline_ms,
            trace,
        }) => {
            // A reshard quiesce holds admissions at the door; jobs
            // already in flight drain unhindered.
            while shared.resharding.load(Ordering::SeqCst) {
                if shared.should_stop() {
                    return false;
                }
                std::thread::sleep(Duration::from_millis(1));
            }
            admit(shared, spec, deadline_ms, trace, reply);
            true
        }
        Ok(Request::Batch {
            id,
            specs,
            deadline_ms,
            trace,
        }) => {
            while shared.resharding.load(Ordering::SeqCst) {
                if shared.should_stop() {
                    return false;
                }
                std::thread::sleep(Duration::from_millis(1));
            }
            admit_batch(shared, id, specs, deadline_ms, trace, reply);
            true
        }
    }
}

/// Resolves the per-request distributed-trace state at admission: the
/// router is usually the ingress edge, so absent an upstream decision
/// it makes one; an upstream decision is honored and forwarded.
fn resolve_entry_trace(shared: &Shared, trace_wire: TraceDecision) -> EntryTrace {
    if shared.tracer.is_enabled() {
        let decision = match trace_wire {
            TraceDecision::Undecided => shared
                .tracer
                .decide(shared.trace_seq.fetch_add(1, Ordering::Relaxed)),
            other => other,
        };
        match decision.context() {
            Some(ctx) => EntryTrace::Sampled {
                trace: ctx.trace_id,
                parent: ctx.parent_span,
                root_span: shared.tracer.new_span_id(),
                hop_span: 0,
            },
            None => EntryTrace::Forward(TraceDecision::Unsampled),
        }
    } else if matches!(trace_wire, TraceDecision::Undecided) {
        EntryTrace::Off
    } else {
        EntryTrace::Forward(trace_wire)
    }
}

/// Admits one job: assigns the internal id, computes the routing key,
/// resolves the trace sampling decision, and dispatches.
fn admit(
    shared: &Arc<Shared>,
    spec: JobSpec,
    deadline_ms: Option<u64>,
    trace_wire: TraceDecision,
    reply: &Sender<String>,
) {
    let admitted = Instant::now();
    let trace = resolve_entry_trace(shared, trace_wire);
    let deadline = deadline_ms
        .filter(|&budget| budget > 0)
        .map(|budget| admitted + Duration::from_millis(budget));
    let internal_id = shared.next_internal_id.fetch_add(1, Ordering::Relaxed);
    let orig_id = spec.id;
    let mut spec = spec;
    spec.id = internal_id;
    let key = route_key(&spec, shared.fabric);
    {
        let mut seen = shared.seen_keys.lock().expect("seen keys");
        if seen.len() < SEEN_KEYS_CAP && !seen.contains_key(&key) {
            // The schedule key re-derives in microseconds and only on
            // the first sighting of a routing hash; reshard prewarming
            // needs the real key, not just its hash.
            seen.insert(key, schedule_key_for(&spec, shared.fabric));
        }
    }
    shared.tally.accepted.fetch_add(1, Ordering::Relaxed);
    shared
        .recorder
        .gauge_add("drift_router_inflight_requests", &[], 1);
    let entry = PendingEntry {
        orig_id,
        spec,
        key,
        deadline,
        admitted,
        sent: admitted,
        hops: 0,
        tried: Vec::new(),
        shard: None,
        trace,
        reply: reply.clone(),
    };
    dispatch(shared, internal_id, entry);
}

/// Admits one batch request: one trace decision and one shared
/// deadline for the whole line, then the items are split by the shard
/// that owns each one's routing key and dispatched as per-shard
/// sub-batches ([`route_batch`]).
fn admit_batch(
    shared: &Arc<Shared>,
    id: u64,
    specs: Vec<JobSpec>,
    deadline_ms: Option<u64>,
    trace_wire: TraceDecision,
    reply: &Sender<String>,
) {
    let admitted = Instant::now();
    let trace = resolve_entry_trace(shared, trace_wire);
    let deadline = deadline_ms
        .filter(|&budget| budget > 0)
        .map(|budget| admitted + Duration::from_millis(budget));
    let total = specs.len();
    {
        let mut seen = shared.seen_keys.lock().expect("seen keys");
        for spec in &specs {
            let key = route_key(spec, shared.fabric);
            if seen.len() < SEEN_KEYS_CAP && !seen.contains_key(&key) {
                seen.insert(key, schedule_key_for(spec, shared.fabric));
            }
        }
    }
    shared
        .tally
        .accepted
        .fetch_add(total as u64, Ordering::Relaxed);
    shared
        .recorder
        .gauge_add("drift_router_inflight_requests", &[], total as i64);
    let batch = Arc::new(ClientBatch {
        orig_id: id,
        total,
        slots: Mutex::new(vec![None; total]),
        remaining: AtomicUsize::new(total),
        admitted,
        trace,
        reply: reply.clone(),
    });
    let positions: Vec<usize> = (0..total).collect();
    route_batch(shared, &batch, positions, specs, deadline, Vec::new(), 0);
}

/// Executes a `{"control":"reshard","shards":[...],"vnodes":K}`
/// operation: quiesce admissions, wait for in-flight work to drain,
/// swap the ring (reusing live connections to retained shards), and
/// report how many tracked keys changed owner. Returns the ack line.
fn reshard(shared: &Arc<Shared>, value: &Value) -> String {
    // Every nack reason below is a fixed ASCII literal, so plain
    // quoting is valid JSON.
    let nack =
        |reason: &str| format!("{{\"control\":\"reshard\",\"ok\":false,\"error\":\"{reason}\"}}");
    let Some(shards) = value.get("shards").and_then(Value::as_seq) else {
        return nack("reshard needs a shards array");
    };
    let mut unique: Vec<String> = Vec::new();
    for shard in shards {
        let Value::Str(addr) = shard else {
            return nack("shard addresses must be strings");
        };
        if addr.is_empty() {
            return nack("shard addresses must be non-empty");
        }
        if !unique.contains(addr) {
            unique.push(addr.clone());
        }
    }
    if unique.is_empty() {
        return nack("reshard needs at least one shard");
    }
    let _gate = shared.reshard_gate.lock().expect("reshard gate");
    if shared.should_stop() {
        return nack("router is stopping");
    }
    let vnodes = match value.get("vnodes") {
        Some(Value::U64(v)) => (*v as usize).max(1),
        Some(Value::I64(v)) if *v > 0 => *v as usize,
        _ => shared.config.vnodes,
    };

    // Quiesce: block new admissions, then wait for in-flight work to
    // drain through the shard readers.
    shared.resharding.store(true, Ordering::SeqCst);
    let quiesce_start = Instant::now();
    loop {
        if shared.pending.lock().expect("pending table").is_empty() {
            break;
        }
        if quiesce_start.elapsed() > QUIESCE_TIMEOUT {
            shared.resharding.store(false, Ordering::SeqCst);
            return nack("quiesce timed out with jobs still in flight");
        }
        if shared.stop.load(Ordering::Relaxed) {
            shared.resharding.store(false, Ordering::SeqCst);
            return nack("router is stopping");
        }
        std::thread::sleep(Duration::from_millis(1));
    }

    let (moved, moving, tracked, retired, added) = {
        let mut table = shared.table.write().expect("routing table");
        let new_ring = HashRing::new(&unique, vnodes);
        let seen = shared.seen_keys.lock().expect("seen keys");
        let mut moved = 0u64;
        // The moved keys whose schedules can be pushed to their new
        // owner: jobs without a schedule key have nothing to prewarm.
        let mut moving: Vec<(ScheduleKey, String)> = Vec::new();
        for (&key, schedule_key) in seen.iter() {
            let old = table
                .ring
                .primary(key)
                .map(|i| table.ring.shards()[i].as_str());
            let new = new_ring.primary(key).map(|i| new_ring.shards()[i].as_str());
            if old == new {
                continue;
            }
            moved += 1;
            if let (Some(schedule_key), Some(new_addr)) = (schedule_key, new) {
                if moving.len() < PREWARM_KEYS_CAP {
                    moving.push((*schedule_key, new_addr.to_string()));
                }
            }
        }
        let tracked = seen.len() as u64;
        drop(seen);
        let mut added = 0u64;
        let new_links: Vec<Arc<ShardLink>> = new_ring
            .shards()
            .iter()
            .map(|addr| {
                if let Some(existing) = table.links.iter().find(|l| &l.addr == addr) {
                    Arc::clone(existing)
                } else {
                    added += 1;
                    ShardLink::unconnected(addr)
                }
            })
            .collect();
        let mut retired = 0u64;
        for old in &table.links {
            if !new_ring.shards().contains(&old.addr) {
                retired += 1;
                old.retired.store(true, Ordering::SeqCst);
                old.healthy.store(false, Ordering::SeqCst);
                *old.writer.lock().expect("shard writer") = None;
                if let Some(stream) = old.raw.lock().expect("shard stream").take() {
                    let _ = stream.shutdown(Shutdown::Both);
                }
            }
        }
        *table = Table {
            ring: new_ring,
            links: new_links,
        };
        (moved, moving, tracked, retired, added)
    };
    // Connect newly added shards outside the table write lock.
    {
        let links = shared.table.read().expect("routing table").links.clone();
        for link in links {
            if !link.healthy.load(Ordering::SeqCst) && !link.retired.load(Ordering::SeqCst) {
                let _ = connect_shard(shared, &link);
            }
        }
    }
    // Still quiesced: push moved schedules to their new owners so the
    // first post-reshard request hits a warm cache instead of paying a
    // cold solve on every relocated key.
    let prewarmed = prewarm_moved_keys(shared, moving);
    shared.refresh_healthy_gauge();
    shared.tally.reshards.fetch_add(1, Ordering::Relaxed);
    shared
        .recorder
        .counter_add("drift_router_reshard_moved_keys_total", &[], moved);
    shared.resharding.store(false, Ordering::SeqCst);
    format!(
        "{{\"control\":\"reshard\",\"ok\":true,\"shards\":{},\"added\":{added},\"retired\":{retired},\
         \"moved_keys\":{moved},\"tracked_keys\":{tracked},\"prewarmed_keys\":{prewarmed}}}",
        unique.len()
    )
}

/// Solves the moved keys and pushes each group to its new owning shard
/// over a short-lived connection (prewarm acks would be noise on the
/// pipelined data connections). Solving here costs the router one
/// Eq. 8 sweep per key — exactly the sweep the new owner would
/// otherwise run on its first miss, but off the request path. Wholly
/// best-effort: an unreachable or refusing shard just misses its
/// warm-up and re-solves lazily.
fn prewarm_moved_keys(shared: &Shared, moving: Vec<(ScheduleKey, String)>) -> u64 {
    if moving.is_empty() {
        return 0;
    }
    let mut by_shard: HashMap<String, Vec<(ScheduleKey, Schedule)>> = HashMap::new();
    for (key, addr) in moving {
        // Pure solve — byte-identical to what the new owner would
        // compute itself, so prewarming never changes a response.
        if let Ok(schedule) = key.solve() {
            by_shard.entry(addr).or_default().push((key, schedule));
        }
    }
    let timeout = Duration::from_millis(shared.config.connect_timeout_ms);
    let mut prewarmed = 0u64;
    for (addr, entries) in by_shard {
        let pushed = Client::connect_with_timeout(&addr, timeout)
            .ok()
            .and_then(|mut client| client.prewarm(&entries).ok());
        if pushed == Some(true) {
            prewarmed += entries.len() as u64;
        }
    }
    if prewarmed > 0 {
        shared
            .recorder
            .counter_add("drift_router_prewarm_keys_total", &[], prewarmed);
    }
    prewarmed
}

/// Writes response lines until every sender is gone; a write failure
/// flips to discard mode so in-flight senders never block on a dead
/// peer (same contract as the gateway's writer).
fn writer_loop(mut stream: TcpStream, replies: &Receiver<String>, shared: &Shared) {
    let _ = stream.set_write_timeout(Some(WRITE_TIMEOUT));
    let mut dead = false;
    for line in replies.iter() {
        if !dead {
            let mut bytes = line.into_bytes();
            bytes.push(b'\n');
            dead = stream.write_all(&bytes).is_err() || stream.flush().is_err();
            if !dead {
                continue;
            }
        }
        shared.tally.dropped.fetch_add(1, Ordering::Relaxed);
    }
}

/// The health-probe thread: pings healthy shards over a fresh
/// short-lived connection (catching processes that hang without
/// closing the data socket) and re-connects unhealthy ones, re-admitting
/// them once they answer again.
fn probe_loop(shared: &Arc<Shared>) {
    let interval = Duration::from_millis(shared.config.probe_interval_ms);
    let timeout = Duration::from_millis(shared.config.connect_timeout_ms);
    let mut last = Instant::now();
    while !shared.stop.load(Ordering::Relaxed) {
        if last.elapsed() < interval {
            std::thread::sleep(READ_TICK.min(interval));
            continue;
        }
        last = Instant::now();
        let links = shared.table.read().expect("routing table").links.clone();
        for link in links {
            if shared.stop.load(Ordering::Relaxed) {
                break;
            }
            if link.retired.load(Ordering::Relaxed) {
                continue;
            }
            if link.healthy.load(Ordering::SeqCst) {
                let ack = Client::connect_with_timeout(&link.addr, timeout)
                    .ok()
                    .and_then(|mut c| c.ping_queue().ok());
                match ack {
                    Some((true, queue)) => {
                        // Record the shard's advertised discipline so
                        // health/stats can break shards down by policy.
                        let changed = {
                            let mut slot = link.queue.lock().expect("shard queue policy");
                            let changed = *slot != queue;
                            *slot = queue;
                            changed
                        };
                        if changed {
                            shared.refresh_healthy_gauge();
                        }
                    }
                    _ => {
                        // Ejection closes the data socket, which wakes
                        // the shard reader; its exit path fails the
                        // in-flight jobs over to the ring successors.
                        eject(shared, &link);
                    }
                }
            } else if connect_shard(shared, &link).is_ok() {
                shared.tally.readmissions.fetch_add(1, Ordering::Relaxed);
                shared.recorder.counter_add(
                    "drift_router_shard_readmissions_total",
                    &[("shard", &link.addr)],
                    1,
                );
                shared.refresh_healthy_gauge();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn remaining_budget_rounds_up_instead_of_truncating() {
        let now = Instant::now();
        // 2.5 ms of slack must forward as 3 ms, not 2: truncation made
        // the backend's re-derived deadline tighter than the client's,
        // so sub-millisecond slack expired spuriously downstream.
        assert_eq!(
            remaining_budget_ms(now + Duration::from_micros(2_500), now),
            3
        );
        // Whole milliseconds are untouched.
        assert_eq!(remaining_budget_ms(now + Duration::from_millis(7), now), 7);
        // Sub-millisecond slack is still a live budget: 1, never 0
        // (deadline_ms:0 would mean "no deadline" on the wire).
        assert_eq!(
            remaining_budget_ms(now + Duration::from_micros(300), now),
            1
        );
        // An already-passed deadline saturates to the minimum; the
        // caller's expiry check on exact Instants fires first anyway.
        assert_eq!(remaining_budget_ms(now, now), 1);
    }

    #[test]
    fn batch_budget_decrements_once_per_hop_not_per_item() {
        let now = Instant::now();
        let deadline = Some(now + Duration::from_millis(40));
        // Every sub-batch of a split dispatched in the same hop
        // forwards the same remainder — the item count never divides
        // or multiplies the budget.
        let forwarded = batch_remaining_budget_ms(deadline, now);
        assert_eq!(forwarded, Some(40));
        for _sub_batch_of_any_size in 0..3 {
            assert_eq!(batch_remaining_budget_ms(deadline, now), forwarded);
        }
        // A later hop is charged the elapsed wall time exactly once.
        let later = now + Duration::from_millis(15);
        assert_eq!(batch_remaining_budget_ms(deadline, later), Some(25));
        // No deadline forwards no budget, matching the singleton path.
        assert_eq!(batch_remaining_budget_ms(None, now), None);
    }
}
