//! Consistent hashing: a vnode ring over shard addresses.
//!
//! The router's unit of placement is the **schedule key** — the exact
//! [`drift_core::schedule::ScheduleKey`] a job's execution will look up
//! ([`drift_serve::worker::schedule_key_for`]). Hashing that key onto a
//! ring of virtual nodes gives the two properties the front tier needs:
//!
//! * **disjoint locality** — every distinct schedule key maps to
//!   exactly one shard, so per-shard cache key sets never overlap and
//!   each backend's LRU holds only its own slice of the keyspace;
//! * **minimal movement** — adding or removing a shard remaps only the
//!   ring arcs adjacent to its vnodes, about `1/N` of the keyspace,
//!   instead of reshuffling everything the way `hash % N` would.
//!
//! Hashes are FNV-1a, written out by hand so placement is stable across
//! builds and processes (the std `DefaultHasher` is explicitly
//! randomised and version-dependent).

use drift_accel::systolic::ArrayGeometry;
use drift_serve::job::{JobKind, JobSpec};
use drift_serve::worker::schedule_key_for;
use std::hash::{Hash, Hasher};

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// A 64-bit FNV-1a hasher, usable both directly and as a
/// [`std::hash::Hasher`] (so `#[derive(Hash)]` types like
/// `ScheduleKey` can feed it).
#[derive(Debug, Clone)]
pub struct FnvHasher(u64);

impl FnvHasher {
    /// A fresh hasher at the FNV offset basis.
    pub fn new() -> Self {
        FnvHasher(FNV_OFFSET)
    }
}

impl Default for FnvHasher {
    fn default() -> Self {
        FnvHasher::new()
    }
}

impl Hasher for FnvHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
    }
}

/// A 64-bit avalanche finalizer (the splitmix64 mixer). FNV-1a alone
/// avalanches poorly into the high bits on short inputs, and ring
/// placement orders by the full 64-bit value — without this, vnode
/// points cluster and the ring's arcs (hence shard load) skew badly.
fn mix64(mut x: u64) -> u64 {
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Finalized FNV-1a of `bytes`.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = FnvHasher::new();
    h.write(bytes);
    mix64(h.finish())
}

/// The 64-bit routing key for `spec` on `fabric`.
///
/// Jobs that schedule (Schedule, Simulate) hash their exact
/// [`ScheduleKey`](drift_core::schedule::ScheduleKey), so two jobs
/// agree on a routing key exactly when they would share a cache entry.
/// Select jobs have no schedule; they hash their own parameters, which
/// at least keeps repeats of one selection sweep on one shard. Jobs
/// with invalid shapes (execution will answer a job-level error) fall
/// back to hashing the raw shape fields — any deterministic placement
/// is fine for work that never touches the cache.
pub fn route_key(spec: &JobSpec, fabric: ArrayGeometry) -> u64 {
    let mut h = FnvHasher::new();
    if let Some(key) = schedule_key_for(spec, fabric) {
        h.write_u8(1);
        key.hash(&mut h);
        return mix64(h.finish());
    }
    match &spec.kind {
        JobKind::Select {
            tokens,
            hidden,
            delta,
            profile,
        } => {
            h.write_u8(2);
            h.write_usize(*tokens);
            h.write_usize(*hidden);
            h.write_u64(delta.to_bits());
            h.write(profile.as_bytes());
        }
        JobKind::Schedule { m, k, n, fa, fw } | JobKind::Simulate { m, k, n, fa, fw } => {
            h.write_u8(3);
            h.write_usize(*m);
            h.write_usize(*k);
            h.write_usize(*n);
            h.write_u64(fa.to_bits());
            h.write_u64(fw.to_bits());
        }
    }
    mix64(h.finish())
}

/// A consistent-hash ring: each shard owns `vnodes` points on the
/// 64-bit circle, and a key belongs to the shard owning the first point
/// clockwise from the key's hash.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HashRing {
    shards: Vec<String>,
    vnodes: usize,
    /// `(point, shard index)` sorted by point.
    points: Vec<(u64, usize)>,
}

impl HashRing {
    /// Builds the ring. `vnodes` is clamped to at least 1; shard order
    /// is preserved (indices into [`HashRing::shards`] are the router's
    /// stable shard handles between reshards).
    pub fn new(shards: &[String], vnodes: usize) -> HashRing {
        let vnodes = vnodes.max(1);
        let mut points = Vec::with_capacity(shards.len() * vnodes);
        for (index, addr) in shards.iter().enumerate() {
            for v in 0..vnodes {
                points.push((fnv1a(format!("{addr}#{v}").as_bytes()), index));
            }
        }
        points.sort_unstable();
        HashRing {
            shards: shards.to_vec(),
            vnodes,
            points,
        }
    }

    /// The shard addresses, index-aligned with routing results.
    pub fn shards(&self) -> &[String] {
        &self.shards
    }

    /// Virtual nodes per shard.
    pub fn vnodes(&self) -> usize {
        self.vnodes
    }

    /// The index of the shard owning `key` (health ignored), or `None`
    /// for an empty ring.
    pub fn primary(&self, key: u64) -> Option<usize> {
        if self.points.is_empty() {
            return None;
        }
        let at = self.points.partition_point(|&(p, _)| p < key) % self.points.len();
        Some(self.points[at].1)
    }

    /// All distinct shard indices in preference order for `key`: the
    /// owner first, then each further shard in the order its first
    /// vnode appears walking clockwise. Failover tries these in order,
    /// so every key has a deterministic successor chain.
    pub fn owners(&self, key: u64) -> Vec<usize> {
        let mut order = Vec::with_capacity(self.shards.len());
        if self.points.is_empty() {
            return order;
        }
        let start = self.points.partition_point(|&(p, _)| p < key);
        for step in 0..self.points.len() {
            let shard = self.points[(start + step) % self.points.len()].1;
            if !order.contains(&shard) {
                order.push(shard);
                if order.len() == self.shards.len() {
                    break;
                }
            }
        }
        order
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addrs(n: usize) -> Vec<String> {
        (0..n).map(|i| format!("10.0.0.{i}:7077")).collect()
    }

    #[test]
    fn ring_is_deterministic_and_covers_every_shard() {
        let ring = HashRing::new(&addrs(4), 64);
        let again = HashRing::new(&addrs(4), 64);
        assert_eq!(ring, again);
        let mut hit = [false; 4];
        for key in 0..10_000u64 {
            hit[ring.primary(fnv1a(&key.to_le_bytes())).unwrap()] = true;
        }
        assert_eq!(hit, [true; 4]);
    }

    #[test]
    fn keys_spread_roughly_evenly() {
        let ring = HashRing::new(&addrs(4), 64);
        let mut counts = [0usize; 4];
        let keys = 40_000u64;
        for key in 0..keys {
            counts[ring.primary(fnv1a(&key.to_le_bytes())).unwrap()] += 1;
        }
        // With 64 vnodes per shard the arc-length variance is modest;
        // every shard should land within 2x of the fair share.
        for &c in &counts {
            assert!(c > keys as usize / 8, "imbalanced ring: {counts:?}");
            assert!(c < keys as usize / 2, "imbalanced ring: {counts:?}");
        }
    }

    #[test]
    fn adding_a_shard_moves_about_one_nth_of_the_keyspace() {
        let before = HashRing::new(&addrs(4), 64);
        let after = HashRing::new(&addrs(5), 64);
        let keys = 20_000u64;
        let moved = (0..keys)
            .filter(|key| {
                let k = fnv1a(&key.to_le_bytes());
                let old = &before.shards()[before.primary(k).unwrap()];
                let new = &after.shards()[after.primary(k).unwrap()];
                old != new
            })
            .count();
        let fraction = moved as f64 / keys as f64;
        // Ideal is 1/5; consistent hashing should stay well under the
        // ~4/5 a modulo rehash would move.
        assert!(
            (0.05..0.45).contains(&fraction),
            "moved fraction {fraction:.3} out of range"
        );
        // Keys that moved all moved TO the new shard, never between
        // surviving shards.
        for key in 0..keys {
            let k = fnv1a(&key.to_le_bytes());
            let old = &before.shards()[before.primary(k).unwrap()];
            let new = &after.shards()[after.primary(k).unwrap()];
            if old != new {
                assert_eq!(new, &after.shards()[4]);
            }
        }
    }

    #[test]
    fn owners_lists_every_shard_once_starting_with_the_primary() {
        let ring = HashRing::new(&addrs(4), 16);
        for key in 0..500u64 {
            let k = fnv1a(&key.to_le_bytes());
            let owners = ring.owners(k);
            assert_eq!(owners.len(), 4);
            assert_eq!(owners[0], ring.primary(k).unwrap());
            let mut sorted = owners.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, vec![0, 1, 2, 3]);
        }
    }

    #[test]
    fn route_key_matches_the_schedule_cache_equivalence() {
        use drift_core::arch::paper_fabric;
        let fabric = paper_fabric();
        // Same schedule-cache entry (fa truncates to the same prefix
        // count), same routing key — and ids never matter.
        let a = JobSpec {
            id: 1,
            seed: 9,
            kind: JobKind::Schedule {
                m: 64,
                k: 128,
                n: 64,
                fa: 0.250,
                fw: 0.5,
            },
        };
        let b = JobSpec {
            id: 2,
            seed: 3,
            kind: JobKind::Schedule {
                m: 64,
                k: 128,
                n: 64,
                fa: 0.251,
                fw: 0.5,
            },
        };
        assert_eq!(route_key(&a, fabric), route_key(&b, fabric));
        let c = JobSpec {
            id: 1,
            seed: 9,
            kind: JobKind::Schedule {
                m: 64,
                k: 128,
                n: 64,
                fa: 0.5,
                fw: 0.5,
            },
        };
        assert_ne!(route_key(&a, fabric), route_key(&c, fabric));
        // Invalid shapes still route deterministically.
        let bad = JobSpec {
            id: 0,
            seed: 0,
            kind: JobKind::Simulate {
                m: 0,
                k: 16,
                n: 16,
                fa: 0.5,
                fw: 0.5,
            },
        };
        assert_eq!(route_key(&bad, fabric), route_key(&bad, fabric));
    }
}
