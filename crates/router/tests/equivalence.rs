//! End-to-end equivalence: a router fronting four gateways must be
//! byte-identical to the offline `drift serve` runtime, and sharding by
//! schedule key must not make aggregate cache locality worse than a
//! single gateway holding the same per-shard cache capacity.

use drift_gateway::protocol::request_line;
use drift_gateway::{Gateway, GatewayConfig};
use drift_obs::Recorder;
use drift_router::{Router, RouterConfig};
use drift_serve::job::{result_line, synthetic_jobs, JobKind, JobSpec};
use serde::Value;
use std::collections::HashMap;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};

fn gateway_config(cache_capacity: usize) -> GatewayConfig {
    GatewayConfig {
        workers: 2,
        cache_capacity,
        ..GatewayConfig::default()
    }
}

fn start_gateways(n: usize, cache_capacity: usize, recorder: &Recorder) -> Vec<Gateway> {
    (0..n)
        .map(|_| {
            Gateway::start(
                "127.0.0.1:0",
                gateway_config(cache_capacity),
                recorder.clone(),
            )
            .expect("gateway binds on an ephemeral port")
        })
        .collect()
}

fn addrs(gateways: &[Gateway]) -> Vec<String> {
    gateways
        .iter()
        .map(|g| g.local_addr().to_string())
        .collect()
}

/// Drives `jobs` one at a time over a raw TCP connection and returns
/// the exact response line received for each job id. Submitting
/// sequentially keeps the backend cache access order deterministic.
fn drive_raw(addr: SocketAddr, jobs: &[JobSpec]) -> HashMap<u64, String> {
    let stream = TcpStream::connect(addr).expect("connect to server");
    stream.set_nodelay(true).expect("nodelay");
    let mut reader = BufReader::new(stream.try_clone().expect("clone stream"));
    let mut write = stream;
    let mut lines = HashMap::new();
    for spec in jobs {
        let line = request_line(spec, None);
        write.write_all(line.as_bytes()).expect("send request");
        write.write_all(b"\n").expect("send newline");
        let mut response = String::new();
        reader.read_line(&mut response).expect("read response");
        let response = response.trim_end().to_string();
        assert!(!response.is_empty(), "server closed mid-stream");
        let value: Value = serde_json::from_str(&response).expect("response is JSON");
        let id = match value.get("id") {
            Some(Value::U64(id)) => *id,
            Some(Value::I64(id)) => *id as u64,
            other => panic!("response without an id: {other:?} in {response}"),
        };
        assert!(
            lines.insert(id, response).is_none(),
            "duplicate response for id {id}"
        );
    }
    lines
}

fn offline_lines(jobs: Vec<JobSpec>, cache_capacity: usize) -> HashMap<u64, String> {
    let config = drift_serve::ServeConfig {
        workers: 2,
        cache_capacity,
        ..drift_serve::ServeConfig::default()
    };
    drift_serve::serve(jobs, &config)
        .results
        .iter()
        .map(|r| (r.id, result_line(r)))
        .collect()
}

#[test]
fn router_over_four_gateways_is_byte_identical_to_offline_serve() {
    let jobs = synthetic_jobs(200, 8, 42);
    let recorder = Recorder::disabled();
    let gateways = start_gateways(4, 4096, &recorder);
    let router = Router::start(
        "127.0.0.1:0",
        &addrs(&gateways),
        RouterConfig::default(),
        Recorder::disabled(),
    )
    .expect("router starts");

    let routed = drive_raw(router.local_addr(), &jobs);
    let offline = offline_lines(jobs.clone(), 4096);

    assert_eq!(routed.len(), jobs.len());
    assert_eq!(offline.len(), jobs.len());
    for spec in &jobs {
        assert_eq!(
            routed.get(&spec.id),
            offline.get(&spec.id),
            "response for job {} differs from the offline runtime",
            spec.id
        );
    }

    let summary = router.shutdown();
    assert_eq!(summary.accepted, jobs.len() as u64);
    assert_eq!(summary.failovers, 0, "healthy run must not fail over");
    assert_eq!(summary.unrouted, 0);
    for gw in gateways {
        gw.shutdown();
    }
}

/// A cyclic scan over more distinct schedule keys than one cache can
/// hold: the single gateway LRU-thrashes, while the router splits the
/// keyspace so each shard's slice fits and repeats hit.
fn schedule_scan(distinct: usize, passes: usize) -> Vec<JobSpec> {
    (0..distinct * passes)
        .map(|i| {
            let slot = i % distinct;
            JobSpec {
                id: i as u64,
                seed: 1,
                kind: JobKind::Schedule {
                    m: 16 + 8 * slot,
                    k: 256,
                    n: 256,
                    fa: 0.25,
                    fw: 0.25,
                },
            }
        })
        .collect()
}

fn hit_rate(recorder: &Recorder) -> f64 {
    let snapshot = recorder.registry().expect("recorder enabled").snapshot();
    let hits = snapshot.counter_sum("drift_schedule_cache_hits_total") as f64;
    let misses = snapshot.counter_sum("drift_schedule_cache_misses_total") as f64;
    hits / (hits + misses).max(1.0)
}

#[test]
fn sharded_cache_hit_rate_beats_a_single_gateway() {
    const CACHE: usize = 64;
    let jobs = schedule_scan(150, 4);

    // Baseline: one gateway whose LRU cannot hold the working set.
    let single_recorder = Recorder::enabled();
    let single = start_gateways(1, CACHE, &single_recorder);
    drive_raw(single[0].local_addr(), &jobs);
    let single_rate = hit_rate(&single_recorder);
    for gw in single {
        gw.shutdown();
    }

    // Sharded: four gateways with the SAME per-shard capacity behind
    // the router; each shard sees only its slice of the keyspace.
    let sharded_recorder = Recorder::enabled();
    let gateways = start_gateways(4, CACHE, &sharded_recorder);
    let router = Router::start(
        "127.0.0.1:0",
        &addrs(&gateways),
        RouterConfig::default(),
        Recorder::enabled(),
    )
    .expect("router starts");
    drive_raw(router.local_addr(), &jobs);
    let sharded_rate = hit_rate(&sharded_recorder);

    let summary = router.shutdown();
    assert_eq!(summary.accepted, jobs.len() as u64);
    for gw in gateways {
        gw.shutdown();
    }

    assert!(
        sharded_rate >= single_rate,
        "sharded hit rate {sharded_rate:.3} fell below the single-gateway rate {single_rate:.3}"
    );
    // The working set (150 keys) exceeds one cache (64) but each
    // shard's slice fits, so the gap should be decisive, not marginal.
    assert!(
        sharded_rate > single_rate + 0.2,
        "sharding gained too little locality: {sharded_rate:.3} vs {single_rate:.3}"
    );
}

/// Submits `jobs` in batches of `batch` over one raw TCP connection
/// and returns the exact response line per batch, keyed by batch id.
fn drive_raw_batched(addr: SocketAddr, jobs: &[JobSpec], batch: usize) -> HashMap<u64, String> {
    let stream = TcpStream::connect(addr).expect("connect to server");
    stream.set_nodelay(true).expect("nodelay");
    let mut reader = BufReader::new(stream.try_clone().expect("clone stream"));
    let mut write = stream;
    let mut lines = HashMap::new();
    for chunk in jobs.chunks(batch) {
        let batch_id = chunk[0].id;
        let line = drift_gateway::protocol::batch_request_line(batch_id, chunk, None);
        write.write_all(line.as_bytes()).expect("send batch");
        write.write_all(b"\n").expect("send newline");
        let mut response = String::new();
        reader
            .read_line(&mut response)
            .expect("read batch response");
        assert!(
            lines
                .insert(batch_id, response.trim_end().to_string())
                .is_none(),
            "duplicate batch response for id {batch_id}"
        );
    }
    lines
}

#[test]
fn router_batch_responses_splice_the_exact_singleton_bytes() {
    // A batch through the router shards by per-item schedule key, so a
    // mixed-shape batch splits into per-shard sub-batches; reassembly
    // must still produce one line whose items are byte-identical to
    // what singleton submission of the same stream returns, in
    // submission order.
    const JOBS: usize = 96;
    const BATCH: usize = 16;
    let jobs = synthetic_jobs(JOBS, 8, 42);
    let recorder = Recorder::disabled();

    // Reference: an identical fresh cluster driven singleton.
    let single_gws = start_gateways(4, 4096, &recorder);
    let single_router = Router::start(
        "127.0.0.1:0",
        &addrs(&single_gws),
        RouterConfig::default(),
        Recorder::disabled(),
    )
    .expect("router starts");
    let singleton = drive_raw(single_router.local_addr(), &jobs);
    single_router.shutdown();
    for gw in single_gws {
        gw.shutdown();
    }

    let gateways = start_gateways(4, 4096, &recorder);
    let router = Router::start(
        "127.0.0.1:0",
        &addrs(&gateways),
        RouterConfig::default(),
        Recorder::enabled(),
    )
    .expect("router starts");
    let batched = drive_raw_batched(router.local_addr(), &jobs, BATCH);

    for chunk in jobs.chunks(BATCH) {
        let batch_id = chunk[0].id;
        let items: Vec<String> = chunk
            .iter()
            .map(|spec| singleton.get(&spec.id).expect("singleton answered").clone())
            .collect();
        assert_eq!(
            batched.get(&batch_id),
            Some(&drift_gateway::protocol::batch_response_line(
                batch_id, &items
            )),
            "batch {batch_id}: router reassembly must splice the exact singleton bytes"
        );
    }

    let summary = router.shutdown();
    assert_eq!(
        summary.accepted, JOBS as u64,
        "accepted counts items, not lines"
    );
    assert_eq!(summary.unrouted, 0);
    for gw in gateways {
        gw.shutdown();
    }
}
