//! Live resharding: grow the ring from two to three shards (and back
//! down) while the router keeps answering, with moved-key accounting in
//! both the control acknowledgement and the metrics contract — and
//! with every moved schedule prewarmed onto its new owner, so the
//! reshard never turns warm keys cold (`docs/PERSISTENCE.md`).

use drift_gateway::protocol::request_line;
use drift_gateway::{Gateway, GatewayConfig};
use drift_obs::Recorder;
use drift_router::{Router, RouterConfig};
use drift_serve::job::{JobKind, JobSpec};
use serde::Value;
use std::collections::HashMap;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};

fn start_gateway(recorder: &Recorder) -> Gateway {
    Gateway::start(
        "127.0.0.1:0",
        GatewayConfig::with_workers(2),
        recorder.clone(),
    )
    .expect("gateway binds on an ephemeral port")
}

fn scan(distinct: usize, first_id: u64) -> Vec<JobSpec> {
    (0..distinct)
        .map(|i| JobSpec {
            id: first_id + i as u64,
            seed: 1,
            kind: JobKind::Schedule {
                m: 16 + 8 * i,
                k: 256,
                n: 256,
                fa: 0.25,
                fw: 0.25,
            },
        })
        .collect()
}

struct RawConn {
    write: TcpStream,
    reader: BufReader<TcpStream>,
}

impl RawConn {
    fn open(addr: SocketAddr) -> RawConn {
        let stream = TcpStream::connect(addr).expect("connect to router");
        stream.set_nodelay(true).expect("nodelay");
        let reader = BufReader::new(stream.try_clone().expect("clone stream"));
        RawConn {
            write: stream,
            reader,
        }
    }

    fn round_trip(&mut self, line: &str) -> String {
        self.write.write_all(line.as_bytes()).expect("send line");
        self.write.write_all(b"\n").expect("send newline");
        let mut response = String::new();
        self.reader.read_line(&mut response).expect("read response");
        let response = response.trim_end().to_string();
        assert!(!response.is_empty(), "router closed the connection");
        response
    }

    fn drive(&mut self, jobs: &[JobSpec]) -> HashMap<u64, String> {
        let mut lines = HashMap::new();
        for spec in jobs {
            let response = self.round_trip(&request_line(spec, None));
            let value: Value = serde_json::from_str(&response).expect("response is JSON");
            let id = match value.get("id") {
                Some(Value::U64(id)) => *id,
                Some(Value::I64(id)) if *id >= 0 => *id as u64,
                other => panic!("response without an id: {other:?} in {response}"),
            };
            assert!(
                lines.insert(id, response).is_none(),
                "duplicate response for id {id}"
            );
        }
        lines
    }
}

fn field_u64(value: &Value, name: &str) -> u64 {
    match value.get(name) {
        Some(Value::U64(v)) => *v,
        Some(Value::I64(v)) if *v >= 0 => *v as u64,
        other => panic!("ack field {name} missing or non-numeric: {other:?}"),
    }
}

fn counter(recorder: &Recorder, name: &str) -> u64 {
    recorder
        .registry()
        .expect("recorder enabled")
        .snapshot()
        .counter_sum(name)
}

fn moved_keys_metric(recorder: &Recorder) -> u64 {
    counter(recorder, "drift_router_reshard_moved_keys_total")
}

#[test]
fn reshard_grows_and_shrinks_the_ring_without_losing_jobs() {
    let recorder = Recorder::enabled();
    // All three gateways share one recorder, so miss/prewarm totals
    // below are summed over the whole backend fleet.
    let gw_recorder = Recorder::enabled();
    let gateways: Vec<Gateway> = (0..3).map(|_| start_gateway(&gw_recorder)).collect();
    let addr_of = |i: usize| gateways[i].local_addr().to_string();

    let router = Router::start(
        "127.0.0.1:0",
        &[addr_of(0), addr_of(1)],
        RouterConfig::default(),
        recorder.clone(),
    )
    .expect("router starts");
    let mut conn = RawConn::open(router.local_addr());

    // Phase 1: 50 distinct schedule keys over two shards.
    let first = scan(50, 0);
    let answered = conn.drive(&first);
    assert_eq!(answered.len(), first.len());

    // Grow the ring to three shards. The ack must report the move.
    let grow = format!(
        "{{\"control\":\"reshard\",\"shards\":[\"{}\",\"{}\",\"{}\"]}}",
        addr_of(0),
        addr_of(1),
        addr_of(2)
    );
    let ack: Value = serde_json::from_str(&conn.round_trip(&grow)).expect("ack is JSON");
    assert!(
        matches!(ack.get("ok"), Some(Value::Bool(true))),
        "grow refused: {ack:?}"
    );
    assert_eq!(field_u64(&ack, "shards"), 3);
    assert_eq!(field_u64(&ack, "added"), 1);
    assert_eq!(field_u64(&ack, "retired"), 0);
    assert_eq!(field_u64(&ack, "tracked_keys"), 50);
    let moved_up = field_u64(&ack, "moved_keys");
    assert!(
        (1..50).contains(&moved_up),
        "growing 2 -> 3 shards should move a strict subset of keys, moved {moved_up}"
    );
    assert_eq!(moved_keys_metric(&recorder), moved_up);
    // Every moved key is a schedule job and the new shard is healthy,
    // so every one of them was solved and pushed before the quiesce
    // lifted — on both sides of the control message.
    assert_eq!(field_u64(&ack, "prewarmed_keys"), moved_up);
    assert_eq!(
        counter(&recorder, "drift_router_prewarm_keys_total"),
        moved_up
    );
    assert_eq!(
        counter(&gw_recorder, "drift_gateway_prewarm_entries_total"),
        moved_up
    );

    // The router keeps answering on the SAME client connection.
    let second = conn.drive(&scan(50, 1000));
    assert_eq!(second.len(), 50);
    // The same 50 keys again: retained keys hit their original shard's
    // cache and moved keys hit the prewarmed entries on the new shard,
    // so the fleet solves nothing it has solved before.
    assert_eq!(
        counter(&gw_recorder, "drift_schedule_cache_misses_total"),
        50,
        "a prewarmed reshard must not turn warm keys cold"
    );

    // Shrink back to two shards, retiring the third.
    let shrink = format!(
        "{{\"control\":\"reshard\",\"shards\":[\"{}\",\"{}\"],\"vnodes\":32}}",
        addr_of(0),
        addr_of(1)
    );
    let ack: Value = serde_json::from_str(&conn.round_trip(&shrink)).expect("ack is JSON");
    assert!(
        matches!(ack.get("ok"), Some(Value::Bool(true))),
        "shrink refused: {ack:?}"
    );
    assert_eq!(field_u64(&ack, "shards"), 2);
    assert_eq!(field_u64(&ack, "added"), 0);
    assert_eq!(field_u64(&ack, "retired"), 1);
    let moved_down = field_u64(&ack, "moved_keys");
    assert!(moved_down >= 1, "retiring a shard must move its keys back");
    assert_eq!(moved_keys_metric(&recorder), moved_up + moved_down);
    assert_eq!(field_u64(&ack, "prewarmed_keys"), moved_down);

    let third = conn.drive(&scan(50, 2000));
    assert_eq!(third.len(), 50);
    // Still the same 50 keys: the shrink's prewarm kept them warm too.
    assert_eq!(
        counter(&gw_recorder, "drift_schedule_cache_misses_total"),
        50
    );

    // A malformed reshard is refused without disturbing the router.
    let bad: Value =
        serde_json::from_str(&conn.round_trip("{\"control\":\"reshard\",\"shards\":[]}"))
            .expect("nack is JSON");
    assert!(matches!(bad.get("ok"), Some(Value::Bool(false))));
    let fourth = conn.drive(&scan(10, 3000));
    assert_eq!(fourth.len(), 10);

    let summary = router.shutdown();
    assert_eq!(summary.accepted, 160);
    assert_eq!(summary.reshards, 2);
    assert_eq!(summary.unrouted, 0);
    for gw in gateways {
        gw.shutdown();
    }
}
