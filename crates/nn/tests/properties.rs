//! Property-based tests for the NN substrate.

use drift_core::selector::DriftPolicy;
use drift_nn::datagen::TokenProfile;
use drift_nn::engine::{ForwardMode, Model, TinyTransformer};
use drift_nn::layers::{
    attention_with_mask, conv2d_direct, cross_entropy, im2col, layernorm_rows, matmul,
    softmax_rows, transpose, Conv2dSpec,
};
use drift_nn::lower::{lower, model_low_fraction, model_workloads};
use drift_nn::zoo;
use drift_tensor::Tensor;
use proptest::prelude::*;

fn arb_tensor(rows: usize, cols: usize, seed: u64) -> Tensor {
    Tensor::from_fn(vec![rows, cols], |i| {
        (((i as u64).wrapping_mul(seed.wrapping_add(41)) % 997) as f32 - 498.0) / 300.0
    })
    .expect("valid dims")
}

proptest! {
    /// Softmax rows always sum to one and are invariant to per-row
    /// shifts.
    #[test]
    fn softmax_properties(rows in 1usize..8, cols in 1usize..16, seed in 0u64..500, shift in -50.0f32..50.0) {
        let x = arb_tensor(rows, cols, seed);
        let s = softmax_rows(&x).unwrap();
        for r in 0..rows {
            let sum: f32 = s.as_slice()[r * cols..(r + 1) * cols].iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-5);
        }
        let shifted = x.map(|v| v + shift);
        let s2 = softmax_rows(&shifted).unwrap();
        for (a, b) in s.iter().zip(s2.iter()) {
            prop_assert!((a - b).abs() < 1e-5);
        }
    }

    /// LayerNorm output rows have zero mean and unit variance.
    #[test]
    fn layernorm_properties(rows in 1usize..8, cols in 2usize..32, seed in 0u64..500) {
        let x = arb_tensor(rows, cols, seed);
        let y = layernorm_rows(&x, 1e-6).unwrap();
        for r in 0..rows {
            let row = &y.as_slice()[r * cols..(r + 1) * cols];
            let mean: f32 = row.iter().sum::<f32>() / cols as f32;
            let var: f32 =
                row.iter().map(|&v| (v - mean) * (v - mean)).sum::<f32>() / cols as f32;
            prop_assert!(mean.abs() < 1e-4);
            prop_assert!(var < 1.1 && !(1e-6..=0.9).contains(&var), "var {var}");
        }
    }

    /// matmul distributes over transpose: (A·B)ᵀ = Bᵀ·Aᵀ.
    #[test]
    fn matmul_transpose_identity(
        m in 1usize..6,
        k in 1usize..8,
        n in 1usize..6,
        seed in 0u64..500,
    ) {
        let a = arb_tensor(m, k, seed);
        let b = arb_tensor(k, n, seed + 1);
        let ab_t = transpose(&matmul(&a, &b).unwrap()).unwrap();
        let bt_at = matmul(&transpose(&b).unwrap(), &transpose(&a).unwrap()).unwrap();
        for (x, y) in ab_t.iter().zip(bt_at.iter()) {
            prop_assert!((x - y).abs() < 1e-3, "{x} vs {y}");
        }
    }

    /// The im2col+GEMM path equals direct convolution for random
    /// configurations.
    #[test]
    fn im2col_equals_direct(
        c in 1usize..3,
        hw in 3usize..8,
        out_c in 1usize..4,
        k in 1usize..3,
        pad in 0usize..2,
        seed in 0u64..200,
    ) {
        let spec = Conv2dSpec { in_channels: c, out_channels: out_c, kernel: k, stride: 1, padding: pad };
        prop_assume!(hw + 2 * pad >= k);
        let input = Tensor::from_fn(vec![c, hw, hw], |i| {
            (((i as u64).wrapping_mul(seed + 3) % 19) as f32 - 9.0) * 0.1
        })
        .unwrap();
        let weights = Tensor::from_fn(vec![out_c, k * k * c], |i| {
            (((i as u64).wrapping_mul(seed + 7) % 11) as f32 - 5.0) * 0.1
        })
        .unwrap();
        let direct = conv2d_direct(&input, &weights, &spec).unwrap();
        let cols = im2col(&input, &spec).unwrap();
        let gemm = matmul(&cols, &transpose(&weights).unwrap()).unwrap();
        let (oh, ow) = spec.output_hw(hw, hw).unwrap();
        let gemm_t = transpose(&gemm).unwrap().reshaped(vec![out_c, oh, ow]).unwrap();
        for (a, b) in gemm_t.iter().zip(direct.iter()) {
            prop_assert!((a - b).abs() < 1e-3, "{a} vs {b}");
        }
    }

    /// Causal attention: output row i depends only on rows <= i
    /// (perturbing a later token leaves earlier outputs unchanged).
    #[test]
    fn causal_mask_blocks_future(seq in 2usize..8, d in 2usize..8, seed in 0u64..200) {
        let x = arb_tensor(seq, d, seed);
        let wq = arb_tensor(d, d, seed + 1);
        let wk = arb_tensor(d, d, seed + 2);
        let wv = arb_tensor(d, d, seed + 3);
        let base = attention_with_mask(&x, &wq, &wk, &wv, true).unwrap();
        let mut perturbed = x.clone();
        // Change the LAST token only.
        for c in 0..d {
            let v = perturbed.get(&[seq - 1, c]).unwrap();
            perturbed.set(&[seq - 1, c], v + 1.0).unwrap();
        }
        let out = attention_with_mask(&perturbed, &wq, &wk, &wv, true).unwrap();
        for i in 0..seq - 1 {
            for c in 0..d {
                let a = base.get(&[i, c]).unwrap();
                let b = out.get(&[i, c]).unwrap();
                prop_assert!((a - b).abs() < 1e-5, "row {i} leaked future info");
            }
        }
    }

    /// Cross-entropy is minimised by the argmax label on every row.
    #[test]
    fn cross_entropy_argmax_minimal(rows in 1usize..5, classes in 2usize..8, seed in 0u64..200) {
        let logits = arb_tensor(rows, classes, seed);
        let best: Vec<usize> = drift_nn::layers::argmax_rows(&logits).unwrap();
        let ce_best = cross_entropy(&logits, &best).unwrap();
        for other in 0..classes {
            let labels = vec![other; rows];
            let ce = cross_entropy(&logits, &labels).unwrap();
            prop_assert!(ce_best <= ce + 1e-9);
        }
    }

    /// Lowered GEMM shapes are positive and stable, and low fractions
    /// sit in [0, 1] for any δ.
    #[test]
    fn lowering_invariants(delta in 0.001f64..10.0) {
        for desc in [zoo::bert_base(), zoo::deit_s()] {
            let ops = lower(&desc).unwrap();
            prop_assert!(!ops.is_empty());
            for op in &ops {
                prop_assert!(op.shape.macs() > 0);
            }
            let policy = DriftPolicy::new(delta).unwrap();
            let w = model_workloads(&desc, &policy, 3).unwrap();
            let f = model_low_fraction(&w);
            prop_assert!((0.0..=1.0).contains(&f));
        }
    }
}

/// FP32 forwards are pure functions of the input (no hidden state).
#[test]
fn forward_is_pure() {
    let model = TinyTransformer::bert_like(5).unwrap();
    let input = TokenProfile::bert().generate(8, model.hidden(), 3).unwrap();
    let a = model.forward(&input, &ForwardMode::Fp32).unwrap();
    let b = model.forward(&input, &ForwardMode::Fp32).unwrap();
    assert_eq!(a.logits, b.logits);
}
