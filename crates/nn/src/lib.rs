//! DNN substrate for the Drift reproduction: layers, a model zoo,
//! GEMM lowering, synthetic data generation, a quantized inference
//! engine, and accuracy/perplexity evaluation.
//!
//! The paper evaluates on pretrained ResNet/ViT/DeiT/BERT checkpoints
//! and GPT2-XL/BLOOM-7B1/OPT-6.7B with ImageNet/GLUE/WikiText/C4 data —
//! none of which are available offline. The substitution (documented in
//! `DESIGN.md`) rests on one fact: every quantization decision in Drift
//! and its baselines depends only on *sub-tensor statistics*, so
//! reproducing the statistics reproduces the behaviour:
//!
//! * [`zoo`] — full-scale layer-shape tables for all eight models
//!   (driving the hardware evaluation) plus scaled-down executable
//!   variants (driving the accuracy evaluation).
//! * [`datagen`] — synthetic inputs whose sub-tensor statistics match
//!   the paper's Figure-1 observations: zero-mean Laplace sub-tensors
//!   with per-family scale dispersion (homogeneous for CNN feature
//!   maps, orders-of-magnitude token spread with outliers for
//!   transformers and LLMs).
//! * [`layers`] — GEMM, conv (im2col), attention, activations, pooling.
//! * [`engine`] — forward passes with a pluggable
//!   [`drift_quant::policy::PrecisionPolicy`] applied to every GEMM's
//!   activations.
//! * [`eval`] — fidelity accuracy (top-1 agreement against the model's
//!   own FP32 reference, anchored to the paper's FP32 numbers) and the
//!   perplexity proxy for Table 1.
//! * [`lower`] — lowering every layer to `(M, K, N)` GEMMs with
//!   precision maps, producing the [`drift_accel::GemmWorkload`]s the
//!   accelerator comparison consumes.
//!
//! # Example
//!
//! ```rust
//! use drift_core::selector::DriftPolicy;
//! use drift_nn::engine::{ForwardMode, Model, TinyTransformer};
//! use drift_nn::datagen::TokenProfile;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let model = TinyTransformer::bert_like(7)?;
//! let input = TokenProfile::bert().generate(32, model.hidden(), 11)?;
//! let fp32 = model.forward(&input, &ForwardMode::Fp32)?;
//! let policy = DriftPolicy::new(1.0)?;
//! let quant = model.forward(&input, &ForwardMode::quantized(&policy))?;
//! assert_eq!(fp32.logits.shape(), quant.logits.shape());
//! assert!(quant.low_fraction() > 0.0);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod datagen;
pub mod engine;
pub mod eval;
pub mod layers;
pub mod lower;
pub mod zoo;

use std::error::Error;
use std::fmt;

/// Error type for all fallible operations in this crate.
#[derive(Debug)]
#[non_exhaustive]
pub enum NnError {
    /// A tensor operation failed.
    Tensor(drift_tensor::TensorError),
    /// A quantization operation failed.
    Quant(drift_quant::QuantError),
    /// An accelerator-side operation failed.
    Accel(drift_accel::AccelError),
    /// A model or layer configuration was invalid.
    InvalidModel {
        /// Description of the violation.
        detail: String,
    },
}

impl fmt::Display for NnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NnError::Tensor(e) => write!(f, "tensor error: {e}"),
            NnError::Quant(e) => write!(f, "quantization error: {e}"),
            NnError::Accel(e) => write!(f, "accelerator error: {e}"),
            NnError::InvalidModel { detail } => write!(f, "invalid model: {detail}"),
        }
    }
}

impl Error for NnError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            NnError::Tensor(e) => Some(e),
            NnError::Quant(e) => Some(e),
            NnError::Accel(e) => Some(e),
            NnError::InvalidModel { .. } => None,
        }
    }
}

impl From<drift_tensor::TensorError> for NnError {
    fn from(e: drift_tensor::TensorError) -> Self {
        NnError::Tensor(e)
    }
}

impl From<drift_quant::QuantError> for NnError {
    fn from(e: drift_quant::QuantError) -> Self {
        NnError::Quant(e)
    }
}

impl From<drift_accel::AccelError> for NnError {
    fn from(e: drift_accel::AccelError) -> Self {
        NnError::Accel(e)
    }
}

/// Convenience result alias used across the crate.
pub type Result<T, E = NnError> = std::result::Result<T, E>;
