//! Lowering model descriptions to GEMM workloads with precision maps.
//!
//! Every accelerator in the comparison executes GEMMs, so a model's
//! hardware cost is the cost of its lowered GEMM list. This module
//! also builds the *precision-annotated* workloads: it samples per-row
//! activation statistics from the model family's [`TokenProfile`],
//! runs a [`PrecisionPolicy`] on each row (exactly what the Drift
//! precision selector does online), and profiles per-column weight
//! precisions statically — producing the [`GemmWorkload`]s that
//! Figs. 7–8 execute.

use crate::datagen::{cnn_row_stats, weight_column_stats, TokenProfile};
use crate::zoo::{LayerDesc, ModelDesc};
use crate::{NnError, Result};
use drift_accel::gemm::{GemmShape, GemmWorkload};
use drift_quant::linear::QuantParams;
use drift_quant::policy::{PrecisionPolicy, TensorContext};
use drift_quant::precision::Precision;
use drift_tensor::rng::derive_seed;
use drift_tensor::stats::SummaryStats;
use serde::{Deserialize, Serialize};

/// One lowered GEMM with an instance multiplier.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GemmOp {
    /// Layer name this GEMM implements.
    pub name: String,
    /// GEMM dimensions.
    pub shape: GemmShape,
    /// Identical instances in the model (heads × layers); simulate once
    /// and scale.
    pub repeat: u64,
}

/// Lowers a model description to its GEMM list.
///
/// Convolutions become im2col GEMMs: `M = out_h·out_w`,
/// `K = k²·in_c`, `N = out_c`.
///
/// # Errors
///
/// Returns [`NnError::InvalidModel`] for layers whose kernel does not
/// fit the input.
pub fn lower(desc: &ModelDesc) -> Result<Vec<GemmOp>> {
    desc.layers
        .iter()
        .map(|layer| match layer {
            LayerDesc::Conv {
                name,
                in_c,
                out_c,
                k,
                stride,
                pad,
                in_hw,
                repeat,
            } => {
                let eff = in_hw + 2 * pad;
                if *k == 0 || *stride == 0 || eff < *k {
                    return Err(NnError::InvalidModel {
                        detail: format!("conv {name} does not fit input {in_hw}"),
                    });
                }
                let out_hw = (eff - k) / stride + 1;
                let shape = GemmShape::new(out_hw * out_hw, k * k * in_c, *out_c)?;
                Ok(GemmOp {
                    name: name.clone(),
                    shape,
                    repeat: *repeat,
                })
            }
            LayerDesc::Linear {
                name,
                tokens,
                in_dim,
                out_dim,
                repeat,
            } => {
                let shape = GemmShape::new(*tokens, *in_dim, *out_dim)?;
                Ok(GemmOp {
                    name: name.clone(),
                    shape,
                    repeat: *repeat,
                })
            }
        })
        .collect()
}

/// Builds the precision-annotated workload for one GEMM:
///
/// * per-row activation statistics are sampled from `profile` and the
///   `policy` decides each row (the online selector); CNN layers use
///   spatially clustered rows ([`cnn_row_stats`]), transformer layers
///   independent token scales;
/// * per-column weight precisions come from a static profile of the
///   weight sub-tensor statistics with the *same* policy (the paper's
///   independent activation/weight selection, Section 4.3).
///
/// # Errors
///
/// Propagates workload construction errors.
pub fn annotate(
    op: &GemmOp,
    family: crate::zoo::ModelFamily,
    profile: &TokenProfile,
    policy: &dyn PrecisionPolicy,
    seed: u64,
) -> Result<GemmWorkload> {
    let shape = op.shape;
    let rows = if family == crate::zoo::ModelFamily::Cnn && shape.m > 4 {
        cnn_row_stats(shape.m, shape.k, derive_seed(seed, &op.name))
    } else {
        profile.row_stats(shape.m, shape.k, derive_seed(seed, &op.name))
    };

    // The tensor-global context the policy sees: merge the row stats.
    let mut global = SummaryStats::new();
    for r in &rows {
        global.merge(r);
    }
    let ctx = TensorContext {
        global,
        params: QuantParams::from_abs_max(global.abs_max(), Precision::INT8),
    };
    let act_high: Vec<bool> = rows
        .iter()
        .map(|r| !policy.decide(&ctx, r).is_low())
        .collect();

    // Static per-column weight profile: weights are well-behaved
    // (moderate dispersion, no outliers), so most columns go low.
    let wcols = weight_column_stats(
        shape.n,
        shape.k,
        0.3,
        derive_seed(seed, &format!("{}-w", op.name)),
    );
    let mut wglobal = SummaryStats::new();
    for c in &wcols {
        wglobal.merge(c);
    }
    let wctx = TensorContext {
        global: wglobal,
        params: QuantParams::from_abs_max(wglobal.abs_max(), Precision::INT8),
    };
    let weight_high: Vec<bool> = wcols
        .iter()
        .map(|c| !policy.decide(&wctx, c).is_low())
        .collect();

    Ok(GemmWorkload::new(
        op.name.clone(),
        shape,
        act_high,
        weight_high,
    )?)
}

/// Lowers a whole model and annotates every GEMM with `policy`.
///
/// # Errors
///
/// Propagates lowering and annotation errors.
pub fn model_workloads(
    desc: &ModelDesc,
    policy: &dyn PrecisionPolicy,
    seed: u64,
) -> Result<Vec<(GemmOp, GemmWorkload)>> {
    let profile = TokenProfile::for_family(desc.family);
    lower(desc)?
        .into_iter()
        .map(|op| {
            let w = annotate(&op, desc.family, &profile, policy, seed)?;
            Ok((op, w))
        })
        .collect()
}

/// The MAC-weighted fraction of activation rows computing at low
/// precision across a model's workloads — the "percentage of 4-bit
/// computation" of Fig. 6 / Table 1.
pub fn model_low_fraction(workloads: &[(GemmOp, GemmWorkload)]) -> f64 {
    let mut low = 0.0f64;
    let mut total = 0.0f64;
    for (op, w) in workloads {
        let macs = (op.shape.macs() * op.repeat) as f64;
        low += macs * w.low_compute_fraction();
        total += macs;
    }
    if total == 0.0 {
        0.0
    } else {
        low / total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::zoo;
    use drift_core::selector::DriftPolicy;
    use drift_quant::policy::StaticHighPolicy;

    #[test]
    fn conv_lowering_dimensions() {
        let desc = ModelDesc {
            name: "t".to_string(),
            family: zoo::ModelFamily::Cnn,
            layers: vec![LayerDesc::Conv {
                name: "c".to_string(),
                in_c: 3,
                out_c: 64,
                k: 7,
                stride: 2,
                pad: 3,
                in_hw: 224,
                repeat: 1,
            }],
            seq: 1,
        };
        let ops = lower(&desc).unwrap();
        assert_eq!(ops[0].shape.m, 112 * 112);
        assert_eq!(ops[0].shape.k, 147);
        assert_eq!(ops[0].shape.n, 64);
    }

    #[test]
    fn invalid_conv_is_rejected() {
        let desc = ModelDesc {
            name: "t".to_string(),
            family: zoo::ModelFamily::Cnn,
            layers: vec![LayerDesc::Conv {
                name: "bad".to_string(),
                in_c: 3,
                out_c: 8,
                k: 9,
                stride: 1,
                pad: 0,
                in_hw: 4,
                repeat: 1,
            }],
            seq: 1,
        };
        assert!(lower(&desc).is_err());
    }

    #[test]
    fn annotation_matches_shape() {
        let desc = zoo::bert_base();
        let policy = DriftPolicy::new(1.0).unwrap();
        let workloads = model_workloads(&desc, &policy, 42).unwrap();
        for (op, w) in &workloads {
            assert_eq!(w.shape(), op.shape);
            assert_eq!(w.act_high().len(), op.shape.m);
            assert_eq!(w.weight_high().len(), op.shape.n);
        }
    }

    #[test]
    fn drift_policy_yields_mostly_low_on_bert() {
        let desc = zoo::bert_base();
        let policy = DriftPolicy::new(0.05).unwrap();
        let workloads = model_workloads(&desc, &policy, 42).unwrap();
        let low = model_low_fraction(&workloads);
        assert!(low > 0.5, "expected a majority-low mix, got {low}");
    }

    #[test]
    fn static_high_policy_yields_zero_low() {
        let desc = zoo::resnet18();
        let workloads = model_workloads(&desc, &StaticHighPolicy, 1).unwrap();
        assert_eq!(model_low_fraction(&workloads), 0.0);
    }

    #[test]
    fn annotation_is_deterministic() {
        let desc = zoo::deit_s();
        let policy = DriftPolicy::new(0.5).unwrap();
        let a = model_workloads(&desc, &policy, 7).unwrap();
        let b = model_workloads(&desc, &policy, 7).unwrap();
        for ((_, wa), (_, wb)) in a.iter().zip(&b) {
            assert_eq!(wa.act_high(), wb.act_high());
            assert_eq!(wa.weight_high(), wb.weight_high());
        }
    }
}
