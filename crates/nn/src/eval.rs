//! Accuracy and perplexity evaluation (Fig. 6 and Table 1).
//!
//! Without the original checkpoints and datasets, absolute task
//! accuracy is not measurable; what *is* measurable — and what the
//! paper's claims are actually about — is the accuracy **loss** a
//! quantization method induces relative to FP32. We therefore measure
//! *fidelity*: the top-1 agreement between the quantized model and its
//! own FP32 reference over a synthetic input set, and report it
//! anchored to the paper's FP32 accuracy:
//!
//! ```text
//! reported = anchor − (1 − agreement) · 100        (percentage points)
//! ```
//!
//! For LLMs, the perplexity proxy follows the same logic: quantization
//! perturbs logits, increasing cross-entropy against the FP32
//! reference labels by `ΔCE`, and perplexity scales as
//! `ppl = anchor · exp(ΔCE)`.

use crate::engine::{ForwardMode, Model};
use crate::layers::{argmax_rows, cross_entropy};
use crate::Result;
use drift_quant::policy::PrecisionPolicy;
use drift_tensor::Tensor;
use serde::{Deserialize, Serialize};

/// Fidelity-accuracy report for one (model, policy) pair.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FidelityReport {
    /// Top-1 agreement with the FP32 reference, in [0, 1].
    pub agreement: f64,
    /// Agreement anchored to the paper's FP32 accuracy (percentage
    /// points, clamped at 0).
    pub anchored_accuracy: f64,
    /// Mean low-precision element fraction across quantized GEMMs.
    pub low_fraction: f64,
    /// Inputs evaluated.
    pub samples: usize,
}

impl FidelityReport {
    /// The 95% Wilson score interval for the agreement — how much of a
    /// reported accuracy difference is sampling noise at this input
    /// count.
    pub fn agreement_ci95(&self) -> (f64, f64) {
        wilson_interval(self.agreement, self.samples, 1.96)
    }
}

/// The Wilson score interval for a binomial proportion `p` over `n`
/// trials at normal quantile `z`. Returns `(0, 1)` for `n = 0`.
pub fn wilson_interval(p: f64, n: usize, z: f64) -> (f64, f64) {
    if n == 0 {
        return (0.0, 1.0);
    }
    let n = n as f64;
    let z2 = z * z;
    let denom = 1.0 + z2 / n;
    let center = (p + z2 / (2.0 * n)) / denom;
    let half = z * (p * (1.0 - p) / n + z2 / (4.0 * n * n)).sqrt() / denom;
    ((center - half).max(0.0), (center + half).min(1.0))
}

/// Runs the classification fidelity protocol: FP32 forward fixes the
/// reference label per input; the quantized forward must reproduce it.
///
/// # Errors
///
/// Propagates forward-pass errors; errors on an empty input set.
pub fn classification_fidelity(
    model: &dyn Model,
    inputs: &[Tensor],
    policy: &dyn PrecisionPolicy,
    fp32_anchor: f64,
) -> Result<FidelityReport> {
    if inputs.is_empty() {
        return Err(crate::NnError::InvalidModel {
            detail: "fidelity evaluation needs at least one input".to_string(),
        });
    }
    let mode = ForwardMode::quantized(policy);
    let mut agree = 0usize;
    let mut frac_acc = 0.0f64;
    for input in inputs {
        let reference = model.forward(input, &ForwardMode::Fp32)?;
        let quantized = model.forward(input, &mode)?;
        let ref_label = argmax_rows(&reference.logits)?[0];
        let q_label = argmax_rows(&quantized.logits)?[0];
        if ref_label == q_label {
            agree += 1;
        }
        frac_acc += quantized.low_fraction();
    }
    let agreement = agree as f64 / inputs.len() as f64;
    Ok(FidelityReport {
        agreement,
        anchored_accuracy: (fp32_anchor - (1.0 - agreement) * 100.0).max(0.0),
        low_fraction: frac_acc / inputs.len() as f64,
        samples: inputs.len(),
    })
}

/// Perplexity-proxy report for one (model, policy) pair.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PerplexityReport {
    /// The proxy perplexity `anchor · exp(ΔCE)`.
    pub perplexity: f64,
    /// The quantization-induced cross-entropy increase, in nats.
    pub delta_ce: f64,
    /// Mean low-precision element fraction across quantized GEMMs.
    pub low_fraction: f64,
    /// Inputs evaluated.
    pub samples: usize,
}

/// Runs the perplexity-proxy protocol on a language model: per input,
/// the FP32 forward's per-token argmax fixes the reference labels; the
/// quantized model's cross-entropy against those labels minus the FP32
/// model's own is `ΔCE`.
///
/// Pass `policy = None` for the FP32 row (ΔCE = 0 by construction).
///
/// # Errors
///
/// Propagates forward-pass errors; errors on an empty input set.
pub fn perplexity_proxy(
    model: &dyn Model,
    inputs: &[Tensor],
    policy: Option<&dyn PrecisionPolicy>,
    anchor_ppl: f64,
) -> Result<PerplexityReport> {
    if inputs.is_empty() {
        return Err(crate::NnError::InvalidModel {
            detail: "perplexity evaluation needs at least one input".to_string(),
        });
    }
    let mut delta_acc = 0.0f64;
    let mut frac_acc = 0.0f64;
    for input in inputs {
        let reference = model.forward(input, &ForwardMode::Fp32)?;
        let labels = argmax_rows(&reference.logits)?;
        let ce_ref = cross_entropy(&reference.logits, &labels)?;
        match policy {
            None => {}
            Some(p) => {
                let quantized = model.forward(input, &ForwardMode::quantized(p))?;
                let ce_q = cross_entropy(&quantized.logits, &labels)?;
                delta_acc += (ce_q - ce_ref).max(0.0);
                frac_acc += quantized.low_fraction();
            }
        }
    }
    let delta_ce = delta_acc / inputs.len() as f64;
    Ok(PerplexityReport {
        perplexity: anchor_ppl * delta_ce.exp(),
        delta_ce,
        low_fraction: frac_acc / inputs.len() as f64,
        samples: inputs.len(),
    })
}

/// Selects the density threshold δ like the paper's calibration:
/// "quickly identify the minimum threshold with negligible impact on
/// model accuracy". The Hessian proxy
/// ([`drift_core::calibrate::HessianCalibrator`]) narrows the grid
/// cheaply; this confirms each candidate on held-out calibration
/// inputs and returns the smallest δ whose agreement stays within
/// `tolerance` of INT8's. Falls back to the grid's largest (most
/// conservative) candidate when none qualifies.
///
/// # Errors
///
/// Returns an error for an empty grid or calibration set, or when a
/// forward pass fails.
pub fn calibrate_delta_by_fidelity(
    model: &dyn Model,
    calibration_inputs: &[Tensor],
    grid: &[f64],
    tolerance: f64,
) -> Result<f64> {
    if grid.is_empty() {
        return Err(crate::NnError::InvalidModel {
            detail: "empty δ grid".to_string(),
        });
    }
    let int8 = classification_fidelity(
        model,
        calibration_inputs,
        &drift_quant::policy::StaticHighPolicy,
        100.0,
    )?;
    let mut sorted = grid.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite grid"));
    for &delta in &sorted {
        let policy = drift_core::selector::DriftPolicy::new(delta).map_err(|e| {
            crate::NnError::InvalidModel {
                detail: e.to_string(),
            }
        })?;
        let r = classification_fidelity(model, calibration_inputs, &policy, 100.0)?;
        if int8.agreement - r.agreement <= tolerance {
            return Ok(delta);
        }
    }
    Ok(*sorted.last().expect("grid is non-empty"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datagen::{ImageProfile, TokenProfile};
    use crate::engine::{TinyCnn, TinyTransformer};
    use drift_core::selector::DriftPolicy;
    use drift_quant::drq::DrqPolicy;
    use drift_quant::policy::StaticHighPolicy;

    fn bert_inputs(n: usize, hidden: usize) -> Vec<Tensor> {
        (0..n)
            .map(|i| {
                TokenProfile::bert()
                    .generate_classified(16, hidden, i % 10, 2.5, 100 + i as u64)
                    .unwrap()
            })
            .collect()
    }

    #[test]
    fn int8_fidelity_is_high() {
        let model = TinyTransformer::bert_like(1).unwrap();
        let inputs = bert_inputs(24, model.hidden());
        let r = classification_fidelity(&model, &inputs, &StaticHighPolicy, 80.0).unwrap();
        assert!(r.agreement > 0.9, "INT8 agreement {}", r.agreement);
        assert_eq!(r.samples, 24);
        assert!(r.anchored_accuracy <= 80.0);
    }

    #[test]
    fn drift_fidelity_close_to_int8_with_high_low_fraction() {
        let model = TinyTransformer::bert_like(1).unwrap();
        let inputs = bert_inputs(24, model.hidden());
        let int8 = classification_fidelity(&model, &inputs, &StaticHighPolicy, 80.0).unwrap();
        let drift =
            classification_fidelity(&model, &inputs, &DriftPolicy::new(0.05).unwrap(), 80.0)
                .unwrap();
        assert!(
            drift.low_fraction > 0.4,
            "low fraction {}",
            drift.low_fraction
        );
        assert!(
            int8.agreement - drift.agreement < 0.15,
            "drift lost too much: {} vs {}",
            drift.agreement,
            int8.agreement
        );
    }

    #[test]
    fn drq_struggles_on_token_data() {
        // The Section 5.2 result: DRQ's region criterion misfires on
        // token-dispersed data relative to Drift at a similar low-bit
        // share.
        let model = TinyTransformer::bert_like(1).unwrap();
        let inputs = bert_inputs(32, model.hidden());
        let drq =
            classification_fidelity(&model, &inputs, &DrqPolicy::new(1.0).unwrap(), 80.0).unwrap();
        let drift =
            classification_fidelity(&model, &inputs, &DriftPolicy::new(0.05).unwrap(), 80.0)
                .unwrap();
        assert!(
            drift.agreement >= drq.agreement,
            "drift {} should be at least drq {}",
            drift.agreement,
            drq.agreement
        );
    }

    #[test]
    fn cnn_fidelity_works_for_both_policies() {
        let model = TinyCnn::resnet_like(3).unwrap();
        let inputs: Vec<Tensor> = (0..16)
            .map(|i| {
                ImageProfile::natural()
                    .generate(3, 16, 16, 200 + i as u64)
                    .unwrap()
            })
            .collect();
        let drq =
            classification_fidelity(&model, &inputs, &DrqPolicy::new(1.0).unwrap(), 70.0).unwrap();
        let drift =
            classification_fidelity(&model, &inputs, &DriftPolicy::new(0.05).unwrap(), 70.0)
                .unwrap();
        // On CNN data both dynamic methods hold up (paper Fig. 6).
        assert!(drq.agreement > 0.7, "drq on cnn {}", drq.agreement);
        assert!(drift.agreement > 0.7, "drift on cnn {}", drift.agreement);
    }

    #[test]
    fn perplexity_fp32_row_is_the_anchor() {
        let model = TinyTransformer::llm_like(5, 32).unwrap();
        let inputs: Vec<Tensor> = (0..4)
            .map(|i| {
                TokenProfile::llm()
                    .generate(12, 64, 300 + i as u64)
                    .unwrap()
            })
            .collect();
        let r = perplexity_proxy(&model, &inputs, None, 17.48).unwrap();
        assert_eq!(r.perplexity, 17.48);
        assert_eq!(r.delta_ce, 0.0);
    }

    #[test]
    fn perplexity_increases_under_quantization() {
        let model = TinyTransformer::llm_like(5, 32).unwrap();
        let inputs: Vec<Tensor> = (0..6)
            .map(|i| {
                TokenProfile::llm()
                    .generate(12, 64, 400 + i as u64)
                    .unwrap()
            })
            .collect();
        let int8 = perplexity_proxy(&model, &inputs, Some(&StaticHighPolicy), 17.48).unwrap();
        let drift = perplexity_proxy(
            &model,
            &inputs,
            Some(&DriftPolicy::new(0.05).unwrap()),
            17.48,
        )
        .unwrap();
        assert!(int8.perplexity >= 17.48);
        assert!(drift.perplexity >= 17.48);
        assert!(
            drift.low_fraction > 0.4,
            "llm low fraction {}",
            drift.low_fraction
        );
        // Drift stays within a modest factor of INT8 (Table 1's shape).
        assert!(
            drift.perplexity < int8.perplexity * 1.5 + 5.0,
            "drift ppl {} vs int8 {}",
            drift.perplexity,
            int8.perplexity
        );
    }

    #[test]
    fn wilson_interval_properties() {
        // Contains the point estimate, shrinks with n, and clamps.
        let (lo, hi) = wilson_interval(0.9, 100, 1.96);
        assert!(lo < 0.9 && 0.9 < hi);
        let (lo2, hi2) = wilson_interval(0.9, 1000, 1.96);
        assert!(hi2 - lo2 < hi - lo);
        assert_eq!(wilson_interval(0.5, 0, 1.96), (0.0, 1.0));
        let (lo3, hi3) = wilson_interval(1.0, 10, 1.96);
        assert!(lo3 > 0.6 && hi3 <= 1.0);
        let r = FidelityReport {
            agreement: 0.95,
            anchored_accuracy: 80.0,
            low_fraction: 0.9,
            samples: 128,
        };
        let (a, b) = r.agreement_ci95();
        assert!(a < 0.95 && 0.95 < b);
    }

    #[test]
    fn fidelity_calibration_picks_within_grid() {
        let model = TinyTransformer::bert_like(1).unwrap();
        let inputs = bert_inputs(24, model.hidden());
        let grid = [0.01, 0.3, 3.0];
        let delta = calibrate_delta_by_fidelity(&model, &inputs, &grid, 0.05).unwrap();
        assert!(grid.contains(&delta));
        // A zero tolerance can only pick an equal-or-larger δ.
        let strict = calibrate_delta_by_fidelity(&model, &inputs, &grid, 0.0).unwrap();
        assert!(strict >= delta);
        assert!(calibrate_delta_by_fidelity(&model, &inputs, &[], 0.05).is_err());
    }

    #[test]
    fn empty_inputs_are_rejected() {
        let model = TinyTransformer::bert_like(1).unwrap();
        assert!(classification_fidelity(&model, &[], &StaticHighPolicy, 80.0).is_err());
        assert!(perplexity_proxy(&model, &[], None, 10.0).is_err());
    }
}
