//! Neural-network layer primitives on [`drift_tensor::Tensor`].
//!
//! Plain f32 reference implementations: GEMM, conv2d via im2col,
//! attention, activations, pooling, softmax, and layer normalisation.
//! The quantized engine ([`crate::engine`]) wraps the GEMM entry points
//! with precision policies; everything here stays exact so it can serve
//! as the FP32 reference.

use crate::{NnError, Result};
use drift_tensor::{Shape, Tensor};

/// `C = A · B` for row-major `A: [m, k]` and `B: [k, n]`.
///
/// # Errors
///
/// Returns [`NnError::InvalidModel`] when the inner dimensions disagree
/// or an operand is not rank-2.
pub fn matmul(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    let (ad, bd) = (a.shape().dims(), b.shape().dims());
    if ad.len() != 2 || bd.len() != 2 || ad[1] != bd[0] {
        return Err(NnError::InvalidModel {
            detail: format!("matmul shape mismatch: {:?} x {:?}", ad, bd),
        });
    }
    let (m, k, n) = (ad[0], ad[1], bd[1]);
    let (av, bv) = (a.as_slice(), b.as_slice());
    let mut out = vec![0.0f32; m * n];
    for i in 0..m {
        for p in 0..k {
            let aip = av[i * k + p];
            if aip == 0.0 {
                continue;
            }
            let brow = &bv[p * n..(p + 1) * n];
            let orow = &mut out[i * n..(i + 1) * n];
            for (o, &bpj) in orow.iter_mut().zip(brow) {
                *o += aip * bpj;
            }
        }
    }
    Ok(Tensor::from_vec(vec![m, n], out)?)
}

/// Adds a bias row vector `[n]` to every row of `x: [m, n]`.
///
/// # Errors
///
/// Returns [`NnError::InvalidModel`] on shape mismatch.
pub fn add_bias(x: &Tensor, bias: &Tensor) -> Result<Tensor> {
    let xd = x.shape().dims();
    if xd.len() != 2 || bias.shape().dims() != [xd[1]] {
        return Err(NnError::InvalidModel {
            detail: format!(
                "bias shape {:?} does not match {:?}",
                bias.shape().dims(),
                xd
            ),
        });
    }
    let n = xd[1];
    let bv = bias.as_slice();
    let data = x
        .as_slice()
        .iter()
        .enumerate()
        .map(|(i, &v)| v + bv[i % n])
        .collect();
    Ok(Tensor::from_vec(xd.to_vec(), data)?)
}

/// ReLU.
pub fn relu(x: &Tensor) -> Tensor {
    x.map(|v| v.max(0.0))
}

/// GELU (tanh approximation).
pub fn gelu(x: &Tensor) -> Tensor {
    x.map(|v| {
        let v3 = v * v * v;
        0.5 * v * (1.0 + ((0.797_884_6) * (v + 0.044_715 * v3)).tanh())
    })
}

/// Row-wise softmax over the last axis of a rank-2 tensor.
///
/// # Errors
///
/// Returns [`NnError::InvalidModel`] for non-rank-2 input.
pub fn softmax_rows(x: &Tensor) -> Result<Tensor> {
    let xd = x.shape().dims();
    if xd.len() != 2 {
        return Err(NnError::InvalidModel {
            detail: format!("softmax expects rank-2, got {:?}", xd),
        });
    }
    let (m, n) = (xd[0], xd[1]);
    let xv = x.as_slice();
    let mut out = vec![0.0f32; m * n];
    for i in 0..m {
        let row = &xv[i * n..(i + 1) * n];
        let max = row.iter().fold(f32::NEG_INFINITY, |a, &b| a.max(b));
        let mut sum = 0.0f32;
        for (j, &v) in row.iter().enumerate() {
            let e = (v - max).exp();
            out[i * n + j] = e;
            sum += e;
        }
        for o in &mut out[i * n..(i + 1) * n] {
            *o /= sum;
        }
    }
    Ok(Tensor::from_vec(vec![m, n], out)?)
}

/// Row-wise layer normalisation (zero mean, unit variance per row) with
/// a learnable-free identity affine.
///
/// # Errors
///
/// Returns [`NnError::InvalidModel`] for non-rank-2 input.
pub fn layernorm_rows(x: &Tensor, eps: f32) -> Result<Tensor> {
    let xd = x.shape().dims();
    if xd.len() != 2 {
        return Err(NnError::InvalidModel {
            detail: format!("layernorm expects rank-2, got {:?}", xd),
        });
    }
    let (m, n) = (xd[0], xd[1]);
    let xv = x.as_slice();
    let mut out = vec![0.0f32; m * n];
    for i in 0..m {
        let row = &xv[i * n..(i + 1) * n];
        let mean = row.iter().sum::<f32>() / n as f32;
        let var = row.iter().map(|&v| (v - mean) * (v - mean)).sum::<f32>() / n as f32;
        let inv = 1.0 / (var + eps).sqrt();
        for (j, &v) in row.iter().enumerate() {
            out[i * n + j] = (v - mean) * inv;
        }
    }
    Ok(Tensor::from_vec(vec![m, n], out)?)
}

/// Mean over the rows of a rank-2 tensor, producing `[1, n]`.
///
/// # Errors
///
/// Returns [`NnError::InvalidModel`] for non-rank-2 input.
pub fn mean_pool_rows(x: &Tensor) -> Result<Tensor> {
    let xd = x.shape().dims();
    if xd.len() != 2 {
        return Err(NnError::InvalidModel {
            detail: format!("mean_pool expects rank-2, got {:?}", xd),
        });
    }
    let (m, n) = (xd[0], xd[1]);
    let xv = x.as_slice();
    let mut out = vec![0.0f32; n];
    for i in 0..m {
        for j in 0..n {
            out[j] += xv[i * n + j];
        }
    }
    for o in &mut out {
        *o /= m as f32;
    }
    Ok(Tensor::from_vec(vec![1, n], out)?)
}

/// Parameters of a 2-D convolution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Conv2dSpec {
    /// Input channels.
    pub in_channels: usize,
    /// Output channels.
    pub out_channels: usize,
    /// Square kernel size.
    pub kernel: usize,
    /// Stride.
    pub stride: usize,
    /// Symmetric zero padding.
    pub padding: usize,
}

impl Conv2dSpec {
    /// Output spatial size for an `h × w` input.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidModel`] when the kernel does not fit.
    pub fn output_hw(&self, h: usize, w: usize) -> Result<(usize, usize)> {
        let eff_h = h + 2 * self.padding;
        let eff_w = w + 2 * self.padding;
        if self.kernel == 0 || self.stride == 0 || eff_h < self.kernel || eff_w < self.kernel {
            return Err(NnError::InvalidModel {
                detail: format!("conv {self:?} does not fit input {h}x{w}"),
            });
        }
        Ok((
            (eff_h - self.kernel) / self.stride + 1,
            (eff_w - self.kernel) / self.stride + 1,
        ))
    }
}

/// Lowers a `[c, h, w]` input to the im2col matrix `[out_h·out_w,
/// k·k·c]`, so convolution becomes a GEMM against `[k·k·c, out_c]`
/// weights — exactly how the accelerators execute it.
///
/// # Errors
///
/// Returns [`NnError::InvalidModel`] on shape mismatch.
pub fn im2col(input: &Tensor, spec: &Conv2dSpec) -> Result<Tensor> {
    let d = input.shape().dims();
    if d.len() != 3 || d[0] != spec.in_channels {
        return Err(NnError::InvalidModel {
            detail: format!("im2col expects [c={}, h, w], got {:?}", spec.in_channels, d),
        });
    }
    let (c, h, w) = (d[0], d[1], d[2]);
    let (oh, ow) = spec.output_hw(h, w)?;
    let k = spec.kernel;
    let iv = input.as_slice();
    let mut out = vec![0.0f32; oh * ow * k * k * c];
    let cols = k * k * c;
    for oy in 0..oh {
        for ox in 0..ow {
            let row = oy * ow + ox;
            for ch in 0..c {
                for ky in 0..k {
                    for kx in 0..k {
                        let iy = (oy * spec.stride + ky) as isize - spec.padding as isize;
                        let ix = (ox * spec.stride + kx) as isize - spec.padding as isize;
                        let val = if iy < 0 || ix < 0 || iy >= h as isize || ix >= w as isize {
                            0.0
                        } else {
                            iv[ch * h * w + iy as usize * w + ix as usize]
                        };
                        out[row * cols + ch * k * k + ky * k + kx] = val;
                    }
                }
            }
        }
    }
    Ok(Tensor::from_vec(vec![oh * ow, cols], out)?)
}

/// Direct (nested-loop) conv2d reference used to validate the
/// im2col+GEMM path. Input `[c, h, w]`, weights `[out_c, k·k·c]`,
/// output `[out_c, oh, ow]`.
///
/// # Errors
///
/// Returns [`NnError::InvalidModel`] on shape mismatch.
pub fn conv2d_direct(input: &Tensor, weights: &Tensor, spec: &Conv2dSpec) -> Result<Tensor> {
    let d = input.shape().dims();
    let wd = weights.shape().dims();
    let k = spec.kernel;
    if wd != [spec.out_channels, k * k * spec.in_channels] {
        return Err(NnError::InvalidModel {
            detail: format!("weights {:?} do not match {spec:?}", wd),
        });
    }
    let (c, h, w) = (d[0], d[1], d[2]);
    let (oh, ow) = spec.output_hw(h, w)?;
    let iv = input.as_slice();
    let wv = weights.as_slice();
    let mut out = vec![0.0f32; spec.out_channels * oh * ow];
    for oc in 0..spec.out_channels {
        for oy in 0..oh {
            for ox in 0..ow {
                let mut acc = 0.0f32;
                for ch in 0..c {
                    for ky in 0..k {
                        for kx in 0..k {
                            let iy = (oy * spec.stride + ky) as isize - spec.padding as isize;
                            let ix = (ox * spec.stride + kx) as isize - spec.padding as isize;
                            if iy < 0 || ix < 0 || iy >= h as isize || ix >= w as isize {
                                continue;
                            }
                            acc += iv[ch * h * w + iy as usize * w + ix as usize]
                                * wv[oc * k * k * c + ch * k * k + ky * k + kx];
                        }
                    }
                }
                out[oc * oh * ow + oy * ow + ox] = acc;
            }
        }
    }
    Ok(Tensor::from_vec(vec![spec.out_channels, oh, ow], out)?)
}

/// 2×2 max pooling with stride 2 on a `[c, h, w]` tensor (truncating
/// odd edges).
///
/// # Errors
///
/// Returns [`NnError::InvalidModel`] for inputs smaller than 2×2.
pub fn maxpool2(input: &Tensor) -> Result<Tensor> {
    let d = input.shape().dims();
    if d.len() != 3 || d[1] < 2 || d[2] < 2 {
        return Err(NnError::InvalidModel {
            detail: format!("maxpool2 expects [c, h>=2, w>=2], got {:?}", d),
        });
    }
    let (c, h, w) = (d[0], d[1], d[2]);
    let (oh, ow) = (h / 2, w / 2);
    let iv = input.as_slice();
    let mut out = vec![0.0f32; c * oh * ow];
    for ch in 0..c {
        for oy in 0..oh {
            for ox in 0..ow {
                let mut m = f32::NEG_INFINITY;
                for dy in 0..2 {
                    for dx in 0..2 {
                        m = m.max(iv[ch * h * w + (oy * 2 + dy) * w + ox * 2 + dx]);
                    }
                }
                out[ch * oh * ow + oy * ow + ox] = m;
            }
        }
    }
    Ok(Tensor::from_vec(vec![c, oh, ow], out)?)
}

/// Single-head scaled-dot-product self-attention over `x: [seq, d]`,
/// with projection weights `wq, wk, wv: [d, d]`.
///
/// # Errors
///
/// Propagates GEMM shape errors.
pub fn attention(x: &Tensor, wq: &Tensor, wk: &Tensor, wv: &Tensor) -> Result<Tensor> {
    attention_with_mask(x, wq, wk, wv, false)
}

/// [`attention`] with an optional causal mask: position `i` may only
/// attend to positions `j <= i` (the decoder-only LLM setting).
///
/// # Errors
///
/// Propagates GEMM shape errors.
pub fn attention_with_mask(
    x: &Tensor,
    wq: &Tensor,
    wk: &Tensor,
    wv: &Tensor,
    causal: bool,
) -> Result<Tensor> {
    let q = matmul(x, wq)?;
    let k = matmul(x, wk)?;
    let v = matmul(x, wv)?;
    let d = x.shape().dims()[1] as f32;
    let kt = transpose(&k)?;
    let mut scores = matmul(&q, &kt)?.map(|s| s / d.sqrt());
    if causal {
        let seq = x.shape().dims()[0];
        let sv = scores.as_mut_slice();
        for i in 0..seq {
            for j in i + 1..seq {
                sv[i * seq + j] = f32::NEG_INFINITY;
            }
        }
    }
    let probs = softmax_rows(&scores)?;
    matmul(&probs, &v)
}

/// Multi-head scaled-dot-product self-attention: the hidden dimension
/// splits into `heads` equal slices, each attending independently
/// (each head's Q/K/V are the corresponding column slices of the
/// projections), and the head outputs concatenate.
///
/// # Errors
///
/// Returns [`NnError::InvalidModel`] unless `heads` divides the hidden
/// width; propagates GEMM shape errors.
pub fn multi_head_attention(
    x: &Tensor,
    wq: &Tensor,
    wk: &Tensor,
    wv: &Tensor,
    heads: usize,
    causal: bool,
) -> Result<Tensor> {
    let (seq, d) = expect_matrix(x.shape())?;
    if heads == 0 || d % heads != 0 {
        return Err(NnError::InvalidModel {
            detail: format!("{heads} heads do not divide hidden width {d}"),
        });
    }
    let hd = d / heads;
    let q = matmul(x, wq)?;
    let k = matmul(x, wk)?;
    let v = matmul(x, wv)?;
    let slice_head = |t: &Tensor, h: usize| -> Result<Tensor> {
        let tv = t.as_slice();
        let mut out = Vec::with_capacity(seq * hd);
        for i in 0..seq {
            out.extend_from_slice(&tv[i * d + h * hd..i * d + (h + 1) * hd]);
        }
        Ok(Tensor::from_vec(vec![seq, hd], out)?)
    };
    let mut data = vec![0.0f32; seq * d];
    for h in 0..heads {
        let (qh, kh, vh) = (slice_head(&q, h)?, slice_head(&k, h)?, slice_head(&v, h)?);
        let mut scores = matmul(&qh, &transpose(&kh)?)?.map(|s| s / (hd as f32).sqrt());
        if causal {
            let sv = scores.as_mut_slice();
            for i in 0..seq {
                for j in i + 1..seq {
                    sv[i * seq + j] = f32::NEG_INFINITY;
                }
            }
        }
        let out_h = matmul(&softmax_rows(&scores)?, &vh)?;
        for i in 0..seq {
            data[i * d + h * hd..i * d + (h + 1) * hd]
                .copy_from_slice(&out_h.as_slice()[i * hd..(i + 1) * hd]);
        }
    }
    Ok(Tensor::from_vec(vec![seq, d], data)?)
}

/// Transpose of a rank-2 tensor.
///
/// # Errors
///
/// Returns [`NnError::InvalidModel`] for non-rank-2 input.
pub fn transpose(x: &Tensor) -> Result<Tensor> {
    let d = x.shape().dims();
    if d.len() != 2 {
        return Err(NnError::InvalidModel {
            detail: format!("transpose expects rank-2, got {:?}", d),
        });
    }
    let (m, n) = (d[0], d[1]);
    let xv = x.as_slice();
    let mut out = vec![0.0f32; m * n];
    for i in 0..m {
        for j in 0..n {
            out[j * m + i] = xv[i * n + j];
        }
    }
    Ok(Tensor::from_vec(vec![n, m], out)?)
}

/// Cross-entropy of row-wise logits against integer targets, in nats.
///
/// # Errors
///
/// Returns [`NnError::InvalidModel`] on rank/target mismatch.
pub fn cross_entropy(logits: &Tensor, targets: &[usize]) -> Result<f64> {
    let d = logits.shape().dims();
    if d.len() != 2 || targets.len() != d[0] {
        return Err(NnError::InvalidModel {
            detail: format!(
                "cross_entropy shapes: logits {:?}, targets {}",
                d,
                targets.len()
            ),
        });
    }
    let probs = softmax_rows(logits)?;
    let n = d[1];
    let mut ce = 0.0f64;
    for (i, &t) in targets.iter().enumerate() {
        if t >= n {
            return Err(NnError::InvalidModel {
                detail: format!("target {t} out of range {n}"),
            });
        }
        let p = f64::from(probs.as_slice()[i * n + t]).max(1e-12);
        ce -= p.ln();
    }
    Ok(ce / targets.len() as f64)
}

/// Row-wise argmax of a rank-2 tensor.
///
/// # Errors
///
/// Returns [`NnError::InvalidModel`] for non-rank-2 input.
pub fn argmax_rows(x: &Tensor) -> Result<Vec<usize>> {
    let d = x.shape().dims();
    if d.len() != 2 {
        return Err(NnError::InvalidModel {
            detail: format!("argmax expects rank-2, got {:?}", d),
        });
    }
    let (m, n) = (d[0], d[1]);
    let xv = x.as_slice();
    Ok((0..m)
        .map(|i| {
            let row = &xv[i * n..(i + 1) * n];
            row.iter()
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).expect("no NaN logits"))
                .map(|(j, _)| j)
                .expect("rows are non-empty")
        })
        .collect())
}

/// Validates a shape quickly for rank-2 use.
pub fn expect_matrix(shape: &Shape) -> Result<(usize, usize)> {
    let d = shape.dims();
    if d.len() != 2 {
        return Err(NnError::InvalidModel {
            detail: format!("expected rank-2 tensor, got {:?}", d),
        });
    }
    Ok((d[0], d[1]))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_identity() {
        let a = Tensor::from_vec(vec![2, 2], vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let id = Tensor::from_vec(vec![2, 2], vec![1.0, 0.0, 0.0, 1.0]).unwrap();
        assert_eq!(matmul(&a, &id).unwrap(), a);
    }

    #[test]
    fn matmul_known_product() {
        let a = Tensor::from_vec(vec![2, 3], vec![1., 2., 3., 4., 5., 6.]).unwrap();
        let b = Tensor::from_vec(vec![3, 2], vec![7., 8., 9., 10., 11., 12.]).unwrap();
        let c = matmul(&a, &b).unwrap();
        assert_eq!(c.as_slice(), &[58., 64., 139., 154.]);
        assert!(matmul(&a, &a).is_err());
    }

    #[test]
    fn bias_broadcasts_rows() {
        let x = Tensor::zeros(vec![2, 3]).unwrap();
        let b = Tensor::from_vec(vec![3], vec![1.0, 2.0, 3.0]).unwrap();
        let y = add_bias(&x, &b).unwrap();
        assert_eq!(y.as_slice(), &[1., 2., 3., 1., 2., 3.]);
    }

    #[test]
    fn activations() {
        let x = Tensor::from_vec(vec![1, 3], vec![-1.0, 0.0, 2.0]).unwrap();
        assert_eq!(relu(&x).as_slice(), &[0.0, 0.0, 2.0]);
        let g = gelu(&x);
        assert!(g.as_slice()[0] < 0.0 && g.as_slice()[0] > -0.2);
        assert_eq!(g.as_slice()[1], 0.0);
        assert!((g.as_slice()[2] - 1.954).abs() < 0.01);
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let x = Tensor::from_vec(vec![2, 3], vec![1., 2., 3., -1., 0., 1.]).unwrap();
        let s = softmax_rows(&x).unwrap();
        for i in 0..2 {
            let sum: f32 = s.as_slice()[i * 3..(i + 1) * 3].iter().sum();
            assert!((sum - 1.0).abs() < 1e-6);
        }
        // Monotone in logits.
        assert!(s.as_slice()[2] > s.as_slice()[1]);
    }

    #[test]
    fn softmax_is_shift_invariant_and_stable() {
        let x = Tensor::from_vec(vec![1, 3], vec![1000.0, 1001.0, 1002.0]).unwrap();
        let s = softmax_rows(&x).unwrap();
        assert!(s.iter().all(|v| v.is_finite()));
        let sum: f32 = s.as_slice().iter().sum();
        assert!((sum - 1.0).abs() < 1e-6);
    }

    #[test]
    fn layernorm_normalises_rows() {
        let x = Tensor::from_vec(vec![1, 4], vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let y = layernorm_rows(&x, 1e-6).unwrap();
        let mean: f32 = y.as_slice().iter().sum::<f32>() / 4.0;
        let var: f32 = y.as_slice().iter().map(|&v| v * v).sum::<f32>() / 4.0;
        assert!(mean.abs() < 1e-6);
        assert!((var - 1.0).abs() < 1e-4);
    }

    #[test]
    fn mean_pool() {
        let x = Tensor::from_vec(vec![2, 2], vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let p = mean_pool_rows(&x).unwrap();
        assert_eq!(p.as_slice(), &[2.0, 3.0]);
    }

    #[test]
    fn conv_output_size() {
        let spec = Conv2dSpec {
            in_channels: 3,
            out_channels: 8,
            kernel: 3,
            stride: 2,
            padding: 1,
        };
        assert_eq!(spec.output_hw(8, 8).unwrap(), (4, 4));
        let bad = Conv2dSpec { kernel: 9, ..spec };
        assert!(bad.output_hw(4, 4).is_err());
    }

    #[test]
    fn im2col_gemm_matches_direct_conv() {
        let spec = Conv2dSpec {
            in_channels: 2,
            out_channels: 3,
            kernel: 3,
            stride: 1,
            padding: 1,
        };
        let input = Tensor::from_fn(vec![2, 5, 5], |i| ((i * 13) % 9) as f32 - 4.0).unwrap();
        let weights = Tensor::from_fn(vec![3, 18], |i| ((i * 7) % 5) as f32 * 0.2 - 0.4).unwrap();
        let direct = conv2d_direct(&input, &weights, &spec).unwrap();
        // im2col path: [oh*ow, kkc] x [kkc, out_c] then transpose to
        // [out_c, oh, ow].
        let cols = im2col(&input, &spec).unwrap();
        let wt = transpose(&weights).unwrap();
        let gemm = matmul(&cols, &wt).unwrap(); // [25, 3]
        let gemm_t = transpose(&gemm).unwrap(); // [3, 25]
        let direct_flat = direct.reshaped(vec![3, 25]).unwrap();
        for (a, b) in gemm_t.iter().zip(direct_flat.iter()) {
            assert!((a - b).abs() < 1e-4, "{a} vs {b}");
        }
    }

    #[test]
    fn maxpool_halves() {
        let x = Tensor::from_fn(vec![1, 4, 4], |i| i as f32).unwrap();
        let p = maxpool2(&x).unwrap();
        assert_eq!(p.shape().dims(), &[1, 2, 2]);
        assert_eq!(p.as_slice(), &[5.0, 7.0, 13.0, 15.0]);
    }

    #[test]
    fn transpose_roundtrip() {
        let x = Tensor::from_fn(vec![3, 5], |i| i as f32).unwrap();
        let t = transpose(&x).unwrap();
        assert_eq!(t.shape().dims(), &[5, 3]);
        assert_eq!(transpose(&t).unwrap(), x);
    }

    #[test]
    fn attention_shapes_and_uniform_value() {
        // With all-zero projections the scores are uniform and the
        // output equals the mean of V = 0.
        let x = Tensor::from_fn(vec![4, 8], |i| (i % 7) as f32 - 3.0).unwrap();
        let zeros = Tensor::zeros(vec![8, 8]).unwrap();
        let out = attention(&x, &zeros, &zeros, &zeros).unwrap();
        assert_eq!(out.shape().dims(), &[4, 8]);
        assert!(out.iter().all(|&v| v.abs() < 1e-6));
    }

    #[test]
    fn multi_head_with_one_head_equals_single_head() {
        let x = Tensor::from_fn(vec![5, 8], |i| ((i * 7) % 11) as f32 * 0.1 - 0.5).unwrap();
        let wq = Tensor::from_fn(vec![8, 8], |i| ((i * 3) % 7) as f32 * 0.1 - 0.3).unwrap();
        let wk = Tensor::from_fn(vec![8, 8], |i| ((i * 5) % 9) as f32 * 0.1 - 0.4).unwrap();
        let wv = Tensor::from_fn(vec![8, 8], |i| ((i * 11) % 5) as f32 * 0.1 - 0.2).unwrap();
        let single = attention(&x, &wq, &wk, &wv).unwrap();
        let multi = multi_head_attention(&x, &wq, &wk, &wv, 1, false).unwrap();
        for (a, b) in single.iter().zip(multi.iter()) {
            assert!((a - b).abs() < 1e-5);
        }
    }

    #[test]
    fn multi_head_validates_and_differs_from_single() {
        let x = Tensor::from_fn(vec![4, 8], |i| (i % 5) as f32 - 2.0).unwrap();
        let w = Tensor::from_fn(vec![8, 8], |i| ((i * 3) % 7) as f32 * 0.2 - 0.6).unwrap();
        assert!(multi_head_attention(&x, &w, &w, &w, 3, false).is_err());
        assert!(multi_head_attention(&x, &w, &w, &w, 0, false).is_err());
        let m2 = multi_head_attention(&x, &w, &w, &w, 2, false).unwrap();
        let m1 = multi_head_attention(&x, &w, &w, &w, 1, false).unwrap();
        assert_eq!(m2.shape().dims(), &[4, 8]);
        // Head partitioning changes the attention pattern.
        let diff: f32 = m1.iter().zip(m2.iter()).map(|(a, b)| (a - b).abs()).sum();
        assert!(diff > 1e-4, "multi-head should differ from single-head");
    }

    #[test]
    fn multi_head_causal_blocks_future() {
        let x = Tensor::from_fn(vec![4, 8], |i| ((i * 13) % 9) as f32 * 0.2 - 0.8).unwrap();
        let w = Tensor::from_fn(vec![8, 8], |i| ((i * 3) % 7) as f32 * 0.2 - 0.6).unwrap();
        let base = multi_head_attention(&x, &w, &w, &w, 2, true).unwrap();
        let mut perturbed = x.clone();
        for c in 0..8 {
            let v = perturbed.get(&[3, c]).unwrap();
            perturbed.set(&[3, c], v + 5.0).unwrap();
        }
        let out = multi_head_attention(&perturbed, &w, &w, &w, 2, true).unwrap();
        for i in 0..3 {
            for c in 0..8 {
                assert!((base.get(&[i, c]).unwrap() - out.get(&[i, c]).unwrap()).abs() < 1e-5);
            }
        }
    }

    #[test]
    fn cross_entropy_of_perfect_prediction_is_small() {
        let logits = Tensor::from_vec(vec![2, 3], vec![10.0, 0.0, 0.0, 0.0, 10.0, 0.0]).unwrap();
        let ce = cross_entropy(&logits, &[0, 1]).unwrap();
        assert!(ce < 1e-3);
        let bad = cross_entropy(&logits, &[2, 2]).unwrap();
        assert!(bad > 5.0);
        assert!(cross_entropy(&logits, &[3, 0]).is_err());
        assert!(cross_entropy(&logits, &[0]).is_err());
    }

    #[test]
    fn argmax_rows_picks_max() {
        let x = Tensor::from_vec(vec![2, 3], vec![0.1, 0.9, 0.0, 5.0, -1.0, 2.0]).unwrap();
        assert_eq!(argmax_rows(&x).unwrap(), vec![1, 0]);
    }
}
