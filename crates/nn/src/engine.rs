//! Executable scaled-down models with pluggable quantization.
//!
//! These stand in for the pretrained checkpoints of the paper's
//! accuracy evaluation (Fig. 6, Table 1). They are small enough to run
//! thousands of forwards in tests, but structurally faithful: real
//! attention, real GEMMs, real im2col convolution — and the
//! quantization hook sits exactly where the hardware applies it, on the
//! activations entering each GEMM, at the model family's sub-tensor
//! granularity.
//!
//! A modelling note on quantization placement: the tiny transformers
//! quantize the *residual stream* (where the Figure-1 per-token scale
//! dispersion lives) and apply layer normalisation *after* the
//! quantization point, pre-attention and pre-MLP. LN re-amplifies every
//! token to unit scale, which is exactly why small-scale tokens matter
//! in real transformers: a method that wipes a small token (DRQ's
//! range-preserving 4-bit step) destroys that token's entire post-LN
//! representation, while a density-preserving encoding (Drift's
//! high-end clipping) keeps it intact.

use crate::layers::{
    gelu, im2col, layernorm_rows, matmul, maxpool2, mean_pool_rows, multi_head_attention, relu,
    transpose, Conv2dSpec,
};
use crate::{datagen, NnError, Result};
use drift_quant::asymmetric::AsymmetricQuantizer;
use drift_quant::linear::{dequantize_slice, quantize_slice};
use drift_quant::policy::{run_policy, PrecisionPolicy};
use drift_quant::precision::Precision;
use drift_tensor::subtensor::SubTensorScheme;
use drift_tensor::Tensor;
use std::fmt;

/// How a forward pass treats activations and weights.
pub enum ForwardMode<'a> {
    /// Exact f32 execution (the reference).
    Fp32,
    /// Weights statically INT8; activations quantized per sub-tensor by
    /// the policy (INT8 kept or converted lower).
    Quantized {
        /// The precision policy deciding each activation sub-tensor.
        policy: &'a dyn PrecisionPolicy,
        /// The initial (high) precision.
        hp: Precision,
    },
}

impl<'a> ForwardMode<'a> {
    /// Quantized execution at the paper's INT8 initial precision.
    pub fn quantized(policy: &'a dyn PrecisionPolicy) -> Self {
        ForwardMode::Quantized {
            policy,
            hp: Precision::INT8,
        }
    }
}

impl fmt::Debug for ForwardMode<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ForwardMode::Fp32 => write!(f, "Fp32"),
            ForwardMode::Quantized { policy, hp } => {
                write!(f, "Quantized({}, hp={hp})", policy.name())
            }
        }
    }
}

/// The result of one forward pass.
#[derive(Debug, Clone, PartialEq)]
pub struct ForwardOutput {
    /// Logits: `[1, classes]` for classifiers, `[seq, vocab]` for
    /// language models.
    pub logits: Tensor,
    /// Per-quantized-GEMM low-precision element fractions (empty in
    /// FP32 mode).
    pub layer_fractions: Vec<f64>,
}

impl ForwardOutput {
    /// Mean low-precision fraction across quantized GEMMs (0 in FP32
    /// mode).
    pub fn low_fraction(&self) -> f64 {
        if self.layer_fractions.is_empty() {
            0.0
        } else {
            self.layer_fractions.iter().sum::<f64>() / self.layer_fractions.len() as f64
        }
    }
}

/// An executable model.
pub trait Model {
    /// A short name for reports.
    fn name(&self) -> &str;

    /// Runs a forward pass.
    ///
    /// # Errors
    ///
    /// Returns [`NnError`] for shape mismatches.
    fn forward(&self, input: &Tensor, mode: &ForwardMode<'_>) -> Result<ForwardOutput>;
}

/// Quantizes activations entering a GEMM according to the mode,
/// returning the effective tensor and the low fraction.
fn quantize_activations(
    x: &Tensor,
    scheme: &SubTensorScheme,
    mode: &ForwardMode<'_>,
) -> Result<(Tensor, Option<f64>)> {
    match mode {
        ForwardMode::Fp32 => Ok((x.clone(), None)),
        ForwardMode::Quantized { policy, hp } => {
            let run = run_policy(x, scheme, *hp, *policy)?;
            let frac = run.low_fraction();
            Ok((run.effective, Some(frac)))
        }
    }
}

/// Like [`quantize_activations`], but asymmetric (per-row zero-point):
/// post-GELU tensors are one-sided, and every practical PTQ pipeline
/// quantizes them with a zero-point. Delegates to
/// [`drift_quant::asymmetric::AsymmetricQuantizer`].
fn quantize_activations_centered(
    x: &Tensor,
    scheme: &SubTensorScheme,
    mode: &ForwardMode<'_>,
) -> Result<(Tensor, Option<f64>)> {
    match mode {
        ForwardMode::Fp32 => Ok((x.clone(), None)),
        ForwardMode::Quantized { policy, hp } => {
            let out = AsymmetricQuantizer::new(*hp).run(x, scheme, *policy)?;
            let frac = out.low_fraction();
            Ok((out.effective, Some(frac)))
        }
    }
}

/// Statically INT8-quantizes a weight matrix (per-tensor scale), the
/// treatment every method shares in the accuracy comparison.
fn quantize_weights(w: &Tensor, mode: &ForwardMode<'_>) -> Result<Tensor> {
    match mode {
        ForwardMode::Fp32 => Ok(w.clone()),
        ForwardMode::Quantized { hp, .. } => {
            let (codes, params) = quantize_slice(w.as_slice(), *hp)?;
            Ok(Tensor::from_vec(
                w.shape().dims().to_vec(),
                dequantize_slice(&codes, &params),
            )?)
        }
    }
}

/// One transformer block's weights.
#[derive(Debug, Clone)]
struct Block {
    wq: Tensor,
    wk: Tensor,
    wv: Tensor,
    wo: Tensor,
    w1: Tensor,
    w2: Tensor,
}

/// A tiny but structurally real transformer (attention + MLP blocks).
#[derive(Debug, Clone)]
pub struct TinyTransformer {
    name: String,
    hidden: usize,
    head: Tensor,
    blocks: Vec<Block>,
    /// When true the head maps every token to vocab logits (language
    /// model) and attention is causally masked; otherwise tokens are
    /// mean-pooled into one class row.
    lm: bool,
    /// Attention heads.
    heads: usize,
    /// Residual gain keeping activations bounded without
    /// normalisation.
    residual_gain: f32,
}

impl TinyTransformer {
    /// A BERT-like classifier: hidden 64, 2 blocks, 10 classes, with a
    /// matched head (see [`TinyTransformer::with_matched_head`]).
    ///
    /// # Errors
    ///
    /// Propagates weight-generation errors.
    pub fn bert_like(seed: u64) -> Result<Self> {
        Ok(TinyTransformer::build("tiny-bert", seed, 64, 2, 10, false)?.with_matched_head(10))
    }

    /// A ViT-like classifier (same structure, used with the ViT data
    /// profile), with a matched head.
    ///
    /// # Errors
    ///
    /// Propagates weight-generation errors.
    pub fn vit_like(seed: u64) -> Result<Self> {
        Ok(TinyTransformer::build("tiny-vit", seed, 64, 2, 10, false)?.with_matched_head(10))
    }

    /// Replaces the classifier head with one whose column `c` is the
    /// class-`c` template of [`crate::datagen::class_template`] — what a
    /// trained classifier converges to when the data carries class
    /// templates. Gives the fidelity evaluation real logit margins.
    pub fn with_matched_head(mut self, classes: usize) -> Self {
        let hidden = self.hidden;
        let mut head = vec![0.0f32; hidden * classes];
        for c in 0..classes {
            let template = datagen::class_template(c, hidden);
            for (j, &t) in template.iter().enumerate() {
                head[j * classes + c] = t as f32;
            }
        }
        self.head =
            Tensor::from_vec(vec![hidden, classes], head).expect("dimensions are consistent");
        self
    }

    /// A decoder-style language model with the given vocabulary size.
    ///
    /// # Errors
    ///
    /// Propagates weight-generation errors.
    pub fn llm_like(seed: u64, vocab: usize) -> Result<Self> {
        TinyTransformer::build("tiny-llm", seed, 64, 3, vocab, true)
    }

    /// Builds a custom transformer.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidModel`] for zero sizes.
    pub fn build(
        name: &str,
        seed: u64,
        hidden: usize,
        blocks: usize,
        out_dim: usize,
        lm: bool,
    ) -> Result<Self> {
        if hidden == 0 || blocks == 0 || out_dim == 0 {
            return Err(NnError::InvalidModel {
                detail: format!("degenerate transformer: h={hidden} b={blocks} o={out_dim}"),
            });
        }
        let mut block_list = Vec::with_capacity(blocks);
        for b in 0..blocks {
            let s = seed.wrapping_mul(1000).wrapping_add(b as u64);
            block_list.push(Block {
                wq: datagen::xavier_weights(hidden, hidden, s)?,
                wk: datagen::xavier_weights(hidden, hidden, s + 1)?,
                wv: datagen::xavier_weights(hidden, hidden, s + 2)?,
                wo: datagen::xavier_weights(hidden, hidden, s + 3)?,
                w1: datagen::xavier_weights(hidden, hidden * 4, s + 4)?,
                w2: datagen::xavier_weights(hidden * 4, hidden, s + 5)?,
            });
        }
        Ok(TinyTransformer {
            name: name.to_string(),
            hidden,
            head: datagen::xavier_weights(hidden, out_dim, seed.wrapping_add(99))?,
            blocks: block_list,
            lm,
            heads: 4,
            residual_gain: 0.5,
        })
    }

    /// Hidden width (the token length inputs must use).
    pub fn hidden(&self) -> usize {
        self.hidden
    }

    /// Attention heads per block.
    pub fn heads(&self) -> usize {
        self.heads
    }

    /// Whether the model emits per-token vocabulary logits.
    pub fn is_lm(&self) -> bool {
        self.lm
    }
}

impl Model for TinyTransformer {
    fn name(&self) -> &str {
        &self.name
    }

    fn forward(&self, input: &Tensor, mode: &ForwardMode<'_>) -> Result<ForwardOutput> {
        let dims = input.shape().dims();
        if dims.len() != 2 || dims[1] != self.hidden {
            return Err(NnError::InvalidModel {
                detail: format!(
                    "{} expects [seq, {}], got {:?}",
                    self.name, self.hidden, dims
                ),
            });
        }
        let mut fractions = Vec::new();
        let mut x = input.clone();
        for block in &self.blocks {
            // Attention sub-layer: quantize the residual stream at
            // token granularity, then normalise and run attention
            // (pre-LN placement; LN sits after the quantization point).
            let scheme = SubTensorScheme::token(x.shape().dims()[1]);
            let (xq, f) = quantize_activations(&x, &scheme, mode)?;
            if let Some(f) = f {
                fractions.push(f);
            }
            let xn = layernorm_rows(&xq, 1e-6)?;
            let attn = multi_head_attention(
                &xn,
                &quantize_weights(&block.wq, mode)?,
                &quantize_weights(&block.wk, mode)?,
                &quantize_weights(&block.wv, mode)?,
                self.heads,
                self.lm,
            )?;
            let attn = matmul(&attn, &quantize_weights(&block.wo, mode)?)?;
            x = x.zip_with(&attn, |a, b| a + self.residual_gain * b)?;

            // MLP sub-layer: quantize, normalise, expand, and quantize
            // the (homogeneous) expanded activations too.
            let scheme = SubTensorScheme::token(x.shape().dims()[1]);
            let (xq, f) = quantize_activations(&x, &scheme, mode)?;
            if let Some(f) = f {
                fractions.push(f);
            }
            let xn = layernorm_rows(&xq, 1e-6)?;
            let h = gelu(&matmul(&xn, &quantize_weights(&block.w1, mode)?)?);
            let scheme_h = SubTensorScheme::token(h.shape().dims()[1]);
            let (hq, f) = quantize_activations_centered(&h, &scheme_h, mode)?;
            if let Some(f) = f {
                fractions.push(f);
            }
            let down = matmul(&hq, &quantize_weights(&block.w2, mode)?)?;
            x = x.zip_with(&down, |a, b| a + self.residual_gain * b)?;
        }

        // The classifier / LM head stays at the initial high precision,
        // the standard PTQ practice (first/last layers are excluded
        // from aggressive quantization); its input quantizes at INT8.
        let head = quantize_weights(&self.head, mode)?;
        let head_input_quant = |x: &Tensor| -> Result<Tensor> {
            match mode {
                ForwardMode::Fp32 => Ok(x.clone()),
                ForwardMode::Quantized { hp, .. } => {
                    let (codes, params) = quantize_slice(x.as_slice(), *hp)?;
                    Ok(Tensor::from_vec(
                        x.shape().dims().to_vec(),
                        dequantize_slice(&codes, &params),
                    )?)
                }
            }
        };
        let logits = if self.lm {
            // Per-token vocabulary logits from the normalised stream.
            let xq = head_input_quant(&x)?;
            matmul(&layernorm_rows(&xq, 1e-6)?, &head)?
        } else {
            let xq = head_input_quant(&x)?;
            let pooled = mean_pool_rows(&layernorm_rows(&xq, 1e-6)?)?;
            matmul(&pooled, &head)?
        };
        Ok(ForwardOutput {
            logits,
            layer_fractions: fractions,
        })
    }
}

/// A tiny CNN classifier executing convolutions as im2col GEMMs.
#[derive(Debug, Clone)]
pub struct TinyCnn {
    name: String,
    specs: Vec<Conv2dSpec>,
    /// Conv weights, `[out_c, k·k·in_c]` each.
    weights: Vec<Tensor>,
    head: Tensor,
    input_hw: usize,
    input_channels: usize,
    /// Region tile height (rows of the im2col matrix grouped into one
    /// sub-tensor) — the DRQ-style region granularity.
    region_rows: usize,
    /// Indices of convs whose output adds back the stage input
    /// (ResNet-style identity shortcuts; requires equal channels and
    /// spatial size).
    residual_after: Vec<usize>,
}

impl TinyCnn {
    /// A ResNet-flavoured tiny CNN: 3→16→32 channels on 16×16 inputs,
    /// 10 classes.
    ///
    /// # Errors
    ///
    /// Propagates weight-generation errors.
    pub fn resnet_like(seed: u64) -> Result<Self> {
        let specs = vec![
            Conv2dSpec {
                in_channels: 3,
                out_channels: 16,
                kernel: 3,
                stride: 1,
                padding: 1,
            },
            Conv2dSpec {
                in_channels: 16,
                out_channels: 32,
                kernel: 3,
                stride: 1,
                padding: 1,
            },
        ];
        let weights = vec![
            datagen::xavier_weights(16, 27, seed)?,
            datagen::xavier_weights(32, 144, seed + 1)?,
        ];
        Ok(TinyCnn {
            name: "tiny-cnn".to_string(),
            specs,
            weights,
            head: datagen::xavier_weights(32, 10, seed + 2)?,
            input_hw: 16,
            input_channels: 3,
            region_rows: 8,
            residual_after: Vec::new(),
        })
    }

    /// A residual variant: 3→16 stem, then a 16→16 identity-shortcut
    /// block, then 16→32 — structurally closer to a ResNet basic block.
    ///
    /// # Errors
    ///
    /// Propagates weight-generation errors.
    pub fn residual_like(seed: u64) -> Result<Self> {
        let specs = vec![
            Conv2dSpec {
                in_channels: 3,
                out_channels: 16,
                kernel: 3,
                stride: 1,
                padding: 1,
            },
            Conv2dSpec {
                in_channels: 16,
                out_channels: 16,
                kernel: 3,
                stride: 1,
                padding: 1,
            },
            Conv2dSpec {
                in_channels: 16,
                out_channels: 32,
                kernel: 3,
                stride: 1,
                padding: 1,
            },
        ];
        let weights = vec![
            datagen::xavier_weights(16, 27, seed)?,
            datagen::xavier_weights(16, 144, seed + 1)?,
            datagen::xavier_weights(32, 144, seed + 2)?,
        ];
        Ok(TinyCnn {
            name: "tiny-resnet".to_string(),
            specs,
            weights,
            head: datagen::xavier_weights(32, 10, seed + 3)?,
            input_hw: 16,
            input_channels: 3,
            region_rows: 8,
            residual_after: vec![1],
        })
    }

    /// Expected input spatial size.
    pub fn input_hw(&self) -> usize {
        self.input_hw
    }

    /// Expected input channels.
    pub fn input_channels(&self) -> usize {
        self.input_channels
    }
}

impl Model for TinyCnn {
    fn name(&self) -> &str {
        &self.name
    }

    fn forward(&self, input: &Tensor, mode: &ForwardMode<'_>) -> Result<ForwardOutput> {
        let dims = input.shape().dims();
        if dims != [self.input_channels, self.input_hw, self.input_hw] {
            return Err(NnError::InvalidModel {
                detail: format!(
                    "{} expects [{}, {}, {}], got {:?}",
                    self.name, self.input_channels, self.input_hw, self.input_hw, dims
                ),
            });
        }
        let mut fractions = Vec::new();
        let mut x = input.clone();
        for (idx, (spec, w)) in self.specs.iter().zip(&self.weights).enumerate() {
            let stage_input = x.clone();
            let cols = im2col(&x, spec)?;
            let k_cols = cols.shape().dims()[1];
            let scheme = SubTensorScheme::region(self.region_rows, k_cols);
            let (colsq, f) = quantize_activations(&cols, &scheme, mode)?;
            if let Some(f) = f {
                fractions.push(f);
            }
            let wq = quantize_weights(w, mode)?;
            let y = matmul(&colsq, &transpose(&wq)?)?;
            let d = x.shape().dims();
            let (oh, ow) = spec.output_hw(d[1], d[2])?;
            x = transpose(&y)?.reshaped(vec![spec.out_channels, oh, ow])?;
            if self.residual_after.contains(&idx) {
                // Identity shortcut (requires matching shapes).
                x = x.add(&stage_input)?;
            }
            x = relu(&x);
            if !self.residual_after.contains(&idx) {
                x = maxpool2(&x)?;
            }
        }
        // Global average pool per channel.
        let d = x.shape().dims();
        let (c, hw) = (d[0], d[1] * d[2]);
        let flat = x.reshaped(vec![c, hw])?;
        let pooled: Vec<f32> = (0..c)
            .map(|ch| flat.as_slice()[ch * hw..(ch + 1) * hw].iter().sum::<f32>() / hw as f32)
            .collect();
        let pooled = Tensor::from_vec(vec![1, c], pooled)?;
        let logits = matmul(&pooled, &quantize_weights(&self.head, mode)?)?;
        Ok(ForwardOutput {
            logits,
            layer_fractions: fractions,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datagen::{ImageProfile, TokenProfile};
    use drift_core::selector::DriftPolicy;
    use drift_quant::policy::StaticHighPolicy;

    #[test]
    fn transformer_rejects_bad_input() {
        let m = TinyTransformer::bert_like(1).unwrap();
        let bad = Tensor::zeros(vec![8, 32]).unwrap();
        assert!(m.forward(&bad, &ForwardMode::Fp32).is_err());
        assert!(TinyTransformer::build("x", 1, 0, 1, 1, false).is_err());
    }

    #[test]
    fn fp32_forward_is_deterministic() {
        let m = TinyTransformer::bert_like(2).unwrap();
        let input = TokenProfile::bert().generate(16, 64, 3).unwrap();
        let a = m.forward(&input, &ForwardMode::Fp32).unwrap();
        let b = m.forward(&input, &ForwardMode::Fp32).unwrap();
        assert_eq!(a.logits, b.logits);
        assert!(a.layer_fractions.is_empty());
        assert_eq!(a.logits.shape().dims(), &[1, 10]);
    }

    #[test]
    fn int8_forward_is_close_to_fp32() {
        let m = TinyTransformer::bert_like(4).unwrap();
        let input = TokenProfile::bert().generate(16, 64, 5).unwrap();
        let fp32 = m.forward(&input, &ForwardMode::Fp32).unwrap();
        let int8 = m
            .forward(&input, &ForwardMode::quantized(&StaticHighPolicy))
            .unwrap();
        let cos =
            drift_quant::linear::cosine_similarity(fp32.logits.as_slice(), int8.logits.as_slice());
        assert!(cos > 0.98, "INT8 cosine similarity {cos}");
        assert_eq!(int8.low_fraction(), 0.0);
    }

    #[test]
    fn drift_forward_uses_low_precision() {
        let m = TinyTransformer::bert_like(4).unwrap();
        let input = TokenProfile::bert().generate(16, 64, 5).unwrap();
        let policy = DriftPolicy::new(0.1).unwrap();
        let out = m.forward(&input, &ForwardMode::quantized(&policy)).unwrap();
        assert!(
            out.low_fraction() > 0.3,
            "low fraction {}",
            out.low_fraction()
        );
        let fp32 = m.forward(&input, &ForwardMode::Fp32).unwrap();
        let cos =
            drift_quant::linear::cosine_similarity(fp32.logits.as_slice(), out.logits.as_slice());
        assert!(cos > 0.9, "drift cosine similarity {cos}");
    }

    #[test]
    fn llm_emits_per_token_logits() {
        let m = TinyTransformer::llm_like(6, 32).unwrap();
        assert!(m.is_lm());
        let input = TokenProfile::llm().generate(12, 64, 7).unwrap();
        let out = m.forward(&input, &ForwardMode::Fp32).unwrap();
        assert_eq!(out.logits.shape().dims(), &[12, 32]);
    }

    #[test]
    fn cnn_forward_shapes() {
        let m = TinyCnn::resnet_like(8).unwrap();
        let img = ImageProfile::natural().generate(3, 16, 16, 9).unwrap();
        let out = m.forward(&img, &ForwardMode::Fp32).unwrap();
        assert_eq!(out.logits.shape().dims(), &[1, 10]);
        let bad = Tensor::zeros(vec![3, 8, 8]).unwrap();
        assert!(m.forward(&bad, &ForwardMode::Fp32).is_err());
    }

    #[test]
    fn cnn_quantized_close_to_fp32() {
        let m = TinyCnn::resnet_like(8).unwrap();
        let img = ImageProfile::natural().generate(3, 16, 16, 10).unwrap();
        let fp32 = m.forward(&img, &ForwardMode::Fp32).unwrap();
        let policy = DriftPolicy::new(0.1).unwrap();
        let q = m.forward(&img, &ForwardMode::quantized(&policy)).unwrap();
        let cos =
            drift_quant::linear::cosine_similarity(fp32.logits.as_slice(), q.logits.as_slice());
        assert!(cos > 0.9, "cnn drift cosine {cos}");
        assert!(!q.layer_fractions.is_empty());
    }

    #[test]
    fn forward_mode_debug_strings() {
        let policy = StaticHighPolicy;
        let m = ForwardMode::quantized(&policy);
        assert!(format!("{m:?}").contains("int8"));
        assert_eq!(format!("{:?}", ForwardMode::Fp32), "Fp32");
    }

    #[test]
    fn residual_cnn_forwards_and_quantizes() {
        let m = TinyCnn::residual_like(21).unwrap();
        let img = ImageProfile::natural().generate(3, 16, 16, 33).unwrap();
        let fp32 = m.forward(&img, &ForwardMode::Fp32).unwrap();
        assert_eq!(fp32.logits.shape().dims(), &[1, 10]);
        let policy = DriftPolicy::new(0.05).unwrap();
        let q = m.forward(&img, &ForwardMode::quantized(&policy)).unwrap();
        assert_eq!(q.layer_fractions.len(), 3);
        let cos =
            drift_quant::linear::cosine_similarity(fp32.logits.as_slice(), q.logits.as_slice());
        assert!(cos > 0.9, "residual cnn drift cosine {cos}");
    }

    #[test]
    fn residual_shortcut_changes_the_function() {
        // With identical seeds, the residual variant must differ from a
        // shortcut-free stack (the shortcut is live).
        let img = ImageProfile::natural().generate(3, 16, 16, 34).unwrap();
        let with = TinyCnn::residual_like(21).unwrap();
        let mut without = TinyCnn::residual_like(21).unwrap();
        without.residual_after.clear();
        let a = with.forward(&img, &ForwardMode::Fp32).unwrap();
        let b = without.forward(&img, &ForwardMode::Fp32).unwrap();
        assert_ne!(a.logits, b.logits);
    }
}
