//! The model zoo: full-scale layer-shape tables for every model in the
//! paper's evaluation (Section 5.1).
//!
//! These tables drive the *hardware* evaluation (Figs. 7–8, Table 1's
//! low-bit shares): each layer lowers to `(M, K, N)` GEMMs via
//! [`crate::lower`]. The *accuracy* evaluation runs on scaled-down
//! executable models ([`crate::engine`]) because full-scale pretrained
//! weights are not available offline; the substitution argument lives
//! in `DESIGN.md`.

use serde::{Deserialize, Serialize};

/// The model family, which selects the sub-tensor granularity and the
/// data profile.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ModelFamily {
    /// Convolutional networks (region sub-tensors).
    Cnn,
    /// Vision transformers (patch-token sub-tensors).
    Vit,
    /// BERT-style encoders (token sub-tensors).
    Bert,
    /// Decoder-only large language models (token sub-tensors).
    Llm,
}

/// One layer of a full-scale model, in hardware-relevant terms.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum LayerDesc {
    /// A 2-D convolution executed as an im2col GEMM.
    Conv {
        /// Layer name.
        name: String,
        /// Input channels.
        in_c: usize,
        /// Output channels.
        out_c: usize,
        /// Square kernel.
        k: usize,
        /// Stride.
        stride: usize,
        /// Padding.
        pad: usize,
        /// Input spatial size (square).
        in_hw: usize,
        /// How many identical instances the model contains.
        repeat: u64,
    },
    /// A dense layer / projection over a token batch.
    Linear {
        /// Layer name.
        name: String,
        /// Streamed rows (tokens / batch).
        tokens: usize,
        /// Input features.
        in_dim: usize,
        /// Output features.
        out_dim: usize,
        /// How many identical instances the model contains.
        repeat: u64,
    },
}

impl LayerDesc {
    /// Layer name.
    pub fn name(&self) -> &str {
        match self {
            LayerDesc::Conv { name, .. } | LayerDesc::Linear { name, .. } => name,
        }
    }

    /// Instance count.
    pub fn repeat(&self) -> u64 {
        match self {
            LayerDesc::Conv { repeat, .. } | LayerDesc::Linear { repeat, .. } => *repeat,
        }
    }
}

/// A full-scale model description.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelDesc {
    /// Model name as the paper reports it.
    pub name: String,
    /// Model family.
    pub family: ModelFamily,
    /// Layer table.
    pub layers: Vec<LayerDesc>,
    /// Sequence length / token count used in the evaluation.
    pub seq: usize,
}

#[allow(clippy::too_many_arguments)] // mirrors the conv hyper-parameter tuple
fn conv(
    name: &str,
    in_c: usize,
    out_c: usize,
    k: usize,
    stride: usize,
    pad: usize,
    in_hw: usize,
    repeat: u64,
) -> LayerDesc {
    LayerDesc::Conv {
        name: name.to_string(),
        in_c,
        out_c,
        k,
        stride,
        pad,
        in_hw,
        repeat,
    }
}

fn linear(name: &str, tokens: usize, in_dim: usize, out_dim: usize, repeat: u64) -> LayerDesc {
    LayerDesc::Linear {
        name: name.to_string(),
        tokens,
        in_dim,
        out_dim,
        repeat,
    }
}

/// Transformer encoder/decoder block GEMMs: QKV projection, attention
/// score and context GEMMs (per head), output projection, and the MLP.
fn transformer_blocks(
    prefix: &str,
    layers: u64,
    seq: usize,
    hidden: usize,
    heads: usize,
    mlp_ratio: usize,
) -> Vec<LayerDesc> {
    let head_dim = hidden / heads;
    vec![
        linear(&format!("{prefix}.qkv"), seq, hidden, 3 * hidden, layers),
        linear(
            &format!("{prefix}.attn_qk"),
            seq,
            head_dim,
            seq,
            layers * heads as u64,
        ),
        linear(
            &format!("{prefix}.attn_av"),
            seq,
            seq,
            head_dim,
            layers * heads as u64,
        ),
        linear(&format!("{prefix}.attn_out"), seq, hidden, hidden, layers),
        linear(
            &format!("{prefix}.mlp_up"),
            seq,
            hidden,
            mlp_ratio * hidden,
            layers,
        ),
        linear(
            &format!("{prefix}.mlp_down"),
            seq,
            mlp_ratio * hidden,
            hidden,
            layers,
        ),
    ]
}

/// ResNet-18 on 224×224 ImageNet inputs.
pub fn resnet18() -> ModelDesc {
    let mut layers = vec![conv("conv1", 3, 64, 7, 2, 3, 224, 1)];
    // Four stages of two basic blocks (two 3×3 convs each).
    let stages = [(64usize, 56usize), (128, 28), (256, 14), (512, 7)];
    for (i, &(c, hw)) in stages.iter().enumerate() {
        let in_c = if i == 0 { 64 } else { stages[i - 1].0 };
        // First block of a stage downsamples (stride 2) except stage 0.
        let stride = if i == 0 { 1 } else { 2 };
        let in_hw = if i == 0 { 56 } else { stages[i - 1].1 };
        layers.push(conv(
            &format!("s{i}.b0.conv1"),
            in_c,
            c,
            3,
            stride,
            1,
            in_hw,
            1,
        ));
        layers.push(conv(&format!("s{i}.b0.conv2"), c, c, 3, 1, 1, hw, 1));
        layers.push(conv(&format!("s{i}.b1"), c, c, 3, 1, 1, hw, 2));
    }
    layers.push(linear("fc", 1, 512, 1000, 1));
    ModelDesc {
        name: "ResNet18".to_string(),
        family: ModelFamily::Cnn,
        layers,
        seq: 1,
    }
}

/// ResNet-50 on 224×224 ImageNet inputs (bottleneck blocks).
pub fn resnet50() -> ModelDesc {
    let mut layers = vec![conv("conv1", 3, 64, 7, 2, 3, 224, 1)];
    // (mid channels, out channels, blocks, spatial).
    let stages: [(usize, usize, u64, usize); 4] = [
        (64, 256, 3, 56),
        (128, 512, 4, 28),
        (256, 1024, 6, 14),
        (512, 2048, 3, 7),
    ];
    for (i, &(mid, out, blocks, hw)) in stages.iter().enumerate() {
        let in_c = if i == 0 { 64 } else { stages[i - 1].1 };
        layers.push(conv(&format!("s{i}.reduce"), in_c, mid, 1, 1, 0, hw, 1));
        layers.push(conv(
            &format!("s{i}.spatial"),
            mid,
            mid,
            3,
            1,
            1,
            hw,
            blocks,
        ));
        layers.push(conv(&format!("s{i}.expand"), mid, out, 1, 1, 0, hw, blocks));
        if blocks > 1 {
            layers.push(conv(
                &format!("s{i}.reduce_rest"),
                out,
                mid,
                1,
                1,
                0,
                hw,
                blocks - 1,
            ));
        }
    }
    layers.push(linear("fc", 1, 2048, 1000, 1));
    ModelDesc {
        name: "ResNet50".to_string(),
        family: ModelFamily::Cnn,
        layers,
        seq: 1,
    }
}

/// ViT-B/16: 197 tokens (196 patches + CLS), 12 layers, hidden 768.
pub fn vit_b16() -> ModelDesc {
    let mut layers = vec![linear("patch_embed", 196, 768, 768, 1)];
    layers.extend(transformer_blocks("enc", 12, 197, 768, 12, 4));
    layers.push(linear("head", 1, 768, 1000, 1));
    ModelDesc {
        name: "ViT-B".to_string(),
        family: ModelFamily::Vit,
        layers,
        seq: 197,
    }
}

/// DeiT-S: 197 tokens, 12 layers, hidden 384, 6 heads.
pub fn deit_s() -> ModelDesc {
    let mut layers = vec![linear("patch_embed", 196, 768, 384, 1)];
    layers.extend(transformer_blocks("enc", 12, 197, 384, 6, 4));
    layers.push(linear("head", 1, 384, 1000, 1));
    ModelDesc {
        name: "DeiT-S".to_string(),
        family: ModelFamily::Vit,
        layers,
        seq: 197,
    }
}

/// BERT-base at sequence length 128 (the GLUE fine-tuning setting).
pub fn bert_base() -> ModelDesc {
    let mut layers = transformer_blocks("enc", 12, 128, 768, 12, 4);
    layers.push(linear("pooler", 1, 768, 768, 1));
    ModelDesc {
        name: "BERT".to_string(),
        family: ModelFamily::Bert,
        layers,
        seq: 128,
    }
}

/// GPT2-XL: 48 layers, hidden 1600, 25 heads, sequence 1024.
pub fn gpt2_xl() -> ModelDesc {
    let layers = transformer_blocks("dec", 48, 1024, 1600, 25, 4);
    ModelDesc {
        name: "GPT2-XL".to_string(),
        family: ModelFamily::Llm,
        layers,
        seq: 1024,
    }
}

/// BLOOM-7B1: 30 layers, hidden 4096, 32 heads, sequence 1024.
pub fn bloom_7b1() -> ModelDesc {
    let layers = transformer_blocks("dec", 30, 1024, 4096, 32, 4);
    ModelDesc {
        name: "BLOOM-7B1".to_string(),
        family: ModelFamily::Llm,
        layers,
        seq: 1024,
    }
}

/// OPT-6.7B: 32 layers, hidden 4096, 32 heads, sequence 1024.
pub fn opt_6_7b() -> ModelDesc {
    let layers = transformer_blocks("dec", 32, 1024, 4096, 32, 4);
    ModelDesc {
        name: "OPT-6.7B".to_string(),
        family: ModelFamily::Llm,
        layers,
        seq: 1024,
    }
}

impl ModelDesc {
    /// Total weight parameters across unique layer instances
    /// (attention score/context GEMMs carry no weights).
    pub fn parameters(&self) -> u64 {
        self.layers
            .iter()
            .map(|l| match l {
                LayerDesc::Conv {
                    in_c,
                    out_c,
                    k,
                    repeat,
                    ..
                } => (k * k * in_c * out_c) as u64 * repeat,
                LayerDesc::Linear {
                    name,
                    in_dim,
                    out_dim,
                    repeat,
                    ..
                } => {
                    if name.contains("attn_qk") || name.contains("attn_av") {
                        0
                    } else {
                        (in_dim * out_dim) as u64 * repeat
                    }
                }
            })
            .sum()
    }

    /// Weight memory footprint at the given uniform bit width, in bytes.
    pub fn weight_bytes(&self, bits: u8) -> u64 {
        (self.parameters() * u64::from(bits)).div_ceil(8)
    }
}

/// Every model of the paper's Fig. 7 hardware comparison, in figure
/// order.
pub fn hardware_eval_models() -> Vec<ModelDesc> {
    vec![resnet18(), resnet50(), vit_b16(), deit_s(), bert_base()]
}

/// The three LLMs of Table 1.
pub fn llm_models() -> Vec<ModelDesc> {
    vec![gpt2_xl(), bloom_7b1(), opt_6_7b()]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lower::lower;

    #[test]
    fn all_models_lower_successfully() {
        for m in hardware_eval_models().into_iter().chain(llm_models()) {
            let ops = lower(&m).unwrap();
            assert!(!ops.is_empty(), "{} lowered to nothing", m.name);
        }
    }

    #[test]
    fn resnet18_macs_in_expected_range() {
        // ~1.8 GMACs for ResNet-18 at 224².
        let ops = lower(&resnet18()).unwrap();
        let macs: u64 = ops.iter().map(|o| o.shape.macs() * o.repeat).sum();
        let gmacs = macs as f64 / 1e9;
        assert!(
            (1.0..3.0).contains(&gmacs),
            "ResNet18 at {gmacs} GMACs is out of range"
        );
    }

    #[test]
    fn resnet50_macs_in_expected_range() {
        // ~4.1 GMACs for ResNet-50.
        let ops = lower(&resnet50()).unwrap();
        let macs: u64 = ops.iter().map(|o| o.shape.macs() * o.repeat).sum();
        let gmacs = macs as f64 / 1e9;
        assert!(
            (2.5..6.0).contains(&gmacs),
            "ResNet50 at {gmacs} GMACs is out of range"
        );
    }

    #[test]
    fn vit_b_macs_in_expected_range() {
        // ~17.6 GMACs for ViT-B/16 at 224² (with attention GEMMs).
        let ops = lower(&vit_b16()).unwrap();
        let macs: u64 = ops.iter().map(|o| o.shape.macs() * o.repeat).sum();
        let gmacs = macs as f64 / 1e9;
        assert!(
            (10.0..25.0).contains(&gmacs),
            "ViT-B at {gmacs} GMACs is out of range"
        );
    }

    #[test]
    fn gpt2_xl_parameter_scale() {
        // GPT2-XL has ~1.5B parameters; the GEMM weight volume (K·N
        // summed over unique layers) should be in that ballpark
        // (attention-score GEMMs carry no weights).
        let params: u64 = gpt2_xl()
            .layers
            .iter()
            .filter_map(|l| match l {
                LayerDesc::Linear {
                    name,
                    in_dim,
                    out_dim,
                    repeat,
                    ..
                } if !name.contains("attn_qk") && !name.contains("attn_av") => {
                    Some(*in_dim as u64 * *out_dim as u64 * repeat)
                }
                _ => None,
            })
            .sum();
        let billions = params as f64 / 1e9;
        assert!(
            (1.0..2.5).contains(&billions),
            "GPT2-XL at {billions}B params is out of range"
        );
    }

    #[test]
    fn parameter_counts_are_plausible() {
        // Published parameter counts (weights only, ±30% since we count
        // GEMM weights and skip embeddings/norms).
        let expectations = [
            (resnet18(), 11.7e6, 0.4),
            (resnet50(), 25.6e6, 0.4),
            (vit_b16(), 86.0e6, 0.4),
            (bert_base(), 110.0e6, 0.4),
            (gpt2_xl(), 1.56e9, 0.4),
            (bloom_7b1(), 7.1e9, 0.4),
            (opt_6_7b(), 6.7e9, 0.4),
        ];
        for (desc, published, tol) in expectations {
            let p = desc.parameters() as f64;
            let rel = (p - published).abs() / published;
            assert!(
                rel < tol,
                "{}: {p:.2e} params vs published {published:.2e}",
                desc.name
            );
        }
    }

    #[test]
    fn weight_bytes_scale_with_bits() {
        let m = bert_base();
        assert_eq!(m.weight_bytes(8), m.parameters());
        assert_eq!(m.weight_bytes(4), m.parameters().div_ceil(2));
    }

    #[test]
    fn families_are_assigned() {
        assert_eq!(resnet18().family, ModelFamily::Cnn);
        assert_eq!(vit_b16().family, ModelFamily::Vit);
        assert_eq!(bert_base().family, ModelFamily::Bert);
        assert_eq!(opt_6_7b().family, ModelFamily::Llm);
    }

    #[test]
    fn layer_accessors() {
        let m = bert_base();
        let l = &m.layers[0];
        assert!(l.name().contains("qkv"));
        assert_eq!(l.repeat(), 12);
    }
}
