//! Synthetic data generation matched to the paper's Figure-1
//! observations.
//!
//! Two levels:
//!
//! 1. **Tensor level** ([`TokenProfile::generate`], [`ImageProfile`]) —
//!    full activation tensors for the scaled-down executable models of
//!    the accuracy evaluation. Every sub-tensor is zero-mean Laplace;
//!    sub-tensor scales are log-normally dispersed per model family,
//!    with occasional outlier tokens for transformer/LLM families (the
//!    LLM.int8 phenomenon the paper cites).
//! 2. **Statistics level** ([`TokenProfile::row_stats`]) — for the
//!    full-scale hardware evaluation we need per-row `(max|Y|,
//!    avg(|Y|))` for GEMMs with thousands of rows and wide reduction
//!    dims; materialising the tensors would be wasteful because every
//!    policy decision depends only on those two statistics. We sample
//!    the statistics directly from their sampling distributions (the
//!    max of `K` i.i.d. exponentials is Gumbel-distributed around
//!    `b·ln K`) and synthesise a tiny value multiset realising them
//!    exactly, so `SummaryStats` stays the single source of truth.

use crate::{NnError, Result};
use drift_tensor::dist::{Laplace, Sampler};
use drift_tensor::rng::{derive_seed, seeded, DriftRng};
use drift_tensor::stats::SummaryStats;
use drift_tensor::Tensor;
use rand::Rng;

/// Per-model-family token (sub-tensor) statistics profile.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TokenProfile {
    /// Median Laplace scale of a token.
    pub base_scale: f64,
    /// Log-normal sigma of the per-token scale dispersion. CNN feature
    /// maps are homogeneous (small sigma); transformer tokens span
    /// orders of magnitude (paper Fig. 1a).
    pub scale_sigma: f64,
    /// Fraction of tokens that are outliers.
    pub outlier_fraction: f64,
    /// Scale multiplier for outlier tokens.
    pub outlier_gain: f64,
}

impl TokenProfile {
    /// CNN feature-map regions: homogeneous scales, no outliers.
    pub fn cnn() -> Self {
        TokenProfile {
            base_scale: 0.25,
            scale_sigma: 0.45,
            outlier_fraction: 0.0,
            outlier_gain: 1.0,
        }
    }

    /// ViT patch tokens: wide dispersion (paper Fig. 1a shows patch
    /// maxima from ~0 to >3), occasional outliers (the CLS token and
    /// high-attention patches). The bulk of tokens sit an order of
    /// magnitude below the outliers: below the reach of a
    /// range-preserving 4-bit step, within the reach of INT8.
    pub fn vit() -> Self {
        TokenProfile {
            base_scale: 0.05,
            scale_sigma: 0.6,
            outlier_fraction: 0.05,
            outlier_gain: 5.0,
        }
    }

    /// BERT tokens: wide dispersion with a few outlier tokens
    /// (separator/punctuation tokens carry large activations).
    pub fn bert() -> Self {
        TokenProfile {
            base_scale: 0.04,
            scale_sigma: 0.5,
            outlier_fraction: 0.05,
            outlier_gain: 5.0,
        }
    }

    /// LLM tokens: the heaviest dispersion plus systematic outliers
    /// (LLM.int8's observation, cited by the paper for the era of large
    /// models).
    pub fn llm() -> Self {
        TokenProfile {
            base_scale: 0.03,
            scale_sigma: 0.7,
            outlier_fraction: 0.04,
            outlier_gain: 8.0,
        }
    }

    /// The profile for a model family by its zoo tag.
    pub fn for_family(family: crate::zoo::ModelFamily) -> Self {
        use crate::zoo::ModelFamily;
        match family {
            ModelFamily::Cnn => TokenProfile::cnn(),
            ModelFamily::Vit => TokenProfile::vit(),
            ModelFamily::Bert => TokenProfile::bert(),
            ModelFamily::Llm => TokenProfile::llm(),
        }
    }

    /// Draws one token's Laplace scale.
    pub fn sample_scale(&self, rng: &mut DriftRng) -> f64 {
        // Log-normal dispersion around the base scale.
        let gauss = drift_tensor::dist::Gaussian::new(0.0, self.scale_sigma)
            .expect("sigma > 0 by construction");
        let mut scale = self.base_scale * gauss.sample(rng).exp();
        if self.outlier_fraction > 0.0 && rng.gen::<f64>() < self.outlier_fraction {
            scale *= self.outlier_gain;
        }
        scale.max(1e-6)
    }

    /// Generates a `[tokens, hidden]` activation tensor: token `t` is
    /// i.i.d. `Laplace(0, scale_t)`.
    ///
    /// # Errors
    ///
    /// Returns a tensor error for zero dimensions.
    pub fn generate(&self, tokens: usize, hidden: usize, seed: u64) -> Result<Tensor> {
        let mut rng = seeded(derive_seed(seed, "token-profile"));
        let mut data = Vec::with_capacity(tokens * hidden);
        for _ in 0..tokens {
            let b = self.sample_scale(&mut rng);
            let lap = Laplace::new(0.0, b).map_err(NnError::Tensor)?;
            data.extend(lap.sample_f32(&mut rng, hidden));
        }
        Ok(Tensor::from_vec(vec![tokens, hidden], data)?)
    }

    /// Generates a `[tokens, hidden]` activation tensor carrying a
    /// class signal: every token is `Laplace(0, scale_t)` noise plus
    /// `amplitude · scale_t` times a class-specific unit template, so
    /// the class information rides on *every* token proportionally to
    /// its scale — after layer normalisation, small tokens carry it as
    /// strongly as large ones. This mirrors real data, where logits
    /// have real margins and a method that wipes small tokens loses
    /// decision-relevant content.
    ///
    /// Templates depend only on `(class, hidden)`, so all inputs of a
    /// class share their signal direction.
    ///
    /// # Errors
    ///
    /// Returns a tensor error for zero dimensions.
    pub fn generate_classified(
        &self,
        tokens: usize,
        hidden: usize,
        class: usize,
        amplitude: f64,
        seed: u64,
    ) -> Result<Tensor> {
        let template = class_template(class, hidden);
        let mut rng = seeded(derive_seed(seed, "classified-tokens"));
        let gauss = drift_tensor::dist::Gaussian::new(0.0, 1.0).expect("unit sigma");
        let mut data = Vec::with_capacity(tokens * hidden);
        for _ in 0..tokens {
            let b = self.sample_scale(&mut rng);
            let lap = Laplace::new(0.0, b).map_err(NnError::Tensor)?;
            // Per-token jitter around the class direction: tokens are
            // different words carrying the same meaning, so their signal
            // directions agree on average but differ individually —
            // which also decorrelates quantization rounding across
            // tokens, as it is in real data.
            let jitter: Vec<f64> = gauss.sample_vec(&mut rng, hidden);
            let jnorm = jitter.iter().map(|v| v * v).sum::<f64>().sqrt().max(1e-9);
            for (t, j) in template.iter().zip(&jitter) {
                let noise = lap.sample(&mut rng);
                let dir = t + 0.6 * j / jnorm;
                data.push((noise + amplitude * b * dir * (hidden as f64).sqrt()) as f32);
            }
        }
        Ok(Tensor::from_vec(vec![tokens, hidden], data)?)
    }

    /// Samples the `(abs_max, mean_abs)` statistics of one token of
    /// width `k` without materialising its values.
    ///
    /// For `Y ~ Laplace(0, b)`, `|Y| ~ Exp(1/b)`; the max of `k` i.i.d.
    /// exponentials is `b·(ln k + G)` with `G` standard Gumbel, and the
    /// sample mean of `|Y|` concentrates around `b` with relative
    /// deviation `1/√k`.
    pub fn sample_row_stats(&self, k: usize, rng: &mut DriftRng) -> (f64, f64) {
        let b = self.sample_scale(rng);
        let u: f64 = rng.gen::<f64>().clamp(1e-12, 1.0 - 1e-12);
        let gumbel = -(-u.ln()).ln();
        let abs_max = (b * ((k as f64).ln() + gumbel)).max(b * 0.5);
        let noise = drift_tensor::dist::Gaussian::new(0.0, 1.0 / (k as f64).sqrt())
            .expect("positive sigma");
        let mean_abs = (b * (1.0 + noise.sample(rng))).clamp(b * 0.1, abs_max);
        (abs_max, mean_abs)
    }

    /// Per-row statistics for an `m × k` activation matrix, as
    /// [`SummaryStats`] realising the sampled `(abs_max, mean_abs)`
    /// exactly (see [`stats_with`]).
    pub fn row_stats(&self, m: usize, k: usize, seed: u64) -> Vec<SummaryStats> {
        let mut rng = seeded(derive_seed(seed, "row-stats"));
        (0..m)
            .map(|_| {
                let (abs_max, mean_abs) = self.sample_row_stats(k, &mut rng);
                stats_with(abs_max, mean_abs)
            })
            .collect()
    }
}

/// The deterministic unit template vector of a class (shared between
/// [`TokenProfile::generate_classified`] and matched classifier heads:
/// a trained classifier reads exactly the class directions the data
/// carries).
pub fn class_template(class: usize, hidden: usize) -> Vec<f64> {
    let mut trng = seeded(derive_seed(0x0C1A_55E5, &format!("class-{class}-{hidden}")));
    let gauss = drift_tensor::dist::Gaussian::new(0.0, 1.0).expect("unit sigma");
    let raw: Vec<f64> = gauss.sample_vec(&mut trng, hidden);
    let norm = raw.iter().map(|v| v * v).sum::<f64>().sqrt().max(1e-9);
    raw.into_iter().map(|v| v / norm).collect()
}

/// Builds a [`SummaryStats`] whose `abs_max()` and `mean_abs()` equal
/// the given targets exactly (requires `0 < mean_abs <= abs_max`), by
/// pushing a small symmetric multiset: one `±abs_max` pair plus `n-1`
/// pairs at the value that lands the mean.
///
/// # Panics
///
/// Panics when `mean_abs <= 0`, `abs_max <= 0`, or
/// `mean_abs > abs_max` — these are generator bugs, not runtime
/// conditions.
pub fn stats_with(abs_max: f64, mean_abs: f64) -> SummaryStats {
    assert!(
        abs_max > 0.0 && mean_abs > 0.0 && mean_abs <= abs_max,
        "invalid stats targets: abs_max={abs_max}, mean_abs={mean_abs}"
    );
    // Choose n so the filler value is non-negative:
    // (abs_max + (n-1)·x) / n = mean_abs  ⇒  x = (n·mean_abs - abs_max)/(n-1).
    let n = ((abs_max / mean_abs).ceil() as usize + 1).max(2);
    let x = (n as f64 * mean_abs - abs_max) / (n as f64 - 1.0);
    let mut stats = SummaryStats::new();
    stats.push(abs_max as f32);
    stats.push(-(abs_max as f32));
    for _ in 0..n - 1 {
        stats.push(x as f32);
        stats.push(-(x as f32));
    }
    stats
}

/// Per-row statistics for a CNN layer's im2col matrix, with *spatial
/// clustering*: the `m` rows are the raster-ordered output positions of
/// an (approximately square) feature map, and one rectangular
/// high-amplitude object region covers `object_fraction` of each edge.
/// This is the structure DRQ's region sensitivity exploits — and the
/// reason DRQ's variable-speed array sees few precision transitions on
/// CNNs (high rows arrive in runs) but many on token-interleaved
/// transformers.
pub fn cnn_row_stats(m: usize, k: usize, seed: u64) -> Vec<SummaryStats> {
    let mut rng = seeded(derive_seed(seed, "cnn-rows"));
    let width = (m as f64).sqrt().ceil() as usize;
    let object_fraction = 0.4;
    let span = ((width as f64 * object_fraction) as usize).max(1);
    let y0 = if width > span {
        rng.gen_range(0..width - span)
    } else {
        0
    };
    let x0 = if width > span {
        rng.gen_range(0..width - span)
    } else {
        0
    };
    let background = TokenProfile {
        base_scale: 0.08,
        scale_sigma: 0.45,
        outlier_fraction: 0.0,
        outlier_gain: 1.0,
    };
    let object = TokenProfile {
        base_scale: 0.6,
        scale_sigma: 0.3,
        outlier_fraction: 0.0,
        outlier_gain: 1.0,
    };
    (0..m)
        .map(|row| {
            let (y, x) = (row / width, row % width);
            let inside = y >= y0 && y < y0 + span && x >= x0 && x < x0 + span;
            let profile = if inside { &object } else { &background };
            let (abs_max, mean_abs) = profile.sample_row_stats(k, &mut rng);
            stats_with(abs_max, mean_abs)
        })
        .collect()
}

/// Synthetic image generator for CNN inputs: a low-amplitude Laplace
/// background with one high-amplitude object region — the structure
/// DRQ's region sensitivity assumes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ImageProfile {
    /// Background Laplace scale.
    pub background_scale: f64,
    /// Object-region Laplace scale.
    pub object_scale: f64,
    /// Object size as a fraction of each spatial edge.
    pub object_fraction: f64,
}

impl ImageProfile {
    /// A natural-image-like default: the object is ~8× the background
    /// amplitude and covers ~40% of each edge.
    pub fn natural() -> Self {
        ImageProfile {
            background_scale: 0.08,
            object_scale: 0.6,
            object_fraction: 0.4,
        }
    }

    /// Generates a `[channels, h, w]` image.
    ///
    /// # Errors
    ///
    /// Returns a tensor error for zero dimensions.
    pub fn generate(&self, channels: usize, h: usize, w: usize, seed: u64) -> Result<Tensor> {
        let mut rng = seeded(derive_seed(seed, "image-profile"));
        let bg = Laplace::new(0.0, self.background_scale).map_err(NnError::Tensor)?;
        let obj = Laplace::new(0.0, self.object_scale).map_err(NnError::Tensor)?;
        let oh = ((h as f64 * self.object_fraction) as usize).max(1);
        let ow = ((w as f64 * self.object_fraction) as usize).max(1);
        let oy = rng.gen_range(0..=h - oh.min(h));
        let ox = rng.gen_range(0..=w - ow.min(w));
        let mut data = Vec::with_capacity(channels * h * w);
        for _ in 0..channels {
            for y in 0..h {
                for x in 0..w {
                    let inside = y >= oy && y < oy + oh && x >= ox && x < ox + ow;
                    let v = if inside {
                        obj.sample(&mut rng)
                    } else {
                        bg.sample(&mut rng)
                    };
                    data.push(v as f32);
                }
            }
        }
        Ok(Tensor::from_vec(vec![channels, h, w], data)?)
    }
}

/// A Gaussian weight matrix `[rows, cols]` with Xavier-style standard
/// deviation `sqrt(2 / (rows + cols))`.
///
/// # Errors
///
/// Returns a tensor error for zero dimensions.
pub fn xavier_weights(rows: usize, cols: usize, seed: u64) -> Result<Tensor> {
    let std = (2.0 / (rows + cols) as f64).sqrt();
    let gauss = drift_tensor::dist::Gaussian::new(0.0, std).map_err(NnError::Tensor)?;
    let mut rng = seeded(derive_seed(seed, "xavier"));
    let data = gauss.sample_f32(&mut rng, rows * cols);
    Ok(Tensor::from_vec(vec![rows, cols], data)?)
}

/// Per-column weight statistics for a `k × n` weight matrix whose
/// columns (output channels) have log-normally dispersed scales —
/// driving the static per-sub-tensor weight precision profile.
pub fn weight_column_stats(n: usize, k: usize, sigma: f64, seed: u64) -> Vec<SummaryStats> {
    let mut rng = seeded(derive_seed(seed, "weight-cols"));
    let profile = TokenProfile {
        base_scale: 0.05,
        scale_sigma: sigma,
        outlier_fraction: 0.0,
        outlier_gain: 1.0,
    };
    (0..n)
        .map(|_| {
            let (abs_max, mean_abs) = profile.sample_row_stats(k, &mut rng);
            stats_with(abs_max, mean_abs)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use drift_tensor::subtensor::SubTensorScheme;

    #[test]
    fn stats_with_realises_targets_exactly() {
        for (a, m) in [(1.0, 0.5), (10.0, 0.3), (0.02, 0.02), (5.0, 0.01)] {
            let s = stats_with(a, m);
            assert!((s.abs_max() - a).abs() < 1e-6, "abs_max for ({a}, {m})");
            assert!(
                (s.mean_abs() - m).abs() / m < 1e-5,
                "mean_abs for ({a}, {m}): {}",
                s.mean_abs()
            );
            assert!(s.mean().abs() < 1e-9);
        }
    }

    #[test]
    #[should_panic(expected = "invalid stats targets")]
    fn stats_with_rejects_mean_above_max() {
        let _ = stats_with(1.0, 2.0);
    }

    #[test]
    fn token_tensor_has_dispersed_scales() {
        let t = TokenProfile::bert().generate(64, 128, 42).unwrap();
        let views = SubTensorScheme::token(128).partition(t.shape()).unwrap();
        let mut scales: Vec<f64> = views
            .iter()
            .map(|v| SummaryStats::from_slice(t.subtensor(v).unwrap()).mean_abs())
            .collect();
        scales.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let ratio = scales[scales.len() - 1] / scales[0].max(1e-12);
        assert!(ratio > 10.0, "BERT token scale spread only {ratio}");
    }

    #[test]
    fn cnn_profile_is_more_homogeneous_than_llm() {
        let spread = |p: TokenProfile| {
            let t = p.generate(128, 64, 7).unwrap();
            let views = SubTensorScheme::token(64).partition(t.shape()).unwrap();
            let scales: Vec<f64> = views
                .iter()
                .map(|v| SummaryStats::from_slice(t.subtensor(v).unwrap()).mean_abs())
                .collect();
            let max = scales.iter().cloned().fold(0.0f64, f64::max);
            let min = scales.iter().cloned().fold(f64::INFINITY, f64::min);
            max / min.max(1e-12)
        };
        assert!(spread(TokenProfile::llm()) > spread(TokenProfile::cnn()));
    }

    #[test]
    fn generated_tokens_are_laplace() {
        let t = TokenProfile::vit().generate(8, 512, 3).unwrap();
        let views = SubTensorScheme::token(512).partition(t.shape()).unwrap();
        for v in views.iter().take(4) {
            let vals: Vec<f64> = t
                .subtensor(v)
                .unwrap()
                .iter()
                .map(|&x| f64::from(x))
                .collect();
            let (_, d) = drift_tensor::dist::laplace_fit_ks(&vals).unwrap();
            assert!(d < 0.1, "KS {d} too large for a Laplace token");
        }
    }

    #[test]
    fn row_stats_scale_with_k() {
        let p = TokenProfile::cnn();
        let narrow = p.row_stats(256, 16, 5);
        let wide = p.row_stats(256, 4096, 5);
        let avg_ratio = |rows: &[SummaryStats]| {
            rows.iter().map(|s| s.abs_max() / s.mean_abs()).sum::<f64>() / rows.len() as f64
        };
        // Wider rows have larger max-to-mean ratios (ln k growth).
        assert!(avg_ratio(&wide) > avg_ratio(&narrow));
    }

    #[test]
    fn image_has_hot_object_region() {
        let img = ImageProfile::natural().generate(3, 32, 32, 9).unwrap();
        let views = SubTensorScheme::region(8, 8)
            .partition(img.shape())
            .unwrap();
        let means: Vec<f64> = views
            .iter()
            .map(|v| SummaryStats::from_slice(img.subtensor(v).unwrap()).mean_abs())
            .collect();
        let max = means.iter().cloned().fold(0.0f64, f64::max);
        let min = means.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(
            max / min > 3.0,
            "object region not distinguishable: {max} / {min}"
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let a = TokenProfile::bert().generate(8, 16, 1).unwrap();
        let b = TokenProfile::bert().generate(8, 16, 1).unwrap();
        assert_eq!(a, b);
        let c = TokenProfile::bert().generate(8, 16, 2).unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn xavier_weights_have_expected_std() {
        let w = xavier_weights(256, 256, 4).unwrap();
        let stats = SummaryStats::from_slice(w.as_slice());
        let expected = (2.0 / 512.0f64).sqrt();
        assert!((stats.std_dev() - expected).abs() / expected < 0.1);
    }

    #[test]
    fn weight_column_stats_count_and_validity() {
        let cols = weight_column_stats(64, 1024, 0.5, 3);
        assert_eq!(cols.len(), 64);
        for c in &cols {
            assert!(c.abs_max() >= c.mean_abs());
            assert!(c.mean_abs() > 0.0);
        }
    }
}
