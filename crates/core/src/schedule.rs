//! The balanced online scheduler (paper Section 4.3).
//!
//! The share of each precision pair is unknown before runtime, so after
//! the precision selector finishes a layer, the scheduler sizes the four
//! systolic arrays to minimise the maximum per-array latency:
//!
//! ```text
//! min over (R, C) of max { T_hh, T_hl, T_lh, T_ll }      (Eq. 8)
//! ```
//!
//! with each `T` from the analytical model of Eq. 7. Because activation
//! and weight precisions are independent, the search is separable
//! (paper: "greedily adjust R and C separately"): for each vertical cut
//! (weight split), the best horizontal cut on each side is found
//! independently, giving an `O(C·R)` sweep that the controller can
//! evaluate between layers.

use crate::arch::FabricPartition;
use crate::{CoreError, Result};
use drift_accel::gemm::{GemmShape, GemmWorkload, PrecisionQuadrant};
use drift_accel::systolic::{analytical_cycles, ArrayGeometry};
use drift_quant::precision::{Precision, PrecisionPair};
use serde::{Deserialize, Serialize};

/// A scheduling decision for one layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Schedule {
    /// The chosen fabric partition.
    pub partition: FabricPartition,
    /// Per-quadrant latencies in `(hh, hl, lh, ll)` order (0 for empty
    /// quadrants).
    pub latencies: [u64; 4],
    /// The maximum per-quadrant latency — the layer's compute time.
    pub makespan: u64,
}

/// Everything the balanced scheduler's answer depends on, as a hashable
/// cache key.
///
/// [`balanced_schedule`] sees a workload only through its four quadrant
/// extents, and [`GemmWorkload::quadrants`] derives those solely from
/// the *counts* of high-precision rows and columns — *which* rows are
/// high never reaches the scheduler. Two workloads agreeing on shape,
/// counts, precisions, and fabric therefore share one [`Schedule`],
/// which is what makes memoising the `O(C·R)` Eq. 8 sweep across jobs
/// sound ([`solve`](ScheduleKey::solve) is the memoisable function).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ScheduleKey {
    /// The GEMM shape `(M, K, N)`.
    pub shape: GemmShape,
    /// Streamed rows at the high activation precision (`0..=m`).
    pub act_high: usize,
    /// Weight columns at the high weight precision (`0..=n`).
    pub weight_high: usize,
    /// The (high, low) activation precisions.
    pub act_precisions: (Precision, Precision),
    /// The (high, low) weight precisions.
    pub weight_precisions: (Precision, Precision),
    /// The fabric being partitioned.
    pub fabric: ArrayGeometry,
}

impl ScheduleKey {
    /// The key for scheduling `workload` on `fabric`.
    pub fn for_workload(workload: &GemmWorkload, fabric: ArrayGeometry) -> Self {
        ScheduleKey {
            shape: workload.shape(),
            act_high: workload.act_high().iter().filter(|&&h| h).count(),
            weight_high: workload.weight_high().iter().filter(|&&h| h).count(),
            act_precisions: workload.act_precisions(),
            weight_precisions: workload.weight_precisions(),
            fabric,
        }
    }

    /// Rebuilds the `(hh, hl, lh, ll)` quadrants this key abstracts.
    /// Identical to [`GemmWorkload::quadrants`] for any workload the key
    /// was derived from.
    pub fn quadrants(&self) -> [PrecisionQuadrant; 4] {
        let m_h = self.act_high.min(self.shape.m);
        let m_l = self.shape.m - m_h;
        let n_h = self.weight_high.min(self.shape.n);
        let n_l = self.shape.n - n_h;
        let (ah, al) = self.act_precisions;
        let (wh, wl) = self.weight_precisions;
        let k = self.shape.k;
        [
            PrecisionQuadrant {
                pair: PrecisionPair::new(ah, wh),
                rows: m_h,
                cols: n_h,
                k,
            },
            PrecisionQuadrant {
                pair: PrecisionPair::new(ah, wl),
                rows: m_h,
                cols: n_l,
                k,
            },
            PrecisionQuadrant {
                pair: PrecisionPair::new(al, wh),
                rows: m_l,
                cols: n_h,
                k,
            },
            PrecisionQuadrant {
                pair: PrecisionPair::new(al, wl),
                rows: m_l,
                cols: n_l,
                k,
            },
        ]
    }

    /// Runs the balanced scheduler (Eq. 8) for this key. Pure in the
    /// key: equal keys always produce equal schedules, so the result
    /// may be cached and shared.
    ///
    /// # Errors
    ///
    /// Propagates [`balanced_schedule`] errors.
    pub fn solve(&self) -> Result<Schedule> {
        balanced_schedule(self.fabric, &self.quadrants())
    }
}

/// Size in bytes of one encoded `(ScheduleKey, Schedule)` entry (see
/// [`encode_entry`]).
pub const ENTRY_BYTES: usize = 124;

/// Appends the canonical binary encoding of one `(key, schedule)` pair
/// to `out`: exactly [`ENTRY_BYTES`] bytes, every `usize` widened to
/// little-endian `u64` and every precision stored as its raw bit width.
/// This is the on-disk record payload of the `drift-store` log; the
/// layout is specified in `docs/PERSISTENCE.md` and round-trips through
/// [`decode_entry`].
pub fn encode_entry(key: &ScheduleKey, schedule: &Schedule, out: &mut Vec<u8>) {
    let mut u64s = |v: usize| out.extend_from_slice(&(v as u64).to_le_bytes());
    u64s(key.shape.m);
    u64s(key.shape.k);
    u64s(key.shape.n);
    u64s(key.act_high);
    u64s(key.weight_high);
    out.push(key.act_precisions.0.bits());
    out.push(key.act_precisions.1.bits());
    out.push(key.weight_precisions.0.bits());
    out.push(key.weight_precisions.1.bits());
    let mut u64s = |v: usize| out.extend_from_slice(&(v as u64).to_le_bytes());
    u64s(key.fabric.rows);
    u64s(key.fabric.cols);
    u64s(schedule.partition.col_split());
    u64s(schedule.partition.rows_left());
    u64s(schedule.partition.rows_right());
    for lat in schedule.latencies {
        out.extend_from_slice(&lat.to_le_bytes());
    }
    out.extend_from_slice(&schedule.makespan.to_le_bytes());
}

/// Decodes one entry produced by [`encode_entry`], re-validating every
/// field through the same constructors a live solve uses (`GemmShape`,
/// `Precision`, `ArrayGeometry`, `FabricPartition`), so a decoded entry
/// is exactly as trustworthy as a freshly solved one.
///
/// # Errors
///
/// Returns [`CoreError::InvalidParameter`] when the payload has the
/// wrong length or any field fails validation (zero extents, bad
/// precision bits, partition cuts exceeding the fabric, or a partition
/// fabric disagreeing with the key's).
pub fn decode_entry(bytes: &[u8]) -> Result<(ScheduleKey, Schedule)> {
    let bad = |detail: String| CoreError::InvalidParameter {
        name: "schedule entry",
        detail,
    };
    if bytes.len() != ENTRY_BYTES {
        return Err(bad(format!(
            "expected {ENTRY_BYTES} bytes, got {}",
            bytes.len()
        )));
    }
    let mut pos = 0usize;
    let mut next_u64 = || {
        let v = u64::from_le_bytes(bytes[pos..pos + 8].try_into().expect("8-byte slice"));
        pos += 8;
        v
    };
    let to_usize = |v: u64| -> Result<usize> {
        usize::try_from(v).map_err(|_| bad(format!("value {v} exceeds usize")))
    };
    let (m, k, n) = (next_u64(), next_u64(), next_u64());
    let (act_high, weight_high) = (next_u64(), next_u64());
    let prec_bits = [bytes[pos], bytes[pos + 1], bytes[pos + 2], bytes[pos + 3]];
    pos += 4;
    let mut next_u64 = || {
        let v = u64::from_le_bytes(bytes[pos..pos + 8].try_into().expect("8-byte slice"));
        pos += 8;
        v
    };
    let (rows, cols) = (next_u64(), next_u64());
    let (col_split, rows_left, rows_right) = (next_u64(), next_u64(), next_u64());
    let latencies = [next_u64(), next_u64(), next_u64(), next_u64()];
    let makespan = next_u64();
    debug_assert_eq!(pos, ENTRY_BYTES);

    let shape = GemmShape::new(to_usize(m)?, to_usize(k)?, to_usize(n)?)
        .map_err(|e| bad(format!("bad shape: {e}")))?;
    let precision = |bits: u8| Precision::new(bits).map_err(|e| bad(format!("bad precision: {e}")));
    let fabric = ArrayGeometry::new(to_usize(rows)?, to_usize(cols)?)
        .map_err(|e| bad(format!("bad fabric: {e}")))?;
    let key = ScheduleKey {
        shape,
        act_high: to_usize(act_high)?,
        weight_high: to_usize(weight_high)?,
        act_precisions: (precision(prec_bits[0])?, precision(prec_bits[1])?),
        weight_precisions: (precision(prec_bits[2])?, precision(prec_bits[3])?),
        fabric,
    };
    let partition = FabricPartition::new(
        fabric,
        to_usize(col_split)?,
        to_usize(rows_left)?,
        to_usize(rows_right)?,
    )?;
    let schedule = Schedule {
        partition,
        latencies,
        makespan,
    };
    Ok((key, schedule))
}

/// The latency of one quadrant on one geometry (Eq. 7), `0` for an
/// empty quadrant and `None` when the quadrant has work but no units.
pub fn quadrant_latency(q: &PrecisionQuadrant, geo: Option<ArrayGeometry>) -> Option<u64> {
    match (q.shape(), geo) {
        (None, _) => Some(0),
        (Some(_), None) => None,
        (Some(shape), Some(geo)) => Some(analytical_cycles(
            shape,
            q.pair.activation,
            q.pair.weight,
            geo,
        )),
    }
}

/// Best horizontal cut for one column side: distributes `rows` fabric
/// rows between a top and a bottom quadrant sharing `cols` columns.
/// Returns `(rows_top, max_latency)`, or `None` when the side has work
/// but no columns.
fn balance_side(
    top: &PrecisionQuadrant,
    bottom: &PrecisionQuadrant,
    rows: usize,
    cols: usize,
) -> Option<(usize, u64)> {
    let make_geo = |r: usize| {
        if r == 0 || cols == 0 {
            None
        } else {
            Some(ArrayGeometry::new(r, cols).expect("non-zero extents"))
        }
    };
    let mut best: Option<(usize, u64)> = None;
    for rows_top in 0..=rows {
        let t_top = quadrant_latency(top, make_geo(rows_top));
        let t_bottom = quadrant_latency(bottom, make_geo(rows - rows_top));
        if let (Some(a), Some(b)) = (t_top, t_bottom) {
            let m = a.max(b);
            if best.is_none_or(|(_, cur)| m < cur) {
                best = Some((rows_top, m));
            }
        }
    }
    best
}

/// The balanced online schedule of Eq. 8: sweeps the vertical (weight)
/// cut, balancing each side's horizontal (activation) cut
/// independently.
///
/// # Errors
///
/// Returns [`CoreError::InvalidPartition`] only in the impossible case
/// that no feasible partition exists (all quadrants non-empty requires
/// `fabric.rows >= 2` and `fabric.cols >= 2`).
pub fn balanced_schedule(
    fabric: ArrayGeometry,
    quadrants: &[PrecisionQuadrant; 4],
) -> Result<Schedule> {
    let [hh, hl, lh, ll] = quadrants;
    let mut best: Option<Schedule> = None;
    for col_split in 0..=fabric.cols {
        let left = balance_side(hh, lh, fabric.rows, col_split);
        let right = balance_side(hl, ll, fabric.rows, fabric.cols - col_split);
        let (Some((rows_left, m_left)), Some((rows_right, m_right))) = (left, right) else {
            continue;
        };
        let makespan = m_left.max(m_right);
        if best.as_ref().is_none_or(|b| makespan < b.makespan) {
            let partition = FabricPartition::new(fabric, col_split, rows_left, rows_right)?;
            let geos = partition.geometries();
            let latencies = [
                quadrant_latency(hh, geos[0]).expect("feasible by construction"),
                quadrant_latency(hl, geos[1]).expect("feasible by construction"),
                quadrant_latency(lh, geos[2]).expect("feasible by construction"),
                quadrant_latency(ll, geos[3]).expect("feasible by construction"),
            ];
            best = Some(Schedule {
                partition,
                latencies,
                makespan,
            });
        }
    }
    best.ok_or_else(|| CoreError::InvalidPartition {
        detail: format!(
            "no feasible partition of {}x{} for the given quadrants",
            fabric.rows, fabric.cols
        ),
    })
}

/// The static ablation baseline: an even 2×2 split regardless of the
/// precision mix.
///
/// # Errors
///
/// Returns [`CoreError::InvalidPartition`] when a non-empty quadrant
/// lands on a zero-area region (fabric smaller than 2×2).
pub fn equal_schedule(
    fabric: ArrayGeometry,
    quadrants: &[PrecisionQuadrant; 4],
) -> Result<Schedule> {
    let partition =
        FabricPartition::new(fabric, fabric.cols / 2, fabric.rows / 2, fabric.rows / 2)?;
    let geos = partition.geometries();
    let mut latencies = [0u64; 4];
    for (i, (q, geo)) in quadrants.iter().zip(geos).enumerate() {
        latencies[i] = quadrant_latency(q, geo).ok_or_else(|| CoreError::InvalidPartition {
            detail: format!("quadrant {i} has work but no units in the equal split"),
        })?;
    }
    let makespan = latencies.into_iter().max().expect("four entries");
    Ok(Schedule {
        partition,
        latencies,
        makespan,
    })
}

/// A lower bound on any schedule's makespan: perfect work balance over
/// all units. A BitGroup computes `4 × 16 = 64` bit-products per cycle,
/// so a quadrant needs `MACs · pa · pw / 64` BG-cycles.
pub fn oracle_lower_bound(fabric: ArrayGeometry, quadrants: &[PrecisionQuadrant; 4]) -> f64 {
    let bit_products: f64 = quadrants
        .iter()
        .map(|q| {
            q.macs() as f64 * f64::from(q.pair.activation.bits()) * f64::from(q.pair.weight.bits())
        })
        .sum();
    bit_products / 64.0 / fabric.units() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arch::paper_fabric;
    use drift_accel::gemm::{GemmShape, GemmWorkload};

    fn quadrants_for(
        m: usize,
        n: usize,
        act_high: f64,
        weight_high: f64,
    ) -> [PrecisionQuadrant; 4] {
        let shape = GemmShape::new(m, 512, n).unwrap();
        let ah = (m as f64 * act_high) as usize;
        let wh = (n as f64 * weight_high) as usize;
        let w = GemmWorkload::new(
            "t",
            shape,
            (0..m).map(|i| i < ah).collect(),
            (0..n).map(|j| j < wh).collect(),
        )
        .unwrap();
        w.quadrants()
    }

    #[test]
    fn uniform_workload_gets_whole_fabric() {
        let quads = quadrants_for(256, 256, 1.0, 1.0); // all hh
        let s = balanced_schedule(paper_fabric(), &quads).unwrap();
        // Only the hh quadrant has work; the partition gives it nearly
        // everything (ceiling slack in Eq. 7 can make a slightly
        // narrower array equally good or better).
        let geos = s.partition.geometries();
        assert!(geos[0].unwrap().units() >= 700);
        assert_eq!(s.latencies[1], 0);
        assert_eq!(s.latencies[2], 0);
        assert_eq!(s.latencies[3], 0);
        // And it is never worse than simply using the whole fabric.
        let whole = quadrant_latency(&quads[0], Some(paper_fabric())).unwrap();
        assert!(s.makespan <= whole);
    }

    #[test]
    fn balanced_beats_or_matches_equal_split() {
        for (fa, fw) in [(0.5, 0.5), (0.15, 0.15), (0.4, 0.1), (0.9, 0.2)] {
            let quads = quadrants_for(512, 512, fa, fw);
            let balanced = balanced_schedule(paper_fabric(), &quads).unwrap();
            let equal = equal_schedule(paper_fabric(), &quads).unwrap();
            assert!(
                balanced.makespan <= equal.makespan,
                "fa={fa} fw={fw}: balanced {} > equal {}",
                balanced.makespan,
                equal.makespan
            );
        }
    }

    #[test]
    fn makespan_respects_oracle_bound() {
        for (fa, fw) in [(0.5, 0.5), (0.15, 0.15), (0.8, 0.3)] {
            let quads = quadrants_for(768, 768, fa, fw);
            let s = balanced_schedule(paper_fabric(), &quads).unwrap();
            let lb = oracle_lower_bound(paper_fabric(), &quads);
            assert!(
                s.makespan as f64 >= lb,
                "fa={fa} fw={fw}: makespan {} below bound {lb}",
                s.makespan
            );
            // And it should not be wildly above: pass/edge overheads only.
            assert!(
                (s.makespan as f64) < lb * 4.0 + 10_000.0,
                "fa={fa} fw={fw}: makespan {} too far above bound {lb}",
                s.makespan
            );
        }
    }

    #[test]
    fn more_low_precision_means_faster_layers() {
        let slow = balanced_schedule(paper_fabric(), &quadrants_for(512, 512, 1.0, 1.0))
            .unwrap()
            .makespan;
        let mid = balanced_schedule(paper_fabric(), &quadrants_for(512, 512, 0.5, 0.5))
            .unwrap()
            .makespan;
        let fast = balanced_schedule(paper_fabric(), &quadrants_for(512, 512, 0.1, 0.1))
            .unwrap()
            .makespan;
        assert!(slow > mid, "slow {slow} !> mid {mid}");
        assert!(mid > fast, "mid {mid} !> fast {fast}");
    }

    #[test]
    fn latencies_are_reported_per_quadrant() {
        let quads = quadrants_for(512, 512, 0.3, 0.3);
        let s = balanced_schedule(paper_fabric(), &quads).unwrap();
        assert_eq!(s.makespan, s.latencies.into_iter().max().unwrap());
        assert!(s.latencies.iter().all(|&l| l > 0));
    }

    #[test]
    fn quadrant_latency_edge_cases() {
        let quads = quadrants_for(64, 64, 0.0, 0.0);
        // hh is empty: zero latency even with no geometry.
        assert_eq!(quadrant_latency(&quads[0], None), Some(0));
        // ll has work: no geometry is infeasible.
        assert_eq!(quadrant_latency(&quads[3], None), None);
    }

    #[test]
    fn schedule_key_reproduces_workload_quadrants() {
        let shape = GemmShape::new(40, 96, 24).unwrap();
        // Scattered (non-prefix) high rows/columns: only counts matter.
        let w = GemmWorkload::new(
            "scatter",
            shape,
            (0..40).map(|i| i % 3 == 0).collect(),
            (0..24).map(|j| j % 5 == 1).collect(),
        )
        .unwrap();
        let key = ScheduleKey::for_workload(&w, paper_fabric());
        assert_eq!(key.act_high, 14);
        assert_eq!(key.weight_high, 5);
        assert_eq!(key.quadrants(), w.quadrants());
    }

    #[test]
    fn schedule_key_solve_matches_direct_scheduling() {
        for (fa, fw) in [(0.0, 0.0), (0.3, 0.7), (1.0, 1.0)] {
            let quads = quadrants_for(256, 192, fa, fw);
            let direct = balanced_schedule(paper_fabric(), &quads).unwrap();
            let shape = GemmShape::new(256, 512, 192).unwrap();
            let key = ScheduleKey {
                shape,
                act_high: quads[0].rows,
                weight_high: quads[0].cols,
                act_precisions: (quads[0].pair.activation, quads[3].pair.activation),
                weight_precisions: (quads[0].pair.weight, quads[3].pair.weight),
                fabric: paper_fabric(),
            };
            assert_eq!(key.solve().unwrap(), direct, "fa={fa} fw={fw}");
        }
    }

    #[test]
    fn tiny_fabric_still_schedules() {
        let fabric = ArrayGeometry::new(2, 2).unwrap();
        let quads = quadrants_for(16, 16, 0.5, 0.5);
        let s = balanced_schedule(fabric, &quads).unwrap();
        assert!(s.makespan > 0);
        assert_eq!(s.partition.total_units(), 4);
    }
}
