//! The Drift accelerator: fabric + scheduler + memory subsystem behind
//! the common [`Accelerator`] trait.
//!
//! Per layer, execution proceeds as the paper describes:
//!
//! 1. the precision selector has already annotated the workload (its
//!    decisions arrive as the [`GemmWorkload`] precision maps, tracked
//!    by the index buffer);
//! 2. the scheduler solves Eq. 8, partitioning the fabric into four
//!    single-precision systolic arrays sized to the (hh, hl, lh, ll)
//!    work mix;
//! 3. each array streams its tile stall-free (occupancy 1 by
//!    construction); the layer's compute time is the slowest array plus
//!    one reconfiguration;
//! 4. the shared memory subsystem accounts DRAM/buffer traffic with
//!    per-sub-tensor byte widths.

use crate::arch::controller::PrecisionController;
use crate::arch::dispatch::DispatchPlan;
use crate::arch::paper_fabric;
use crate::schedule::{balanced_schedule, equal_schedule, Schedule};
use drift_accel::accelerator::{finish_report, Accelerator, ExecReport, MemorySubsystem};
use drift_accel::energy::EnergyModel;
use drift_accel::gemm::GemmWorkload;
use drift_accel::systolic::{pass_count, simulate_stream, ArrayGeometry, BG_WEIGHT_BIT_LANES};
use drift_accel::{AccelError, Result};
use drift_obs::{span, Recorder};
use drift_quant::convert::ConversionChoice;
use drift_quant::policy::Decision;
use drift_quant::precision::Precision;
use serde::{Deserialize, Serialize};

/// The low-precision decision the dispatcher records for converted
/// rows: the dispatcher only needs the precision flag, so the
/// range-preserving split stands in for the selector's exact choice.
fn decision_for(hp: Precision, lp: Precision) -> Decision {
    match ConversionChoice::new(hp, lp, 0, hp.bits().saturating_sub(lp.bits())) {
        Ok(choice) => Decision::Convert(choice),
        Err(_) => Decision::Keep,
    }
}

/// Scheduling strategy for the fabric partition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SchedulerKind {
    /// The paper's balanced online scheduler (Eq. 8).
    Balanced,
    /// A static equal 2×2 split (ablation A1).
    EqualStatic,
}

/// The Drift accelerator model.
#[derive(Debug)]
pub struct DriftAccelerator {
    fabric: ArrayGeometry,
    scheduler: SchedulerKind,
    controller: PrecisionController,
    energy: EnergyModel,
    memory: MemorySubsystem,
    last_schedule: Option<Schedule>,
    recorder: Recorder,
}

impl DriftAccelerator {
    /// The paper configuration: a 24×33 fabric (792 BitGroups) with the
    /// balanced scheduler.
    ///
    /// # Errors
    ///
    /// Propagates memory-subsystem construction errors.
    pub fn paper_config() -> Result<Self> {
        DriftAccelerator::new(paper_fabric(), SchedulerKind::Balanced)
    }

    /// Creates a custom configuration.
    ///
    /// # Errors
    ///
    /// Returns [`AccelError::InvalidConfig`] for an empty fabric.
    pub fn new(fabric: ArrayGeometry, scheduler: SchedulerKind) -> Result<Self> {
        if fabric.units() == 0 {
            return Err(AccelError::InvalidConfig {
                name: "fabric",
                detail: "empty fabric".to_string(),
            });
        }
        Ok(DriftAccelerator {
            fabric,
            scheduler,
            controller: PrecisionController::drift_default(),
            energy: EnergyModel::default(),
            memory: MemorySubsystem::new()?,
            last_schedule: None,
            recorder: Recorder::disabled(),
        })
    }

    /// Routes this simulator's metrics — per-array busy/idle cycles,
    /// layer cycle totals, reconfigurations, per-stage energy, and the
    /// memory subsystem's DRAM counters — to `recorder`.
    ///
    /// Recording is strictly write-only: reports are bit-identical with
    /// the recorder enabled, disabled (the default), or replaced
    /// mid-run.
    pub fn set_recorder(&mut self, recorder: Recorder) {
        self.memory.set_recorder(recorder.clone());
        self.recorder = recorder;
    }

    /// The schedule chosen for the most recently executed layer
    /// (exposed for the Fig. 5 reproduction and the scheduler ablation).
    pub fn last_schedule(&self) -> Option<&Schedule> {
        self.last_schedule.as_ref()
    }

    /// Clears all cross-layer state: the controller's index buffer, the
    /// memory subsystem's allocator/row/counter state, and the
    /// remembered partition that drives reconfiguration elision.
    ///
    /// After a reset, the next `execute` behaves exactly like the first
    /// call on a freshly built accelerator — which is what lets a worker
    /// pool reuse one simulator per thread while keeping every job's
    /// report independent of which worker ran it (and of job order).
    pub fn reset(&mut self) {
        self.controller.reset();
        self.memory.reset();
        self.last_schedule = None;
    }

    /// Executes `workload` with a pre-computed `schedule`, skipping the
    /// `O(C·R)` Eq. 8 sweep. The schedule must come from
    /// [`ScheduleKey::solve`](crate::schedule::ScheduleKey::solve) (or
    /// [`balanced_schedule`]) for this workload's quadrant counts on
    /// this fabric — this is the consumer side of the schedule cache.
    ///
    /// # Errors
    ///
    /// Returns [`AccelError::InvalidConfig`] when the schedule's
    /// partition was cut from a different fabric, and propagates
    /// dispatch errors.
    pub fn execute_with_schedule(
        &mut self,
        workload: &GemmWorkload,
        schedule: Schedule,
    ) -> Result<ExecReport> {
        if schedule.partition.fabric() != self.fabric {
            return Err(AccelError::InvalidConfig {
                name: "schedule",
                detail: format!(
                    "schedule was cut from a {}x{} fabric, accelerator has {}x{}",
                    schedule.partition.fabric().rows,
                    schedule.partition.fabric().cols,
                    self.fabric.rows,
                    self.fabric.cols
                ),
            });
        }
        let plan = self.dispatch(workload)?;
        self.simulate(workload, &plan, schedule)
    }

    /// Records the workload's precision decisions in the index buffer
    /// and builds the four per-quadrant dispatch streams (Section 4.1).
    fn dispatch(&mut self, workload: &GemmWorkload) -> Result<DispatchPlan> {
        // If the layer exceeds the index buffer, hardware would process
        // it in index-buffer-sized chunks; the model falls back to
        // direct (workload-map) dispatch in that case.
        self.controller.reset();
        let fits = workload.shape().m as u64 * crate::arch::controller::INDEX_ENTRY_BITS
            <= self.controller.capacity_bits();
        let plan = if fits {
            let (hp, lp) = workload.act_precisions();
            for (i, &high) in workload.act_high().iter().enumerate() {
                let decision = if high {
                    Decision::Keep
                } else {
                    decision_for(hp, lp)
                };
                self.controller
                    .record(i, decision)
                    .map_err(|e| AccelError::InvalidConfig {
                        name: "index buffer",
                        detail: e.to_string(),
                    })?;
            }
            DispatchPlan::build(workload, Some(&self.controller))
        } else {
            DispatchPlan::build(workload, None)
        }
        .map_err(|e| AccelError::InvalidConfig {
            name: "dispatch",
            detail: e.to_string(),
        })?;
        debug_assert!(plan.is_consistent(workload.shape().m, workload.shape().n));
        Ok(plan)
    }

    /// Streams every quadrant of the dispatched workload under
    /// `schedule`, charges reconfiguration when the partition changed,
    /// and accounts memory traffic.
    fn simulate(
        &mut self,
        workload: &GemmWorkload,
        plan: &DispatchPlan,
        schedule: Schedule,
    ) -> Result<ExecReport> {
        let quadrants = workload.quadrants();
        debug_assert_eq!(
            plan.tile_extents(),
            [
                (quadrants[0].rows, quadrants[0].cols),
                (quadrants[1].rows, quadrants[1].cols),
                (quadrants[2].rows, quadrants[2].cols),
                (quadrants[3].rows, quadrants[3].cols),
            ]
        );

        // Stream each quadrant on its own array: occupancy 1 everywhere
        // (a split array serves exactly one precision pair), so the
        // stream simulator reports zero stalls.
        let geos = schedule.partition.geometries();
        let mut busy_bg_cycles = 0u64;
        let mut compute_cycles = 0u64;
        let mut act_reread_weighted = 0u64;
        let mut act_bytes_total = 0u64;
        let mut array_busy = [0u64; 4];
        let mut array_units = [0u64; 4];
        for (slot, (q, geo)) in quadrants.iter().zip(geos).enumerate() {
            let (Some(shape), Some(geo)) = (q.shape(), geo) else {
                continue;
            };
            array_units[slot] = geo.units() as u64;
            let passes = pass_count(shape, q.pair.activation, q.pair.weight, geo);
            let report = simulate_stream(&vec![1u32; shape.m], geo, passes);
            debug_assert_eq!(report.stall_cycles, 0);
            array_busy[slot] = report.busy_bg_cycles;
            busy_bg_cycles += report.busy_bg_cycles;
            compute_cycles = compute_cycles.max(report.total_cycles);

            // This quadrant's activations are re-read once per column
            // pass group.
            let n_passes = (u64::from(q.pair.weight.bits()) * shape.n as u64)
                .div_ceil(BG_WEIGHT_BIT_LANES * geo.cols as u64);
            let q_act_bytes =
                shape.m as u64 * (shape.k as u64 * u64::from(q.pair.activation.bits())).div_ceil(8);
            act_reread_weighted += q_act_bytes * n_passes;
            act_bytes_total += q_act_bytes;
        }
        // Reconfiguring the BG link directions costs one pipeline depth
        // — but only when the partition actually changes. Consecutive
        // layers with similar precision mixes keep the fabric as-is
        // (reconfiguration elision).
        let reconfigures = self
            .last_schedule
            .is_none_or(|prev| prev.partition != schedule.partition);
        if reconfigures {
            compute_cycles += schedule.partition.reconfig_cycles();
        }

        let act_reread = if act_bytes_total == 0 {
            1
        } else {
            act_reread_weighted.div_ceil(act_bytes_total).max(1)
        };
        let traffic = self.memory.workload_traffic(workload, act_reread);

        let core_pj = busy_bg_cycles as f64 * self.energy.e_bg_cycle_pj;
        self.last_schedule = Some(schedule);
        let report = finish_report(
            "drift",
            workload,
            compute_cycles,
            0,
            busy_bg_cycles,
            core_pj,
            traffic,
            self.fabric.units(),
            self.energy.static_pj_per_unit_cycle,
        );
        if self.recorder.is_enabled() {
            const ARRAYS: [&str; 4] = ["hh", "hl", "lh", "ll"];
            for (slot, name) in ARRAYS.iter().enumerate() {
                if array_units[slot] == 0 {
                    continue;
                }
                let span_cycles = array_units[slot] * compute_cycles;
                self.recorder.counter_add(
                    "drift_array_busy_cycles_total",
                    &[("array", name)],
                    array_busy[slot],
                );
                self.recorder.counter_add(
                    "drift_array_idle_cycles_total",
                    &[("array", name)],
                    span_cycles.saturating_sub(array_busy[slot]),
                );
            }
            self.recorder
                .counter_add("drift_compute_cycles_total", &[], report.compute_cycles);
            self.recorder
                .counter_add("drift_dram_cycles_total", &[], report.dram_cycles);
            self.recorder
                .counter_add("drift_layers_executed_total", &[], 1);
            if reconfigures {
                self.recorder
                    .counter_add("drift_reconfigurations_total", &[], 1);
            }
            self.recorder.fcounter_add(
                "drift_energy_picojoules_total",
                &[("stage", "core")],
                report.energy.core_pj,
            );
            self.recorder.fcounter_add(
                "drift_energy_picojoules_total",
                &[("stage", "static")],
                report.energy.static_pj,
            );
        }
        Ok(report)
    }

    /// The controller (precision selector + index buffer) model.
    pub fn controller(&self) -> &PrecisionController {
        &self.controller
    }

    /// The fabric geometry.
    pub fn fabric(&self) -> ArrayGeometry {
        self.fabric
    }
}

impl Accelerator for DriftAccelerator {
    fn name(&self) -> &str {
        "drift"
    }

    fn units(&self) -> usize {
        self.fabric.units()
    }

    fn execute(&mut self, workload: &GemmWorkload) -> Result<ExecReport> {
        // Per layer, the precision selector's decisions land in the
        // index buffer and the dispatcher builds the four per-quadrant
        // streams from it (Section 4.1); the scheduler then solves
        // Eq. 8 for the quadrant mix.
        let plan = self.dispatch(workload)?;
        let solve_start = self.recorder.is_enabled().then(std::time::Instant::now);
        let schedule = {
            let _solve = span!(self.recorder, "schedule_solve");
            match self.scheduler {
                SchedulerKind::Balanced => balanced_schedule(self.fabric, &workload.quadrants()),
                SchedulerKind::EqualStatic => equal_schedule(self.fabric, &workload.quadrants()),
            }
            .map_err(|e| AccelError::InvalidConfig {
                name: "schedule",
                detail: e.to_string(),
            })?
        };
        if let Some(start) = solve_start {
            self.recorder
                .counter_add("drift_schedule_solves_total", &[], 1);
            self.recorder.observe(
                "drift_schedule_solve_nanoseconds",
                &[],
                drift_obs::contract::SOLVE_NS_BUCKETS,
                start.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64,
            );
        }
        self.simulate(workload, &plan, schedule)
    }
}

// Workers in `drift-serve` move one simulator into each pool thread;
// keep that guaranteed at compile time.
const _: fn() = || {
    fn assert_send<T: Send>() {}
    assert_send::<DriftAccelerator>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use drift_accel::bitfusion::BitFusion;
    use drift_accel::drq::DrqAccelerator;
    use drift_accel::gemm::GemmShape;

    fn mixed_workload(m: usize, n: usize, fa: f64, fw: f64) -> GemmWorkload {
        let shape = GemmShape::new(m, 768, n).unwrap();
        let ah = (m as f64 * fa) as usize;
        let wh = (n as f64 * fw) as usize;
        GemmWorkload::new(
            "mixed",
            shape,
            (0..m).map(|i| i < ah).collect(),
            (0..n).map(|j| j < wh).collect(),
        )
        .unwrap()
    }

    #[test]
    fn drift_never_stalls() {
        let mut drift = DriftAccelerator::paper_config().unwrap();
        let w = mixed_workload(512, 512, 0.25, 0.25);
        let r = drift.execute(&w).unwrap();
        assert_eq!(r.stall_cycles, 0);
        assert!(drift.last_schedule().is_some());
    }

    #[test]
    fn drift_beats_bitfusion_int8_on_mostly_low_workloads() {
        let w = mixed_workload(1024, 1024, 0.15, 0.15);
        let mut drift = DriftAccelerator::paper_config().unwrap();
        let c_drift = drift.execute(&w).unwrap().compute_cycles;
        let mut bf = BitFusion::int8().unwrap();
        let hi = GemmWorkload::uniform("hi", w.shape(), false);
        let c_bf = bf.execute(&hi).unwrap().compute_cycles;
        let speedup = c_bf as f64 / c_drift as f64;
        assert!(
            speedup > 2.0 && speedup < 4.5,
            "speedup {speedup} out of the expected band"
        );
    }

    #[test]
    fn drift_beats_drq_on_the_same_workload() {
        let w = mixed_workload(1024, 1024, 0.15, 0.15);
        let mut drift = DriftAccelerator::paper_config().unwrap();
        let c_drift = drift.execute(&w).unwrap().compute_cycles;
        let mut drq = DrqAccelerator::paper_config().unwrap();
        let c_drq = drq.execute(&w).unwrap().compute_cycles;
        assert!(
            c_drq > c_drift,
            "drq {c_drq} should be slower than drift {c_drift}"
        );
    }

    #[test]
    fn uniform_high_workload_degrades_to_bitfusion() {
        // With everything 8-bit, Drift's partition collapses to one
        // array and its latency matches BitFusion INT8 to within the
        // reconfiguration overhead and the scheduler's ceiling slack.
        let shape = GemmShape::new(512, 512, 512).unwrap();
        let w = GemmWorkload::uniform("hi", shape, false);
        let mut drift = DriftAccelerator::paper_config().unwrap();
        let c_drift = drift.execute(&w).unwrap().compute_cycles;
        let mut bf = BitFusion::int8().unwrap();
        let c_bf = bf.execute(&w).unwrap().compute_cycles;
        let overhead = drift.fabric().rows as u64 + drift.fabric().cols as u64;
        assert!(
            c_drift <= c_bf + overhead,
            "{c_drift} > {c_bf} + {overhead}"
        );
        let rel = (c_drift as f64 - c_bf as f64).abs() / c_bf as f64;
        assert!(rel < 0.01, "relative gap {rel} too large");
    }

    #[test]
    fn balanced_scheduler_beats_equal_static() {
        let w = mixed_workload(1024, 1024, 0.1, 0.4);
        let mut balanced = DriftAccelerator::paper_config().unwrap();
        let c_b = balanced.execute(&w).unwrap().compute_cycles;
        let mut equal = DriftAccelerator::new(paper_fabric(), SchedulerKind::EqualStatic).unwrap();
        let c_e = equal.execute(&w).unwrap().compute_cycles;
        assert!(c_b <= c_e, "balanced {c_b} !<= equal {c_e}");
    }

    #[test]
    fn reconfiguration_elides_on_repeated_partitions() {
        let mut drift = DriftAccelerator::paper_config().unwrap();
        let w = mixed_workload(512, 512, 0.25, 0.25);
        let first = drift.execute(&w).unwrap();
        let second = drift.execute(&w).unwrap();
        // Same workload → same partition → no reconfiguration charge.
        let overhead = drift.last_schedule().unwrap().partition.reconfig_cycles();
        assert_eq!(first.compute_cycles, second.compute_cycles + overhead);
    }

    #[test]
    fn reset_restores_first_run_behavior() {
        let mut drift = DriftAccelerator::paper_config().unwrap();
        let w = mixed_workload(512, 512, 0.25, 0.25);
        let first = drift.execute(&w).unwrap();
        let repeat = drift.execute(&w).unwrap();
        assert_ne!(first.compute_cycles, repeat.compute_cycles);
        drift.reset();
        assert!(drift.last_schedule().is_none());
        let fresh = drift.execute(&w).unwrap();
        assert_eq!(first, fresh);
    }

    #[test]
    fn cached_schedule_reproduces_direct_execution() {
        use crate::schedule::ScheduleKey;
        let w = mixed_workload(384, 256, 0.3, 0.6);
        let mut direct = DriftAccelerator::paper_config().unwrap();
        let want = direct.execute(&w).unwrap();
        let mut reused = DriftAccelerator::paper_config().unwrap();
        let schedule = ScheduleKey::for_workload(&w, reused.fabric())
            .solve()
            .unwrap();
        let got = reused.execute_with_schedule(&w, schedule).unwrap();
        assert_eq!(want, got);
        assert_eq!(reused.last_schedule(), Some(&schedule));
    }

    #[test]
    fn foreign_fabric_schedule_is_rejected() {
        let w = mixed_workload(64, 64, 0.5, 0.5);
        let small = drift_accel::systolic::ArrayGeometry::new(4, 4).unwrap();
        let schedule = crate::schedule::ScheduleKey::for_workload(&w, small)
            .solve()
            .unwrap();
        let mut drift = DriftAccelerator::paper_config().unwrap();
        assert!(drift.execute_with_schedule(&w, schedule).is_err());
    }

    #[test]
    fn recorder_does_not_change_reports() {
        // The acceptance bar: with observability enabled, simulation
        // results are bit-identical to a run with it disabled.
        let w = mixed_workload(512, 512, 0.25, 0.25);
        let mut plain = DriftAccelerator::paper_config().unwrap();
        let want = [plain.execute(&w).unwrap(), plain.execute(&w).unwrap()];

        let rec = Recorder::enabled();
        let mut observed = DriftAccelerator::paper_config().unwrap();
        observed.set_recorder(rec.clone());
        let got = [observed.execute(&w).unwrap(), observed.execute(&w).unwrap()];
        assert_eq!(want, got);

        // ...and the run actually produced metrics.
        let snap = rec.registry().unwrap().snapshot();
        assert_eq!(snap.counter_sum("drift_layers_executed_total"), 2);
        assert_eq!(snap.counter_sum("drift_reconfigurations_total"), 1);
        assert_eq!(snap.counter_sum("drift_schedule_solves_total"), 2);
        assert!(snap.counter_sum("drift_array_busy_cycles_total") > 0);
        assert!(snap.counter_sum("drift_array_idle_cycles_total") > 0);
        assert!(snap.counter_sum("drift_dram_row_hits_total") > 0);
        assert!(rec
            .registry()
            .unwrap()
            .stages()
            .contains_key("schedule_solve"));
    }

    #[test]
    fn energy_components_present() {
        let mut drift = DriftAccelerator::paper_config().unwrap();
        let w = mixed_workload(512, 512, 0.2, 0.2);
        let r = drift.execute(&w).unwrap();
        assert!(r.energy.static_pj > 0.0);
        assert!(r.energy.dram_pj > 0.0);
        assert!(r.energy.buffer_pj > 0.0);
        assert!(r.energy.core_pj > 0.0);
    }
}
