//! A functional, register-level weight-stationary systolic array.
//!
//! The timing models in `drift-accel::systolic` count cycles without
//! moving data. This module moves the data: a cycle-stepped simulation
//! of the MAC grid with explicit activation and partial-sum registers,
//! so both properties of the paper's fabric can be *verified* rather
//! than assumed:
//!
//! * **numerics** — the psums that emerge equal the exact integer GEMM
//!   of the coded operands ([`drift_quant::intgemm`]);
//! * **timing** — the cycle at which the last psum emerges equals the
//!   stream model's `T_pre + M + R + C − 2` (and therefore Eq. 7 under
//!   the BitGroup lane mapping).
//!
//! The grid is simulated at MAC granularity: one unit performs one
//! full-width multiply-accumulate per cycle. A BitGroup at `a4·w4`
//! provides 4 such MACs (16 BitBricks of 1×4 bits), so an `R×C` BG
//! array corresponds to an `R×4C` MAC grid; the timing cross-check in
//! the tests uses that correspondence.
//!
//! Dataflow (classic weight stationary): weights are preloaded one grid
//! row per cycle; activation element `a[i][r]` enters row `r` at cycle
//! `i + r` (skewed) and moves right one unit per cycle; partial sums
//! flow down one unit per cycle, so output `(i, c)` emerges from the
//! bottom row at cycle `i + (R−1) + c` after preload.

use crate::{CoreError, Result};
use serde::{Deserialize, Serialize};

/// The result of streaming one tile through the array.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PassResult {
    /// Row-major `[m, cols]` partial sums.
    pub psums: Vec<i64>,
    /// Streamed rows.
    pub m: usize,
    /// Output columns.
    pub cols: usize,
    /// Cycles consumed: preload + execute (+ drain).
    pub cycles: u64,
}

/// A functional weight-stationary MAC grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FunctionalArray {
    rows: usize,
    cols: usize,
}

impl FunctionalArray {
    /// Creates a grid of `rows × cols` MAC units.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidPartition`] for zero extents.
    pub fn new(rows: usize, cols: usize) -> Result<Self> {
        if rows == 0 || cols == 0 {
            return Err(CoreError::InvalidPartition {
                detail: format!("functional array needs positive extents, got {rows}x{cols}"),
            });
        }
        Ok(FunctionalArray { rows, cols })
    }

    /// Grid rows (the K-tile extent).
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Grid columns (the N-tile extent).
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Streams one tile: activations `a` (`m × rows`, row-major) against
    /// stationary weights `w` (`rows × cols`, row-major), returning the
    /// `m × cols` psums and the exact cycle count.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameter`] on operand size
    /// mismatches.
    pub fn run_pass(&self, a: &[i32], w: &[i32], m: usize) -> Result<PassResult> {
        let (rows, cols) = (self.rows, self.cols);
        if a.len() != m * rows {
            return Err(CoreError::InvalidParameter {
                name: "a",
                detail: format!("expected {} values, got {}", m * rows, a.len()),
            });
        }
        if w.len() != rows * cols {
            return Err(CoreError::InvalidParameter {
                name: "w",
                detail: format!("expected {} values, got {}", rows * cols, w.len()),
            });
        }
        if m == 0 {
            return Err(CoreError::InvalidParameter {
                name: "m",
                detail: "empty stream".to_string(),
            });
        }

        // Weight preload: one grid row per cycle.
        let mut cycles = rows as u64;

        // Register state: activation values moving right, psums moving
        // down. `a_grid[r][c]` holds the activation at unit (r, c) this
        // cycle; `p_grid[r][c]` the psum it just produced.
        let mut a_grid = vec![0i32; rows * cols];
        let mut p_grid = vec![0i64; rows * cols];
        let mut psums = vec![0i64; m * cols];

        // Execute: element i of row r is injected at cycle i + r; the
        // last output emerges at cycle (m-1) + (rows-1) + (cols-1).
        let exec_cycles = m + rows + cols - 2;
        for t in 0..exec_cycles {
            let mut next_a = vec![0i32; rows * cols];
            let mut next_p = vec![0i64; rows * cols];
            for r in 0..rows {
                for c in 0..cols {
                    // Activation arriving at (r, c) this cycle.
                    let a_val = if c == 0 {
                        // Injection port of row r: element i = t - r.
                        let i = t as isize - r as isize;
                        if i >= 0 && (i as usize) < m {
                            a[i as usize * rows + r]
                        } else {
                            0
                        }
                    } else {
                        a_grid[r * cols + (c - 1)]
                    };
                    // Psum arriving from above (previous cycle's value).
                    let p_in = if r == 0 {
                        0
                    } else {
                        p_grid[(r - 1) * cols + c]
                    };
                    next_a[r * cols + c] = a_val;
                    next_p[r * cols + c] = p_in + i64::from(a_val) * i64::from(w[r * cols + c]);
                }
            }
            a_grid = next_a;
            p_grid = next_p;
            // Collect from the bottom row: output (i, c) emerges when
            // t = i + (rows - 1) + c.
            for c in 0..cols {
                let i = t as isize - (rows as isize - 1) - c as isize;
                if i >= 0 && (i as usize) < m {
                    psums[i as usize * cols + c] = p_grid[(rows - 1) * cols + c];
                }
            }
        }
        cycles += exec_cycles as u64;
        Ok(PassResult {
            psums,
            m,
            cols,
            cycles,
        })
    }

    /// Computes a full integer GEMM `C[m,n] = A[m,k] · W[k,n]` by tiling
    /// K over grid rows and N over grid columns, accumulating psums
    /// across K-tiles (the hardware's wide accumulators live beside the
    /// array). Returns the exact products and total cycles.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameter`] on operand size
    /// mismatches.
    pub fn run_gemm(
        &self,
        a: &[i32],
        w: &[i32],
        m: usize,
        k: usize,
        n: usize,
    ) -> Result<(Vec<i64>, u64)> {
        if a.len() != m * k || w.len() != k * n {
            return Err(CoreError::InvalidParameter {
                name: "operands",
                detail: format!(
                    "A needs {} values (got {}), W needs {} (got {})",
                    m * k,
                    a.len(),
                    k * n,
                    w.len()
                ),
            });
        }
        let mut out = vec![0i64; m * n];
        let mut cycles = 0u64;
        let mut k0 = 0usize;
        while k0 < k {
            let k_tile = (k - k0).min(self.rows);
            let mut n0 = 0usize;
            while n0 < n {
                let n_tile = (n - n0).min(self.cols);
                // Pack operand tiles (zero-padded to the grid extents).
                let mut a_tile = vec![0i32; m * self.rows];
                for i in 0..m {
                    for r in 0..k_tile {
                        a_tile[i * self.rows + r] = a[i * k + k0 + r];
                    }
                }
                let mut w_tile = vec![0i32; self.rows * self.cols];
                for r in 0..k_tile {
                    for c in 0..n_tile {
                        w_tile[r * self.cols + c] = w[(k0 + r) * n + n0 + c];
                    }
                }
                let pass = self.run_pass(&a_tile, &w_tile, m)?;
                cycles += pass.cycles;
                for i in 0..m {
                    for c in 0..n_tile {
                        out[i * n + n0 + c] += pass.psums[i * self.cols + c];
                    }
                }
                n0 += n_tile;
            }
            k0 += k_tile;
        }
        Ok((out, cycles))
    }
}

/// The result of a functional split-fabric GEMM.
#[derive(Debug, Clone, PartialEq)]
pub struct SplitGemmResult {
    /// The `m × n` output, scaled to floats exactly as the hardware's
    /// output stage does.
    pub output: drift_tensor::Tensor,
    /// Per-quadrant cycle counts in `(hh, hl, lh, ll)` order.
    pub quadrant_cycles: [u64; 4],
    /// The layer's compute time: the slowest quadrant (the arrays run
    /// concurrently).
    pub makespan: u64,
}

/// Runs a full mixed-precision GEMM through the *split* fabric,
/// value-level: the dispatch plan routes each activation row and weight
/// column to its precision quadrant, four [`FunctionalArray`]s compute
/// the four tiles concurrently, and the outputs merge — demonstrating
/// functionally that dataflow splitting computes exactly what the
/// monolithic integer GEMM computes.
///
/// Array geometries are in MAC units (pass `None` to give every
/// quadrant a default 8×8 grid; cycle counts then reflect equal-sized
/// arrays rather than a schedule).
///
/// # Errors
///
/// Returns [`CoreError::InvalidParameter`] on operand/plan mismatches.
pub fn run_split_gemm(
    a: &drift_quant::intgemm::CodedMatrix,
    b: &drift_quant::intgemm::CodedMatrix,
    plan: &crate::arch::dispatch::DispatchPlan,
    grids: Option<[FunctionalArray; 4]>,
) -> Result<SplitGemmResult> {
    let (m, k) = (a.rows(), a.cols());
    let n = b.cols();
    if b.rows() != k {
        return Err(CoreError::InvalidParameter {
            name: "operands",
            detail: format!("inner dims {} vs {}", k, b.rows()),
        });
    }
    if !plan.is_consistent(m, n) {
        return Err(CoreError::InvalidParameter {
            name: "plan",
            detail: "dispatch plan does not cover the GEMM".to_string(),
        });
    }
    let default = FunctionalArray::new(8, 8).expect("static extents");
    let grids = grids.unwrap_or([default; 4]);

    let mut out = vec![0.0f32; m * n];
    let mut quadrant_cycles = [0u64; 4];
    let row_sets = [
        &plan.high_rows,
        &plan.high_rows,
        &plan.low_rows,
        &plan.low_rows,
    ];
    let col_sets = [
        &plan.high_cols,
        &plan.low_cols,
        &plan.high_cols,
        &plan.low_cols,
    ];
    for q in 0..4 {
        let (rows, cols) = (row_sets[q], col_sets[q]);
        if rows.is_empty() || cols.is_empty() {
            continue;
        }
        // Gather the quadrant's operand tiles.
        let mut a_tile = Vec::with_capacity(rows.len() * k);
        for &i in rows.iter() {
            a_tile.extend_from_slice(&a.codes()[i * k..(i + 1) * k]);
        }
        let mut w_tile = Vec::with_capacity(k * cols.len());
        for p in 0..k {
            for &j in cols.iter() {
                w_tile.push(b.codes()[p * n + j]);
            }
        }
        let (raw, cycles) = grids[q].run_gemm(&a_tile, &w_tile, rows.len(), k, cols.len())?;
        quadrant_cycles[q] = cycles;
        // Scatter with the hardware's output scaling.
        for (ti, &i) in rows.iter().enumerate() {
            for (tj, &j) in cols.iter().enumerate() {
                out[i * n + j] =
                    (raw[ti * cols.len() + tj] as f64 * a.scales()[i] * b.scales()[j]) as f32;
            }
        }
    }
    Ok(SplitGemmResult {
        output: drift_tensor::Tensor::from_vec(vec![m, n], out).map_err(|e| {
            CoreError::InvalidParameter {
                name: "output",
                detail: e.to_string(),
            }
        })?,
        quadrant_cycles,
        makespan: quadrant_cycles.iter().copied().max().unwrap_or(0),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use drift_accel::systolic::{simulate_stream, ArrayGeometry};

    fn reference_gemm(a: &[i32], w: &[i32], m: usize, k: usize, n: usize) -> Vec<i64> {
        let mut out = vec![0i64; m * n];
        for i in 0..m {
            for j in 0..n {
                for p in 0..k {
                    out[i * n + j] += i64::from(a[i * k + p]) * i64::from(w[p * n + j]);
                }
            }
        }
        out
    }

    #[test]
    fn rejects_degenerate_configs() {
        assert!(FunctionalArray::new(0, 4).is_err());
        assert!(FunctionalArray::new(4, 0).is_err());
        let arr = FunctionalArray::new(2, 2).unwrap();
        assert!(arr.run_pass(&[1, 2], &[1, 2, 3, 4], 2).is_err()); // a too short
        assert!(arr.run_pass(&[1, 2, 3, 4], &[1, 2, 3], 2).is_err()); // w too short
        assert!(arr.run_pass(&[], &[1, 2, 3, 4], 0).is_err());
    }

    #[test]
    fn single_pass_numerics_match_reference() {
        let arr = FunctionalArray::new(4, 3).unwrap();
        let m = 7;
        let a: Vec<i32> = (0..m * 4).map(|i| (i as i32 % 11) - 5).collect();
        let w: Vec<i32> = (0..4 * 3).map(|i| (i % 7) - 3).collect();
        let pass = arr.run_pass(&a, &w, m).unwrap();
        assert_eq!(pass.psums, reference_gemm(&a, &w, m, 4, 3));
    }

    #[test]
    fn single_pass_cycles_match_stream_model() {
        let arr = FunctionalArray::new(5, 6).unwrap();
        let m = 13;
        let a = vec![1i32; m * 5];
        let w = vec![1i32; 5 * 6];
        let pass = arr.run_pass(&a, &w, m).unwrap();
        let geo = ArrayGeometry::new(5, 6).unwrap();
        let model = simulate_stream(&vec![1u32; m], geo, 1);
        assert_eq!(pass.cycles, model.total_cycles);
    }

    #[test]
    fn tiled_gemm_matches_reference_ragged() {
        // K and N not multiples of the grid extents: exercises padding.
        let arr = FunctionalArray::new(4, 4).unwrap();
        let (m, k, n) = (5, 10, 7);
        let a: Vec<i32> = (0..m * k).map(|i| (i as i32 * 3 % 13) - 6).collect();
        let w: Vec<i32> = (0..k * n).map(|i| (i as i32 * 5 % 9) - 4).collect();
        let (out, cycles) = arr.run_gemm(&a, &w, m, k, n).unwrap();
        assert_eq!(out, reference_gemm(&a, &w, m, k, n));
        // Cycles: ceil(10/4)·ceil(7/4) = 6 passes of (4 + 5+4+4-2).
        assert_eq!(cycles, 6 * (4 + 11));
    }

    #[test]
    fn tiled_gemm_pass_count_matches_mac_lane_mapping() {
        // An R×C BitGroup array at a4w4 is an R×4C MAC grid; its pass
        // count must equal Eq. 7's ceil factors under that mapping.
        use drift_accel::gemm::GemmShape;
        use drift_accel::systolic::pass_count;
        use drift_quant::precision::Precision;

        let (bg_rows, bg_cols) = (6, 3);
        let arr = FunctionalArray::new(bg_rows, 4 * bg_cols).unwrap();
        let (m, k, n) = (9, 20, 30);
        let a = vec![1i32; m * k];
        let w = vec![1i32; k * n];
        let (_, cycles) = arr.run_gemm(&a, &w, m, k, n).unwrap();
        let shape = GemmShape::new(m, k, n).unwrap();
        let geo = ArrayGeometry::new(bg_rows, bg_cols).unwrap();
        let passes = pass_count(shape, Precision::INT4, Precision::INT4, geo);
        let per_pass = bg_rows as u64 + (m + bg_rows + 4 * bg_cols - 2) as u64;
        assert_eq!(cycles, passes * per_pass);
    }

    #[test]
    fn functional_fabric_matches_int_gemm() {
        // End-to-end: policy-coded operands through the functional
        // array equal the exact integer GEMM.
        use drift_quant::intgemm::{int_gemm, CodedMatrix};
        use drift_quant::policy::StaticLowPolicy;
        use drift_quant::precision::Precision;
        use drift_tensor::Tensor;

        let acts = Tensor::from_fn(vec![6, 12], |i| ((i * 31 % 17) as f32 - 8.0) * 0.05).unwrap();
        let weights =
            Tensor::from_fn(vec![12, 5], |i| ((i * 13 % 11) as f32 - 5.0) * 0.08).unwrap();
        let policy = StaticLowPolicy::new(Precision::INT4);
        let ca = CodedMatrix::encode_rows(&acts, Precision::INT8, &policy).unwrap();
        let cb = CodedMatrix::encode_cols(&weights, Precision::INT8, &policy).unwrap();
        let reference = int_gemm(&ca, &cb).unwrap();

        let arr = FunctionalArray::new(4, 4).unwrap();
        let (raw, _) = arr.run_gemm(ca.codes(), cb.codes(), 6, 12, 5).unwrap();
        // Scale the raw psums exactly as the hardware's output stage
        // does.
        for i in 0..6 {
            for j in 0..5 {
                let v = raw[i * 5 + j] as f64 * ca.scales()[i] * cb.scales()[j];
                let r = f64::from(reference.as_slice()[i * 5 + j]);
                assert!((v - r).abs() < 1e-6, "({i},{j}): {v} vs {r}");
            }
        }
    }

    #[test]
    fn split_fabric_equals_monolithic_int_gemm() {
        use crate::arch::dispatch::DispatchPlan;
        use crate::selector::DriftPolicy;
        use drift_accel::gemm::{GemmShape, GemmWorkload};
        use drift_quant::intgemm::{int_gemm, CodedMatrix};
        use drift_quant::precision::Precision;
        use drift_tensor::Tensor;

        // Token-dispersed activations so the selector produces a real
        // mix of precisions.
        let acts = Tensor::from_fn(vec![10, 16], |i| {
            let t = i / 16;
            0.01 * (1 + t * t) as f32 * (((i * 29) % 13) as f32 - 6.0) / 6.0
        })
        .unwrap();
        let weights =
            Tensor::from_fn(vec![16, 7], |i| ((i * 17 % 11) as f32 - 5.0) * 0.06).unwrap();
        let policy = DriftPolicy::new(0.2).unwrap();
        let ca = CodedMatrix::encode_rows(&acts, Precision::INT8, &policy).unwrap();
        let cb = CodedMatrix::encode_cols(&weights, Precision::INT8, &policy).unwrap();

        // The dispatch plan from the same precision decisions.
        let act_high: Vec<bool> = ca
            .precisions()
            .iter()
            .map(|p| *p == Precision::INT8)
            .collect();
        let weight_high: Vec<bool> = cb
            .precisions()
            .iter()
            .map(|p| *p == Precision::INT8)
            .collect();
        assert!(act_high.iter().any(|&h| h) && act_high.iter().any(|&h| !h));
        let shape = GemmShape::new(10, 16, 7).unwrap();
        let w = GemmWorkload::new("f", shape, act_high, weight_high).unwrap();
        let plan = DispatchPlan::build(&w, None).unwrap();

        let split = run_split_gemm(&ca, &cb, &plan, None).unwrap();
        let reference = int_gemm(&ca, &cb).unwrap();
        for (x, y) in split.output.iter().zip(reference.iter()) {
            assert!((x - y).abs() < 1e-5, "{x} vs {y}");
        }
        assert!(split.makespan > 0);
        assert_eq!(
            split.makespan,
            split.quadrant_cycles.iter().copied().max().unwrap()
        );
    }

    #[test]
    fn split_gemm_validates_inputs() {
        use crate::arch::dispatch::DispatchPlan;
        use drift_accel::gemm::{GemmShape, GemmWorkload};
        use drift_quant::intgemm::CodedMatrix;
        use drift_quant::policy::StaticHighPolicy;
        use drift_quant::precision::Precision;
        use drift_tensor::Tensor;

        let a = Tensor::from_fn(vec![4, 8], |i| i as f32 * 0.01).unwrap();
        let b = Tensor::from_fn(vec![6, 3], |i| i as f32 * 0.01).unwrap(); // k mismatch
        let ca = CodedMatrix::encode_rows(&a, Precision::INT8, &StaticHighPolicy).unwrap();
        let cb = CodedMatrix::encode_cols(&b, Precision::INT8, &StaticHighPolicy).unwrap();
        let shape = GemmShape::new(4, 8, 3).unwrap();
        let w = GemmWorkload::uniform("v", shape, false);
        let plan = DispatchPlan::build(&w, None).unwrap();
        assert!(run_split_gemm(&ca, &cb, &plan, None).is_err());
    }

    #[test]
    fn zero_padding_does_not_contaminate() {
        // A 1-wide stream through a larger grid: all pad lanes are
        // zero-coded and must not change the result.
        let arr = FunctionalArray::new(8, 8).unwrap();
        let (out, _) = arr.run_gemm(&[3], &[4], 1, 1, 1).unwrap();
        assert_eq!(out, vec![12]);
    }
}
