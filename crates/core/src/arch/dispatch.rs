//! The dispatcher: steering sub-tensors to the right systolic array.
//!
//! Paper Section 4.1: the index buffer "serves as a reference for the
//! dispatcher to control access to the activation data". After the
//! precision selector fills the index buffer, the dispatcher walks the
//! activation rows in storage order and routes each to the stream of
//! the quadrant handling its precision pair — so each split array sees
//! a dense, single-precision stream even though the data arrives
//! interleaved. (This reordering is exactly what DRQ's single
//! variable-speed array cannot do, and why it pays speed-switch bubbles
//! on interleaved streams.)

use crate::arch::controller::PrecisionController;
use crate::{CoreError, Result};
use drift_accel::gemm::GemmWorkload;
use serde::{Deserialize, Serialize};

/// The four per-quadrant row streams produced for one GEMM, in
/// `(hh, hl, lh, ll)` order. The `hh`/`hl` streams share the
/// high-activation rows and `lh`/`ll` the low ones — a row is streamed
/// to both column-side arrays (they compute different output columns
/// from the same activations).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DispatchPlan {
    /// Row indices streamed to the high-activation arrays (hh and hl).
    pub high_rows: Vec<usize>,
    /// Row indices streamed to the low-activation arrays (lh and ll).
    pub low_rows: Vec<usize>,
    /// Column indices served by the high-weight arrays (hh and lh).
    pub high_cols: Vec<usize>,
    /// Column indices served by the low-weight arrays (hl and ll).
    pub low_cols: Vec<usize>,
    /// Index-buffer lookups the dispatcher performed.
    pub lookups: u64,
}

impl DispatchPlan {
    /// Builds the plan for a workload, consulting the (already filled)
    /// precision controller when one is supplied — the lookups are
    /// counted — or the workload's own maps otherwise.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameter`] if the controller's
    /// entries disagree with the workload (a selector/dispatcher
    /// desynchronisation, which real hardware cannot exhibit).
    pub fn build(
        workload: &GemmWorkload,
        controller: Option<&PrecisionController>,
    ) -> Result<Self> {
        let mut lookups = 0u64;
        let mut high_rows = Vec::new();
        let mut low_rows = Vec::new();
        for (i, &high) in workload.act_high().iter().enumerate() {
            let is_high = match controller {
                Some(c) => {
                    lookups += 1;
                    let entry = c.lookup(i).ok_or_else(|| CoreError::InvalidParameter {
                        name: "controller",
                        detail: format!("no index entry for sub-tensor {i}"),
                    })?;
                    if entry.low == high {
                        return Err(CoreError::InvalidParameter {
                            name: "controller",
                            detail: format!(
                                "index entry for sub-tensor {i} disagrees with workload"
                            ),
                        });
                    }
                    !entry.low
                }
                None => high,
            };
            if is_high {
                high_rows.push(i);
            } else {
                low_rows.push(i);
            }
        }
        let mut high_cols = Vec::new();
        let mut low_cols = Vec::new();
        for (j, &high) in workload.weight_high().iter().enumerate() {
            if high {
                high_cols.push(j);
            } else {
                low_cols.push(j);
            }
        }
        Ok(DispatchPlan {
            high_rows,
            low_rows,
            high_cols,
            low_cols,
            lookups,
        })
    }

    /// The `(rows, cols)` tile extents per quadrant in `(hh, hl, lh,
    /// ll)` order — must agree with
    /// [`drift_accel::gemm::GemmWorkload::quadrants`].
    pub fn tile_extents(&self) -> [(usize, usize); 4] {
        [
            (self.high_rows.len(), self.high_cols.len()),
            (self.high_rows.len(), self.low_cols.len()),
            (self.low_rows.len(), self.high_cols.len()),
            (self.low_rows.len(), self.low_cols.len()),
        ]
    }

    /// Verifies the plan is a permutation: every row and column appears
    /// in exactly one stream, in ascending (storage) order within each.
    pub fn is_consistent(&self, m: usize, n: usize) -> bool {
        let sorted_disjoint = |a: &[usize], b: &[usize], extent: usize| {
            let mut seen = vec![false; extent];
            for &i in a.iter().chain(b) {
                if i >= extent || seen[i] {
                    return false;
                }
                seen[i] = true;
            }
            seen.iter().all(|&s| s)
                && a.windows(2).all(|w| w[0] < w[1])
                && b.windows(2).all(|w| w[0] < w[1])
        };
        sorted_disjoint(&self.high_rows, &self.low_rows, m)
            && sorted_disjoint(&self.high_cols, &self.low_cols, n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use drift_accel::gemm::GemmShape;
    use drift_quant::convert::ConversionChoice;
    use drift_quant::policy::Decision;
    use drift_quant::precision::Precision;

    fn workload() -> GemmWorkload {
        let shape = GemmShape::new(8, 16, 6).unwrap();
        GemmWorkload::new(
            "d",
            shape,
            vec![true, false, false, true, false, false, false, true],
            vec![false, true, false, false, true, false],
        )
        .unwrap()
    }

    fn filled_controller(w: &GemmWorkload) -> PrecisionController {
        let mut c = PrecisionController::drift_default();
        let choice = ConversionChoice::new(Precision::INT8, Precision::INT4, 0, 4).unwrap();
        for (i, &high) in w.act_high().iter().enumerate() {
            let d = if high {
                Decision::Keep
            } else {
                Decision::Convert(choice)
            };
            c.record(i, d).unwrap();
        }
        c
    }

    #[test]
    fn plan_partitions_rows_and_cols() {
        let w = workload();
        let plan = DispatchPlan::build(&w, None).unwrap();
        assert_eq!(plan.high_rows, vec![0, 3, 7]);
        assert_eq!(plan.low_rows, vec![1, 2, 4, 5, 6]);
        assert_eq!(plan.high_cols, vec![1, 4]);
        assert_eq!(plan.low_cols, vec![0, 2, 3, 5]);
        assert!(plan.is_consistent(8, 6));
        assert_eq!(plan.lookups, 0);
    }

    #[test]
    fn tile_extents_match_quadrants() {
        let w = workload();
        let plan = DispatchPlan::build(&w, None).unwrap();
        let quads = w.quadrants();
        for (ext, q) in plan.tile_extents().iter().zip(&quads) {
            assert_eq!(*ext, (q.rows, q.cols));
        }
    }

    #[test]
    fn controller_driven_dispatch_counts_lookups() {
        let w = workload();
        let c = filled_controller(&w);
        let plan = DispatchPlan::build(&w, Some(&c)).unwrap();
        assert_eq!(plan.lookups, 8);
        assert!(plan.is_consistent(8, 6));
        assert_eq!(plan.high_rows, vec![0, 3, 7]);
    }

    #[test]
    fn missing_index_entry_is_an_error() {
        let w = workload();
        let c = PrecisionController::drift_default(); // empty
        assert!(DispatchPlan::build(&w, Some(&c)).is_err());
    }

    #[test]
    fn desynchronised_controller_is_an_error() {
        let w = workload();
        let mut c = PrecisionController::drift_default();
        // Record the OPPOSITE decision for every row.
        let choice = ConversionChoice::new(Precision::INT8, Precision::INT4, 0, 4).unwrap();
        for (i, &high) in w.act_high().iter().enumerate() {
            let d = if high {
                Decision::Convert(choice)
            } else {
                Decision::Keep
            };
            c.record(i, d).unwrap();
        }
        assert!(DispatchPlan::build(&w, Some(&c)).is_err());
    }

    #[test]
    fn consistency_detects_corruption() {
        let w = workload();
        let mut plan = DispatchPlan::build(&w, None).unwrap();
        plan.high_rows.push(1); // duplicate with low_rows
        assert!(!plan.is_consistent(8, 6));
    }
}
