//! The Drift controller: precision selector and index buffer (paper
//! Section 4.1).
//!
//! The *precision selector* executes the selection algorithm on the
//! statistics the pooling unit produces. In hardware it is a comparator
//! plus a lookup table recording the per-sub-tensor results; here we
//! model its work (comparison count) and its output (index-buffer
//! entries) so the evaluation can substantiate the paper's "no
//! additional computational or area overheads" claim with numbers.
//!
//! The *index buffer* tracks the precision of data at specific
//! positions; the dispatcher consults it to steer each sub-tensor's
//! activations to the systolic array handling its precision pair. One
//! entry is 4 bits: 1 precision bit plus the 3-bit `hc` field that
//! fixes the conversion (Eq. 2 determines `lc`).

use crate::{CoreError, Result};
use drift_quant::policy::Decision;
use serde::{Deserialize, Serialize};

/// Bits per index-buffer entry: 1 precision flag + 3-bit high-clip code.
pub const INDEX_ENTRY_BITS: u64 = 4;

/// An index-buffer entry: the decision for one sub-tensor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct IndexEntry {
    /// Sub-tensor id within the tensor.
    pub subtensor: usize,
    /// True when the sub-tensor computes at low precision.
    pub low: bool,
    /// The high-end clip `hc` of the conversion (0 when kept high).
    pub hc: u8,
}

/// The hardware model of the precision selector + index buffer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PrecisionController {
    capacity_bits: u64,
    entries: Vec<IndexEntry>,
    comparisons: u64,
}

impl PrecisionController {
    /// Creates a controller whose index buffer holds `capacity_bits`
    /// bits (the default `drift-accel` buffer set gives it 8 KiB).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameter`] for a zero capacity.
    pub fn new(capacity_bits: u64) -> Result<Self> {
        if capacity_bits == 0 {
            return Err(CoreError::InvalidParameter {
                name: "capacity_bits",
                detail: "index buffer must have capacity".to_string(),
            });
        }
        Ok(PrecisionController {
            capacity_bits,
            entries: Vec::new(),
            comparisons: 0,
        })
    }

    /// The default configuration: an 8 KiB index buffer.
    pub fn drift_default() -> Self {
        PrecisionController::new(8 * 1024 * 8).expect("static capacity is valid")
    }

    /// Records the selector's decision for one sub-tensor. The selector
    /// performs two comparisons per sub-tensor — the Eq. 5 range test
    /// (a priority encode of `max|Y|` against the scale) and the Eq. 6
    /// density test — which this model counts.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameter`] when the entry would
    /// overflow the index buffer; real hardware sizes the buffer for the
    /// largest layer, so overflow indicates a configuration error.
    pub fn record(&mut self, subtensor: usize, decision: Decision) -> Result<()> {
        let used = self.used_bits() + INDEX_ENTRY_BITS;
        if used > self.capacity_bits {
            return Err(CoreError::InvalidParameter {
                name: "index buffer",
                detail: format!(
                    "{used} bits exceed capacity {}; size the buffer for the layer",
                    self.capacity_bits
                ),
            });
        }
        self.comparisons += 2;
        let (low, hc) = match decision {
            Decision::Keep => (false, 0),
            Decision::Convert(choice) => (true, choice.hc()),
        };
        self.entries.push(IndexEntry { subtensor, low, hc });
        Ok(())
    }

    /// The recorded entries, in record order.
    pub fn entries(&self) -> &[IndexEntry] {
        &self.entries
    }

    /// Looks up the decision for a sub-tensor (what the dispatcher does
    /// per tile).
    pub fn lookup(&self, subtensor: usize) -> Option<IndexEntry> {
        self.entries
            .iter()
            .copied()
            .find(|e| e.subtensor == subtensor)
    }

    /// Comparator operations performed so far.
    pub fn comparisons(&self) -> u64 {
        self.comparisons
    }

    /// Bits currently occupied in the index buffer.
    pub fn used_bits(&self) -> u64 {
        self.entries.len() as u64 * INDEX_ENTRY_BITS
    }

    /// Index-buffer capacity in bits.
    pub fn capacity_bits(&self) -> u64 {
        self.capacity_bits
    }

    /// Clears the buffer for the next layer.
    pub fn reset(&mut self) {
        self.entries.clear();
        self.comparisons = 0;
    }
}

impl Default for PrecisionController {
    fn default() -> Self {
        PrecisionController::drift_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use drift_quant::convert::ConversionChoice;
    use drift_quant::precision::Precision;

    fn convert(hc: u8) -> Decision {
        Decision::Convert(
            ConversionChoice::new(Precision::INT8, Precision::INT4, hc, 4 - hc).unwrap(),
        )
    }

    #[test]
    fn capacity_validated() {
        assert!(PrecisionController::new(0).is_err());
        assert!(PrecisionController::new(8).is_ok());
    }

    #[test]
    fn record_and_lookup() {
        let mut c = PrecisionController::drift_default();
        c.record(0, Decision::Keep).unwrap();
        c.record(1, convert(2)).unwrap();
        assert_eq!(c.entries().len(), 2);
        let e = c.lookup(1).unwrap();
        assert!(e.low);
        assert_eq!(e.hc, 2);
        let k = c.lookup(0).unwrap();
        assert!(!k.low);
        assert!(c.lookup(99).is_none());
    }

    #[test]
    fn two_comparisons_per_subtensor() {
        let mut c = PrecisionController::drift_default();
        for i in 0..10 {
            c.record(i, Decision::Keep).unwrap();
        }
        assert_eq!(c.comparisons(), 20);
    }

    #[test]
    fn overflow_is_an_error() {
        // Capacity for exactly two entries.
        let mut c = PrecisionController::new(2 * INDEX_ENTRY_BITS).unwrap();
        c.record(0, Decision::Keep).unwrap();
        c.record(1, Decision::Keep).unwrap();
        assert!(c.record(2, Decision::Keep).is_err());
    }

    #[test]
    fn reset_clears_state() {
        let mut c = PrecisionController::drift_default();
        c.record(0, convert(1)).unwrap();
        c.reset();
        assert_eq!(c.entries().len(), 0);
        assert_eq!(c.comparisons(), 0);
        assert_eq!(c.used_bits(), 0);
    }

    #[test]
    fn default_capacity_holds_large_layers() {
        // 8 KiB at 4 bits/entry = 16384 sub-tensors; enough for a
        // 3136-row ResNet im2col layer or 4096 LLM tokens.
        let c = PrecisionController::default();
        assert!(c.capacity_bits() / INDEX_ENTRY_BITS >= 16_000);
    }
}
