//! The Drift accelerator fabric (paper Section 4.1–4.2).
//!
//! The computing engine is an array of *BitGroups* (BGs), each a 4×4
//! array of *BitBricks* multiplying 1 activation bit by 4 weight bits
//! per cycle. Unlike BitFusion, every BG has bidirectional connections
//! to its neighbours, so the fabric can be split at runtime into up to
//! four independent weight-stationary systolic arrays — one per
//! (activation, weight) precision pair — by configuring the dataflow
//! direction between BGs (Fig. 5). Each split array runs a single
//! precision, so no element ever needs multiple injection slots and the
//! Section 2.3 stalls disappear by construction.
//!
//! The partition shape the hardware supports (and [`FabricPartition`]
//! models) is: one vertical cut at `col_split` separating high-weight
//! columns (left) from low-weight columns (right), and an independent
//! horizontal cut on each side (`rows_left`, `rows_right`) separating
//! high-activation rows (top) from low-activation rows (bottom). The
//! per-side horizontal cuts are what the psum-direction reallocation of
//! Fig. 5 buys: a BG row can flip its partial-sum direction to join the
//! array above or below it.

pub mod bitbrick;
pub mod controller;
pub mod dispatch;
pub mod functional;

use crate::{CoreError, Result};
use drift_accel::systolic::ArrayGeometry;
use serde::{Deserialize, Serialize};

/// BitBricks per BitGroup along each axis (a BG is 4×4 BitBricks).
pub const BITBRICKS_PER_BG_SIDE: usize = 4;

/// The paper's unit budget: 792 BitGroups, arranged 24×33 like the other
/// BitGroup-class designs in the comparison.
pub fn paper_fabric() -> ArrayGeometry {
    ArrayGeometry::new(24, 33).expect("static geometry is valid")
}

/// A runtime partition of the fabric into four systolic arrays.
///
/// Quadrant order everywhere is `(hh, hl, lh, ll)`:
/// high-act×high-weight, high-act×low-weight, low-act×high-weight,
/// low-act×low-weight.
///
/// # Example
///
/// ```rust
/// use drift_core::arch::{paper_fabric, FabricPartition};
///
/// # fn main() -> Result<(), drift_core::CoreError> {
/// let p = FabricPartition::new(paper_fabric(), 16, 8, 4)?;
/// let [hh, hl, lh, ll] = p.geometries();
/// assert_eq!((hh.unwrap().rows, hh.unwrap().cols), (8, 16));
/// assert_eq!((ll.unwrap().rows, ll.unwrap().cols), (20, 17));
/// // Partitions always cover the whole fabric.
/// assert_eq!(p.total_units(), 24 * 33);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FabricPartition {
    fabric: ArrayGeometry,
    /// Columns assigned to the high-weight (left) side; the remaining
    /// `fabric.cols - col_split` serve low weights.
    col_split: usize,
    /// Rows of the left side assigned to high activations (top).
    rows_left: usize,
    /// Rows of the right side assigned to high activations (top).
    rows_right: usize,
}

impl FabricPartition {
    /// Creates a partition.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidPartition`] when a cut exceeds the
    /// fabric extents.
    pub fn new(
        fabric: ArrayGeometry,
        col_split: usize,
        rows_left: usize,
        rows_right: usize,
    ) -> Result<Self> {
        if col_split > fabric.cols {
            return Err(CoreError::InvalidPartition {
                detail: format!("col_split {col_split} exceeds {} columns", fabric.cols),
            });
        }
        if rows_left > fabric.rows || rows_right > fabric.rows {
            return Err(CoreError::InvalidPartition {
                detail: format!(
                    "row cuts ({rows_left}, {rows_right}) exceed {} rows",
                    fabric.rows
                ),
            });
        }
        Ok(FabricPartition {
            fabric,
            col_split,
            rows_left,
            rows_right,
        })
    }

    /// The whole fabric as a single array (no split): how Drift runs a
    /// uniform-precision workload.
    pub fn whole(fabric: ArrayGeometry) -> Self {
        FabricPartition {
            fabric,
            col_split: fabric.cols,
            rows_left: fabric.rows,
            rows_right: 0,
        }
    }

    /// The underlying fabric.
    pub fn fabric(&self) -> ArrayGeometry {
        self.fabric
    }

    /// The vertical cut position.
    pub fn col_split(&self) -> usize {
        self.col_split
    }

    /// The left-side horizontal cut.
    pub fn rows_left(&self) -> usize {
        self.rows_left
    }

    /// The right-side horizontal cut.
    pub fn rows_right(&self) -> usize {
        self.rows_right
    }

    /// The four quadrant geometries in `(hh, hl, lh, ll)` order; `None`
    /// for zero-area quadrants.
    pub fn geometries(&self) -> [Option<ArrayGeometry>; 4] {
        let right_cols = self.fabric.cols - self.col_split;
        let make = |rows: usize, cols: usize| {
            if rows == 0 || cols == 0 {
                None
            } else {
                Some(ArrayGeometry::new(rows, cols).expect("checked non-zero"))
            }
        };
        [
            make(self.rows_left, self.col_split),
            make(self.rows_right, right_cols),
            make(self.fabric.rows - self.rows_left, self.col_split),
            make(self.fabric.rows - self.rows_right, right_cols),
        ]
    }

    /// Total BitGroups across all quadrants — always the whole fabric
    /// (partitions never strand units).
    pub fn total_units(&self) -> usize {
        self.geometries()
            .iter()
            .map(|g| g.map_or(0, |geo| geo.units()))
            .sum()
    }

    /// Cycles to reconfigure the fabric into this partition: draining
    /// in-flight wavefronts and flipping the BG link directions, one
    /// pipeline depth.
    pub fn reconfig_cycles(&self) -> u64 {
        (self.fabric.rows + self.fabric.cols) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_fabric_has_792_units() {
        assert_eq!(paper_fabric().units(), 792);
    }

    #[test]
    fn partition_validation() {
        let f = paper_fabric();
        assert!(FabricPartition::new(f, 34, 0, 0).is_err());
        assert!(FabricPartition::new(f, 0, 25, 0).is_err());
        assert!(FabricPartition::new(f, 0, 0, 25).is_err());
        assert!(FabricPartition::new(f, 33, 24, 24).is_ok());
    }

    #[test]
    fn quadrants_cover_fabric_exactly() {
        let f = paper_fabric();
        for col in [0, 1, 16, 33] {
            for rl in [0, 5, 24] {
                for rr in [0, 12, 24] {
                    let p = FabricPartition::new(f, col, rl, rr).unwrap();
                    assert_eq!(p.total_units(), 792, "col={col} rl={rl} rr={rr}");
                }
            }
        }
    }

    #[test]
    fn zero_area_quadrants_are_none() {
        let f = paper_fabric();
        let p = FabricPartition::new(f, 0, 0, 12).unwrap();
        let [hh, hl, lh, ll] = p.geometries();
        assert!(hh.is_none()); // no left columns
        assert!(lh.is_none());
        assert!(hl.is_some());
        assert!(ll.is_some());
        assert_eq!(hl.unwrap().rows, 12);
        assert_eq!(ll.unwrap().rows, 12);
    }

    #[test]
    fn whole_partition_is_one_array() {
        let f = paper_fabric();
        let p = FabricPartition::whole(f);
        let [hh, hl, lh, ll] = p.geometries();
        assert_eq!(hh.unwrap(), f);
        assert!(hl.is_none());
        assert!(lh.is_none());
        assert!(ll.is_none());
    }

    #[test]
    fn reconfig_cost_is_pipeline_depth() {
        let p = FabricPartition::whole(paper_fabric());
        assert_eq!(p.reconfig_cycles(), 24 + 33);
    }
}
