//! Bit-level BitBrick composition — the lowest level of the fabric.
//!
//! A *BitBrick* multiplies 1 activation bit by a 4-bit weight nibble
//! per cycle (paper Section 4.1). Wider products compose by shift-add:
//! an `a4·w4` product needs 4 BitBricks (one per activation bit), an
//! `a8·w8` needs 16 (8 activation bits × 2 weight nibbles) — exactly
//! one BitGroup. This module implements the decomposition and the
//! shift-add reduction for *signed* operands (two's complement: the
//! most significant activation bit and the high weight nibble carry
//! negative weight), and verifies against plain multiplication — the
//! arithmetic that justifies both BitFusion's fusion and the BitGroup
//! throughput model used by Eq. 7.

use crate::{CoreError, Result};
use drift_quant::precision::Precision;

/// One BitBrick operation: a single activation bit (0/1) times a
/// 4-bit weight nibble magnitude, in [0, 15].
///
/// # Panics
///
/// Panics if `act_bit > 1` or `weight_nibble > 15` — hardware lanes
/// cannot carry wider values; violating this is a decomposition bug.
pub fn bitbrick(act_bit: u8, weight_nibble: u8) -> u32 {
    assert!(act_bit <= 1, "activation lane carries one bit");
    assert!(weight_nibble <= 15, "weight lane carries one nibble");
    u32::from(act_bit) * u32::from(weight_nibble)
}

/// Decomposes a signed value into its two's-complement bits at the
/// given width (LSB first).
///
/// # Errors
///
/// Returns [`CoreError::InvalidParameter`] when the value does not fit
/// the width.
pub fn to_bits(value: i32, precision: Precision) -> Result<Vec<u8>> {
    if !precision.contains(value) {
        return Err(CoreError::InvalidParameter {
            name: "value",
            detail: format!("{value} does not fit {precision}"),
        });
    }
    let bits = precision.bits() as usize;
    let raw = (value as u32) & ((1u32 << bits) - 1).max(1);
    Ok((0..bits).map(|b| ((raw >> b) & 1) as u8).collect())
}

/// Decomposes a signed value into 4-bit nibbles (LSB first), two's
/// complement at the given width (width must be a multiple of 4).
///
/// # Errors
///
/// Returns [`CoreError::InvalidParameter`] for non-nibble widths or
/// out-of-range values.
pub fn to_nibbles(value: i32, precision: Precision) -> Result<Vec<u8>> {
    if !precision.bits().is_multiple_of(4) {
        return Err(CoreError::InvalidParameter {
            name: "precision",
            detail: format!("{precision} is not nibble-aligned"),
        });
    }
    let bits = to_bits(value, precision)?;
    Ok(bits
        .chunks(4)
        .map(|c| c.iter().enumerate().map(|(i, &b)| b << i).sum())
        .collect())
}

/// Multiplies a `pa`-bit signed activation by a `pw`-bit signed weight
/// using only BitBrick operations and shift-adds, returning the exact
/// product and the number of BitBrick invocations consumed.
///
/// Signs are handled as real bit-serial hardware does: the activation's
/// MSB contributes with weight `-2^(pa-1)`, and the top weight nibble
/// is interpreted in two's complement (its contribution re-weighted by
/// the nibble's signed value).
///
/// # Errors
///
/// Returns [`CoreError::InvalidParameter`] for operands that do not fit
/// their precisions or a non-nibble-aligned weight precision.
pub fn composed_multiply(
    act: i32,
    weight: i32,
    pa: Precision,
    pw: Precision,
) -> Result<(i64, u32)> {
    let act_bits = to_bits(act, pa)?;
    let weight_nibbles = to_nibbles(weight, pw)?;
    let n_nibbles = weight_nibbles.len();
    let mut acc = 0i64;
    let mut bricks = 0u32;
    for (bi, &bit) in act_bits.iter().enumerate() {
        // The activation MSB has negative positional weight
        // (two's complement).
        let bit_weight: i64 = if bi == act_bits.len() - 1 {
            -(1i64 << bi)
        } else {
            1i64 << bi
        };
        for (ni, &nibble) in weight_nibbles.iter().enumerate() {
            let raw = i64::from(bitbrick(bit, nibble));
            bricks += 1;
            // The top nibble is signed in two's complement: a set sign
            // bit means the nibble contributes its value minus 16.
            let signed = if ni == n_nibbles - 1 && nibble >= 8 {
                raw - i64::from(bit) * 16
            } else {
                raw
            };
            acc += bit_weight * signed * (1i64 << (4 * ni));
        }
    }
    Ok((acc, bricks))
}

/// The BitBrick count a `(pa, pw)` product needs: `pa · ⌈pw/4⌉` —
/// the spatial-fusion cost BitFusion pays and the basis of the
/// `⌈pa·K/4R⌉·⌈pw·N/16C⌉` repetition factors in Eq. 7.
pub fn bricks_per_product(pa: Precision, pw: Precision) -> u32 {
    u32::from(pa.bits()) * u32::from(pw.bits()).div_ceil(4)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bitbrick_is_one_by_four() {
        assert_eq!(bitbrick(0, 15), 0);
        assert_eq!(bitbrick(1, 15), 15);
        assert_eq!(bitbrick(1, 0), 0);
    }

    #[test]
    #[should_panic(expected = "activation lane")]
    fn bitbrick_rejects_wide_bits() {
        let _ = bitbrick(2, 0);
    }

    #[test]
    fn bit_decomposition_roundtrip() {
        // The symmetric scheme excludes -2^(bits-1), so -8 is not a
        // valid INT4 code.
        for v in [-7i32, -1, 0, 1, 7] {
            let bits = to_bits(v, Precision::INT4).unwrap();
            assert_eq!(bits.len(), 4);
            let back: i32 = bits
                .iter()
                .enumerate()
                .map(|(i, &b)| {
                    let w = if i == 3 { -(1i32 << i) } else { 1i32 << i };
                    w * i32::from(b)
                })
                .sum();
            assert_eq!(back, v, "roundtrip of {v}");
        }
        assert!(to_bits(8, Precision::INT4).is_err());
    }

    #[test]
    fn nibble_decomposition() {
        let n = to_nibbles(0x5A - 128, Precision::INT8).unwrap(); // -0x26
        assert_eq!(n.len(), 2);
        assert!(to_nibbles(1, Precision::INT3).is_err());
    }

    #[test]
    fn composed_a4w4_exhaustive() {
        for a in -7i32..=7 {
            for w in -7i32..=7 {
                let (p, bricks) =
                    composed_multiply(a, w, Precision::INT4, Precision::INT4).unwrap();
                assert_eq!(p, i64::from(a) * i64::from(w), "{a} x {w}");
                assert_eq!(bricks, 4);
            }
        }
    }

    #[test]
    fn composed_a8w8_sampled() {
        for a in (-127i32..=127).step_by(7) {
            for w in (-127i32..=127).step_by(11) {
                let (p, bricks) =
                    composed_multiply(a, w, Precision::INT8, Precision::INT8).unwrap();
                assert_eq!(p, i64::from(a) * i64::from(w), "{a} x {w}");
                assert_eq!(bricks, 16); // one full BitGroup
            }
        }
    }

    #[test]
    fn composed_mixed_widths() {
        for (a, w, pa, pw) in [
            (7, -127, Precision::INT4, Precision::INT8),
            (-127, 7, Precision::INT8, Precision::INT4),
            (-3, 3, Precision::INT4, Precision::INT8),
        ] {
            let (p, _) = composed_multiply(a, w, pa, pw).unwrap();
            assert_eq!(p, i64::from(a) * i64::from(w));
        }
    }

    #[test]
    fn brick_counts_match_fusion_table() {
        use Precision as P;
        assert_eq!(bricks_per_product(P::INT4, P::INT4), 4);
        assert_eq!(bricks_per_product(P::INT8, P::INT4), 8);
        assert_eq!(bricks_per_product(P::INT4, P::INT8), 8);
        assert_eq!(bricks_per_product(P::INT8, P::INT8), 16);
        // A BitGroup (16 BBs) therefore fits 4/2/2/1 products of the
        // four pairs per cycle — the Eq. 7 throughput model.
    }
}
