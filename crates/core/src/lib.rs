//! The Drift algorithm–architecture co-design: the paper's primary
//! contribution.
//!
//! * [`selector`] — the distribution-based dynamic precision selection
//!   algorithm (paper Section 3.3): Eq. 5 picks the high-end clip `hc`
//!   from the representation-range test, Eq. 6 accepts or rejects the
//!   conversion from the representation-density test.
//! * [`calibrate`] — Hessian-aware selection of the density threshold δ
//!   (paper's use of HAWQ/Q-BERT-style sensitivity).
//! * [`arch`] — the Drift accelerator fabric: BitGroups with
//!   bidirectional links, runtime partitioning into four systolic arrays
//!   (Section 4.2 / Fig. 5), and the controller (precision selector +
//!   index buffer, Section 4.1).
//! * [`schedule`] — the balanced online scheduler minimising the maximum
//!   per-array latency (Eq. 8) with the Eq. 7 analytical model.
//! * [`accelerator`] — [`accelerator::DriftAccelerator`], tying fabric,
//!   scheduler, and the `drift-accel` memory subsystem together behind
//!   the common [`drift_accel::Accelerator`] trait.
//!
//! # Example
//!
//! Select precisions for a tensor and execute the resulting workload:
//!
//! ```rust
//! use drift_core::accelerator::DriftAccelerator;
//! use drift_core::selector::DriftPolicy;
//! use drift_accel::accelerator::Accelerator;
//! use drift_accel::gemm::{GemmShape, GemmWorkload};
//! use drift_quant::policy::run_policy;
//! use drift_quant::Precision;
//! use drift_tensor::subtensor::SubTensorScheme;
//! use drift_tensor::Tensor;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // Token-granular activations with heterogeneous scales.
//! let acts = Tensor::from_fn(vec![64, 128], |i| {
//!     let token = i / 128;
//!     (1.0 + token as f32) / 64.0 * (((i * 37) % 13) as f32 - 6.0) / 6.0
//! })?;
//! let policy = DriftPolicy::new(16.0)?;
//! let run = run_policy(&acts, &SubTensorScheme::token(128), Precision::INT8, &policy)?;
//!
//! let act_high: Vec<bool> =
//!     run.decisions.iter().map(|d| !d.decision.is_low()).collect();
//! let shape = GemmShape::new(64, 128, 256)?;
//! let workload = GemmWorkload::new("layer", shape, act_high, vec![false; 256])?;
//!
//! let mut drift = DriftAccelerator::paper_config()?;
//! let report = drift.execute(&workload)?;
//! assert_eq!(report.stall_cycles, 0); // dataflow splitting removes stalls
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod accelerator;
pub mod arch;
pub mod calibrate;
pub mod schedule;
pub mod selector;

pub use accelerator::DriftAccelerator;
pub use selector::DriftPolicy;

use std::error::Error;
use std::fmt;

/// Error type for all fallible operations in this crate.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum CoreError {
    /// A selector or scheduler parameter was invalid.
    InvalidParameter {
        /// Parameter name.
        name: &'static str,
        /// Description of the violation.
        detail: String,
    },
    /// A fabric partition was geometrically impossible.
    InvalidPartition {
        /// Description of the violation.
        detail: String,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::InvalidParameter { name, detail } => {
                write!(f, "invalid parameter {name}: {detail}")
            }
            CoreError::InvalidPartition { detail } => {
                write!(f, "invalid partition: {detail}")
            }
        }
    }
}

impl Error for CoreError {}

/// Convenience result alias used across the crate.
pub type Result<T, E = CoreError> = std::result::Result<T, E>;
