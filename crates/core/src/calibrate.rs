//! Hessian-aware selection of the density threshold δ (paper
//! Section 3.3).
//!
//! The paper picks δ with the Hessian-aware strategy of HAWQ / Q-BERT:
//! layers whose loss curvature is high tolerate less quantization
//! noise, so the expected loss increase of a candidate δ is the
//! sensitivity-weighted sum of per-layer quantization errors, and the
//! chosen δ is the largest one whose proxy stays under a budget (more
//! low-bit compute with negligible accuracy impact).
//!
//! For a linear layer `y = W·x`, the Hessian of the squared loss with
//! respect to the input `x` is `WᵀW`, whose trace we estimate with
//! Hutchinson's stochastic estimator `E[‖W·z‖²]` over Rademacher
//! vectors `z` — the same estimator HAWQ uses, and exactly `‖W‖_F²` in
//! expectation, which the tests verify.

use crate::selector::DriftPolicy;
use crate::{CoreError, Result};
use drift_quant::linear::mse;
use drift_quant::policy::run_policy;
use drift_quant::precision::Precision;
use drift_tensor::rng::DriftRng;
use drift_tensor::subtensor::SubTensorScheme;
use drift_tensor::Tensor;
use rand::Rng;

/// One layer's calibration inputs: a representative activation tensor,
/// its sub-tensor scheme, and the layer weight matrix for sensitivity.
#[derive(Debug, Clone)]
pub struct CalibrationLayer {
    /// Layer name for reports.
    pub name: String,
    /// A representative activation tensor (from a calibration batch).
    pub activations: Tensor,
    /// The sub-tensor scheme this layer quantizes at.
    pub scheme: SubTensorScheme,
    /// The layer's weight matrix, row-major `[out, in]`, used for the
    /// Hessian-trace sensitivity. `None` falls back to sensitivity 1.
    pub weights: Option<Tensor>,
}

/// Hutchinson estimate of `trace(WᵀW)` for a row-major `[out, in]`
/// weight matrix: `E_z[‖W z‖²]` over Rademacher `z`.
///
/// With `probes = 0` this returns 0; in expectation the estimate equals
/// `‖W‖_F²`.
pub fn hutchinson_trace(weights: &Tensor, probes: usize, rng: &mut DriftRng) -> f64 {
    let dims = weights.shape().dims();
    let (out_dim, in_dim) = (dims[0], dims[1..].iter().product::<usize>());
    let w = weights.as_slice();
    let mut acc = 0.0f64;
    for _ in 0..probes {
        let z: Vec<f64> = (0..in_dim)
            .map(|_| if rng.gen::<bool>() { 1.0 } else { -1.0 })
            .collect();
        for row in 0..out_dim {
            let dot: f64 = w[row * in_dim..(row + 1) * in_dim]
                .iter()
                .zip(&z)
                .map(|(&wv, &zv)| f64::from(wv) * zv)
                .sum();
            acc += dot * dot;
        }
    }
    if probes == 0 {
        0.0
    } else {
        acc / probes as f64
    }
}

/// Exact `trace(WᵀW) = ‖W‖_F²`, the quantity Hutchinson estimates.
pub fn exact_trace(weights: &Tensor) -> f64 {
    weights.iter().map(|&v| f64::from(v) * f64::from(v)).sum()
}

/// The result of a threshold calibration.
#[derive(Debug, Clone, PartialEq)]
pub struct CalibrationResult {
    /// The selected threshold δ.
    pub delta: f64,
    /// The sensitivity-weighted loss proxy at the selected δ.
    pub proxy_loss: f64,
    /// Fraction of elements computing at low precision at the selected
    /// δ, averaged over layers.
    pub low_fraction: f64,
    /// The full sweep, `(delta, proxy_loss, low_fraction)` per
    /// candidate, for reporting.
    pub sweep: Vec<(f64, f64, f64)>,
}

/// Hessian-aware threshold calibrator.
#[derive(Debug, Clone)]
pub struct HessianCalibrator {
    /// Candidate thresholds, swept in increasing order.
    pub candidates: Vec<f64>,
    /// Hutchinson probes per layer.
    pub probes: usize,
    /// High precision of the initial quantization.
    pub hp: Precision,
    /// Low precision the policy targets.
    pub lp: Precision,
}

impl Default for HessianCalibrator {
    fn default() -> Self {
        HessianCalibrator {
            // Log-spaced grid covering the regimes the evaluation uses.
            candidates: vec![
                1e-3, 3e-3, 1e-2, 3e-2, 0.1, 0.3, 1.0, 3.0, 10.0, 30.0, 100.0,
            ],
            probes: 8,
            hp: Precision::INT8,
            lp: Precision::INT4,
        }
    }
}

impl HessianCalibrator {
    /// Creates the default calibrator.
    pub fn new() -> Self {
        HessianCalibrator::default()
    }

    /// Selects the largest δ whose sensitivity-weighted loss proxy stays
    /// within `budget` relative to the INT8 (δ = ∞, everything kept)
    /// proxy. Larger δ keeps more sub-tensors at 8-bit, so the proxy is
    /// non-increasing in δ; the *smallest* candidate passing the budget
    /// maximises low-bit compute, matching the paper's "select
    /// low-precision sub-tensors as much as possible".
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameter`] for an empty candidate
    /// grid, a non-positive budget, or layers the policy cannot process.
    pub fn calibrate(
        &self,
        layers: &[CalibrationLayer],
        budget: f64,
        rng: &mut DriftRng,
    ) -> Result<CalibrationResult> {
        if self.candidates.is_empty() {
            return Err(CoreError::InvalidParameter {
                name: "candidates",
                detail: "empty threshold grid".to_string(),
            });
        }
        // Rejects NaN too: only a strictly-greater comparison passes.
        if budget.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater) {
            return Err(CoreError::InvalidParameter {
                name: "budget",
                detail: format!("must be positive, got {budget}"),
            });
        }
        if layers.is_empty() {
            return Err(CoreError::InvalidParameter {
                name: "layers",
                detail: "no calibration layers".to_string(),
            });
        }

        // Per-layer sensitivity: Hutchinson trace of WᵀW, normalised per
        // element so wide layers do not dominate merely by size.
        let sensitivities: Vec<f64> = layers
            .iter()
            .map(|l| match &l.weights {
                Some(w) => hutchinson_trace(w, self.probes, rng) / w.len() as f64,
                None => 1.0,
            })
            .collect();

        // The INT8 floor: proxy loss with everything kept at 8-bit.
        let int8_proxy = self.proxy_for_policy(
            layers,
            &sensitivities,
            &drift_quant::policy::StaticHighPolicy,
        )?;

        let mut sweep = Vec::with_capacity(self.candidates.len());
        let mut best: Option<(f64, f64, f64)> = None;
        let mut sorted = self.candidates.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite candidates"));
        for &delta in &sorted {
            let policy = DriftPolicy::with_low_precision(delta, self.lp).map_err(|e| {
                CoreError::InvalidParameter {
                    name: "delta",
                    detail: e.to_string(),
                }
            })?;
            let (proxy, low_fraction) = self.proxy_and_fraction(layers, &sensitivities, &policy)?;
            sweep.push((delta, proxy, low_fraction));
            let excess = if int8_proxy > 0.0 {
                proxy / int8_proxy - 1.0
            } else {
                proxy
            };
            if excess <= budget && best.is_none() {
                best = Some((delta, proxy, low_fraction));
            }
        }
        // Every candidate blew the budget: fall back to the most
        // conservative (largest δ, most 8-bit).
        let (delta, proxy_loss, low_fraction) =
            best.unwrap_or_else(|| *sweep.last().expect("sweep is non-empty"));
        Ok(CalibrationResult {
            delta,
            proxy_loss,
            low_fraction,
            sweep,
        })
    }

    fn proxy_for_policy(
        &self,
        layers: &[CalibrationLayer],
        sensitivities: &[f64],
        policy: &dyn drift_quant::policy::PrecisionPolicy,
    ) -> Result<f64> {
        Ok(self
            .proxy_and_fraction_impl(layers, sensitivities, policy)?
            .0)
    }

    fn proxy_and_fraction(
        &self,
        layers: &[CalibrationLayer],
        sensitivities: &[f64],
        policy: &DriftPolicy,
    ) -> Result<(f64, f64)> {
        self.proxy_and_fraction_impl(layers, sensitivities, policy)
    }

    fn proxy_and_fraction_impl(
        &self,
        layers: &[CalibrationLayer],
        sensitivities: &[f64],
        policy: &dyn drift_quant::policy::PrecisionPolicy,
    ) -> Result<(f64, f64)> {
        let mut proxy = 0.0f64;
        let mut fraction_acc = 0.0f64;
        for (layer, &sens) in layers.iter().zip(sensitivities) {
            let run =
                run_policy(&layer.activations, &layer.scheme, self.hp, policy).map_err(|e| {
                    CoreError::InvalidParameter {
                        name: "layer",
                        detail: format!("{}: {e}", layer.name),
                    }
                })?;
            proxy += sens * mse(layer.activations.as_slice(), run.effective.as_slice());
            fraction_acc += run.low_fraction();
        }
        Ok((proxy, fraction_acc / layers.len() as f64))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use drift_tensor::dist::{Laplace, Sampler};
    use drift_tensor::rng::seeded;

    fn synthetic_layer(seed: u64, tokens: usize, hidden: usize) -> CalibrationLayer {
        let mut rng = seeded(seed);
        let mut data = Vec::with_capacity(tokens * hidden);
        for t in 0..tokens {
            let b = 0.02 + 0.5 * (t as f64 / tokens as f64);
            let lap = Laplace::new(0.0, b).unwrap();
            data.extend(lap.sample_f32(&mut rng, hidden));
        }
        let weights = Tensor::from_fn(vec![hidden, hidden], |i| {
            (((i * 31) % 7) as f32 - 3.0) * 0.1
        })
        .unwrap();
        CalibrationLayer {
            name: format!("layer{seed}"),
            activations: Tensor::from_vec(vec![tokens, hidden], data).unwrap(),
            scheme: SubTensorScheme::token(hidden),
            weights: Some(weights),
        }
    }

    #[test]
    fn hutchinson_matches_frobenius() {
        let w = Tensor::from_fn(vec![16, 24], |i| ((i % 5) as f32 - 2.0) * 0.3).unwrap();
        let exact = exact_trace(&w);
        let mut rng = seeded(1);
        let est = hutchinson_trace(&w, 256, &mut rng);
        let rel = (est - exact).abs() / exact;
        assert!(rel < 0.15, "relative error {rel}");
    }

    #[test]
    fn hutchinson_zero_probes_is_zero() {
        let w = Tensor::full(vec![4, 4], 1.0).unwrap();
        let mut rng = seeded(2);
        assert_eq!(hutchinson_trace(&w, 0, &mut rng), 0.0);
    }

    #[test]
    fn calibrate_validates_inputs() {
        let cal = HessianCalibrator::new();
        let mut rng = seeded(3);
        assert!(cal.calibrate(&[], 0.05, &mut rng).is_err());
        let layer = synthetic_layer(1, 8, 32);
        assert!(cal
            .calibrate(std::slice::from_ref(&layer), 0.0, &mut rng)
            .is_err());
        let empty = HessianCalibrator {
            candidates: vec![],
            ..HessianCalibrator::new()
        };
        assert!(empty.calibrate(&[layer], 0.05, &mut rng).is_err());
    }

    #[test]
    fn calibration_picks_aggressive_delta_within_budget() {
        let cal = HessianCalibrator::new();
        let layers: Vec<CalibrationLayer> = (0..3).map(|s| synthetic_layer(s, 16, 64)).collect();
        let mut rng = seeded(4);
        // Generous budget: should pick a small δ with a high low-bit
        // fraction.
        let generous = cal.calibrate(&layers, 10.0, &mut rng).unwrap();
        let mut rng2 = seeded(4);
        // Tight budget: larger δ, lower low-bit fraction.
        let tight = cal.calibrate(&layers, 0.01, &mut rng2).unwrap();
        assert!(generous.delta <= tight.delta);
        assert!(generous.low_fraction >= tight.low_fraction);
    }

    #[test]
    fn sweep_is_monotone_in_low_fraction() {
        let cal = HessianCalibrator::new();
        let layers = vec![synthetic_layer(7, 32, 64)];
        let mut rng = seeded(5);
        let result = cal.calibrate(&layers, 1.0, &mut rng).unwrap();
        for pair in result.sweep.windows(2) {
            assert!(
                pair[0].2 >= pair[1].2 - 1e-12,
                "low fraction should not increase with δ"
            );
        }
    }

    #[test]
    fn missing_weights_fall_back_to_unit_sensitivity() {
        let mut layer = synthetic_layer(9, 8, 32);
        layer.weights = None;
        let cal = HessianCalibrator::new();
        let mut rng = seeded(6);
        let result = cal.calibrate(&[layer], 1.0, &mut rng).unwrap();
        assert!(result.delta > 0.0);
        assert_eq!(result.sweep.len(), cal.candidates.len());
    }
}
