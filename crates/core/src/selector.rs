//! The Drift dynamic precision selection algorithm (paper Section 3.3).
//!
//! For each sub-tensor `Y` of an initially INT8-quantized tensor (scale
//! `Δ`), the algorithm decides whether `Y` can be re-encoded at low
//! precision, and with which conversion, in two steps:
//!
//! 1. **Range step (Eq. 5).** The low encoding's representation range
//!    must cover the sub-tensor's largest magnitude:
//!
//!    ```text
//!    RR = (2^(hp-1) - 1) / 2^hc · Δ ≥ max(|Y|)
//!    ⇒ hc = ⌊log₂((2^(hp-1) - 1) · Δ / max(|Y|))⌋
//!    ```
//!
//!    With `hc` fixed, Eq. 2 fixes `lc = hp - lp - hc`: the conversion
//!    choice is fully determined.
//!
//! 2. **Density step (Eq. 6).** The encoding's step must be fine enough
//!    relative to the sub-tensor's variance. Under the zero-mean Laplace
//!    model, `var(Y) = 2 · avg(|Y|)²` (Eq. 4 + MLE), so the test is
//!
//!    ```text
//!    var(Y) / RD = 2 · avg(|Y|)² / (2^lc · Δ) ≥ δ
//!    ```
//!
//!    Sub-tensors failing it keep the full 8-bit encoding.
//!
//! Everything the algorithm needs — `max(|Y|)` and `avg(|Y|)` — is
//! exactly what the accelerator's pooling unit already computes, which
//! is why the paper claims zero additional compute/area overhead.

use crate::{CoreError, Result};
use drift_obs::Recorder;
use drift_quant::capability::RepresentationCapability;
use drift_quant::convert::ConversionChoice;
use drift_quant::linear::QuantParams;
use drift_quant::policy::{Decision, PolicyRun, PrecisionPolicy, TensorContext};
use drift_quant::precision::Precision;
use drift_tensor::stats::SummaryStats;

/// The Drift precision policy.
///
/// # Example
///
/// ```rust
/// use drift_core::selector::DriftPolicy;
/// use drift_quant::policy::run_policy;
/// use drift_quant::Precision;
/// use drift_tensor::subtensor::SubTensorScheme;
/// use drift_tensor::Tensor;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// // Tokens with very different scales: Drift adapts hc per token
/// // instead of wiping small tokens out.
/// let t = Tensor::from_fn(vec![4, 32], |i| {
///     let scale = [2.0f32, 0.5, 0.1, 0.01][i / 32];
///     scale * (((i * 7) % 11) as f32 - 5.0) / 5.0
/// })?;
/// let policy = DriftPolicy::new(8.0)?;
/// let run = run_policy(&t, &SubTensorScheme::token(32), Precision::INT8, &policy)?;
/// assert!(run.low_fraction() > 0.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DriftPolicy {
    delta: f64,
    lp: Precision,
}

impl DriftPolicy {
    /// Creates a Drift policy with density threshold `delta` (δ of
    /// Eq. 6) targeting the paper's 4-bit low precision.
    ///
    /// Use [`crate::calibrate`] to pick δ Hessian-aware; typical values
    /// land between 1 and 100 depending on the tensor scale regime.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameter`] unless `delta` is finite
    /// and non-negative.
    pub fn new(delta: f64) -> Result<Self> {
        if !delta.is_finite() || delta < 0.0 {
            return Err(CoreError::InvalidParameter {
                name: "delta",
                detail: format!("must be finite and >= 0, got {delta}"),
            });
        }
        Ok(DriftPolicy {
            delta,
            lp: Precision::INT4,
        })
    }

    /// Creates a policy targeting a non-default low precision (the 3/5-bit
    /// flexibility of paper Section 5.3).
    ///
    /// # Errors
    ///
    /// Same conditions as [`DriftPolicy::new`].
    pub fn with_low_precision(delta: f64, lp: Precision) -> Result<Self> {
        let mut p = DriftPolicy::new(delta)?;
        p.lp = lp;
        Ok(p)
    }

    /// The density threshold δ.
    pub fn delta(&self) -> f64 {
        self.delta
    }

    /// Step 1 (Eq. 5): the range-optimal conversion for a sub-tensor
    /// with largest magnitude `abs_max`, as a fully determined
    /// [`ConversionChoice`]. Returns `None` when `lp >= hp` (nothing to
    /// convert to).
    ///
    /// All-zero sub-tensors (`abs_max == 0`) clip maximally from the
    /// high end: any encoding represents them exactly.
    pub fn range_choice(&self, abs_max: f64, params: &QuantParams) -> Option<ConversionChoice> {
        let hp = params.precision;
        if self.lp.bits() >= hp.bits() {
            return None;
        }
        let free = hp.bits() - self.lp.bits();
        let hc = if abs_max <= 0.0 || params.scale == 0.0 {
            free
        } else {
            let headroom = f64::from(hp.q_max()) * params.scale / abs_max;
            if headroom < 1.0 {
                0
            } else {
                (headroom.log2().floor() as i64).clamp(0, i64::from(free)) as u8
            }
        };
        let lc = free - hc;
        Some(
            ConversionChoice::new(hp, self.lp, hc, lc)
                .expect("hc clamped to [0, hp-lp] satisfies Eq. 2"),
        )
    }

    /// Step 2 (Eq. 6): whether `choice` is dense enough for a sub-tensor
    /// with mean magnitude `mean_abs`, using the Laplace-model variance
    /// `2 · avg(|Y|)²`.
    pub fn density_ok(
        &self,
        choice: &ConversionChoice,
        mean_abs: f64,
        params: &QuantParams,
    ) -> bool {
        let capability = RepresentationCapability::of(choice, params);
        let laplace_variance = 2.0 * mean_abs * mean_abs;
        capability.density_ratio(laplace_variance) >= self.delta
    }
}

/// Records a selector run's per-sub-tensor outcomes into `recorder`:
/// `drift_selector_decisions_total{decision=keep|convert}` and, for
/// conversions, the Eq. 5 high-clip distribution
/// `drift_selector_convert_hc_total{hc}`.
///
/// A no-op on a disabled recorder; never changes the run itself.
pub fn record_policy_run(recorder: &Recorder, run: &PolicyRun) {
    if !recorder.is_enabled() {
        return;
    }
    let mut keep = 0u64;
    let mut convert = 0u64;
    // hc ≤ hp − lp ≤ 7 for the INT8 family; one spare slot guards the
    // label table against future wider pairs.
    const HC_LABELS: [&str; 9] = ["0", "1", "2", "3", "4", "5", "6", "7", "8"];
    let mut by_hc = [0u64; HC_LABELS.len()];
    for d in &run.decisions {
        match &d.decision {
            Decision::Keep => keep += 1,
            Decision::Convert(choice) => {
                convert += 1;
                by_hc[usize::from(choice.hc()).min(HC_LABELS.len() - 1)] += 1;
            }
        }
    }
    recorder.counter_add(
        "drift_selector_decisions_total",
        &[("decision", "keep")],
        keep,
    );
    recorder.counter_add(
        "drift_selector_decisions_total",
        &[("decision", "convert")],
        convert,
    );
    for (hc, &n) in by_hc.iter().enumerate() {
        if n > 0 {
            recorder.counter_add(
                "drift_selector_convert_hc_total",
                &[("hc", HC_LABELS[hc])],
                n,
            );
        }
    }
}

impl PrecisionPolicy for DriftPolicy {
    fn name(&self) -> &str {
        "drift"
    }

    fn decide(&self, ctx: &TensorContext, stats: &SummaryStats) -> Decision {
        let Some(choice) = self.range_choice(stats.abs_max(), &ctx.params) else {
            return Decision::Keep;
        };
        // All-zero sub-tensors are exactly representable at any width.
        if stats.abs_max() <= 0.0 || ctx.params.scale == 0.0 {
            return Decision::Convert(choice);
        }
        if self.density_ok(&choice, stats.mean_abs(), &ctx.params) {
            Decision::Convert(choice)
        } else {
            Decision::Keep
        }
    }

    fn low_precision(&self) -> Precision {
        self.lp
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use drift_quant::policy::run_policy;
    use drift_tensor::subtensor::SubTensorScheme;
    use drift_tensor::Tensor;

    fn ctx(abs_max: f64) -> TensorContext {
        TensorContext {
            global: SummaryStats::from_slice([abs_max as f32, -(abs_max as f32)]),
            params: QuantParams::from_abs_max(abs_max, Precision::INT8),
        }
    }

    #[test]
    fn rejects_bad_delta() {
        assert!(DriftPolicy::new(-1.0).is_err());
        assert!(DriftPolicy::new(f64::NAN).is_err());
        assert!(DriftPolicy::new(f64::INFINITY).is_err());
        assert!(DriftPolicy::new(0.0).is_ok());
    }

    #[test]
    fn eq5_wide_range_clips_low_bits() {
        // Fig. 3 row 2: sub-tensor spanning the full range ⇒ hc = 0,
        // lc = 4.
        let p = DriftPolicy::new(0.0).unwrap();
        let params = QuantParams::from_abs_max(1.0, Precision::INT8);
        let choice = p.range_choice(1.0, &params).unwrap();
        assert_eq!(choice.hc(), 0);
        assert_eq!(choice.lc(), 4);
    }

    #[test]
    fn eq5_small_range_clips_high_bits() {
        // A sub-tensor whose max is 1/16 of the tensor max has 4 bits of
        // headroom ⇒ hc = 4, lc = 0.
        let p = DriftPolicy::new(0.0).unwrap();
        let params = QuantParams::from_abs_max(1.0, Precision::INT8);
        let choice = p.range_choice(1.0 / 16.0, &params).unwrap();
        assert_eq!(choice.hc(), 4);
        assert_eq!(choice.lc(), 0);
    }

    #[test]
    fn eq5_intermediate_ranges() {
        let p = DriftPolicy::new(0.0).unwrap();
        let params = QuantParams::from_abs_max(1.0, Precision::INT8);
        // max|Y| = 0.3: headroom = 1/0.3 = 3.33 ⇒ hc = 1.
        let choice = p.range_choice(0.3, &params).unwrap();
        assert_eq!(choice.hc(), 1);
        assert_eq!(choice.lc(), 3);
        // The chosen encoding covers the sub-tensor (Eq. 5's guarantee).
        let rc = RepresentationCapability::of(&choice, &params);
        assert!(rc.covers(0.3));
    }

    #[test]
    fn eq5_range_always_covered() {
        // Property: the range-optimal choice always satisfies Eq. 5, and
        // one more high clip would violate it.
        let p = DriftPolicy::new(0.0).unwrap();
        let params = QuantParams::from_abs_max(2.54, Precision::INT8);
        for abs_max in [2.54, 1.9, 1.0, 0.5, 0.2, 0.04, 0.01] {
            let choice = p.range_choice(abs_max, &params).unwrap();
            let rc = RepresentationCapability::of(&choice, &params);
            assert!(rc.covers(abs_max), "abs_max {abs_max}: range not covered");
            if choice.hc() < 4 {
                // Tightness: hc is the largest clip that still covers
                // (unless capped by lc = 0).
                let tighter = ConversionChoice::new(
                    Precision::INT8,
                    Precision::INT4,
                    choice.hc() + 1,
                    choice.lc() - 1,
                )
                .unwrap();
                let rc2 = RepresentationCapability::of(&tighter, &params);
                assert!(!rc2.covers(abs_max), "abs_max {abs_max}: hc not maximal");
            }
        }
    }

    #[test]
    fn eq6_small_variance_keeps_high() {
        // Fig. 3 row 3: tiny variance fails the density test.
        let policy = DriftPolicy::new(10.0).unwrap();
        let c = ctx(1.0);
        // A sub-tensor with moderate range but tiny mean magnitude.
        let stats = SummaryStats::from_slice([0.9f32, -0.001, 0.001, -0.9]);
        // Range forces hc = 0 ⇒ lc = 4 ⇒ RD = 16Δ; var = 2·0.45²≈0.4;
        // ratio = 0.4 / (16/127) ≈ 3.2 < 10 ⇒ keep.
        assert_eq!(policy.decide(&c, &stats), Decision::Keep);
    }

    #[test]
    fn eq6_large_variance_converts() {
        let policy = DriftPolicy::new(1.0).unwrap();
        let c = ctx(1.0);
        let stats = SummaryStats::from_slice([0.9f32, -0.8, 0.7, -0.85]);
        assert!(policy.decide(&c, &stats).is_low());
    }

    #[test]
    fn delta_monotonicity() {
        // Raising δ can only move decisions from Convert to Keep.
        let c = ctx(1.0);
        let samples: Vec<SummaryStats> = (1..20)
            .map(|i| {
                let scale = i as f32 / 20.0;
                SummaryStats::from_slice([scale, -scale * 0.7, scale * 0.3, -scale])
            })
            .collect();
        let mut last_low = usize::MAX;
        for delta in [0.1, 1.0, 10.0, 100.0, 1000.0] {
            let policy = DriftPolicy::new(delta).unwrap();
            let low = samples
                .iter()
                .filter(|s| policy.decide(&c, s).is_low())
                .count();
            assert!(low <= last_low, "delta {delta}: {low} > {last_low}");
            last_low = low;
        }
    }

    #[test]
    fn all_zero_subtensor_converts_maximally() {
        let policy = DriftPolicy::new(1e9).unwrap();
        let c = ctx(1.0);
        let stats = SummaryStats::from_slice([0.0f32, 0.0, 0.0]);
        match policy.decide(&c, &stats) {
            Decision::Convert(choice) => assert_eq!(choice.hc(), 4),
            other => panic!("expected conversion, got {other:?}"),
        }
    }

    #[test]
    fn zero_scale_tensor_converts() {
        let policy = DriftPolicy::new(1e9).unwrap();
        let c = TensorContext {
            global: SummaryStats::from_slice([0.0f32]),
            params: QuantParams::from_abs_max(0.0, Precision::INT8),
        };
        let stats = SummaryStats::from_slice([0.0f32]);
        assert!(policy.decide(&c, &stats).is_low());
    }

    #[test]
    fn keeps_when_lp_not_lower() {
        let policy = DriftPolicy::with_low_precision(1.0, Precision::INT8).unwrap();
        let c = ctx(1.0);
        let stats = SummaryStats::from_slice([0.5f32, -0.5]);
        assert_eq!(policy.decide(&c, &stats), Decision::Keep);
    }

    #[test]
    fn flexible_precisions_supported() {
        // 8 → 3-bit leaves 5 bits to split; 8 → 5-bit leaves 3.
        for (lp, free) in [(Precision::INT3, 5u8), (Precision::INT5, 3u8)] {
            let policy = DriftPolicy::with_low_precision(0.0, lp).unwrap();
            let params = QuantParams::from_abs_max(1.0, Precision::INT8);
            let choice = policy.range_choice(1.0, &params).unwrap();
            assert_eq!(choice.lp(), lp);
            assert_eq!(choice.hc() + choice.lc(), free);
        }
    }

    #[test]
    fn policy_run_metrics_match_decisions() {
        let policy = DriftPolicy::new(1.0).unwrap();
        let t = Tensor::from_fn(vec![4, 32], |i| {
            let scale = [2.0f32, 0.5, 0.1, 0.01][i / 32];
            scale * (((i * 7) % 11) as f32 - 5.0) / 5.0
        })
        .unwrap();
        let run = run_policy(&t, &SubTensorScheme::token(32), Precision::INT8, &policy).unwrap();
        let rec = Recorder::enabled();
        record_policy_run(&rec, &run);
        let snap = rec.registry().unwrap().snapshot();
        assert_eq!(
            snap.counter_sum("drift_selector_decisions_total"),
            run.decisions.len() as u64
        );
        assert_eq!(
            snap.counter_sum("drift_selector_convert_hc_total"),
            run.low_subtensors() as u64
        );
        // A disabled recorder records nothing and does not panic.
        record_policy_run(&Recorder::disabled(), &run);
    }

    #[test]
    fn small_tokens_survive_drift_but_not_naive_low_clip() {
        // The motivating contrast with DRQ: a token at 1/100 of the
        // global scale keeps fidelity under Drift because hc > 0
        // preserves density.
        let policy = DriftPolicy::new(1.0).unwrap();
        let t = Tensor::from_fn(vec![2, 64], |i| {
            if i < 64 {
                // Large-scale token.
                (((i * 13) % 17) as f32 - 8.0) / 8.0
            } else {
                // Small-scale token at 1% amplitude.
                0.01 * (((i * 13) % 17) as f32 - 8.0) / 8.0
            }
        })
        .unwrap();
        let run = run_policy(&t, &SubTensorScheme::token(64), Precision::INT8, &policy).unwrap();
        // The small token must not be wiped to zeros.
        let small = &run.effective.as_slice()[64..];
        assert!(small.iter().any(|&v| v != 0.0), "small token wiped out");
    }
}
