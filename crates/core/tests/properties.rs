//! Property-based tests for the Drift core: the functional fabric, the
//! selector, and the scheduler.

use drift_accel::gemm::{GemmShape, GemmWorkload};
use drift_accel::systolic::{simulate_stream, ArrayGeometry};
use drift_core::arch::dispatch::DispatchPlan;
use drift_core::arch::functional::FunctionalArray;
use drift_core::arch::{paper_fabric, FabricPartition};
use drift_core::schedule::balanced_schedule;
use drift_core::selector::DriftPolicy;
use drift_quant::linear::QuantParams;
use drift_quant::Precision;
use proptest::prelude::*;

fn reference_gemm(a: &[i32], w: &[i32], m: usize, k: usize, n: usize) -> Vec<i64> {
    let mut out = vec![0i64; m * n];
    for i in 0..m {
        for j in 0..n {
            for p in 0..k {
                out[i * n + j] += i64::from(a[i * k + p]) * i64::from(w[p * n + j]);
            }
        }
    }
    out
}

proptest! {
    /// The register-level fabric computes exactly the reference GEMM
    /// for arbitrary shapes, tilings, and signed operands.
    #[test]
    fn functional_array_is_exact(
        m in 1usize..10,
        k in 1usize..20,
        n in 1usize..12,
        rows in 1usize..8,
        cols in 1usize..8,
        seed in 0u64..1000,
    ) {
        let a: Vec<i32> = (0..m * k)
            .map(|i| ((i as u64).wrapping_mul(seed + 13) % 255) as i32 - 127)
            .collect();
        let w: Vec<i32> = (0..k * n)
            .map(|i| ((i as u64).wrapping_mul(seed + 29) % 15) as i32 - 7)
            .collect();
        let arr = FunctionalArray::new(rows, cols).unwrap();
        let (out, cycles) = arr.run_gemm(&a, &w, m, k, n).unwrap();
        prop_assert_eq!(out, reference_gemm(&a, &w, m, k, n));
        // Cycles equal the per-pass stream model summed over tiles.
        let k_tiles = k.div_ceil(rows) as u64;
        let n_tiles = n.div_ceil(cols) as u64;
        let geo = ArrayGeometry::new(rows, cols).unwrap();
        let per_pass = simulate_stream(&vec![1u32; m], geo, 1).total_cycles;
        prop_assert_eq!(cycles, k_tiles * n_tiles * per_pass);
    }

    /// Eq. 5 structural property: `hc` is non-increasing in `abs_max`
    /// (larger sub-tensors clip less from the high end).
    #[test]
    fn hc_monotone_in_abs_max(a in 1e-4f64..10.0, b in 1e-4f64..10.0) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        let params = QuantParams::from_abs_max(10.0, Precision::INT8);
        let policy = DriftPolicy::new(1.0).unwrap();
        let c_lo = policy.range_choice(lo, &params).unwrap();
        let c_hi = policy.range_choice(hi, &params).unwrap();
        prop_assert!(c_lo.hc() >= c_hi.hc());
    }

    /// Every fabric partition covers all 792 BitGroups, whatever the
    /// cuts.
    #[test]
    fn partitions_conserve_units(col in 0usize..=33, rl in 0usize..=24, rr in 0usize..=24) {
        let p = FabricPartition::new(paper_fabric(), col, rl, rr).unwrap();
        prop_assert_eq!(p.total_units(), 792);
        // Geometries are consistent with the cuts.
        let [hh, _, lh, _] = p.geometries();
        if col > 0 && rl > 0 {
            prop_assert_eq!(hh.unwrap().units(), rl * col);
        }
        if col > 0 && rl < 24 {
            prop_assert_eq!(lh.unwrap().units(), (24 - rl) * col);
        }
    }

    /// The balanced schedule's chosen partition reproduces the reported
    /// latencies when re-evaluated, and dispatch extents match the
    /// quadrants for any workload.
    #[test]
    fn schedule_and_dispatch_agree(
        m in 4usize..200,
        n in 4usize..200,
        fa in 0.0f64..1.0,
        fw in 0.0f64..1.0,
    ) {
        let shape = GemmShape::new(m, 256, n).unwrap();
        let ah = (m as f64 * fa) as usize;
        let wh = (n as f64 * fw) as usize;
        let w = GemmWorkload::new(
            "p",
            shape,
            (0..m).map(|i| (i * 7) % m < ah).collect(),
            (0..n).map(|j| (j * 5) % n < wh).collect(),
        )
        .unwrap();
        let quads = w.quadrants();
        let schedule = balanced_schedule(paper_fabric(), &quads).unwrap();
        let geos = schedule.partition.geometries();
        for (idx, (q, geo)) in quads.iter().zip(geos).enumerate() {
            let re = drift_core::schedule::quadrant_latency(q, geo).unwrap();
            prop_assert_eq!(re, schedule.latencies[idx]);
        }
        let plan = DispatchPlan::build(&w, None).unwrap();
        prop_assert!(plan.is_consistent(m, n));
        let extents = plan.tile_extents();
        for (e, q) in extents.iter().zip(&quads) {
            prop_assert_eq!(*e, (q.rows, q.cols));
        }
    }
}
