//! Property-based tests for the quantization layer, including the
//! integer-GEMM/effective-path equivalence across arbitrary policies.

use drift_quant::convert::ConversionChoice;
use drift_quant::drq::DrqPolicy;
use drift_quant::gating::PrecisionGatingPolicy;
use drift_quant::intgemm::{int_gemm, CodedMatrix};
use drift_quant::linear::{cosine_similarity, dequantize_slice, mse, quantize_slice, sqnr_db};
use drift_quant::policy::{run_policy, PrecisionPolicy, StaticHighPolicy, StaticLowPolicy};
use drift_quant::Precision;
use drift_tensor::subtensor::SubTensorScheme;
use drift_tensor::Tensor;
use proptest::prelude::*;

fn policies() -> Vec<Box<dyn PrecisionPolicy>> {
    vec![
        Box::new(StaticHighPolicy),
        Box::new(StaticLowPolicy::new(Precision::INT4)),
        Box::new(DrqPolicy::new(1.0).unwrap()),
        Box::new(PrecisionGatingPolicy::new(0.3, Precision::INT5).unwrap()),
    ]
}

proptest! {
    /// INT8 quantize→dequantize never increases the absolute maximum
    /// and keeps cosine similarity high for non-trivial signals.
    #[test]
    fn quantization_is_contractive(
        data in proptest::collection::vec(-50.0f32..50.0, 4..128),
    ) {
        let (codes, params) = quantize_slice(&data, Precision::INT8).unwrap();
        let restored = dequantize_slice(&codes, &params);
        let max_in = data.iter().fold(0.0f32, |m, &v| m.max(v.abs()));
        let max_out = restored.iter().fold(0.0f32, |m, &v| m.max(v.abs()));
        prop_assert!(max_out <= max_in * (1.0 + 1e-5) + 1e-6);
        if max_in > 1.0 {
            prop_assert!(cosine_similarity(&data, &restored) > 0.99);
            prop_assert!(sqnr_db(&data, &restored) > 20.0);
        }
    }

    /// Converting INT8 codes through every (hc, lc) choice and
    /// reconstructing never exceeds the sum of saturation plus rounding
    /// error bounds.
    #[test]
    fn conversion_error_decomposes(code in -127i32..=127) {
        let params =
            drift_quant::linear::QuantParams::from_abs_max(1.27, Precision::INT8);
        for choice in ConversionChoice::enumerate(Precision::INT8, Precision::INT4) {
            let low = choice.apply_value(code);
            let restored = f64::from(choice.dequantize_value(low, &params));
            let original = f64::from(code) * params.scale;
            let cap = choice.lp().q_max() << choice.lc();
            let saturation = (f64::from(code.abs() - cap)).max(0.0) * params.scale;
            let bound = choice.max_rounding_error(&params) + saturation + 1e-6;
            prop_assert!(
                (restored - original).abs() <= bound,
                "choice {choice}, code {code}: err {} > bound {bound}",
                (restored - original).abs()
            );
        }
    }

    /// run_policy's effective tensor is identical (up to f32 rounding)
    /// to the CodedMatrix dequantization for every policy — the two
    /// compute paths in the workspace agree.
    #[test]
    fn effective_paths_agree(
        rows in 1usize..8,
        cols in 2usize..16,
        seed in 0u64..500,
    ) {
        let t = Tensor::from_fn(vec![rows, cols], |i| {
            let x = (i as u64).wrapping_mul(seed.wrapping_add(17)) % 1000;
            (x as f32 - 500.0) / 173.0
        })
        .unwrap();
        for policy in policies() {
            let run = run_policy(
                &t,
                &SubTensorScheme::token(cols),
                Precision::INT8,
                policy.as_ref(),
            )
            .unwrap();
            let coded =
                CodedMatrix::encode_rows(&t, Precision::INT8, policy.as_ref()).unwrap();
            let eff = coded.to_effective();
            for (a, b) in eff.iter().zip(run.effective.iter()) {
                prop_assert!((a - b).abs() < 1e-5, "{} vs {}", a, b);
            }
        }
    }

    /// int_gemm equals the f64 GEMM of the effective tensors for every
    /// policy and random operands.
    #[test]
    fn int_gemm_exactness(
        m in 1usize..6,
        k in 1usize..12,
        n in 1usize..6,
        seed in 0u64..200,
    ) {
        let a = Tensor::from_fn(vec![m, k], |i| {
            ((i as u64).wrapping_mul(seed + 3) % 97) as f32 / 48.5 - 1.0
        })
        .unwrap();
        let b = Tensor::from_fn(vec![k, n], |i| {
            ((i as u64).wrapping_mul(seed + 7) % 89) as f32 / 44.5 - 1.0
        })
        .unwrap();
        for policy in policies() {
            let ca = CodedMatrix::encode_rows(&a, Precision::INT8, policy.as_ref()).unwrap();
            let cb = CodedMatrix::encode_cols(&b, Precision::INT8, policy.as_ref()).unwrap();
            let c = int_gemm(&ca, &cb).unwrap();
            let (ea, eb) = (ca.to_effective(), cb.to_effective());
            for i in 0..m {
                for j in 0..n {
                    let mut acc = 0.0f64;
                    for p in 0..k {
                        acc += f64::from(ea.as_slice()[i * k + p])
                            * f64::from(eb.as_slice()[p * n + j]);
                    }
                    let got = f64::from(c.as_slice()[i * n + j]);
                    prop_assert!(
                        (acc - got).abs() <= acc.abs().max(1.0) * 1e-4,
                        "({i},{j}): {acc} vs {got} under {}",
                        policy.name()
                    );
                }
            }
        }
    }

    /// run_policy never increases MSE when moving from a low to a high
    /// static policy.
    #[test]
    fn static_high_never_lossier_than_static_low(
        rows in 1usize..6,
        cols in 2usize..16,
        seed in 0u64..200,
    ) {
        let t = Tensor::from_fn(vec![rows, cols], |i| {
            ((i as u64).wrapping_mul(seed + 11) % 211) as f32 / 105.5 - 1.0
        })
        .unwrap();
        let scheme = SubTensorScheme::token(cols);
        let high = run_policy(&t, &scheme, Precision::INT8, &StaticHighPolicy).unwrap();
        let low = run_policy(
            &t,
            &scheme,
            Precision::INT8,
            &StaticLowPolicy::new(Precision::INT4),
        )
        .unwrap();
        prop_assert!(
            mse(t.as_slice(), high.effective.as_slice())
                <= mse(t.as_slice(), low.effective.as_slice()) + 1e-12
        );
    }

    /// Decision accounting: low_fraction is consistent with the
    /// per-decision list.
    #[test]
    fn low_fraction_consistent(
        rows in 1usize..10,
        cols in 2usize..12,
        alpha in 0.0f64..2.0,
        seed in 0u64..200,
    ) {
        let t = Tensor::from_fn(vec![rows, cols], |i| {
            let r = i / cols;
            let scale = 0.05 * (1 + r * r) as f32;
            scale * (((i as u64).wrapping_mul(seed + 5) % 13) as f32 - 6.0)
        })
        .unwrap();
        let drq = DrqPolicy::new(alpha).unwrap();
        let run =
            run_policy(&t, &SubTensorScheme::token(cols), Precision::INT8, &drq).unwrap();
        let low_elems: usize = run
            .decisions
            .iter()
            .filter(|d| d.decision.is_low())
            .map(|d| d.len)
            .sum();
        let total: usize = run.decisions.iter().map(|d| d.len).sum();
        prop_assert!((run.low_fraction() - low_elems as f64 / total as f64).abs() < 1e-12);
        prop_assert_eq!(total, rows * cols);
    }
}
