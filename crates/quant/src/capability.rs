//! Representation capability: range (RR) and density (RD).
//!
//! Paper Section 3.2 evaluates a candidate low-precision encoding by two
//! metrics. For an `hp`-bit sub-tensor converted by clipping `hc` high
//! bits and `lc` low bits (scale `Δ`):
//!
//! ```text
//! RR = (2^(hp-1) - 1) / 2^hc · Δ     — largest representable magnitude
//! RD = 2^lc · Δ                      — quantization step (rounding error)
//! ```
//!
//! (paper Eq. 3). The selection algorithm in `drift-core` requires
//! `RR ≥ max(|Y|)` (Eq. 5) and `var(Y) / RD ≥ δ` (Eq. 6).

use crate::convert::ConversionChoice;
use crate::linear::QuantParams;
use serde::{Deserialize, Serialize};

/// The representation capability of a (conversion, scale) pair.
///
/// # Example
///
/// ```rust
/// use drift_quant::capability::RepresentationCapability;
/// use drift_quant::convert::ConversionChoice;
/// use drift_quant::linear::QuantParams;
/// use drift_quant::Precision;
///
/// # fn main() -> Result<(), drift_quant::QuantError> {
/// let params = QuantParams::from_abs_max(1.27, Precision::INT8);
/// let keep_range = ConversionChoice::new(Precision::INT8, Precision::INT4, 0, 4)?;
/// let keep_density = ConversionChoice::new(Precision::INT8, Precision::INT4, 4, 0)?;
///
/// let rc_range = RepresentationCapability::of(&keep_range, &params);
/// let rc_density = RepresentationCapability::of(&keep_density, &params);
///
/// // (hc=0) keeps the full range but has a 16x coarser step;
/// // (hc=4) keeps the fine step but can only represent 1/16 of the range.
/// assert!(rc_range.range > rc_density.range);
/// assert!(rc_range.density > rc_density.density);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RepresentationCapability {
    /// Representation range RR: the largest magnitude the encoding can
    /// express (paper Eq. 3, first line).
    pub range: f64,
    /// Representation density RD: the quantization step, i.e. the
    /// magnitude of rounding error the encoding introduces (paper Eq. 3,
    /// second line). *Smaller* density values mean a *denser* grid.
    pub density: f64,
}

impl RepresentationCapability {
    /// Computes the capability of `choice` under the original scale in
    /// `params` (paper Eq. 3).
    pub fn of(choice: &ConversionChoice, params: &QuantParams) -> Self {
        let hp_max = f64::from(choice.hp().q_max());
        RepresentationCapability {
            range: hp_max / f64::from(1u32 << choice.hc()) * params.scale,
            density: f64::from(1u32 << choice.lc()) * params.scale,
        }
    }

    /// Capability of the unconverted high-precision encoding itself:
    /// `RR = max(|X|)` and `RD = Δ`.
    pub fn of_params(params: &QuantParams) -> Self {
        RepresentationCapability {
            range: params.representation_range(),
            density: params.representation_density(),
        }
    }

    /// The representation-range test of paper Eq. 5: can this encoding
    /// represent a sub-tensor whose largest magnitude is `abs_max`?
    pub fn covers(&self, abs_max: f64) -> bool {
        self.range >= abs_max
    }

    /// The representation-density ratio of paper Eq. 6:
    /// `var(Y) / RD`, to be compared against the threshold δ.
    /// Returns `+inf` when the density is zero (degenerate all-zero
    /// scale).
    pub fn density_ratio(&self, variance: f64) -> f64 {
        if self.density == 0.0 {
            f64::INFINITY
        } else {
            variance / self.density
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::precision::Precision;

    fn params() -> QuantParams {
        QuantParams::from_abs_max(12.7, Precision::INT8)
    }

    #[test]
    fn eq3_values() {
        let p = params(); // Δ = 0.1
        let c = ConversionChoice::new(Precision::INT8, Precision::INT4, 2, 2).unwrap();
        let rc = RepresentationCapability::of(&c, &p);
        assert!((rc.range - 127.0 / 4.0 * 0.1).abs() < 1e-9);
        assert!((rc.density - 0.4).abs() < 1e-9);
    }

    #[test]
    fn identity_matches_params_capability() {
        let p = params();
        let id = ConversionChoice::identity(Precision::INT8);
        let rc = RepresentationCapability::of(&id, &p);
        let rp = RepresentationCapability::of_params(&p);
        assert!((rc.range - rp.range).abs() < 1e-9);
        assert!((rc.density - rp.density).abs() < 1e-9);
    }

    #[test]
    fn range_halves_per_high_clip_bit() {
        let p = params();
        let choices = ConversionChoice::enumerate(Precision::INT8, Precision::INT4);
        for pair in choices.windows(2) {
            let a = RepresentationCapability::of(&pair[0], &p);
            let b = RepresentationCapability::of(&pair[1], &p);
            assert!((a.range / b.range - 2.0).abs() < 1e-9);
            assert!((a.density / b.density - 2.0).abs() < 1e-9);
        }
    }

    #[test]
    fn covers_is_range_test() {
        let p = params();
        let c = ConversionChoice::new(Precision::INT8, Precision::INT4, 3, 1).unwrap();
        let rc = RepresentationCapability::of(&c, &p);
        assert!(rc.covers(1.0));
        assert!(!rc.covers(2.0)); // RR = 127/8 * 0.1 ≈ 1.5875
    }

    #[test]
    fn density_ratio_scales_inverse_with_lc() {
        let p = params();
        let fine = ConversionChoice::new(Precision::INT8, Precision::INT4, 4, 0).unwrap();
        let coarse = ConversionChoice::new(Precision::INT8, Precision::INT4, 0, 4).unwrap();
        let var = 0.8;
        let r_fine = RepresentationCapability::of(&fine, &p).density_ratio(var);
        let r_coarse = RepresentationCapability::of(&coarse, &p).density_ratio(var);
        assert!((r_fine / r_coarse - 16.0).abs() < 1e-9);
    }

    #[test]
    fn zero_scale_density_ratio_is_infinite() {
        let p = QuantParams::from_abs_max(0.0, Precision::INT8);
        let c = ConversionChoice::new(Precision::INT8, Precision::INT4, 0, 4).unwrap();
        let rc = RepresentationCapability::of(&c, &p);
        assert_eq!(rc.density_ratio(1.0), f64::INFINITY);
    }
}
