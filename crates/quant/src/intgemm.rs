//! Exact integer GEMM over mixed-precision codes — the compute path the
//! hardware actually executes.
//!
//! The accelerator never touches floats: activations and weights arrive
//! as small integer codes with per-sub-tensor scales, BitBricks multiply
//! code bits, and wide integer accumulators collect the products; the
//! float value is recovered once, at the output, as
//! `acc · scale_row · scale_col`. This module implements that path
//! bit-exactly so the simulators and the (dequantize-then-f32) engine
//! path can be cross-checked against each other: for any policy, the
//! integer GEMM of the coded operands equals the f32 GEMM of the
//! effective (dequantized) tensors.

use crate::linear::{quantize_slice, QuantParams};
use crate::policy::{Decision, PolicyRun, PrecisionPolicy, SubTensorDecision, TensorContext};
use crate::precision::Precision;
use crate::{QuantError, Result};
use drift_tensor::stats::SummaryStats;
use drift_tensor::Tensor;
use serde::{Deserialize, Serialize};

/// A row-major integer-coded matrix with one scale per row group
/// (activations) or per column group (weights).
///
/// # Example
///
/// ```rust
/// use drift_quant::intgemm::{int_gemm, CodedMatrix};
/// use drift_quant::policy::StaticHighPolicy;
/// use drift_quant::Precision;
/// use drift_tensor::Tensor;
///
/// # fn main() -> Result<(), drift_quant::QuantError> {
/// let a = Tensor::from_fn(vec![4, 8], |i| (i as f32).sin()).unwrap();
/// let b = Tensor::from_fn(vec![8, 3], |i| (i as f32).cos()).unwrap();
/// let ca = CodedMatrix::encode_rows(&a, Precision::INT8, &StaticHighPolicy)?;
/// let cb = CodedMatrix::encode_cols(&b, Precision::INT8, &StaticHighPolicy)?;
/// let c = int_gemm(&ca, &cb)?;
/// assert_eq!(c.shape().dims(), &[4, 3]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CodedMatrix {
    rows: usize,
    cols: usize,
    /// Row-major codes.
    codes: Vec<i32>,
    /// One scale per row (row-coded) or per column (column-coded).
    scales: Vec<f64>,
    /// One effective precision per row/column group.
    precisions: Vec<Precision>,
    /// True when scales index rows; false when they index columns.
    row_major_scales: bool,
}

impl CodedMatrix {
    /// Encodes a rank-2 tensor with one sub-tensor per *row* (the
    /// activation layout: every GEMM row is a token), running `policy`
    /// per row exactly as the precision selector does.
    ///
    /// # Errors
    ///
    /// Returns [`QuantError::InvalidParameter`] for non-rank-2 input.
    pub fn encode_rows(
        tensor: &Tensor,
        hp: Precision,
        policy: &dyn PrecisionPolicy,
    ) -> Result<Self> {
        let (rows, cols) = matrix_dims(tensor)?;
        let (codes8, params) = quantize_slice(tensor.as_slice(), hp)?;
        let ctx = context_for(tensor, params);
        let mut codes = Vec::with_capacity(rows * cols);
        let mut scales = Vec::with_capacity(rows);
        let mut precisions = Vec::with_capacity(rows);
        for r in 0..rows {
            let row = &tensor.as_slice()[r * cols..(r + 1) * cols];
            let stats = SummaryStats::from_slice(row);
            let decision = policy.decide(&ctx, &stats);
            let row_codes = &codes8[r * cols..(r + 1) * cols];
            let (converted, scale, precision) = encode_group(row_codes, decision, &params);
            codes.extend(converted);
            scales.push(scale);
            precisions.push(precision);
        }
        Ok(CodedMatrix {
            rows,
            cols,
            codes,
            scales,
            precisions,
            row_major_scales: true,
        })
    }

    /// Encodes a rank-2 tensor with one sub-tensor per *column* (the
    /// weight layout: every GEMM column is an output channel).
    ///
    /// # Errors
    ///
    /// Returns [`QuantError::InvalidParameter`] for non-rank-2 input.
    pub fn encode_cols(
        tensor: &Tensor,
        hp: Precision,
        policy: &dyn PrecisionPolicy,
    ) -> Result<Self> {
        let (rows, cols) = matrix_dims(tensor)?;
        let (codes8, params) = quantize_slice(tensor.as_slice(), hp)?;
        let ctx = context_for(tensor, params);
        let data = tensor.as_slice();
        let mut codes = vec![0i32; rows * cols];
        let mut scales = Vec::with_capacity(cols);
        let mut precisions = Vec::with_capacity(cols);
        for c in 0..cols {
            let column: Vec<f32> = (0..rows).map(|r| data[r * cols + c]).collect();
            let stats = SummaryStats::from_slice(&column);
            let decision = policy.decide(&ctx, &stats);
            let col_codes: Vec<i32> = (0..rows).map(|r| codes8[r * cols + c]).collect();
            let (converted, scale, precision) = encode_group(&col_codes, decision, &params);
            for (r, v) in converted.into_iter().enumerate() {
                codes[r * cols + c] = v;
            }
            scales.push(scale);
            precisions.push(precision);
        }
        Ok(CodedMatrix {
            rows,
            cols,
            codes,
            scales,
            precisions,
            row_major_scales: false,
        })
    }

    /// Builds the row-coded matrix from a pre-computed [`PolicyRun`]
    /// (so engine-side decisions and integer-path decisions provably
    /// coincide).
    ///
    /// # Errors
    ///
    /// Returns [`QuantError::InvalidParameter`] when the run's decisions
    /// do not form one-per-row token groups.
    pub fn from_policy_run(tensor: &Tensor, run: &PolicyRun, hp: Precision) -> Result<Self> {
        let (rows, cols) = matrix_dims(tensor)?;
        if run.decisions.len() != rows || run.decisions.iter().any(|d| d.len != cols) {
            return Err(QuantError::InvalidParameter {
                name: "run",
                detail: "policy run is not token-per-row".to_string(),
            });
        }
        let (codes8, params) = quantize_slice(tensor.as_slice(), hp)?;
        let mut codes = Vec::with_capacity(rows * cols);
        let mut scales = Vec::with_capacity(rows);
        let mut precisions = Vec::with_capacity(rows);
        for (r, SubTensorDecision { decision, .. }) in run.decisions.iter().enumerate() {
            let row_codes = &codes8[r * cols..(r + 1) * cols];
            let (converted, scale, precision) = encode_group(row_codes, *decision, &params);
            codes.extend(converted);
            scales.push(scale);
            precisions.push(precision);
        }
        Ok(CodedMatrix {
            rows,
            cols,
            codes,
            scales,
            precisions,
            row_major_scales: true,
        })
    }

    /// Rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// The integer codes, row-major.
    pub fn codes(&self) -> &[i32] {
        &self.codes
    }

    /// Per-group scales (rows for activations, columns for weights).
    pub fn scales(&self) -> &[f64] {
        &self.scales
    }

    /// Per-group effective precisions.
    pub fn precisions(&self) -> &[Precision] {
        &self.precisions
    }

    /// The effective (dequantized) tensor this coding represents — the
    /// same values [`crate::policy::run_policy`] produces.
    pub fn to_effective(&self) -> Tensor {
        let mut data = Vec::with_capacity(self.rows * self.cols);
        for r in 0..self.rows {
            for c in 0..self.cols {
                let scale = if self.row_major_scales {
                    self.scales[r]
                } else {
                    self.scales[c]
                };
                data.push((f64::from(self.codes[r * self.cols + c]) * scale) as f32);
            }
        }
        Tensor::from_vec(vec![self.rows, self.cols], data).expect("dims are consistent")
    }

    /// Fraction of groups at a precision strictly below `hp`.
    pub fn low_fraction(&self, hp: Precision) -> f64 {
        let low = self
            .precisions
            .iter()
            .filter(|p| p.bits() < hp.bits())
            .count();
        low as f64 / self.precisions.len() as f64
    }
}

/// Multiplies a row-coded activation matrix by a column-coded weight
/// matrix with exact integer accumulation (i64 accumulators, like the
/// hardware's wide psum registers), scaling once at the output.
///
/// # Errors
///
/// Returns [`QuantError::InvalidParameter`] on inner-dimension or
/// layout mismatch.
pub fn int_gemm(a: &CodedMatrix, b: &CodedMatrix) -> Result<Tensor> {
    if !a.row_major_scales || b.row_major_scales {
        return Err(QuantError::InvalidParameter {
            name: "layout",
            detail: "int_gemm needs row-coded activations x column-coded weights".to_string(),
        });
    }
    if a.cols != b.rows {
        return Err(QuantError::InvalidParameter {
            name: "shapes",
            detail: format!("inner dims {} vs {}", a.cols, b.rows),
        });
    }
    let (m, k, n) = (a.rows, a.cols, b.cols);
    let mut out = vec![0.0f32; m * n];
    for i in 0..m {
        let arow = &a.codes[i * k..(i + 1) * k];
        let mut acc = vec![0i64; n];
        for (p, &av) in arow.iter().enumerate() {
            if av == 0 {
                continue;
            }
            let brow = &b.codes[p * n..(p + 1) * n];
            for (j, &bv) in brow.iter().enumerate() {
                acc[j] += i64::from(av) * i64::from(bv);
            }
        }
        for j in 0..n {
            out[i * n + j] = (acc[j] as f64 * a.scales[i] * b.scales[j]) as f32;
        }
    }
    Ok(Tensor::from_vec(vec![m, n], out)?)
}

fn matrix_dims(tensor: &Tensor) -> Result<(usize, usize)> {
    let dims = tensor.shape().dims();
    if dims.len() != 2 {
        return Err(QuantError::InvalidParameter {
            name: "tensor",
            detail: format!("expected rank-2, got {:?}", dims),
        });
    }
    Ok((dims[0], dims[1]))
}

fn context_for(tensor: &Tensor, params: QuantParams) -> TensorContext {
    TensorContext {
        global: SummaryStats::from_slice(tensor.as_slice()),
        params,
    }
}

/// Applies a decision to a group of INT8 codes, returning the final
/// codes, their effective scale, and their effective precision.
fn encode_group(
    codes8: &[i32],
    decision: Decision,
    params: &QuantParams,
) -> (Vec<i32>, f64, Precision) {
    match decision {
        Decision::Keep => (codes8.to_vec(), params.scale, params.precision),
        Decision::Convert(choice) => (
            choice.apply_slice(codes8),
            choice.effective_scale(params),
            choice.lp(),
        ),
    }
}

/// Convenience: the identity conversion's encoding of a tensor at `hp`
/// with per-row scales (used by tests and the functional fabric model).
///
/// # Errors
///
/// Propagates encoding errors.
pub fn encode_rows_static(tensor: &Tensor, hp: Precision) -> Result<CodedMatrix> {
    CodedMatrix::encode_rows(tensor, hp, &crate::policy::StaticHighPolicy)
}

/// The identity check behind this module: for arbitrary policies, the
/// integer path and the dequantize-then-f32 path agree. Exposed so
/// integration tests across crates can reuse it.
///
/// # Errors
///
/// Propagates encoding errors.
///
/// # Panics
///
/// Panics when the two paths disagree beyond f32 rounding — that is the
/// assertion being exported.
pub fn assert_paths_agree(
    acts: &Tensor,
    weights: &Tensor,
    hp: Precision,
    policy: &dyn PrecisionPolicy,
) -> Result<()> {
    let ca = CodedMatrix::encode_rows(acts, hp, policy)?;
    let cb = CodedMatrix::encode_cols(weights, hp, policy)?;
    let integer = int_gemm(&ca, &cb)?;

    // Reference: f32 GEMM of the effective tensors.
    let ea = ca.to_effective();
    let eb = cb.to_effective();
    let (m, k) = (ea.shape().dims()[0], ea.shape().dims()[1]);
    let n = eb.shape().dims()[1];
    let (av, bv) = (ea.as_slice(), eb.as_slice());
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0.0f64;
            for p in 0..k {
                acc += f64::from(av[i * k + p]) * f64::from(bv[p * n + j]);
            }
            let int_v = f64::from(integer.as_slice()[i * n + j]);
            let tol = acc.abs().max(1.0) * 1e-4;
            assert!(
                (acc - int_v).abs() <= tol,
                "paths disagree at ({i},{j}): {acc} vs {int_v}"
            );
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::drq::DrqPolicy;
    use crate::policy::{run_policy, StaticHighPolicy, StaticLowPolicy};
    use drift_tensor::subtensor::SubTensorScheme;

    fn acts() -> Tensor {
        Tensor::from_fn(vec![6, 16], |i| {
            let token = i / 16;
            let scale = 0.05 * (1 + token * token) as f32;
            scale * ((((i * 29) % 13) as f32) - 6.0) / 6.0
        })
        .unwrap()
    }

    fn weights() -> Tensor {
        Tensor::from_fn(vec![16, 5], |i| ((((i * 17) % 11) as f32) - 5.0) * 0.07).unwrap()
    }

    #[test]
    fn encode_rows_shapes_and_scales() {
        let m = CodedMatrix::encode_rows(&acts(), Precision::INT8, &StaticHighPolicy).unwrap();
        assert_eq!((m.rows(), m.cols()), (6, 16));
        assert_eq!(m.scales().len(), 6);
        assert_eq!(m.precisions().len(), 6);
        assert!(m.scales().iter().all(|&s| s > 0.0));
        assert_eq!(m.low_fraction(Precision::INT8), 0.0);
    }

    #[test]
    fn encode_cols_transposed_grouping() {
        let m = CodedMatrix::encode_cols(&weights(), Precision::INT8, &StaticHighPolicy).unwrap();
        assert_eq!((m.rows(), m.cols()), (16, 5));
        assert_eq!(m.scales().len(), 5);
    }

    #[test]
    fn rejects_non_matrix() {
        let t = Tensor::zeros(vec![2, 2, 2]).unwrap();
        assert!(CodedMatrix::encode_rows(&t, Precision::INT8, &StaticHighPolicy).is_err());
    }

    #[test]
    fn int_gemm_rejects_mismatches() {
        let a = CodedMatrix::encode_rows(&acts(), Precision::INT8, &StaticHighPolicy).unwrap();
        let b = CodedMatrix::encode_rows(&weights(), Precision::INT8, &StaticHighPolicy).unwrap();
        // Both row-coded: layout error.
        assert!(int_gemm(&a, &b).is_err());
        let bad = CodedMatrix::encode_cols(&acts(), Precision::INT8, &StaticHighPolicy).unwrap();
        // Inner dims 16 vs 6.
        assert!(int_gemm(&a, &bad).is_err());
    }

    #[test]
    fn integer_path_matches_effective_path_int8() {
        assert_paths_agree(&acts(), &weights(), Precision::INT8, &StaticHighPolicy).unwrap();
    }

    #[test]
    fn integer_path_matches_effective_path_int4() {
        assert_paths_agree(
            &acts(),
            &weights(),
            Precision::INT8,
            &StaticLowPolicy::new(Precision::INT4),
        )
        .unwrap();
    }

    #[test]
    fn integer_path_matches_effective_path_drq() {
        assert_paths_agree(
            &acts(),
            &weights(),
            Precision::INT8,
            &DrqPolicy::new(1.0).unwrap(),
        )
        .unwrap();
    }

    #[test]
    fn from_policy_run_matches_encode_rows() {
        let a = acts();
        let policy = StaticLowPolicy::new(Precision::INT4);
        let run = run_policy(&a, &SubTensorScheme::token(16), Precision::INT8, &policy).unwrap();
        let via_run = CodedMatrix::from_policy_run(&a, &run, Precision::INT8).unwrap();
        let direct = CodedMatrix::encode_rows(&a, Precision::INT8, &policy).unwrap();
        assert_eq!(via_run, direct);
        // And the effective tensor equals run_policy's.
        let eff = via_run.to_effective();
        for (x, y) in eff.iter().zip(run.effective.iter()) {
            assert!((x - y).abs() < 1e-6);
        }
    }

    #[test]
    fn from_policy_run_rejects_wrong_granularity() {
        let a = acts();
        let run = run_policy(
            &a,
            &SubTensorScheme::token(8), // half-rows, not rows
            Precision::INT8,
            &StaticHighPolicy,
        )
        .unwrap();
        assert!(CodedMatrix::from_policy_run(&a, &run, Precision::INT8).is_err());
    }

    #[test]
    fn accumulators_hold_worst_case() {
        // Saturated INT8 codes over a wide K must not overflow i64:
        // 127 * 127 * K fits easily, but verify end-to-end.
        let a = Tensor::full(vec![2, 4096], 1.0).unwrap();
        let b = Tensor::full(vec![4096, 2], 1.0).unwrap();
        let ca = encode_rows_static(&a, Precision::INT8).unwrap();
        let cb = CodedMatrix::encode_cols(&b, Precision::INT8, &StaticHighPolicy).unwrap();
        let c = int_gemm(&ca, &cb).unwrap();
        for &v in c.as_slice() {
            assert!((f64::from(v) - 4096.0).abs() < 1.0);
        }
    }
}
