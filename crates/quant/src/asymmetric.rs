//! Asymmetric (zero-point) quantization for one-sided data.
//!
//! Symmetric quantization (Eq. 1) wastes half its codes on one-sided
//! tensors — post-ReLU/GELU activations in particular. Every practical
//! PTQ pipeline therefore quantizes such tensors *asymmetrically*: the
//! data is centred on the midpoint of its range, coded symmetrically,
//! and the zero-point is folded back at the accumulator. Drift's
//! dynamic conversion machinery composes unchanged with this: the
//! conversion operates on the centred codes, and the zero-point rides
//! in the index metadata beside the scale.
//!
//! [`AsymmetricQuantizer`] wraps the whole round trip at sub-tensor
//! granularity.

use crate::policy::{run_policy, PolicyRun, PrecisionPolicy};
use crate::precision::Precision;
use crate::Result;
use drift_tensor::subtensor::SubTensorScheme;
use drift_tensor::Tensor;
use serde::{Deserialize, Serialize};

/// The result of an asymmetric policy run: the effective tensor plus
/// the per-sub-tensor zero points.
#[derive(Debug, Clone, PartialEq)]
pub struct AsymmetricRun {
    /// The underlying (centred-domain) policy run.
    pub run: PolicyRun,
    /// The effective tensor with zero-points restored.
    pub effective: Tensor,
    /// One zero-point per sub-tensor, in view order.
    pub zero_points: Vec<f32>,
}

impl AsymmetricRun {
    /// Fraction of elements computing at low precision.
    pub fn low_fraction(&self) -> f64 {
        self.run.low_fraction()
    }
}

/// Asymmetric per-sub-tensor quantization driven by any
/// [`PrecisionPolicy`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AsymmetricQuantizer {
    hp: Precision,
}

impl AsymmetricQuantizer {
    /// Creates a quantizer with initial precision `hp`.
    pub fn new(hp: Precision) -> Self {
        AsymmetricQuantizer { hp }
    }

    /// Quantizes `tensor` under `scheme`: each sub-tensor is centred on
    /// the midpoint of its own range (its zero-point), the symmetric
    /// policy pipeline runs on the centred data, and the zero-points
    /// are restored in the effective output.
    ///
    /// # Errors
    ///
    /// Propagates partition and policy errors.
    pub fn run(
        &self,
        tensor: &Tensor,
        scheme: &SubTensorScheme,
        policy: &dyn PrecisionPolicy,
    ) -> Result<AsymmetricRun> {
        let views = scheme
            .partition(tensor.shape())
            .map_err(crate::QuantError::from)?;
        let mut centred = tensor.clone();
        let mut zero_points = Vec::with_capacity(views.len());
        for view in &views {
            let values = tensor.subtensor(view).map_err(crate::QuantError::from)?;
            let (mut lo, mut hi) = (f32::INFINITY, f32::NEG_INFINITY);
            for &v in &values {
                lo = lo.min(v);
                hi = hi.max(v);
            }
            let zp = (lo + hi) * 0.5;
            zero_points.push(zp);
            let shifted: Vec<f32> = values.iter().map(|&v| v - zp).collect();
            centred
                .set_subtensor(view, &shifted)
                .map_err(crate::QuantError::from)?;
        }
        let run = run_policy(&centred, scheme, self.hp, policy)?;
        let mut effective = run.effective.clone();
        for (view, &zp) in views.iter().zip(&zero_points) {
            let values = effective.subtensor(view).map_err(crate::QuantError::from)?;
            let restored: Vec<f32> = values.iter().map(|&v| v + zp).collect();
            effective
                .set_subtensor(view, &restored)
                .map_err(crate::QuantError::from)?;
        }
        Ok(AsymmetricRun {
            run,
            effective,
            zero_points,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linear::mse;
    use crate::policy::{StaticHighPolicy, StaticLowPolicy};

    /// A strongly one-sided tensor (post-GELU-like).
    fn one_sided() -> Tensor {
        Tensor::from_fn(vec![4, 32], |i| 1.0 + 0.5 * (((i * 37) % 17) as f32 / 17.0)).unwrap()
    }

    #[test]
    fn zero_points_are_range_midpoints() {
        let q = AsymmetricQuantizer::new(Precision::INT8);
        let t = one_sided();
        let out = q
            .run(&t, &SubTensorScheme::token(32), &StaticHighPolicy)
            .unwrap();
        assert_eq!(out.zero_points.len(), 4);
        for (r, &zp) in out.zero_points.iter().enumerate() {
            let row = &t.as_slice()[r * 32..(r + 1) * 32];
            let lo = row.iter().cloned().fold(f32::INFINITY, f32::min);
            let hi = row.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
            assert!((zp - (lo + hi) * 0.5).abs() < 1e-6);
        }
    }

    #[test]
    fn asymmetric_beats_symmetric_on_one_sided_data() {
        let t = one_sided();
        let scheme = SubTensorScheme::token(32);
        let low = StaticLowPolicy::new(Precision::INT4);
        let sym = run_policy(&t, &scheme, Precision::INT8, &low).unwrap();
        let asym = AsymmetricQuantizer::new(Precision::INT8)
            .run(&t, &scheme, &low)
            .unwrap();
        let e_sym = mse(t.as_slice(), sym.effective.as_slice());
        let e_asym = mse(t.as_slice(), asym.effective.as_slice());
        assert!(
            e_asym < e_sym * 0.5,
            "asymmetric {e_asym} should clearly beat symmetric {e_sym}"
        );
    }

    #[test]
    fn matches_symmetric_on_centred_data() {
        // Zero-mean symmetric-range data: zero-points ~ 0 and the two
        // paths coincide.
        let t = Tensor::from_fn(vec![2, 16], |i| {
            let v = ((i * 13) % 9) as f32 - 4.0;
            v * 0.1
        })
        .unwrap();
        let scheme = SubTensorScheme::token(16);
        let sym = run_policy(&t, &scheme, Precision::INT8, &StaticHighPolicy).unwrap();
        let asym = AsymmetricQuantizer::new(Precision::INT8)
            .run(&t, &scheme, &StaticHighPolicy)
            .unwrap();
        for (a, b) in asym.effective.iter().zip(sym.effective.iter()) {
            assert!((a - b).abs() < 1e-3, "{a} vs {b}");
        }
    }

    #[test]
    fn low_fraction_passthrough() {
        let t = one_sided();
        let out = AsymmetricQuantizer::new(Precision::INT8)
            .run(
                &t,
                &SubTensorScheme::token(32),
                &StaticLowPolicy::new(Precision::INT4),
            )
            .unwrap();
        assert_eq!(out.low_fraction(), 1.0);
    }

    #[test]
    fn constant_subtensors_are_exact() {
        // A constant sub-tensor centres to all-zeros: representable
        // exactly at any precision.
        let t = Tensor::full(vec![2, 8], 3.7).unwrap();
        let out = AsymmetricQuantizer::new(Precision::INT8)
            .run(
                &t,
                &SubTensorScheme::token(8),
                &StaticLowPolicy::new(Precision::INT4),
            )
            .unwrap();
        for &v in out.effective.as_slice() {
            assert!((v - 3.7).abs() < 1e-6);
        }
    }
}
