//! The precision-policy interface between quantization algorithms and the
//! inference engine, plus the static baselines.
//!
//! A [`PrecisionPolicy`] receives, for each sub-tensor, the streaming
//! statistics the accelerator's pooling unit computes (`max|Y|`,
//! `avg|Y|`, …) and returns a [`Decision`]: keep the initial
//! high-precision encoding, or convert to low precision with a specific
//! [`ConversionChoice`]. The Drift selection algorithm (in `drift-core`),
//! the DRQ baseline ([`crate::drq`]), and the static baselines below all
//! implement this trait, so the engine and the hardware simulators can
//! treat them interchangeably.

use crate::convert::ConversionChoice;
use crate::linear::{dequantize_slice, quantize_slice, QuantParams};
use crate::precision::Precision;
use crate::Result;
use drift_tensor::stats::SummaryStats;
use drift_tensor::subtensor::SubTensorScheme;
use drift_tensor::Tensor;
use serde::{Deserialize, Serialize};

/// A per-sub-tensor precision decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Decision {
    /// Keep the initial high-precision encoding.
    Keep,
    /// Convert to low precision with the given choice.
    Convert(ConversionChoice),
}

impl Decision {
    /// The bit width this decision computes at, given the initial
    /// precision `hp`.
    pub fn bits(&self, hp: Precision) -> Precision {
        match self {
            Decision::Keep => hp,
            Decision::Convert(choice) => choice.lp(),
        }
    }

    /// Whether the decision selects low precision.
    pub fn is_low(&self) -> bool {
        matches!(self, Decision::Convert(_))
    }
}

/// Whole-tensor context handed to a policy alongside each sub-tensor's
/// statistics. DRQ's sensitivity criterion, for example, compares a
/// region's mean magnitude against the whole tensor's.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TensorContext {
    /// Statistics over the entire tensor.
    pub global: SummaryStats,
    /// The initial quantization parameters (scale Δ and precision hp).
    pub params: QuantParams,
}

/// A dynamic (or static) precision-selection algorithm.
///
/// Implementations must be deterministic functions of their inputs: the
/// hardware precision selector evaluates them on the fly (paper
/// Section 4.1) and replays must agree.
pub trait PrecisionPolicy {
    /// A short, stable name for reports ("drift", "drq", "int8", …).
    fn name(&self) -> &str;

    /// Decides the precision for one sub-tensor.
    fn decide(&self, ctx: &TensorContext, stats: &SummaryStats) -> Decision;

    /// The low precision this policy targets (used by hardware mapping to
    /// size low-precision tiles). Defaults to INT4, the paper's setting.
    fn low_precision(&self) -> Precision {
        Precision::INT4
    }
}

/// Static high-precision policy: every sub-tensor keeps the initial
/// encoding. With `hp = INT8` this is the paper's INT8 baseline.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StaticHighPolicy;

impl StaticHighPolicy {
    /// Creates the policy.
    pub fn new() -> Self {
        StaticHighPolicy
    }
}

impl PrecisionPolicy for StaticHighPolicy {
    fn name(&self) -> &str {
        "int8"
    }

    fn decide(&self, _ctx: &TensorContext, _stats: &SummaryStats) -> Decision {
        Decision::Keep
    }
}

/// Static low-precision policy: every sub-tensor is converted with a
/// fixed range-preserving choice (`hc = 0`, all clipping at the low end).
/// With `lp = INT4` this is an aggressive static INT4 baseline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StaticLowPolicy {
    lp: Precision,
}

impl StaticLowPolicy {
    /// Creates a static low-precision policy targeting `lp` bits.
    pub fn new(lp: Precision) -> Self {
        StaticLowPolicy { lp }
    }
}

impl PrecisionPolicy for StaticLowPolicy {
    fn name(&self) -> &str {
        "static-low"
    }

    fn decide(&self, ctx: &TensorContext, _stats: &SummaryStats) -> Decision {
        let hp = ctx.params.precision;
        if self.lp.bits() >= hp.bits() {
            return Decision::Keep;
        }
        let lc = hp.bits() - self.lp.bits();
        // hc = 0 keeps the full representation range (Eq. 5 always holds);
        // the cost is a 2^lc coarser representation density.
        let choice =
            ConversionChoice::new(hp, self.lp, 0, lc).expect("hc=0 split always satisfies Eq. 2");
        Decision::Convert(choice)
    }

    fn low_precision(&self) -> Precision {
        self.lp
    }
}

/// One sub-tensor's decision within a [`PolicyRun`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SubTensorDecision {
    /// The sub-tensor's view id within the partition.
    pub view_id: usize,
    /// Elements in the sub-tensor.
    pub len: usize,
    /// The decision taken.
    pub decision: Decision,
}

/// The result of running a policy over a whole tensor.
///
/// `effective` holds the dequantized values *as the selected encodings
/// represent them* — i.e. what the accelerator actually computes with —
/// so downstream layers and accuracy metrics see the true quantization
/// error of the mixed-precision tensor.
#[derive(Debug, Clone, PartialEq)]
pub struct PolicyRun {
    /// The initial quantization parameters.
    pub params: QuantParams,
    /// Per-sub-tensor decisions, in view order.
    pub decisions: Vec<SubTensorDecision>,
    /// The tensor as reconstructed from the selected encodings.
    pub effective: Tensor,
}

impl PolicyRun {
    /// Fraction of *elements* that compute at low precision.
    pub fn low_fraction(&self) -> f64 {
        let total: usize = self.decisions.iter().map(|d| d.len).sum();
        if total == 0 {
            return 0.0;
        }
        let low: usize = self
            .decisions
            .iter()
            .filter(|d| d.decision.is_low())
            .map(|d| d.len)
            .sum();
        low as f64 / total as f64
    }

    /// Count of sub-tensors that selected low precision.
    pub fn low_subtensors(&self) -> usize {
        self.decisions
            .iter()
            .filter(|d| d.decision.is_low())
            .count()
    }
}

/// Runs `policy` over `tensor` partitioned by `scheme`:
///
/// 1. quantize the whole tensor to `hp` with a per-tensor scale (Eq. 1);
/// 2. compute each sub-tensor's statistics (what the pooling unit does);
/// 3. ask the policy for a decision per sub-tensor;
/// 4. materialise the effective (mixed-precision, dequantized) tensor.
///
/// # Errors
///
/// Propagates partitioning errors (e.g. a token length that does not
/// divide the tensor) and quantization errors.
pub fn run_policy(
    tensor: &Tensor,
    scheme: &SubTensorScheme,
    hp: Precision,
    policy: &dyn PrecisionPolicy,
) -> Result<PolicyRun> {
    let (codes, params) = quantize_slice(tensor.as_slice(), hp)?;
    let global = SummaryStats::from_slice(tensor.as_slice());
    let ctx = TensorContext { global, params };

    let views =
        scheme
            .partition(tensor.shape())
            .map_err(|e| crate::QuantError::InvalidParameter {
                name: "scheme",
                detail: e.to_string(),
            })?;

    let mut decisions = Vec::with_capacity(views.len());
    let mut effective = tensor.clone();
    for view in &views {
        let sub = tensor
            .subtensor(view)
            .map_err(|e| crate::QuantError::InvalidParameter {
                name: "view",
                detail: e.to_string(),
            })?;
        let stats = SummaryStats::from_slice(&sub);
        let decision = policy.decide(&ctx, &stats);

        // Gather this sub-tensor's integer codes and reconstruct through
        // the selected encoding.
        let sub_codes: Vec<i32> = view.indices().map(|i| codes[i]).collect();
        let restored = match decision {
            Decision::Keep => dequantize_slice(&sub_codes, &params),
            Decision::Convert(choice) => {
                let low = choice.apply_slice(&sub_codes);
                choice.dequantize_slice(&low, &params)
            }
        };
        effective.set_subtensor(view, &restored).map_err(|e| {
            crate::QuantError::InvalidParameter {
                name: "view",
                detail: e.to_string(),
            }
        })?;
        decisions.push(SubTensorDecision {
            view_id: view.id(),
            len: view.len(),
            decision,
        });
    }

    Ok(PolicyRun {
        params,
        decisions,
        effective,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linear::mse;
    use drift_tensor::Shape;

    fn ramp_tensor() -> Tensor {
        Tensor::from_fn(vec![8, 16], |i| ((i * 29) % 97) as f32 / 97.0 - 0.5).unwrap()
    }

    #[test]
    fn static_high_keeps_everything() {
        let t = ramp_tensor();
        let run = run_policy(
            &t,
            &SubTensorScheme::token(16),
            Precision::INT8,
            &StaticHighPolicy,
        )
        .unwrap();
        assert_eq!(run.low_fraction(), 0.0);
        assert_eq!(run.low_subtensors(), 0);
        // INT8 reconstruction error bounded by half a step per element.
        let err = mse(t.as_slice(), run.effective.as_slice());
        assert!(err < (run.params.scale * run.params.scale) as f64);
    }

    #[test]
    fn static_low_converts_everything() {
        let t = ramp_tensor();
        let run = run_policy(
            &t,
            &SubTensorScheme::token(16),
            Precision::INT8,
            &StaticLowPolicy::new(Precision::INT4),
        )
        .unwrap();
        assert_eq!(run.low_fraction(), 1.0);
        assert_eq!(run.low_subtensors(), 8);
    }

    #[test]
    fn static_low_noop_when_lp_not_lower() {
        let t = ramp_tensor();
        let run = run_policy(
            &t,
            &SubTensorScheme::PerTensor,
            Precision::INT4,
            &StaticLowPolicy::new(Precision::INT8),
        )
        .unwrap();
        assert_eq!(run.low_fraction(), 0.0);
    }

    #[test]
    fn low_precision_is_lossier() {
        let t = ramp_tensor();
        let high = run_policy(
            &t,
            &SubTensorScheme::token(16),
            Precision::INT8,
            &StaticHighPolicy,
        )
        .unwrap();
        let low = run_policy(
            &t,
            &SubTensorScheme::token(16),
            Precision::INT8,
            &StaticLowPolicy::new(Precision::INT4),
        )
        .unwrap();
        assert!(
            mse(t.as_slice(), low.effective.as_slice())
                > mse(t.as_slice(), high.effective.as_slice())
        );
    }

    #[test]
    fn decisions_cover_all_subtensors() {
        let t = ramp_tensor();
        let scheme = SubTensorScheme::region(4, 4);
        let run = run_policy(&t, &scheme, Precision::INT8, &StaticHighPolicy).unwrap();
        let expected = scheme.count(&Shape::matrix(8, 16).unwrap()).unwrap();
        assert_eq!(run.decisions.len(), expected);
        let total: usize = run.decisions.iter().map(|d| d.len).sum();
        assert_eq!(total, 128);
    }

    #[test]
    fn decision_bits() {
        let keep = Decision::Keep;
        assert_eq!(keep.bits(Precision::INT8), Precision::INT8);
        assert!(!keep.is_low());
        let choice = ConversionChoice::new(Precision::INT8, Precision::INT4, 0, 4).unwrap();
        let conv = Decision::Convert(choice);
        assert_eq!(conv.bits(Precision::INT8), Precision::INT4);
        assert!(conv.is_low());
    }

    #[test]
    fn bad_scheme_is_an_error() {
        let t = ramp_tensor();
        let res = run_policy(
            &t,
            &SubTensorScheme::token(31),
            Precision::INT8,
            &StaticHighPolicy,
        );
        assert!(res.is_err());
    }
}
