//! Quantization primitives, precision conversion, and baseline
//! dynamic-quantization algorithms for the Drift reproduction.
//!
//! This crate implements Section 3.1–3.2 of the Drift paper plus the
//! baseline algorithms it compares against (Section 2.2):
//!
//! * [`precision`] — bit-width newtypes and precision pairs.
//! * [`linear`] — symmetric linear quantization (paper Eq. 1), dequantization,
//!   and error metrics (MSE, SQNR, cosine similarity).
//! * [`convert`] — the precision-conversion space: converting an `hp`-bit
//!   integer to `lp` bits by clipping `hc` bits from the high end and `lc`
//!   bits from the low end, under `hp = hc + lp + lc` (paper Eq. 2).
//! * [`capability`] — representation range (RR) and representation density
//!   (RD), the two representation-capability metrics (paper Eq. 3).
//! * [`policy`] — the [`policy::PrecisionPolicy`] trait through which the
//!   inference engine asks an algorithm to pick a precision per sub-tensor,
//!   plus the static FP32/INT8/INT4 baselines.
//! * [`asymmetric`] — zero-point quantization for one-sided tensors
//!   (post-GELU activations), composing with every policy.
//! * [`intgemm`] — the exact integer GEMM path over mixed-precision
//!   codes (what the hardware actually computes), cross-checked against
//!   the dequantized-f32 path.
//! * [`drq`] — the DRQ baseline (region mean-magnitude sensitivity).
//! * [`gating`] — the Precision Gating baseline (per-value dual precision).
//!
//! The Drift selection algorithm itself lives in `drift-core`, since it is
//! the paper's primary contribution; it implements the same
//! [`policy::PrecisionPolicy`] trait defined here.
//!
//! # Example
//!
//! Quantize a tensor to INT8 and convert one sub-tensor to 4 bits:
//!
//! ```rust
//! use drift_quant::convert::ConversionChoice;
//! use drift_quant::linear::{dequantize_slice, quantize_slice, sqnr_db};
//! use drift_quant::precision::Precision;
//!
//! # fn main() -> Result<(), drift_quant::QuantError> {
//! let data = [0.31f32, -0.12, 0.44, -0.05, 0.27, -0.38];
//! let (q, params) = quantize_slice(&data, Precision::INT8)?;
//!
//! // Clip all 4 bits from the low end: the range-preserving (hc=0, lc=4)
//! // 8→4-bit conversion.
//! let choice = ConversionChoice::new(Precision::INT8, Precision::INT4, 0, 4)?;
//! let low = choice.apply_slice(&q);
//! let restored = choice.dequantize_slice(&low, &params);
//!
//! let reference = dequantize_slice(&q, &params);
//! assert!(sqnr_db(&data, &restored) > 10.0);
//! assert!(sqnr_db(&data, &reference) > sqnr_db(&data, &restored));
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod asymmetric;
pub mod capability;
pub mod convert;
pub mod drq;
pub mod gating;
pub mod intgemm;
pub mod linear;
pub mod policy;
pub mod precision;

pub use capability::RepresentationCapability;
pub use convert::ConversionChoice;
pub use linear::{QuantParams, QuantizedTensor};
pub use policy::{Decision, PrecisionPolicy, TensorContext};
pub use precision::Precision;

use std::error::Error;
use std::fmt;

/// Error type for all fallible operations in this crate.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum QuantError {
    /// A bit width outside the supported 1..=16 range.
    InvalidBitWidth {
        /// The offending width.
        bits: u8,
    },
    /// A conversion whose parameters violate `hp = hc + lp + lc` or
    /// `hp > lp`.
    InvalidConversion {
        /// High-precision bits.
        hp: u8,
        /// Low-precision bits.
        lp: u8,
        /// High-end clipped bits.
        hc: u8,
        /// Low-end clipped bits.
        lc: u8,
    },
    /// Mismatched buffer lengths for a paired operation.
    LengthMismatch {
        /// Expected length.
        expected: usize,
        /// Actual length.
        actual: usize,
    },
    /// A policy parameter was out of range.
    InvalidParameter {
        /// Parameter name.
        name: &'static str,
        /// Description of the violation.
        detail: String,
    },
}

impl fmt::Display for QuantError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QuantError::InvalidBitWidth { bits } => {
                write!(f, "invalid bit width {bits} (supported: 1..=16)")
            }
            QuantError::InvalidConversion { hp, lp, hc, lc } => write!(
                f,
                "invalid conversion hp={hp} lp={lp} hc={hc} lc={lc} (need hp = hc + lp + lc)"
            ),
            QuantError::LengthMismatch { expected, actual } => {
                write!(
                    f,
                    "buffer length {actual} does not match expected {expected}"
                )
            }
            QuantError::InvalidParameter { name, detail } => {
                write!(f, "invalid parameter {name}: {detail}")
            }
        }
    }
}

impl Error for QuantError {}

impl From<drift_tensor::TensorError> for QuantError {
    fn from(e: drift_tensor::TensorError) -> Self {
        QuantError::InvalidParameter {
            name: "tensor",
            detail: e.to_string(),
        }
    }
}

/// Convenience result alias used across the crate.
pub type Result<T, E = QuantError> = std::result::Result<T, E>;
