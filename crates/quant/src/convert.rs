//! Precision conversion: re-encoding an `hp`-bit integer in `lp` bits.
//!
//! Paper Section 3.1 / Figure 3: after the initial quantization, a
//! high-precision integer can be converted to low precision by clipping
//! `hc` bits from the high end (saturating the magnitude) and `lc` bits
//! from the low end (right-shifting with rounding), under the constraint
//!
//! ```text
//! hp = hc + lp + lc,    hp, lp, hc, lc ≥ 0        (paper Eq. 2)
//! ```
//!
//! For the paper's 8→4-bit setting there are exactly five choices,
//! `(hc, lc) ∈ {(0,4), (1,3), (2,2), (3,1), (4,0)}`. The choice trades
//! *range* (how large a magnitude survives) against *density* (how fine
//! the step is): see [`crate::capability`].

use crate::linear::QuantParams;
use crate::precision::Precision;
use crate::{QuantError, Result};
use serde::{Deserialize, Serialize};
use std::fmt;

/// One way of converting an `hp`-bit integer to `lp` bits (paper Eq. 2).
///
/// # Example
///
/// Enumerate the five 8→4-bit choices from the paper:
///
/// ```rust
/// use drift_quant::convert::ConversionChoice;
/// use drift_quant::Precision;
///
/// let choices = ConversionChoice::enumerate(Precision::INT8, Precision::INT4);
/// assert_eq!(choices.len(), 5);
/// assert_eq!(choices[0].hc(), 0);
/// assert_eq!(choices[0].lc(), 4);
/// assert_eq!(choices[4].hc(), 4);
/// assert_eq!(choices[4].lc(), 0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ConversionChoice {
    hp: Precision,
    lp: Precision,
    hc: u8,
    lc: u8,
}

impl ConversionChoice {
    /// Creates a conversion from `hp` bits to `lp` bits clipping `hc`
    /// high bits and `lc` low bits.
    ///
    /// # Errors
    ///
    /// Returns [`QuantError::InvalidConversion`] unless
    /// `hp = hc + lp + lc` and `hp >= lp`.
    pub fn new(hp: Precision, lp: Precision, hc: u8, lc: u8) -> Result<Self> {
        if hp.bits() < lp.bits() || hc + lp.bits() + lc != hp.bits() {
            return Err(QuantError::InvalidConversion {
                hp: hp.bits(),
                lp: lp.bits(),
                hc,
                lc,
            });
        }
        Ok(ConversionChoice { hp, lp, hc, lc })
    }

    /// The identity "conversion" that keeps all `hp` bits. Useful as the
    /// decision for sub-tensors that stay at high precision.
    pub fn identity(hp: Precision) -> Self {
        ConversionChoice {
            hp,
            lp: hp,
            hc: 0,
            lc: 0,
        }
    }

    /// Enumerates every valid `(hc, lc)` split for an `hp → lp`
    /// conversion, ordered by increasing `hc`. Empty when `lp > hp`.
    pub fn enumerate(hp: Precision, lp: Precision) -> Vec<ConversionChoice> {
        if lp.bits() > hp.bits() {
            return Vec::new();
        }
        let free = hp.bits() - lp.bits();
        (0..=free)
            .map(|hc| ConversionChoice {
                hp,
                lp,
                hc,
                lc: free - hc,
            })
            .collect()
    }

    /// Source (high) precision.
    pub fn hp(&self) -> Precision {
        self.hp
    }

    /// Destination (low) precision.
    pub fn lp(&self) -> Precision {
        self.lp
    }

    /// Bits clipped from the high end.
    pub fn hc(&self) -> u8 {
        self.hc
    }

    /// Bits clipped from the low end.
    pub fn lc(&self) -> u8 {
        self.lc
    }

    /// Whether this is the identity conversion (no bits clipped).
    pub fn is_identity(&self) -> bool {
        self.hc == 0 && self.lc == 0 && self.hp == self.lp
    }

    /// Converts one `hp`-bit code to its `lp`-bit representation:
    /// round-shift by `lc`, then saturate to the `lp`-bit range.
    pub fn apply_value(&self, value: i32) -> i32 {
        let shifted = if self.lc == 0 {
            value
        } else {
            // Round half away from zero, matching quantization rounding.
            let half = 1i32 << (self.lc - 1);
            let magnitude = (value.abs() + half) >> self.lc;
            magnitude * value.signum()
        };
        self.lp.saturate(shifted)
    }

    /// Converts a slice of codes (see [`ConversionChoice::apply_value`]).
    pub fn apply_slice(&self, values: &[i32]) -> Vec<i32> {
        values.iter().map(|&v| self.apply_value(v)).collect()
    }

    /// The effective scale of the low-precision codes: `Δ · 2^lc`.
    pub fn effective_scale(&self, params: &QuantParams) -> f64 {
        params.scale * f64::from(1u32 << self.lc)
    }

    /// The quantization parameters describing the low-precision codes.
    pub fn effective_params(&self, params: &QuantParams) -> QuantParams {
        QuantParams {
            scale: self.effective_scale(params),
            precision: self.lp,
        }
    }

    /// Reconstructs one low-precision code to `f32`.
    pub fn dequantize_value(&self, low_code: i32, params: &QuantParams) -> f32 {
        (f64::from(low_code) * self.effective_scale(params)) as f32
    }

    /// Reconstructs a slice of low-precision codes.
    pub fn dequantize_slice(&self, low_codes: &[i32], params: &QuantParams) -> Vec<f32> {
        low_codes
            .iter()
            .map(|&v| self.dequantize_value(v, params))
            .collect()
    }

    /// The worst-case absolute reconstruction error (in original float
    /// units) this conversion introduces for an in-range value: half the
    /// effective step.
    pub fn max_rounding_error(&self, params: &QuantParams) -> f64 {
        self.effective_scale(params) * 0.5
    }
}

impl fmt::Display for ConversionChoice {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}→{} (hc={}, lc={})",
            self.hp, self.lp, self.hc, self.lc
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn int8_to_int4(hc: u8, lc: u8) -> ConversionChoice {
        ConversionChoice::new(Precision::INT8, Precision::INT4, hc, lc).unwrap()
    }

    #[test]
    fn constraint_enforced() {
        assert!(ConversionChoice::new(Precision::INT8, Precision::INT4, 2, 2).is_ok());
        assert!(ConversionChoice::new(Precision::INT8, Precision::INT4, 2, 3).is_err());
        assert!(ConversionChoice::new(Precision::INT4, Precision::INT8, 0, 0).is_err());
    }

    #[test]
    fn enumerate_five_choices_for_8_to_4() {
        let choices = ConversionChoice::enumerate(Precision::INT8, Precision::INT4);
        assert_eq!(choices.len(), 5);
        for (i, c) in choices.iter().enumerate() {
            assert_eq!(c.hc(), i as u8);
            assert_eq!(c.lc(), 4 - i as u8);
        }
        assert!(ConversionChoice::enumerate(Precision::INT4, Precision::INT8).is_empty());
    }

    #[test]
    fn identity_is_lossless() {
        let id = ConversionChoice::identity(Precision::INT8);
        assert!(id.is_identity());
        for v in [-127, -1, 0, 1, 64, 127] {
            assert_eq!(id.apply_value(v), v);
        }
    }

    #[test]
    fn pure_low_clip_shifts_with_rounding() {
        let c = int8_to_int4(0, 4);
        // 24 / 16 = 1.5 → rounds away from zero to 2.
        assert_eq!(c.apply_value(24), 2);
        assert_eq!(c.apply_value(-24), -2);
        assert_eq!(c.apply_value(23), 1); // 1.4375 → 1
        assert_eq!(c.apply_value(112), 7);
        assert_eq!(c.apply_value(127), 7); // 7.94 saturates at q_max
        assert_eq!(c.apply_value(0), 0);
    }

    #[test]
    fn pure_high_clip_saturates() {
        let c = int8_to_int4(4, 0);
        assert_eq!(c.apply_value(5), 5);
        assert_eq!(c.apply_value(-7), -7);
        assert_eq!(c.apply_value(8), 7);
        assert_eq!(c.apply_value(127), 7);
        assert_eq!(c.apply_value(-127), -7);
    }

    #[test]
    fn mixed_clip() {
        let c = int8_to_int4(2, 2);
        // 30 / 4 = 7.5 → 8 → saturate 7.
        assert_eq!(c.apply_value(30), 7);
        assert_eq!(c.apply_value(10), 3); // 2.5 → 3
        assert_eq!(c.apply_value(-10), -3);
    }

    #[test]
    fn effective_scale_grows_with_lc() {
        let params = QuantParams::from_abs_max(1.27, Precision::INT8);
        let c0 = int8_to_int4(4, 0);
        let c4 = int8_to_int4(0, 4);
        assert!((c0.effective_scale(&params) - params.scale).abs() < 1e-15);
        assert!((c4.effective_scale(&params) - params.scale * 16.0).abs() < 1e-15);
        assert_eq!(c4.effective_params(&params).precision, Precision::INT4);
    }

    #[test]
    fn dequantize_uses_effective_scale() {
        let params = QuantParams::from_abs_max(1.27, Precision::INT8);
        let c = int8_to_int4(0, 4);
        // Code 112 (≈ value 1.12) shifts to 7; reconstruction = 7·16·Δ.
        let low = c.apply_value(112);
        let restored = c.dequantize_value(low, &params);
        assert!((f64::from(restored) - 1.12).abs() < 1e-6);
    }

    #[test]
    fn reconstruction_error_bounded_for_in_range_values() {
        let params = QuantParams::from_abs_max(1.27, Precision::INT8);
        for choice in ConversionChoice::enumerate(Precision::INT8, Precision::INT4) {
            // Values whose magnitude fits under the low format's
            // saturation point (q_max · 2^lc).
            let range_cap = choice.lp().q_max() << choice.lc();
            for v in -range_cap..=range_cap {
                let low = choice.apply_value(v);
                let restored = f64::from(choice.dequantize_value(low, &params));
                let original = f64::from(v) * params.scale;
                assert!(
                    (restored - original).abs() <= choice.max_rounding_error(&params) + 1e-6,
                    "{choice}: value {v} error too large"
                );
            }
        }
    }

    #[test]
    fn display_is_informative() {
        let c = int8_to_int4(1, 3);
        assert_eq!(c.to_string(), "INT8→INT4 (hc=1, lc=3)");
    }
}
