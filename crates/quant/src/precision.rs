//! Bit-width newtypes and precision pairs.

use crate::{QuantError, Result};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A signed integer precision (bit width) between 1 and 16 bits.
///
/// The value counts *all* bits including the sign; the representable
/// symmetric range is `±(2^(bits-1) - 1)` (the symmetric scheme of paper
/// Eq. 1 excludes the asymmetric most-negative code).
///
/// # Example
///
/// ```rust
/// use drift_quant::Precision;
///
/// # fn main() -> Result<(), drift_quant::QuantError> {
/// let p = Precision::new(8)?;
/// assert_eq!(p, Precision::INT8);
/// assert_eq!(p.q_max(), 127);
/// assert_eq!(Precision::INT4.q_max(), 7);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Precision(u8);

impl Precision {
    /// 8-bit precision: the paper's high-precision setting.
    pub const INT8: Precision = Precision(8);
    /// 4-bit precision: the paper's low-precision setting.
    pub const INT4: Precision = Precision(4);
    /// 3-bit precision (Precision Gating's low setting; supported by
    /// Drift's BitBrick fabric per Section 4.1).
    pub const INT3: Precision = Precision(3);
    /// 5-bit precision (Precision Gating's high setting).
    pub const INT5: Precision = Precision(5);
    /// 16-bit precision, used for wide accumulators in tests.
    pub const INT16: Precision = Precision(16);

    /// Creates a precision of `bits` bits.
    ///
    /// # Errors
    ///
    /// Returns [`QuantError::InvalidBitWidth`] unless `1 <= bits <= 16`.
    pub fn new(bits: u8) -> Result<Self> {
        if (1..=16).contains(&bits) {
            Ok(Precision(bits))
        } else {
            Err(QuantError::InvalidBitWidth { bits })
        }
    }

    /// The bit width.
    pub fn bits(&self) -> u8 {
        self.0
    }

    /// Largest representable magnitude, `2^(bits-1) - 1`.
    ///
    /// For 1-bit precision this is 0 (sign only), which is why practical
    /// low-precision settings start at 2–3 bits.
    pub fn q_max(&self) -> i32 {
        (1i32 << (self.0 - 1)) - 1
    }

    /// Number of distinct symmetric codes, `2 · q_max + 1`.
    pub fn levels(&self) -> u32 {
        (2 * self.q_max() + 1) as u32
    }

    /// Whether `value` is representable at this precision.
    pub fn contains(&self, value: i32) -> bool {
        value.abs() <= self.q_max()
    }

    /// Saturates `value` to the representable range.
    pub fn saturate(&self, value: i32) -> i32 {
        value.clamp(-self.q_max(), self.q_max())
    }
}

impl fmt::Display for Precision {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "INT{}", self.0)
    }
}

impl TryFrom<u8> for Precision {
    type Error = QuantError;

    fn try_from(bits: u8) -> Result<Self> {
        Precision::new(bits)
    }
}

/// The (activation, weight) precision pair of a GEMM tile, naming the four
/// systolic arrays of Drift's Section 4.2 (`hh`, `hl`, `lh`, `ll`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct PrecisionPair {
    /// Activation precision.
    pub activation: Precision,
    /// Weight precision.
    pub weight: Precision,
}

impl PrecisionPair {
    /// High activation × high weight (both 8-bit).
    pub const HH: PrecisionPair = PrecisionPair {
        activation: Precision::INT8,
        weight: Precision::INT8,
    };
    /// High activation × low weight.
    pub const HL: PrecisionPair = PrecisionPair {
        activation: Precision::INT8,
        weight: Precision::INT4,
    };
    /// Low activation × high weight.
    pub const LH: PrecisionPair = PrecisionPair {
        activation: Precision::INT4,
        weight: Precision::INT8,
    };
    /// Low activation × low weight (both 4-bit).
    pub const LL: PrecisionPair = PrecisionPair {
        activation: Precision::INT4,
        weight: Precision::INT4,
    };

    /// Creates a pair.
    pub fn new(activation: Precision, weight: Precision) -> Self {
        PrecisionPair { activation, weight }
    }

    /// The four canonical pairs of the paper's Section 4.2, in
    /// (hh, hl, lh, ll) order.
    pub fn canonical() -> [PrecisionPair; 4] {
        [Self::HH, Self::HL, Self::LH, Self::LL]
    }

    /// Product of the bit widths, proportional to the work one
    /// multiply costs on a 4-bit×1-bit BitBrick fabric.
    pub fn bit_product(&self) -> u32 {
        u32::from(self.activation.bits()) * u32::from(self.weight.bits())
    }
}

impl fmt::Display for PrecisionPair {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "a{}w{}", self.activation.bits(), self.weight.bits())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_validates_range() {
        assert!(Precision::new(0).is_err());
        assert!(Precision::new(17).is_err());
        assert!(Precision::new(1).is_ok());
        assert!(Precision::new(16).is_ok());
    }

    #[test]
    fn q_max_values() {
        assert_eq!(Precision::INT8.q_max(), 127);
        assert_eq!(Precision::INT4.q_max(), 7);
        assert_eq!(Precision::INT3.q_max(), 3);
        assert_eq!(Precision::INT5.q_max(), 15);
        assert_eq!(Precision::new(1).unwrap().q_max(), 0);
    }

    #[test]
    fn levels_and_contains() {
        assert_eq!(Precision::INT4.levels(), 15);
        assert!(Precision::INT4.contains(7));
        assert!(Precision::INT4.contains(-7));
        assert!(!Precision::INT4.contains(8));
        assert!(!Precision::INT4.contains(-8));
    }

    #[test]
    fn saturate_clamps_symmetrically() {
        assert_eq!(Precision::INT4.saturate(100), 7);
        assert_eq!(Precision::INT4.saturate(-100), -7);
        assert_eq!(Precision::INT4.saturate(3), 3);
    }

    #[test]
    fn display_formats() {
        assert_eq!(Precision::INT8.to_string(), "INT8");
        assert_eq!(PrecisionPair::LH.to_string(), "a4w8");
    }

    #[test]
    fn canonical_pairs_ordered() {
        let pairs = PrecisionPair::canonical();
        assert_eq!(pairs[0], PrecisionPair::HH);
        assert_eq!(pairs[3], PrecisionPair::LL);
        assert_eq!(pairs[0].bit_product(), 64);
        assert_eq!(pairs[3].bit_product(), 16);
    }

    #[test]
    fn try_from_u8() {
        let p: Precision = 6u8.try_into().unwrap();
        assert_eq!(p.bits(), 6);
        assert!(Precision::try_from(0u8).is_err());
    }
}
