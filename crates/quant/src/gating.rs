//! The Precision Gating baseline (Zhang et al., ICLR 2020), as
//! characterised in Drift's Section 2.2.
//!
//! Precision Gating is a *per-value* dual-precision scheme: every
//! activation is first computed with its most-significant bits only
//! (e.g. 3 of 8); values whose truncated magnitude crosses a learned
//! gate threshold are recomputed at full precision. The scheme needs
//! model retraining to learn the gates, and per-value bookkeeping —
//! the "intolerable hardware costs" Drift cites when rejecting it.
//!
//! We model the *inference-time* behaviour: a per-value policy (use it
//! with [`drift_tensor::subtensor::SubTensorScheme::PerValue`]) that
//! keeps a value at high precision when its magnitude crosses the gate,
//! and truncates to the MSBs otherwise. The retraining step is
//! represented by an accuracy penalty knob in the evaluation harness,
//! not here.

use crate::convert::ConversionChoice;
use crate::policy::{Decision, PrecisionPolicy, TensorContext};
use crate::precision::Precision;
use crate::{QuantError, Result};
use drift_tensor::stats::SummaryStats;

/// The Precision Gating policy.
///
/// # Example
///
/// ```rust
/// use drift_quant::gating::PrecisionGatingPolicy;
/// use drift_quant::policy::{run_policy, PrecisionPolicy};
/// use drift_quant::Precision;
/// use drift_tensor::subtensor::SubTensorScheme;
/// use drift_tensor::Tensor;
///
/// # fn main() -> Result<(), drift_quant::QuantError> {
/// let pg = PrecisionGatingPolicy::new(0.25, Precision::INT5)?;
/// let t = Tensor::from_fn(vec![4, 4], |i| if i % 4 == 0 { 0.9 } else { 0.05 }).unwrap();
/// let run = run_policy(&t, &SubTensorScheme::PerValue, Precision::INT8, &pg)?;
/// // Large values gate up to high precision; small ones stay truncated.
/// assert!(run.low_fraction() > 0.5 && run.low_fraction() < 1.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PrecisionGatingPolicy {
    /// Gate threshold θ as a fraction of the tensor's absolute maximum:
    /// values with `|v| >= θ · max(|X|)` are recomputed at high
    /// precision.
    theta: f64,
    lp: Precision,
}

impl PrecisionGatingPolicy {
    /// Creates a gating policy with threshold fraction `theta` and low
    /// precision `lp` (the original paper uses 3-of-8 or 5-of-8 bits).
    ///
    /// # Errors
    ///
    /// Returns [`QuantError::InvalidParameter`] unless `0 <= theta <= 1`.
    pub fn new(theta: f64, lp: Precision) -> Result<Self> {
        if !theta.is_finite() || !(0.0..=1.0).contains(&theta) {
            return Err(QuantError::InvalidParameter {
                name: "theta",
                detail: format!("must be in [0, 1], got {theta}"),
            });
        }
        Ok(PrecisionGatingPolicy { theta, lp })
    }

    /// The gate threshold fraction θ.
    pub fn theta(&self) -> f64 {
        self.theta
    }
}

impl PrecisionPolicy for PrecisionGatingPolicy {
    fn name(&self) -> &str {
        "precision-gating"
    }

    fn decide(&self, ctx: &TensorContext, stats: &SummaryStats) -> Decision {
        let hp = ctx.params.precision;
        if self.lp.bits() >= hp.bits() {
            return Decision::Keep;
        }
        // Gate: magnitudes crossing θ·max(|X|) are recomputed in full.
        if stats.abs_max() >= self.theta * ctx.global.abs_max() {
            return Decision::Keep;
        }
        // Otherwise keep the MSBs only (hc = 0, truncate low bits).
        let lc = hp.bits() - self.lp.bits();
        let choice =
            ConversionChoice::new(hp, self.lp, 0, lc).expect("hc=0 split always satisfies Eq. 2");
        Decision::Convert(choice)
    }

    fn low_precision(&self) -> Precision {
        self.lp
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linear::QuantParams;

    fn ctx() -> TensorContext {
        let global = SummaryStats::from_slice([1.0f32, -0.5, 0.25, -0.125]);
        TensorContext {
            global,
            params: QuantParams::from_abs_max(global.abs_max(), Precision::INT8),
        }
    }

    #[test]
    fn validates_theta() {
        assert!(PrecisionGatingPolicy::new(-0.1, Precision::INT3).is_err());
        assert!(PrecisionGatingPolicy::new(1.5, Precision::INT3).is_err());
        assert!(PrecisionGatingPolicy::new(f64::NAN, Precision::INT3).is_err());
        assert!(PrecisionGatingPolicy::new(0.5, Precision::INT3).is_ok());
    }

    #[test]
    fn large_value_gates_up() {
        let pg = PrecisionGatingPolicy::new(0.5, Precision::INT3).unwrap();
        let big = SummaryStats::from_slice([0.9f32]);
        assert_eq!(pg.decide(&ctx(), &big), Decision::Keep);
    }

    #[test]
    fn small_value_truncates_to_msbs() {
        let pg = PrecisionGatingPolicy::new(0.5, Precision::INT3).unwrap();
        let small = SummaryStats::from_slice([0.1f32]);
        match pg.decide(&ctx(), &small) {
            Decision::Convert(choice) => {
                assert_eq!(choice.hc(), 0);
                assert_eq!(choice.lc(), 5);
                assert_eq!(choice.lp(), Precision::INT3);
            }
            other => panic!("expected conversion, got {other:?}"),
        }
    }

    #[test]
    fn theta_zero_gates_everything_up() {
        let pg = PrecisionGatingPolicy::new(0.0, Precision::INT3).unwrap();
        let any = SummaryStats::from_slice([0.0001f32]);
        assert_eq!(pg.decide(&ctx(), &any), Decision::Keep);
    }

    #[test]
    fn theta_one_truncates_all_but_the_max() {
        let pg = PrecisionGatingPolicy::new(1.0, Precision::INT3).unwrap();
        let below = SummaryStats::from_slice([0.99f32]);
        assert!(pg.decide(&ctx(), &below).is_low());
        let exactly = SummaryStats::from_slice([1.0f32]);
        assert_eq!(pg.decide(&ctx(), &exactly), Decision::Keep);
    }
}
