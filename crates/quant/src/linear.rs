//! Symmetric linear quantization (paper Eq. 1) and error metrics.
//!
//! The initial quantization step maps FP32 data to `N`-bit integers:
//!
//! ```text
//! X̄ = round(X / Δ),   Δ = max(|X|) / (2^(N-1) - 1)
//! ```
//!
//! Dynamic precision quantization then operates *on the integers*; the
//! scale `Δ` never changes, only the integer representation (see
//! [`crate::convert`]).

use crate::precision::Precision;
use crate::{QuantError, Result};
use serde::{Deserialize, Serialize};

/// Quantization parameters: the scale `Δ` and the precision of the initial
/// quantization.
///
/// `Δ` is exactly the *representation density* of the full-precision code
/// (paper Section 3.2), and `(2^(N-1)-1) · Δ = max(|X|)` is its
/// *representation range*.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QuantParams {
    /// The quantization scale `Δ`.
    pub scale: f64,
    /// The initial (high) precision `N`.
    pub precision: Precision,
}

impl QuantParams {
    /// Computes parameters from the data's absolute maximum (paper Eq. 1).
    ///
    /// All-zero data yields `scale = 0`, under which every value
    /// quantizes and dequantizes to zero.
    pub fn from_abs_max(abs_max: f64, precision: Precision) -> Self {
        let scale = if abs_max > 0.0 {
            abs_max / f64::from(precision.q_max())
        } else {
            0.0
        };
        QuantParams { scale, precision }
    }

    /// The representation range `(2^(N-1) - 1) · Δ = max(|X|)`.
    pub fn representation_range(&self) -> f64 {
        f64::from(self.precision.q_max()) * self.scale
    }

    /// The representation density `Δ` (quantization step).
    pub fn representation_density(&self) -> f64 {
        self.scale
    }
}

/// Quantizes one value to the symmetric integer grid.
///
/// Rounds half away from zero (the behaviour of `f64::round`), matching
/// the paper's `⌈·⌋` rounding operator, and saturates to the
/// representable range.
pub fn quantize_value(x: f32, params: &QuantParams) -> i32 {
    if params.scale == 0.0 {
        return 0;
    }
    let q = (f64::from(x) / params.scale).round() as i64;
    params
        .precision
        .saturate(q.clamp(i64::from(i32::MIN), i64::from(i32::MAX)) as i32)
}

/// Dequantizes one integer code back to `f32`.
pub fn dequantize_value(q: i32, params: &QuantParams) -> f32 {
    (f64::from(q) * params.scale) as f32
}

/// Quantizes a slice, computing the scale from the slice's own maximum
/// (paper Eq. 1).
///
/// # Errors
///
/// Returns [`QuantError::InvalidBitWidth`] only via an invalid
/// `precision`, which cannot happen for constructed [`Precision`] values;
/// the `Result` exists for interface consistency with fallible callers.
pub fn quantize_slice(data: &[f32], precision: Precision) -> Result<(Vec<i32>, QuantParams)> {
    let abs_max = data.iter().fold(0.0f64, |m, &v| m.max(f64::from(v).abs()));
    let params = QuantParams::from_abs_max(abs_max, precision);
    let q = data.iter().map(|&x| quantize_value(x, &params)).collect();
    Ok((q, params))
}

/// Dequantizes a slice of integer codes.
pub fn dequantize_slice(q: &[i32], params: &QuantParams) -> Vec<f32> {
    q.iter().map(|&v| dequantize_value(v, params)).collect()
}

/// A quantized tensor payload: integer codes plus their parameters.
///
/// # Example
///
/// ```rust
/// use drift_quant::linear::QuantizedTensor;
/// use drift_quant::Precision;
///
/// # fn main() -> Result<(), drift_quant::QuantError> {
/// let qt = QuantizedTensor::quantize(&[1.0, -0.5, 0.25], Precision::INT8)?;
/// let restored = qt.dequantize();
/// assert!((restored[0] - 1.0).abs() < 0.01);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QuantizedTensor {
    values: Vec<i32>,
    params: QuantParams,
}

impl QuantizedTensor {
    /// Quantizes `data` at the given precision with a per-slice scale.
    ///
    /// # Errors
    ///
    /// Propagates [`quantize_slice`] errors.
    pub fn quantize(data: &[f32], precision: Precision) -> Result<Self> {
        let (values, params) = quantize_slice(data, precision)?;
        Ok(QuantizedTensor { values, params })
    }

    /// Wraps pre-quantized codes.
    ///
    /// # Errors
    ///
    /// Returns [`QuantError::InvalidParameter`] if any code exceeds the
    /// precision's representable range.
    pub fn from_codes(values: Vec<i32>, params: QuantParams) -> Result<Self> {
        if let Some(&bad) = values.iter().find(|&&v| !params.precision.contains(v)) {
            return Err(QuantError::InvalidParameter {
                name: "values",
                detail: format!("code {bad} exceeds {}", params.precision),
            });
        }
        Ok(QuantizedTensor { values, params })
    }

    /// The integer codes.
    pub fn codes(&self) -> &[i32] {
        &self.values
    }

    /// The quantization parameters.
    pub fn params(&self) -> &QuantParams {
        &self.params
    }

    /// Number of codes.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the payload is empty.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Reconstructs the floating-point values.
    pub fn dequantize(&self) -> Vec<f32> {
        dequantize_slice(&self.values, &self.params)
    }
}

/// Mean squared error between a reference and a reconstruction.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn mse(reference: &[f32], restored: &[f32]) -> f64 {
    assert_eq!(
        reference.len(),
        restored.len(),
        "mse requires equal lengths"
    );
    if reference.is_empty() {
        return 0.0;
    }
    reference
        .iter()
        .zip(restored)
        .map(|(&a, &b)| {
            let d = f64::from(a) - f64::from(b);
            d * d
        })
        .sum::<f64>()
        / reference.len() as f64
}

/// Signal-to-quantization-noise ratio in decibels. Higher is better;
/// `+inf` for an exact reconstruction.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn sqnr_db(reference: &[f32], restored: &[f32]) -> f64 {
    let noise = mse(reference, restored);
    let signal = if reference.is_empty() {
        0.0
    } else {
        reference
            .iter()
            .map(|&v| f64::from(v) * f64::from(v))
            .sum::<f64>()
            / reference.len() as f64
    };
    if noise == 0.0 {
        f64::INFINITY
    } else if signal == 0.0 {
        f64::NEG_INFINITY
    } else {
        10.0 * (signal / noise).log10()
    }
}

/// Cosine similarity between a reference and a reconstruction (1 for a
/// perfect match, 0 for orthogonal signals). Returns 1 when both inputs
/// are all-zero, 0 when exactly one is.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn cosine_similarity(reference: &[f32], restored: &[f32]) -> f64 {
    assert_eq!(
        reference.len(),
        restored.len(),
        "cosine requires equal lengths"
    );
    let dot: f64 = reference
        .iter()
        .zip(restored)
        .map(|(&a, &b)| f64::from(a) * f64::from(b))
        .sum();
    let na: f64 = reference
        .iter()
        .map(|&v| f64::from(v) * f64::from(v))
        .sum::<f64>()
        .sqrt();
    let nb: f64 = restored
        .iter()
        .map(|&v| f64::from(v) * f64::from(v))
        .sum::<f64>()
        .sqrt();
    if na == 0.0 && nb == 0.0 {
        1.0
    } else if na == 0.0 || nb == 0.0 {
        0.0
    } else {
        dot / (na * nb)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn params_from_abs_max() {
        let p = QuantParams::from_abs_max(12.7, Precision::INT8);
        assert!((p.scale - 0.1).abs() < 1e-12);
        assert!((p.representation_range() - 12.7).abs() < 1e-9);
        assert_eq!(p.representation_density(), p.scale);
    }

    #[test]
    fn zero_data_quantizes_to_zero() {
        let (q, params) = quantize_slice(&[0.0, 0.0], Precision::INT8).unwrap();
        assert_eq!(params.scale, 0.0);
        assert_eq!(q, vec![0, 0]);
        assert_eq!(dequantize_slice(&q, &params), vec![0.0, 0.0]);
        assert_eq!(quantize_value(5.0, &params), 0);
    }

    #[test]
    fn max_value_maps_to_q_max() {
        let (q, _) = quantize_slice(&[1.0, -1.0, 0.5], Precision::INT8).unwrap();
        assert_eq!(q[0], 127);
        assert_eq!(q[1], -127);
        assert_eq!(q[2], 64); // 63.5 rounds away from zero
    }

    #[test]
    fn roundtrip_error_bounded_by_half_step() {
        let data: Vec<f32> = (0..256).map(|i| (i as f32 - 128.0) / 77.3).collect();
        let (q, params) = quantize_slice(&data, Precision::INT8).unwrap();
        let restored = dequantize_slice(&q, &params);
        for (a, b) in data.iter().zip(&restored) {
            assert!(
                f64::from((a - b).abs()) <= params.scale * 0.5 + 1e-6,
                "error exceeds half step"
            );
        }
    }

    #[test]
    fn int4_is_coarser_than_int8() {
        let data: Vec<f32> = (0..64)
            .map(|i| ((i * 37) % 64) as f32 / 63.0 - 0.5)
            .collect();
        let q8 = QuantizedTensor::quantize(&data, Precision::INT8).unwrap();
        let q4 = QuantizedTensor::quantize(&data, Precision::INT4).unwrap();
        assert!(mse(&data, &q4.dequantize()) > mse(&data, &q8.dequantize()));
    }

    #[test]
    fn from_codes_validates_range() {
        let params = QuantParams::from_abs_max(1.0, Precision::INT4);
        assert!(QuantizedTensor::from_codes(vec![7, -7], params).is_ok());
        assert!(QuantizedTensor::from_codes(vec![8], params).is_err());
    }

    #[test]
    fn sqnr_increases_with_precision() {
        let data: Vec<f32> = (0..512)
            .map(|i| ((i * 97) % 511) as f32 / 255.0 - 1.0)
            .collect();
        let mut last = f64::NEG_INFINITY;
        for bits in [2u8, 4, 6, 8] {
            let p = Precision::new(bits).unwrap();
            let qt = QuantizedTensor::quantize(&data, p).unwrap();
            let s = sqnr_db(&data, &qt.dequantize());
            assert!(s > last, "SQNR should increase with bits: {s} !> {last}");
            last = s;
        }
    }

    #[test]
    fn sqnr_perfect_reconstruction() {
        let data = [1.0f32, 2.0, 3.0];
        assert_eq!(sqnr_db(&data, &data), f64::INFINITY);
    }

    #[test]
    fn cosine_similarity_cases() {
        let a = [1.0f32, 0.0];
        let b = [0.0f32, 1.0];
        assert!((cosine_similarity(&a, &a) - 1.0).abs() < 1e-12);
        assert!(cosine_similarity(&a, &b).abs() < 1e-12);
        assert_eq!(cosine_similarity(&[0.0, 0.0], &[0.0, 0.0]), 1.0);
        assert_eq!(cosine_similarity(&[1.0, 0.0], &[0.0, 0.0]), 0.0);
    }

    #[test]
    fn mse_empty_is_zero() {
        assert_eq!(mse(&[], &[]), 0.0);
    }

    #[test]
    fn saturation_on_outlier_with_foreign_scale() {
        // Quantizing with a scale computed from other data saturates.
        let params = QuantParams::from_abs_max(1.0, Precision::INT8);
        assert_eq!(quantize_value(10.0, &params), 127);
        assert_eq!(quantize_value(-10.0, &params), -127);
    }
}
