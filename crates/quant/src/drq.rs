//! The DRQ baseline: dynamic region-based quantization (Song et al.,
//! ISCA 2020), as characterised in Drift's Sections 2.2 and 5.2.
//!
//! DRQ observes that in image classification, a sparse set of *sensitive
//! regions* of the input feature map (roughly, the object of interest)
//! governs model accuracy. It runs a mean filter over the activation
//! tensor, marks regions whose mean magnitude exceeds a threshold as
//! sensitive, and computes those at 8-bit while all other regions drop to
//! 4-bit.
//!
//! The crucial difference from Drift: DRQ's low-precision encoding always
//! keeps the *high-order* bits (range-preserving, `hc = 0`), and its
//! sensitivity criterion is the region's mean magnitude *relative to the
//! whole tensor*. On CNN feature maps, whose regions share a common
//! scale, this works well. On transformer activations — where per-token
//! scales differ by orders of magnitude (paper Figure 1) — small-scale
//! tokens are classified "insensitive" precisely *because* their
//! magnitudes are small, then encoded with a step of `2^lc · Δ` sized by
//! the *global* maximum. Every value in such a token rounds to zero, and
//! accuracy collapses (the >12% drop of paper Section 5.2). Drift avoids
//! this by clipping from the *high* end for small-range sub-tensors.

use crate::convert::ConversionChoice;
use crate::policy::{Decision, PrecisionPolicy, TensorContext};
use crate::precision::Precision;
use crate::{QuantError, Result};
use drift_tensor::stats::SummaryStats;

/// The DRQ precision policy.
///
/// # Example
///
/// ```rust
/// use drift_quant::drq::DrqPolicy;
/// use drift_quant::policy::{run_policy, PrecisionPolicy};
/// use drift_quant::Precision;
/// use drift_tensor::subtensor::SubTensorScheme;
/// use drift_tensor::Tensor;
///
/// # fn main() -> Result<(), drift_quant::QuantError> {
/// let drq = DrqPolicy::new(1.0)?;
/// // One hot 4x4 region (top-left); the other three regions are cold.
/// let t = Tensor::from_fn(vec![8, 8], |i| {
///     if i / 8 < 4 && i % 8 < 4 { 1.0 } else { 0.01 }
/// })
/// .unwrap();
/// let run = run_policy(&t, &SubTensorScheme::region(4, 4), Precision::INT8, &drq)?;
/// // The high-magnitude region stays 8-bit; the rest drop to 4-bit.
/// assert!(run.low_fraction() > 0.5);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DrqPolicy {
    /// Sensitivity threshold α: a region is sensitive (kept at 8-bit)
    /// when its mean magnitude exceeds `α · avg(|X|)` of the whole
    /// tensor.
    alpha: f64,
    lp: Precision,
}

impl DrqPolicy {
    /// Creates a DRQ policy with sensitivity threshold `alpha`.
    ///
    /// The DRQ paper tunes this per network; `1.0` (a region is
    /// sensitive when it is above-average) is the canonical setting used
    /// in Drift's comparison.
    ///
    /// # Errors
    ///
    /// Returns [`QuantError::InvalidParameter`] unless `alpha` is finite
    /// and non-negative.
    pub fn new(alpha: f64) -> Result<Self> {
        if !alpha.is_finite() || alpha < 0.0 {
            return Err(QuantError::InvalidParameter {
                name: "alpha",
                detail: format!("must be finite and >= 0, got {alpha}"),
            });
        }
        Ok(DrqPolicy {
            alpha,
            lp: Precision::INT4,
        })
    }

    /// Creates a DRQ policy with a non-default low precision (for
    /// ablations).
    ///
    /// # Errors
    ///
    /// Same conditions as [`DrqPolicy::new`].
    pub fn with_low_precision(alpha: f64, lp: Precision) -> Result<Self> {
        let mut p = DrqPolicy::new(alpha)?;
        p.lp = lp;
        Ok(p)
    }

    /// The sensitivity threshold α.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }
}

impl PrecisionPolicy for DrqPolicy {
    fn name(&self) -> &str {
        "drq"
    }

    fn decide(&self, ctx: &TensorContext, stats: &SummaryStats) -> Decision {
        let hp = ctx.params.precision;
        if self.lp.bits() >= hp.bits() {
            return Decision::Keep;
        }
        // Mean-filter sensitivity test: sensitive regions stay high.
        if stats.mean_abs() >= self.alpha * ctx.global.mean_abs() {
            return Decision::Keep;
        }
        // Insensitive regions: 4-bit keeping the high-order bits
        // (hc = 0), exactly DRQ's range-preserving encoding.
        let lc = hp.bits() - self.lp.bits();
        let choice =
            ConversionChoice::new(hp, self.lp, 0, lc).expect("hc=0 split always satisfies Eq. 2");
        Decision::Convert(choice)
    }

    fn low_precision(&self) -> Precision {
        self.lp
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linear::QuantParams;

    fn ctx_with(global: &[f32]) -> TensorContext {
        let stats = SummaryStats::from_slice(global);
        TensorContext {
            global: stats,
            params: QuantParams::from_abs_max(stats.abs_max(), Precision::INT8),
        }
    }

    #[test]
    fn rejects_bad_alpha() {
        assert!(DrqPolicy::new(-0.1).is_err());
        assert!(DrqPolicy::new(f64::NAN).is_err());
        assert!(DrqPolicy::new(0.0).is_ok());
    }

    #[test]
    fn sensitive_region_stays_high() {
        let drq = DrqPolicy::new(1.0).unwrap();
        let ctx = ctx_with(&[1.0, 0.1, 0.1, 0.1]);
        let hot = SummaryStats::from_slice([1.0f32, 0.9]);
        assert_eq!(drq.decide(&ctx, &hot), Decision::Keep);
    }

    #[test]
    fn insensitive_region_goes_low_with_hc0() {
        let drq = DrqPolicy::new(1.0).unwrap();
        let ctx = ctx_with(&[1.0, 0.1, 0.1, 0.1]);
        let cold = SummaryStats::from_slice([0.05f32, 0.02]);
        match drq.decide(&ctx, &cold) {
            Decision::Convert(choice) => {
                assert_eq!(choice.hc(), 0);
                assert_eq!(choice.lc(), 4);
                assert_eq!(choice.lp(), Precision::INT4);
            }
            other => panic!("expected conversion, got {other:?}"),
        }
    }

    #[test]
    fn alpha_zero_keeps_everything_high() {
        // With alpha = 0 every region's mean >= 0, so all stay 8-bit.
        let drq = DrqPolicy::new(0.0).unwrap();
        let ctx = ctx_with(&[1.0, 0.1]);
        let cold = SummaryStats::from_slice([0.0001f32]);
        assert_eq!(drq.decide(&ctx, &cold), Decision::Keep);
    }

    #[test]
    fn the_transformer_failure_mode() {
        // A small-scale token in a tensor with a large global maximum:
        // DRQ deems it insensitive and encodes it with step 16Δ, which
        // zeroes every value. This is the mechanism behind the >12%
        // accuracy drop on ViT/BERT in paper Section 5.2.
        let drq = DrqPolicy::new(1.0).unwrap();
        let ctx = ctx_with(&[8.0, -8.0, 0.01, -0.01]);
        let small_token = SummaryStats::from_slice([0.01f32, -0.008, 0.009]);
        let decision = drq.decide(&ctx, &small_token);
        let Decision::Convert(choice) = decision else {
            panic!("expected conversion");
        };
        // The token's largest code is round(0.01/Δ) with Δ = 8/127:
        let code = crate::linear::quantize_value(0.01, &ctx.params);
        assert_eq!(choice.apply_value(code), 0, "token is wiped out");
    }

    #[test]
    fn respects_custom_low_precision() {
        let drq = DrqPolicy::with_low_precision(1.0, Precision::INT3).unwrap();
        assert_eq!(drq.low_precision(), Precision::INT3);
        let ctx = ctx_with(&[1.0, 0.1, 0.1, 0.1]);
        let cold = SummaryStats::from_slice([0.01f32]);
        match drq.decide(&ctx, &cold) {
            Decision::Convert(choice) => assert_eq!(choice.lp(), Precision::INT3),
            other => panic!("expected conversion, got {other:?}"),
        }
    }

    #[test]
    fn keeps_high_when_lp_not_lower() {
        let drq = DrqPolicy::new(1.0).unwrap();
        let stats = SummaryStats::from_slice([0.001f32]);
        let mut ctx = ctx_with(&[1.0, 0.001]);
        ctx.params = QuantParams::from_abs_max(1.0, Precision::INT4);
        assert_eq!(drq.decide(&ctx, &stats), Decision::Keep);
    }
}
