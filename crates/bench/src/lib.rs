//! Shared machinery for the experiment harness.
//!
//! Every figure/table of the paper's evaluation has a binary in
//! `src/bin/` that regenerates it (see `DESIGN.md` for the index). The
//! helpers here cover what the binaries share: the four-accelerator
//! comparison pipeline, per-family δ settings, report scaling, and
//! plain-text table rendering.

#![warn(missing_docs)]

use drift_accel::accelerator::{total_report, Accelerator, ExecReport};
use drift_accel::bitfusion::BitFusion;
use drift_accel::drq::DrqAccelerator;
use drift_accel::energy::EnergyBreakdown;
use drift_accel::eyeriss::Eyeriss;
use drift_accel::gemm::GemmWorkload;
use drift_core::accelerator::DriftAccelerator;
use drift_core::selector::DriftPolicy;
use drift_nn::lower::{model_low_fraction, model_workloads, GemmOp};
use drift_nn::zoo::{ModelDesc, ModelFamily};
use serde::Serialize;

/// The density threshold δ per model family, as the Hessian-aware
/// calibration of Section 3.3 selects (see `drift_core::calibrate`;
/// the `fig6_accuracy` binary reruns the calibration to confirm these
/// are in the selected band).
pub fn family_delta(family: ModelFamily) -> f64 {
    match family {
        ModelFamily::Cnn => 0.055,
        ModelFamily::Vit => 0.045,
        ModelFamily::Bert => 0.027,
        ModelFamily::Llm => 0.006,
    }
}

/// Per-model δ overrides where the calibration lands off the family
/// default (δ depends on the tensor scale regime, so wider models get
/// smaller thresholds; values chosen so the resulting 4-bit shares
/// match the paper's reported per-model percentages).
pub fn model_delta(desc: &ModelDesc) -> f64 {
    match desc.name.as_str() {
        "DeiT-S" => 0.04,
        "GPT2-XL" => 0.004,
        "BLOOM-7B1" => 0.009,
        "OPT-6.7B" => 0.0045,
        _ => family_delta(desc.family),
    }
}

/// Scales an [`ExecReport`] by an instance count (identical layers are
/// simulated once and multiplied).
pub fn scale_report(r: &ExecReport, repeat: u64) -> ExecReport {
    let k = repeat as f64;
    ExecReport {
        workload: r.workload.clone(),
        accelerator: r.accelerator.clone(),
        cycles: r.cycles * repeat,
        compute_cycles: r.compute_cycles * repeat,
        dram_cycles: r.dram_cycles * repeat,
        stall_cycles: r.stall_cycles * repeat,
        busy_unit_cycles: r.busy_unit_cycles * repeat,
        energy: EnergyBreakdown {
            static_pj: r.energy.static_pj * k,
            dram_pj: r.energy.dram_pj * k,
            buffer_pj: r.energy.buffer_pj * k,
            core_pj: r.energy.core_pj * k,
        },
    }
}

/// The four-accelerator result for one model.
#[derive(Debug, Clone, Serialize)]
pub struct ModelComparison {
    /// Model name.
    pub model: String,
    /// Eyeriss running the FP32 model.
    pub eyeriss: ExecReport,
    /// BitFusion running the static INT8 model.
    pub bitfusion: ExecReport,
    /// DRQ running the dynamic-precision model.
    pub drq: ExecReport,
    /// Drift running the dynamic-precision model.
    pub drift: ExecReport,
    /// MAC-weighted low-precision activation fraction of the dynamic
    /// workloads.
    pub low_fraction: f64,
}

impl ModelComparison {
    /// Speedups over Eyeriss in (bitfusion, drq, drift) order.
    pub fn speedups(&self) -> [f64; 3] {
        let base = self.eyeriss.cycles as f64;
        [
            base / self.bitfusion.cycles as f64,
            base / self.drq.cycles as f64,
            base / self.drift.cycles as f64,
        ]
    }

    /// Energy reductions over Eyeriss in (bitfusion, drq, drift) order.
    pub fn energy_reductions(&self) -> [f64; 3] {
        let base = self.eyeriss.energy.total_pj();
        [
            base / self.bitfusion.energy.total_pj(),
            base / self.drq.energy.total_pj(),
            base / self.drift.energy.total_pj(),
        ]
    }
}

/// Executes one model across the four accelerators of Figs. 7–8.
///
/// Eyeriss sees the FP32 model and BitFusion the static INT8 model
/// (uniform-high workloads); DRQ and Drift see the dynamic workloads
/// annotated by the Drift policy at the family's δ.
///
/// # Errors
///
/// Propagates lowering and execution errors as strings for binary use.
pub fn compare_model(desc: &ModelDesc, seed: u64) -> Result<ModelComparison, String> {
    let policy = DriftPolicy::new(model_delta(desc)).map_err(|e| e.to_string())?;
    let dynamic = model_workloads(desc, &policy, seed).map_err(|e| e.to_string())?;
    let low_fraction = model_low_fraction(&dynamic);

    let mut eyeriss = Eyeriss::paper_config().map_err(|e| e.to_string())?;
    let mut bitfusion = BitFusion::int8().map_err(|e| e.to_string())?;
    let mut drq = DrqAccelerator::paper_config().map_err(|e| e.to_string())?;
    let mut drift = DriftAccelerator::paper_config().map_err(|e| e.to_string())?;

    let mut rows: [Vec<ExecReport>; 4] = [vec![], vec![], vec![], vec![]];
    for (op, workload) in &dynamic {
        let uniform = GemmWorkload::uniform(op.name.clone(), op.shape, false);
        let runs: [(usize, Result<ExecReport, drift_accel::AccelError>); 4] = [
            (0, eyeriss.execute(&uniform)),
            (1, bitfusion.execute(&uniform)),
            (2, drq.execute(workload)),
            (3, drift.execute(workload)),
        ];
        for (slot, run) in runs {
            let report = run.map_err(|e| format!("{}: {e}", op.name))?;
            rows[slot].push(scale_report(&report, op.repeat));
        }
    }
    let [e, b, q, d] = rows;
    Ok(ModelComparison {
        model: desc.name.clone(),
        eyeriss: total_report(&desc.name, "eyeriss", &e),
        bitfusion: total_report(&desc.name, "bitfusion", &b),
        drq: total_report(&desc.name, "drq", &q),
        drift: total_report(&desc.name, "drift", &d),
        low_fraction,
    })
}

/// Geometric mean of a slice (1.0 when empty).
pub fn geomean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 1.0;
    }
    (values.iter().map(|v| v.ln()).sum::<f64>() / values.len() as f64).exp()
}

/// Renders an aligned plain-text table.
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    let line = |cells: &[String], widths: &[usize]| {
        let mut s = String::new();
        for (i, c) in cells.iter().enumerate() {
            s.push_str(&format!("{:<w$}  ", c, w = widths[i]));
        }
        s.trim_end().to_string() + "\n"
    };
    out.push_str(&line(
        &headers.iter().map(|h| h.to_string()).collect::<Vec<_>>(),
        &widths,
    ));
    out.push_str(&format!(
        "{}\n",
        widths
            .iter()
            .map(|w| "-".repeat(*w))
            .collect::<Vec<_>>()
            .join("  ")
    ));
    for row in rows {
        out.push_str(&line(row, &widths));
    }
    out
}

/// Formats a ratio as `N.NNx`.
pub fn fmt_x(v: f64) -> String {
    format!("{v:.2}x")
}

/// Formats a fraction as a percentage.
pub fn fmt_pct(v: f64) -> String {
    format!("{:.1}%", v * 100.0)
}

/// The per-op GEMM list with dynamic annotations, exposed for binaries
/// that need finer control than [`compare_model`].
///
/// # Errors
///
/// Propagates lowering errors as strings.
pub fn dynamic_workloads(
    desc: &ModelDesc,
    seed: u64,
) -> Result<Vec<(GemmOp, GemmWorkload)>, String> {
    let policy = DriftPolicy::new(model_delta(desc)).map_err(|e| e.to_string())?;
    model_workloads(desc, &policy, seed).map_err(|e| e.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use drift_accel::gemm::GemmShape;

    #[test]
    fn geomean_basics() {
        assert_eq!(geomean(&[]), 1.0);
        assert!((geomean(&[4.0, 1.0]) - 2.0).abs() < 1e-12);
        assert!((geomean(&[8.0]) - 8.0).abs() < 1e-12);
    }

    #[test]
    fn render_table_aligns() {
        let t = render_table(
            &["model", "x"],
            &[
                vec!["ResNet18".to_string(), "1.0".to_string()],
                vec!["a".to_string(), "22.5".to_string()],
            ],
        );
        assert!(t.contains("ResNet18"));
        assert!(t.lines().count() == 4);
    }

    #[test]
    fn scale_report_multiplies_everything() {
        let shape = GemmShape::new(4, 4, 4).unwrap();
        let w = GemmWorkload::uniform("t", shape, false);
        let traffic = drift_accel::accelerator::TrafficReport {
            dram_cycles: 5,
            dram_pj: 1.0,
            buffer_pj: 2.0,
        };
        let r = drift_accel::accelerator::finish_report("x", &w, 10, 1, 3, 4.0, traffic, 2, 0.5);
        let s = scale_report(&r, 3);
        assert_eq!(s.cycles, 30);
        assert_eq!(s.stall_cycles, 3);
        assert!((s.energy.core_pj - 12.0).abs() < 1e-12);
    }

    #[test]
    fn family_deltas_positive() {
        for f in [
            ModelFamily::Cnn,
            ModelFamily::Vit,
            ModelFamily::Bert,
            ModelFamily::Llm,
        ] {
            assert!(family_delta(f) > 0.0);
        }
    }

    #[test]
    fn compare_small_model_end_to_end() {
        // A reduced BERT keeps this test fast while exercising the full
        // four-accelerator pipeline.
        let desc = ModelDesc {
            name: "bert-tiny".to_string(),
            family: ModelFamily::Bert,
            layers: vec![drift_nn::zoo::LayerDesc::Linear {
                name: "qkv".to_string(),
                tokens: 128,
                in_dim: 256,
                out_dim: 256,
                repeat: 2,
            }],
            seq: 128,
        };
        let cmp = compare_model(&desc, 7).unwrap();
        let speedups = cmp.speedups();
        // BitFusion INT8 beats Eyeriss FP32; Drift beats BitFusion.
        assert!(speedups[0] > 1.0, "bitfusion {:?}", speedups);
        assert!(speedups[2] > speedups[0], "drift {:?}", speedups);
        assert!(cmp.low_fraction > 0.0);
    }
}
