//! Figure 2: existing precision-flexible accelerators cannot support
//! DNN inference with dynamic precision quantization.
//!
//! BitFusion fuses BitBricks into PEs *before* runtime. When a
//! dynamically quantized stream arrives, every element wider than the
//! fused width iterates temporally inside its PE and the systolic
//! wavefront behind it stalls. This binary sweeps the high-precision
//! fraction of the stream and reports the stall blow-up, plus the two
//! ways BitFusion can escape (both losing the benefit of 4-bit data).
//!
//! ```text
//! cargo run --release -p drift-bench --bin fig2_bitfusion_stalls
//! ```

use drift_accel::accelerator::Accelerator;
use drift_accel::bitfusion::BitFusion;
use drift_accel::gemm::{GemmShape, GemmWorkload};
use drift_bench::{fmt_pct, render_table};
use drift_core::accelerator::DriftAccelerator;

fn main() {
    let shape = GemmShape::new(512, 768, 768).expect("static shape is valid");
    println!("== Figure 2: dynamic precision on a statically fused array ==");
    println!("GEMM {shape}, 4-bit weights, activation high-fraction swept\n");

    let mut rows = Vec::new();
    for pct in [0usize, 5, 10, 20, 30, 50] {
        let high = shape.m * pct / 100;
        // Interleave the high rows through the stream, as token-granular
        // dynamics produce.
        let act_high: Vec<bool> = (0..shape.m)
            .map(|i| high > 0 && i % (shape.m / high.max(1)).max(1) == 0)
            .collect();
        let w = GemmWorkload::new(format!("mix{pct}"), shape, act_high, vec![false; shape.n])
            .expect("lengths match");

        let mut fused4 = BitFusion::int4().expect("config is valid");
        let r4 = fused4.execute(&w).expect("workload maps");
        let mut fused8 = BitFusion::int8().expect("config is valid");
        let r8 = fused8.execute(&w).expect("workload maps");
        let mut drift = DriftAccelerator::paper_config().expect("config is valid");
        let rd = drift.execute(&w).expect("workload maps");

        rows.push(vec![
            format!("{pct}%"),
            format!("{}", r4.compute_cycles),
            format!("{}", r4.stall_cycles),
            fmt_pct(r4.stall_cycles as f64 / r4.compute_cycles as f64),
            format!("{}", r8.compute_cycles),
            format!("{}", rd.compute_cycles),
        ]);
    }
    println!(
        "{}",
        render_table(
            &[
                "high frac",
                "fused-4b cycles",
                "stall cycles",
                "stall share",
                "fused-8b cycles",
                "drift cycles"
            ],
            &rows
        )
    );
    println!("fused-4b: stalls grow with every 8-bit element (Fig. 2's hazard);");
    println!("fused-8b: stall-free but gains nothing from the 4-bit majority;");
    println!("drift: splits the fabric per precision pair — fast and stall-free.");
}
