//! Ablation A3: sub-tensor granularity sweep.
//!
//! The paper fixes the sub-tensor size to DRQ's for fairness and notes
//! the algorithm supports others. This ablation sweeps granularity from
//! per-tensor to per-value on the BERT-like model, reporting fidelity,
//! 4-bit share, and the index-buffer bits each granularity needs —
//! the bookkeeping cost that rules out per-value gating (Section 2.2).
//!
//! ```text
//! cargo run --release -p drift-bench --bin ablate_granularity
//! ```

use drift_bench::{fmt_pct, render_table};
use drift_core::arch::controller::INDEX_ENTRY_BITS;
use drift_core::selector::DriftPolicy;
use drift_nn::datagen::TokenProfile;
use drift_nn::engine::{ForwardMode, Model, TinyTransformer};
use drift_nn::layers::argmax_rows;
use drift_quant::policy::run_policy;
use drift_quant::precision::Precision;
use drift_tensor::subtensor::SubTensorScheme;
use drift_tensor::Tensor;

fn main() {
    println!("== Ablation A3: sub-tensor granularity ==\n");
    let model = TinyTransformer::bert_like(23).expect("valid config");
    let hidden = model.hidden();
    let inputs: Vec<Tensor> = (0..96)
        .map(|i| {
            TokenProfile::bert()
                .generate_classified(16, hidden, i % 10, 2.5, 7000 + i as u64)
                .expect("valid dims")
        })
        .collect();

    let schemes: Vec<(&str, SubTensorScheme)> = vec![
        ("per-tensor", SubTensorScheme::PerTensor),
        ("4 tokens", SubTensorScheme::token(hidden * 4)),
        ("token (paper)", SubTensorScheme::token(hidden)),
        ("half-token", SubTensorScheme::token(hidden / 2)),
        ("per-value", SubTensorScheme::PerValue),
    ];
    let policy = DriftPolicy::new(0.3).expect("delta is valid");

    let mut rows = Vec::new();
    for (label, scheme) in &schemes {
        // Fidelity at this granularity: quantize the *input* tensor at
        // the scheme, then run the (otherwise token-granular) model so
        // only the granularity of the first decision varies.
        let mut agree = 0usize;
        let mut frac = 0.0f64;
        let mut index_bits = 0u64;
        for input in &inputs {
            let run =
                run_policy(input, scheme, Precision::INT8, &policy).expect("scheme divides tensor");
            frac += run.low_fraction();
            index_bits = run.decisions.len() as u64 * INDEX_ENTRY_BITS;
            let reference = model
                .forward(input, &ForwardMode::Fp32)
                .expect("forward runs");
            let quantized = model
                .forward(&run.effective, &ForwardMode::quantized(&policy))
                .expect("forward runs");
            if argmax_rows(&reference.logits).expect("rank-2")[0]
                == argmax_rows(&quantized.logits).expect("rank-2")[0]
            {
                agree += 1;
            }
        }
        rows.push(vec![
            label.to_string(),
            fmt_pct(agree as f64 / inputs.len() as f64),
            fmt_pct(frac / inputs.len() as f64),
            format!("{index_bits}"),
        ]);
    }
    println!(
        "{}",
        render_table(
            &[
                "granularity",
                "agreement",
                "input 4-bit share",
                "index bits / tensor"
            ],
            &rows
        )
    );
    println!("finer granularity adapts better (higher share at equal accuracy) but");
    println!(
        "the index cost grows linearly; per-value needs {}x the token-level",
        (16 * 64) / 16
    );
    println!("bookkeeping — the overhead that makes Precision Gating impractical.");
}
