//! Ablation A2: the two selection criteria of Section 3.3 in
//! isolation.
//!
//! * **RR-only** (δ = 0): Eq. 5 picks the conversion, every sub-tensor
//!   converts — maximal 4-bit share, no accuracy guard.
//! * **RD-only**: no range adaptation — the conversion is fixed at the
//!   range-preserving `(hc=0, lc=4)` (what DRQ/PG use) and only the
//!   Eq. 6 density test gates it.
//! * **Full Drift**: Eq. 5 + Eq. 6.
//!
//! ```text
//! cargo run --release -p drift-bench --bin ablate_metrics
//! ```

use drift_bench::{fmt_pct, render_table};
use drift_core::selector::DriftPolicy;
use drift_nn::datagen::TokenProfile;
use drift_nn::engine::TinyTransformer;
use drift_nn::eval::classification_fidelity;
use drift_quant::capability::RepresentationCapability;
use drift_quant::convert::ConversionChoice;
use drift_quant::policy::{Decision, PrecisionPolicy, StaticHighPolicy, TensorContext};
use drift_quant::precision::Precision;
use drift_tensor::stats::SummaryStats;
use drift_tensor::Tensor;

/// Density-test-only policy: fixed range-preserving conversion, gated
/// by Eq. 6.
#[derive(Debug)]
struct RdOnlyPolicy {
    delta: f64,
}

impl PrecisionPolicy for RdOnlyPolicy {
    fn name(&self) -> &str {
        "rd-only"
    }

    fn decide(&self, ctx: &TensorContext, stats: &SummaryStats) -> Decision {
        let hp = ctx.params.precision;
        if hp.bits() <= 4 {
            return Decision::Keep;
        }
        let choice = ConversionChoice::new(hp, Precision::INT4, 0, hp.bits() - 4)
            .expect("hc=0 split is valid");
        let cap = RepresentationCapability::of(&choice, &ctx.params);
        let variance = 2.0 * stats.mean_abs() * stats.mean_abs();
        if cap.density_ratio(variance) >= self.delta {
            Decision::Convert(choice)
        } else {
            Decision::Keep
        }
    }
}

fn main() {
    println!("== Ablation A2: RR-only vs RD-only vs full Drift ==\n");
    let model = TinyTransformer::bert_like(23).expect("valid config");
    let inputs: Vec<Tensor> = (0..128)
        .map(|i| {
            TokenProfile::bert()
                .generate_classified(16, model.hidden(), i % 10, 2.5, 9000 + i as u64)
                .expect("valid dims")
        })
        .collect();

    let int8 = classification_fidelity(&model, &inputs, &StaticHighPolicy, 100.0)
        .expect("evaluation runs");
    let rr_only = classification_fidelity(
        &model,
        &inputs,
        &DriftPolicy::new(0.0).expect("delta 0 is valid"),
        100.0,
    )
    .expect("evaluation runs");
    let rd_only = classification_fidelity(&model, &inputs, &RdOnlyPolicy { delta: 0.3 }, 100.0)
        .expect("evaluation runs");
    let full = classification_fidelity(
        &model,
        &inputs,
        &DriftPolicy::new(0.3).expect("delta is valid"),
        100.0,
    )
    .expect("evaluation runs");

    let rows = vec![
        vec![
            "INT8 (reference)".to_string(),
            fmt_pct(int8.agreement),
            fmt_pct(int8.low_fraction),
        ],
        vec![
            "RR-only (Eq. 5, δ=0)".to_string(),
            fmt_pct(rr_only.agreement),
            fmt_pct(rr_only.low_fraction),
        ],
        vec![
            "RD-only (hc=0 fixed, δ=0.3)".to_string(),
            fmt_pct(rd_only.agreement),
            fmt_pct(rd_only.low_fraction),
        ],
        vec![
            "Full Drift (δ=0.3)".to_string(),
            fmt_pct(full.agreement),
            fmt_pct(full.low_fraction),
        ],
    ];
    println!(
        "{}",
        render_table(&["criterion", "agreement vs FP32", "4-bit share"], &rows)
    );
    println!("RR-only converts everything (range-safe but density-blind);");
    println!("RD-only wastes density on small sub-tensors (no high-end clipping);");
    println!("the full algorithm needs both metrics to hold accuracy at a high");
    println!("4-bit share.");
}
