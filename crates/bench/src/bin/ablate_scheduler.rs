//! Ablation A1: the balanced online scheduler vs a static equal split
//! vs the perfect-balance oracle bound.
//!
//! The paper attributes part of Drift's gain to "balanced online
//! scheduling that achieves load balance among different systolic
//! arrays" (Section 5.3); this ablation quantifies it across precision
//! mixes and models.
//!
//! ```text
//! cargo run --release -p drift-bench --bin ablate_scheduler
//! ```

use drift_accel::accelerator::Accelerator;
use drift_bench::{dynamic_workloads, fmt_x, geomean, render_table, scale_report};
use drift_core::accelerator::{DriftAccelerator, SchedulerKind};
use drift_core::arch::paper_fabric;
use drift_core::schedule::oracle_lower_bound;
use drift_nn::zoo::hardware_eval_models;

fn main() {
    println!("== Ablation A1: scheduling strategy ==\n");
    let mut rows = Vec::new();
    let mut gains = Vec::new();
    for desc in hardware_eval_models() {
        let workloads = dynamic_workloads(&desc, 42).unwrap_or_else(|e| {
            eprintln!("{}: {e}", desc.name);
            std::process::exit(1);
        });
        let mut balanced =
            DriftAccelerator::new(paper_fabric(), SchedulerKind::Balanced).expect("valid");
        let mut equal =
            DriftAccelerator::new(paper_fabric(), SchedulerKind::EqualStatic).expect("valid");
        let mut c_balanced = 0u64;
        let mut c_equal = 0u64;
        let mut lb = 0.0f64;
        for (op, w) in &workloads {
            let rb = balanced.execute(w).expect("workload maps");
            let re = equal.execute(w).expect("workload maps");
            c_balanced += scale_report(&rb, op.repeat).compute_cycles;
            c_equal += scale_report(&re, op.repeat).compute_cycles;
            lb += oracle_lower_bound(paper_fabric(), &w.quadrants()) * op.repeat as f64;
        }
        let gain = c_equal as f64 / c_balanced as f64;
        gains.push(gain);
        rows.push(vec![
            desc.name.clone(),
            format!("{c_equal}"),
            format!("{c_balanced}"),
            fmt_x(gain),
            format!("{:.2}", c_balanced as f64 / lb),
        ]);
    }
    rows.push(vec![
        "geomean".to_string(),
        String::new(),
        String::new(),
        fmt_x(geomean(&gains)),
        String::new(),
    ]);
    println!(
        "{}",
        render_table(
            &[
                "model",
                "equal-split cycles",
                "balanced cycles",
                "gain",
                "vs oracle"
            ],
            &rows
        )
    );
    println!("balanced online scheduling (Eq. 8) vs a fixed 2x2 partition; the");
    println!("last column is the balanced makespan over the perfect-balance bound.");
}
