//! Figure 8: normalized energy and breakdown (static / DRAM / buffer /
//! core) across architectures.
//!
//! Paper reference points: Drift averages 8.11× energy reduction over
//! Eyeriss, 3.12× over BitFusion, 1.54× over DRQ; static energy is
//! 41.2% of Drift's total versus 51.9% of DRQ's (DRQ idles through its
//! stalls).
//!
//! ```text
//! cargo run --release -p drift-bench --bin fig8_energy
//! ```

use drift_accel::accelerator::ExecReport;
use drift_bench::{compare_model, fmt_pct, fmt_x, geomean, render_table};
use drift_nn::zoo::hardware_eval_models;

fn breakdown_cells(r: &ExecReport) -> String {
    let [s, d, b, c] = r.energy.fractions();
    format!(
        "{}/{}/{}/{}",
        fmt_pct(s),
        fmt_pct(d),
        fmt_pct(b),
        fmt_pct(c)
    )
}

fn main() {
    println!("== Figure 8: energy, normalized to Eyeriss (higher is better) ==\n");
    let mut rows = Vec::new();
    let mut red_bf = Vec::new();
    let mut red_drq = Vec::new();
    let mut red_drift = Vec::new();
    let mut drift_static = Vec::new();
    let mut drq_static = Vec::new();
    for desc in hardware_eval_models() {
        let cmp = match compare_model(&desc, 42) {
            Ok(c) => c,
            Err(e) => {
                eprintln!("{}: {e}", desc.name);
                std::process::exit(1);
            }
        };
        let [bf, drq, drift] = cmp.energy_reductions();
        rows.push(vec![
            cmp.model.clone(),
            fmt_x(bf),
            fmt_x(drq),
            fmt_x(drift),
            fmt_x(drift / bf),
            fmt_x(drift / drq),
            breakdown_cells(&cmp.drq),
            breakdown_cells(&cmp.drift),
        ]);
        red_bf.push(bf);
        red_drq.push(drq);
        red_drift.push(drift);
        drift_static.push(cmp.drift.energy.fractions()[0]);
        drq_static.push(cmp.drq.energy.fractions()[0]);
    }
    rows.push(vec![
        "geomean".to_string(),
        fmt_x(geomean(&red_bf)),
        fmt_x(geomean(&red_drq)),
        fmt_x(geomean(&red_drift)),
        fmt_x(geomean(&red_drift) / geomean(&red_bf)),
        fmt_x(geomean(&red_drift) / geomean(&red_drq)),
        String::new(),
        String::new(),
    ]);
    println!(
        "{}",
        render_table(
            &[
                "model",
                "bitfusion",
                "drq",
                "drift",
                "drift/bf",
                "drift/drq",
                "drq s/d/b/c",
                "drift s/d/b/c"
            ],
            &rows
        )
    );
    let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    println!(
        "static share: drift {} vs drq {}   (paper: 41.2% vs 51.9%)",
        fmt_pct(avg(&drift_static)),
        fmt_pct(avg(&drq_static))
    );
    println!("paper: drift 8.11x vs eyeriss, 3.12x vs bitfusion, 1.54x vs drq (averages).");
}
