//! Ablation A4: flexible low precisions (Section 5.3's closing remark).
//!
//! The BitGroup fabric natively supports 3- and 5-bit computation, so
//! "even lower precisions could be utilized for further performance
//! improvements". This ablation runs Drift with lp ∈ {3, 4, 5} on the
//! BERT workload, reporting fidelity, low-bit share, and the hardware
//! cycles of the resulting mixed-precision GEMMs.
//!
//! ```text
//! cargo run --release -p drift-bench --bin ablate_flexible_precision
//! ```

use drift_accel::accelerator::Accelerator;
use drift_accel::gemm::{GemmShape, GemmWorkload};
use drift_bench::{fmt_pct, render_table};
use drift_core::accelerator::DriftAccelerator;
use drift_core::selector::DriftPolicy;
use drift_nn::datagen::TokenProfile;
use drift_nn::engine::TinyTransformer;
use drift_nn::eval::classification_fidelity;
use drift_quant::precision::Precision;
use drift_tensor::Tensor;

fn main() {
    println!("== Ablation A4: flexible low precisions ==\n");
    let model = TinyTransformer::bert_like(23).expect("valid config");
    let inputs: Vec<Tensor> = (0..96)
        .map(|i| {
            TokenProfile::bert()
                .generate_classified(16, model.hidden(), i % 10, 2.5, 8000 + i as u64)
                .expect("valid dims")
        })
        .collect();

    // A representative BERT GEMM for the hardware side.
    let shape = GemmShape::new(128, 768, 768).expect("static shape is valid");

    let mut rows = Vec::new();
    for (lp, delta) in [
        (Precision::INT5, 0.15),
        (Precision::INT4, 0.3),
        (Precision::INT3, 0.6),
    ] {
        let policy = DriftPolicy::with_low_precision(delta, lp).expect("precision is valid");
        let fid =
            classification_fidelity(&model, &inputs, &policy, 100.0).expect("evaluation runs");

        // Hardware: a workload with this low fraction at (8, lp) pairs.
        let low_rows = (shape.m as f64 * fid.low_fraction) as usize;
        let act_high: Vec<bool> = (0..shape.m).map(|i| i >= low_rows).collect();
        let workload = GemmWorkload::new(
            format!("bert-lp{}", lp.bits()),
            shape,
            act_high,
            vec![false; shape.n],
        )
        .expect("lengths match")
        .with_precisions((Precision::INT8, lp), (Precision::INT8, lp))
        .expect("high is wider than low");
        let mut drift = DriftAccelerator::paper_config().expect("valid config");
        let report = drift.execute(&workload).expect("workload maps");

        rows.push(vec![
            lp.to_string(),
            format!("{delta}"),
            fmt_pct(fid.agreement),
            fmt_pct(fid.low_fraction),
            format!("{}", report.compute_cycles),
        ]);
    }
    println!(
        "{}",
        render_table(
            &[
                "low precision",
                "δ",
                "agreement",
                "low share",
                "gemm cycles"
            ],
            &rows
        )
    );
    println!("5-bit converts nearly everything safely; 3-bit buys more speed at a");
    println!("visible accuracy cost — the flexibility Section 5.3 leaves open.");
}
