//! Ablation A5: Precision Gating, the per-value baseline the paper
//! rejects for its bookkeeping cost (Section 2.2).
//!
//! Compares PG (per-value dual precision, 5-of-8 bits kept) against
//! Drift at token granularity: fidelity, low-bit share, and the index
//! metadata each needs — the "intolerable hardware costs" argument,
//! quantified. PG's published accuracy additionally depends on
//! retraining the gates, which no post-training method here gets.
//!
//! ```text
//! cargo run --release -p drift-bench --bin ablate_gating
//! ```

use drift_bench::{fmt_pct, render_table};
use drift_core::arch::controller::INDEX_ENTRY_BITS;
use drift_core::selector::DriftPolicy;
use drift_nn::datagen::TokenProfile;
use drift_nn::engine::TinyTransformer;
use drift_nn::engine::{ForwardMode, Model};
use drift_nn::eval::classification_fidelity;
use drift_nn::layers::argmax_rows;
use drift_quant::gating::PrecisionGatingPolicy;
use drift_quant::policy::{run_policy, StaticHighPolicy};
use drift_quant::precision::Precision;
use drift_tensor::subtensor::SubTensorScheme;
use drift_tensor::Tensor;

fn main() {
    println!("== Ablation A5: per-value Precision Gating vs token-level Drift ==\n");
    let model = TinyTransformer::bert_like(23).expect("valid config");
    let hidden = model.hidden();
    let seq = 16usize;
    let inputs: Vec<Tensor> = (0..96)
        .map(|i| {
            TokenProfile::bert()
                .generate_classified(seq, hidden, i % 10, 2.5, 11_000 + i as u64)
                .expect("valid dims")
        })
        .collect();

    let int8 = classification_fidelity(&model, &inputs, &StaticHighPolicy, 100.0)
        .expect("evaluation runs");
    let drift = classification_fidelity(
        &model,
        &inputs,
        &DriftPolicy::new(0.3).expect("valid delta"),
        100.0,
    )
    .expect("evaluation runs");

    // Precision Gating decides per VALUE; the engine's scheme is
    // per-token, so apply PG to the input tensor at per-value
    // granularity and run the rest of the network at INT8 (the A3
    // methodology): its accuracy effect and bookkeeping both show.
    let pg_policy = PrecisionGatingPolicy::new(0.25, Precision::INT5).expect("valid theta");
    let mut pg_agree = 0usize;
    let mut pg_low = 0.0f64;
    for input in &inputs {
        let run = run_policy(
            input,
            &SubTensorScheme::PerValue,
            Precision::INT8,
            &pg_policy,
        )
        .expect("per-value scheme divides");
        pg_low += run.low_fraction();
        let reference = model
            .forward(input, &ForwardMode::Fp32)
            .expect("forward runs");
        let quantized = model
            .forward(&run.effective, &ForwardMode::quantized(&StaticHighPolicy))
            .expect("forward runs");
        if argmax_rows(&reference.logits).expect("rank-2")[0]
            == argmax_rows(&quantized.logits).expect("rank-2")[0]
        {
            pg_agree += 1;
        }
    }
    let (pg_agreement, pg_share) = (
        pg_agree as f64 / inputs.len() as f64,
        pg_low / inputs.len() as f64,
    );

    // Index metadata per activation tensor: one entry per decision
    // unit. PG decides per value; Drift per token.
    let pg_bits = (seq * hidden) as u64 * INDEX_ENTRY_BITS;
    let drift_bits = seq as u64 * INDEX_ENTRY_BITS;
    let rows = vec![
        vec![
            "INT8".to_string(),
            fmt_pct(int8.agreement),
            "-".to_string(),
            "0".to_string(),
        ],
        vec![
            "Precision Gating (5-of-8, per value)".to_string(),
            fmt_pct(pg_agreement),
            fmt_pct(pg_share),
            format!("{pg_bits}"),
        ],
        vec![
            "Drift (per token)".to_string(),
            fmt_pct(drift.agreement),
            fmt_pct(drift.low_fraction),
            format!("{drift_bits}"),
        ],
    ];
    println!(
        "{}",
        render_table(
            &["method", "agreement", "low share", "index bits / tensor"],
            &rows
        )
    );
    println!(
        "per-value gating needs {}x the index metadata of token-level Drift",
        pg_bits / drift_bits
    );
    println!("for one [{seq} x {hidden}] tensor — and per-value hardware must also");
    println!("recompute gated values at high precision, which no systolic schedule");
    println!("absorbs (Section 2.2's 'intolerable hardware costs').");
}
