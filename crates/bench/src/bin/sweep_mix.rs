//! Supplementary sweep: accelerator latency as a function of the 4-bit
//! activation share — the crossover structure beneath Figs. 7–8.
//!
//! Eyeriss and BitFusion are flat (they cannot exploit dynamic
//! precision); DRQ improves with the 4-bit share but saturates under
//! stalls; Drift tracks the ideal work reduction. The interesting
//! crossings: where DRQ overtakes BitFusion, and how the Drift–DRQ gap
//! widens as precisions interleave.
//!
//! ```text
//! cargo run --release -p drift-bench --bin sweep_mix
//! ```

use drift_accel::accelerator::Accelerator;
use drift_accel::bitfusion::BitFusion;
use drift_accel::drq::DrqAccelerator;
use drift_accel::eyeriss::Eyeriss;
use drift_accel::gemm::{GemmShape, GemmWorkload};
use drift_bench::{fmt_x, render_table};
use drift_core::accelerator::DriftAccelerator;

fn main() {
    let shape = GemmShape::new(1024, 768, 768).expect("static shape is valid");
    println!("== Latency vs 4-bit share (GEMM {shape}, interleaved precisions) ==\n");

    let mut eyeriss = Eyeriss::paper_config().expect("valid config");
    let base = eyeriss
        .execute(&GemmWorkload::uniform("fp32", shape, false))
        .expect("workload maps")
        .cycles as f64;

    let mut rows = Vec::new();
    for low_pct in [0usize, 25, 50, 70, 85, 95, 100] {
        let low = shape.m * low_pct / 100;
        let act_high: Vec<bool> = (0..shape.m)
            .map(|i| {
                // Interleave the low rows uniformly.
                !(low > 0 && (i * low) % shape.m < low)
            })
            .collect();
        let weight_high: Vec<bool> = (0..shape.n).map(|j| (j * low) % shape.n >= low).collect();
        let w = GemmWorkload::new(format!("mix{low_pct}"), shape, act_high, weight_high)
            .expect("lengths match");

        let mut bf = BitFusion::int8().expect("valid config");
        let c_bf = bf
            .execute(&GemmWorkload::uniform("int8", shape, false))
            .expect("workload maps")
            .cycles;
        let mut drq = DrqAccelerator::paper_config().expect("valid config");
        let r_drq = drq.execute(&w).expect("workload maps");
        let mut drift = DriftAccelerator::paper_config().expect("valid config");
        let r_drift = drift.execute(&w).expect("workload maps");

        rows.push(vec![
            format!("{low_pct}%"),
            "1.00x".to_string(),
            fmt_x(base / c_bf as f64),
            fmt_x(base / r_drq.cycles as f64),
            fmt_x(base / r_drift.cycles as f64),
            format!("{}", r_drq.stall_cycles),
        ]);
    }
    println!(
        "{}",
        render_table(
            &[
                "4-bit share",
                "eyeriss",
                "bitfusion",
                "drq",
                "drift",
                "drq stalls"
            ],
            &rows
        )
    );
    println!("bitfusion is flat; drq crosses it only once the low share is high");
    println!("and interleaving stalls stay bounded; drift scales with the share.");
}
