//! Figure 7: normalized latency of Eyeriss / BitFusion / DRQ / Drift
//! across the five DNN models.
//!
//! Paper reference points: Drift averages 9.57× over Eyeriss, 2.85×
//! over BitFusion, and 1.64× over DRQ; on ViT-B, DRQ manages only
//! ~1.07× over BitFusion because its variable-speed array stalls on
//! interleaved precisions.
//!
//! ```text
//! cargo run --release -p drift-bench --bin fig7_latency
//! ```

use drift_bench::{compare_model, fmt_pct, fmt_x, geomean, render_table};
use drift_nn::zoo::hardware_eval_models;

fn main() {
    println!("== Figure 7: latency, normalized to Eyeriss (higher is faster) ==\n");
    let mut rows = Vec::new();
    let mut speed_bf = Vec::new();
    let mut speed_drq = Vec::new();
    let mut speed_drift = Vec::new();
    let mut drift_over_bf = Vec::new();
    let mut drift_over_drq = Vec::new();
    for desc in hardware_eval_models() {
        let cmp = match compare_model(&desc, 42) {
            Ok(c) => c,
            Err(e) => {
                eprintln!("{}: {e}", desc.name);
                std::process::exit(1);
            }
        };
        let [bf, drq, drift] = cmp.speedups();
        rows.push(vec![
            cmp.model.clone(),
            "1.00x".to_string(),
            fmt_x(bf),
            fmt_x(drq),
            fmt_x(drift),
            fmt_x(drift / bf),
            fmt_x(drift / drq),
            fmt_pct(cmp.low_fraction),
        ]);
        speed_bf.push(bf);
        speed_drq.push(drq);
        speed_drift.push(drift);
        drift_over_bf.push(drift / bf);
        drift_over_drq.push(drift / drq);
    }
    rows.push(vec![
        "geomean".to_string(),
        "1.00x".to_string(),
        fmt_x(geomean(&speed_bf)),
        fmt_x(geomean(&speed_drq)),
        fmt_x(geomean(&speed_drift)),
        fmt_x(geomean(&drift_over_bf)),
        fmt_x(geomean(&drift_over_drq)),
        String::new(),
    ]);
    println!(
        "{}",
        render_table(
            &[
                "model",
                "eyeriss",
                "bitfusion",
                "drq",
                "drift",
                "drift/bf",
                "drift/drq",
                "4-bit"
            ],
            &rows
        )
    );
    println!("paper: drift 9.57x vs eyeriss, 2.85x vs bitfusion, 1.64x vs drq (averages);");
    println!("       drq only ~1.07x over bitfusion on ViT-B.");
}
