//! Figure 3: how representation range and density drive the
//! precision-conversion choice.
//!
//! Reproduces the worked example: three sub-tensors with distinct
//! statistics, the five 8→4-bit `(hc, lc)` choices, the RR test
//! (Eq. 5) fixing the choice, and the RD test (Eq. 6) accepting or
//! rejecting it.
//!
//! ```text
//! cargo run --release -p drift-bench --bin fig3_conversion_choices
//! ```

use drift_bench::render_table;
use drift_core::selector::DriftPolicy;
use drift_nn::datagen::stats_with;
use drift_quant::capability::RepresentationCapability;
use drift_quant::convert::ConversionChoice;
use drift_quant::linear::QuantParams;
use drift_quant::policy::{Decision, PrecisionPolicy, TensorContext};
use drift_quant::precision::Precision;

fn main() {
    // The tensor-wide scale: abs max 1.27 so Δ = 0.01 exactly.
    let params = QuantParams::from_abs_max(1.27, Precision::INT8);
    println!("== Figure 3: conversion choices under RR/RD ==");
    println!("Δ = {:.4}, hp = INT8, lp = INT4\n", params.scale);

    // The five conversion choices and their capabilities (Eq. 3).
    let mut rows = Vec::new();
    for c in ConversionChoice::enumerate(Precision::INT8, Precision::INT4) {
        let cap = RepresentationCapability::of(&c, &params);
        rows.push(vec![
            format!("hc={} lc={}", c.hc(), c.lc()),
            format!("{:.4}", cap.range),
            format!("{:.4}", cap.density),
        ]);
    }
    println!(
        "{}",
        render_table(&["choice", "RR (range)", "RD (step)"], &rows)
    );

    // Three example sub-tensors, one per row of the paper's figure.
    let policy = DriftPolicy::new(1.0).expect("delta is valid");
    let ctx = TensorContext {
        global: stats_with(1.27, 0.4),
        params,
    };
    let examples = [
        (
            "row 1: moderate range, high variance",
            stats_with(0.30, 0.16),
        ),
        ("row 2: wide range (forces hc=0)", stats_with(1.20, 0.45)),
        ("row 3: wide range, tiny variance", stats_with(1.20, 0.02)),
    ];
    let mut rows = Vec::new();
    for (label, stats) in examples {
        let choice = policy
            .range_choice(stats.abs_max(), &params)
            .expect("INT4 < INT8");
        let cap = RepresentationCapability::of(&choice, &params);
        let ratio = cap.density_ratio(2.0 * stats.mean_abs() * stats.mean_abs());
        let decision = policy.decide(&ctx, &stats);
        rows.push(vec![
            label.to_string(),
            format!("{:.3}", stats.abs_max()),
            format!("{:.3}", stats.mean_abs()),
            format!("hc={} lc={}", choice.hc(), choice.lc()),
            format!("{ratio:.3}"),
            match decision {
                Decision::Keep => "keep INT8".to_string(),
                Decision::Convert(c) => format!("INT4 ({})", c),
            },
        ]);
    }
    println!(
        "{}",
        render_table(
            &[
                "sub-tensor",
                "max|Y|",
                "avg|Y|",
                "Eq.5 choice",
                "var/RD",
                "decision (δ=1)"
            ],
            &rows
        )
    );
    println!("paper: the wide-range sub-tensor clips only low bits (hc=0, lc=4);");
    println!("       the small-variance one fails Eq. 6 and stays 8-bit.");
}
