//! Figure 1: sub-tensor dynamics and distributions in DNNs.
//!
//! (a) per-patch statistics of a ViT activation tensor: maxima range
//!     from near zero to several units;
//! (b–c) sampled BERT token sub-tensors are well approximated by
//!     zero-mean Laplace distributions despite very different scales.
//!
//! ```text
//! cargo run --release -p drift-bench --bin fig1_subtensor_dynamics
//! ```

use drift_bench::render_table;
use drift_nn::datagen::TokenProfile;
use drift_tensor::dist::{laplace_fit_ks, laplace_qq_points, Gaussian, Histogram, Sampler};
use drift_tensor::stats::SummaryStats;
use drift_tensor::subtensor::SubTensorScheme;

fn main() {
    // (a) ViT activation tensor: 196 patch tokens x 768 hidden.
    let vit = TokenProfile::vit()
        .generate(196, 768, 1)
        .expect("static dimensions are valid");
    let views = SubTensorScheme::token(768)
        .partition(vit.shape())
        .expect("token length divides the tensor");
    let stats: Vec<SummaryStats> = views
        .iter()
        .map(|v| SummaryStats::from_slice(vit.subtensor(v).expect("view in bounds")))
        .collect();
    let max_of =
        |f: fn(&SummaryStats) -> f64| stats.iter().map(f).fold(f64::NEG_INFINITY, f64::max);
    let min_of = |f: fn(&SummaryStats) -> f64| stats.iter().map(f).fold(f64::INFINITY, f64::min);
    println!("== Figure 1a: ViT-B activation sub-tensor (patch) dynamics ==\n");
    println!(
        "{}",
        render_table(
            &[
                "statistic",
                "min over patches",
                "max over patches",
                "spread"
            ],
            &[
                vec![
                    "max|Y|".to_string(),
                    format!("{:.4}", min_of(|s| s.abs_max())),
                    format!("{:.4}", max_of(|s| s.abs_max())),
                    format!("{:.1}x", max_of(|s| s.abs_max()) / min_of(|s| s.abs_max())),
                ],
                vec![
                    "var(Y)".to_string(),
                    format!("{:.6}", min_of(|s| s.variance())),
                    format!("{:.6}", max_of(|s| s.variance())),
                    format!(
                        "{:.0}x",
                        max_of(|s| s.variance()) / min_of(|s| s.variance())
                    ),
                ],
            ],
        )
    );
    println!("paper: some patch maxima are nearly 0 while others exceed 3.\n");

    // (b-c) Three BERT token sub-tensors with distinct scales.
    let bert = TokenProfile::bert()
        .generate(128, 768, 2)
        .expect("static dimensions are valid");
    let bviews = SubTensorScheme::token(768)
        .partition(bert.shape())
        .expect("token length divides the tensor");
    let mut by_scale: Vec<(f64, usize)> = bviews
        .iter()
        .map(|v| {
            let s = SummaryStats::from_slice(bert.subtensor(v).expect("view in bounds"));
            (s.mean_abs(), v.id())
        })
        .collect();
    by_scale.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("no NaN"));
    let picks = [
        by_scale[5].1,
        by_scale[by_scale.len() / 2].1,
        by_scale[by_scale.len() - 3].1,
    ];

    println!("== Figure 1b-c: three BERT token sub-tensors vs Laplace fits ==\n");
    let mut rows = Vec::new();
    for (label, id) in ["small", "medium", "large"].iter().zip(picks) {
        let values: Vec<f64> = bert
            .subtensor(&bviews[id])
            .expect("view in bounds")
            .iter()
            .map(|&v| f64::from(v))
            .collect();
        let (b, ks) = laplace_fit_ks(&values).expect("non-degenerate token");
        // QQ deviation over the central 90% of plotting positions.
        let qq = laplace_qq_points(&values);
        let inner = &qq[qq.len() / 20..qq.len() - qq.len() / 20];
        let qq_dev = inner
            .iter()
            .map(|(t, e)| (t - e).abs())
            .fold(0.0f64, f64::max)
            / b;
        // Contrast with the best-fit Gaussian to show Laplace wins.
        let std = SummaryStats::from_slice(values.iter().map(|&v| v as f32).collect::<Vec<_>>())
            .std_dev();
        let gauss = Gaussian::new(0.0, std).expect("positive std");
        let ks_gauss = drift_tensor::dist::ks_statistic(&values, |x| gauss.cdf(x));
        rows.push(vec![
            format!("token #{id} ({label})"),
            format!("{b:.4}"),
            format!("{ks:.4}"),
            format!("{ks_gauss:.4}"),
            format!("{qq_dev:.2}"),
            if ks < ks_gauss { "laplace" } else { "gaussian" }.to_string(),
        ]);
    }
    println!(
        "{}",
        render_table(
            &[
                "sub-tensor",
                "MLE scale b",
                "KS vs Laplace",
                "KS vs Gaussian",
                "QQ dev (b units)",
                "better fit"
            ],
            &rows
        )
    );
    println!("(KS < 1.36/sqrt(768) = 0.049 accepts the fit at the 5% level)\n");

    // A density sketch of the medium token.
    let mid: Vec<f64> = bert
        .subtensor(&bviews[picks[1]])
        .expect("view in bounds")
        .iter()
        .map(|&v| f64::from(v))
        .collect();
    let lim = mid.iter().fold(0.0f64, |m, &v| m.max(v.abs()));
    let mut hist = Histogram::new(-lim, lim, 21).expect("valid range");
    for &v in &mid {
        hist.push(v);
    }
    println!("medium token density (21 bins):\n{}", hist.to_ascii(40));
}
