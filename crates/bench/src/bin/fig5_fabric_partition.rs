//! Figure 5: allocating the Drift fabric to four systolic arrays.
//!
//! Shows the balanced online schedule (Eq. 8) for representative layers
//! with different precision mixes: the vertical (weight) cut, the two
//! horizontal (activation) cuts, per-quadrant geometries, and how the
//! partition shifts as the mix changes — the psum-direction
//! reallocation of the paper's example.
//!
//! ```text
//! cargo run --release -p drift-bench --bin fig5_fabric_partition
//! ```

use drift_accel::gemm::{GemmShape, GemmWorkload};
use drift_bench::render_table;
use drift_core::arch::paper_fabric;
use drift_core::schedule::{balanced_schedule, oracle_lower_bound};

fn mix(shape: GemmShape, fa: f64, fw: f64) -> GemmWorkload {
    let ah = (shape.m as f64 * fa) as usize;
    let wh = (shape.n as f64 * fw) as usize;
    GemmWorkload::new(
        format!("mix a{fa:.2} w{fw:.2}"),
        shape,
        (0..shape.m).map(|i| i < ah).collect(),
        (0..shape.n).map(|j| j < wh).collect(),
    )
    .expect("lengths match")
}

fn main() {
    let fabric = paper_fabric();
    println!(
        "== Figure 5: fabric partitioning (fabric {}x{} = {} BGs) ==\n",
        fabric.rows,
        fabric.cols,
        fabric.units()
    );
    let shape = GemmShape::new(512, 768, 768).expect("static shape is valid");
    let mut rows = Vec::new();
    for (fa, fw) in [(0.5, 0.5), (0.15, 0.15), (0.4, 0.1), (0.05, 0.5)] {
        let quads = mix(shape, fa, fw).quadrants();
        let s = balanced_schedule(fabric, &quads).expect("schedule exists");
        let geos = s.partition.geometries();
        let cell = |i: usize| {
            geos[i].map_or("-".to_string(), |g| {
                format!("{}x{} ({}c)", g.rows, g.cols, s.latencies[i])
            })
        };
        let lb = oracle_lower_bound(fabric, &quads);
        rows.push(vec![
            format!("a_h={fa:.2} w_h={fw:.2}"),
            cell(0),
            cell(1),
            cell(2),
            cell(3),
            format!("{}", s.makespan),
            format!("{:.2}", s.makespan as f64 / lb),
        ]);
    }
    println!(
        "{}",
        render_table(
            &[
                "precision mix",
                "hh array",
                "hl array",
                "lh array",
                "ll array",
                "makespan",
                "vs oracle"
            ],
            &rows
        )
    );
    println!("each cell is rows x cols (latency in cycles); '-' = quadrant empty.");
    println!("the balanced scheduler keeps the slowest array within a small factor");
    println!("of the perfect-balance lower bound across very different mixes.");
}
