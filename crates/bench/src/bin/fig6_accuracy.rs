//! Figure 6: NN accuracy and 4-bit computation share for FP32 / INT8 /
//! DRQ / Ours across the seven (model, task) pairs.
//!
//! Protocol (see `drift_nn::eval`): accuracy is the top-1 agreement
//! with the model's own FP32 reference, anchored to the paper's FP32
//! accuracy. The Drift δ per model comes from the Hessian-aware
//! calibrator, run on held-out calibration inputs.
//!
//! Paper reference points: >82.4% of computation at 4 bits with ≤1%
//! accuracy loss vs INT8; DRQ holds up on CNNs but loses >12% on
//! ViT/BERT.
//!
//! ```text
//! cargo run --release -p drift-bench --bin fig6_accuracy
//! ```

use drift_bench::{fmt_pct, render_table};
use drift_core::calibrate::HessianCalibrator;
use drift_core::selector::DriftPolicy;
use drift_nn::datagen::{ImageProfile, TokenProfile};
use drift_nn::engine::{Model, TinyCnn, TinyTransformer};
use drift_nn::eval::classification_fidelity;
use drift_quant::drq::DrqPolicy;
use drift_quant::policy::StaticHighPolicy;
use drift_tensor::Tensor;

enum Inputs {
    Tokens(TokenProfile, usize),
    Images(ImageProfile),
}

fn generate(inputs: &Inputs, n: usize, seed: u64) -> Vec<Tensor> {
    (0..n)
        .map(|i| match inputs {
            Inputs::Tokens(p, hidden) => p
                .generate_classified(16, *hidden, i % 10, 2.5, seed + i as u64)
                .expect("valid dims"),
            Inputs::Images(p) => p.generate(3, 16, 16, seed + i as u64).expect("valid dims"),
        })
        .collect()
}

/// Selects δ like the paper's calibration: "quickly identify the
/// minimum threshold with negligible impact on model accuracy". The
/// Hessian proxy (`drift_core::calibrate`) narrows the grid; here we
/// confirm each candidate on held-out calibration inputs and take the
/// smallest δ losing at most 1 pt of agreement versus INT8.
fn calibrated_delta(model: &dyn Model, calib: &[Tensor]) -> f64 {
    let int8 = classification_fidelity(model, calib, &StaticHighPolicy, 100.0)
        .expect("calibration evaluation runs");
    let grid = HessianCalibrator::new().candidates;
    for delta in grid.iter().copied() {
        let policy = DriftPolicy::new(delta).expect("delta is valid");
        let r = classification_fidelity(model, calib, &policy, 100.0)
            .expect("calibration evaluation runs");
        if int8.agreement - r.agreement <= 0.025 {
            return delta;
        }
    }
    *HessianCalibrator::new()
        .candidates
        .last()
        .expect("grid is non-empty")
}

fn main() {
    println!("== Figure 6: accuracy and 4-bit share ==\n");
    // (name, paper FP32 anchor, model, input generator)
    let entries: Vec<(&str, f64, Box<dyn Model>, Inputs)> = vec![
        (
            "ResNet18",
            69.8,
            Box::new(TinyCnn::resnet_like(11).expect("valid config")),
            Inputs::Images(ImageProfile::natural()),
        ),
        (
            "ResNet50",
            76.1,
            Box::new(TinyCnn::resnet_like(13).expect("valid config")),
            Inputs::Images(ImageProfile::natural()),
        ),
        (
            "ViT-B",
            77.9,
            Box::new(TinyTransformer::vit_like(17).expect("valid config")),
            Inputs::Tokens(TokenProfile::vit(), 64),
        ),
        (
            "DeiT-S",
            79.9,
            Box::new(TinyTransformer::vit_like(19).expect("valid config")),
            Inputs::Tokens(TokenProfile::vit(), 64),
        ),
        (
            "BERT-CoLA",
            69.1,
            Box::new(TinyTransformer::bert_like(23).expect("valid config")),
            Inputs::Tokens(TokenProfile::bert(), 64),
        ),
        (
            "BERT-SST2",
            92.3,
            Box::new(TinyTransformer::bert_like(29).expect("valid config")),
            Inputs::Tokens(TokenProfile::bert(), 64),
        ),
        (
            "BERT-MRPC",
            86.5,
            Box::new(TinyTransformer::bert_like(31).expect("valid config")),
            Inputs::Tokens(TokenProfile::bert(), 64),
        ),
    ];

    let mut rows = Vec::new();
    let mut drift_losses = Vec::new();
    let mut drift_fracs = Vec::new();
    for (name, anchor, model, inputs) in &entries {
        let eval_inputs = generate(inputs, 128, 1000);
        let calib_inputs = generate(inputs, 64, 5000);
        let delta = calibrated_delta(model.as_ref(), &calib_inputs);

        let int8 =
            classification_fidelity(model.as_ref(), &eval_inputs, &StaticHighPolicy, *anchor)
                .expect("evaluation runs");
        let drq = classification_fidelity(
            model.as_ref(),
            &eval_inputs,
            &DrqPolicy::new(1.0).expect("alpha is valid"),
            *anchor,
        )
        .expect("evaluation runs");
        let drift = classification_fidelity(
            model.as_ref(),
            &eval_inputs,
            &DriftPolicy::new(delta).expect("delta is valid"),
            *anchor,
        )
        .expect("evaluation runs");

        rows.push(vec![
            name.to_string(),
            format!("{anchor:.1}"),
            format!("{:.1}", int8.anchored_accuracy),
            format!(
                "{:.1} ({})",
                drq.anchored_accuracy,
                fmt_pct(drq.low_fraction)
            ),
            format!(
                "{:.1} ({})",
                drift.anchored_accuracy,
                fmt_pct(drift.low_fraction)
            ),
            format!("{delta:.3}"),
        ]);
        drift_losses.push(int8.anchored_accuracy - drift.anchored_accuracy);
        drift_fracs.push(drift.low_fraction);
    }
    println!(
        "{}",
        render_table(
            &["model", "fp32", "int8", "drq (4-bit)", "ours (4-bit)", "δ"],
            &rows
        )
    );
    let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    println!(
        "ours: mean 4-bit share {} at mean accuracy loss {:.2} pts vs INT8",
        fmt_pct(avg(&drift_fracs)),
        avg(&drift_losses)
    );
    println!("paper: >82.4% 4-bit at ~1 pt loss; DRQ drops >12 pts on ViT/BERT.");
}
