//! Table 1: the dynamic precision algorithm on three LLMs.
//!
//! Reports the perplexity proxy (anchored at the paper's FP32 rows) for
//! FP32 / INT8 / Ours on GPT2-XL, BLOOM-7B1, and OPT-6.7B over two
//! "datasets" (WikiText-103 and C4 stand-ins: independent synthetic
//! token streams), plus the 4-bit computation share of Ours.
//!
//! Paper reference points (perplexity, lower is better):
//!
//! | model | FP32 wiki/c4 | INT8 wiki/c4 | Ours wiki/c4 | 4-bit |
//! | GPT2-XL | 17.48/16.30 | 18.29/17.35 | 18.12/17.15 | 91.2%/93.2% |
//! | BLOOM-7B1 | 13.05/14.94 | 14.04/16.18 | 15.44/18.27 | 74.9%/73.8% |
//! | OPT-6.7B | 22.14/10.63 | 22.34/10.73 | 21.86/11.12 | 90.7%/86.7% |
//!
//! ```text
//! cargo run --release -p drift-bench --bin table1_llm_perplexity
//! ```

use drift_bench::render_table;
use drift_core::selector::DriftPolicy;
use drift_nn::datagen::TokenProfile;
use drift_nn::engine::TinyTransformer;
use drift_nn::eval::perplexity_proxy;
use drift_quant::policy::StaticHighPolicy;
use drift_tensor::Tensor;

fn inputs(seed: u64, n: usize) -> Vec<Tensor> {
    (0..n)
        .map(|i| {
            TokenProfile::llm()
                .generate(24, 64, seed + i as u64)
                .expect("valid dims")
        })
        .collect()
}

fn main() {
    println!("== Table 1: LLM perplexity proxy (lower is better) ==\n");
    // (name, seed, (fp32 wiki, fp32 c4), δ)
    let models = [
        ("GPT2-XL", 41u64, (17.48, 16.30), 0.10),
        ("BLOOM-7B1", 43, (13.05, 14.94), 0.70),
        ("OPT-6.7B", 47, (22.14, 10.63), 0.20),
    ];
    let mut rows = Vec::new();
    for (name, seed, (fp32_wiki, fp32_c4), delta) in models {
        let model = TinyTransformer::llm_like(seed, 48).expect("valid config");
        let wiki = inputs(seed * 100, 12);
        let c4 = inputs(seed * 100 + 50, 12);
        let policy = DriftPolicy::new(delta).expect("delta is valid");

        let mut cells = vec![name.to_string()];
        let mut fracs = Vec::new();
        for (anchor, data) in [(fp32_wiki, &wiki), (fp32_c4, &c4)] {
            let int8 = perplexity_proxy(&model, data, Some(&StaticHighPolicy), anchor)
                .expect("evaluation runs");
            let ours =
                perplexity_proxy(&model, data, Some(&policy), anchor).expect("evaluation runs");
            cells.push(format!("{anchor:.2}"));
            cells.push(format!("{:.2}", int8.perplexity));
            cells.push(format!("{:.2}", ours.perplexity));
            fracs.push(ours.low_fraction);
        }
        cells.push(format!("{:.1}%/{:.1}%", fracs[0] * 100.0, fracs[1] * 100.0));
        rows.push(cells);
    }
    println!(
        "{}",
        render_table(
            &[
                "model",
                "fp32 wiki",
                "int8 wiki",
                "ours wiki",
                "fp32 c4",
                "int8 c4",
                "ours c4",
                "4-bit w/c"
            ],
            &rows
        )
    );
    println!("shape to check: Ours stays within ~10% of INT8 perplexity while");
    println!("computing the vast majority of activations at 4 bits.");
}
