//! Figure 4: the architecture overview of Drift — component inventory,
//! configuration, and a functional demonstration of one layer flowing
//! through selector → index buffer → dispatcher → split fabric, with
//! the register-level fabric simulation cross-checked against the
//! exact integer GEMM.
//!
//! ```text
//! cargo run --release -p drift-bench --bin fig4_architecture
//! ```

use drift_accel::dram::DramConfig;
use drift_accel::energy::EnergyModel;
use drift_accel::gemm::{GemmShape, GemmWorkload};
use drift_accel::memory::BufferSet;
use drift_bench::render_table;
use drift_core::arch::controller::{PrecisionController, INDEX_ENTRY_BITS};
use drift_core::arch::dispatch::DispatchPlan;
use drift_core::arch::functional::FunctionalArray;
use drift_core::arch::paper_fabric;
use drift_core::selector::DriftPolicy;
use drift_quant::intgemm::{int_gemm, CodedMatrix};
use drift_quant::linear::QuantParams;
use drift_quant::policy::{PrecisionPolicy, TensorContext};
use drift_quant::precision::Precision;
use drift_tensor::stats::SummaryStats;
use drift_tensor::Tensor;

fn main() {
    println!("== Figure 4: Drift architecture overview ==\n");
    let fabric = paper_fabric();
    let buffers = BufferSet::drift_default();
    let dram = DramConfig::default();
    let energy = EnergyModel::default();
    let rows = vec![
        vec![
            "computing engine".to_string(),
            format!(
                "{}x{} BitGroups = {} units (4x4 BitBricks each, 1x4-bit)",
                fabric.rows,
                fabric.cols,
                fabric.units()
            ),
        ],
        vec![
            "dataflow".to_string(),
            "weight-stationary; bidirectional BG links; splits into <=4 arrays".to_string(),
        ],
        vec![
            "global buffer".to_string(),
            format!(
                "{} KiB (activations/outputs)",
                buffers.global.capacity_bytes() >> 10
            ),
        ],
        vec![
            "weight buffer".to_string(),
            format!("{} KiB", buffers.weight.capacity_bytes() >> 10),
        ],
        vec![
            "index buffer".to_string(),
            format!(
                "{} KiB ({} bits/entry: precision flag + hc code)",
                buffers.index.capacity_bytes() >> 10,
                INDEX_ENTRY_BITS
            ),
        ],
        vec![
            "controller".to_string(),
            "precision selector (2 comparisons/sub-tensor) + Eq. 8 scheduler".to_string(),
        ],
        vec![
            "DRAM".to_string(),
            format!(
                "{} ch x {} banks, {} B bursts, peak {:.0} B/cycle",
                dram.channels,
                dram.banks_per_channel,
                dram.burst_bytes,
                dram.peak_bytes_per_cycle()
            ),
        ],
        vec![
            "energy model".to_string(),
            format!(
                "BG {:.2} pJ/cycle, leak {:.2} pJ/unit/cycle",
                energy.e_bg_cycle_pj, energy.static_pj_per_unit_cycle
            ),
        ],
    ];
    println!("{}", render_table(&["component", "configuration"], &rows));

    // Area: the "no additional area overheads" claim, quantified.
    let area_model = drift_accel::area::AreaModel::default();
    let drift_area = drift_accel::area::drift_area(&area_model, fabric, &buffers);
    let bf_area = drift_accel::area::bitfusion_area(&area_model, fabric, &buffers);
    println!(
        "area (40 nm model): drift {:.2} mm2 vs bitfusion-class {:.2} mm2;",
        drift_area.total_mm2(),
        bf_area.total_mm2()
    );
    println!(
        "dynamic-precision support (links + index + controller) = {:.1}% of the die\n",
        drift_area.dynamic_precision_overhead() * 100.0
    );

    // Functional walk-through: one small GEMM through the whole control
    // path.
    println!("== functional walk-through (selector -> index -> dispatch -> fabric) ==\n");
    let acts = Tensor::from_fn(vec![8, 12], |i| {
        let token = i / 12;
        0.02 * (1 + token * token) as f32 * (((i * 29) % 13) as f32 - 6.0) / 6.0
    })
    .expect("valid dims");
    let weights =
        Tensor::from_fn(vec![12, 6], |i| ((i * 17 % 11) as f32 - 5.0) * 0.07).expect("valid dims");

    let policy = DriftPolicy::new(0.3).expect("valid delta");
    let ca = CodedMatrix::encode_rows(&acts, Precision::INT8, &policy).expect("encodes");
    let cb = CodedMatrix::encode_cols(&weights, Precision::INT8, &policy).expect("encodes");

    // Index buffer filled by the selector.
    let mut controller = PrecisionController::drift_default();
    let ctx = TensorContext {
        global: SummaryStats::from_slice(acts.as_slice()),
        params: QuantParams::from_abs_max(
            SummaryStats::from_slice(acts.as_slice()).abs_max(),
            Precision::INT8,
        ),
    };
    let mut act_high = Vec::new();
    for r in 0..8 {
        let row = &acts.as_slice()[r * 12..(r + 1) * 12];
        let d = policy.decide(&ctx, &SummaryStats::from_slice(row));
        act_high.push(!d.is_low());
        controller.record(r, d).expect("index buffer has room");
    }
    println!(
        "selector: {} comparisons, {} index bits used",
        controller.comparisons(),
        controller.used_bits()
    );

    // Dispatcher consults the index buffer.
    let shape = GemmShape::new(8, 12, 6).expect("valid shape");
    let weight_high: Vec<bool> = (0..6)
        .map(|c| cb.precisions()[c] == Precision::INT8)
        .collect();
    let workload =
        GemmWorkload::new("walkthrough", shape, act_high, weight_high).expect("valid maps");
    let plan = DispatchPlan::build(&workload, Some(&controller)).expect("plan builds");
    println!(
        "dispatcher: {} lookups; streams h/l rows = {}/{}, h/l cols = {}/{}",
        plan.lookups,
        plan.high_rows.len(),
        plan.low_rows.len(),
        plan.high_cols.len(),
        plan.low_cols.len()
    );

    // Register-level fabric vs exact integer GEMM.
    let arr = FunctionalArray::new(4, 4).expect("valid extents");
    let (raw, cycles) = arr
        .run_gemm(ca.codes(), cb.codes(), 8, 12, 6)
        .expect("operands match");
    let reference = int_gemm(&ca, &cb).expect("layouts match");
    let mut max_err = 0.0f64;
    for i in 0..8 {
        for j in 0..6 {
            let v = raw[i * 6 + j] as f64 * ca.scales()[i] * cb.scales()[j];
            max_err = max_err.max((v - f64::from(reference.as_slice()[i * 6 + j])).abs());
        }
    }
    println!(
        "fabric: register-level GEMM in {cycles} cycles; max deviation from the \
         exact integer path = {max_err:.2e}"
    );
    println!("\n(the paper's Fig. 4 is the block diagram; this binary prints the");
    println!("same inventory and proves the blocks compose functionally.)");
}
