//! Criterion: the mini-DRAM simulator (sequential streams and
//! scattered access patterns).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use drift_accel::dram::{DramConfig, DramSim};

fn bench_dram(c: &mut Criterion) {
    let mut group = c.benchmark_group("dram");
    group.throughput(Throughput::Bytes(1 << 20));
    group.bench_function("stream_1mib", |b| {
        b.iter_batched(
            || DramSim::new(DramConfig::default()).expect("valid config"),
            |mut dram| dram.stream(0, 1 << 20, false),
            BatchSize::SmallInput,
        )
    });
    group.finish();

    c.bench_function("dram/scattered_256_rows", |b| {
        let cfg = DramConfig::default();
        let stride = cfg.row_bytes * cfg.channels as u64 * cfg.banks_per_channel as u64;
        b.iter_batched(
            || DramSim::new(cfg).expect("valid config"),
            |mut dram| {
                let mut total = 0u64;
                for i in 0..256 {
                    total += dram.stream(i * stride, 64, false);
                }
                total
            },
            BatchSize::SmallInput,
        )
    });
}

criterion_group!(benches, bench_dram);
criterion_main!(benches);
