//! Criterion: precision-conversion kernel throughput (the hp→lp
//! re-encode of Eq. 2 applied to sub-tensor code streams).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use drift_quant::convert::ConversionChoice;
use drift_quant::linear::quantize_slice;
use drift_quant::precision::Precision;

fn bench_conversion(c: &mut Criterion) {
    let data: Vec<f32> = (0..4096)
        .map(|i| ((i * 37) % 255) as f32 / 127.0 - 1.0)
        .collect();
    let (codes, _) = quantize_slice(&data, Precision::INT8).expect("quantization runs");

    let mut group = c.benchmark_group("conversion");
    group.throughput(Throughput::Elements(codes.len() as u64));
    for choice in ConversionChoice::enumerate(Precision::INT8, Precision::INT4) {
        group.bench_with_input(
            BenchmarkId::new("apply_4096", format!("hc{}lc{}", choice.hc(), choice.lc())),
            &choice,
            |b, ch| b.iter(|| ch.apply_slice(&codes)),
        );
    }
    group.finish();

    c.bench_function("quantize/int8_4096", |b| {
        b.iter(|| quantize_slice(&data, Precision::INT8))
    });
}

criterion_group!(benches, bench_conversion);
criterion_main!(benches);
