//! Criterion: systolic-array timing model throughput — the analytical
//! model of Eq. 7 and the stream simulator for stall modelling.

use criterion::{criterion_group, criterion_main, Criterion};
use drift_accel::gemm::GemmShape;
use drift_accel::systolic::{analytical_cycles, pass_count, simulate_stream, ArrayGeometry};
use drift_quant::precision::Precision;

fn bench_systolic(c: &mut Criterion) {
    let geo = ArrayGeometry::new(24, 33).expect("valid geometry");
    let shape = GemmShape::new(3136, 576, 64).expect("valid shape");

    c.bench_function("systolic/analytical_eq7", |b| {
        b.iter(|| analytical_cycles(shape, Precision::INT8, Precision::INT8, geo))
    });

    let occupancies: Vec<u32> = (0..3136).map(|i| if i % 7 == 0 { 2 } else { 1 }).collect();
    let passes = pass_count(shape, Precision::INT4, Precision::INT8, geo);
    c.bench_function("systolic/stream_3136_elements", |b| {
        b.iter(|| simulate_stream(&occupancies, geo, passes))
    });
}

criterion_group!(benches, bench_systolic);
criterion_main!(benches);
