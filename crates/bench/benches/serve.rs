//! Criterion: the batch-serving runtime. Measures end-to-end job
//! throughput of `drift_serve::serve` across worker counts (pool
//! scaling) and the schedule cache's lookup-vs-solve gap.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use drift_core::schedule::ScheduleKey;
use drift_serve::{serve, synthetic_jobs, ScheduleCache, ServeConfig};

const JOBS: usize = 64;

fn bench_serve_workers(c: &mut Criterion) {
    let mut group = c.benchmark_group("serve");
    group.throughput(Throughput::Elements(JOBS as u64));
    for workers in [1usize, 2, 4, 8] {
        group.bench_with_input(BenchmarkId::new("workers", workers), &workers, |b, &w| {
            b.iter(|| {
                let outcome = serve(synthetic_jobs(JOBS, 4, 42), &ServeConfig::with_workers(w));
                assert_eq!(outcome.results.len(), JOBS);
                outcome
            })
        });
    }
    group.finish();
}

fn bench_schedule_cache(c: &mut Criterion) {
    let key = ScheduleKey::for_workload(
        &drift_accel::gemm::GemmWorkload::uniform(
            "bench",
            drift_accel::gemm::GemmShape::new(512, 768, 768).expect("valid shape"),
            false,
        ),
        drift_core::arch::paper_fabric(),
    );
    let mut group = c.benchmark_group("schedule_cache");
    group.bench_function("solve_uncached", |b| {
        b.iter(|| key.solve().expect("feasible"))
    });
    let cache = ScheduleCache::new(64, 4);
    cache.get_or_solve(key).expect("feasible");
    group.bench_function("cache_hit", |b| {
        b.iter(|| cache.get_or_solve(key).expect("feasible"))
    });
    group.finish();
}

criterion_group!(benches, bench_serve_workers, bench_schedule_cache);
criterion_main!(benches);
