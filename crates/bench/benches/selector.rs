//! Criterion: throughput of the Drift precision selector — the per-
//! sub-tensor decision the hardware controller evaluates online. The
//! paper claims the algorithm adds no computational overhead; this
//! bench quantifies the software-model cost per decision.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use drift_core::selector::DriftPolicy;
use drift_nn::datagen::TokenProfile;
use drift_quant::linear::QuantParams;
use drift_quant::policy::{PrecisionPolicy, TensorContext};
use drift_quant::precision::Precision;
use drift_tensor::rng::seeded;
use drift_tensor::stats::SummaryStats;

fn bench_selector(c: &mut Criterion) {
    let policy = DriftPolicy::new(0.3).expect("delta is valid");
    let rows = TokenProfile::bert().row_stats(1024, 768, 7);
    let mut global = SummaryStats::new();
    for r in &rows {
        global.merge(r);
    }
    let ctx = TensorContext {
        global,
        params: QuantParams::from_abs_max(global.abs_max(), Precision::INT8),
    };

    c.bench_function("selector/decide_1024_subtensors", |b| {
        b.iter(|| {
            rows.iter()
                .filter(|s| policy.decide(&ctx, s).is_low())
                .count()
        })
    });

    c.bench_function("selector/stats_one_token_768", |b| {
        let mut rng = seeded(3);
        let lap = drift_tensor::dist::Laplace::new(0.0, 0.1).expect("valid scale");
        use drift_tensor::dist::Sampler;
        b.iter_batched(
            || lap.sample_f32(&mut rng, 768),
            SummaryStats::from_slice,
            BatchSize::SmallInput,
        )
    });
}

criterion_group!(benches, bench_selector);
criterion_main!(benches);
