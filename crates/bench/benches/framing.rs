//! Criterion: the wire protocol's parse cost, batch vs singleton.
//! Parsing one `{"id":N,"batch":[...]}` line amortises the per-line
//! JSON envelope (id, deadline, trace fields) across every item, so
//! jobs-per-second through `parse_request` should rise with batch
//! size — the protocol-side half of the batching speedup measured in
//! EXPERIMENTS.md (the other half is per-batch schedule amortization
//! in the gateway runtime).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use drift_gateway::protocol::{batch_request_line, parse_request, request_line};
use drift_serve::synthetic_jobs;

const JOBS: usize = 128;

fn bench_parse(c: &mut Criterion) {
    let jobs = synthetic_jobs(JOBS, 4, 42);
    let singleton_lines: Vec<String> = jobs.iter().map(|j| request_line(j, Some(50))).collect();

    let mut group = c.benchmark_group("framing_parse");
    group.throughput(Throughput::Elements(JOBS as u64));
    group.bench_function("singleton", |b| {
        b.iter(|| {
            for line in &singleton_lines {
                parse_request(line).expect("loadgen-shaped line parses");
            }
        })
    });
    for batch in [8usize, 32, 128] {
        let batch_lines: Vec<String> = jobs
            .chunks(batch)
            .map(|chunk| batch_request_line(chunk[0].id, chunk, Some(50)))
            .collect();
        group.bench_with_input(
            BenchmarkId::new("batch", batch),
            &batch_lines,
            |b, lines| {
                b.iter(|| {
                    for line in lines {
                        parse_request(line).expect("batch line parses");
                    }
                })
            },
        );
    }
    group.finish();
}

fn bench_render(c: &mut Criterion) {
    let jobs = synthetic_jobs(JOBS, 4, 42);
    let mut group = c.benchmark_group("framing_render");
    group.throughput(Throughput::Elements(JOBS as u64));
    group.bench_function("singleton", |b| {
        b.iter(|| {
            jobs.iter()
                .map(|j| request_line(j, Some(50)))
                .collect::<Vec<_>>()
        })
    });
    for batch in [8usize, 32, 128] {
        group.bench_with_input(BenchmarkId::new("batch", batch), &batch, |b, &size| {
            b.iter(|| {
                jobs.chunks(size)
                    .map(|chunk| batch_request_line(chunk[0].id, chunk, Some(50)))
                    .collect::<Vec<_>>()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_parse, bench_render);
criterion_main!(benches);
