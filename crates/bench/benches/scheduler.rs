//! Criterion: the balanced online scheduler (Eq. 8). The controller
//! solves this between layers, so it must be cheap relative to a
//! layer's execution.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use drift_accel::gemm::{GemmShape, GemmWorkload};
use drift_core::arch::paper_fabric;
use drift_core::schedule::{balanced_schedule, equal_schedule};

fn quadrants(fa: f64, fw: f64) -> [drift_accel::gemm::PrecisionQuadrant; 4] {
    let shape = GemmShape::new(512, 768, 768).expect("valid shape");
    let ah = (shape.m as f64 * fa) as usize;
    let wh = (shape.n as f64 * fw) as usize;
    GemmWorkload::new(
        "bench",
        shape,
        (0..shape.m).map(|i| i < ah).collect(),
        (0..shape.n).map(|j| j < wh).collect(),
    )
    .expect("lengths match")
    .quadrants()
}

fn bench_scheduler(c: &mut Criterion) {
    let fabric = paper_fabric();
    let mut group = c.benchmark_group("scheduler");
    for (fa, fw) in [(0.5, 0.5), (0.15, 0.15), (0.9, 0.1)] {
        let quads = quadrants(fa, fw);
        group.bench_with_input(
            BenchmarkId::new("balanced", format!("a{fa}w{fw}")),
            &quads,
            |b, q| b.iter(|| balanced_schedule(fabric, q).expect("feasible")),
        );
    }
    let quads = quadrants(0.5, 0.5);
    group.bench_function("equal_static", |b| {
        b.iter(|| equal_schedule(fabric, &quads).expect("feasible"))
    });
    group.finish();
}

criterion_group!(benches, bench_scheduler);
criterion_main!(benches);
