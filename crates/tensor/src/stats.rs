//! Streaming statistics and Laplace / exponential maximum-likelihood
//! estimation.
//!
//! Drift's dynamic precision selection (paper Section 3.3) needs exactly
//! two statistics per sub-tensor: `max(|Y|)` (for the representation-range
//! test, Eq. 5) and `avg(|Y|)` (the MLE of the Laplace scale `b`, which
//! gives `var(Y) = 2 b²` for the representation-density test, Eq. 6).
//! [`SummaryStats`] accumulates those — plus exact mean/variance for
//! verification — in one streaming pass, matching what the accelerator's
//! pooling unit computes in hardware.

use serde::{Deserialize, Serialize};

/// One-pass summary statistics over a stream of `f32` values.
///
/// Uses Welford's algorithm for numerically stable variance.
///
/// # Example
///
/// ```rust
/// use drift_tensor::stats::SummaryStats;
///
/// let stats = SummaryStats::from_slice([1.0f32, -2.0, 3.0, -4.0]);
/// assert_eq!(stats.abs_max(), 4.0);
/// assert_eq!(stats.mean_abs(), 2.5);
/// // Laplace MLE: b = avg(|Y|).
/// assert_eq!(stats.laplace_scale(), 2.5);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SummaryStats {
    count: u64,
    min: f64,
    max: f64,
    abs_max: f64,
    sum: f64,
    sum_abs: f64,
    mean: f64,
    m2: f64,
}

impl SummaryStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        SummaryStats {
            count: 0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            abs_max: 0.0,
            sum: 0.0,
            sum_abs: 0.0,
            mean: 0.0,
            m2: 0.0,
        }
    }

    /// Builds statistics from anything that can be viewed as a `[f32]`
    /// slice.
    pub fn from_slice(values: impl AsRef<[f32]>) -> Self {
        let mut stats = SummaryStats::new();
        for &v in values.as_ref() {
            stats.push(v);
        }
        stats
    }

    /// Feeds one value into the accumulator.
    pub fn push(&mut self, value: f32) {
        let v = f64::from(value);
        self.count += 1;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
        self.abs_max = self.abs_max.max(v.abs());
        self.sum += v;
        self.sum_abs += v.abs();
        // Welford update.
        let delta = v - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (v - self.mean);
    }

    /// Merges another accumulator into this one (parallel reduction).
    pub fn merge(&mut self, other: &SummaryStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let total = self.count + other.count;
        let delta = other.mean - self.mean;
        self.m2 +=
            other.m2 + delta * delta * (self.count as f64 * other.count as f64) / total as f64;
        self.mean =
            (self.mean * self.count as f64 + other.mean * other.count as f64) / total as f64;
        self.count = total;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        self.abs_max = self.abs_max.max(other.abs_max);
        self.sum += other.sum;
        self.sum_abs += other.sum_abs;
    }

    /// Number of values observed.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Smallest observed value (`+inf` when empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observed value (`-inf` when empty).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// `max(|Y|)`: the statistic driving Drift's representation-range test
    /// (paper Eq. 5). Zero when empty.
    pub fn abs_max(&self) -> f64 {
        self.abs_max
    }

    /// Arithmetic mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// `avg(|Y|)`: the statistic driving Drift's representation-density
    /// test (paper Eq. 6). Zero when empty.
    pub fn mean_abs(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_abs / self.count as f64
        }
    }

    /// Population variance (0 when fewer than two values).
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Maximum-likelihood Laplace scale `b = avg(|Y - μ|)`, evaluated under
    /// the paper's zero-mean assumption as `avg(|Y|)`.
    pub fn laplace_scale(&self) -> f64 {
        self.mean_abs()
    }

    /// The variance implied by the zero-mean Laplace model:
    /// `var(Y) = 2 · avg(|Y|)²` (paper Section 3.3).
    pub fn laplace_variance(&self) -> f64 {
        let b = self.laplace_scale();
        2.0 * b * b
    }

    /// Maximum-likelihood rate `λ = 1 / avg(|Y|)` of the exponential
    /// distribution that `|Y|` follows when `Y` is zero-mean Laplace
    /// (paper Eq. 4). Returns `+inf` for all-zero data.
    pub fn exponential_rate(&self) -> f64 {
        1.0 / self.mean_abs()
    }

    /// Relative gap between the empirical variance and the Laplace-implied
    /// variance; small values indicate a good Laplace fit.
    pub fn laplace_fit_gap(&self) -> f64 {
        let emp = self.variance();
        let model = self.laplace_variance();
        if emp == 0.0 && model == 0.0 {
            0.0
        } else {
            (emp - model).abs() / emp.max(model)
        }
    }
}

impl Default for SummaryStats {
    fn default() -> Self {
        SummaryStats::new()
    }
}

impl FromIterator<f32> for SummaryStats {
    fn from_iter<I: IntoIterator<Item = f32>>(iter: I) -> Self {
        let mut stats = SummaryStats::new();
        for v in iter {
            stats.push(v);
        }
        stats
    }
}

impl Extend<f32> for SummaryStats {
    fn extend<I: IntoIterator<Item = f32>>(&mut self, iter: I) {
        for v in iter {
            self.push(v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_stats_are_benign() {
        let s = SummaryStats::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.mean_abs(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.abs_max(), 0.0);
    }

    #[test]
    fn basic_moments() {
        let s = SummaryStats::from_slice([2.0f32, -2.0, 4.0, -4.0]);
        assert_eq!(s.count(), 4);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.mean_abs(), 3.0);
        assert_eq!(s.abs_max(), 4.0);
        assert_eq!(s.min(), -4.0);
        assert_eq!(s.max(), 4.0);
        // Population variance of {2,-2,4,-4} is (4+4+16+16)/4 = 10.
        assert!((s.variance() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn welford_matches_two_pass() {
        let data: Vec<f32> = (0..1000).map(|i| ((i * 37) % 101) as f32 - 50.0).collect();
        let s = SummaryStats::from_slice(&data);
        let mean = data.iter().map(|&v| f64::from(v)).sum::<f64>() / data.len() as f64;
        let var = data
            .iter()
            .map(|&v| (f64::from(v) - mean).powi(2))
            .sum::<f64>()
            / data.len() as f64;
        assert!((s.mean() - mean).abs() < 1e-9);
        assert!((s.variance() - var).abs() < 1e-6);
    }

    #[test]
    fn merge_equals_sequential() {
        let a: Vec<f32> = (0..100).map(|i| (i as f32 - 50.0) * 0.1).collect();
        let b: Vec<f32> = (0..57).map(|i| (i as f32) * 0.3 - 2.0).collect();
        let mut left = SummaryStats::from_slice(&a);
        let right = SummaryStats::from_slice(&b);
        left.merge(&right);
        let mut all = a.clone();
        all.extend_from_slice(&b);
        let combined = SummaryStats::from_slice(&all);
        assert_eq!(left.count(), combined.count());
        assert!((left.mean() - combined.mean()).abs() < 1e-9);
        assert!((left.variance() - combined.variance()).abs() < 1e-9);
        assert_eq!(left.abs_max(), combined.abs_max());
    }

    #[test]
    fn merge_with_empty() {
        let mut s = SummaryStats::from_slice([1.0f32, 2.0]);
        let before = s;
        s.merge(&SummaryStats::new());
        assert_eq!(s, before);
        let mut e = SummaryStats::new();
        e.merge(&before);
        assert_eq!(e, before);
    }

    #[test]
    fn laplace_relations() {
        let s = SummaryStats::from_slice([1.0f32, -1.0, 1.0, -1.0]);
        assert_eq!(s.laplace_scale(), 1.0);
        assert_eq!(s.laplace_variance(), 2.0);
        assert_eq!(s.exponential_rate(), 1.0);
    }

    #[test]
    fn fit_gap_zero_for_ideal() {
        // Data engineered so empirical var equals 2*mean_abs^2:
        // {b, -b, b*sqrt(3), -b*sqrt(3)} has mean_abs = b(1+sqrt3)/2,
        // so instead just check the gap is within [0, 1].
        let s = SummaryStats::from_slice([0.5f32, -0.25, 1.5, -0.75, 0.1]);
        let gap = s.laplace_fit_gap();
        assert!((0.0..=1.0).contains(&gap));
    }

    #[test]
    fn from_iterator_and_extend() {
        let s: SummaryStats = vec![1.0f32, 2.0, 3.0].into_iter().collect();
        assert_eq!(s.count(), 3);
        let mut t = SummaryStats::new();
        t.extend(vec![1.0f32, 2.0, 3.0]);
        assert_eq!(t.mean(), s.mean());
    }
}
