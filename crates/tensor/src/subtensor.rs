//! Sub-tensor partitioning schemes.
//!
//! Drift's Section 2.1 defines a *sub-tensor* as any subset of a tensor's
//! elements: a patch of a ViT activation, a token of a BERT activation, a
//! spatial region of a CNN feature map (the granularity DRQ uses), or a
//! weight channel. The dynamic precision algorithm makes one decision per
//! sub-tensor, so the partitioning scheme controls the precision
//! granularity and the bookkeeping cost.
//!
//! A [`SubTensorView`] is a list of flat, half-open element ranges into the
//! parent tensor. Token rows are a single contiguous range; image patches
//! and 2-D regions are a run of strided row segments.

use crate::shape::Shape;
use crate::{Result, TensorError};
use serde::{Deserialize, Serialize};
use std::ops::Range;

/// A view over a subset of a tensor's elements, as flat row-major ranges.
///
/// Views are produced by [`SubTensorScheme::partition`]; all ranges are
/// disjoint and, taken across all views of a partition, cover the tensor
/// exactly once.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SubTensorView {
    id: usize,
    ranges: Vec<Range<usize>>,
    len: usize,
}

impl SubTensorView {
    /// Creates a view from flat element ranges.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::PartitionMismatch`] when `ranges` is empty
    /// or contains an empty range.
    pub fn new(id: usize, ranges: Vec<Range<usize>>) -> Result<Self> {
        if ranges.is_empty() || ranges.iter().any(|r| r.is_empty()) {
            return Err(TensorError::PartitionMismatch {
                detail: format!("view {id} has empty ranges"),
            });
        }
        let len = ranges.iter().map(Range::len).sum();
        Ok(SubTensorView { id, ranges, len })
    }

    /// Stable identifier of this view within its partition (0-based).
    pub fn id(&self) -> usize {
        self.id
    }

    /// The flat element ranges making up this view.
    pub fn ranges(&self) -> &[Range<usize>] {
        &self.ranges
    }

    /// Number of elements selected by the view.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the view selects no elements (never true for constructed
    /// views).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Iterator over every flat element index in the view, in gather
    /// order.
    pub fn indices(&self) -> impl Iterator<Item = usize> + '_ {
        self.ranges.iter().flat_map(|r| r.clone())
    }
}

/// How a tensor is carved into sub-tensors.
///
/// # Example
///
/// ```rust
/// use drift_tensor::subtensor::SubTensorScheme;
/// use drift_tensor::Shape;
///
/// # fn main() -> Result<(), drift_tensor::TensorError> {
/// // A BERT-style activation: 128 tokens x 768 hidden.
/// let shape = Shape::matrix(128, 768)?;
/// let views = SubTensorScheme::token(768).partition(&shape)?;
/// assert_eq!(views.len(), 128);
/// assert!(views.iter().all(|v| v.len() == 768));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum SubTensorScheme {
    /// The whole tensor is one sub-tensor (per-tensor quantization).
    PerTensor,
    /// Fixed-size runs of `len` consecutive elements (token granularity
    /// when `len` equals the hidden size of a `[tokens, hidden]` tensor).
    Token {
        /// Elements per token.
        len: usize,
    },
    /// 2-D tiles of a `[rows, cols]` (or flattened-leading-dims) tensor.
    /// This is the granularity DRQ uses for feature-map regions and ViT
    /// uses for patches.
    Region {
        /// Tile height in rows.
        tile_rows: usize,
        /// Tile width in columns.
        tile_cols: usize,
    },
    /// One sub-tensor per leading-axis slice (e.g. per output channel of
    /// a weight tensor).
    Channel,
    /// Every element is its own sub-tensor (Precision Gating's per-value
    /// granularity). Exists for ablations; the bookkeeping cost is why
    /// the paper rejects it.
    PerValue,
}

impl SubTensorScheme {
    /// Token granularity: runs of `len` consecutive elements.
    pub fn token(len: usize) -> Self {
        SubTensorScheme::Token { len }
    }

    /// Region granularity: `tile_rows` × `tile_cols` tiles of a 2-D view.
    pub fn region(tile_rows: usize, tile_cols: usize) -> Self {
        SubTensorScheme::Region {
            tile_rows,
            tile_cols,
        }
    }

    /// Splits `shape` into sub-tensor views.
    ///
    /// For [`SubTensorScheme::Region`], tensors of rank > 2 are viewed as
    /// `[volume / last_dim, last_dim]`; partial edge tiles are emitted
    /// when the tile size does not divide the extent, so the partition is
    /// always exhaustive.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::PartitionMismatch`] when a token length does
    /// not divide the tensor volume or a tile extent is zero.
    // A view's range list legitimately holds a single `Range` for the
    // contiguous schemes; the vec is a list of ranges, not a fill expr.
    #[allow(clippy::single_range_in_vec_init)]
    pub fn partition(&self, shape: &Shape) -> Result<Vec<SubTensorView>> {
        let volume = shape.volume();
        match *self {
            SubTensorScheme::PerTensor => Ok(vec![SubTensorView::new(0, vec![0..volume])?]),
            SubTensorScheme::Token { len } => {
                if len == 0 || !volume.is_multiple_of(len) {
                    return Err(TensorError::PartitionMismatch {
                        detail: format!(
                            "token length {len} does not divide tensor volume {volume}"
                        ),
                    });
                }
                (0..volume / len)
                    .map(|i| SubTensorView::new(i, vec![i * len..(i + 1) * len]))
                    .collect()
            }
            SubTensorScheme::Region {
                tile_rows,
                tile_cols,
            } => {
                if tile_rows == 0 || tile_cols == 0 {
                    return Err(TensorError::PartitionMismatch {
                        detail: "region tiles must be non-empty".to_string(),
                    });
                }
                let cols = *shape.dims().last().expect("shapes are non-empty");
                let rows = volume / cols;
                let mut views = Vec::new();
                let mut id = 0usize;
                let mut r0 = 0usize;
                while r0 < rows {
                    let r1 = (r0 + tile_rows).min(rows);
                    let mut c0 = 0usize;
                    while c0 < cols {
                        let c1 = (c0 + tile_cols).min(cols);
                        let ranges = (r0..r1)
                            .map(|r| r * cols + c0..r * cols + c1)
                            .collect::<Vec<_>>();
                        views.push(SubTensorView::new(id, ranges)?);
                        id += 1;
                        c0 = c1;
                    }
                    r0 = r1;
                }
                Ok(views)
            }
            SubTensorScheme::Channel => {
                let leading = shape.dim(0)?;
                let per = volume / leading;
                (0..leading)
                    .map(|i| SubTensorView::new(i, vec![i * per..(i + 1) * per]))
                    .collect()
            }
            SubTensorScheme::PerValue => (0..volume)
                .map(|i| SubTensorView::new(i, vec![i..i + 1]))
                .collect(),
        }
    }

    /// The number of sub-tensors this scheme yields for `shape`, without
    /// materialising the views.
    ///
    /// # Errors
    ///
    /// Same conditions as [`SubTensorScheme::partition`].
    pub fn count(&self, shape: &Shape) -> Result<usize> {
        let volume = shape.volume();
        match *self {
            SubTensorScheme::PerTensor => Ok(1),
            SubTensorScheme::Token { len } => {
                if len == 0 || !volume.is_multiple_of(len) {
                    return Err(TensorError::PartitionMismatch {
                        detail: format!(
                            "token length {len} does not divide tensor volume {volume}"
                        ),
                    });
                }
                Ok(volume / len)
            }
            SubTensorScheme::Region {
                tile_rows,
                tile_cols,
            } => {
                if tile_rows == 0 || tile_cols == 0 {
                    return Err(TensorError::PartitionMismatch {
                        detail: "region tiles must be non-empty".to_string(),
                    });
                }
                let cols = *shape.dims().last().expect("shapes are non-empty");
                let rows = volume / cols;
                Ok(rows.div_ceil(tile_rows) * cols.div_ceil(tile_cols))
            }
            SubTensorScheme::Channel => shape.dim(0),
            SubTensorScheme::PerValue => Ok(volume),
        }
    }
}

#[cfg(test)]
#[allow(clippy::single_range_in_vec_init)] // range lists, not fill exprs
mod tests {
    use super::*;

    fn covers_exactly(views: &[SubTensorView], volume: usize) {
        let mut seen = vec![false; volume];
        for v in views {
            for i in v.indices() {
                assert!(!seen[i], "element {i} covered twice");
                seen[i] = true;
            }
        }
        assert!(seen.iter().all(|&s| s), "partition does not cover tensor");
    }

    #[test]
    fn per_tensor_is_single_view() {
        let s = Shape::new(vec![4, 4]).unwrap();
        let views = SubTensorScheme::PerTensor.partition(&s).unwrap();
        assert_eq!(views.len(), 1);
        assert_eq!(views[0].len(), 16);
        covers_exactly(&views, 16);
    }

    #[test]
    fn token_partition_covers() {
        let s = Shape::new(vec![6, 8]).unwrap();
        let views = SubTensorScheme::token(8).partition(&s).unwrap();
        assert_eq!(views.len(), 6);
        covers_exactly(&views, 48);
        assert_eq!(SubTensorScheme::token(8).count(&s).unwrap(), 6);
    }

    #[test]
    fn token_rejects_nondivisor() {
        let s = Shape::new(vec![6, 8]).unwrap();
        assert!(SubTensorScheme::token(7).partition(&s).is_err());
        assert!(SubTensorScheme::token(0).partition(&s).is_err());
    }

    #[test]
    fn region_partition_covers_even() {
        let s = Shape::new(vec![8, 8]).unwrap();
        let views = SubTensorScheme::region(4, 4).partition(&s).unwrap();
        assert_eq!(views.len(), 4);
        assert!(views.iter().all(|v| v.len() == 16));
        covers_exactly(&views, 64);
    }

    #[test]
    fn region_partition_covers_ragged() {
        let s = Shape::new(vec![5, 7]).unwrap();
        let views = SubTensorScheme::region(2, 3).partition(&s).unwrap();
        covers_exactly(&views, 35);
        assert_eq!(
            views.len(),
            SubTensorScheme::region(2, 3).count(&s).unwrap()
        );
    }

    #[test]
    fn region_flattens_higher_ranks() {
        // [2, 4, 6] is treated as [8, 6].
        let s = Shape::new(vec![2, 4, 6]).unwrap();
        let views = SubTensorScheme::region(4, 3).partition(&s).unwrap();
        covers_exactly(&views, 48);
        assert_eq!(views.len(), 4);
    }

    #[test]
    fn channel_partition() {
        let s = Shape::new(vec![3, 5]).unwrap();
        let views = SubTensorScheme::Channel.partition(&s).unwrap();
        assert_eq!(views.len(), 3);
        assert!(views.iter().all(|v| v.len() == 5));
        covers_exactly(&views, 15);
    }

    #[test]
    fn per_value_partition() {
        let s = Shape::new(vec![2, 2]).unwrap();
        let views = SubTensorScheme::PerValue.partition(&s).unwrap();
        assert_eq!(views.len(), 4);
        covers_exactly(&views, 4);
    }

    #[test]
    fn view_ids_are_sequential() {
        let s = Shape::new(vec![4, 4]).unwrap();
        let views = SubTensorScheme::region(2, 2).partition(&s).unwrap();
        for (i, v) in views.iter().enumerate() {
            assert_eq!(v.id(), i);
        }
    }

    #[test]
    fn view_rejects_empty_ranges() {
        assert!(SubTensorView::new(0, vec![]).is_err());
        assert!(SubTensorView::new(0, vec![3..3]).is_err());
    }
}
