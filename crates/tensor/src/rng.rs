//! Deterministic random-number helpers.
//!
//! Every synthetic workload in the reproduction is seeded explicitly so
//! that each figure/table binary is reproducible bit-for-bit. We use
//! ChaCha8 throughout: fast, portable, and stable across platforms
//! (unlike `rand::thread_rng`).

use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// The RNG type used throughout the workspace.
pub type DriftRng = ChaCha8Rng;

/// Creates a deterministic RNG from a 64-bit seed.
///
/// # Example
///
/// ```rust
/// use rand::Rng;
///
/// let mut a = drift_tensor::rng::seeded(42);
/// let mut b = drift_tensor::rng::seeded(42);
/// assert_eq!(a.gen::<u64>(), b.gen::<u64>());
/// ```
pub fn seeded(seed: u64) -> DriftRng {
    ChaCha8Rng::seed_from_u64(seed)
}

/// Derives a child seed from a parent seed and a stream label, so that
/// independent workload components (weights vs. activations vs. noise)
/// never share a stream even when built from one experiment seed.
pub fn derive_seed(parent: u64, label: &str) -> u64 {
    // FNV-1a over the label, folded into the parent seed.
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in label.as_bytes() {
        hash ^= u64::from(*byte);
        hash = hash.wrapping_mul(0x1000_0000_01b3);
    }
    parent.rotate_left(17) ^ hash
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn seeded_is_deterministic() {
        let mut a = seeded(7);
        let mut b = seeded(7);
        for _ in 0..16 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = seeded(1);
        let mut b = seeded(2);
        assert_ne!(a.gen::<u64>(), b.gen::<u64>());
    }

    #[test]
    fn derive_seed_depends_on_label() {
        assert_ne!(derive_seed(9, "weights"), derive_seed(9, "acts"));
        assert_eq!(derive_seed(9, "weights"), derive_seed(9, "weights"));
        assert_ne!(derive_seed(9, "weights"), derive_seed(10, "weights"));
    }
}
