//! A small dense row-major `f32` tensor.
//!
//! [`Tensor`] is deliberately minimal: the Drift pipeline only needs dense
//! storage, elementwise maps, sub-tensor gather/scatter, and a handful of
//! reductions. Quantized integer payloads are represented by
//! `drift-quant`'s dedicated types rather than by a generic element
//! parameter here.

use crate::shape::Shape;
use crate::subtensor::SubTensorView;
use crate::{Result, TensorError};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A dense row-major tensor of `f32` values.
///
/// # Example
///
/// ```rust
/// use drift_tensor::Tensor;
///
/// # fn main() -> Result<(), drift_tensor::TensorError> {
/// let t = Tensor::from_vec(vec![2, 3], vec![1.0, -2.0, 3.0, -4.0, 5.0, -6.0])?;
/// assert_eq!(t.abs_max(), 6.0);
/// assert_eq!(t.get(&[1, 2])?, -6.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Tensor {
    shape: Shape,
    data: Vec<f32>,
}

impl Tensor {
    /// Creates a tensor filled with zeros.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidShape`] for an empty or zero-extent
    /// shape.
    pub fn zeros(dims: Vec<usize>) -> Result<Self> {
        let shape = Shape::new(dims)?;
        let volume = shape.volume();
        Ok(Tensor {
            shape,
            data: vec![0.0; volume],
        })
    }

    /// Creates a tensor filled with a constant.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidShape`] for an invalid shape.
    pub fn full(dims: Vec<usize>, value: f32) -> Result<Self> {
        let shape = Shape::new(dims)?;
        let volume = shape.volume();
        Ok(Tensor {
            shape,
            data: vec![value; volume],
        })
    }

    /// Creates a tensor from a flat row-major buffer.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidShape`] for an invalid shape and
    /// [`TensorError::LengthMismatch`] if `data.len()` differs from the
    /// shape volume.
    pub fn from_vec(dims: Vec<usize>, data: Vec<f32>) -> Result<Self> {
        let shape = Shape::new(dims)?;
        if data.len() != shape.volume() {
            return Err(TensorError::LengthMismatch {
                expected: shape.volume(),
                actual: data.len(),
            });
        }
        Ok(Tensor { shape, data })
    }

    /// Creates a tensor by evaluating `f` at every flat index.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidShape`] for an invalid shape.
    pub fn from_fn(dims: Vec<usize>, mut f: impl FnMut(usize) -> f32) -> Result<Self> {
        let shape = Shape::new(dims)?;
        let data = (0..shape.volume()).map(&mut f).collect();
        Ok(Tensor { shape, data })
    }

    /// The tensor shape.
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Always false: zero-volume tensors cannot be constructed.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Borrow the flat row-major data.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutably borrow the flat row-major data.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor, returning its flat buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Reads the element at a multi-axis index.
    ///
    /// # Errors
    ///
    /// Returns an index error if the index is out of bounds or of the
    /// wrong rank.
    pub fn get(&self, index: &[usize]) -> Result<f32> {
        Ok(self.data[self.shape.flatten(index)?])
    }

    /// Writes the element at a multi-axis index.
    ///
    /// # Errors
    ///
    /// Returns an index error if the index is out of bounds or of the
    /// wrong rank.
    pub fn set(&mut self, index: &[usize], value: f32) -> Result<()> {
        let flat = self.shape.flatten(index)?;
        self.data[flat] = value;
        Ok(())
    }

    /// Returns a copy of this tensor with a new shape of equal volume.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] when volumes differ.
    pub fn reshaped(&self, dims: Vec<usize>) -> Result<Tensor> {
        let new_shape = Shape::new(dims)?;
        if !self.shape.same_volume(&new_shape) {
            return Err(TensorError::ShapeMismatch {
                left: self.shape.dims().to_vec(),
                right: new_shape.dims().to_vec(),
            });
        }
        Ok(Tensor {
            shape: new_shape,
            data: self.data.clone(),
        })
    }

    /// Applies `f` to every element, returning a new tensor.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Tensor {
        Tensor {
            shape: self.shape.clone(),
            data: self.data.iter().copied().map(f).collect(),
        }
    }

    /// Applies `f` to every element in place.
    pub fn map_inplace(&mut self, f: impl Fn(f32) -> f32) {
        for v in &mut self.data {
            *v = f(*v);
        }
    }

    /// Elementwise sum with another tensor of the same shape.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] when shapes differ.
    pub fn add(&self, other: &Tensor) -> Result<Tensor> {
        self.zip_with(other, |a, b| a + b)
    }

    /// Elementwise difference with another tensor of the same shape.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] when shapes differ.
    pub fn sub(&self, other: &Tensor) -> Result<Tensor> {
        self.zip_with(other, |a, b| a - b)
    }

    /// Elementwise combination of two same-shaped tensors.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] when shapes differ.
    pub fn zip_with(&self, other: &Tensor, f: impl Fn(f32, f32) -> f32) -> Result<Tensor> {
        if self.shape != other.shape {
            return Err(TensorError::ShapeMismatch {
                left: self.shape.dims().to_vec(),
                right: other.shape.dims().to_vec(),
            });
        }
        Ok(Tensor {
            shape: self.shape.clone(),
            data: self
                .data
                .iter()
                .zip(&other.data)
                .map(|(&a, &b)| f(a, b))
                .collect(),
        })
    }

    /// Maximum absolute value over all elements (0 for all-zero tensors).
    pub fn abs_max(&self) -> f32 {
        self.data.iter().fold(0.0f32, |m, &v| m.max(v.abs()))
    }

    /// Mean of all elements.
    pub fn mean(&self) -> f32 {
        self.data.iter().sum::<f32>() / self.data.len() as f32
    }

    /// Gathers the elements selected by a sub-tensor view into a fresh
    /// buffer (views may be non-contiguous, e.g. image patches).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::IndexOutOfBounds`] if the view refers past
    /// the end of this tensor.
    pub fn subtensor(&self, view: &SubTensorView) -> Result<Vec<f32>> {
        let mut out = Vec::with_capacity(view.len());
        for range in view.ranges() {
            let slice = self
                .data
                .get(range.clone())
                .ok_or(TensorError::IndexOutOfBounds {
                    index: range.end,
                    bound: self.data.len(),
                })?;
            out.extend_from_slice(slice);
        }
        Ok(out)
    }

    /// Scatters `values` back into the elements selected by `view`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::LengthMismatch`] if `values.len()` differs
    /// from the view size, and [`TensorError::IndexOutOfBounds`] if the
    /// view refers past the end of this tensor.
    pub fn set_subtensor(&mut self, view: &SubTensorView, values: &[f32]) -> Result<()> {
        if values.len() != view.len() {
            return Err(TensorError::LengthMismatch {
                expected: view.len(),
                actual: values.len(),
            });
        }
        let mut cursor = 0usize;
        for range in view.ranges() {
            let len = range.len();
            let slice = self
                .data
                .get_mut(range.clone())
                .ok_or(TensorError::IndexOutOfBounds {
                    index: range.end,
                    bound: values.len(),
                })?;
            slice.copy_from_slice(&values[cursor..cursor + len]);
            cursor += len;
        }
        Ok(())
    }

    /// Iterator over the flat row-major elements.
    pub fn iter(&self) -> std::slice::Iter<'_, f32> {
        self.data.iter()
    }
}

impl fmt::Display for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor{} (", self.shape)?;
        let preview: Vec<String> = self
            .data
            .iter()
            .take(8)
            .map(|v| format!("{v:.4}"))
            .collect();
        write!(f, "{}", preview.join(", "))?;
        if self.data.len() > 8 {
            write!(f, ", …")?;
        }
        write!(f, ")")
    }
}

impl<'a> IntoIterator for &'a Tensor {
    type Item = &'a f32;
    type IntoIter = std::slice::Iter<'a, f32>;

    fn into_iter(self) -> Self::IntoIter {
        self.data.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::subtensor::SubTensorScheme;

    #[test]
    fn zeros_and_full() {
        let z = Tensor::zeros(vec![2, 2]).unwrap();
        assert!(z.iter().all(|&v| v == 0.0));
        let f = Tensor::full(vec![3], 1.5).unwrap();
        assert!(f.iter().all(|&v| v == 1.5));
    }

    #[test]
    fn from_vec_checks_length() {
        assert!(Tensor::from_vec(vec![2, 2], vec![1.0; 3]).is_err());
        assert!(Tensor::from_vec(vec![2, 2], vec![1.0; 4]).is_ok());
    }

    #[test]
    fn get_set_roundtrip() {
        let mut t = Tensor::zeros(vec![2, 3]).unwrap();
        t.set(&[1, 2], 9.0).unwrap();
        assert_eq!(t.get(&[1, 2]).unwrap(), 9.0);
        assert_eq!(t.get(&[0, 0]).unwrap(), 0.0);
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::from_vec(vec![2, 3], (0..6).map(|i| i as f32).collect()).unwrap();
        let r = t.reshaped(vec![3, 2]).unwrap();
        assert_eq!(r.as_slice(), t.as_slice());
        assert!(t.reshaped(vec![4, 2]).is_err());
    }

    #[test]
    fn elementwise_ops() {
        let a = Tensor::from_vec(vec![3], vec![1.0, 2.0, 3.0]).unwrap();
        let b = Tensor::from_vec(vec![3], vec![0.5, 0.5, 0.5]).unwrap();
        assert_eq!(a.add(&b).unwrap().as_slice(), &[1.5, 2.5, 3.5]);
        assert_eq!(a.sub(&b).unwrap().as_slice(), &[0.5, 1.5, 2.5]);
        let c = Tensor::from_vec(vec![2], vec![1.0, 1.0]).unwrap();
        assert!(a.add(&c).is_err());
    }

    #[test]
    fn reductions() {
        let t = Tensor::from_vec(vec![4], vec![-3.0, 1.0, 2.0, -0.5]).unwrap();
        assert_eq!(t.abs_max(), 3.0);
        assert!((t.mean() - (-0.125)).abs() < 1e-6);
    }

    #[test]
    fn subtensor_gather_scatter_roundtrip() {
        let mut t = Tensor::from_vec(vec![4, 4], (0..16).map(|i| i as f32).collect()).unwrap();
        let scheme = SubTensorScheme::token(4);
        let views = scheme.partition(t.shape()).unwrap();
        assert_eq!(views.len(), 4);
        let row2 = t.subtensor(&views[2]).unwrap();
        assert_eq!(row2, vec![8.0, 9.0, 10.0, 11.0]);
        t.set_subtensor(&views[2], &[0.0, 0.0, 0.0, 0.0]).unwrap();
        assert_eq!(t.subtensor(&views[2]).unwrap(), vec![0.0; 4]);
        // Other rows untouched.
        assert_eq!(t.get(&[1, 0]).unwrap(), 4.0);
    }

    #[test]
    fn set_subtensor_checks_length() {
        let mut t = Tensor::zeros(vec![2, 2]).unwrap();
        let views = SubTensorScheme::token(2).partition(t.shape()).unwrap();
        assert!(t.set_subtensor(&views[0], &[1.0]).is_err());
    }

    #[test]
    fn map_and_zip() {
        let t = Tensor::from_vec(vec![2], vec![1.0, -2.0]).unwrap();
        assert_eq!(t.map(f32::abs).as_slice(), &[1.0, 2.0]);
        let mut u = t.clone();
        u.map_inplace(|v| v * 2.0);
        assert_eq!(u.as_slice(), &[2.0, -4.0]);
    }

    #[test]
    fn display_preview() {
        let t = Tensor::zeros(vec![16]).unwrap();
        let s = t.to_string();
        assert!(s.contains("Tensor[16]"));
        assert!(s.contains('…'));
    }
}
