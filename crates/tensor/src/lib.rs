//! Dense tensor, statistics, and distribution substrate for the Drift
//! reproduction.
//!
//! The Drift paper ("Drift: Leveraging Distribution-based Dynamic Precision
//! Quantization for Efficient Deep Neural Network Acceleration", DAC 2024)
//! bases its quantization algorithm on two observations about DNN data
//! tensors (its Section 2.1):
//!
//! 1. *Sub-tensor dynamics*: different sub-tensors (patches, tokens,
//!    regions) of the same tensor have wildly different value ranges and
//!    variances.
//! 2. *Laplace ubiquity*: nearly all sub-tensors are well approximated by a
//!    zero-mean Laplace distribution, so `max(|Y|)` and `avg(|Y|)` suffice
//!    to characterise a sub-tensor.
//!
//! This crate provides everything needed to state, generate, and verify
//! those observations:
//!
//! * [`tensor`] — a small dense row-major tensor library ([`Tensor`]).
//! * [`shape`] — shapes, strides, and index arithmetic ([`Shape`]).
//! * [`stats`] — streaming statistics and Laplace/exponential maximum
//!   likelihood estimation ([`stats::SummaryStats`]).
//! * [`dist`] — distribution samplers, histograms, and goodness-of-fit
//!   tests ([`dist::Laplace`], [`dist::ks_statistic`]).
//! * [`subtensor`] — sub-tensor partitioning schemes (patch / token /
//!   region / channel granularity, [`subtensor::SubTensorScheme`]).
//!
//! # Example
//!
//! Partition an activation tensor into token sub-tensors and confirm that
//! each is approximately Laplace:
//!
//! ```rust
//! use drift_tensor::dist::{Laplace, Sampler};
//! use drift_tensor::stats::SummaryStats;
//! use drift_tensor::subtensor::SubTensorScheme;
//! use drift_tensor::Tensor;
//!
//! # fn main() -> Result<(), drift_tensor::TensorError> {
//! // A [tokens, hidden] activation tensor with per-token scales.
//! let mut rng = drift_tensor::rng::seeded(7);
//! let mut data = Vec::new();
//! for t in 0..8 {
//!     let lap = Laplace::new(0.0, 0.05 * (t + 1) as f64)?;
//!     data.extend((0..64).map(|_| lap.sample(&mut rng) as f32));
//! }
//! let acts = Tensor::from_vec(vec![8, 64], data)?;
//!
//! let scheme = SubTensorScheme::token(64);
//! for view in scheme.partition(acts.shape())? {
//!     let stats = SummaryStats::from_slice(acts.subtensor(&view)?);
//!     // Laplace MLE: b ~= avg(|Y|), var(Y) ~= 2 b^2.
//!     assert!(stats.laplace_scale() > 0.0);
//! }
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod dist;
pub mod rng;
pub mod shape;
pub mod stats;
pub mod subtensor;
pub mod tensor;

pub use shape::Shape;
pub use tensor::Tensor;

use std::error::Error;
use std::fmt;

/// Error type for all fallible operations in this crate.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum TensorError {
    /// A shape was empty or contained a zero-sized dimension.
    InvalidShape {
        /// The offending dimension list.
        dims: Vec<usize>,
    },
    /// The element count of the provided buffer does not match the shape.
    LengthMismatch {
        /// Elements the shape requires.
        expected: usize,
        /// Elements actually supplied.
        actual: usize,
    },
    /// An index was out of bounds for the tensor shape.
    IndexOutOfBounds {
        /// The offending flat or per-axis index.
        index: usize,
        /// The bound that was violated.
        bound: usize,
    },
    /// Two tensors had incompatible shapes for the requested operation.
    ShapeMismatch {
        /// Left-hand dimensions.
        left: Vec<usize>,
        /// Right-hand dimensions.
        right: Vec<usize>,
    },
    /// A sub-tensor partitioning scheme does not divide the tensor shape.
    PartitionMismatch {
        /// Human-readable description of the mismatch.
        detail: String,
    },
    /// A distribution parameter was invalid (for example a non-positive
    /// scale).
    InvalidParameter {
        /// Parameter name.
        name: &'static str,
        /// Offending value.
        value: f64,
    },
}

impl fmt::Display for TensorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TensorError::InvalidShape { dims } => {
                write!(f, "invalid tensor shape {dims:?}")
            }
            TensorError::LengthMismatch { expected, actual } => {
                write!(
                    f,
                    "buffer length {actual} does not match shape volume {expected}"
                )
            }
            TensorError::IndexOutOfBounds { index, bound } => {
                write!(f, "index {index} out of bounds for extent {bound}")
            }
            TensorError::ShapeMismatch { left, right } => {
                write!(f, "shape mismatch between {left:?} and {right:?}")
            }
            TensorError::PartitionMismatch { detail } => {
                write!(f, "partition mismatch: {detail}")
            }
            TensorError::InvalidParameter { name, value } => {
                write!(f, "invalid parameter {name} = {value}")
            }
        }
    }
}

impl Error for TensorError {}

/// Convenience result alias used across the crate.
pub type Result<T, E = TensorError> = std::result::Result<T, E>;
