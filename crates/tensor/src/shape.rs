//! Shapes, strides, and index arithmetic for row-major dense tensors.

use crate::{Result, TensorError};
use serde::{Deserialize, Serialize};
use std::fmt;

/// The shape of a dense row-major tensor.
///
/// A `Shape` is an ordered list of strictly positive dimension extents.
/// Rank-0 (scalar) shapes are not supported; scalars are rank-1 tensors of
/// length one.
///
/// # Example
///
/// ```rust
/// use drift_tensor::Shape;
///
/// # fn main() -> Result<(), drift_tensor::TensorError> {
/// let shape = Shape::new(vec![2, 3, 4])?;
/// assert_eq!(shape.volume(), 24);
/// assert_eq!(shape.strides(), vec![12, 4, 1]);
/// assert_eq!(shape.flatten(&[1, 2, 3])?, 23);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Shape {
    dims: Vec<usize>,
}

impl Shape {
    /// Creates a shape from dimension extents.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidShape`] if `dims` is empty or any
    /// extent is zero.
    pub fn new(dims: Vec<usize>) -> Result<Self> {
        if dims.is_empty() || dims.contains(&0) {
            return Err(TensorError::InvalidShape { dims });
        }
        Ok(Shape { dims })
    }

    /// Creates a rank-1 shape of the given length.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidShape`] if `len` is zero.
    pub fn vector(len: usize) -> Result<Self> {
        Shape::new(vec![len])
    }

    /// Creates a rank-2 shape (`rows` × `cols`).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidShape`] if either extent is zero.
    pub fn matrix(rows: usize, cols: usize) -> Result<Self> {
        Shape::new(vec![rows, cols])
    }

    /// The dimension extents.
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// The number of dimensions (rank).
    pub fn rank(&self) -> usize {
        self.dims.len()
    }

    /// The extent of axis `axis`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::IndexOutOfBounds`] if `axis >= rank`.
    pub fn dim(&self, axis: usize) -> Result<usize> {
        self.dims
            .get(axis)
            .copied()
            .ok_or(TensorError::IndexOutOfBounds {
                index: axis,
                bound: self.dims.len(),
            })
    }

    /// Total number of elements.
    pub fn volume(&self) -> usize {
        self.dims.iter().product()
    }

    /// Row-major strides: the flat distance between consecutive elements
    /// along each axis.
    pub fn strides(&self) -> Vec<usize> {
        let mut strides = vec![1usize; self.dims.len()];
        for axis in (0..self.dims.len().saturating_sub(1)).rev() {
            strides[axis] = strides[axis + 1] * self.dims[axis + 1];
        }
        strides
    }

    /// Converts a multi-axis index into a flat row-major offset.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the index rank differs
    /// from the shape rank, and [`TensorError::IndexOutOfBounds`] if any
    /// component exceeds its extent.
    pub fn flatten(&self, index: &[usize]) -> Result<usize> {
        if index.len() != self.dims.len() {
            return Err(TensorError::ShapeMismatch {
                left: self.dims.clone(),
                right: index.to_vec(),
            });
        }
        let mut flat = 0usize;
        for (axis, (&i, &extent)) in index.iter().zip(&self.dims).enumerate() {
            if i >= extent {
                return Err(TensorError::IndexOutOfBounds {
                    index: i,
                    bound: extent,
                });
            }
            // Row-major accumulation avoids materialising the stride list.
            flat = flat * extent + i;
            let _ = axis;
        }
        Ok(flat)
    }

    /// Converts a flat row-major offset back into a multi-axis index.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::IndexOutOfBounds`] if `flat >= volume`.
    pub fn unflatten(&self, flat: usize) -> Result<Vec<usize>> {
        if flat >= self.volume() {
            return Err(TensorError::IndexOutOfBounds {
                index: flat,
                bound: self.volume(),
            });
        }
        let mut rem = flat;
        let mut index = vec![0usize; self.dims.len()];
        for axis in (0..self.dims.len()).rev() {
            index[axis] = rem % self.dims[axis];
            rem /= self.dims[axis];
        }
        Ok(index)
    }

    /// Returns true when both shapes have the same volume (reshape is
    /// possible).
    pub fn same_volume(&self, other: &Shape) -> bool {
        self.volume() == other.volume()
    }
}

impl fmt::Display for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, d) in self.dims.iter().enumerate() {
            if i > 0 {
                write!(f, "x")?;
            }
            write!(f, "{d}")?;
        }
        write!(f, "]")
    }
}

impl TryFrom<Vec<usize>> for Shape {
    type Error = TensorError;

    fn try_from(dims: Vec<usize>) -> Result<Self> {
        Shape::new(dims)
    }
}

impl TryFrom<&[usize]> for Shape {
    type Error = TensorError;

    fn try_from(dims: &[usize]) -> Result<Self> {
        Shape::new(dims.to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_empty_shape() {
        assert!(matches!(
            Shape::new(vec![]),
            Err(TensorError::InvalidShape { .. })
        ));
    }

    #[test]
    fn rejects_zero_extent() {
        assert!(matches!(
            Shape::new(vec![3, 0]),
            Err(TensorError::InvalidShape { .. })
        ));
    }

    #[test]
    fn volume_and_strides() {
        let s = Shape::new(vec![2, 3, 4]).unwrap();
        assert_eq!(s.volume(), 24);
        assert_eq!(s.strides(), vec![12, 4, 1]);
        assert_eq!(s.rank(), 3);
    }

    #[test]
    fn flatten_unflatten_roundtrip() {
        let s = Shape::new(vec![3, 5, 7]).unwrap();
        for flat in 0..s.volume() {
            let idx = s.unflatten(flat).unwrap();
            assert_eq!(s.flatten(&idx).unwrap(), flat);
        }
    }

    #[test]
    fn flatten_rejects_out_of_bounds() {
        let s = Shape::new(vec![2, 2]).unwrap();
        assert!(s.flatten(&[2, 0]).is_err());
        assert!(s.flatten(&[0, 0, 0]).is_err());
    }

    #[test]
    fn unflatten_rejects_out_of_bounds() {
        let s = Shape::new(vec![2, 2]).unwrap();
        assert!(s.unflatten(4).is_err());
    }

    #[test]
    fn display_is_compact() {
        let s = Shape::new(vec![8, 64]).unwrap();
        assert_eq!(s.to_string(), "[8x64]");
    }

    #[test]
    fn vector_and_matrix_constructors() {
        assert_eq!(Shape::vector(5).unwrap().dims(), &[5]);
        assert_eq!(Shape::matrix(2, 3).unwrap().dims(), &[2, 3]);
    }

    #[test]
    fn try_from_slice() {
        let s: Shape = [2usize, 4].as_slice().try_into().unwrap();
        assert_eq!(s.volume(), 8);
    }
}
