//! Distribution samplers, histograms, and goodness-of-fit tests.
//!
//! The Drift paper's Figure 1 profiles sub-tensor distributions and finds
//! that zero-mean Laplace distributions approximate nearly all of them.
//! This module supplies the samplers used to generate activation data with
//! controlled sub-tensor statistics, and the Kolmogorov–Smirnov machinery
//! used by the Figure-1 reproduction to quantify the Laplace fit.

use crate::rng::DriftRng;
use crate::{Result, TensorError};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A distribution that can draw `f64` samples from a [`DriftRng`].
///
/// Implemented by [`Laplace`], [`Gaussian`], [`Exponential`], and
/// [`Uniform`].
pub trait Sampler {
    /// Draws one sample.
    fn sample(&self, rng: &mut DriftRng) -> f64;

    /// Evaluates the cumulative distribution function at `x`.
    fn cdf(&self, x: f64) -> f64;

    /// Fills a vector with `n` samples.
    fn sample_vec(&self, rng: &mut DriftRng, n: usize) -> Vec<f64> {
        (0..n).map(|_| self.sample(rng)).collect()
    }

    /// Fills a vector with `n` samples, narrowed to `f32`.
    fn sample_f32(&self, rng: &mut DriftRng, n: usize) -> Vec<f32> {
        (0..n).map(|_| self.sample(rng) as f32).collect()
    }
}

/// Laplace distribution `Laplace(μ, b)` with density
/// `f(x) = exp(-|x-μ|/b) / (2b)`.
///
/// # Example
///
/// ```rust
/// use drift_tensor::dist::{Laplace, Sampler};
/// use drift_tensor::stats::SummaryStats;
///
/// # fn main() -> Result<(), drift_tensor::TensorError> {
/// let lap = Laplace::new(0.0, 0.5)?;
/// let mut rng = drift_tensor::rng::seeded(3);
/// let stats: SummaryStats = lap.sample_f32(&mut rng, 4096).into_iter().collect();
/// // MLE of the scale recovers b.
/// assert!((stats.laplace_scale() - 0.5).abs() < 0.05);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Laplace {
    mu: f64,
    b: f64,
}

impl Laplace {
    /// Creates a Laplace distribution with location `mu` and scale `b`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidParameter`] unless `b > 0` and both
    /// parameters are finite.
    pub fn new(mu: f64, b: f64) -> Result<Self> {
        if !b.is_finite() || b <= 0.0 {
            return Err(TensorError::InvalidParameter {
                name: "b",
                value: b,
            });
        }
        if !mu.is_finite() {
            return Err(TensorError::InvalidParameter {
                name: "mu",
                value: mu,
            });
        }
        Ok(Laplace { mu, b })
    }

    /// Location parameter.
    pub fn mu(&self) -> f64 {
        self.mu
    }

    /// Scale parameter.
    pub fn b(&self) -> f64 {
        self.b
    }

    /// The distribution variance, `2 b²`.
    pub fn variance(&self) -> f64 {
        2.0 * self.b * self.b
    }
}

impl Sampler for Laplace {
    fn sample(&self, rng: &mut DriftRng) -> f64 {
        // Inverse-CDF sampling: u ∈ (-1/2, 1/2),
        // x = μ - b · sign(u) · ln(1 - 2|u|).
        let u: f64 = rng.gen::<f64>() - 0.5;
        self.mu - self.b * u.signum() * (1.0 - 2.0 * u.abs()).ln()
    }

    fn cdf(&self, x: f64) -> f64 {
        let z = (x - self.mu) / self.b;
        if z < 0.0 {
            0.5 * z.exp()
        } else {
            1.0 - 0.5 * (-z).exp()
        }
    }
}

/// Gaussian distribution `N(μ, σ²)` sampled via Box–Muller.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Gaussian {
    mu: f64,
    sigma: f64,
}

impl Gaussian {
    /// Creates a Gaussian with mean `mu` and standard deviation `sigma`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidParameter`] unless `sigma > 0` and
    /// both parameters are finite.
    pub fn new(mu: f64, sigma: f64) -> Result<Self> {
        if !sigma.is_finite() || sigma <= 0.0 {
            return Err(TensorError::InvalidParameter {
                name: "sigma",
                value: sigma,
            });
        }
        if !mu.is_finite() {
            return Err(TensorError::InvalidParameter {
                name: "mu",
                value: mu,
            });
        }
        Ok(Gaussian { mu, sigma })
    }

    /// Mean.
    pub fn mu(&self) -> f64 {
        self.mu
    }

    /// Standard deviation.
    pub fn sigma(&self) -> f64 {
        self.sigma
    }
}

impl Sampler for Gaussian {
    fn sample(&self, rng: &mut DriftRng) -> f64 {
        // Box–Muller; one of the pair is discarded for simplicity.
        let u1: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
        let u2: f64 = rng.gen();
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        self.mu + self.sigma * z
    }

    fn cdf(&self, x: f64) -> f64 {
        0.5 * (1.0 + erf((x - self.mu) / (self.sigma * std::f64::consts::SQRT_2)))
    }
}

/// Exponential distribution with rate `λ` (the distribution of `|Y|` when
/// `Y ~ Laplace(0, 1/λ)`, paper Eq. 4).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Exponential {
    lambda: f64,
}

impl Exponential {
    /// Creates an exponential distribution with rate `lambda`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidParameter`] unless `lambda > 0` and
    /// finite.
    pub fn new(lambda: f64) -> Result<Self> {
        if !lambda.is_finite() || lambda <= 0.0 {
            return Err(TensorError::InvalidParameter {
                name: "lambda",
                value: lambda,
            });
        }
        Ok(Exponential { lambda })
    }

    /// Rate parameter.
    pub fn lambda(&self) -> f64 {
        self.lambda
    }
}

impl Sampler for Exponential {
    fn sample(&self, rng: &mut DriftRng) -> f64 {
        let u: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
        -u.ln() / self.lambda
    }

    fn cdf(&self, x: f64) -> f64 {
        if x < 0.0 {
            0.0
        } else {
            1.0 - (-self.lambda * x).exp()
        }
    }
}

/// Uniform distribution on `[lo, hi)`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Uniform {
    lo: f64,
    hi: f64,
}

impl Uniform {
    /// Creates a uniform distribution on `[lo, hi)`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidParameter`] unless `lo < hi` and both
    /// are finite.
    pub fn new(lo: f64, hi: f64) -> Result<Self> {
        if !lo.is_finite() || !hi.is_finite() || lo >= hi {
            return Err(TensorError::InvalidParameter {
                name: "hi",
                value: hi,
            });
        }
        Ok(Uniform { lo, hi })
    }
}

impl Sampler for Uniform {
    fn sample(&self, rng: &mut DriftRng) -> f64 {
        self.lo + (self.hi - self.lo) * rng.gen::<f64>()
    }

    fn cdf(&self, x: f64) -> f64 {
        ((x - self.lo) / (self.hi - self.lo)).clamp(0.0, 1.0)
    }
}

/// Error function approximation (Abramowitz & Stegun 7.1.26, max abs error
/// 1.5e-7), sufficient for goodness-of-fit reporting.
pub fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.327_591_1 * x);
    let y = 1.0
        - (((((1.061_405_429 * t - 1.453_152_027) * t) + 1.421_413_741) * t - 0.284_496_736) * t
            + 0.254_829_592)
            * t
            * (-x * x).exp();
    sign * y
}

/// One-sample Kolmogorov–Smirnov statistic of `samples` against a model
/// CDF: `D = sup_x |F_n(x) - F(x)|`.
///
/// Small values (≲ 1.36/√n for 5% significance) indicate the model fits.
///
/// # Example
///
/// ```rust
/// use drift_tensor::dist::{ks_statistic, Laplace, Sampler};
///
/// # fn main() -> Result<(), drift_tensor::TensorError> {
/// let lap = Laplace::new(0.0, 1.0)?;
/// let mut rng = drift_tensor::rng::seeded(11);
/// let samples = lap.sample_vec(&mut rng, 2000);
/// let d = ks_statistic(&samples, |x| lap.cdf(x));
/// assert!(d < 1.36 / (2000f64).sqrt() * 1.5);
/// # Ok(())
/// # }
/// ```
pub fn ks_statistic(samples: &[f64], cdf: impl Fn(f64) -> f64) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    let mut sorted: Vec<f64> = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("samples must not contain NaN"));
    let n = sorted.len() as f64;
    let mut d = 0.0f64;
    for (i, &x) in sorted.iter().enumerate() {
        let f = cdf(x);
        let lo = i as f64 / n;
        let hi = (i + 1) as f64 / n;
        d = d.max((f - lo).abs()).max((hi - f).abs());
    }
    d
}

/// KS statistic of `samples` against the best-fit zero-mean Laplace
/// (scale from the MLE `b = avg(|x|)`). Returns the fitted scale and the
/// statistic; `None` for empty or all-zero input.
pub fn laplace_fit_ks(samples: &[f64]) -> Option<(f64, f64)> {
    if samples.is_empty() {
        return None;
    }
    let b = samples.iter().map(|v| v.abs()).sum::<f64>() / samples.len() as f64;
    if b == 0.0 {
        return None;
    }
    let lap = Laplace::new(0.0, b).ok()?;
    Some((b, ks_statistic(samples, |x| lap.cdf(x))))
}

/// Quantile function (inverse CDF) of the zero-mean Laplace
/// distribution with scale `b`.
pub fn laplace_quantile(p: f64, b: f64) -> f64 {
    let p = p.clamp(1e-12, 1.0 - 1e-12);
    if p < 0.5 {
        b * (2.0 * p).ln()
    } else {
        -b * (2.0 * (1.0 - p)).ln()
    }
}

/// QQ-plot points of `samples` against the best-fit zero-mean Laplace:
/// `(theoretical quantile, empirical quantile)` pairs at the plotting
/// positions `(i + 0.5) / n`. A good fit hugs the diagonal; the
/// Figure-1 reproduction prints the worst deviation. Returns an empty
/// vector for empty or all-zero input.
pub fn laplace_qq_points(samples: &[f64]) -> Vec<(f64, f64)> {
    if samples.is_empty() {
        return Vec::new();
    }
    let b = samples.iter().map(|v| v.abs()).sum::<f64>() / samples.len() as f64;
    if b == 0.0 {
        return Vec::new();
    }
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, c| a.partial_cmp(c).expect("samples must not contain NaN"));
    let n = sorted.len() as f64;
    sorted
        .iter()
        .enumerate()
        .map(|(i, &x)| (laplace_quantile((i as f64 + 0.5) / n, b), x))
        .collect()
}

/// A fixed-width histogram over `[lo, hi]` used to render Figure-1 style
/// distribution plots as text.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    counts: Vec<u64>,
    total: u64,
    underflow: u64,
    overflow: u64,
}

impl Histogram {
    /// Creates a histogram with `bins` equal-width bins on `[lo, hi]`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidParameter`] unless `lo < hi` and
    /// `bins > 0`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Result<Self> {
        if !lo.is_finite() || !hi.is_finite() || lo >= hi {
            return Err(TensorError::InvalidParameter {
                name: "hi",
                value: hi,
            });
        }
        if bins == 0 {
            return Err(TensorError::InvalidParameter {
                name: "bins",
                value: 0.0,
            });
        }
        Ok(Histogram {
            lo,
            hi,
            counts: vec![0; bins],
            total: 0,
            underflow: 0,
            overflow: 0,
        })
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.total += 1;
        if x < self.lo {
            self.underflow += 1;
            return;
        }
        if x > self.hi {
            self.overflow += 1;
            return;
        }
        let width = (self.hi - self.lo) / self.counts.len() as f64;
        let bin = (((x - self.lo) / width) as usize).min(self.counts.len() - 1);
        self.counts[bin] += 1;
    }

    /// Bin counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Observations below the histogram range.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Observations above the histogram range.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Total observations (including out-of-range).
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Normalized bin densities (each bin's fraction of in-range mass,
    /// divided by bin width).
    pub fn densities(&self) -> Vec<f64> {
        let width = (self.hi - self.lo) / self.counts.len() as f64;
        let in_range: u64 = self.counts.iter().sum();
        if in_range == 0 {
            return vec![0.0; self.counts.len()];
        }
        self.counts
            .iter()
            .map(|&c| c as f64 / in_range as f64 / width)
            .collect()
    }

    /// Centre of each bin, for plotting.
    pub fn bin_centers(&self) -> Vec<f64> {
        let width = (self.hi - self.lo) / self.counts.len() as f64;
        (0..self.counts.len())
            .map(|i| self.lo + width * (i as f64 + 0.5))
            .collect()
    }

    /// Renders a compact ASCII bar chart (one line per bin).
    pub fn to_ascii(&self, width: usize) -> String {
        let max = self.counts.iter().copied().max().unwrap_or(0).max(1);
        let centers = self.bin_centers();
        let mut out = String::new();
        for (c, count) in centers.iter().zip(&self.counts) {
            let bar = "#".repeat((count * width as u64 / max) as usize);
            out.push_str(&format!("{c:>9.3} | {bar}\n"));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::seeded;

    #[test]
    fn laplace_rejects_bad_params() {
        assert!(Laplace::new(0.0, 0.0).is_err());
        assert!(Laplace::new(0.0, -1.0).is_err());
        assert!(Laplace::new(f64::NAN, 1.0).is_err());
        assert!(Laplace::new(0.0, f64::INFINITY).is_err());
    }

    #[test]
    fn laplace_moments_recovered() {
        let lap = Laplace::new(0.0, 0.8).unwrap();
        let mut rng = seeded(1);
        let xs = lap.sample_vec(&mut rng, 20_000);
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let mean_abs = xs.iter().map(|v| v.abs()).sum::<f64>() / xs.len() as f64;
        assert!(mean.abs() < 0.03, "mean {mean}");
        assert!((mean_abs - 0.8).abs() < 0.03, "mean_abs {mean_abs}");
    }

    #[test]
    fn laplace_cdf_properties() {
        let lap = Laplace::new(0.0, 1.0).unwrap();
        assert!((lap.cdf(0.0) - 0.5).abs() < 1e-12);
        assert!(lap.cdf(-10.0) < 1e-4);
        assert!(lap.cdf(10.0) > 1.0 - 1e-4);
        // Monotone.
        assert!(lap.cdf(-1.0) < lap.cdf(0.0));
        assert!(lap.cdf(0.0) < lap.cdf(1.0));
    }

    #[test]
    fn gaussian_moments_recovered() {
        let g = Gaussian::new(1.0, 2.0).unwrap();
        let mut rng = seeded(2);
        let xs = g.sample_vec(&mut rng, 20_000);
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / xs.len() as f64;
        assert!((mean - 1.0).abs() < 0.05);
        assert!((var - 4.0).abs() < 0.2);
    }

    #[test]
    fn gaussian_cdf_median() {
        let g = Gaussian::new(3.0, 1.5).unwrap();
        assert!((g.cdf(3.0) - 0.5).abs() < 1e-7);
    }

    #[test]
    fn exponential_mean_is_inverse_rate() {
        let e = Exponential::new(4.0).unwrap();
        let mut rng = seeded(3);
        let xs = e.sample_vec(&mut rng, 20_000);
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        assert!((mean - 0.25).abs() < 0.01);
        assert!(xs.iter().all(|&x| x >= 0.0));
    }

    #[test]
    fn abs_laplace_is_exponential() {
        // Paper Eq. 4: |Laplace(0, b)| ~ Exponential(1/b).
        let lap = Laplace::new(0.0, 0.5).unwrap();
        let exp = Exponential::new(2.0).unwrap();
        let mut rng = seeded(4);
        let abs_samples: Vec<f64> = lap
            .sample_vec(&mut rng, 5_000)
            .into_iter()
            .map(f64::abs)
            .collect();
        let d = ks_statistic(&abs_samples, |x| exp.cdf(x));
        assert!(d < 0.03, "KS statistic {d} too large");
    }

    #[test]
    fn uniform_bounds() {
        let u = Uniform::new(-1.0, 1.0).unwrap();
        let mut rng = seeded(5);
        for _ in 0..1000 {
            let x = u.sample(&mut rng);
            assert!((-1.0..1.0).contains(&x));
        }
        assert!(Uniform::new(1.0, 1.0).is_err());
    }

    #[test]
    fn ks_accepts_true_model_rejects_wrong_model() {
        let lap = Laplace::new(0.0, 1.0).unwrap();
        let mut rng = seeded(6);
        let xs = lap.sample_vec(&mut rng, 3_000);
        let d_true = ks_statistic(&xs, |x| lap.cdf(x));
        let g = Gaussian::new(0.0, (2.0f64).sqrt()).unwrap();
        let d_wrong = ks_statistic(&xs, |x| g.cdf(x));
        assert!(d_true < d_wrong, "true {d_true} vs wrong {d_wrong}");
        assert!(d_true < 0.05);
    }

    #[test]
    fn laplace_fit_ks_recovers_scale() {
        let lap = Laplace::new(0.0, 0.3).unwrap();
        let mut rng = seeded(7);
        let xs = lap.sample_vec(&mut rng, 5_000);
        let (b, d) = laplace_fit_ks(&xs).unwrap();
        assert!((b - 0.3).abs() < 0.02);
        assert!(d < 0.05);
        assert!(laplace_fit_ks(&[]).is_none());
        assert!(laplace_fit_ks(&[0.0, 0.0]).is_none());
    }

    #[test]
    fn laplace_quantile_inverts_cdf() {
        let lap = Laplace::new(0.0, 0.7).unwrap();
        for p in [0.01, 0.25, 0.5, 0.75, 0.99] {
            let x = laplace_quantile(p, 0.7);
            assert!((lap.cdf(x) - p).abs() < 1e-9, "p = {p}");
        }
        assert_eq!(laplace_quantile(0.5, 1.0), 0.0);
    }

    #[test]
    fn qq_points_hug_the_diagonal_for_true_laplace() {
        let lap = Laplace::new(0.0, 0.4).unwrap();
        let mut rng = seeded(12);
        let xs = lap.sample_vec(&mut rng, 4000);
        let points = laplace_qq_points(&xs);
        assert_eq!(points.len(), 4000);
        // Central 95% of points stay near the diagonal.
        let inner = &points[100..3900];
        let worst = inner
            .iter()
            .map(|(t, e)| (t - e).abs())
            .fold(0.0f64, f64::max);
        assert!(worst < 0.12, "worst central deviation {worst}");
        assert!(laplace_qq_points(&[]).is_empty());
        assert!(laplace_qq_points(&[0.0, 0.0]).is_empty());
    }

    #[test]
    fn histogram_counts_and_range() {
        let mut h = Histogram::new(0.0, 1.0, 4).unwrap();
        for x in [0.1, 0.3, 0.6, 0.9, -0.5, 1.5] {
            h.push(x);
        }
        assert_eq!(h.counts(), &[1, 1, 1, 1]);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 1);
        assert_eq!(h.total(), 6);
        let centers = h.bin_centers();
        assert!((centers[0] - 0.125).abs() < 1e-12);
        assert!(!h.to_ascii(20).is_empty());
    }

    #[test]
    fn histogram_densities_integrate_to_one() {
        let mut h = Histogram::new(-2.0, 2.0, 32).unwrap();
        let lap = Laplace::new(0.0, 0.4).unwrap();
        let mut rng = seeded(8);
        for _ in 0..10_000 {
            h.push(lap.sample(&mut rng));
        }
        let width = 4.0 / 32.0;
        let integral: f64 = h.densities().iter().map(|d| d * width).sum();
        assert!((integral - 1.0).abs() < 1e-9);
    }

    #[test]
    fn erf_reference_values() {
        assert!(erf(0.0).abs() < 1e-6);
        assert!((erf(1.0) - 0.842_700_79).abs() < 1e-6);
        assert!((erf(-1.0) + 0.842_700_79).abs() < 1e-6);
        assert!((erf(3.0) - 0.999_977_91).abs() < 1e-5);
    }
}
