//! Property-based tests for the tensor substrate.

use drift_tensor::dist::{ks_statistic, Exponential, Gaussian, Histogram, Laplace, Sampler};
use drift_tensor::rng::seeded;
use drift_tensor::stats::SummaryStats;
use drift_tensor::subtensor::SubTensorScheme;
use drift_tensor::{Shape, Tensor};
use proptest::prelude::*;

fn arb_shape() -> impl Strategy<Value = Vec<usize>> {
    proptest::collection::vec(1usize..8, 1..4)
}

proptest! {
    /// flatten ∘ unflatten is the identity on every valid offset.
    #[test]
    fn shape_flatten_roundtrip(dims in arb_shape()) {
        let shape = Shape::new(dims).unwrap();
        for flat in 0..shape.volume() {
            let idx = shape.unflatten(flat).unwrap();
            prop_assert_eq!(shape.flatten(&idx).unwrap(), flat);
        }
    }

    /// Strides are consistent with flatten: moving one step along an
    /// axis moves the flat offset by that axis's stride.
    #[test]
    fn strides_match_flatten(dims in arb_shape()) {
        let shape = Shape::new(dims.clone()).unwrap();
        let strides = shape.strides();
        let zero = vec![0usize; dims.len()];
        for axis in 0..dims.len() {
            if dims[axis] < 2 {
                continue;
            }
            let mut idx = zero.clone();
            idx[axis] = 1;
            prop_assert_eq!(shape.flatten(&idx).unwrap(), strides[axis]);
        }
    }

    /// Every partitioning scheme covers the tensor exactly once.
    #[test]
    fn partitions_are_exact_covers(
        rows in 1usize..12,
        cols in 1usize..12,
        tile_r in 1usize..6,
        tile_c in 1usize..6,
    ) {
        let shape = Shape::matrix(rows, cols).unwrap();
        let schemes = vec![
            SubTensorScheme::PerTensor,
            SubTensorScheme::region(tile_r, tile_c),
            SubTensorScheme::Channel,
            SubTensorScheme::PerValue,
        ];
        for scheme in schemes {
            let views = scheme.partition(&shape).unwrap();
            prop_assert_eq!(views.len(), scheme.count(&shape).unwrap());
            let mut seen = vec![false; shape.volume()];
            for v in &views {
                for i in v.indices() {
                    prop_assert!(!seen[i], "double cover at {i}");
                    seen[i] = true;
                }
            }
            prop_assert!(seen.iter().all(|&s| s));
        }
    }

    /// Gather then scatter of any view is the identity.
    #[test]
    fn gather_scatter_identity(
        rows in 1usize..8,
        cols in 1usize..8,
        data in proptest::collection::vec(-100.0f32..100.0, 64),
    ) {
        let n = rows * cols;
        let t = Tensor::from_vec(vec![rows, cols], data[..n].to_vec()).unwrap();
        let views = SubTensorScheme::region(2, 2).partition(t.shape()).unwrap();
        let mut u = t.clone();
        for v in &views {
            let gathered = t.subtensor(v).unwrap();
            u.set_subtensor(v, &gathered).unwrap();
        }
        prop_assert_eq!(t, u);
    }

    /// Welford statistics match two-pass computation.
    #[test]
    fn stats_match_two_pass(data in proptest::collection::vec(-1e3f32..1e3, 1..256)) {
        let s = SummaryStats::from_slice(&data);
        let mean = data.iter().map(|&v| f64::from(v)).sum::<f64>() / data.len() as f64;
        let var = data
            .iter()
            .map(|&v| (f64::from(v) - mean).powi(2))
            .sum::<f64>()
            / data.len() as f64;
        prop_assert!((s.mean() - mean).abs() <= 1e-6 * mean.abs().max(1.0));
        prop_assert!((s.variance() - var).abs() <= 1e-5 * var.max(1.0));
        let abs_max = data.iter().fold(0.0f64, |m, &v| m.max(f64::from(v).abs()));
        prop_assert_eq!(s.abs_max(), abs_max);
        prop_assert!(s.mean_abs() <= s.abs_max() + 1e-12);
    }

    /// All histogram mass is accounted for (bins + underflow + overflow).
    #[test]
    fn histogram_conserves_mass(
        data in proptest::collection::vec(-10.0f64..10.0, 1..200),
        lo in -5.0f64..-0.1,
        hi in 0.1f64..5.0,
        bins in 1usize..32,
    ) {
        let mut h = Histogram::new(lo, hi, bins).unwrap();
        for &x in &data {
            h.push(x);
        }
        let binned: u64 = h.counts().iter().sum();
        prop_assert_eq!(binned + h.underflow() + h.overflow(), h.total());
        prop_assert_eq!(h.total(), data.len() as u64);
    }

    /// CDFs are monotone and bounded for all three parametrised
    /// distributions.
    #[test]
    fn cdfs_are_monotone(
        scale in 0.01f64..10.0,
        a in -20.0f64..20.0,
        b in -20.0f64..20.0,
    ) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        let lap = Laplace::new(0.0, scale).unwrap();
        let gauss = Gaussian::new(0.0, scale).unwrap();
        let exp = Exponential::new(1.0 / scale).unwrap();
        for cdf in [&lap.cdf(lo), &gauss.cdf(lo), &exp.cdf(lo)] {
            prop_assert!((0.0..=1.0).contains(cdf));
        }
        prop_assert!(lap.cdf(lo) <= lap.cdf(hi) + 1e-12);
        prop_assert!(gauss.cdf(lo) <= gauss.cdf(hi) + 1e-12);
        prop_assert!(exp.cdf(lo) <= exp.cdf(hi) + 1e-12);
    }

    /// The KS statistic of a sample against its own empirical source is
    /// bounded by 1 and decreases with sample size for the true model.
    #[test]
    fn ks_statistic_bounded(seed in 0u64..1000, scale in 0.05f64..5.0) {
        let lap = Laplace::new(0.0, scale).unwrap();
        let mut rng = seeded(seed);
        let xs = lap.sample_vec(&mut rng, 500);
        let d = ks_statistic(&xs, |x| lap.cdf(x));
        prop_assert!((0.0..=1.0).contains(&d));
        // 99.9% band for n = 500.
        prop_assert!(d < 1.95 / (500f64).sqrt(), "KS {d} too large");
    }

    /// Sampling is deterministic per seed and sensitive to it.
    #[test]
    fn sampling_deterministic(seed in 0u64..10_000) {
        let lap = Laplace::new(0.0, 1.0).unwrap();
        let a = lap.sample_vec(&mut seeded(seed), 16);
        let b = lap.sample_vec(&mut seeded(seed), 16);
        prop_assert_eq!(a, b);
    }
}
