//! Failover correctness under a real crash: backend gateways run as
//! separate `drift gateway` processes, one is SIGKILLed mid-flood, and
//! every accepted job must still be answered exactly once. The router
//! must eject the dead shard, fail its orphans over, and re-admit the
//! shard once a replacement gateway binds the same address.

#![cfg(unix)]

use drift_gateway::framing::{LineEvent, LineReader};
use drift_gateway::protocol::request_line;
use drift_obs::Recorder;
use drift_router::{Router, RouterConfig};
use drift_serve::job::{JobKind, JobSpec};
use serde_json::Value;
use std::collections::HashMap;
use std::io::Write;
use std::net::{SocketAddr, TcpStream};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

const FLOOD: usize = 400;
const KILL_AFTER: usize = 150;

fn scratch_dir() -> PathBuf {
    let dir = std::env::temp_dir().join(format!("drift-router-chaos-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

/// Spawns `drift gateway` as a child process and waits for its
/// atomically written port file to learn the bound address. Callers
/// keep every child in a vec and kill + reap them before returning
/// (the test intentionally SIGKILLs one mid-run).
#[allow(clippy::zombie_processes)]
fn spawn_gateway(dir: &Path, name: &str, addr: &str) -> (Child, SocketAddr) {
    let port_file = dir.join(name);
    let _ = std::fs::remove_file(&port_file);
    let child = Command::new(env!("CARGO_BIN_EXE_drift"))
        .args([
            "gateway",
            "--addr",
            addr,
            "--workers",
            "1",
            "--queue-depth",
            "256",
            "--port-file",
        ])
        .arg(&port_file)
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn drift gateway");
    let deadline = Instant::now() + Duration::from_secs(20);
    loop {
        if let Ok(text) = std::fs::read_to_string(&port_file) {
            if let Ok(addr) = text.trim().parse() {
                return (child, addr);
            }
        }
        assert!(
            Instant::now() < deadline,
            "gateway {name} never wrote its port file"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
}

/// Re-binds the killed shard's address; retried because the kernel may
/// briefly hold the port after the SIGKILL.
fn respawn_gateway(dir: &Path, name: &str, addr: SocketAddr) -> (Child, SocketAddr) {
    let mut last = None;
    for attempt in 0..10 {
        let (mut child, bound) =
            spawn_gateway(dir, &format!("{name}-retry{attempt}"), &addr.to_string());
        if bound == addr {
            return (child, bound);
        }
        let _ = child.kill();
        let _ = child.wait();
        last = Some(bound);
        std::thread::sleep(Duration::from_millis(200));
    }
    panic!("could not re-bind {addr}, last bound {last:?}");
}

fn flood_jobs() -> Vec<JobSpec> {
    const FRACTIONS: [(f64, f64); 4] = [(0.1, 0.1), (0.2, 0.1), (0.5, 0.25), (0.8, 0.5)];
    (0..FLOOD)
        .map(|i| {
            let (fa, fw) = FRACTIONS[i % FRACTIONS.len()];
            JobSpec {
                id: i as u64,
                seed: (i % 8) as u64,
                kind: JobKind::Simulate {
                    m: 512,
                    k: 4096,
                    n: 4096,
                    fa,
                    fw,
                },
            }
        })
        .collect()
}

/// Reads response lines until `expect` responses arrived (or the
/// deadline passes), tallying responses per job id.
fn collect(reader: &mut LineReader, expect: usize, seen: &mut HashMap<u64, usize>) {
    let deadline = Instant::now() + Duration::from_secs(120);
    let mut got = 0usize;
    while got < expect {
        assert!(
            Instant::now() < deadline,
            "timed out at {got}/{expect} responses"
        );
        match reader.next_line() {
            LineEvent::Line(line) => {
                let value: Value = serde_json::from_str(&line).expect("response is JSON");
                let id = match value.get("id") {
                    Some(Value::U64(id)) => *id,
                    Some(Value::I64(id)) if *id >= 0 => *id as u64,
                    other => panic!("response without an id: {other:?} in {line}"),
                };
                assert!(
                    value.get("error").is_none(),
                    "job {id} was answered with an error: {line}"
                );
                *seen.entry(id).or_insert(0) += 1;
                got += 1;
            }
            LineEvent::TimedOut => {}
            LineEvent::Eof | LineEvent::Failed => panic!("router dropped the connection"),
        }
    }
}

fn counter(recorder: &Recorder, name: &str) -> u64 {
    recorder
        .registry()
        .expect("recorder enabled")
        .snapshot()
        .counter_sum(name)
}

#[test]
fn killing_a_backend_mid_run_loses_and_duplicates_nothing() {
    let dir = scratch_dir();
    let mut children = Vec::new();
    let mut shard_addrs = Vec::new();
    for i in 0..3 {
        let (child, addr) = spawn_gateway(&dir, &format!("gw{i}.port"), "127.0.0.1:0");
        children.push(child);
        shard_addrs.push(addr);
    }

    let recorder = Recorder::enabled();
    let config = RouterConfig {
        probe_interval_ms: 100,
        ..RouterConfig::default()
    };
    let shards: Vec<String> = shard_addrs.iter().map(SocketAddr::to_string).collect();
    let router =
        Router::start("127.0.0.1:0", &shards, config, recorder.clone()).expect("router starts");

    let stream = TcpStream::connect(router.local_addr()).expect("connect to router");
    stream.set_nodelay(true).expect("nodelay");
    stream
        .set_read_timeout(Some(Duration::from_millis(100)))
        .expect("read timeout");
    let mut writer = stream.try_clone().expect("clone stream");
    let mut reader = LineReader::new(stream);

    // Flood the router, SIGKILLing a shard part-way through while the
    // fleet still holds accepted-but-unanswered jobs. The victim is
    // the shard that has routed the most traffic so far: the flood has
    // only four distinct schedule keys, and the ring hashes ephemeral
    // shard addresses, so a *fixed* victim can own none of them in a
    // given run — killing an idle shard would leave nothing to fail
    // over. The reader drains concurrently so responses never
    // back-pressure the flood.
    let jobs = flood_jobs();
    let mut seen: HashMap<u64, usize> = HashMap::new();
    let mut victim = usize::MAX;
    std::thread::scope(|scope| {
        let collector = scope.spawn(|| {
            let mut seen = HashMap::new();
            collect(&mut reader, FLOOD, &mut seen);
            seen
        });
        for (i, spec) in jobs.iter().enumerate() {
            if i == KILL_AFTER {
                // Wait (bounded) until the router has visibly routed a
                // chunk of the backlog, but not so long that the
                // single-worker victim *executes* its share — draining
                // it would leave nothing in flight to fail over.
                let routed = |addr: &SocketAddr| {
                    let snapshot = recorder.registry().expect("recorder enabled").snapshot();
                    let addr = addr.to_string();
                    snapshot
                        .counters
                        .iter()
                        .filter(|s| {
                            s.id.name == "drift_router_requests_routed_total"
                                && s.id.labels.iter().any(|(k, v)| k == "shard" && *v == addr)
                        })
                        .map(|s| s.value)
                        .sum::<u64>()
                };
                let deadline = Instant::now() + Duration::from_secs(10);
                victim = loop {
                    let busiest = (0..shard_addrs.len())
                        .max_by_key(|&i| routed(&shard_addrs[i]))
                        .expect("at least one shard");
                    let dispatched = routed(&shard_addrs[busiest]);
                    if dispatched >= 20 || (dispatched > 0 && Instant::now() >= deadline) {
                        break busiest;
                    }
                    assert!(
                        Instant::now() < deadline,
                        "router routed nothing within 10s"
                    );
                    std::thread::sleep(Duration::from_millis(2));
                };
                children[victim].kill().expect("SIGKILL the busiest shard");
                children[victim].wait().expect("reap the killed shard");
            }
            let line = request_line(spec, None);
            writer.write_all(line.as_bytes()).expect("send request");
            writer.write_all(b"\n").expect("send newline");
        }
        seen = collector.join().expect("collector thread");
    });

    // Exactly-once: every job answered, no duplicates, no errors
    // (errors already rejected inside `collect`).
    assert_eq!(seen.len(), FLOOD, "some jobs were never answered");
    for spec in &jobs {
        assert_eq!(
            seen.get(&spec.id),
            Some(&1),
            "job {} was answered {:?} times",
            spec.id,
            seen.get(&spec.id)
        );
    }
    assert!(
        counter(&recorder, "drift_router_shard_ejections_total") >= 1,
        "the dead shard was never ejected"
    );
    assert!(
        counter(&recorder, "drift_router_failovers_total") >= 1,
        "no orphaned or refused job was failed over"
    );

    // Bring a replacement gateway up on the SAME address; the router's
    // probe must re-admit the shard.
    let (child, _) = respawn_gateway(&dir, "gw-replacement.port", shard_addrs[victim]);
    children.push(child);
    let deadline = Instant::now() + Duration::from_secs(20);
    while counter(&recorder, "drift_router_shard_readmissions_total") == 0 {
        assert!(
            Instant::now() < deadline,
            "replacement shard was never re-admitted"
        );
        std::thread::sleep(Duration::from_millis(50));
    }

    // The re-admitted shard serves again: a fresh batch completes.
    for spec in flood_jobs().iter().take(30) {
        let spec = JobSpec {
            id: spec.id + 10_000,
            ..spec.clone()
        };
        let line = request_line(&spec, None);
        writer.write_all(line.as_bytes()).expect("send request");
        writer.write_all(b"\n").expect("send newline");
    }
    let mut after: HashMap<u64, usize> = HashMap::new();
    collect(&mut reader, 30, &mut after);
    assert_eq!(after.len(), 30);
    assert!(after.keys().all(|id| *id >= 10_000));

    let summary = router.shutdown();
    assert_eq!(summary.accepted, (FLOOD + 30) as u64);
    assert!(summary.ejections >= 1);
    assert!(summary.readmissions >= 1);

    for mut child in children {
        let _ = child.kill();
        let _ = child.wait();
    }
    let _ = std::fs::remove_dir_all(&dir);
}
