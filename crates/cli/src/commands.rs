//! The CLI subcommands.

use crate::{opt_parse, opt_str};
use drift_accel::accelerator::Accelerator;
use drift_accel::area::{bitfusion_area, drift_area, AreaModel};
use drift_accel::bitfusion::{paper_geometry, BitFusion};
use drift_accel::drq::DrqAccelerator;
use drift_accel::eyeriss::Eyeriss;
use drift_accel::gemm::{GemmShape, GemmWorkload};
use drift_accel::memory::BufferSet;
use drift_core::accelerator::DriftAccelerator;
use drift_core::schedule::{balanced_schedule, oracle_lower_bound};
use drift_core::selector::DriftPolicy;
use drift_nn::datagen::TokenProfile;
use drift_nn::lower::{lower, model_low_fraction, model_workloads};
use drift_nn::zoo::{self, ModelDesc, ModelFamily};
use drift_quant::policy::run_policy;
use drift_quant::Precision;
use drift_tensor::subtensor::SubTensorScheme;
use std::collections::HashMap;

type Opts = HashMap<String, String>;

/// `drift models`
pub fn models() -> Result<(), String> {
    println!(
        "{:<11} {:<6} {:>6} {:>9} {:>9}",
        "model", "family", "gemms", "GMACs", "seq"
    );
    for desc in zoo::hardware_eval_models()
        .into_iter()
        .chain(zoo::llm_models())
    {
        let ops = lower(&desc).map_err(|e| e.to_string())?;
        let macs: u64 = ops.iter().map(|o| o.shape.macs() * o.repeat).sum();
        let family = match desc.family {
            ModelFamily::Cnn => "cnn",
            ModelFamily::Vit => "vit",
            ModelFamily::Bert => "bert",
            ModelFamily::Llm => "llm",
        };
        println!(
            "{:<11} {:<6} {:>6} {:>9.2} {:>9}",
            desc.name,
            family,
            ops.len(),
            macs as f64 / 1e9,
            desc.seq
        );
    }
    Ok(())
}

/// `drift select`
pub fn select(opts: &Opts) -> Result<(), String> {
    let tokens: usize = opt_parse(opts, "tokens", 64)?;
    let hidden: usize = opt_parse(opts, "hidden", 256)?;
    let delta: f64 = opt_parse(opts, "delta", 0.3)?;
    let seed: u64 = opt_parse(opts, "seed", 7)?;
    let profile = match opt_str(opts, "profile", "bert") {
        "cnn" => TokenProfile::cnn(),
        "vit" => TokenProfile::vit(),
        "bert" => TokenProfile::bert(),
        "llm" => TokenProfile::llm(),
        other => return Err(format!("unknown profile '{other}'")),
    };
    let data = profile
        .generate(tokens, hidden, seed)
        .map_err(|e| e.to_string())?;
    let policy = DriftPolicy::new(delta).map_err(|e| e.to_string())?;
    let run = run_policy(
        &data,
        &SubTensorScheme::token(hidden),
        Precision::INT8,
        &policy,
    )
    .map_err(|e| e.to_string())?;

    println!(
        "selector on [{tokens} x {hidden}] ({} profile), δ = {delta}:",
        opt_str(opts, "profile", "bert")
    );
    println!(
        "  {} of {} tokens converted to INT4 ({:.1}% of elements)",
        run.low_subtensors(),
        run.decisions.len(),
        run.low_fraction() * 100.0
    );
    // Conversion-choice histogram.
    let mut by_hc = [0usize; 5];
    for d in &run.decisions {
        if let drift_quant::policy::Decision::Convert(c) = d.decision {
            by_hc[c.hc() as usize] += 1;
        }
    }
    for (hc, count) in by_hc.iter().enumerate() {
        if *count > 0 {
            println!("  (hc={hc}, lc={}): {count} tokens", 4 - hc);
        }
    }
    Ok(())
}

/// `drift schedule`
pub fn schedule(opts: &Opts) -> Result<(), String> {
    let m: usize = opt_parse(opts, "m", 512)?;
    let k: usize = opt_parse(opts, "k", 768)?;
    let n: usize = opt_parse(opts, "n", 768)?;
    let fa: f64 = opt_parse(opts, "fa", 0.2)?;
    let fw: f64 = opt_parse(opts, "fw", 0.1)?;
    let shape = GemmShape::new(m, k, n).map_err(|e| e.to_string())?;
    let ah = (m as f64 * fa.clamp(0.0, 1.0)) as usize;
    let wh = (n as f64 * fw.clamp(0.0, 1.0)) as usize;
    let w = GemmWorkload::new(
        "cli",
        shape,
        (0..m).map(|i| i < ah).collect(),
        (0..n).map(|j| j < wh).collect(),
    )
    .map_err(|e| e.to_string())?;
    let quads = w.quadrants();
    let s = balanced_schedule(paper_geometry(), &quads).map_err(|e| e.to_string())?;
    println!("GEMM {shape}, act-high {fa:.2}, weight-high {fw:.2}:");
    let labels = ["hh", "hl", "lh", "ll"];
    for (i, geo) in s.partition.geometries().iter().enumerate() {
        match geo {
            Some(g) => println!(
                "  {}: {:>2} x {:>2} BGs, {:>9} cycles",
                labels[i], g.rows, g.cols, s.latencies[i]
            ),
            None => println!("  {}: (empty)", labels[i]),
        }
    }
    println!(
        "  makespan {} cycles ({:.2}x the perfect-balance bound)",
        s.makespan,
        s.makespan as f64 / oracle_lower_bound(paper_geometry(), &quads)
    );
    Ok(())
}

/// `drift simulate`
pub fn simulate(opts: &Opts) -> Result<(), String> {
    let model_name = opt_str(opts, "model", "BERT");
    let accel_name = opt_str(opts, "accel", "drift");
    let seed: u64 = opt_parse(opts, "seed", 42)?;
    let desc: ModelDesc = zoo::hardware_eval_models()
        .into_iter()
        .chain(zoo::llm_models())
        .find(|d| d.name.eq_ignore_ascii_case(model_name))
        .ok_or_else(|| format!("unknown model '{model_name}' (try `drift models`)"))?;
    let delta: f64 = opt_parse(opts, "delta", default_delta(desc.family))?;
    let policy = DriftPolicy::new(delta).map_err(|e| e.to_string())?;
    let workloads = model_workloads(&desc, &policy, seed).map_err(|e| e.to_string())?;
    println!(
        "{} on {}: δ = {delta}, 4-bit share {:.1}%",
        accel_name,
        desc.name,
        model_low_fraction(&workloads) * 100.0
    );

    let mut total = 0u64;
    let mut trace = drift_accel::trace::TraceRecorder::new();
    let execute = |w: &GemmWorkload,
                   uniform: &GemmWorkload|
     -> Result<drift_accel::accelerator::ExecReport, String> {
        let report = match accel_name {
            "drift" => DriftAccelerator::paper_config()
                .map_err(|e| e.to_string())?
                .execute(w),
            "bitfusion" => BitFusion::int8()
                .map_err(|e| e.to_string())?
                .execute(uniform),
            "drq" => DrqAccelerator::paper_config()
                .map_err(|e| e.to_string())?
                .execute(w),
            "eyeriss" => Eyeriss::paper_config()
                .map_err(|e| e.to_string())?
                .execute(uniform),
            other => return Err(format!("unknown accelerator '{other}'")),
        }
        .map_err(|e| e.to_string())?;
        Ok(report)
    };
    println!(
        "{:<24} {:>16} {:>6} {:>12}",
        "layer", "shape", "rep", "cycles"
    );
    for (op, w) in &workloads {
        let uniform = GemmWorkload::uniform(op.name.clone(), op.shape, false);
        let report = execute(w, &uniform)?;
        println!(
            "{:<24} {:>16} {:>6} {:>12}",
            op.name,
            op.shape.to_string(),
            op.repeat,
            report.cycles * op.repeat
        );
        total += report.cycles * op.repeat;
        trace.record(report);
    }
    println!("{:<24} {:>16} {:>6} {:>12}", "total", "", "", total);
    if let Some(path) = opts.get("trace") {
        std::fs::write(path, trace.to_json()?).map_err(|e| format!("cannot write {path}: {e}"))?;
        println!(
            "trace: {} layers ({} DRAM-bound) written to {path}",
            trace.events().len(),
            trace.dram_bound_layers()
        );
    }
    Ok(())
}

/// The `--metrics-addr` / `--metrics-out` wiring `serve` and `gateway`
/// share. Observability is opt-in: either flag enables the recorder;
/// the default path runs with the no-op recorder (bit-identical
/// results either way, see docs/OBSERVABILITY.md).
struct MetricsWiring {
    recorder: drift_obs::Recorder,
    server: Option<drift_obs::http::MetricsServer>,
    out: Option<String>,
}

fn metrics_wiring(opts: &Opts) -> Result<MetricsWiring, String> {
    let metrics_addr = opts.get("metrics-addr");
    let out = opts.get("metrics-out").cloned();
    let recorder = if metrics_addr.is_some() || out.is_some() {
        drift_obs::Recorder::enabled()
    } else {
        drift_obs::Recorder::disabled()
    };
    let server = match metrics_addr {
        Some(addr) => {
            let registry = recorder.registry().expect("recorder enabled above");
            let server =
                drift_obs::http::MetricsServer::start(addr, std::sync::Arc::clone(registry))
                    .map_err(|e| format!("cannot bind metrics server on {addr}: {e}"))?;
            eprintln!("metrics: http://{}/metrics", server.local_addr());
            Some(server)
        }
        None => None,
    };
    Ok(MetricsWiring {
        recorder,
        server,
        out,
    })
}

/// The `--trace-out` / `--trace-sample` / `--trace-seed` wiring
/// `serve`, `gateway`, and `router` share. Tracing is opt-in:
/// `--trace-out FILE` enables the JSONL span sink; without it the
/// disabled tracer is returned and behaviour (results, wire bytes) is
/// bit-identical to a tracing-free run (docs/OBSERVABILITY.md).
fn trace_wiring(
    opts: &Opts,
    service: &str,
    recorder: &drift_obs::Recorder,
) -> Result<drift_obs::Tracer, String> {
    let Some(path) = opts.get("trace-out") else {
        if opts.contains_key("trace-sample") || opts.contains_key("trace-seed") {
            return Err("--trace-sample/--trace-seed need --trace-out FILE".to_string());
        }
        return Ok(drift_obs::Tracer::disabled());
    };
    let sample_every = parse_trace_sample(opt_str(opts, "trace-sample", "1/1"))?;
    let seed: u64 = opt_parse(opts, "trace-seed", 0u64)?;
    let tracer = drift_obs::Tracer::to_file(
        std::path::Path::new(path),
        service,
        sample_every,
        seed,
        recorder.clone(),
    )
    .map_err(|e| format!("cannot open trace sink {path}: {e}"))?;
    eprintln!("trace: {service} spans to {path} (sample 1/{sample_every}, seed {seed})");
    Ok(tracer)
}

/// Parses `--trace-sample`: `1/N` (the documented spelling) or a bare
/// `N` both mean "sample 1 in N requests at the ingress edge".
fn parse_trace_sample(raw: &str) -> Result<u64, String> {
    let every: u64 = raw
        .strip_prefix("1/")
        .unwrap_or(raw)
        .parse()
        .map_err(|_| format!("--trace-sample: expected 1/N or N, got '{raw}'"))?;
    if every == 0 {
        return Err("--trace-sample: N must be at least 1".to_string());
    }
    Ok(every)
}

impl MetricsWiring {
    /// Writes the `--metrics-out` snapshot (if requested) and stops the
    /// metrics server.
    fn finish(self) -> Result<(), String> {
        if let (Some(path), Some(registry)) = (&self.out, self.recorder.registry()) {
            std::fs::write(path, registry.snapshot().to_json())
                .map_err(|e| format!("cannot write {path}: {e}"))?;
            eprintln!("metrics: snapshot written to {path} (render with `drift report {path}`)");
        }
        drop(self.server);
        Ok(())
    }
}

/// `drift serve`
pub fn serve(opts: &Opts) -> Result<(), String> {
    use std::io::Write;

    let workers: usize = opt_parse(opts, "workers", 4)?;
    let queue_depth: usize = opt_parse(opts, "queue-depth", 256)?;
    let cache_capacity: usize = opt_parse(opts, "cache-capacity", 4096)?;
    let lenient: bool = opt_parse(opts, "lenient", false)?;
    let metrics = metrics_wiring(opts)?;

    let source = opt_str(opts, "jobs", "-");
    let read = |reader: &mut dyn std::io::BufRead| -> Result<Vec<drift_serve::JobSpec>, String> {
        if lenient {
            let ingest = drift_serve::read_jobs_lenient(reader, &metrics.recorder)?;
            for (line, err) in &ingest.skipped {
                eprintln!("serve: skipped malformed line {line}: {err}");
            }
            if !ingest.skipped.is_empty() {
                eprintln!(
                    "serve: {} malformed line(s) skipped (counted in drift_serve_jobs_rejected_total)",
                    ingest.skipped.len()
                );
            }
            Ok(ingest.jobs)
        } else {
            drift_serve::read_jobs(reader)
        }
    };
    let jobs = if source == "-" {
        read(&mut std::io::stdin().lock())?
    } else {
        let file = std::fs::File::open(source).map_err(|e| format!("cannot open {source}: {e}"))?;
        read(&mut std::io::BufReader::new(file)).map_err(|e| format!("{source}: {e}"))?
    };
    if jobs.is_empty() {
        return Err("no jobs in the input stream".to_string());
    }

    let config = drift_serve::ServeConfig {
        workers,
        queue_depth,
        cache_capacity,
        queue: opt_parse(opts, "queue", drift_serve::QueuePolicy::Fifo)?,
        ..drift_serve::ServeConfig::default()
    };
    let tracer = trace_wiring(opts, "serve", &metrics.recorder)?;
    // With --store the cache is warm-started from the persistent log
    // before the run and newly solved schedules flow back into it;
    // results are byte-identical either way (docs/PERSISTENCE.md).
    let outcome = match opts.get("store") {
        None => drift_serve::serve_traced(jobs, &config, metrics.recorder.clone(), tracer.clone()),
        Some(store) => {
            let cache = drift_serve::ScheduleCache::with_recorder(
                config.cache_capacity.max(1),
                config.cache_shards.max(1),
                metrics.recorder.clone(),
            );
            let (report, binding) = drift_serve::open_and_preload(
                std::path::Path::new(store),
                &cache,
                metrics.recorder.clone(),
            )
            .map_err(|e| format!("cannot open store {store}: {e}"))?;
            eprintln!(
                "store: {} schedule(s) loaded from {store}{}",
                report.entries.len(),
                if report.skipped > 0 {
                    format!(" ({} corrupt record(s) skipped)", report.skipped)
                } else {
                    String::new()
                }
            );
            let outcome = drift_serve::serve_on_cache(
                jobs,
                &config,
                metrics.recorder.clone(),
                tracer.clone(),
                &cache,
            );
            let records = binding
                .finish(&cache)
                .map_err(|e| format!("cannot flush store {store}: {e}"))?;
            eprintln!("store: {records} record(s) now in {store}");
            outcome
        }
    };
    tracer.close();

    // Results as JSONL on stdout; the report goes to stderr so the
    // stream stays pipeable.
    let stdout = std::io::stdout();
    let mut out = std::io::BufWriter::new(stdout.lock());
    for result in &outcome.results {
        writeln!(out, "{}", drift_serve::job::result_line(result))
            .map_err(|e| format!("cannot write results: {e}"))?;
    }
    out.flush()
        .map_err(|e| format!("cannot write results: {e}"))?;
    eprint!("{}", outcome.report.render());

    metrics.finish()
}

/// Writes `addr` to `path` atomically: a temp file in the same
/// directory, flushed, then renamed over the target. Scripts polling
/// the port file therefore never observe a partially written address.
fn write_port_file(path: &str, addr: std::net::SocketAddr) -> Result<(), String> {
    use std::io::Write;

    let target = std::path::Path::new(path);
    let dir = target.parent().filter(|p| !p.as_os_str().is_empty());
    let tmp = dir
        .unwrap_or_else(|| std::path::Path::new("."))
        .join(format!(
            ".{}.tmp-{}",
            target
                .file_name()
                .and_then(|n| n.to_str())
                .unwrap_or("port"),
            std::process::id()
        ));
    let write = || -> std::io::Result<()> {
        let mut file = std::fs::File::create(&tmp)?;
        file.write_all(addr.to_string().as_bytes())?;
        file.sync_all()?;
        std::fs::rename(&tmp, target)
    };
    write().map_err(|e| {
        let _ = std::fs::remove_file(&tmp);
        format!("cannot write {path}: {e}")
    })
}

/// `drift gateway`
pub fn gateway(opts: &Opts) -> Result<(), String> {
    let addr = opt_str(opts, "addr", "127.0.0.1:7077");
    let config = drift_gateway::GatewayConfig {
        workers: opt_parse(opts, "workers", 4)?,
        queue_depth: opt_parse(opts, "queue-depth", 256)?,
        cache_capacity: opt_parse(opts, "cache-capacity", 4096)?,
        default_deadline_ms: opt_parse(opts, "deadline-ms", 0u64)?,
        idle_timeout_ms: opt_parse(opts, "idle-timeout-ms", 30_000u64)?,
        queue: opt_parse(opts, "queue", drift_serve::QueuePolicy::Fifo)?,
        ..drift_gateway::GatewayConfig::default()
    };
    let metrics = metrics_wiring(opts)?;
    let tracer = trace_wiring(opts, "gateway", &metrics.recorder)?;

    let gw = match opts.get("store") {
        None => drift_gateway::Gateway::start_traced(
            addr,
            config,
            metrics.recorder.clone(),
            tracer.clone(),
        ),
        Some(store) => drift_gateway::Gateway::start_persistent(
            addr,
            config,
            metrics.recorder.clone(),
            tracer.clone(),
            std::path::Path::new(store),
        ),
    }
    .map_err(|e| format!("cannot bind gateway on {addr}: {e}"))?;
    if let Some(store) = opts.get("store") {
        eprintln!("store: schedule cache backed by {store} (docs/PERSISTENCE.md)");
    }
    eprintln!(
        "gateway: listening on {} ({} workers, queue depth {}, {} queue); \
         stop with `drift gateway-stop --addr {}`",
        gw.local_addr(),
        config.workers,
        config.queue_depth,
        config.queue,
        gw.local_addr()
    );
    if let Some(path) = opts.get("port-file") {
        // Written after bind so a script can wait on the file to learn
        // the port chosen by `--addr host:0`.
        write_port_file(path, gw.local_addr())?;
    }

    // No signal handling within the dependency budget: the drain
    // request arrives over the wire as {"control":"shutdown"}.
    while !gw.draining() {
        std::thread::sleep(std::time::Duration::from_millis(100));
    }
    let summary = gw.shutdown();
    eprintln!("{}", summary.render());
    tracer.close();
    metrics.finish()
}

/// `drift loadgen`
pub fn loadgen(opts: &Opts) -> Result<(), String> {
    use std::io::Write;

    let addr = opt_str(opts, "addr", "127.0.0.1:7077");
    let deadline_ms: u64 = opt_parse(opts, "deadline-ms", 0u64)?;
    let jitter_ms: u64 = opt_parse(opts, "deadline-jitter-ms", 0u64)?;
    let open_loop: f64 = opt_parse(opts, "open-loop", 0.0f64)?;
    let burst_ms: u64 = opt_parse(opts, "burst-ms", 0u64)?;
    let config = drift_gateway::LoadGenConfig {
        clients: opt_parse(opts, "clients", 4)?,
        jobs: opt_parse(opts, "jobs", 200)?,
        shapes: opt_parse(opts, "shapes", 4)?,
        seed: opt_parse(opts, "seed", 42u64)?,
        deadline_ms: (deadline_ms > 0).then_some(deadline_ms),
        deadline_jitter_ms: (jitter_ms > 0).then_some(jitter_ms),
        open_loop_rps: (open_loop > 0.0).then_some(open_loop),
        burst_ms: (burst_ms > 0).then_some(burst_ms),
        retry: drift_gateway::RetryPolicy::default(),
        connect_per_request: opt_parse(opts, "connect-per-request", false)?,
        batch: opt_parse::<usize>(opts, "batch", 1)?.max(1),
        schedule_only: opt_parse(opts, "schedule-only", false)?,
    };
    let report = drift_gateway::loadgen::run(addr, &config)?;

    // Results as JSONL on stdout (pipeable, like `drift serve`); the
    // measurement summary goes to stderr.
    let stdout = std::io::stdout();
    let mut out = std::io::BufWriter::new(stdout.lock());
    for result in &report.results {
        writeln!(out, "{}", drift_serve::job::result_line(result))
            .map_err(|e| format!("cannot write results: {e}"))?;
    }
    out.flush()
        .map_err(|e| format!("cannot write results: {e}"))?;
    eprintln!("{}", report.render());
    if opt_parse(opts, "json", false)? {
        // Machine-readable summary as the final stdout line, after the
        // per-result JSONL stream (distinguishable by its "jobs" key).
        println!("{}", report.json_line());
    }
    report.verify_complete()
}

/// `drift gateway-stop`
pub fn gateway_stop(opts: &Opts) -> Result<(), String> {
    let addr = opt_str(opts, "addr", "127.0.0.1:7077");
    let mut client = drift_gateway::Client::connect(addr)
        .map_err(|e| format!("cannot connect to gateway at {addr}: {e}"))?;
    if client.shutdown_server()? {
        eprintln!("gateway at {addr} acknowledged the drain");
        Ok(())
    } else {
        Err(format!("gateway at {addr} refused the shutdown"))
    }
}

/// `drift router`
pub fn router(opts: &Opts) -> Result<(), String> {
    let addr = opt_str(opts, "addr", "127.0.0.1:7177");
    let shards: Vec<String> = opts
        .get("shards")
        .ok_or("router needs --shards addr1,addr2,... (backend gateway addresses)")?
        .split(',')
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .collect();
    let config = drift_router::RouterConfig {
        vnodes: opt_parse(opts, "vnodes", 64usize)?,
        max_hops: opt_parse(opts, "max-hops", 3u32)?,
        probe_interval_ms: opt_parse(opts, "probe-interval-ms", 500u64)?,
        connect_timeout_ms: opt_parse(opts, "connect-timeout-ms", 500u64)?,
        idle_timeout_ms: opt_parse(opts, "idle-timeout-ms", 30_000u64)?,
    };
    let metrics = metrics_wiring(opts)?;
    let tracer = trace_wiring(opts, "router", &metrics.recorder)?;

    let router = drift_router::Router::start_traced(
        addr,
        &shards,
        config,
        metrics.recorder.clone(),
        tracer.clone(),
    )
    .map_err(|e| format!("cannot start router on {addr}: {e}"))?;
    eprintln!(
        "router: listening on {} over {} shard(s) [{}] ({} vnodes/shard); \
         stop with `drift router-stop --addr {}`",
        router.local_addr(),
        shards.len(),
        shards.join(", "),
        config.vnodes,
        router.local_addr()
    );
    if let Some(path) = opts.get("port-file") {
        write_port_file(path, router.local_addr())?;
    }

    // As with the gateway: no signal handling, the drain request
    // arrives over the wire as {"control":"shutdown"}.
    while !router.draining() {
        std::thread::sleep(std::time::Duration::from_millis(100));
    }
    let summary = router.shutdown();
    eprintln!("{}", summary.render());
    tracer.close();
    metrics.finish()
}

/// `drift router-stop`
pub fn router_stop(opts: &Opts) -> Result<(), String> {
    let addr = opt_str(opts, "addr", "127.0.0.1:7177");
    let mut client = drift_gateway::Client::connect(addr)
        .map_err(|e| format!("cannot connect to router at {addr}: {e}"))?;
    if client.shutdown_server()? {
        eprintln!("router at {addr} acknowledged the drain");
        Ok(())
    } else {
        Err(format!("router at {addr} refused the shutdown"))
    }
}

/// `drift store` — inspect / verify / compact / merge persistent
/// schedule stores (docs/PERSISTENCE.md). Positional like `report`:
/// `drift store verify sched.drift [--deep]`.
pub fn store(args: &[String]) -> Result<(), String> {
    const USAGE: &str =
        "usage: drift store inspect|verify|compact FILE [--deep] | merge OUT IN1 [IN2...]";
    let Some((op, rest)) = args.split_first() else {
        return Err(USAGE.to_string());
    };
    let path_arg = |rest: &[String]| -> Result<std::path::PathBuf, String> {
        match rest.iter().find(|a| !a.starts_with("--")) {
            Some(p) => Ok(std::path::PathBuf::from(p)),
            None => Err(USAGE.to_string()),
        }
    };
    match op.as_str() {
        "inspect" => {
            let path = path_arg(rest)?;
            let report = drift_store::load(&path).map_err(|e| e.to_string())?;
            println!("store {}:", path.display());
            println!(
                "  format:      v1 ({} bytes/entry)",
                drift_core::schedule::ENTRY_BYTES
            );
            println!(
                "  size:        {} bytes ({} valid)",
                report.bytes, report.valid_len
            );
            println!("  records:     {}", report.records);
            println!(
                "  entries:     {} distinct schedule key(s)",
                drift_store::dedup_last_wins(report.entries).len()
            );
            println!("  skipped:     {} corrupt record(s)", report.skipped);
            if report.truncated_tail {
                println!(
                    "  tail:        torn write truncated at byte {} (a crash mid-append;",
                    report.valid_len
                );
                println!("               the next writer will trim it)");
            }
            Ok(())
        }
        "verify" => {
            let path = path_arg(rest)?;
            let deep = rest.iter().any(|a| a == "--deep");
            let report = drift_store::verify(&path, deep).map_err(|e| e.to_string())?;
            println!(
                "store {}: OK — {} record(s), {} distinct key(s), {} bytes{}",
                path.display(),
                report.records,
                report.unique_keys,
                report.bytes,
                match report.resolved {
                    Some(n) => format!(", {n} schedule(s) re-solved and matched"),
                    None => String::new(),
                }
            );
            Ok(())
        }
        "compact" => {
            let path = path_arg(rest)?;
            let (before, after) = drift_store::compact(&path).map_err(|e| e.to_string())?;
            println!(
                "store {}: compacted {before} -> {after} record(s)",
                path.display()
            );
            Ok(())
        }
        "merge" => {
            let paths: Vec<std::path::PathBuf> = rest
                .iter()
                .filter(|a| !a.starts_with("--"))
                .map(std::path::PathBuf::from)
                .collect();
            let Some((out, inputs)) = paths.split_first() else {
                return Err(USAGE.to_string());
            };
            if inputs.is_empty() {
                return Err(USAGE.to_string());
            }
            let records = drift_store::merge(inputs, out).map_err(|e| e.to_string())?;
            println!(
                "store {}: {} record(s) merged from {} input(s)",
                out.display(),
                records,
                inputs.len()
            );
            Ok(())
        }
        other => Err(format!("unknown store operation '{other}'\n{USAGE}")),
    }
}

/// `drift report` — renders a `--metrics-out` JSON snapshot as the
/// human table (counters with units, histogram quantiles, stage tree).
pub fn report(args: &[String]) -> Result<(), String> {
    let [path] = args else {
        return Err("usage: drift report FILE|-".to_string());
    };
    let text = if path == "-" {
        use std::io::Read;
        let mut buf = String::new();
        std::io::stdin()
            .read_to_string(&mut buf)
            .map_err(|e| format!("cannot read stdin: {e}"))?;
        buf
    } else {
        std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?
    };
    print!("{}", parse_snapshot(&text)?.render_table());
    Ok(())
}

/// Parses the `Snapshot::to_json` schema back into a [`Snapshot`].
///
/// Lives here rather than in `drift-obs` so the obs crate stays
/// dependency-free; the CLI already carries `serde_json`.
fn parse_snapshot(text: &str) -> Result<drift_obs::Snapshot, String> {
    use drift_obs::export::{HistogramSample, Sample, StageSample};
    use drift_obs::registry::MetricId;
    use serde_json::Value;

    fn v_str(v: &Value) -> Option<&str> {
        match v {
            Value::Str(s) => Some(s.as_str()),
            _ => None,
        }
    }
    fn v_u64(v: &Value) -> Option<u64> {
        match v {
            Value::U64(n) => Some(*n),
            Value::I64(n) => u64::try_from(*n).ok(),
            _ => None,
        }
    }
    fn v_i64(v: &Value) -> Option<i64> {
        match v {
            Value::I64(n) => Some(*n),
            Value::U64(n) => i64::try_from(*n).ok(),
            _ => None,
        }
    }
    fn v_f64(v: &Value) -> Option<f64> {
        match v {
            Value::F64(x) => Some(*x),
            Value::I64(n) => Some(*n as f64),
            Value::U64(n) => Some(*n as f64),
            _ => None,
        }
    }

    let root: Value =
        serde_json::from_str(text).map_err(|e| format!("invalid metrics JSON: {e}"))?;
    let section = |name: &str| -> Vec<Value> {
        root.get(name)
            .and_then(Value::as_seq)
            .map(<[Value]>::to_vec)
            .unwrap_or_default()
    };
    let id_of = |entry: &Value| -> Result<MetricId, String> {
        let name = entry
            .get("name")
            .and_then(v_str)
            .ok_or("metric sample missing \"name\"")?;
        let labels: Vec<(&str, &str)> = entry
            .get("labels")
            .and_then(Value::as_map)
            .map(|m| {
                m.iter()
                    .filter_map(|(k, v)| v_str(v).map(|v| (k.as_str(), v)))
                    .collect()
            })
            .unwrap_or_default();
        Ok(MetricId::new(name, &labels))
    };
    let u64s = |entry: &Value, field: &str| -> Vec<u64> {
        entry
            .get(field)
            .and_then(Value::as_seq)
            .map(|a| a.iter().filter_map(v_u64).collect())
            .unwrap_or_default()
    };

    let mut snapshot = drift_obs::Snapshot::default();
    for entry in section("counters") {
        snapshot.counters.push(Sample {
            id: id_of(&entry)?,
            value: entry.get("value").and_then(v_u64).unwrap_or(0),
        });
    }
    for entry in section("fcounters") {
        snapshot.fcounters.push(Sample {
            id: id_of(&entry)?,
            value: entry.get("value").and_then(v_f64).unwrap_or(0.0),
        });
    }
    for entry in section("gauges") {
        snapshot.gauges.push(Sample {
            id: id_of(&entry)?,
            value: entry.get("value").and_then(v_i64).unwrap_or(0),
        });
    }
    for entry in section("histograms") {
        snapshot.histograms.push(HistogramSample {
            id: id_of(&entry)?,
            bounds: u64s(&entry, "bounds"),
            counts: u64s(&entry, "counts"),
            sum: entry.get("sum").and_then(v_u64).unwrap_or(0),
        });
    }
    for entry in section("stages") {
        snapshot.stages.push(StageSample {
            stage: entry
                .get("stage")
                .and_then(v_str)
                .ok_or("stage sample missing \"stage\"")?
                .to_string(),
            calls: entry.get("calls").and_then(v_u64).unwrap_or(0),
            wall_ns: entry.get("wall_ns").and_then(v_u64).unwrap_or(0),
            sim_cycles: entry.get("sim_cycles").and_then(v_u64).unwrap_or(0),
        });
    }
    Ok(snapshot)
}

/// `drift bench-serve`
pub fn bench_serve(opts: &Opts) -> Result<(), String> {
    let count: usize = opt_parse(opts, "jobs", 1000)?;
    let shapes: usize = opt_parse(opts, "shapes", 4)?;
    let seed: u64 = opt_parse(opts, "seed", 42)?;
    let worker_counts: Vec<usize> = opt_str(opts, "workers", "1,2,4,8")
        .split(',')
        .map(|w| {
            w.trim()
                .parse::<usize>()
                .map_err(|_| format!("--workers: cannot parse '{w}'"))
        })
        .collect::<Result<_, _>>()?;

    println!("bench-serve: {count} jobs over {shapes} shapes (seed {seed})");
    println!(
        "{:>7} {:>10} {:>10} {:>9} {:>9} {:>10}",
        "workers", "wall(ms)", "jobs/s", "p50(us)", "p99(us)", "hit-rate"
    );
    let mut baseline = None;
    for &workers in &worker_counts {
        let jobs = drift_serve::synthetic_jobs(count, shapes, seed);
        let outcome = drift_serve::serve(jobs, &drift_serve::ServeConfig::with_workers(workers));
        if outcome.report.errors > 0 {
            return Err(format!("{} jobs failed", outcome.report.errors));
        }
        // Worst worker percentiles stand in for the pool's tail.
        let p50 = outcome
            .report
            .workers
            .iter()
            .map(|w| w.p50_us)
            .fold(0.0f64, f64::max);
        let p99 = outcome
            .report
            .workers
            .iter()
            .map(|w| w.p99_us)
            .fold(0.0f64, f64::max);
        let speedup = match baseline {
            None => {
                baseline = Some(outcome.report.jobs_per_sec);
                String::new()
            }
            Some(base) => format!("  ({:.2}x)", outcome.report.jobs_per_sec / base),
        };
        println!(
            "{:>7} {:>10.1} {:>10.0} {:>9.0} {:>9.0} {:>9.1}%{}",
            workers,
            outcome.report.wall.as_secs_f64() * 1e3,
            outcome.report.jobs_per_sec,
            p50,
            p99,
            outcome.report.cache.hit_rate() * 100.0,
            speedup,
        );
    }
    Ok(())
}

/// `drift area`
pub fn area() -> Result<(), String> {
    let model = AreaModel::default();
    let buffers = BufferSet::drift_default();
    let drift = drift_area(&model, paper_geometry(), &buffers);
    let bitfusion = bitfusion_area(&model, paper_geometry(), &buffers);
    println!("40 nm-class area model (mm²):");
    println!("  fabric (792 BGs):      {:>7.3}", drift.fabric_mm2);
    println!("  bidirectional links:   {:>7.3}", drift.links_mm2);
    println!("  global+weight buffers: {:>7.3}", drift.buffers_mm2);
    println!("  index buffer:          {:>7.3}", drift.index_mm2);
    println!("  controller:            {:>7.3}", drift.controller_mm2);
    println!("  drift total:           {:>7.3}", drift.total_mm2());
    println!("  bitfusion-class total: {:>7.3}", bitfusion.total_mm2());
    println!(
        "dynamic-precision support = {:.1}% of the die",
        drift.dynamic_precision_overhead() * 100.0
    );
    Ok(())
}

fn default_delta(family: ModelFamily) -> f64 {
    match family {
        ModelFamily::Cnn => 0.055,
        ModelFamily::Vit => 0.045,
        ModelFamily::Bert => 0.027,
        ModelFamily::Llm => 0.006,
    }
}
