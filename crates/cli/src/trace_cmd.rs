//! `drift trace` — merge per-tier JSONL span files and reconstruct
//! request timelines.
//!
//! Each serving process writes its own spans (`--trace-out FILE`, see
//! docs/OBSERVABILITY.md); this command joins them by trace id and
//! reports:
//!
//! * per-stage duration percentiles (`svc.stage` keyed),
//! * a critical-path breakdown (exclusive time — each span's duration
//!   minus its children's — aggregated across traces),
//! * the top-K slowest traces as hop-by-hop waterfalls,
//! * orphaned spans (a recorded parent id missing from the trace),
//!   which indicate broken or partial instrumentation and fail the
//!   command unless `--allow-orphans` is passed.
//!
//! The `--check-*` flags turn the report into an assertion suite for
//! smoke tests: `--check-services` and `--check-hops` must hold for
//! *every* trace, `--expect-traces` pins the distinct-trace count.

use drift_serve::stats::percentile_ns;
use serde_json::Value;
use std::collections::{HashMap, HashSet};

/// One parsed span line from a `--trace-out` file.
#[derive(Debug, Clone)]
struct Span {
    span: String,
    parent: Option<String>,
    svc: String,
    stage: String,
    start_us: u64,
    dur_us: u64,
    job: Option<u64>,
    attrs: Vec<(String, String)>,
}

impl Span {
    /// The `svc.stage` key the report aggregates on.
    fn hop(&self) -> String {
        format!("{}.{}", self.svc, self.stage)
    }
}

/// Parsed command line for `drift trace`.
struct TraceArgs {
    files: Vec<String>,
    top: usize,
    check_services: Vec<String>,
    check_hops: Vec<String>,
    expect_traces: Option<usize>,
    allow_orphans: bool,
}

fn parse_args(args: &[String]) -> Result<TraceArgs, String> {
    let mut parsed = TraceArgs {
        files: Vec::new(),
        top: 3,
        check_services: Vec::new(),
        check_hops: Vec::new(),
        expect_traces: None,
        allow_orphans: false,
    };
    let mut iter = args.iter();
    let list = |raw: &str| -> Vec<String> {
        raw.split(',')
            .map(|s| s.trim().to_string())
            .filter(|s| !s.is_empty())
            .collect()
    };
    while let Some(arg) = iter.next() {
        let mut value = |flag: &str| -> Result<String, String> {
            iter.next()
                .cloned()
                .ok_or_else(|| format!("{flag} needs a value"))
        };
        match arg.as_str() {
            "--top" => {
                parsed.top = value("--top")?
                    .parse()
                    .map_err(|_| "--top: expected a count".to_string())?;
            }
            "--check-services" => parsed.check_services = list(&value("--check-services")?),
            "--check-hops" => parsed.check_hops = list(&value("--check-hops")?),
            "--expect-traces" => {
                parsed.expect_traces = Some(
                    value("--expect-traces")?
                        .parse()
                        .map_err(|_| "--expect-traces: expected a count".to_string())?,
                );
            }
            "--allow-orphans" => parsed.allow_orphans = true,
            other if other.starts_with("--") => {
                return Err(format!("unknown option '{other}' for drift trace"));
            }
            file => parsed.files.push(file.to_string()),
        }
    }
    if parsed.files.is_empty() {
        return Err(
            "usage: drift trace FILE... [--top K] [--check-services S1,S2] \
             [--check-hops svc.stage,...] [--expect-traces N] [--allow-orphans]"
                .to_string(),
        );
    }
    Ok(parsed)
}

fn v_str(value: &Value) -> Option<&str> {
    match value {
        Value::Str(s) => Some(s.as_str()),
        _ => None,
    }
}

fn v_u64(value: &Value) -> Option<u64> {
    match value {
        Value::U64(n) => Some(*n),
        Value::I64(n) => u64::try_from(*n).ok(),
        _ => None,
    }
}

/// Parses one JSONL span line (the `render_span` schema in
/// `drift-obs`). Returns the owning trace id with the span.
fn parse_span(line: &str) -> Result<(String, Span), String> {
    let value: Value = serde_json::from_str(line).map_err(|e| format!("invalid span: {e}"))?;
    let field = |key: &str| -> Result<String, String> {
        value
            .get(key)
            .and_then(v_str)
            .map(str::to_string)
            .ok_or_else(|| format!("span missing \"{key}\""))
    };
    let trace = field("trace")?;
    let span = Span {
        span: field("span")?,
        parent: value.get("parent").and_then(v_str).map(str::to_string),
        svc: field("svc")?,
        stage: field("stage")?,
        start_us: value
            .get("start_us")
            .and_then(v_u64)
            .ok_or("span missing \"start_us\"")?,
        dur_us: value
            .get("dur_us")
            .and_then(v_u64)
            .ok_or("span missing \"dur_us\"")?,
        job: value.get("job").and_then(v_u64),
        attrs: value
            .get("attrs")
            .and_then(Value::as_map)
            .map(|m| {
                m.iter()
                    .filter_map(|(k, v)| v_str(v).map(|v| (k.clone(), v.to_string())))
                    .collect()
            })
            .unwrap_or_default(),
    };
    Ok((trace, span))
}

/// Renders one trace as an indented hop-by-hop waterfall, spans sorted
/// by start time within each parent.
fn waterfall(out: &mut String, spans: &[Span], base_us: u64) {
    let mut children: HashMap<Option<&str>, Vec<&Span>> = HashMap::new();
    let ids: HashSet<&str> = spans.iter().map(|s| s.span.as_str()).collect();
    for span in spans {
        // Orphans (recorded parent absent) render as roots so they
        // still show up in the picture they broke.
        let parent = span.parent.as_deref().filter(|p| ids.contains(p)).map(|p| {
            // Borrow the canonical &str owned by `spans`.
            spans
                .iter()
                .find(|s| s.span == p)
                .map(|s| s.span.as_str())
                .expect("id in set")
        });
        children.entry(parent).or_default().push(span);
    }
    for list in children.values_mut() {
        list.sort_by_key(|s| (s.start_us, s.span.clone()));
    }
    fn walk(
        out: &mut String,
        children: &HashMap<Option<&str>, Vec<&Span>>,
        parent: Option<&str>,
        depth: usize,
        base_us: u64,
    ) {
        let Some(list) = children.get(&parent) else {
            return;
        };
        for span in list {
            let attrs = if span.attrs.is_empty() {
                String::new()
            } else {
                let joined: Vec<String> =
                    span.attrs.iter().map(|(k, v)| format!("{k}={v}")).collect();
                format!("  ({})", joined.join(", "))
            };
            out.push_str(&format!(
                "  {:>9} µs  {}{:<28} {:>9} µs{}\n",
                span.start_us.saturating_sub(base_us),
                "  ".repeat(depth),
                span.hop(),
                span.dur_us,
                attrs,
            ));
            walk(out, children, Some(span.span.as_str()), depth + 1, base_us);
        }
    }
    walk(out, &children, None, 0, base_us);
}

/// `drift trace FILE...` — see the module docs.
pub fn trace(args: &[String]) -> Result<(), String> {
    let args = parse_args(args)?;
    let mut traces: HashMap<String, Vec<Span>> = HashMap::new();
    let mut total_spans = 0usize;
    for path in &args.files {
        let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
        for (number, line) in text.lines().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            let (trace_id, span) =
                parse_span(line).map_err(|e| format!("{path}:{}: {e}", number + 1))?;
            traces.entry(trace_id).or_default().push(span);
            total_spans += 1;
        }
    }
    println!(
        "trace: {} trace(s), {} span(s) across {} file(s)",
        traces.len(),
        total_spans,
        args.files.len()
    );

    // Orphans: a span whose recorded parent id is not in its trace.
    let mut orphans = 0usize;
    for spans in traces.values() {
        let ids: HashSet<&str> = spans.iter().map(|s| s.span.as_str()).collect();
        orphans += spans
            .iter()
            .filter(|s| s.parent.as_deref().is_some_and(|p| !ids.contains(p)))
            .count();
    }
    println!("orphaned spans: {orphans}");

    // Per-stage percentiles over every span of that svc.stage.
    let mut by_hop: HashMap<String, Vec<u64>> = HashMap::new();
    for spans in traces.values() {
        for span in spans {
            by_hop.entry(span.hop()).or_default().push(span.dur_us);
        }
    }
    let mut hops: Vec<(&String, &mut Vec<u64>)> = by_hop.iter_mut().collect();
    hops.sort_by(|a, b| a.0.cmp(b.0));
    println!();
    println!(
        "{:<28} {:>7} {:>10} {:>10}",
        "stage", "count", "p50(µs)", "p99(µs)"
    );
    for (hop, durations) in &mut hops {
        durations.sort_unstable();
        println!(
            "{:<28} {:>7} {:>10} {:>10}",
            hop,
            durations.len(),
            percentile_ns(durations, 50.0),
            percentile_ns(durations, 99.0),
        );
    }

    // Critical-path breakdown: each span's exclusive time (duration
    // minus the time covered by its children) aggregated per hop —
    // where the end-to-end latency is actually spent.
    let mut exclusive: HashMap<String, u64> = HashMap::new();
    for spans in traces.values() {
        for span in spans {
            let child_us: u64 = spans
                .iter()
                .filter(|c| c.parent.as_deref() == Some(span.span.as_str()))
                .map(|c| c.dur_us)
                .sum();
            *exclusive.entry(span.hop()).or_default() += span.dur_us.saturating_sub(child_us);
        }
    }
    let grand: u64 = exclusive.values().sum();
    let mut shares: Vec<(&String, &u64)> = exclusive.iter().collect();
    shares.sort_by(|a, b| b.1.cmp(a.1).then(a.0.cmp(b.0)));
    println!();
    println!("critical path (exclusive time):");
    for (hop, us) in shares {
        println!(
            "  {:<28} {:>9} µs  {:>5.1}%",
            hop,
            us,
            if grand > 0 {
                *us as f64 * 100.0 / grand as f64
            } else {
                0.0
            }
        );
    }

    // Top-K slowest traces, by whole-trace wall span.
    let mut ordered: Vec<(&String, &Vec<Span>, u64, u64)> = traces
        .iter()
        .map(|(id, spans)| {
            let base = spans.iter().map(|s| s.start_us).min().unwrap_or(0);
            let end = spans
                .iter()
                .map(|s| s.start_us + s.dur_us)
                .max()
                .unwrap_or(0);
            (id, spans, base, end.saturating_sub(base))
        })
        .collect();
    ordered.sort_by(|a, b| b.3.cmp(&a.3).then(a.0.cmp(b.0)));
    for (id, spans, base, wall) in ordered.iter().take(args.top) {
        let job = spans
            .iter()
            .find_map(|s| s.job)
            .map(|j| format!(", job {j}"))
            .unwrap_or_default();
        println!();
        println!("trace {id} ({wall} µs{job}):");
        let mut out = String::new();
        waterfall(&mut out, spans, *base);
        print!("{out}");
    }

    // Assertions for smoke tests.
    let mut failures: Vec<String> = Vec::new();
    if let Some(expected) = args.expect_traces {
        if traces.len() != expected {
            failures.push(format!(
                "expected {expected} trace(s), found {}",
                traces.len()
            ));
        }
    }
    for (id, spans) in &traces {
        let services: HashSet<&str> = spans.iter().map(|s| s.svc.as_str()).collect();
        for service in &args.check_services {
            if !services.contains(service.as_str()) {
                failures.push(format!("trace {id} has no span from service '{service}'"));
            }
        }
        let present: HashSet<String> = spans.iter().map(Span::hop).collect();
        for hop in &args.check_hops {
            if !present.contains(hop) {
                failures.push(format!("trace {id} is missing hop '{hop}'"));
            }
        }
    }
    if orphans > 0 && !args.allow_orphans {
        failures.push(format!(
            "{orphans} orphaned span(s); pass --allow-orphans when analysing partial files"
        ));
    }
    if failures.is_empty() {
        Ok(())
    } else {
        Err(failures.join("; "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_span_schema() {
        let (trace, span) = parse_span(
            "{\"trace\":\"00000000000000000000000000000001\",\"span\":\"00000000000000aa\",\
             \"parent\":\"00000000000000bb\",\"svc\":\"gateway\",\"stage\":\"queue_wait\",\
             \"start_us\":100,\"dur_us\":40,\"job\":7,\"attrs\":{\"outcome\":\"ok\"}}",
        )
        .unwrap();
        assert_eq!(trace, "00000000000000000000000000000001");
        assert_eq!(span.hop(), "gateway.queue_wait");
        assert_eq!(span.parent.as_deref(), Some("00000000000000bb"));
        assert_eq!((span.start_us, span.dur_us, span.job), (100, 40, Some(7)));
        assert_eq!(span.attrs, vec![("outcome".to_string(), "ok".to_string())]);
    }

    #[test]
    fn rejects_spans_missing_required_fields() {
        assert!(parse_span("{\"span\":\"00000000000000aa\"}").is_err());
        assert!(parse_span("not json").is_err());
    }

    #[test]
    fn waterfall_orders_children_under_parents() {
        let spans = vec![
            Span {
                span: "b".into(),
                parent: Some("a".into()),
                svc: "gateway".into(),
                stage: "queue_wait".into(),
                start_us: 110,
                dur_us: 10,
                job: None,
                attrs: Vec::new(),
            },
            Span {
                span: "a".into(),
                parent: None,
                svc: "gateway".into(),
                stage: "request".into(),
                start_us: 100,
                dur_us: 50,
                job: Some(1),
                attrs: Vec::new(),
            },
        ];
        let mut out = String::new();
        waterfall(&mut out, &spans, 100);
        let request = out.find("gateway.request").expect("root rendered");
        let wait = out.find("gateway.queue_wait").expect("child rendered");
        assert!(request < wait, "parent must precede child:\n{out}");
    }
}
