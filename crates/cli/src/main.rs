//! `drift` — the command-line interface to the Drift reproduction.
//!
//! ```text
//! drift models                          list the model zoo
//! drift select  [--profile bert] [--tokens 64] [--hidden 256] [--delta 0.3] [--seed 7]
//! drift schedule [--m 512] [--k 768] [--n 768] [--fa 0.2] [--fw 0.1]
//! drift simulate [--model BERT] [--accel drift] [--delta 0.027] [--seed 42]
//! drift serve    [--jobs jobs.jsonl|-] [--workers 8] [--queue fifo|edf] [--lenient]
//!                [--store sched.drift] [--metrics-addr 127.0.0.1:9109] [--metrics-out run.json]
//! drift bench-serve [--jobs 1000] [--workers "1,2,4,8"]
//! drift gateway  [--addr 127.0.0.1:7077] [--workers 8] [--deadline-ms 250] [--queue edf]
//! drift router   --shards addr1,addr2,... [--addr 127.0.0.1:7177] [--vnodes 64]
//! drift loadgen  [--addr 127.0.0.1:7077] [--clients 4] [--jobs 200] [--open-loop 500]
//!                [--deadline-ms 50] [--deadline-jitter-ms 50]
//! drift gateway-stop [--addr 127.0.0.1:7077]
//! drift router-stop  [--addr 127.0.0.1:7177]
//! drift store    inspect|verify|compact sched.drift | merge out.drift in1 in2...
//! drift report   run.json
//! drift trace    router.jsonl gw0.jsonl gw1.jsonl [--top 3]
//! drift area
//! ```
//!
//! Argument parsing is hand-rolled (`--key value` pairs) to stay within
//! the workspace's dependency budget.

mod commands;
mod trace_cmd;

use std::collections::HashMap;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((command, rest)) = args.split_first() else {
        eprintln!("{}", usage());
        return ExitCode::FAILURE;
    };
    // `report`, `trace`, and `store` take positional file paths, not
    // pure `--key value` pairs.
    let result = if command == "report" {
        commands::report(rest)
    } else if command == "trace" {
        trace_cmd::trace(rest)
    } else if command == "store" {
        commands::store(rest)
    } else {
        let opts = match parse_opts(rest) {
            Ok(opts) => opts,
            Err(e) => {
                eprintln!("error: {e}");
                eprintln!("{}", usage());
                return ExitCode::FAILURE;
            }
        };
        match command.as_str() {
            "models" => commands::models(),
            "select" => commands::select(&opts),
            "schedule" => commands::schedule(&opts),
            "simulate" => commands::simulate(&opts),
            "serve" => commands::serve(&opts),
            "bench-serve" => commands::bench_serve(&opts),
            "gateway" => commands::gateway(&opts),
            "router" => commands::router(&opts),
            "loadgen" => commands::loadgen(&opts),
            "gateway-stop" => commands::gateway_stop(&opts),
            "router-stop" => commands::router_stop(&opts),
            "area" => commands::area(),
            "help" | "--help" | "-h" => {
                println!("{}", usage());
                Ok(())
            }
            other => Err(format!("unknown command '{other}'")),
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn usage() -> String {
    "drift — dynamic precision quantization & accelerator simulation\n\
     \n\
     commands:\n\
     \x20 models                         list the model zoo with GEMM counts and MACs\n\
     \x20 select   [--profile cnn|vit|bert|llm] [--tokens N] [--hidden K]\n\
     \x20          [--delta D] [--seed S]      run the Drift selector on synthetic data\n\
     \x20 schedule [--m M] [--k K] [--n N] [--fa F] [--fw F]\n\
     \x20                                 balance the fabric for a precision mix (Eq. 8)\n\
     \x20 simulate [--model NAME] [--accel drift|bitfusion|drq|eyeriss]\n\
     \x20          [--delta D] [--seed S] per-layer cycles for a zoo model\n\
     \x20          [--trace FILE]         write the per-layer trace as JSON\n\
     \x20 serve    [--jobs FILE|-] [--workers N] [--queue-depth Q]\n\
     \x20          [--cache-capacity C]   run a JSONL job stream on a worker pool;\n\
     \x20                                 results to stdout, report to stderr\n\
     \x20          [--queue fifo|edf]     queue discipline (docs/SCHEDULING.md)\n\
     \x20          [--lenient]            skip malformed job lines instead of aborting\n\
     \x20          [--store FILE]         warm-start the schedule cache from a persistent\n\
     \x20                                 store, appending new schedules (docs/PERSISTENCE.md)\n\
     \x20          [--metrics-addr A]     serve Prometheus text on http://A/metrics\n\
     \x20          [--metrics-out FILE]   write the final metrics snapshot as JSON\n\
     \x20 bench-serve [--jobs N] [--shapes S] [--workers \"1,2,4,8\"] [--seed S]\n\
     \x20                                 throughput of the serve runtime per worker count\n\
     \x20 gateway  [--addr A] [--workers N] [--queue-depth Q] [--deadline-ms D]\n\
     \x20          [--idle-timeout-ms T]  serve jobs over TCP (newline-delimited JSON,\n\
     \x20                                 see docs/SERVING.md); drains on\n\
     \x20                                 {\"control\":\"shutdown\"}\n\
     \x20          [--queue fifo|edf]     queue discipline (docs/SCHEDULING.md)\n\
     \x20          [--store FILE]         warm-start + persist schedules (docs/PERSISTENCE.md)\n\
     \x20          [--port-file FILE]     write the bound address (for --addr with port 0)\n\
     \x20          [--metrics-addr A] [--metrics-out FILE]   as for serve\n\
     \x20 router   --shards A1,A2,...    consistent-hash front tier over gateways\n\
     \x20          [--addr A] [--vnodes K] [--max-hops H] [--probe-interval-ms P]\n\
     \x20          [--connect-timeout-ms T] [--idle-timeout-ms T] [--port-file FILE]\n\
     \x20          [--metrics-addr A] [--metrics-out FILE]   as for serve; reshards\n\
     \x20                                 live on {\"control\":\"reshard\",...} (docs/SERVING.md)\n\
     \x20 loadgen  [--addr A] [--clients C] [--jobs N] [--shapes S] [--seed S]\n\
     \x20          [--deadline-ms D] [--deadline-jitter-ms J] [--open-loop RPS]\n\
     \x20          [--burst-ms W] [--connect-per-request] [--batch B]\n\
     \x20          [--schedule-only]      small-job stream (cache-hit Schedule jobs)\n\
     \x20                                 drive a gateway; throughput + p50/p99 +\n\
     \x20                                 deadline-met rate on stderr\n\
     \x20          [--json]               append a machine-readable summary JSON line\n\
     \x20                                 to stdout after the results\n\
     \x20 gateway-stop [--addr A]        ask a gateway to drain and exit\n\
     \x20 router-stop  [--addr A]        ask a router to drain and exit\n\
     \x20 store    inspect FILE          header, record count, and load health of a store\n\
     \x20          verify FILE [--deep]  strict checksum walk (--deep re-solves every entry)\n\
     \x20          compact FILE          rewrite to one record per key (last wins)\n\
     \x20          merge OUT IN...       combine stores; later inputs win on key clashes\n\
     \x20 report   FILE|-                render a --metrics-out JSON snapshot as a table\n\
     \x20 trace    FILE...               merge --trace-out span files by trace id:\n\
     \x20          [--top K]             timelines, per-stage p50/p99, critical path,\n\
     \x20          [--check-services S1,S2] [--check-hops svc.stage,...]\n\
     \x20          [--expect-traces N] [--allow-orphans]   smoke-test assertions\n\
     \x20 area                           the 40 nm area breakdown\n\
     \n\
     serve, gateway, and router also accept distributed-tracing flags\n\
     (docs/OBSERVABILITY.md):\n\
     \x20 --trace-out FILE               append spans as JSONL to FILE\n\
     \x20 --trace-sample 1/N             head-sample 1 in N requests at the ingress\n\
     \x20                                edge (downstream tiers honor the decision)\n\
     \x20 --trace-seed S                 make the sampled trace-id set reproducible"
        .to_string()
}

/// Parses `--key value` pairs. A `--flag` followed by another option
/// (or by nothing) is a boolean flag and stored as `"true"`, so
/// value-less switches like `--lenient` parse without a sentinel.
fn parse_opts(args: &[String]) -> Result<HashMap<String, String>, String> {
    let mut opts = HashMap::new();
    let mut iter = args.iter().peekable();
    while let Some(key) = iter.next() {
        let Some(name) = key.strip_prefix("--") else {
            return Err(format!("expected --option, got '{key}'"));
        };
        let value = match iter.peek() {
            Some(next) if !next.starts_with("--") => iter.next().expect("peeked").clone(),
            _ => "true".to_string(),
        };
        opts.insert(name.to_string(), value);
    }
    Ok(opts)
}

pub(crate) fn opt_parse<T: std::str::FromStr>(
    opts: &HashMap<String, String>,
    key: &str,
    default: T,
) -> Result<T, String> {
    match opts.get(key) {
        None => Ok(default),
        Some(raw) => raw
            .parse()
            .map_err(|_| format!("--{key}: cannot parse '{raw}'")),
    }
}

pub(crate) fn opt_str<'a>(
    opts: &'a HashMap<String, String>,
    key: &str,
    default: &'a str,
) -> &'a str {
    opts.get(key).map(String::as_str).unwrap_or(default)
}
