//! A banked row-buffer DRAM simulator.
//!
//! Stand-in for DRAMsim3 (paper Section 5.1): models channels, banks,
//! row-buffer hits/misses, burst timing, and per-access energy. All
//! timings are in accelerator cycles at the paper's 500 MHz clock.
//!
//! Accuracy goal: capture the two effects the paper uses DRAMsim3 for —
//! (1) the latency of streaming weights/activations (sequential traffic
//! is row-buffer friendly; the effective bandwidth gates layer latency
//! under double buffering), and (2) DRAM access energy, the dominant
//! dynamic-energy term of Fig. 8.

use crate::{AccelError, Result};
use serde::{Deserialize, Serialize};

/// DRAM organisation and timing/energy parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DramConfig {
    /// Independent channels (transfers proceed in parallel).
    pub channels: usize,
    /// Banks per channel (each with one open row).
    pub banks_per_channel: usize,
    /// Row size in bytes.
    pub row_bytes: u64,
    /// Burst (minimum transfer) size in bytes.
    pub burst_bytes: u64,
    /// RAS-to-CAS delay in cycles (row activation).
    pub t_rcd: u64,
    /// Row precharge in cycles.
    pub t_rp: u64,
    /// CAS latency in cycles.
    pub t_cl: u64,
    /// Data transfer cycles per burst.
    pub t_burst: u64,
    /// Energy per row activation, in pJ.
    pub e_activate_pj: f64,
    /// Read energy per byte, in pJ.
    pub e_read_pj_per_byte: f64,
    /// Write energy per byte, in pJ.
    pub e_write_pj_per_byte: f64,
}

impl Default for DramConfig {
    /// A 4-channel LPDDR-class part at accelerator clock: 64 B bursts,
    /// 2 KiB rows, ~32 GB/s peak at 500 MHz, ~15 pJ/byte.
    fn default() -> Self {
        DramConfig {
            channels: 4,
            banks_per_channel: 8,
            row_bytes: 2048,
            burst_bytes: 64,
            t_rcd: 14,
            t_rp: 14,
            t_cl: 14,
            t_burst: 4,
            e_activate_pj: 1500.0,
            e_read_pj_per_byte: 15.0,
            e_write_pj_per_byte: 15.0,
        }
    }
}

impl DramConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`AccelError::InvalidConfig`] when a structural parameter
    /// is zero or the burst exceeds the row.
    pub fn validate(&self) -> Result<()> {
        if self.channels == 0 || self.banks_per_channel == 0 {
            return Err(AccelError::InvalidConfig {
                name: "dram",
                detail: "channels and banks must be positive".to_string(),
            });
        }
        if self.burst_bytes == 0 || self.row_bytes == 0 || self.burst_bytes > self.row_bytes {
            return Err(AccelError::InvalidConfig {
                name: "dram",
                detail: format!(
                    "need 0 < burst ({}) <= row ({})",
                    self.burst_bytes, self.row_bytes
                ),
            });
        }
        Ok(())
    }

    /// Peak bandwidth in bytes per cycle (all channels busy, row hits).
    pub fn peak_bytes_per_cycle(&self) -> f64 {
        self.channels as f64 * self.burst_bytes as f64 / self.t_burst as f64
    }
}

/// Cumulative DRAM statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct DramStats {
    /// Bytes read.
    pub read_bytes: u64,
    /// Bytes written.
    pub write_bytes: u64,
    /// Row-buffer hits (bursts served from an open row).
    pub row_hits: u64,
    /// Row-buffer misses (bursts requiring precharge + activate).
    pub row_misses: u64,
    /// Total energy in pJ.
    pub energy_pj: f64,
}

impl DramStats {
    /// Row-buffer hit rate (0 when no traffic).
    pub fn hit_rate(&self) -> f64 {
        let total = self.row_hits + self.row_misses;
        if total == 0 {
            0.0
        } else {
            self.row_hits as f64 / total as f64
        }
    }

    /// Total bytes moved.
    pub fn total_bytes(&self) -> u64 {
        self.read_bytes + self.write_bytes
    }
}

/// A stateful DRAM simulator.
///
/// # Example
///
/// ```rust
/// use drift_accel::dram::{DramConfig, DramSim};
///
/// # fn main() -> Result<(), drift_accel::AccelError> {
/// let mut dram = DramSim::new(DramConfig::default())?;
/// // Sequential streams are row-buffer friendly:
/// let cycles = dram.stream(0, 1 << 20, false);
/// assert!(dram.stats().hit_rate() > 0.9);
/// assert!(cycles > 0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct DramSim {
    config: DramConfig,
    /// Open row per (channel, bank); `None` when closed.
    open_rows: Vec<Option<u64>>,
    /// Per-channel busy time accumulated by the current stream call.
    stats: DramStats,
    next_alloc: u64,
}

impl DramSim {
    /// Creates a simulator with all rows closed.
    ///
    /// # Errors
    ///
    /// Propagates [`DramConfig::validate`].
    pub fn new(config: DramConfig) -> Result<Self> {
        config.validate()?;
        Ok(DramSim {
            config,
            open_rows: vec![None; config.channels * config.banks_per_channel],
            stats: DramStats::default(),
            next_alloc: 0,
        })
    }

    /// The configuration.
    pub fn config(&self) -> &DramConfig {
        &self.config
    }

    /// Cumulative statistics.
    pub fn stats(&self) -> DramStats {
        self.stats
    }

    /// Resets statistics (row state is kept).
    pub fn reset_stats(&mut self) {
        self.stats = DramStats::default();
    }

    /// Returns the simulator to its just-constructed state: all rows
    /// closed, statistics zeroed, allocator rewound. Subsequent
    /// transfers behave identically to those on a fresh simulator.
    pub fn reset(&mut self) {
        self.open_rows.iter_mut().for_each(|row| *row = None);
        self.stats = DramStats::default();
        self.next_alloc = 0;
    }

    /// Allocates a region of `bytes`, returning its base address.
    /// Regions are laid out back to back, row-aligned, so distinct
    /// tensors land in distinct rows.
    pub fn allocate(&mut self, bytes: u64) -> u64 {
        let base = self.next_alloc;
        let rows = bytes.div_ceil(self.config.row_bytes).max(1);
        self.next_alloc += rows * self.config.row_bytes;
        base
    }

    /// Transfers `bytes` sequentially starting at `addr` (read when
    /// `write` is false), returning the cycles the transfer occupies.
    ///
    /// Bursts are interleaved across channels; the returned latency is
    /// the maximum per-channel busy time for this stream (channels work
    /// in parallel).
    pub fn stream(&mut self, addr: u64, bytes: u64, write: bool) -> u64 {
        if bytes == 0 {
            return 0;
        }
        let cfg = self.config;
        let bursts = bytes.div_ceil(cfg.burst_bytes);
        let mut channel_busy = vec![0u64; cfg.channels];
        for b in 0..bursts {
            let burst_addr = addr + b * cfg.burst_bytes;
            // Address mapping (low → high bits): burst offset within a
            // row, channel, bank, row — so a sequential stream fills an
            // entire row in one bank before moving on (row-buffer
            // friendly), the behaviour real controllers choose for
            // streaming accelerators.
            let burst_index = burst_addr / cfg.burst_bytes;
            let channel = (burst_index % cfg.channels as u64) as usize;
            let per_channel = burst_index / cfg.channels as u64;
            let bursts_per_row = cfg.row_bytes / cfg.burst_bytes;
            let row_seq = per_channel / bursts_per_row;
            let bank = (row_seq % cfg.banks_per_channel as u64) as usize;
            let row = row_seq / cfg.banks_per_channel as u64;
            let slot = channel * cfg.banks_per_channel + bank;

            let cost = match self.open_rows[slot] {
                Some(open) if open == row => {
                    self.stats.row_hits += 1;
                    cfg.t_cl + cfg.t_burst
                }
                Some(_) => {
                    self.stats.row_misses += 1;
                    self.stats.energy_pj += cfg.e_activate_pj;
                    self.open_rows[slot] = Some(row);
                    cfg.t_rp + cfg.t_rcd + cfg.t_cl + cfg.t_burst
                }
                None => {
                    self.stats.row_misses += 1;
                    self.stats.energy_pj += cfg.e_activate_pj;
                    self.open_rows[slot] = Some(row);
                    cfg.t_rcd + cfg.t_cl + cfg.t_burst
                }
            };
            channel_busy[channel] += cost;
        }
        let per_byte = if write {
            cfg.e_write_pj_per_byte
        } else {
            cfg.e_read_pj_per_byte
        };
        self.stats.energy_pj += per_byte * bytes as f64;
        if write {
            self.stats.write_bytes += bytes;
        } else {
            self.stats.read_bytes += bytes;
        }
        channel_busy.into_iter().max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_validation() {
        assert!(DramConfig::default().validate().is_ok());
        let bad = DramConfig {
            channels: 0,
            ..Default::default()
        };
        assert!(bad.validate().is_err());
        let bad2 = DramConfig {
            burst_bytes: 4096,
            ..Default::default()
        };
        assert!(bad2.validate().is_err());
    }

    #[test]
    fn sequential_stream_is_row_friendly() {
        let mut dram = DramSim::new(DramConfig::default()).unwrap();
        dram.stream(0, 1 << 20, false);
        let s = dram.stats();
        assert!(s.hit_rate() > 0.9, "hit rate {}", s.hit_rate());
        assert_eq!(s.read_bytes, 1 << 20);
    }

    #[test]
    fn scattered_rows_miss() {
        let cfg = DramConfig::default();
        let mut dram = DramSim::new(cfg).unwrap();
        // Touch one burst in each of 64 different rows of the same bank:
        // stride by row_bytes * channels * banks to stay in bank 0.
        let stride = cfg.row_bytes * cfg.channels as u64 * cfg.banks_per_channel as u64;
        for i in 0..64 {
            dram.stream(i * stride, cfg.burst_bytes, false);
        }
        assert_eq!(dram.stats().row_misses, 64);
        assert_eq!(dram.stats().row_hits, 0);
    }

    #[test]
    fn latency_scales_with_bytes() {
        let mut dram = DramSim::new(DramConfig::default()).unwrap();
        let small = dram.stream(0, 4096, false);
        let mut dram2 = DramSim::new(DramConfig::default()).unwrap();
        let large = dram2.stream(0, 1 << 20, false);
        assert!(large > small * 100, "large {large} vs small {small}");
    }

    #[test]
    fn effective_bandwidth_near_peak_for_streams() {
        let cfg = DramConfig::default();
        let mut dram = DramSim::new(cfg).unwrap();
        let bytes = 8u64 << 20;
        let cycles = dram.stream(0, bytes, false);
        let bw = bytes as f64 / cycles as f64;
        let peak = cfg.peak_bytes_per_cycle();
        assert!(bw > peak * 0.15, "bandwidth {bw} vs peak {peak}");
        assert!(bw <= peak + 1e-9);
    }

    #[test]
    fn write_and_read_energy_tracked() {
        let mut dram = DramSim::new(DramConfig::default()).unwrap();
        dram.stream(0, 1024, true);
        let e1 = dram.stats().energy_pj;
        assert!(e1 > 0.0);
        dram.stream(1 << 16, 1024, false);
        assert!(dram.stats().energy_pj > e1);
        assert_eq!(dram.stats().write_bytes, 1024);
        assert_eq!(dram.stats().read_bytes, 1024);
    }

    #[test]
    fn allocate_is_row_aligned_and_disjoint() {
        let mut dram = DramSim::new(DramConfig::default()).unwrap();
        let a = dram.allocate(100);
        let b = dram.allocate(5000);
        let c = dram.allocate(1);
        assert_eq!(a % 2048, 0);
        assert_eq!(b % 2048, 0);
        assert!(b >= a + 2048);
        assert!(c >= b + 5000_u64.div_ceil(2048) * 2048 - 2048 + 2048);
    }

    #[test]
    fn zero_bytes_is_free() {
        let mut dram = DramSim::new(DramConfig::default()).unwrap();
        assert_eq!(dram.stream(0, 0, false), 0);
        assert_eq!(dram.stats().total_bytes(), 0);
    }

    #[test]
    fn reset_stats_keeps_rows_open() {
        let mut dram = DramSim::new(DramConfig::default()).unwrap();
        dram.stream(0, 64, false);
        dram.reset_stats();
        assert_eq!(dram.stats().total_bytes(), 0);
        // Re-touching the same row is now a hit.
        dram.stream(0, 64, false);
        assert_eq!(dram.stats().row_hits, 1);
        assert_eq!(dram.stats().row_misses, 0);
    }
}
