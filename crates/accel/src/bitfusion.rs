//! The BitFusion baseline: a precision-flexible systolic array whose
//! BitBricks are *spatially fused* into PEs before runtime.
//!
//! Paper Section 2.3: BitFusion supports many static precisions — fuse 4
//! BitBricks for a 4-bit PE, 16 for an 8-bit PE — but the fusion is
//! fixed before execution. Under *dynamic* precision, data wider than
//! the fused width must iterate temporally inside a PE, stalling the
//! systolic wavefront behind it (Figure 2). This model exposes both
//! behaviours:
//!
//! * fused at the workload's high precision, it executes everything
//!   stall-free but gains nothing from low-precision sub-tensors;
//! * fused at the low precision, every high-precision element costs
//!   `⌈pa/fa⌉·⌈pw/fw⌉` injection slots, and the stream simulator counts
//!   the stalls.

use crate::accelerator::{finish_report, Accelerator, ExecReport, MemorySubsystem};
use crate::energy::EnergyModel;
use crate::gemm::GemmWorkload;
use crate::systolic::{fused_occupancy, pass_count, simulate_stream, ArrayGeometry};
use crate::Result;
use drift_quant::precision::Precision;

/// The BitFusion accelerator model.
///
/// The paper's evaluation gives every BitGroup-class design 792 units; we
/// arrange them as 24×33.
#[derive(Debug)]
pub struct BitFusion {
    geometry: ArrayGeometry,
    fused_act: Precision,
    fused_weight: Precision,
    energy: EnergyModel,
    memory: MemorySubsystem,
}

/// The paper's unit budget for BitGroup-class accelerators.
pub const PAPER_UNITS: usize = 792;

/// The paper's array arrangement of those units.
pub fn paper_geometry() -> ArrayGeometry {
    ArrayGeometry::new(24, 33).expect("static geometry is valid")
}

impl BitFusion {
    /// BitFusion fused for static INT8 execution — the configuration the
    /// paper uses to run INT8 models in Figs. 7–8.
    ///
    /// # Errors
    ///
    /// Propagates memory-subsystem construction errors.
    pub fn int8() -> Result<Self> {
        BitFusion::fused(Precision::INT8, Precision::INT8)
    }

    /// BitFusion fused for static INT4 execution.
    ///
    /// # Errors
    ///
    /// Propagates memory-subsystem construction errors.
    pub fn int4() -> Result<Self> {
        BitFusion::fused(Precision::INT4, Precision::INT4)
    }

    /// BitFusion fused at an arbitrary (activation, weight) precision.
    ///
    /// # Errors
    ///
    /// Propagates memory-subsystem construction errors.
    pub fn fused(act: Precision, weight: Precision) -> Result<Self> {
        Ok(BitFusion {
            geometry: paper_geometry(),
            fused_act: act,
            fused_weight: weight,
            energy: EnergyModel::default(),
            memory: MemorySubsystem::new()?,
        })
    }

    /// The fused (activation, weight) precision.
    pub fn fusion(&self) -> (Precision, Precision) {
        (self.fused_act, self.fused_weight)
    }

    /// The array geometry.
    pub fn geometry(&self) -> ArrayGeometry {
        self.geometry
    }
}

impl Accelerator for BitFusion {
    fn name(&self) -> &str {
        "bitfusion"
    }

    fn units(&self) -> usize {
        self.geometry.units()
    }

    fn execute(&mut self, workload: &GemmWorkload) -> Result<ExecReport> {
        let shape = workload.shape();

        // Spatial fusion cannot exploit per-column weight variation:
        // the schedule is sized for the widest weight present.
        let pw_eff = (0..shape.n)
            .map(|j| workload.weight_precision(j))
            .max()
            .expect("N > 0");

        // Per-element injection occupancy against the fused widths.
        let occupancies: Vec<u32> = (0..shape.m)
            .map(|i| {
                fused_occupancy(
                    workload.act_precision(i),
                    pw_eff,
                    self.fused_act,
                    self.fused_weight,
                )
            })
            .collect();

        let passes = pass_count(
            shape,
            self.fused_act,
            pw_eff.max(self.fused_weight),
            self.geometry,
        );
        let report = simulate_stream(&occupancies, self.geometry, passes);

        // Activations re-read once per column-pass group.
        let n_pass = (u64::from(pw_eff.max(self.fused_weight).bits()) * shape.n as u64)
            .div_ceil(16 * self.geometry.cols as u64);
        let traffic = self.memory.workload_traffic(workload, n_pass.max(1));

        let core_pj = report.busy_bg_cycles as f64 * self.energy.e_bg_cycle_pj;
        Ok(finish_report(
            "bitfusion",
            workload,
            report.total_cycles,
            report.stall_cycles,
            report.busy_bg_cycles,
            core_pj,
            traffic,
            self.geometry.units(),
            self.energy.static_pj_per_unit_cycle,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gemm::GemmShape;
    use crate::systolic::analytical_cycles;

    #[test]
    fn int8_uniform_matches_eq7() {
        let shape = GemmShape::new(196, 768, 768).unwrap();
        let mut bf = BitFusion::int8().unwrap();
        let r = bf
            .execute(&GemmWorkload::uniform("u", shape, false))
            .unwrap();
        assert_eq!(
            r.compute_cycles,
            analytical_cycles(shape, Precision::INT8, Precision::INT8, paper_geometry())
        );
        assert_eq!(r.stall_cycles, 0);
    }

    #[test]
    fn int4_static_is_about_4x_faster_than_int8() {
        let shape = GemmShape::new(512, 1024, 1024).unwrap();
        let mut bf8 = BitFusion::int8().unwrap();
        let c8 = bf8
            .execute(&GemmWorkload::uniform("u8", shape, false))
            .unwrap()
            .compute_cycles;
        let mut bf4 = BitFusion::int4().unwrap();
        let c4 = bf4
            .execute(&GemmWorkload::uniform("u4", shape, true))
            .unwrap()
            .compute_cycles;
        let ratio = c8 as f64 / c4 as f64;
        assert!(ratio > 3.0 && ratio < 5.0, "ratio {ratio}");
    }

    #[test]
    fn dynamic_stream_on_low_fusion_stalls() {
        // Figure 2: a 4-bit-fused array fed a mixed 4/8-bit stream.
        let shape = GemmShape::new(256, 512, 512).unwrap();
        let act_high: Vec<bool> = (0..256).map(|i| i % 4 == 0).collect(); // 25% high
        let w = GemmWorkload::new("dyn", shape, act_high, vec![false; 512]).unwrap();
        let mut bf = BitFusion::int4().unwrap();
        let r = bf.execute(&w).unwrap();
        assert!(r.stall_cycles > 0);
        // Stalls per pass = number of high elements (each costs one
        // extra slot at occupancy 2).
        let passes = pass_count(shape, Precision::INT4, Precision::INT4, paper_geometry());
        assert_eq!(r.stall_cycles, 64 * passes);
    }

    #[test]
    fn high_fusion_never_stalls_but_never_gains() {
        let shape = GemmShape::new(128, 256, 256).unwrap();
        let act_high: Vec<bool> = (0..128).map(|i| i % 2 == 0).collect();
        let w = GemmWorkload::new("dyn", shape, act_high, vec![false; 256]).unwrap();
        let mut bf = BitFusion::int8().unwrap();
        let r = bf.execute(&w).unwrap();
        assert_eq!(r.stall_cycles, 0);
        // Same cycles as an all-high workload: no benefit from 4-bit rows.
        let mut bf2 = BitFusion::int8().unwrap();
        let all_high = GemmWorkload::uniform("hi", shape, false);
        let r2 = bf2.execute(&all_high).unwrap();
        assert_eq!(r.compute_cycles, r2.compute_cycles);
    }

    #[test]
    fn mixed_weights_size_schedule_for_widest() {
        let shape = GemmShape::new(64, 128, 128).unwrap();
        let mut weight_high = vec![false; 128];
        weight_high[0] = true; // a single 8-bit column forces 8-bit weight passes
        let w = GemmWorkload::new("w", shape, vec![false; 64], weight_high).unwrap();
        let mut bf = BitFusion::int4().unwrap();
        let r = bf.execute(&w).unwrap();
        let all_low = GemmWorkload::uniform("l", shape, true);
        let mut bf2 = BitFusion::int4().unwrap();
        let r2 = bf2.execute(&all_low).unwrap();
        assert!(r.compute_cycles > r2.compute_cycles);
    }

    #[test]
    fn units_match_paper() {
        let bf = BitFusion::int8().unwrap();
        assert_eq!(bf.units(), PAPER_UNITS);
        assert_eq!(bf.fusion(), (Precision::INT8, Precision::INT8));
    }
}
