//! Weight-stationary systolic-array timing models.
//!
//! Two models, cross-verified against each other (standing in for the
//! paper's RTL-vs-simulator cross-verification):
//!
//! 1. **Analytical** ([`analytical_cycles`]): paper Eq. 7. For a GEMM
//!    `(M, K, N)` at precisions `(pa, pw)` on an `R×C` BitGroup array:
//!
//!    ```text
//!    T_pre   = R
//!    T_exe   = M + R + C - 2
//!    T_total = (T_pre + T_exe) · ⌈pa·K / 4R⌉ · ⌈pw·N / 16C⌉
//!    ```
//!
//!    Each BitGroup is a 4×4 array of BitBricks, each multiplying 1
//!    activation bit by 4 weight bits per cycle, so an array row accepts
//!    `4R` activation bits per cycle and an array column holds `16C`
//!    weight bits — hence the repetition factors.
//!
//! 2. **Stream simulation** ([`simulate_stream`]): generalises `T_exe`
//!    to streams whose elements need more than one injection slot. When
//!    a statically-fused array meets a dynamically-precised stream
//!    (paper Section 2.3 / Figure 2), an element wider than the fused
//!    width occupies every PE it passes through for multiple cycles, so
//!    the whole wavefront behind it stalls. Element `i` with occupancy
//!    `c_i` makes `T_exe = Σc_i + R + C - 2`.
//!
//! Both collapse to the same numbers when every occupancy is 1; a
//! property test asserts this.

use crate::gemm::GemmShape;
use crate::{AccelError, Result};
use drift_quant::precision::Precision;
use serde::{Deserialize, Serialize};

/// Activation bit-lanes per BitGroup row (a BG row of 4 BitBricks
/// consumes 4 activation bits per cycle).
pub const BG_ACT_BIT_LANES: u64 = 4;

/// Weight bit-lanes per BitGroup column (a BG holds 4×4 BitBricks × 4
/// weight bits = 16 weight bits per column).
pub const BG_WEIGHT_BIT_LANES: u64 = 16;

/// Geometry of a systolic array, in BitGroup units.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ArrayGeometry {
    /// BitGroup rows.
    pub rows: usize,
    /// BitGroup columns.
    pub cols: usize,
}

impl ArrayGeometry {
    /// Creates a geometry.
    ///
    /// # Errors
    ///
    /// Returns [`AccelError::InvalidConfig`] if either extent is zero.
    pub fn new(rows: usize, cols: usize) -> Result<Self> {
        if rows == 0 || cols == 0 {
            return Err(AccelError::InvalidConfig {
                name: "array geometry",
                detail: format!("extents must be positive, got {rows}x{cols}"),
            });
        }
        Ok(ArrayGeometry { rows, cols })
    }

    /// Total BitGroups.
    pub fn units(&self) -> usize {
        self.rows * self.cols
    }
}

/// Number of repetitions of the array schedule a GEMM needs at the given
/// precisions (the two ceiling factors of paper Eq. 7).
pub fn pass_count(shape: GemmShape, pa: Precision, pw: Precision, geo: ArrayGeometry) -> u64 {
    let k_passes =
        (u64::from(pa.bits()) * shape.k as u64).div_ceil(BG_ACT_BIT_LANES * geo.rows as u64);
    let n_passes =
        (u64::from(pw.bits()) * shape.n as u64).div_ceil(BG_WEIGHT_BIT_LANES * geo.cols as u64);
    k_passes * n_passes
}

/// The analytical latency of paper Eq. 7 for a uniform-precision GEMM.
pub fn analytical_cycles(
    shape: GemmShape,
    pa: Precision,
    pw: Precision,
    geo: ArrayGeometry,
) -> u64 {
    let t_pre = geo.rows as u64;
    let t_exe = shape.m as u64 + geo.rows as u64 + geo.cols as u64 - 2;
    (t_pre + t_exe) * pass_count(shape, pa, pw, geo)
}

/// A latency report from the stream simulator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LatencyReport {
    /// Repetitions of the array schedule.
    pub passes: u64,
    /// Weight-preload cycles across all passes.
    pub preload_cycles: u64,
    /// Execution cycles across all passes (injection + drain).
    pub execute_cycles: u64,
    /// Total cycles.
    pub total_cycles: u64,
    /// Cycles lost to multi-cycle elements relative to an ideal
    /// single-cycle stream (the Figure-2 stalls).
    pub stall_cycles: u64,
    /// PE-busy cycles (BitGroup-cycles of real work), for core energy
    /// accounting.
    pub busy_bg_cycles: u64,
}

impl LatencyReport {
    /// A report of zero work (empty tile).
    pub fn empty() -> Self {
        LatencyReport {
            passes: 0,
            preload_cycles: 0,
            execute_cycles: 0,
            total_cycles: 0,
            stall_cycles: 0,
            busy_bg_cycles: 0,
        }
    }

    /// Fraction of total cycles in which the array does useful work
    /// (1.0 when there is no work is defined as 0).
    pub fn utilization(&self, geo: ArrayGeometry) -> f64 {
        if self.total_cycles == 0 {
            return 0.0;
        }
        self.busy_bg_cycles as f64 / (self.total_cycles as f64 * geo.units() as f64)
    }
}

/// Simulates one weight-stationary schedule over a stream of `M`
/// elements where element `i` occupies each PE for `occupancies[i]`
/// cycles, repeated for `passes` array repetitions.
///
/// The closed form is derived from the injection recurrence
/// `s_i = s_{i-1} + c_{i-1}` (an element cannot enter the array until
/// its predecessor releases the port): the last element starts at
/// `Σc - c_last`, holds its first PE for `c_last` cycles and needs
/// `R + C - 2` more to drain, giving `T_exe = Σc + R + C - 2`.
/// [`simulate_stream_stepped`] reproduces the same number by explicit
/// cycle stepping and is used to cross-verify in tests.
pub fn simulate_stream(occupancies: &[u32], geo: ArrayGeometry, passes: u64) -> LatencyReport {
    if occupancies.is_empty() || passes == 0 {
        return LatencyReport::empty();
    }
    let m = occupancies.len() as u64;
    let work: u64 = occupancies.iter().map(|&c| u64::from(c)).sum();
    let t_pre = geo.rows as u64;
    let t_exe = work + geo.rows as u64 + geo.cols as u64 - 2;
    let ideal_exe = m + geo.rows as u64 + geo.cols as u64 - 2;
    LatencyReport {
        passes,
        preload_cycles: t_pre * passes,
        execute_cycles: t_exe * passes,
        total_cycles: (t_pre + t_exe) * passes,
        stall_cycles: (t_exe - ideal_exe) * passes,
        busy_bg_cycles: work * geo.units() as u64 * passes,
    }
}

/// Cycle-stepped reference implementation of [`simulate_stream`] for one
/// pass: advances a clock cycle by cycle, tracking the injection port
/// and the drain wavefront explicitly. Quadratic in stream length; used
/// for cross-verification, not for production runs.
pub fn simulate_stream_stepped(occupancies: &[u32], geo: ArrayGeometry) -> u64 {
    if occupancies.is_empty() {
        return 0;
    }
    let mut clock: u64 = 0;
    // Weight preload, one row per cycle.
    for _ in 0..geo.rows {
        clock += 1;
    }
    // Injection: the port is held for c_i cycles per element; the
    // wavefront behind a multi-cycle element cannot advance.
    for &c in occupancies {
        for _ in 0..c {
            clock += 1;
        }
    }
    // Drain: the last element's contribution traverses the remaining
    // R-1 row hops and C-1 column hops.
    for _ in 0..(geo.rows - 1 + geo.cols - 1) {
        clock += 1;
    }
    clock
}

/// The per-element injection occupancy of a statically fused array
/// facing an element of precision `(pa, pw)` when the array is fused for
/// `(fa, fw)`: `⌈pa/fa⌉ · ⌈pw/fw⌉` temporal repetitions (the Section 2.3
/// stall mechanism — fusion is spatial and fixed before runtime, so
/// wider data must iterate in place).
pub fn fused_occupancy(pa: Precision, pw: Precision, fa: Precision, fw: Precision) -> u32 {
    let a = u32::from(pa.bits()).div_ceil(u32::from(fa.bits()));
    let w = u32::from(pw.bits()).div_ceil(u32::from(fw.bits()));
    a * w
}

#[cfg(test)]
mod tests {
    use super::*;

    fn geo(r: usize, c: usize) -> ArrayGeometry {
        ArrayGeometry::new(r, c).unwrap()
    }

    #[test]
    fn geometry_validation() {
        assert!(ArrayGeometry::new(0, 4).is_err());
        assert!(ArrayGeometry::new(4, 0).is_err());
        assert_eq!(geo(3, 5).units(), 15);
    }

    #[test]
    fn eq7_pass_count() {
        // pa=8, K=64, R=16: ceil(512/64) = 8; pw=8, N=32, C=8: ceil(256/128) = 2.
        let s = GemmShape::new(10, 64, 32).unwrap();
        assert_eq!(
            pass_count(s, Precision::INT8, Precision::INT8, geo(16, 8)),
            16
        );
        // Halving precision halves the factor.
        assert_eq!(
            pass_count(s, Precision::INT4, Precision::INT8, geo(16, 8)),
            8
        );
        assert_eq!(
            pass_count(s, Precision::INT4, Precision::INT4, geo(16, 8)),
            4
        );
    }

    #[test]
    fn eq7_total() {
        let s = GemmShape::new(100, 64, 32).unwrap();
        let g = geo(16, 8);
        // Per pass: T_pre = 16, T_exe = 100 + 16 + 8 - 2 = 122.
        let per_pass = 16 + 122;
        assert_eq!(
            analytical_cycles(s, Precision::INT8, Precision::INT8, g),
            per_pass * 16
        );
    }

    #[test]
    fn uniform_stream_matches_analytical() {
        let s = GemmShape::new(77, 48, 24).unwrap();
        let g = geo(12, 6);
        let passes = pass_count(s, Precision::INT8, Precision::INT8, g);
        let report = simulate_stream(&vec![1u32; s.m], g, passes);
        assert_eq!(
            report.total_cycles,
            analytical_cycles(s, Precision::INT8, Precision::INT8, g)
        );
        assert_eq!(report.stall_cycles, 0);
    }

    #[test]
    fn stepped_matches_closed_form() {
        let g = geo(5, 7);
        for occ in [
            vec![1u32; 20],
            vec![2u32; 20],
            vec![1, 2, 1, 2, 4, 1, 1, 2],
            vec![4],
            vec![1],
        ] {
            let closed = simulate_stream(&occ, g, 1);
            let stepped = simulate_stream_stepped(&occ, g);
            assert_eq!(
                closed.total_cycles, stepped,
                "mismatch for occupancies {occ:?}"
            );
        }
    }

    #[test]
    fn stalls_grow_with_high_fraction() {
        let g = geo(8, 8);
        let mut last_total = 0u64;
        for high in [0usize, 8, 16, 24, 32] {
            let occ: Vec<u32> = (0..32).map(|i| if i < high { 2 } else { 1 }).collect();
            let report = simulate_stream(&occ, g, 1);
            assert!(report.total_cycles > last_total);
            assert_eq!(report.stall_cycles, high as u64);
            last_total = report.total_cycles;
        }
    }

    #[test]
    fn fused_occupancy_matrix() {
        let i8 = Precision::INT8;
        let i4 = Precision::INT4;
        // Array fused for 4x4:
        assert_eq!(fused_occupancy(i4, i4, i4, i4), 1);
        assert_eq!(fused_occupancy(i8, i4, i4, i4), 2);
        assert_eq!(fused_occupancy(i4, i8, i4, i4), 2);
        assert_eq!(fused_occupancy(i8, i8, i4, i4), 4);
        // Array fused for 8x8 runs anything narrower in one slot:
        assert_eq!(fused_occupancy(i4, i4, i8, i8), 1);
        assert_eq!(fused_occupancy(i8, i8, i8, i8), 1);
    }

    #[test]
    fn empty_stream_is_empty_report() {
        let r = simulate_stream(&[], geo(4, 4), 3);
        assert_eq!(r, LatencyReport::empty());
        let r2 = simulate_stream(&[1, 1], geo(4, 4), 0);
        assert_eq!(r2, LatencyReport::empty());
    }

    #[test]
    fn utilization_bounded() {
        let g = geo(4, 4);
        let r = simulate_stream(&vec![1; 1000], g, 2);
        let u = r.utilization(g);
        assert!(u > 0.9 && u <= 1.0, "utilization {u}");
        assert_eq!(LatencyReport::empty().utilization(g), 0.0);
    }

    #[test]
    fn busy_cycles_scale_with_work() {
        let g = geo(2, 3);
        let a = simulate_stream(&[1; 10], g, 1);
        let b = simulate_stream(&[2; 10], g, 1);
        assert_eq!(b.busy_bg_cycles, 2 * a.busy_bg_cycles);
    }
}
