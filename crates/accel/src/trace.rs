//! Execution tracing: a serialisable per-layer event timeline.
//!
//! The figure binaries print aggregates; downstream users debugging a
//! mapping want the per-layer story — which side (compute or DRAM)
//! bound each layer, how the stalls distribute, where energy went. A
//! [`TraceRecorder`] collects [`ExecReport`]s into an ordered timeline
//! that serialises to JSON for external tooling.

use crate::accelerator::ExecReport;
use serde::{Deserialize, Serialize};

/// One timeline entry: a layer execution with its running clock.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceEvent {
    /// Position in the execution order.
    pub index: usize,
    /// Cycle at which the layer started (sum of prior layer cycles).
    pub start_cycle: u64,
    /// The layer's report.
    pub report: ExecReport,
    /// What bound the layer.
    pub bound_by: BoundBy,
}

/// The binding resource of a layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BoundBy {
    /// The compute array was the bottleneck.
    Compute,
    /// DRAM traffic was the bottleneck.
    Dram,
}

/// Collects layer reports into a timeline.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TraceRecorder {
    events: Vec<TraceEvent>,
    clock: u64,
}

impl TraceRecorder {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        TraceRecorder::default()
    }

    /// Appends a layer report, advancing the clock.
    pub fn record(&mut self, report: ExecReport) {
        let bound_by = if report.dram_cycles > report.compute_cycles {
            BoundBy::Dram
        } else {
            BoundBy::Compute
        };
        let event = TraceEvent {
            index: self.events.len(),
            start_cycle: self.clock,
            report,
            bound_by,
        };
        self.clock += event.report.cycles;
        self.events.push(event);
    }

    /// The ordered timeline.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Total cycles across the timeline.
    pub fn total_cycles(&self) -> u64 {
        self.clock
    }

    /// Count of DRAM-bound layers.
    pub fn dram_bound_layers(&self) -> usize {
        self.events
            .iter()
            .filter(|e| e.bound_by == BoundBy::Dram)
            .count()
    }

    /// Serialises the timeline to a JSON string.
    ///
    /// # Errors
    ///
    /// Returns a serialisation error string (cannot occur for
    /// well-formed reports; the `Result` guards against future field
    /// types).
    pub fn to_json(&self) -> Result<String, String> {
        serde_json::to_string_pretty(&self.events).map_err(|e| e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::accelerator::{finish_report, TrafficReport};
    use crate::gemm::{GemmShape, GemmWorkload};

    fn report(compute: u64, dram: u64) -> ExecReport {
        let shape = GemmShape::new(4, 4, 4).unwrap();
        let w = GemmWorkload::uniform("t", shape, false);
        let traffic = TrafficReport {
            dram_cycles: dram,
            dram_pj: 1.0,
            buffer_pj: 1.0,
        };
        finish_report("x", &w, compute, 0, 1, 1.0, traffic, 4, 0.1)
    }

    #[test]
    fn clock_accumulates_and_bounds_classify() {
        let mut t = TraceRecorder::new();
        t.record(report(100, 10)); // compute-bound, 100 cycles
        t.record(report(10, 250)); // dram-bound, 250 cycles
        assert_eq!(t.total_cycles(), 350);
        assert_eq!(t.events()[0].start_cycle, 0);
        assert_eq!(t.events()[1].start_cycle, 100);
        assert_eq!(t.events()[0].bound_by, BoundBy::Compute);
        assert_eq!(t.events()[1].bound_by, BoundBy::Dram);
        assert_eq!(t.dram_bound_layers(), 1);
    }

    #[test]
    fn json_roundtrip() {
        let mut t = TraceRecorder::new();
        t.record(report(50, 20));
        let json = t.to_json().unwrap();
        assert!(json.contains("start_cycle"));
        let parsed: Vec<TraceEvent> = serde_json::from_str(&json).unwrap();
        assert_eq!(parsed, t.events());
    }

    #[test]
    fn empty_trace() {
        let t = TraceRecorder::new();
        assert_eq!(t.total_cycles(), 0);
        assert!(t.events().is_empty());
        assert_eq!(t.dram_bound_layers(), 0);
    }
}
