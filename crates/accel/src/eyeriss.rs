//! The Eyeriss baseline: an FP32 spatial accelerator with 224 PEs.
//!
//! The paper uses Eyeriss (Chen et al., ISCA 2016) as the uncompressed
//! FP32 reference whose latency and energy normalise Figs. 7–8, with the
//! configuration from the DRQ paper: 14×16 = 224 PEs. We model its
//! row-stationary dataflow analytically — one FP32 MAC per PE per cycle
//! at a fixed mapping utilization — because the comparison only needs
//! its throughput and energy class, not its exact mapping search.

use crate::accelerator::{finish_report, Accelerator, ExecReport, MemorySubsystem};
use crate::energy::EnergyModel;
use crate::gemm::GemmWorkload;
use crate::{AccelError, Result};

/// Bytes per FP32 value.
const FP32_BYTES: u64 = 4;

/// The Eyeriss FP32 accelerator model.
#[derive(Debug)]
pub struct Eyeriss {
    pes: usize,
    utilization: f64,
    energy: EnergyModel,
    memory: MemorySubsystem,
}

impl Eyeriss {
    /// Creates the paper's configuration: 14×16 = 224 PEs at 95%
    /// mapping utilization (row-stationary mappings keep convolutional
    /// layers near full occupancy).
    ///
    /// # Errors
    ///
    /// Propagates memory-subsystem construction errors.
    pub fn paper_config() -> Result<Self> {
        Eyeriss::new(224, 0.95)
    }

    /// Creates a custom configuration.
    ///
    /// # Errors
    ///
    /// Returns [`AccelError::InvalidConfig`] unless `pes > 0` and
    /// `0 < utilization <= 1`.
    pub fn new(pes: usize, utilization: f64) -> Result<Self> {
        if pes == 0 {
            return Err(AccelError::InvalidConfig {
                name: "pes",
                detail: "must be positive".to_string(),
            });
        }
        if !(utilization > 0.0 && utilization <= 1.0) {
            return Err(AccelError::InvalidConfig {
                name: "utilization",
                detail: format!("must be in (0, 1], got {utilization}"),
            });
        }
        Ok(Eyeriss {
            pes,
            utilization,
            energy: EnergyModel::default(),
            memory: MemorySubsystem::new()?,
        })
    }
}

impl Accelerator for Eyeriss {
    fn name(&self) -> &str {
        "eyeriss"
    }

    fn units(&self) -> usize {
        self.pes
    }

    fn execute(&mut self, workload: &GemmWorkload) -> Result<ExecReport> {
        let shape = workload.shape();
        let macs = shape.macs();
        // One FP32 MAC per PE per cycle at the mapping utilization.
        let compute_cycles = (macs as f64 / (self.pes as f64 * self.utilization)).ceil() as u64;
        let busy_unit_cycles = macs; // each MAC busies one PE for one cycle

        // FP32 traffic ignores the precision maps: everything is 4 bytes.
        let act_bytes = shape.m as u64 * shape.k as u64 * FP32_BYTES;
        let weight_bytes = shape.k as u64 * shape.n as u64 * FP32_BYTES;
        let output_bytes = shape.m as u64 * shape.n as u64 * FP32_BYTES;
        let traffic = self
            .memory
            .layer_traffic(act_bytes, weight_bytes, output_bytes, 0, 1);

        let core_pj = macs as f64 * self.energy.e_fp32_mac_pj;
        Ok(finish_report(
            "eyeriss",
            workload,
            compute_cycles,
            0,
            busy_unit_cycles,
            core_pj,
            traffic,
            self.pes,
            self.energy.static_pj_per_fp32_pe_cycle,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gemm::GemmShape;

    #[test]
    fn config_validation() {
        assert!(Eyeriss::new(0, 0.9).is_err());
        assert!(Eyeriss::new(224, 0.0).is_err());
        assert!(Eyeriss::new(224, 1.5).is_err());
        assert!(Eyeriss::paper_config().is_ok());
    }

    #[test]
    fn compute_cycles_scale_with_macs() {
        let mut e = Eyeriss::paper_config().unwrap();
        let small = e
            .execute(&GemmWorkload::uniform(
                "s",
                GemmShape::new(64, 64, 64).unwrap(),
                false,
            ))
            .unwrap();
        let large = e
            .execute(&GemmWorkload::uniform(
                "l",
                GemmShape::new(128, 64, 64).unwrap(),
                false,
            ))
            .unwrap();
        assert!(large.compute_cycles >= 2 * small.compute_cycles - 1);
    }

    #[test]
    fn fp32_traffic_ignores_precision_flags() {
        let shape = GemmShape::new(32, 64, 32).unwrap();
        let mut e1 = Eyeriss::paper_config().unwrap();
        let hi = e1
            .execute(&GemmWorkload::uniform("h", shape, false))
            .unwrap();
        let mut e2 = Eyeriss::paper_config().unwrap();
        let lo = e2
            .execute(&GemmWorkload::uniform("l", shape, true))
            .unwrap();
        assert!((hi.energy.dram_pj - lo.energy.dram_pj).abs() < 1e-9);
    }

    #[test]
    fn report_has_all_energy_components() {
        let mut e = Eyeriss::paper_config().unwrap();
        let r = e
            .execute(&GemmWorkload::uniform(
                "r",
                GemmShape::new(196, 256, 256).unwrap(),
                false,
            ))
            .unwrap();
        assert!(r.energy.static_pj > 0.0);
        assert!(r.energy.dram_pj > 0.0);
        assert!(r.energy.buffer_pj > 0.0);
        assert!(r.energy.core_pj > 0.0);
        assert!(r.utilization(224) <= 1.0);
    }
}
